// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section (§5). Each benchmark regenerates its experiment
// at SmallScale via internal/bench and reports the headline metrics; run
// cmd/pbg-bench -scale medium for the fuller numbers recorded in
// EXPERIMENTS.md. See DESIGN.md §3 for the experiment index.
package pbg

import (
	"testing"

	"pbg/internal/bench"
)

func reportRows(b *testing.B, rep *bench.Report, metric string) {
	b.Helper()
	for _, row := range rep.Rows {
		if v, ok := row.Values[metric]; ok {
			b.ReportMetric(v, metric+":"+sanitize(row.Label))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '(' || r == ')' || r == '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkTable1LiveJournal regenerates Table 1 (left): LiveJournal link
// prediction for DeepWalk, MILE and PBG.
func BenchmarkTable1LiveJournal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table1LiveJournal(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "MRR")
		}
	}
}

// BenchmarkTable1YouTube regenerates Table 1 (right): node classification
// micro/macro F1.
func BenchmarkTable1YouTube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table1YouTube(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "Micro-F1")
		}
	}
}

// BenchmarkTable2FB15k regenerates Table 2: FB15k raw/filtered MRR for
// PBG-as-TransE and PBG-as-ComplEx.
func BenchmarkTable2FB15k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table2FB15k(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "MRR-filt")
		}
	}
}

// BenchmarkTable3Partitions regenerates Table 3 (left): the Freebase
// partition sweep (memory ↓ with partitions, MRR flat).
func BenchmarkTable3Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table3Partitions(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "mem_MB")
			reportRows(b, rep, "MRR")
		}
	}
}

// BenchmarkTable3Distributed regenerates Table 3 (right): the Freebase
// multi-machine sweep.
func BenchmarkTable3Distributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table3Distributed(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "time_s")
		}
	}
}

// BenchmarkTable4Partitions regenerates Table 4 (left): the Twitter
// partition sweep.
func BenchmarkTable4Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table4Partitions(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "mem_MB")
		}
	}
}

// BenchmarkTable4Distributed regenerates Table 4 (right): the Twitter
// multi-machine sweep.
func BenchmarkTable4Distributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Table4Distributed(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "time_s")
		}
	}
}

// BenchmarkFigure1Ordering regenerates the Figure 1 ordering ablation
// (inside-out vs alternatives: swaps and final MRR).
func BenchmarkFigure1Ordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Figure1Ordering(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "swaps")
		}
	}
}

// BenchmarkFigure4NegativesSweep regenerates Figure 4: throughput vs number
// of negatives, batched vs unbatched.
func BenchmarkFigure4NegativesSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Figure4Negatives(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "edges/s")
		}
	}
}

// BenchmarkFigure5LearningCurves regenerates Figure 5: MRR vs wallclock for
// PBG / DeepWalk / MILE.
func BenchmarkFigure5LearningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := bench.Figure5LearningCurves(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range curves {
				if n := len(c.MRR); n > 0 {
					b.ReportMetric(c.MRR[n-1], "finalMRR:"+sanitize(c.Label))
				}
			}
		}
	}
}

// BenchmarkFigure6FreebaseCurves regenerates Figure 6: distributed learning
// curves on the Freebase stand-in.
func BenchmarkFigure6FreebaseCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := bench.Figure6FreebaseCurves(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range curves {
				if n := len(c.MRR); n > 0 {
					b.ReportMetric(c.MRR[n-1], "finalMRR:"+sanitize(c.Label))
				}
			}
		}
	}
}

// BenchmarkFigure7TwitterCurves regenerates Figure 7: distributed learning
// curves on the Twitter stand-in.
func BenchmarkFigure7TwitterCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := bench.Figure7TwitterCurves(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range curves {
				if n := len(c.MRR); n > 0 {
					b.ReportMetric(c.MRR[n-1], "finalMRR:"+sanitize(c.Label))
				}
			}
		}
	}
}

// BenchmarkOrderingSweep regenerates the budget-aware ordering validation:
// projected swaps and measured forced evictions for inside_out vs
// budget_aware at three partition-buffer sizes.
func BenchmarkOrderingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.OrderingSweep(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "proj_swaps")
			reportRows(b, rep, "forced_evicts")
		}
	}
}

// BenchmarkAblationAlpha sweeps the §3.1 negative-sampling mixture.
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblationAlpha(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "MRR-uniform")
		}
	}
}

// BenchmarkAblationComplExPartitioning probes the §5.4.2 ComplEx
// instability under partitioned training.
func BenchmarkAblationComplExPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblationComplExPartitioning(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "MRR-std")
		}
	}
}

// BenchmarkServeSweep load-tests the serving layer (exact vs IVF vs rpc
// top-K) in short mode, reporting QPS and measured recall@10.
func BenchmarkServeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.ServeSweep(bench.SmallScale, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "QPS")
			reportRows(b, rep, "recall@10")
		}
	}
}

// BenchmarkAblationStratum probes the §4.1 stratified sub-epoch option.
func BenchmarkAblationStratum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.AblationStratum(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRows(b, rep, "MRR-after-1-epoch")
		}
	}
}
