package pbg

import (
	"io"

	"pbg/internal/datagen"
	"pbg/internal/graph"
	"pbg/internal/ingest"
)

// The paper's datasets (LiveJournal, Twitter, YouTube from SNAP/Tang&Liu,
// the Freebase dumps) cannot ship with this repository; these generators
// produce synthetic graphs with the same structural properties so every
// experiment remains runnable. See DESIGN.md §1 for the substitution
// rationale.

// SocialGraphConfig configures the LiveJournal/Twitter stand-in.
type SocialGraphConfig = datagen.SocialConfig

// SocialGraph generates a directed follow graph with heavy-tailed degrees
// and community structure.
func SocialGraph(cfg SocialGraphConfig) (*Graph, error) { return datagen.Social(cfg) }

// KnowledgeGraphConfig configures the FB15k / Freebase stand-in.
type KnowledgeGraphConfig = datagen.KGConfig

// KnowledgeGraph generates a multi-relation graph from a latent-factor
// ground-truth model with Zipf popularity.
func KnowledgeGraph(cfg KnowledgeGraphConfig) (*Graph, error) { return datagen.Knowledge(cfg) }

// CommunityGraphConfig configures the YouTube stand-in.
type CommunityGraphConfig = datagen.CommunityConfig

// LabeledGraph couples a graph with multi-label node ground truth.
type LabeledGraph = datagen.CommunityGraph

// CommunityGraph generates a social graph with multi-label community ground
// truth for downstream classification.
func CommunityGraph(cfg CommunityGraphConfig) (*LabeledGraph, error) { return datagen.Community(cfg) }

// BipartiteGraphConfig configures the user×item stand-in of §3.1.
type BipartiteGraphConfig = datagen.BipartiteConfig

// BipartiteGraph generates a two-entity-type purchase graph.
func BipartiteGraph(cfg BipartiteGraphConfig) (*Graph, error) { return datagen.Bipartite(cfg) }

// ComputeDegrees tallies entity appearances in a graph's edges (input to
// prevalence-based negative sampling and evaluation).
func ComputeDegrees(g *Graph) *graph.Degrees { return graph.ComputeDegrees(g) }

// ImportOptions configures ImportTSV; see internal/ingest for field docs.
type ImportOptions = ingest.Options

// ImportResult couples an imported graph with its name dictionaries.
type ImportResult = ingest.Result

// ImportTSV reads a whitespace-separated edge list ("src dst" or
// "src rel dst" per line) with arbitrary string names, interning entities
// and relations into dense IDs — the equivalent of the open-source PBG
// importer, including the ≥N frequency filter the paper applies to the full
// Freebase dump (§5.4.2).
func ImportTSV(r io.Reader, opts ImportOptions) (*ImportResult, error) {
	return ingest.ReadTSV(r, opts)
}
