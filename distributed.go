package pbg

import (
	"fmt"
	"time"

	"pbg/internal/dist"
	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// DistributedConfig sizes a multi-machine training run. In this repository
// the "machines" are trainer nodes inside one process communicating over
// real loopback TCP (lock server, sharded partition servers, parameter
// server — the Figure 2 architecture); the same components run across hosts
// via cmd/pbg-node.
type DistributedConfig struct {
	// Machines is the number of trainer nodes (the paper trains on up to 8,
	// with 2×Machines partitions).
	Machines int
	// Epochs to run.
	Epochs int
	// SyncInterval throttles background parameter synchronisation.
	SyncInterval time.Duration
	// Train carries the per-node hyperparameters.
	Train TrainConfig
	// LeaseTTL enables fault-tolerant leasing: a trainer that stops
	// heartbeating loses its bucket lease after this long, the bucket is
	// re-leased to a survivor, and the epoch still completes. 0 keeps the
	// fail-stop model (any node error fails the run).
	LeaseTTL time.Duration
	// CheckpointDir makes the partition servers durable (shards persisted to
	// this directory) and the run resumable: TrainDistributed pointed at a
	// directory holding a previous run's checkpoint continues from the last
	// consistency cut instead of epoch 0.
	CheckpointDir string
	// CheckpointEvery takes background checkpoints at this period (requires
	// CheckpointDir; 0 checkpoints only at the end of each epoch).
	CheckpointEvery time.Duration
}

// DistributedResult reports a distributed run.
type DistributedResult struct {
	EpochStats []dist.EpochStats
	// Cluster stays alive for evaluation; call Shutdown when done.
	Cluster *dist.Cluster
}

// TrainDistributed runs PBG's distributed execution mode (§4.2) and returns
// the live cluster for evaluation. The caller must call
// result.Cluster.Shutdown() when finished.
func TrainDistributed(g *Graph, cfg DistributedConfig) (*DistributedResult, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("pbg: Machines must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 5
	}
	nSrc, nDst := 1, 1
	for _, r := range g.Schema.Relations {
		if p := g.Schema.Entity(r.SourceType).NumPartitions; p > nSrc {
			nSrc = p
		}
		if p := g.Schema.Entity(r.DestType).NumPartitions; p > nDst {
			nDst = p
		}
	}
	// "budget_aware" needs the resident partition slot count the training
	// budget affords — priced by the same formula the trainers' checkout
	// caches use, so the cluster's lock server leases the order that was
	// optimised for the buffer the machines will actually sustain. Other
	// order names ignore slots.
	// Distributed checkout caches hold fp32 shards (no remote-store codec
	// yet), so slots are priced fp32 regardless of cfg.Train.Codec.
	slots := train.BufferSlotsFor(g.Schema, cfg.Train.Dim, cfg.Train.MemBudgetBytes, storage.CodecFP32)
	order, err := partition.OrderForBuffer(cfg.Train.BucketOrder, nSrc, nDst, cfg.Train.Seed, slots)
	if err != nil {
		return nil, err
	}
	cl, err := dist.NewCluster(g, order, dist.ClusterConfig{
		Machines:        cfg.Machines,
		SyncInterval:    cfg.SyncInterval,
		Seed:            cfg.Train.Seed + 1,
		Train:           cfg.Train,
		InitScale:       cfg.Train.InitScale,
		LeaseTTL:        cfg.LeaseTTL,
		CheckpointDir:   cfg.CheckpointDir,
		CheckpointEvery: cfg.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	res := &DistributedResult{Cluster: cl}
	// NextEpoch rather than a 0-based count: a resumed run finishes the
	// interrupted epoch and continues to cfg.Epochs instead of re-training
	// cfg.Epochs more.
	for cl.NextEpoch() <= cfg.Epochs {
		st, err := cl.RunEpoch()
		if err != nil {
			cl.Shutdown()
			return nil, err
		}
		res.EpochStats = append(res.EpochStats, st)
		if cfg.CheckpointDir != "" {
			if err := cl.Checkpoint(); err != nil {
				cl.Shutdown()
				return nil, err
			}
		}
	}
	return res, nil
}

// EvaluateDistributed ranks test edges against the cluster's current
// embeddings.
func (r *DistributedResult) EvaluateDistributed(g *Graph, test *Graph, opts EvalOptions) (Metrics, error) {
	store, err := r.Cluster.EvalStore()
	if err != nil {
		return Metrics{}, err
	}
	defer store.Close()
	view := train.NewStoreView(store, g.Schema)
	defer view.Close()
	deg := graph.ComputeDegrees(g)
	dim := r.Cluster.Nodes[0].Trainer().Config().Dim
	rk := eval.NewRanker(g.Schema, view, r.Cluster.Nodes[0].Trainer(), dim, deg)
	cfg := eval.Config{
		K:         opts.Candidates,
		Filtered:  opts.Filtered,
		BothSides: opts.BothSides,
		MaxEdges:  opts.MaxEdges,
		Seed:      opts.Seed,
	}
	switch {
	case opts.Candidates == 0:
		cfg.Mode = eval.CandidatesAll
	case opts.ByPrevalence:
		cfg.Mode = eval.CandidatesPrevalence
	default:
		cfg.Mode = eval.CandidatesUniform
	}
	if opts.Filtered {
		cfg.Known = graph.NewEdgeSet(append([]*EdgeList{g.Edges}, opts.Known...)...)
	}
	return rk.Evaluate(test.Edges, cfg)
}
