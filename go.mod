module pbg

go 1.22
