// Package pbg is a from-scratch Go implementation of PyTorch-BigGraph
// (Lerer et al., "PyTorch-BigGraph: A Large-scale Graph Embedding System",
// SysML 2019): a system for learning embeddings of multi-relation graphs
// with billions of nodes, built around three ideas —
//
//   - block decomposition of the adjacency matrix into P×P buckets so only
//     two embedding partitions need be in memory at a time (§4.1),
//   - a distributed execution model with a bucket lock server, sharded
//     partition servers and an asynchronous parameter server (§4.2), and
//   - memory-efficient batched negative sampling that reuses a chunk's
//     candidates across its positives (§4.3).
//
// The package exposes a high-level façade; the moving parts live in
// internal/ (model, train, partition, storage, dist, eval, ...). A typical
// single-machine run:
//
//	g, _ := pbg.SocialGraph(pbg.SocialGraphConfig{Nodes: 10000, AvgOutDegree: 10, Seed: 1})
//	trainG, _, testG := pbg.Split(g, 0, 0.05, 42)
//	m, _ := pbg.Train(trainG, pbg.TrainConfig{Dim: 64, Epochs: 10})
//	metrics, _ := m.Evaluate(testG, pbg.EvalOptions{Candidates: 1000})
//	fmt.Println(metrics)
package pbg

import (
	"fmt"
	"sort"

	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/storage"
	"pbg/internal/train"
	"pbg/internal/vec"
)

// TrainConfig is the full hyperparameter surface of the trainer; see the
// field documentation in internal/train. Zero values pick paper defaults
// (d must be set; B=1000, C=50, U=50, α=0.5, Adagrad lr=0.1, ranking loss).
type TrainConfig = train.Config

// Graph re-exports the multi-relation graph container.
type Graph = graph.Graph

// EntityType declares one class of nodes and its partition count.
type EntityType = graph.EntityType

// RelationType declares one relation with its operator choice.
type RelationType = graph.RelationType

// EdgeList is columnar edge storage.
type EdgeList = graph.EdgeList

// Metrics carries link-prediction results (MRR, MR, Hits@k).
type Metrics = eval.Metrics

// NewGraph builds a validated multi-relation graph.
func NewGraph(entities []EntityType, relations []RelationType, edges *EdgeList) (*Graph, error) {
	schema, err := graph.NewSchema(entities, relations)
	if err != nil {
		return nil, err
	}
	return graph.NewGraph(schema, edges)
}

// Split partitions g's edges into train/valid/test deterministically.
func Split(g *Graph, validFrac, testFrac float64, seed uint64) (trainG, validG, testG *Graph) {
	return g.Split(validFrac, testFrac, seed)
}

// Model is a trained embedding model: entity embeddings (possibly sharded
// on disk) plus per-relation operator parameters.
type Model struct {
	trainer *train.Trainer
	graph   *Graph
	store   storage.Store
	stats   []train.EpochStats
}

// Train learns embeddings in memory on a single machine.
func Train(g *Graph, cfg TrainConfig) (*Model, error) {
	return TrainWithCallback(g, cfg, nil)
}

// TrainWithCallback is Train with a per-epoch hook (learning curves).
func TrainWithCallback(g *Graph, cfg TrainConfig, onEpoch func(train.EpochStats)) (*Model, error) {
	store := storage.NewMemStore(g.Schema, cfg.Dim, cfg.Seed+1, initScale(cfg))
	return trainOn(g, store, cfg, onEpoch)
}

// TrainOnDisk learns embeddings with partition swapping to dir — the §4.1
// regime that bounds memory to two partitions (plus the pipelined
// executor's prefetch/write-back transients). Set cfg.MemBudgetBytes to
// cap the resident shard bytes: the disk store then enforces the budget at
// admission (shedding prefetch hints, evicting unreferenced shards
// LRU-first) and the adaptive lookahead controller keeps the prefetch
// window inside it; cfg.MaxLookahead caps how far the controller widens
// the window when epochs measure as I/O bound. The default (0) is
// unbounded and preserves the fixed-footprint behaviour above.
func TrainOnDisk(g *Graph, dir string, cfg TrainConfig) (*Model, error) {
	return TrainOnDiskWithCallback(g, dir, cfg, nil)
}

// TrainOnDiskWithCallback is TrainOnDisk with a per-epoch hook (learning
// curves, IOWait/Compute overlap monitoring).
func TrainOnDiskWithCallback(g *Graph, dir string, cfg TrainConfig, onEpoch func(train.EpochStats)) (*Model, error) {
	store, err := storage.NewDiskStore(dir, g.Schema, cfg.Dim, cfg.Seed+1, initScale(cfg))
	if err != nil {
		return nil, err
	}
	return trainOn(g, store, cfg, onEpoch)
}

func initScale(cfg TrainConfig) float32 {
	if cfg.InitScale != 0 {
		return cfg.InitScale
	}
	return 1
}

func trainOn(g *Graph, store storage.Store, cfg TrainConfig, onEpoch func(train.EpochStats)) (*Model, error) {
	tr, err := train.New(g, store, cfg)
	if err != nil {
		return nil, err
	}
	stats, err := tr.Train(onEpoch)
	if err != nil {
		// Bound the background write-back goroutines' lifetime even on
		// failure, so a caller that deletes the output dir of a dead run
		// cannot race in-flight shard writes.
		if d, ok := store.(interface{ Drain() error }); ok {
			_ = d.Drain()
		}
		return nil, err
	}
	// Stores with asynchronous write-back (DiskStore) may still have the
	// final epoch's evictions in flight; wait for them so a nil error means
	// the trained shards really are on disk.
	if d, ok := store.(interface{ Drain() error }); ok {
		if err := d.Drain(); err != nil {
			return nil, err
		}
	}
	return &Model{trainer: tr, graph: g, store: store, stats: stats}, nil
}

// EpochStats returns per-epoch training statistics.
func (m *Model) EpochStats() []train.EpochStats { return m.stats }

// Trainer exposes the underlying trainer for advanced use (continuing
// training, distributed coordination, custom evaluation).
func (m *Model) Trainer() *train.Trainer { return m.trainer }

// Dim returns the embedding dimension.
func (m *Model) Dim() int { return m.trainer.Config().Dim }

// Embedding returns a copy of the embedding for entity id of the named
// entity type.
func (m *Model) Embedding(entityType string, id int32) ([]float32, error) {
	ti := m.graph.Schema.EntityTypeIndex(entityType)
	if ti < 0 {
		return nil, fmt.Errorf("pbg: unknown entity type %q", entityType)
	}
	view := m.trainer.NewView()
	defer view.Close()
	out := make([]float32, m.Dim())
	return view.Embedding(ti, id, out)
}

// Score computes f(src, rel, dst) with the trained parameters.
func (m *Model) Score(rel int, src, dst int32) (float32, error) {
	schema := m.graph.Schema
	if rel < 0 || rel >= len(schema.Relations) {
		return 0, fmt.Errorf("pbg: relation %d out of range", rel)
	}
	view := m.trainer.NewView()
	defer view.Close()
	si := schema.EntityTypeIndex(schema.Relations[rel].SourceType)
	di := schema.EntityTypeIndex(schema.Relations[rel].DestType)
	sbuf := make([]float32, m.Dim())
	dbuf := make([]float32, m.Dim())
	if _, err := view.Embedding(si, src, sbuf); err != nil {
		return 0, err
	}
	if _, err := view.Embedding(di, dst, dbuf); err != nil {
		return 0, err
	}
	return m.trainer.Scorer(rel).Score(sbuf, dbuf, m.trainer.RelParams(rel)), nil
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	ID    int32
	Score float32
}

// NearestNeighbors returns the k entities of entityType most similar to id
// under cosine similarity of raw embeddings (the typical downstream use of
// the released Freebase embeddings).
func (m *Model) NearestNeighbors(entityType string, id int32, k int) ([]Neighbor, error) {
	ti := m.graph.Schema.EntityTypeIndex(entityType)
	if ti < 0 {
		return nil, fmt.Errorf("pbg: unknown entity type %q", entityType)
	}
	count := m.graph.Schema.Entities[ti].Count
	view := m.trainer.NewView()
	defer view.Close()
	q := make([]float32, m.Dim())
	if _, err := view.Embedding(ti, id, q); err != nil {
		return nil, err
	}
	buf := make([]float32, m.Dim())
	out := make([]Neighbor, 0, count-1)
	for other := int32(0); int(other) < count; other++ {
		if other == id {
			continue
		}
		if _, err := view.Embedding(ti, other, buf); err != nil {
			return nil, err
		}
		out = append(out, Neighbor{ID: other, Score: vec.Cosine(q, buf)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// EvalOptions configures link-prediction evaluation.
type EvalOptions struct {
	// Candidates per test edge; 0 ranks against all entities.
	Candidates int
	// ByPrevalence samples candidates by training-set prevalence (§5.4.2's
	// protocol) instead of uniformly.
	ByPrevalence bool
	// Filtered removes known true edges from candidates; Known must list
	// the edge sets to filter (§5.4.1).
	Filtered bool
	Known    []*EdgeList
	// BothSides also ranks corrupted sources.
	BothSides bool
	// MaxEdges caps evaluated edges (0 = all).
	MaxEdges int
	Seed     uint64
}

// Evaluate ranks the test edges and returns MRR/MR/Hits@k.
func (m *Model) Evaluate(test *Graph, opts EvalOptions) (Metrics, error) {
	view := m.trainer.NewView()
	defer view.Close()
	deg := graph.ComputeDegrees(m.graph)
	rk := eval.NewRanker(m.graph.Schema, view, m.trainer, m.Dim(), deg)
	cfg := eval.Config{
		K:         opts.Candidates,
		Filtered:  opts.Filtered,
		BothSides: opts.BothSides,
		MaxEdges:  opts.MaxEdges,
		Seed:      opts.Seed,
	}
	switch {
	case opts.Candidates == 0:
		cfg.Mode = eval.CandidatesAll
	case opts.ByPrevalence:
		cfg.Mode = eval.CandidatesPrevalence
	default:
		cfg.Mode = eval.CandidatesUniform
	}
	if opts.Filtered {
		cfg.Known = graph.NewEdgeSet(append([]*EdgeList{m.graph.Edges}, opts.Known...)...)
	}
	return rk.Evaluate(test.Edges, cfg)
}

// EmbeddingMatrix materialises all embeddings of one entity type into a
// dense n×d matrix (features for downstream tasks, §5.3).
func (m *Model) EmbeddingMatrix(entityType string) (vec.Matrix, error) {
	ti := m.graph.Schema.EntityTypeIndex(entityType)
	if ti < 0 {
		return vec.Matrix{}, fmt.Errorf("pbg: unknown entity type %q", entityType)
	}
	count := m.graph.Schema.Entities[ti].Count
	out := vec.NewMatrix(count, m.Dim())
	view := m.trainer.NewView()
	defer view.Close()
	for id := int32(0); int(id) < count; id++ {
		if _, err := view.Embedding(ti, id, out.Row(int(id))); err != nil {
			return vec.Matrix{}, err
		}
	}
	return out, nil
}

// Checkpoint persists all shards and relation parameters under dir, encoded
// with the run's shard codec (Config.Codec) — so a MemStore-trained model
// still checkpoints quantized when the run asked for it.
func (m *Model) Checkpoint(dir string) error {
	ds, err := storage.NewDiskStore(dir, m.graph.Schema, m.Dim(), 0, 1)
	if err != nil {
		return err
	}
	ds.SetCodec(m.trainer.Codec())
	for ti, e := range m.graph.Schema.Entities {
		for p := 0; p < e.NumPartitions; p++ {
			src, err := m.store.Acquire(ti, p)
			if err != nil {
				return err
			}
			dst, err := ds.Acquire(ti, p)
			if err != nil {
				_ = m.store.Release(ti, p) // don't pin the live shard on failure
				return err
			}
			copy(dst.Embs, src.Embs)
			copy(dst.Acc, src.Acc)
			if err := ds.Release(ti, p); err != nil {
				_ = m.store.Release(ti, p)
				return err
			}
			if err := m.store.Release(ti, p); err != nil {
				return err
			}
		}
	}
	// Release only schedules asynchronous write-backs; Close drains them and
	// surfaces any write error, so a returned nil really means the
	// checkpoint is complete on disk.
	if err := ds.Close(); err != nil {
		return err
	}
	rs := &storage.RelationState{}
	for r := range m.graph.Schema.Relations {
		rs.Params = append(rs.Params, m.trainer.RelParams(r))
		rs.Acc = append(rs.Acc, make([]float32, len(m.trainer.RelParams(r))))
	}
	return storage.WriteRelations(dir+"/relations.pbg", rs)
}
