// Node-classification example: the YouTube downstream task of §5.3.
// Embeddings trained unsupervised on the social graph become features for a
// one-vs-rest logistic regression predicting the (multi-label) user
// categories, scored with micro/macro-F1 under 10-fold cross validation.
package main

import (
	"fmt"
	"log"

	"pbg"
	"pbg/internal/classify"
)

func main() {
	lg, err := pbg.CommunityGraph(pbg.CommunityGraphConfig{
		Nodes: 4000, Communities: 20, Edges: 40000,
		ExtraLabelProb: 0.05, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled graph: %d users, %d edges, %d categories\n",
		lg.Graph.Schema.Entities[0].Count, lg.Graph.Edges.Len(), lg.NumClasses)

	model, err := pbg.Train(lg.Graph, pbg.TrainConfig{
		Dim: 32, Epochs: 10, Workers: 4, Seed: 1,
		Comparator: "cos", Loss: "softmax",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Materialise embeddings as a feature matrix.
	features, err := model.EmbeddingMatrix("user")
	if err != nil {
		log.Fatal(err)
	}

	// 10-fold CV at 90% train, predicting top-k_i labels per node (the
	// protocol of Perozzi et al. 2014 that Table 1 follows).
	res, err := classify.CrossValidate(features, lg.Labels,
		classify.Config{Classes: lg.NumClasses, Epochs: 15, Seed: 3}, 10, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node classification: micro-F1 %.3f, macro-F1 %.3f\n", res.MicroF1, res.MacroF1)
}
