// Distributed example: the §4.2 / Figure 2 execution model, narrated. Four
// trainer "machines" (in-process nodes speaking real RPC over loopback TCP)
// lease disjoint buckets from a lock server, ship partitions through sharded
// partition servers, and sync relation parameters through an asynchronous
// parameter server. The run reports per-node work and the speedup over a
// single machine.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"pbg"
)

func main() {
	const partitions = 8
	g, err := pbg.SocialGraph(pbg.SocialGraphConfig{
		Nodes: 20000, AvgOutDegree: 10, NumPartitions: partitions, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	trainG, _, testG := pbg.Split(g, 0, 0.05, 7)
	fmt.Printf("graph: %d nodes in %d partitions, %d training edges, %d buckets\n",
		g.Schema.Entities[0].Count, partitions, trainG.Edges.Len(), partitions*partitions)

	// One worker per machine: simulated machines share this host's cores,
	// so genuine wall-clock speedup requires machines ≤ physical cores.
	baseCfg := pbg.TrainConfig{Dim: 32, Workers: 1, Seed: 1, Comparator: "cos"}

	run := func(machines int) (time.Duration, pbg.Metrics) {
		start := time.Now()
		res, err := pbg.TrainDistributed(trainG, pbg.DistributedConfig{
			Machines: machines, Epochs: 4, Train: baseCfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer res.Cluster.Shutdown()
		elapsed := time.Since(start)
		for e, st := range res.EpochStats {
			fmt.Printf("  epoch %d (%.2fs):", e, st.Duration.Seconds())
			for _, ns := range st.PerNode {
				fmt.Printf("  rank%d=%db/%de", ns.Rank, ns.Buckets, ns.Edges)
			}
			fmt.Println()
		}
		m, err := res.EvaluateDistributed(trainG, testG, pbg.EvalOptions{
			Candidates: 500, MaxEdges: 500, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return elapsed, m
	}

	fmt.Println("\n--- 1 machine ---")
	t1, m1 := run(1)
	fmt.Printf("total %.2fs, %v\n", t1.Seconds(), m1)

	fmt.Println("\n--- 2 machines (lock server + sharded partition/param servers) ---")
	t2, m2 := run(2)
	fmt.Printf("total %.2fs, %v\n", t2.Seconds(), m2)

	fmt.Printf("\nspeedup: %.2fx with comparable MRR (%.3f vs %.3f) — the Table 3/4 result, bounded by this host's core count\n",
		t1.Seconds()/t2.Seconds(), m2.MRR, m1.MRR)
	if runtime.NumCPU() < 2 {
		fmt.Println("note: this host exposes a single core, so the two machines time-share it and wall-clock parity is the physical limit; run on ≥2 cores to see the speedup")
	}
}
