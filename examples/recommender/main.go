// Recommender example: the unbalanced user×item scenario that motivates
// PBG's entity types (§3.1 — "1 billion users vs 1 million products" means
// uniform negative sampling over all nodes would drown item ranking in user
// negatives). Users are partitioned; items, being few, are not (Figure 1,
// center). Negatives are type-constrained automatically.
package main

import (
	"fmt"
	"log"

	"pbg"
)

func main() {
	g, err := pbg.BipartiteGraph(pbg.BipartiteGraphConfig{
		Users: 20000, Items: 200, Edges: 150000,
		UserPartitions: 4, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bipartite graph: %d users (4 partitions), %d items, %d purchase edges\n",
		g.Schema.Entities[0].Count, g.Schema.Entities[1].Count, g.Edges.Len())

	trainG, _, testG := pbg.Split(g, 0, 0.05, 7)
	model, err := pbg.Train(trainG, pbg.TrainConfig{
		Dim: 32, Epochs: 6, Workers: 4, Seed: 1, Loss: "softmax",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Rank held-out purchases against all items: negatives are drawn from
	// the item entity type only, so the tiny item catalogue is not swamped
	// by user IDs.
	metrics, err := model.Evaluate(testG, pbg.EvalOptions{
		Candidates: 0, MaxEdges: 2000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out purchase ranking vs all items: %v\n", metrics)

	// Recommend: score a user against every item.
	userID := int32(4242)
	type rec struct {
		item  int32
		score float32
	}
	var best rec
	for item := int32(0); item < 200; item++ {
		s, err := model.Score(0, userID, item)
		if err != nil {
			log.Fatal(err)
		}
		if s > best.score || item == 0 {
			best = rec{item, s}
		}
	}
	fmt.Printf("top recommendation for user %d: item %d (score %.3f)\n", userID, best.item, best.score)
}
