// Knowledge-graph example: the FB15k workflow of §5.4.1 — train a ComplEx
// model (complex_diagonal operator + dot comparator + softmax loss +
// reciprocal relations) on a multi-relation graph and report raw and
// filtered MRR / Hits@10, comparing against a TransE configuration.
package main

import (
	"fmt"
	"log"

	"pbg"
)

func main() {
	g, err := pbg.KnowledgeGraph(pbg.KnowledgeGraphConfig{
		Entities: 2000, Relations: 30, Edges: 80000, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge graph: %d entities, %d relations, %d edges\n",
		g.Schema.Entities[0].Count, len(g.Schema.Relations), g.Edges.Len())
	trainG, validG, testG := pbg.Split(g, 0.05, 0.05, 7)

	type config struct {
		name     string
		operator string
		cfg      pbg.TrainConfig
	}
	configs := []config{
		{
			name:     "TransE  (translation + cos + ranking)",
			operator: "translation",
			cfg: pbg.TrainConfig{
				Dim: 32, Epochs: 10, Workers: 4, Seed: 1,
				Comparator: "cos", Loss: "ranking", Margin: 0.2,
				LR: 0.5, UniformNegs: 150, NegAlpha: 0.1,
			},
		},
		{
			name:     "ComplEx (complex_diagonal + dot + softmax + reciprocal)",
			operator: "complex_diagonal",
			cfg: pbg.TrainConfig{
				Dim: 32, Epochs: 10, Workers: 4, Seed: 1,
				Comparator: "dot", Loss: "softmax", Reciprocal: true,
				LR: 0.5, UniformNegs: 150, NegAlpha: 0.1,
			},
		},
	}
	for _, c := range configs {
		for i := range g.Schema.Relations {
			g.Schema.Relations[i].Operator = c.operator
		}
		model, err := pbg.Train(trainG, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		raw, err := model.Evaluate(testG, pbg.EvalOptions{
			Candidates: 0, BothSides: true, MaxEdges: 500, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		filt, err := model.Evaluate(testG, pbg.EvalOptions{
			Candidates: 0, BothSides: true, MaxEdges: 500, Seed: 1,
			Filtered: true, Known: []*pbg.EdgeList{validG.Edges, testG.Edges},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  raw:      %v\n  filtered: %v\n", c.name, raw, filt)
	}
}
