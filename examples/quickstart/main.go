// Quickstart: train embeddings on a small social graph, evaluate link
// prediction, and look up nearest neighbours — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"pbg"
)

func main() {
	// 1. Build (or load) a graph. Here: a synthetic follow graph with
	// community structure and heavy-tailed degrees.
	g, err := pbg.SocialGraph(pbg.SocialGraphConfig{
		Nodes: 5000, AvgOutDegree: 10, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.Schema.Entities[0].Count, g.Edges.Len())

	// 2. Hold out 10% of edges for evaluation.
	trainG, _, testG := pbg.Split(g, 0, 0.10, 7)

	// 3. Train. Defaults follow the paper: Adagrad, margin ranking loss,
	// batched negatives (B=1000, chunks of 50, α=0.5).
	model, err := pbg.Train(trainG, pbg.TrainConfig{
		Dim:        64,
		Epochs:     8,
		Workers:    4,
		Comparator: "cos",
		Loss:       "softmax",
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range model.EpochStats() {
		fmt.Printf("  epoch %d: loss/edge %.4f (%.2fs)\n",
			st.Epoch, st.Loss/float64(st.Edges), st.Duration.Seconds())
	}

	// 4. Link prediction: rank true destinations among 1000 sampled
	// corrupted edges.
	metrics, err := model.Evaluate(testG, pbg.EvalOptions{Candidates: 1000, MaxEdges: 1000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link prediction: %v\n", metrics)

	// 5. Nearest neighbours of an arbitrary node under cosine similarity —
	// the typical downstream use of released embeddings.
	nn, err := model.NearestNeighbors("node", 123, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nearest neighbours of node 123:")
	for _, n := range nn {
		fmt.Printf("  node %-6d cos %.3f\n", n.ID, n.Score)
	}
}
