package pbg

import (
	"math"
	"testing"
	"time"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := SocialGraph(SocialGraphConfig{Nodes: 500, AvgOutDegree: 8, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	trainG, _, testG := Split(g, 0, 0.2, 3)
	m, err := Train(trainG, TrainConfig{Dim: 16, Epochs: 4, Seed: 5, Comparator: "cos"})
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := m.Evaluate(testG, EvalOptions{Candidates: 100, MaxEdges: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MRR < 0.08 {
		t.Fatalf("MRR %.3f too close to random", metrics.MRR)
	}
	// Embedding access.
	e, err := m.Embedding("node", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 16 {
		t.Fatalf("embedding dim %d", len(e))
	}
	// Score a real edge vs an unlikely one; at least it must not error.
	s, rel, d := trainG.Edges.Edge(0)
	if _, err := m.Score(int(rel), s, d); err != nil {
		t.Fatal(err)
	}
	nn, err := m.NearestNeighbors("node", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 5 {
		t.Fatalf("got %d neighbours", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Score > nn[i-1].Score {
			t.Fatal("neighbours not sorted by score")
		}
	}
}

func TestTrainOnDisk(t *testing.T) {
	g, err := SocialGraph(SocialGraphConfig{Nodes: 300, AvgOutDegree: 6, NumPartitions: 4, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainOnDisk(g, t.TempDir(), TrainConfig{Dim: 8, Epochs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Embedding("node", 250); err != nil {
		t.Fatal(err)
	}
}

func TestEmbeddingMatrix(t *testing.T) {
	g, _ := SocialGraph(SocialGraphConfig{Nodes: 100, AvgOutDegree: 4, Seed: 55})
	m, err := Train(g, TrainConfig{Dim: 8, Epochs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := m.EmbeddingMatrix("node")
	if err != nil {
		t.Fatal(err)
	}
	if mat.Rows != 100 || mat.Cols != 8 {
		t.Fatalf("matrix %dx%d", mat.Rows, mat.Cols)
	}
}

func TestCheckpoint(t *testing.T) {
	g, _ := SocialGraph(SocialGraphConfig{Nodes: 100, AvgOutDegree: 4, NumPartitions: 2, Seed: 57})
	m, err := Train(g, TrainConfig{Dim: 8, Epochs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDistributed(t *testing.T) {
	g, err := SocialGraph(SocialGraphConfig{Nodes: 400, AvgOutDegree: 8, NumPartitions: 4, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	trainG, _, testG := Split(g, 0, 0.15, 3)
	res, err := TrainDistributed(trainG, DistributedConfig{
		Machines: 2, Epochs: 3, SyncInterval: 10 * time.Millisecond,
		Train: TrainConfig{Dim: 16, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Cluster.Shutdown()
	if len(res.EpochStats) != 3 {
		t.Fatalf("epochs = %d", len(res.EpochStats))
	}
	metrics, err := res.EvaluateDistributed(trainG, testG, EvalOptions{Candidates: 100, MaxEdges: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Count == 0 {
		t.Fatal("no edges evaluated")
	}
}

// TestDistributedParityWithSingleMachine is the Table 3 invariant as a smoke
// test: training the same partitioned social graph on 2 machines (lock
// server, partition servers, async parameter sync over loopback TCP) must
// produce finite losses and an MRR within noise of the single-machine run.
func TestDistributedParityWithSingleMachine(t *testing.T) {
	g, err := SocialGraph(SocialGraphConfig{Nodes: 600, AvgOutDegree: 10, NumPartitions: 4, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	trainG, _, testG := Split(g, 0, 0.1, 3)
	cfg := TrainConfig{Dim: 16, Epochs: 4, Seed: 5, Comparator: "cos"}
	evalOpts := EvalOptions{Candidates: 200, MaxEdges: 300, Seed: 1}

	single, err := Train(trainG, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := single.Evaluate(testG, evalOpts)
	if err != nil {
		t.Fatal(err)
	}

	res, err := TrainDistributed(trainG, DistributedConfig{
		Machines: 2, Epochs: 4, SyncInterval: 20 * time.Millisecond, Train: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Cluster.Shutdown()
	for e, st := range res.EpochStats {
		if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
			t.Fatalf("epoch %d loss = %v", e, st.Loss)
		}
		if st.Edges != trainG.Edges.Len() {
			t.Fatalf("epoch %d trained %d edges, want %d", e, st.Edges, trainG.Edges.Len())
		}
	}
	dm, err := res.EvaluateDistributed(trainG, testG, evalOpts)
	if err != nil {
		t.Fatal(err)
	}
	if dm.MRR < 0.08 {
		t.Fatalf("distributed MRR %.3f too close to random", dm.MRR)
	}
	// "Approximately flat MRR" (Tables 3–4): the runs differ in bucket
	// schedule and negative samples, so demand agreement, not equality.
	if dm.MRR < 0.7*sm.MRR {
		t.Fatalf("distributed MRR %.3f far below single-machine %.3f", dm.MRR, sm.MRR)
	}
	t.Logf("single-machine %v, distributed %v", sm, dm)
}

func TestErrorsOnUnknownEntityType(t *testing.T) {
	g, _ := SocialGraph(SocialGraphConfig{Nodes: 50, AvgOutDegree: 3, Seed: 61})
	m, err := Train(g, TrainConfig{Dim: 4, Epochs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Embedding("ghost", 0); err == nil {
		t.Fatal("expected unknown-type error")
	}
	if _, err := m.NearestNeighbors("ghost", 0, 3); err == nil {
		t.Fatal("expected unknown-type error")
	}
	if _, err := m.Score(99, 0, 1); err == nil {
		t.Fatal("expected relation-range error")
	}
}

func TestNewGraphPublic(t *testing.T) {
	el := &EdgeList{}
	el.Append(0, 0, 1)
	g, err := NewGraph(
		[]EntityType{{Name: "n", Count: 2, NumPartitions: 1}},
		[]RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
		el,
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges.Len() != 1 {
		t.Fatal("edge lost")
	}
}
