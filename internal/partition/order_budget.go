package partition

// Budget-aware bucket ordering (the scheduling half of the memory-budget
// story). PBG fixes the bucket order up front — inside-out minimises swaps
// for a machine that holds exactly the current bucket's two partitions —
// but a memory-budgeted shard cache (storage.DiskStore under
// SetMaxResidentBytes) can hold *several* partitions at once, and Marius
// (Mohoney et al., OSDI 2021) showed that choosing the order against that
// bounded partition buffer (their BETA ordering) removes most of the swap
// I/O the fixed order pays. This file provides the analytical cost model —
// SwapCostUnderBuffer simulates an LRU partition buffer of a given capacity
// — and OptimizeOrder, a greedy one-step-lookahead search that reorders a
// bucket sequence to minimise loads under that buffer while preserving the
// §4.1 initialisation invariant checked by CheckInvariant.

// CostModel prices a bucket order against a bounded partition buffer: Slots
// is how many partitions fit in memory at once (each slot holds one
// partition's shards across all partitioned entity types). Slots <= 0 means
// an unbounded buffer, under which every partition loads exactly once.
type CostModel struct {
	// Slots is the resident partition capacity. A bucket touches at most
	// two partitions, so values below 2 cannot even hold one off-diagonal
	// bucket's working set; Cost and OptimizeOrder treat them like 2.
	Slots int
}

// Cost returns the number of partition loads executing order under this
// buffer; see SwapCostUnderBuffer.
func (c CostModel) Cost(order []Bucket) int { return SwapCostUnderBuffer(order, c.Slots) }

// Bounded reports whether the model describes a finite buffer that can
// actually force evictions for the given order (there is some order of
// these buckets it cannot hold entirely).
func (c CostModel) Bounded(order []Bucket) bool {
	return c.Slots > 0 && c.Slots < distinctParts(order)
}

func distinctParts(order []Bucket) int {
	seen := map[int]bool{}
	for _, b := range order {
		seen[b.P1] = true
		seen[b.P2] = true
	}
	return len(seen)
}

// SwapCostUnderBuffer simulates executing the order on a machine whose
// partition buffer holds up to slots partitions, evicting least-recently-
// used partitions when a bucket needs room, and returns the number of
// partition loads. slots <= 0 means unbounded (each distinct partition
// loads exactly once — the compulsory minimum); slots below a bucket's own
// working set is clamped to it, so the count is always well defined.
//
// SwapCount is the special case of a buffer that retains only the current
// bucket's partitions; because LRU keeps strictly more state, for any
// slots >= 2 this never exceeds SwapCount(order). LRU is a stack algorithm,
// so the cost is also monotone non-increasing in slots (no Belady anomaly);
// both properties are pinned by tests.
//
// Two partitions tie on the last-use stamp exactly when their final
// touches came from the same bucket; the lower-numbered partition is then
// evicted, so the simulated cost is a deterministic function of the order
// (it used to fall through to map iteration order, which made tied-stamp
// costs flicker between runs).
func SwapCostUnderBuffer(order []Bucket, slots int) int {
	if slots <= 0 {
		return distinctParts(order)
	}
	if slots < 2 {
		slots = 2
	}
	held := map[int]int64{} // partition -> last-use stamp
	var clock int64
	loads := 0
	for _, b := range order {
		clock++
		parts := b.Parts()
		for _, p := range parts {
			if _, ok := held[p]; !ok {
				loads++
				// Evict LRU partitions not needed by this bucket until the
				// newcomer fits.
				for len(held) >= slots {
					victim := lruVictim(held, b)
					if victim < 0 {
						break // everything held is needed right now
					}
					delete(held, victim)
				}
			}
			held[p] = clock
		}
	}
	return loads
}

// lruVictim returns the least-recently-used partition in held that the
// bucket does not need, breaking last-use-stamp ties by partition number
// so the simulation is deterministic; -1 if every held partition is in use.
func lruVictim(held map[int]int64, b Bucket) int {
	victim, victimUse := -1, int64(1<<62)
	for q, use := range held {
		if q == b.P1 || q == b.P2 {
			continue
		}
		if use < victimUse || (use == victimUse && q < victim) {
			victim, victimUse = q, use
		}
	}
	return victim
}

// optimizeGainCap bounds how many minimal-load candidates OptimizeOrder
// evaluates with the one-step-lookahead gain heuristic per step, keeping the
// search near-quadratic in the bucket count on large grids.
const optimizeGainCap = 64

// OptimizeOrder reorders the given buckets to minimise partition loads
// under the buffer described by the cost model, returning a new slice (the
// input is not modified). The search is greedy with one step of lookahead:
// at each position it considers the not-yet-scheduled buckets that touch at
// least one previously scheduled partition (preserving the §4.1
// initialisation invariant — the result passes CheckInvariant whenever the
// input does), keeps those needing the fewest partition loads, and among
// them prefers the bucket whose post-load buffer contains the most
// remaining zero-cost buckets — which reproduces the blocked, buffer-filling
// sweeps of Marius' BETA ordering on grid bucket sets. Ties break by input
// position, so the result is deterministic and degrades to the input order
// when the buffer cannot distinguish candidates.
//
// When the model is unbounded for these buckets (Slots <= 0, or every
// partition fits at once) there is nothing to optimise and a copy of the
// input is returned.
func OptimizeOrder(order []Bucket, buffer CostModel) []Bucket {
	if len(order) <= 2 || !buffer.Bounded(order) {
		return append([]Bucket(nil), order...)
	}
	slots := buffer.Slots
	if slots < 2 {
		slots = 2
	}

	remaining := make([]Bucket, len(order))
	copy(remaining, order)
	pending := make(map[Bucket]bool, len(order))
	for _, b := range order {
		pending[b] = true
	}
	held := map[int]int64{} // simulated buffer: partition -> last-use stamp
	seen := map[int]bool{}  // partitions touched by any scheduled bucket
	var clock int64

	// place simulates scheduling b: loads its missing partitions (evicting
	// LRU entries not needed by b) and marks its partitions seen.
	place := func(b Bucket) {
		clock++
		for _, p := range b.Parts() {
			if _, ok := held[p]; !ok {
				for len(held) >= slots {
					victim := lruVictim(held, b)
					if victim < 0 {
						break
					}
					delete(held, victim)
				}
			}
			held[p] = clock
			seen[p] = true
		}
	}

	out := make([]Bucket, 0, len(order))
	take := func(b Bucket) {
		place(b)
		delete(pending, b)
		out = append(out, b)
		for i, r := range remaining {
			if r == b {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
	}

	// The first bucket is free to the invariant; keep the input's choice
	// (inside-out starts at (0,0)).
	take(remaining[0])

	loadsOf := func(b Bucket) int {
		n := 0
		for _, p := range b.Parts() {
			if _, ok := held[p]; !ok {
				n++
			}
		}
		return n
	}

	// gainOf counts pending buckets (other than b) that would cost zero
	// loads with b's partitions resident: the payoff of bringing b's new
	// partitions in. The buffer holds at most `slots` partitions, so this
	// stays O(slots²) per candidate.
	gainOf := func(b Bucket) int {
		parts := make([]int, 0, slots+2)
		for q := range held {
			parts = append(parts, q)
		}
		for _, p := range b.Parts() {
			if _, ok := held[p]; !ok {
				parts = append(parts, p)
			}
		}
		gain := 0
		for _, p := range parts {
			for _, q := range parts {
				c := Bucket{p, q}
				if c != b && pending[c] {
					gain++
				}
			}
		}
		return gain
	}

	for len(remaining) > 0 {
		// Pass 1: the minimal load count over eligible candidates.
		minLoads := 3
		anyEligible := false
		for _, b := range remaining {
			if !seen[b.P1] && !seen[b.P2] {
				continue
			}
			anyEligible = true
			if l := loadsOf(b); l < minLoads {
				minLoads = l
				if l == 0 {
					break
				}
			}
		}
		if !anyEligible {
			// The pending buckets share no partition with anything scheduled
			// (possible only for non-grid bucket sets); fall back to input
			// order, mirroring the invariant's own escape hatch.
			take(remaining[0])
			continue
		}
		// Pass 2: among minimal-load candidates, the best one-step gain.
		best := Bucket{-1, -1}
		bestGain := -1
		evaluated := 0
		for _, b := range remaining {
			if !seen[b.P1] && !seen[b.P2] {
				continue
			}
			if loadsOf(b) != minLoads {
				continue
			}
			if minLoads == 0 {
				// Zero-cost buckets are all equally free; take the first in
				// input order (stable) without paying for gain evaluation.
				best = b
				break
			}
			if g := gainOf(b); g > bestGain {
				best, bestGain = b, g
			}
			if evaluated++; evaluated >= optimizeGainCap {
				break
			}
		}
		take(best)
	}
	return out
}
