package partition

import (
	"testing"
	"testing/quick"
)

// Property: every ordering covers all buckets exactly once for arbitrary
// grid shapes.
func TestOrderCoverageProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint8, seed uint64) bool {
		nSrc := int(srcRaw)%10 + 1
		nDst := int(dstRaw)%10 + 1
		for _, name := range []string{OrderInsideOut, OrderSequential, OrderRandom, OrderChained} {
			order, err := Order(name, nSrc, nDst, seed)
			if err != nil {
				return false
			}
			if len(order) != nSrc*nDst {
				return false
			}
			seen := map[Bucket]bool{}
			for _, b := range order {
				if b.P1 < 0 || b.P1 >= nSrc || b.P2 < 0 || b.P2 >= nDst || seen[b] {
					return false
				}
				seen[b] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: inside-out satisfies the §4.1 invariant on every square grid.
func TestInsideOutInvariantProperty(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw)%16 + 1
		order, err := Order(OrderInsideOut, p, p, 0)
		if err != nil {
			return false
		}
		return CheckInvariant(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scheduler never leases overlapping buckets, regardless of
// the acquire/release interleaving pattern driven by arbitrary byte input.
func TestSchedulerNeverOverlapsProperty(t *testing.T) {
	f := func(pRaw uint8, script []byte) bool {
		p := int(pRaw)%6 + 2
		order, _ := Order(OrderInsideOut, p, p, 0)
		s := NewScheduler(order, true)
		held := []Bucket{}
		locked := map[int]int{}
		for _, op := range script {
			if op%2 == 0 || len(held) == 0 {
				b, ok, done := s.Acquire(nil)
				if done {
					break
				}
				if !ok {
					continue
				}
				for _, part := range b.Parts() {
					locked[part]++
					if locked[part] > 1 {
						return false
					}
				}
				held = append(held, b)
			} else {
				b := held[len(held)-1]
				held = held[:len(held)-1]
				for _, part := range b.Parts() {
					locked[part]--
				}
				s.Release(b)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SwapCount is bounded below by the number of distinct partitions
// (each must be loaded at least once) and above by 2×buckets.
func TestSwapCountBoundsProperty(t *testing.T) {
	f := func(pRaw uint8, seed uint64) bool {
		p := int(pRaw)%8 + 1
		for _, name := range []string{OrderInsideOut, OrderSequential, OrderRandom, OrderChained} {
			order, _ := Order(name, p, p, seed)
			swaps := SwapCount(order)
			if swaps < p || swaps > 2*len(order) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
