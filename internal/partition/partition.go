// Package partition implements §4.1 of the paper: the division of edges
// into buckets by (source partition, destination partition), the orderings
// in which buckets are trained — most importantly the 'inside-out' order of
// Figure 1, which guarantees every bucket after the first touches at least
// one previously-trained partition — and the scheduler the lock server uses
// to hand out buckets with pairwise-disjoint partitions in distributed mode.
package partition

import (
	"fmt"
	"sync"

	"pbg/internal/rng"
)

// Bucket identifies one block of the adjacency matrix: source partition P1,
// destination partition P2.
type Bucket struct {
	P1, P2 int
}

// Index returns the linear index of b given nDst destination partitions.
func (b Bucket) Index(nDst int) int { return b.P1*nDst + b.P2 }

// String renders the bucket like "(1,2)".
func (b Bucket) String() string { return fmt.Sprintf("(%d,%d)", b.P1, b.P2) }

// Parts returns the set of distinct partitions the bucket touches. Source
// and destination partitions index the same space when both sides of a
// relation share an entity type; for mixed types the trainer maps them to
// per-type storage, but the locking and ordering logic operates on the
// combined coordinates, exactly as in the paper's single-entity exposition.
func (b Bucket) Parts() []int {
	if b.P1 == b.P2 {
		return []int{b.P1}
	}
	return []int{b.P1, b.P2}
}

// Disjoint reports whether two buckets share no partition (and can therefore
// train concurrently, Figure 1 left).
func (b Bucket) Disjoint(o Bucket) bool {
	return b.P1 != o.P1 && b.P1 != o.P2 && b.P2 != o.P1 && b.P2 != o.P2
}

// Ordering names implemented by Order. See README.md in this package for
// worked swap-count comparisons of all five strategies.
const (
	OrderInsideOut  = "inside_out"
	OrderSequential = "sequential"
	OrderRandom     = "random"
	OrderChained    = "chained"
	// OrderBudgetAware optimises the bucket sequence against a bounded
	// partition buffer (Marius-style BETA ordering): see OrderForBuffer and
	// PlanBudgetAware, which picks the cheapest of the greedy search (small
	// grids only) and the closed-form grouped/strided schedules under the
	// SwapCostUnderBuffer model. Through plain Order — which has no buffer
	// size to optimise against — it degrades to inside_out, the best fixed
	// order.
	OrderBudgetAware = "budget_aware"
)

// Order returns the list of all nSrc×nDst buckets in the requested order.
// seed only affects "random". The "budget_aware" order needs a buffer
// capacity to optimise against and so degrades to inside_out here; use
// OrderForBuffer when the resident partition slot count is known.
func Order(name string, nSrc, nDst int, seed uint64) ([]Bucket, error) {
	return OrderForBuffer(name, nSrc, nDst, seed, 0)
}

// OrderForBuffer is Order parameterized by the partition buffer capacity:
// slots is how many partitions the training machine can hold resident at
// once (e.g. train.Config.MemBudgetBytes divided by the per-partition shard
// bytes). Only "budget_aware" consults it — PlanBudgetAware picks the
// cheapest of the greedy OptimizeOrder search (grids small enough to
// afford it) and the closed-form grouped/strided BETA schedules, projected
// under an LRU buffer of that size. With slots <= 0 (no budget) or a
// buffer that already holds every partition, budget_aware degrades to
// inside_out.
func OrderForBuffer(name string, nSrc, nDst int, seed uint64, slots int) ([]Bucket, error) {
	if nSrc <= 0 || nDst <= 0 {
		return nil, fmt.Errorf("partition: non-positive partition counts %d×%d", nSrc, nDst)
	}
	switch name {
	case "", OrderInsideOut:
		return insideOut(nSrc, nDst), nil
	case OrderBudgetAware:
		return PlanBudgetAware(nSrc, nDst, slots).Order, nil
	case OrderSequential:
		out := make([]Bucket, 0, nSrc*nDst)
		for i := 0; i < nSrc; i++ {
			for j := 0; j < nDst; j++ {
				out = append(out, Bucket{i, j})
			}
		}
		return out, nil
	case OrderRandom:
		out, _ := OrderForBuffer(OrderSequential, nSrc, nDst, 0, 0)
		r := rng.New(seed)
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out, nil
	case OrderChained:
		return chained(nSrc, nDst), nil
	default:
		return nil, fmt.Errorf("partition: unknown ordering %q", name)
	}
}

// insideOut produces the Figure 1 (right) ordering: growing square shells
// from (0,0). Shell k contributes (0,k), (1,k), …, (k,k), (k,k−1), …, (k,0);
// consecutive buckets share a partition, so swaps are minimised, and every
// bucket after the first touches a previously-trained partition.
func insideOut(nSrc, nDst int) []Bucket {
	maxP := nSrc
	if nDst > maxP {
		maxP = nDst
	}
	out := make([]Bucket, 0, nSrc*nDst)
	add := func(b Bucket) {
		if b.P1 < nSrc && b.P2 < nDst {
			out = append(out, b)
		}
	}
	for k := 0; k < maxP; k++ {
		for i := 0; i <= k; i++ {
			add(Bucket{i, k})
		}
		for j := k - 1; j >= 0; j-- {
			add(Bucket{k, j})
		}
	}
	return out
}

// chained produces a boustrophedon walk: row by row, alternating direction,
// so consecutive buckets always share their source partition (within a row)
// or sit in adjacent rows sharing the destination partition at the turn.
func chained(nSrc, nDst int) []Bucket {
	out := make([]Bucket, 0, nSrc*nDst)
	for i := 0; i < nSrc; i++ {
		if i%2 == 0 {
			for j := 0; j < nDst; j++ {
				out = append(out, Bucket{i, j})
			}
		} else {
			for j := nDst - 1; j >= 0; j-- {
				out = append(out, Bucket{i, j})
			}
		}
	}
	return out
}

// CheckInvariant reports whether every bucket after the first touches at
// least one partition that appeared in an earlier bucket — the alignment
// condition of §4.1 that keeps all partitions in one embedding space.
func CheckInvariant(order []Bucket) bool {
	if len(order) <= 1 {
		return true
	}
	seen := map[int]bool{}
	for i, b := range order {
		if i > 0 && !seen[b.P1] && !seen[b.P2] {
			return false
		}
		seen[b.P1] = true
		seen[b.P2] = true
	}
	return true
}

// SwapCount simulates executing the order on a single machine that holds
// only the partitions of the current bucket in memory, and returns the
// number of partition loads from disk (the I/O the inside-out order
// minimises).
func SwapCount(order []Bucket) int {
	held := map[int]bool{}
	loads := 0
	for _, b := range order {
		need := map[int]bool{}
		for _, p := range b.Parts() {
			need[p] = true
			if !held[p] {
				loads++
			}
		}
		held = need
	}
	return loads
}

// Scheduler is the bucket-leasing state machine behind the lock server
// (§4.2): it hands out buckets whose partitions are disjoint from all
// in-flight buckets, enforces the two-uninitialised-partitions rule, and
// prefers buckets that reuse a worker's currently held partitions to
// minimise communication.
//
// The order the scheduler is built over is the tie-breaker beneath that
// affinity preference: Acquire scans it front to back and keeps the first
// bucket of the best affinity score, so when the order came from
// OrderForBuffer("budget_aware", ...) trainers lease buckets in the
// optimized sequence whenever their held partitions do not dictate
// otherwise — affinity itself being the per-worker form of the same
// buffer-reuse objective the optimizer minimises globally.
type Scheduler struct {
	mu          sync.Mutex
	order       []Bucket
	done        map[Bucket]bool
	inFlight    map[Bucket]bool
	locked      map[int]bool
	initialized map[int]bool
	anyStarted  bool
}

// NewScheduler creates a scheduler over the given bucket order. If
// preInitialized is true every partition counts as initialised (used from
// the second epoch on).
func NewScheduler(order []Bucket, preInitialized bool) *Scheduler {
	s := &Scheduler{
		order:       append([]Bucket(nil), order...),
		done:        make(map[Bucket]bool, len(order)),
		inFlight:    make(map[Bucket]bool),
		locked:      make(map[int]bool),
		initialized: make(map[int]bool),
	}
	if preInitialized {
		for _, b := range order {
			s.initialized[b.P1] = true
			s.initialized[b.P2] = true
		}
		s.anyStarted = true
	}
	return s
}

// Reset starts a new epoch: all buckets become pending again, but the
// initialised set is retained.
func (s *Scheduler) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = make(map[Bucket]bool, len(s.order))
	s.inFlight = make(map[Bucket]bool)
	s.locked = make(map[int]bool)
}

// Acquire leases the next available bucket. held lists partitions the
// caller currently has in memory (for affinity). It returns:
//
//	bucket, true, false  — lease granted
//	_, false, false      — nothing available right now (retry after a Release)
//	_, false, true       — all buckets done this epoch
func (s *Scheduler) Acquire(held []int) (Bucket, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.done) == len(s.order) {
		return Bucket{}, false, true
	}
	heldSet := map[int]bool{}
	for _, p := range held {
		heldSet[p] = true
	}
	var best Bucket
	bestScore := -1
	for _, b := range s.order {
		if s.done[b] || s.inFlight[b] || s.locked[b.P1] || s.locked[b.P2] {
			continue
		}
		if s.anyStarted && !s.initialized[b.P1] && !s.initialized[b.P2] {
			// Only the first bucket may touch two uninitialised partitions.
			continue
		}
		score := 0
		if heldSet[b.P1] {
			score++
		}
		if heldSet[b.P2] {
			score++
		}
		if score > bestScore {
			best, bestScore = b, score
		}
		if bestScore == 2 {
			break
		}
	}
	if bestScore < 0 {
		return Bucket{}, false, false
	}
	s.anyStarted = true
	s.inFlight[best] = true
	s.locked[best.P1] = true
	s.locked[best.P2] = true
	return best, true, false
}

// Release marks a leased bucket complete, unlocking its partitions and
// marking them initialised.
func (s *Scheduler) Release(b Bucket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inFlight[b] {
		panic(fmt.Sprintf("partition: Release of non-leased bucket %v", b))
	}
	delete(s.inFlight, b)
	s.done[b] = true
	s.locked[b.P1] = false
	s.locked[b.P2] = false
	s.initialized[b.P1] = true
	s.initialized[b.P2] = true
}

// MarkDone records b as already completed this epoch without it ever having
// been leased — used when restoring a scheduler from a checkpoint cut. Its
// partitions count as initialised and established.
func (s *Scheduler) MarkDone(b Bucket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done[b] = true
	s.initialized[b.P1] = true
	s.initialized[b.P2] = true
	s.anyStarted = true
}

// DoneBuckets lists the buckets completed this epoch, in order position, so
// checkpoint manifests are deterministic.
func (s *Scheduler) DoneBuckets() []Bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Bucket
	for _, b := range s.order {
		if s.done[b] {
			out = append(out, b)
		}
	}
	return out
}

// Abandon returns a leased bucket to the pending pool without marking it
// done (e.g. a worker died); its partitions are NOT marked initialised.
func (s *Scheduler) Abandon(b Bucket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inFlight[b] {
		return
	}
	delete(s.inFlight, b)
	s.locked[b.P1] = false
	s.locked[b.P2] = false
	// If the abandoned bucket was the very first one (nothing initialised
	// yet and nothing else running), re-open the first-bucket exception so
	// training can restart.
	if len(s.inFlight) == 0 && len(s.initialized) == 0 {
		s.anyStarted = false
	}
}

// Remaining returns the number of buckets not yet completed this epoch.
func (s *Scheduler) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order) - len(s.done)
}

// InFlight returns the number of currently leased buckets.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inFlight)
}
