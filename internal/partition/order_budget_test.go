package partition

import (
	"testing"
	"testing/quick"
)

// Acceptance pin: on an 8×8 grid with a 3-partition buffer the optimized
// order must cost strictly fewer projected loads than inside-out.
func TestBudgetAwareBeatsInsideOut8x8Buffer3(t *testing.T) {
	const p, slots = 8, 3
	io, err := Order(OrderInsideOut, p, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := OrderForBuffer(OrderBudgetAware, p, p, 0, slots)
	if err != nil {
		t.Fatal(err)
	}
	ioCost := SwapCostUnderBuffer(io, slots)
	baCost := SwapCostUnderBuffer(ba, slots)
	t.Logf("8x8 buffer=3: inside_out %d loads, budget_aware %d loads", ioCost, baCost)
	if baCost >= ioCost {
		t.Fatalf("budget_aware %d loads not strictly below inside_out %d", baCost, ioCost)
	}
	if !CheckInvariant(ba) {
		t.Fatal("optimized order violates the initialisation invariant")
	}
}

func TestSwapCostUnboundedIsCompulsoryMinimum(t *testing.T) {
	for _, name := range []string{OrderInsideOut, OrderSequential, OrderRandom, OrderChained} {
		order, err := Order(name, 6, 6, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Unbounded buffer: each of the 6 partitions loads exactly once.
		if got := SwapCostUnderBuffer(order, 0); got != 6 {
			t.Fatalf("%s: unbounded cost %d, want 6 (one compulsory load per partition)", name, got)
		}
		if got := (CostModel{Slots: 0}).Cost(order); got != 6 {
			t.Fatalf("%s: CostModel{0}.Cost = %d, want 6", name, got)
		}
	}
}

func TestSwapCostExactSmall(t *testing.T) {
	// (0,0): load 0. (0,1): load 1. (1,1): both held. (2,0): load 2 evicting
	// LRU 0... with 3 slots nothing is evicted yet, so (0,2) costs 0 more.
	order := []Bucket{{0, 0}, {0, 1}, {1, 1}, {2, 0}, {0, 2}}
	if got := SwapCostUnderBuffer(order, 3); got != 3 {
		t.Fatalf("cost = %d, want 3", got)
	}
	// With only 2 slots, (2,0) evicts 1 and keeps 0; (0,2) is then free.
	if got := SwapCostUnderBuffer(order, 2); got != 3 {
		t.Fatalf("2-slot cost = %d, want 3", got)
	}
}

// Property: an LRU buffer with slots >= 2 never costs more than SwapCount's
// hold-only-the-current-bucket policy, and — LRU being a stack algorithm —
// cost is monotone non-increasing in the buffer size.
func TestSwapCostBufferDominatesSwapCountProperty(t *testing.T) {
	f := func(pRaw, slotRaw uint8, seed uint64) bool {
		p := int(pRaw)%8 + 1
		slots := int(slotRaw)%8 + 2
		for _, name := range []string{OrderInsideOut, OrderSequential, OrderRandom, OrderChained} {
			order, _ := Order(name, p, p, seed)
			c := SwapCostUnderBuffer(order, slots)
			if c > SwapCount(order) {
				return false
			}
			if SwapCostUnderBuffer(order, slots+1) > c {
				return false
			}
			// Bounded below by the compulsory loads.
			if c < SwapCostUnderBuffer(order, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: budget_aware never costs more than inside_out under the same
// buffer, on any square grid.
func TestBudgetAwareNeverWorseProperty(t *testing.T) {
	f := func(pRaw, slotRaw uint8) bool {
		p := int(pRaw)%12 + 1
		slots := int(slotRaw)%6 + 2
		io, err := Order(OrderInsideOut, p, p, 0)
		if err != nil {
			return false
		}
		ba, err := OrderForBuffer(OrderBudgetAware, p, p, 0, slots)
		if err != nil {
			return false
		}
		return SwapCostUnderBuffer(ba, slots) <= SwapCostUnderBuffer(io, slots)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: OptimizeOrder returns a permutation of its input that still
// satisfies the initialisation invariant, for arbitrary grids and buffers.
func TestOptimizeOrderPermutationInvariantProperty(t *testing.T) {
	f := func(srcRaw, dstRaw, slotRaw uint8, seed uint64) bool {
		nSrc := int(srcRaw)%8 + 1
		nDst := int(dstRaw)%8 + 1
		slots := int(slotRaw) % 10 // 0 and 1 exercise the degenerate paths
		base, err := Order(OrderInsideOut, nSrc, nDst, seed)
		if err != nil {
			return false
		}
		opt := OptimizeOrder(base, CostModel{Slots: slots})
		if len(opt) != len(base) {
			return false
		}
		seen := map[Bucket]bool{}
		for _, b := range opt {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		for _, b := range base {
			if !seen[b] {
				return false
			}
		}
		return CheckInvariant(opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderBudgetAwareDegradesToInsideOut(t *testing.T) {
	io, _ := Order(OrderInsideOut, 5, 5, 0)
	for _, slots := range []int{0, 5, 100} { // no budget, or buffer holds everything
		ba, err := OrderForBuffer(OrderBudgetAware, 5, 5, 0, slots)
		if err != nil {
			t.Fatal(err)
		}
		if len(ba) != len(io) {
			t.Fatalf("slots=%d: %d buckets, want %d", slots, len(ba), len(io))
		}
		for i := range ba {
			if ba[i] != io[i] {
				t.Fatalf("slots=%d: order diverges from inside_out at %d: %v vs %v", slots, i, ba[i], io[i])
			}
		}
	}
	// Plain Order never has a buffer to optimise against.
	ba, err := Order(OrderBudgetAware, 5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ba {
		if ba[i] != io[i] {
			t.Fatalf("Order(budget_aware) diverges from inside_out at %d", i)
		}
	}
}

func TestOptimizeOrderDoesNotMutateInput(t *testing.T) {
	base, _ := Order(OrderInsideOut, 6, 6, 0)
	orig := append([]Bucket(nil), base...)
	OptimizeOrder(base, CostModel{Slots: 3})
	for i := range base {
		if base[i] != orig[i] {
			t.Fatalf("input order mutated at %d", i)
		}
	}
}

func TestCostModelBounded(t *testing.T) {
	order, _ := Order(OrderSequential, 4, 4, 0)
	if (CostModel{Slots: 0}).Bounded(order) {
		t.Fatal("unbounded model reported bounded")
	}
	if (CostModel{Slots: 4}).Bounded(order) {
		t.Fatal("buffer holding all 4 partitions reported bounded")
	}
	if !(CostModel{Slots: 3}).Bounded(order) {
		t.Fatal("3-slot buffer over 4 partitions reported unbounded")
	}
}
