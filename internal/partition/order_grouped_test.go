package partition

import (
	"testing"
	"testing/quick"
	"time"
)

// checkPermutation fails the test unless ord is exactly the full nSrc×nDst
// bucket grid, each bucket once.
func checkPermutation(t *testing.T, name string, ord []Bucket, nSrc, nDst int) {
	t.Helper()
	if len(ord) != nSrc*nDst {
		t.Fatalf("%s %d×%d: %d buckets, want %d", name, nSrc, nDst, len(ord), nSrc*nDst)
	}
	seen := make(map[Bucket]bool, len(ord))
	for _, b := range ord {
		if b.P1 < 0 || b.P1 >= nSrc || b.P2 < 0 || b.P2 >= nDst {
			t.Fatalf("%s %d×%d: bucket %v out of grid", name, nSrc, nDst, b)
		}
		if seen[b] {
			t.Fatalf("%s %d×%d: bucket %v emitted twice", name, nSrc, nDst, b)
		}
		seen[b] = true
	}
}

// Acceptance pin for the closed-form path: at P=64 with 8 buffer slots the
// greedy search settles for 722 projected loads; the grouped schedule must
// come in at or below 400 (it measures 393: 64 compulsory loads plus one
// load per group-pair rotation).
func TestGroupedOrder64x8Acceptance(t *testing.T) {
	const p, slots = 64, 8
	ord, err := OrderForBuffer(OrderBudgetAware, p, p, 0, slots)
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, "budget_aware", ord, p, p)
	if !CheckInvariant(ord) {
		t.Fatal("budget_aware order violates the initialisation invariant")
	}
	cost := SwapCostUnderBuffer(ord, slots)
	t.Logf("P=%d slots=%d: budget_aware %d projected loads", p, slots, cost)
	if cost > 400 {
		t.Fatalf("budget_aware costs %d projected loads at P=%d slots=%d, want <= 400", cost, p, slots)
	}
	greedy := OptimizeOrder(insideOut(p, p), CostModel{Slots: slots})
	if gc := SwapCostUnderBuffer(greedy, slots); cost > gc {
		t.Fatalf("budget_aware %d loads worse than greedy search %d", cost, gc)
	}
}

// Acceptance pin for the large-grid path: ordering a 128×128 grid must
// cost milliseconds (the greedy search takes ~1.5s there) and beat
// inside-out at every swept slot count; CheckInvariant must hold.
func TestBudgetAwareLargeGridFastAndCheap(t *testing.T) {
	const p = 128
	for _, slots := range []int{3, 4, 6, 8} {
		start := time.Now()
		ord, err := OrderForBuffer(OrderBudgetAware, p, p, 0, slots)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		// The acceptance bound is 50ms (measured ~10ms); allow slack for
		// slow CI machines while still catching a fallback into the
		// near-quadratic greedy search (~1.5s at this size).
		if elapsed > 200*time.Millisecond {
			t.Errorf("slots=%d: ordering took %v, want milliseconds", slots, elapsed)
		}
		checkPermutation(t, "budget_aware", ord, p, p)
		if !CheckInvariant(ord) {
			t.Fatalf("slots=%d: invariant violated", slots)
		}
		cost := SwapCostUnderBuffer(ord, slots)
		ioCost := SwapCostUnderBuffer(insideOut(p, p), slots)
		t.Logf("P=%d slots=%d: budget_aware %d loads vs inside_out %d (%v)", p, slots, cost, ioCost, elapsed)
		if cost > ioCost {
			t.Errorf("slots=%d: budget_aware %d loads worse than inside_out %d", slots, cost, ioCost)
		}
	}
}

// The closed forms must also beat the pre-PR greedy search head-to-head on
// the big grid — the reason they exist. Running the greedy optimiser at
// P=128 takes several seconds, so this pin is skipped in -short mode.
func TestBudgetAwareNotWorseThanGreedyLargeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("greedy search at P=128 takes seconds; skipped in -short")
	}
	const p = 128
	base := insideOut(p, p)
	for _, slots := range []int{3, 4, 6, 8} {
		plan := PlanBudgetAware(p, p, slots)
		greedy := SwapCostUnderBuffer(OptimizeOrder(base, CostModel{Slots: slots}), slots)
		t.Logf("P=%d slots=%d: %s %d loads vs greedy %d", p, slots, plan.Strategy, plan.Cost, greedy)
		if plan.Cost > greedy {
			t.Errorf("slots=%d: budget_aware (%s) %d loads worse than greedy %d", slots, plan.Strategy, plan.Cost, greedy)
		}
	}
}

// Property: both closed-form constructions emit each bucket of the grid
// exactly once and preserve the §4.1 invariant on arbitrary rectangular
// grids and buffer sizes.
func TestClosedFormPermutationInvariantProperty(t *testing.T) {
	f := func(srcRaw, dstRaw, slotRaw uint8) bool {
		nSrc := int(srcRaw)%17 + 1
		nDst := int(dstRaw)%17 + 1
		slots := int(slotRaw) % 11 // 0..2 exercise the inside-out fallback
		for _, ord := range [][]Bucket{
			GroupedOrder(nSrc, nDst, slots),
			stridedOrder(nSrc, nDst, slots),
		} {
			if len(ord) != nSrc*nDst || !CheckInvariant(ord) {
				return false
			}
			seen := make(map[Bucket]bool, len(ord))
			for _, b := range ord {
				if b.P1 < 0 || b.P1 >= nSrc || b.P2 < 0 || b.P2 >= nDst || seen[b] {
					return false
				}
				seen[b] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// GroupedOrder and stridedOrder fall back to inside-out when the buffer
// cannot rotate (fewer than 3 slots) or already holds every partition.
func TestClosedFormDegenerateFallback(t *testing.T) {
	io := insideOut(6, 6)
	for _, slots := range []int{-1, 0, 1, 2, 6, 100} {
		for name, ord := range map[string][]Bucket{
			"grouped": GroupedOrder(6, 6, slots),
			"strided": stridedOrder(6, 6, slots),
		} {
			if len(ord) != len(io) {
				t.Fatalf("%s slots=%d: %d buckets", name, slots, len(ord))
			}
			for i := range ord {
				if ord[i] != io[i] {
					t.Fatalf("%s slots=%d: diverges from inside_out at %d", name, slots, i)
				}
			}
		}
	}
}

// PlanBudgetAware keeps the greedy search on small grids (where its
// one-step lookahead still wins) and never returns a plan costing more
// than inside-out.
func TestPlanBudgetAwareSelection(t *testing.T) {
	// 8×8 with 3 slots: greedy reaches 18 loads, the closed forms 27+.
	plan := PlanBudgetAware(8, 8, 3)
	if plan.Strategy != StrategyGreedy {
		t.Fatalf("8×8 slots=3 chose %s, want greedy", plan.Strategy)
	}
	if plan.Cost > plan.BaseCost {
		t.Fatalf("plan cost %d above inside_out %d", plan.Cost, plan.BaseCost)
	}
	// 64×64 with 8 slots: past the greedy cutoff, the grouped schedule wins.
	plan = PlanBudgetAware(64, 64, 8)
	if plan.Strategy != StrategyGrouped {
		t.Fatalf("64×64 slots=8 chose %s, want grouped", plan.Strategy)
	}
	// 128×128 with 4 slots: shallow buffer, the strided walk wins (the
	// grouped schedule's slots-2 groups are too small to amortise there).
	plan = PlanBudgetAware(128, 128, 4)
	if plan.Strategy != StrategyStrided {
		t.Fatalf("128×128 slots=4 chose %s, want strided", plan.Strategy)
	}
	// Unbounded buffers plan inside-out with zero cost fields.
	plan = PlanBudgetAware(5, 5, 0)
	if plan.Strategy != StrategyInsideOut || plan.Cost != 0 {
		t.Fatalf("unbounded plan = %+v, want inside_out", plan)
	}
}

// SwapCostUnderBuffer must be a pure function of the order: tied last-use
// stamps used to be broken by map iteration order, making costs flicker
// between runs.
func TestSwapCostDeterministic(t *testing.T) {
	ord := stridedOrder(32, 32, 4)
	want := SwapCostUnderBuffer(ord, 4)
	for i := 0; i < 20; i++ {
		if got := SwapCostUnderBuffer(ord, 4); got != want {
			t.Fatalf("cost changed between runs: %d then %d", want, got)
		}
	}
}
