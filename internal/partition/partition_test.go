package partition

import (
	"sync"
	"testing"
)

func TestOrderCoversAllBuckets(t *testing.T) {
	for _, name := range []string{OrderInsideOut, OrderSequential, OrderRandom, OrderChained} {
		for _, dims := range [][2]int{{1, 1}, {3, 3}, {4, 1}, {1, 4}, {2, 5}} {
			order, err := Order(name, dims[0], dims[1], 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(order) != dims[0]*dims[1] {
				t.Fatalf("%s %v: %d buckets, want %d", name, dims, len(order), dims[0]*dims[1])
			}
			seen := map[Bucket]bool{}
			for _, b := range order {
				if b.P1 < 0 || b.P1 >= dims[0] || b.P2 < 0 || b.P2 >= dims[1] {
					t.Fatalf("%s %v: bucket %v out of range", name, dims, b)
				}
				if seen[b] {
					t.Fatalf("%s %v: duplicate bucket %v", name, dims, b)
				}
				seen[b] = true
			}
		}
	}
}

func TestOrderUnknownName(t *testing.T) {
	if _, err := Order("spiral", 2, 2, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestOrderBadDims(t *testing.T) {
	if _, err := Order(OrderInsideOut, 0, 2, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestInsideOutStartsAtOrigin(t *testing.T) {
	order, _ := Order(OrderInsideOut, 4, 4, 0)
	if order[0] != (Bucket{0, 0}) {
		t.Fatalf("first bucket = %v, want (0,0)", order[0])
	}
}

func TestInsideOutSatisfiesInvariant(t *testing.T) {
	for p := 1; p <= 8; p++ {
		order, _ := Order(OrderInsideOut, p, p, 0)
		if !CheckInvariant(order) {
			t.Fatalf("inside-out violates invariant at P=%d: %v", p, order)
		}
	}
}

func TestInsideOutConsecutiveShare(t *testing.T) {
	// The stronger property that makes inside-out swap-efficient:
	// consecutive buckets share a partition.
	order, _ := Order(OrderInsideOut, 6, 6, 0)
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if a.P1 != b.P1 && a.P1 != b.P2 && a.P2 != b.P1 && a.P2 != b.P2 {
			t.Fatalf("buckets %d,%d (%v → %v) share nothing", i-1, i, a, b)
		}
	}
}

func TestSequentialAndChainedSatisfyInvariant(t *testing.T) {
	for _, name := range []string{OrderSequential, OrderChained} {
		order, _ := Order(name, 5, 5, 0)
		if !CheckInvariant(order) {
			t.Fatalf("%s violates invariant", name)
		}
	}
}

func TestCheckInvariantDetectsViolation(t *testing.T) {
	bad := []Bucket{{0, 0}, {2, 3}} // second touches two fresh partitions
	if CheckInvariant(bad) {
		t.Fatal("violation not detected")
	}
	good := []Bucket{{0, 0}, {0, 3}, {3, 2}}
	if !CheckInvariant(good) {
		t.Fatal("valid order rejected")
	}
}

func TestSwapCountInsideOutBeatsRandom(t *testing.T) {
	const p = 8
	io, _ := Order(OrderInsideOut, p, p, 0)
	// Average several random orders to avoid a lucky shuffle.
	randTotal := 0
	const tries = 5
	for s := uint64(0); s < tries; s++ {
		ro, _ := Order(OrderRandom, p, p, s)
		randTotal += SwapCount(ro)
	}
	ioSwaps := SwapCount(io)
	randAvg := randTotal / tries
	if ioSwaps >= randAvg {
		t.Fatalf("inside-out swaps %d not better than random avg %d", ioSwaps, randAvg)
	}
}

func TestSwapCountExact(t *testing.T) {
	// (0,0): load 0 → 1 load. (0,1): keep 0, load 1 → 1. (1,1): keep 1,
	// drop 0 → 1... wait (1,1) needs only partition 1, held {0,1} → 0 loads.
	order := []Bucket{{0, 0}, {0, 1}, {1, 1}}
	if got := SwapCount(order); got != 2 {
		t.Fatalf("SwapCount = %d, want 2", got)
	}
}

func TestBucketDisjoint(t *testing.T) {
	if !(Bucket{0, 1}).Disjoint(Bucket{2, 3}) {
		t.Fatal("disjoint buckets reported overlapping")
	}
	if (Bucket{0, 1}).Disjoint(Bucket{1, 2}) {
		t.Fatal("overlapping buckets reported disjoint")
	}
	if (Bucket{0, 1}).Disjoint(Bucket{2, 0}) {
		t.Fatal("cross overlap missed")
	}
}

func TestBucketParts(t *testing.T) {
	if got := (Bucket{2, 2}).Parts(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Parts = %v", got)
	}
	if got := (Bucket{1, 3}).Parts(); len(got) != 2 {
		t.Fatalf("Parts = %v", got)
	}
}

func TestSchedulerServesAllBucketsOnce(t *testing.T) {
	order, _ := Order(OrderInsideOut, 4, 4, 0)
	s := NewScheduler(order, false)
	served := map[Bucket]bool{}
	for {
		b, ok, done := s.Acquire(nil)
		if done {
			break
		}
		if !ok {
			t.Fatal("single-worker acquire should never stall")
		}
		if served[b] {
			t.Fatalf("bucket %v served twice", b)
		}
		served[b] = true
		s.Release(b)
	}
	if len(served) != 16 {
		t.Fatalf("served %d buckets, want 16", len(served))
	}
}

func TestSchedulerDisjointLeases(t *testing.T) {
	order, _ := Order(OrderInsideOut, 8, 8, 0)
	s := NewScheduler(order, true) // pre-initialised: max parallelism
	// Acquire as many concurrent leases as possible; they must be pairwise
	// disjoint and at least P/2 = 4 (the paper's parallelism bound for
	// off-diagonal buckets; diagonal buckets lock a single partition so the
	// count can exceed it).
	var leases []Bucket
	for {
		b, ok, _ := s.Acquire(nil)
		if !ok {
			break
		}
		leases = append(leases, b)
	}
	if len(leases) < 4 {
		t.Fatalf("only %d concurrent leases at P=8, want >= 4", len(leases))
	}
	locked := map[int]bool{}
	for _, b := range leases {
		for _, p := range b.Parts() {
			if locked[p] {
				t.Fatalf("partition %d leased twice in %v", p, leases)
			}
			locked[p] = true
		}
	}
}

func TestSchedulerUninitializedRule(t *testing.T) {
	order, _ := Order(OrderInsideOut, 4, 4, 0)
	s := NewScheduler(order, false)
	b1, ok, _ := s.Acquire(nil)
	if !ok {
		t.Fatal("first acquire failed")
	}
	if b1 != (Bucket{0, 0}) {
		t.Fatalf("first bucket %v, want (0,0)", b1)
	}
	// While (0,0) is in flight, no other bucket has an initialised
	// partition, so nothing else may start.
	if b2, ok2, _ := s.Acquire(nil); ok2 {
		t.Fatalf("second bucket %v granted while nothing initialised", b2)
	}
	s.Release(b1)
	// Now only buckets touching 0 qualify.
	b3, ok3, _ := s.Acquire(nil)
	if !ok3 {
		t.Fatal("acquire after first release failed")
	}
	if b3.P1 != 0 && b3.P2 != 0 {
		t.Fatalf("bucket %v does not touch initialised partition 0", b3)
	}
}

func TestSchedulerAffinity(t *testing.T) {
	order, _ := Order(OrderSequential, 4, 4, 0)
	s := NewScheduler(order, true)
	// Holding partitions {2,3}, the scheduler should prefer (2,3)-ish
	// buckets over (0,0).
	b, ok, _ := s.Acquire([]int{2, 3})
	if !ok {
		t.Fatal("acquire failed")
	}
	score := 0
	if b.P1 == 2 || b.P1 == 3 {
		score++
	}
	if b.P2 == 2 || b.P2 == 3 {
		score++
	}
	if score < 2 {
		t.Fatalf("affinity ignored: got %v while holding {2,3}", b)
	}
}

func TestSchedulerResetKeepsInitialized(t *testing.T) {
	order, _ := Order(OrderInsideOut, 2, 2, 0)
	s := NewScheduler(order, false)
	for {
		b, ok, done := s.Acquire(nil)
		if done {
			break
		}
		if !ok {
			t.Fatal("stall")
		}
		s.Release(b)
	}
	s.Reset()
	// After reset, any bucket may start immediately (all initialised):
	// grab (1,1) equivalents without the (0,0)-first restriction.
	got := map[Bucket]bool{}
	b1, ok, _ := s.Acquire([]int{1})
	if !ok {
		t.Fatal("acquire after reset failed")
	}
	got[b1] = true
	if b1.P1 != 1 && b1.P2 != 1 {
		t.Fatalf("affinity+initialised should allow bucket touching 1, got %v", b1)
	}
}

func TestSchedulerAbandon(t *testing.T) {
	order, _ := Order(OrderInsideOut, 2, 2, 0)
	s := NewScheduler(order, false)
	b, _, _ := s.Acquire(nil)
	s.Abandon(b)
	if s.Remaining() != 4 {
		t.Fatalf("Remaining = %d after abandon, want 4", s.Remaining())
	}
	// The same bucket can be re-acquired.
	b2, ok, _ := s.Acquire(nil)
	if !ok || b2 != b {
		t.Fatalf("re-acquire after abandon got %v ok=%v, want %v", b2, ok, b)
	}
}

func TestSchedulerReleaseUnleasedPanics(t *testing.T) {
	order, _ := Order(OrderInsideOut, 2, 2, 0)
	s := NewScheduler(order, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Release(Bucket{1, 1})
}

func TestSchedulerConcurrentWorkers(t *testing.T) {
	// Hammer the scheduler from many goroutines; every bucket must be
	// served exactly once and concurrent leases must stay disjoint.
	order, _ := Order(OrderInsideOut, 8, 8, 0)
	s := NewScheduler(order, true)
	var mu sync.Mutex
	served := map[Bucket]int{}
	activeParts := map[int]int{}
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b, ok, done := s.Acquire(nil)
				if done {
					return
				}
				if !ok {
					continue
				}
				mu.Lock()
				served[b]++
				for _, p := range b.Parts() {
					activeParts[p]++
					if activeParts[p] > 1 {
						fail <- "partition held twice: " + b.String()
					}
				}
				mu.Unlock()
				mu.Lock()
				for _, p := range b.Parts() {
					activeParts[p]--
				}
				mu.Unlock()
				s.Release(b)
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	if len(served) != 64 {
		t.Fatalf("served %d buckets, want 64", len(served))
	}
	for b, n := range served {
		if n != 1 {
			t.Fatalf("bucket %v served %d times", b, n)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	if (Bucket{2, 3}).Index(4) != 11 {
		t.Fatalf("Index = %d, want 11", (Bucket{2, 3}).Index(4))
	}
}
