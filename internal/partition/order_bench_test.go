package partition

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkOrderLargeP is the CI guard for large-grid ordering cost: it
// runs in the short-mode bench smoke and FAILS (not just reports) if
// OrderForBuffer("budget_aware", …) at P=96/128 either exceeds a generous
// wall-time bound — the near-quadratic greedy search takes ~0.7s at P=96
// and ~1.5s at P=128, so a fallback into it is unmistakable — or returns
// an order costing more projected loads than inside-out. This pins both
// the closed-form grouped/strided path and the planner's inside-out floor
// against regressions.
func BenchmarkOrderLargeP(b *testing.B) {
	const slots = 8
	for _, p := range []int{96, 128} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var cost, baseCost int
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				ord, err := OrderForBuffer(OrderBudgetAware, p, p, 0, slots)
				elapsed = time.Since(start)
				if err != nil {
					b.Fatal(err)
				}
				if elapsed > 500*time.Millisecond {
					b.Fatalf("ordering P=%d took %v; want milliseconds (greedy fallback?)", p, elapsed)
				}
				if !CheckInvariant(ord) {
					b.Fatalf("P=%d: order violates the initialisation invariant", p)
				}
				cost = SwapCostUnderBuffer(ord, slots)
				baseCost = SwapCostUnderBuffer(insideOut(p, p), slots)
				if cost > baseCost {
					b.Fatalf("P=%d: budget_aware %d projected loads worse than inside_out %d", p, cost, baseCost)
				}
			}
			b.ReportMetric(float64(elapsed.Microseconds())/1000, "orderMs")
			b.ReportMetric(float64(cost), "projLoads")
			b.ReportMetric(float64(baseCost), "insideOutLoads")
		})
	}
}
