package partition

import "sort"

// Closed-form BETA-style orderings (Marius, Mohoney et al., OSDI 2021) —
// the large-grid complement to OptimizeOrder's greedy search. The greedy
// optimiser walks every pending bucket per step, which is near-quadratic in
// the bucket count: ordering a 96×96 grid takes ~0.7s, and its capped gain
// heuristic stops finding the blocked structure on big grids (722 loads at
// P=64 with 8 slots where the closed form needs under 400). The two
// constructions below compute buffer-aware schedules directly in O(P²):
//
//   - GroupedOrder pins a group of partitions resident and rotates every
//     earlier partition through the spare slots — strongest when the
//     buffer is deep (slots ≥ ~6), where big pinned groups amortise well.
//   - stridedOrder walks arithmetic progressions through the partitions so
//     each arrival pairs with a sliding window of recent partitions —
//     strongest when the buffer is shallow, where it keeps the full
//     slots-1 pairing capacity that a pinned group cannot.
//
// PlanBudgetAware evaluates both (plus the greedy search on grids small
// enough to afford it) under SwapCostUnderBuffer and returns the cheapest,
// so OrderForBuffer("budget_aware", …) is never worse than inside-out and
// costs milliseconds even at P=128.

// groupedMinSlots is the smallest buffer the closed forms are defined for:
// one pinned partition plus two rotating slots.
const groupedMinSlots = 3

// GroupedOrder returns all nSrc×nDst buckets in the closed-form grouped
// (BETA-style) order for a machine holding `slots` partitions resident:
// partitions are split into groups sized to the buffer; each group's
// super-step first sweeps every earlier partition through the rotating
// slots — so each group pair is visited exactly once, with one group
// pinned and the other rotating — and then emits the group's intra-group
// block while the group is still resident. The result is a permutation of
// the full bucket grid that satisfies CheckInvariant: the first bucket of
// every super-step after the first touches rotator 0, which was trained in
// group 0's block.
//
// One subtlety separates this from the textbook BETA construction. Marius
// pins slots-1 partitions and rotates the single remaining slot; under the
// strict-LRU buffer that SwapCostUnderBuffer models, that schedule
// thrashes — the rotating partition is always the most recently used, so
// LRU evicts a pinned group member instead and reloads it a bucket later,
// doubling the rotation cost. Pinning slots-2 and leaving TWO rotating
// slots restores one-load-per-rotation behaviour: while rotator q_k sweeps
// the group, its predecessor q_{k-1} stays resident and the one before
// that, q_{k-2}, becomes the genuine LRU victim exactly when q_{k+1}
// arrives. The smaller group costs ≈ P²/(2(slots-2)) loads instead of the
// ideal P²/(2(slots-1)), but an LRU cache actually delivers it, which the
// ideal pinned schedule cannot.
//
// With slots < 3, or a buffer that already holds every partition, there is
// no rotation structure to exploit and the inside-out order is returned.
func GroupedOrder(nSrc, nDst, slots int) []Bucket {
	p := maxParts(nSrc, nDst)
	if slots < groupedMinSlots || slots >= p {
		return insideOut(nSrc, nDst)
	}
	groupSize := slots - 2
	if slots == groupedMinSlots {
		// With three slots, a pair group and a single rotating slot still
		// run at one load per rotation: a rotator's last bucket stamps it
		// and the second group member together, and SwapCostUnderBuffer
		// breaks the tie toward the lower partition number — always the
		// rotator, which comes from an earlier group. (For larger groups
		// the mid-group members go stale mid-sweep and a single spare slot
		// thrashes, hence slots-2 above.)
		groupSize = 2
	}
	out := make([]Bucket, 0, nSrc*nDst)
	add := func(b Bucket) {
		if b.P1 < nSrc && b.P2 < nDst {
			out = append(out, b)
		}
	}
	for start := 0; start < p; start += groupSize {
		end := start + groupSize
		if end > p {
			end = p
		}
		// Rotation sweeps: every partition trained in an earlier super-step
		// rotates through the spare slots against the pinned group. The
		// (g,q) and (q,g) buckets are interleaved so the rotator is touched
		// on every bucket and the group members in ascending stamp order.
		for q := 0; q < start; q++ {
			for g := start; g < end; g++ {
				add(Bucket{g, q})
				add(Bucket{q, g})
			}
		}
		// Intra-group block, emitted while the whole group is resident.
		// The inside-out shell pattern keeps the §4.1 invariant within the
		// block (group 0 has no rotation sweep to ground it).
		for _, b := range insideOut(end-start, end-start) {
			add(Bucket{start + b.P1, start + b.P2})
		}
	}
	return out
}

// stridedOrder is the shallow-buffer closed form: a difference-cover walk.
// Partitions are visited along arithmetic progressions (strides) through
// 0..P-1; each arrival emits the buckets pairing it with its previous
// slots-1 walk positions, oldest first, so under LRU the partition falling
// out of the window is the genuine eviction victim and each arrival costs
// one load while covering up to slots-1 new partition pairs — the full
// P²/(2(slots-1)) BETA bound that a pinned group forfeits a slot to
// approximate. A stride-d walk covers all partition pairs whose circular
// difference is d, 2d, …, (slots-1)·d mod P, so a small greedy
// difference cover (stride 1 first, which also grounds the §4.1 invariant
// by emitting every diagonal bucket early) suffices to reach every pair;
// buckets the walks miss (rectangular grids, wrap corners) are appended in
// inside-out order at the end, when every partition has been seen.
func stridedOrder(nSrc, nDst, slots int) []Bucket {
	p := maxParts(nSrc, nDst)
	if slots < groupedMinSlots || slots >= p {
		return insideOut(nSrc, nDst)
	}
	w := slots - 1
	strides := strideCover(p, w)

	emitted := make(map[Bucket]bool, nSrc*nDst)
	out := make([]Bucket, 0, nSrc*nDst)
	emit := func(b Bucket) {
		if b.P1 < nSrc && b.P2 < nDst && !emitted[b] {
			emitted[b] = true
			out = append(out, b)
		}
	}
	for _, s := range strides {
		g := gcd(s.d, p)
		for c0 := 0; c0 < g; c0++ {
			for i := 0; i < p/g; i++ {
				x := (c0 + i*s.d) % p
				for _, k := range s.ks {
					pred := ((x-k*s.d)%p + p) % p
					if pred != x {
						emit(Bucket{x, pred})
						emit(Bucket{pred, x})
					}
				}
				// Diagonals land in the stride-1 walk (every partition is an
				// arrival there), after the arrival's pair buckets so (x,x)
				// never leads with an ungrounded partition; by the end of
				// stride 1 every in-grid partition has appeared, grounding
				// the §4.1 invariant for the remaining strides. Duplicates
				// are skipped, so later strides pay nothing here.
				emit(Bucket{x, x})
			}
		}
	}
	// Sweep up anything the walks missed (rectangular-grid corners), in
	// inside-out order: every partition has appeared by now, so the
	// invariant cannot break.
	for _, b := range insideOut(nSrc, nDst) {
		emit(b)
	}
	return out
}

// walkStride is one arithmetic progression of the strided walk: the stride
// d plus the k-offsets whose difference classes this stride is credited
// with, ordered so the walk emits each arrival's stalest predecessor first.
type walkStride struct {
	d  int
	ks []int
}

// strideCover picks the walk strides: a set D ∋ 1 such that every circular
// difference class 1..p/2 equals fold(k·d) for some d ∈ D, k ≤ w — so the
// stride walks between them visit every partition pair. Each stride's walk
// costs ~p loads, making |D| the dominant term of the strided order's
// cost, so after a greedy cover (maximising newly covered classes per walk
// arrival, with thrash-prone offset patterns penalised) the set is refined
// by a deterministic local search: drop strides made redundant by later
// picks, and replace any two strides whose unique contribution fits under
// a single substitute. Everything is O(p²·w) or better, far below the walk
// emission itself.
func strideCover(p, w int) []walkStride {
	fold := func(x int) int {
		x %= p
		if x > p/2 {
			x = p - x
		}
		return x
	}
	classesOf := func(d int) []int {
		out := make([]int, 0, w)
		for k := 1; k <= w; k++ {
			c := fold(k * d)
			dup := c == 0
			for _, prev := range out {
				dup = dup || prev == c
			}
			if !dup {
				out = append(out, c)
			}
		}
		return out
	}
	arrivalsOf := func(d int) int {
		g := gcd(d, p)
		if cycle := p / g; cycle > w {
			return p + g*w
		}
		return p
	}

	covered := make([]bool, p/2+1)
	uncovered := p / 2
	strides := []int{}
	addStride := func(d int) {
		strides = append(strides, d)
		for _, c := range classesOf(d) {
			if !covered[c] {
				covered[c] = true
				uncovered--
			}
		}
	}
	// newKs returns the smallest k per class stride d would newly cover
	// under the current coverage — the offsets its walk would emit.
	newKs := func(d int) []int {
		ks := []int{}
		seen := map[int]bool{}
		for k := 1; k <= w; k++ {
			c := fold(k * d)
			if c != 0 && !covered[c] && !seen[c] {
				seen[c] = true
				ks = append(ks, k)
			}
		}
		return ks
	}
	factorMemo := map[string]float64{}
	factorOf := func(ks []int) float64 {
		key := make([]byte, len(ks))
		for i, k := range ks {
			key[i] = byte(k)
		}
		f, ok := factorMemo[string(key)]
		if !ok {
			f = walkLoadFactor(ks, w+1)
			factorMemo[string(key)] = f
		}
		return f
	}
	addStride(1)
	for uncovered > 0 {
		best := 0
		var bestScore float64
		for d := 2; d <= p/2; d++ {
			ks := newKs(d)
			if len(ks) == 0 {
				continue
			}
			cost := float64(arrivalsOf(d)) * factorOf(ks)
			if score := float64(len(ks)) / cost; score > bestScore {
				best, bestScore = d, score
			}
		}
		if best == 0 {
			break // cannot happen: any uncovered class c is covered by stride c
		}
		addStride(best)
	}

	// Local search. coverCount tracks how many chosen strides cover each
	// class; a stride is droppable when nothing relies on it alone.
	coverCount := make([]int, p/2+1)
	for _, d := range strides {
		for _, c := range classesOf(d) {
			coverCount[c]++
		}
	}
	uniqueTo := func(d int) []int {
		out := []int{}
		for _, c := range classesOf(d) {
			if coverCount[c] == 1 {
				out = append(out, c)
			}
		}
		return out
	}
	remove := func(i int) {
		for _, c := range classesOf(strides[i]) {
			coverCount[c]--
		}
		strides = append(strides[:i], strides[i+1:]...)
	}
	add := func(d int) {
		strides = append(strides, d)
		for _, c := range classesOf(d) {
			coverCount[c]++
		}
	}
	inSet := func(d int) bool {
		for _, s := range strides {
			if s == d {
				return true
			}
		}
		return false
	}
	// covers reports whether stride d covers every class in need.
	covers := func(d int, need []int) bool {
		for _, c := range need {
			ok := false
			for _, dc := range classesOf(d) {
				if dc == c {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	for improved := true; improved; {
		improved = false
		// Drop strides (never stride 1 — the walk that grounds the
		// invariant) whose classes are all covered elsewhere.
		for i := len(strides) - 1; i >= 1; i-- {
			if len(uniqueTo(strides[i])) == 0 {
				remove(i)
				improved = true
			}
		}
		// Replace two strides with one covering both unique contributions.
	replace:
		for i := 1; i < len(strides); i++ {
			for j := i + 1; j < len(strides); j++ {
				need := append(uniqueTo(strides[i]), uniqueTo(strides[j])...)
				if len(need) > w {
					continue
				}
				for d := 2; d <= p/2; d++ {
					if !inSet(d) && covers(d, need) {
						remove(j)
						remove(i)
						add(d)
						improved = true
						break replace
					}
				}
			}
		}
	}

	// Replay coverage in final stride order to credit each stride the
	// classes it emits (smallest k per class), then order each stride's
	// offsets stalest-predecessor-first for the walk.
	for i := range covered {
		covered[i] = false
	}
	out := make([]walkStride, 0, len(strides))
	for _, d := range strides {
		ks := newKs(d)
		for _, c := range classesOf(d) {
			covered[c] = true
		}
		if len(ks) > 0 {
			out = append(out, walkStride{d: d, ks: orderKsByStaleness(ks)})
		}
	}
	return out
}

// walkLoadFactor measures the steady-state loads-per-arrival of a stride
// walk emitting the given k-offsets under an LRU buffer of `slots`
// partitions. Offset patterns differ sharply here: a contiguous pattern
// like {1,2,3} runs at one load per arrival, while a pattern with a hole —
// say {2,3}, whose consecutive blocks need five distinct partitions in
// four slots — mis-evicts a still-needed predecessor every arrival and
// reloads it a bucket later, costing over twice as much. Deriving the
// distinction analytically is error-prone, and the walk's behaviour is
// invariant under stride scaling, so the factor is measured directly: a
// canonical stride-1 walk is simulated against the same LRU model
// SwapCostUnderBuffer uses and the second half's load rate is returned.
// strideCover divides each candidate's class gain by this factor so the
// cover is priced in actual loads, not walk length.
func walkLoadFactor(ks []int, slots int) float64 {
	ordered := orderKsByStaleness(ks)
	maxK := 0
	for _, k := range ordered {
		if k > maxK {
			maxK = k
		}
	}
	n := 8 * (slots + maxK) // warm-up plus measurement window
	held := map[int]int64{}
	var clock int64
	loads, counting := 0, false
	touch := func(b Bucket) {
		clock++
		for _, q := range b.Parts() {
			if _, ok := held[q]; !ok {
				if counting {
					loads++
				}
				for len(held) >= slots {
					victim := lruVictim(held, b)
					if victim < 0 {
						break
					}
					delete(held, victim)
				}
			}
			held[q] = clock
		}
	}
	warmup := n / 2
	for x := 0; x < n; x++ {
		counting = x >= warmup
		for _, k := range ordered {
			if x-k >= 0 {
				touch(Bucket{x, x - k})
				touch(Bucket{x - k, x})
			}
		}
	}
	if loads == 0 {
		return 1
	}
	return float64(loads) / float64(n-warmup)
}

// orderKsByStaleness orders a stride's k-offsets so each arrival's stalest
// predecessor is emitted first: the predecessor at offset k was last
// touched k-prev(k) arrivals ago (prev(k) being the largest smaller offset
// in K∪{0}), and pairing it in the arrival's first bucket keeps the LRU
// eviction scan off it, so the eviction lands on the partition that is
// genuinely done.
func orderKsByStaleness(ks []int) []int {
	in := map[int]bool{0: true}
	for _, k := range ks {
		in[k] = true
	}
	staleness := func(k int) int {
		for j := k - 1; j >= 0; j-- {
			if in[j] {
				return k - j
			}
		}
		return k
	}
	out := append([]int(nil), ks...)
	sort.Slice(out, func(a, b int) bool {
		sa, sb := staleness(out[a]), staleness(out[b])
		if sa != sb {
			return sa > sb
		}
		return out[a] > out[b]
	})
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func maxParts(nSrc, nDst int) int {
	if nSrc > nDst {
		return nSrc
	}
	return nDst
}

// greedyOrderMaxBuckets caps the grid size on which PlanBudgetAware still
// runs the greedy OptimizeOrder search. The search is near-quadratic in
// the bucket count (~20ms at 32×32, ~0.7s at 96×96, ~1.5s at 128×128);
// past this cutoff only the O(P²) closed forms compete, keeping
// budget_aware ordering in the low milliseconds on the grids the paper
// targets. The cutoff sits past the measured crossover (~P=32 square)
// where the closed forms start beating the capped greedy search anyway.
const greedyOrderMaxBuckets = 1024

// Strategies PlanBudgetAware chooses between, recorded in OrderPlan.
const (
	StrategyInsideOut = "inside_out"
	StrategyGreedy    = "greedy"
	StrategyGrouped   = "grouped"
	StrategyStrided   = "strided"
)

// OrderPlan is the outcome of planning a budget_aware order: the chosen
// bucket sequence plus how it was chosen, for CLIs and benchmarks that
// want to report the decision.
type OrderPlan struct {
	Order    []Bucket
	Strategy string // StrategyInsideOut, StrategyGreedy, StrategyGrouped or StrategyStrided
	Cost     int    // SwapCostUnderBuffer(Order, Slots)
	BaseCost int    // inside_out's cost under the same buffer
	Slots    int
}

// PlanBudgetAware builds the budget_aware order for an nSrc×nDst bucket
// grid and a buffer of `slots` resident partitions, and reports which
// strategy won. Candidates are the closed-form grouped and strided orders
// and — on grids of at most greedyOrderMaxBuckets buckets — the greedy
// OptimizeOrder search; each is priced with SwapCostUnderBuffer and the
// cheapest wins, with inside-out as the floor (so the result never costs
// more than the default order). A closed form is chosen over the greedy
// search only by strictly beating it. With slots <= 0 or a buffer that
// already holds every partition there is nothing to optimise and the plan
// is inside-out.
func PlanBudgetAware(nSrc, nDst, slots int) OrderPlan {
	base := insideOut(nSrc, nDst)
	plan := OrderPlan{Order: base, Strategy: StrategyInsideOut, Slots: slots}
	if slots <= 0 || !(CostModel{Slots: slots}).Bounded(base) {
		return plan
	}
	plan.BaseCost = SwapCostUnderBuffer(base, slots)
	plan.Cost = plan.BaseCost
	consider := func(order []Bucket, strategy string) {
		if c := SwapCostUnderBuffer(order, slots); c < plan.Cost {
			plan.Order, plan.Strategy, plan.Cost = order, strategy, c
		}
	}
	if len(base) <= greedyOrderMaxBuckets {
		consider(OptimizeOrder(base, CostModel{Slots: slots}), StrategyGreedy)
	}
	// Strict improvement required: on a cost tie the earlier candidate is
	// kept, so a closed form displaces the greedy search (or inside-out)
	// only by winning outright.
	consider(stridedOrder(nSrc, nDst, slots), StrategyStrided)
	consider(GroupedOrder(nSrc, nDst, slots), StrategyGrouped)
	return plan
}
