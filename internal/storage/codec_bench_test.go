package storage

import (
	"bufio"
	"encoding/binary"
	"io"
	"path/filepath"
	"testing"

	"pbg/internal/rng"
)

// benchShard is ~25 MB: 100k rows at d=64, the shape of one Freebase-scale
// partition shard.
func benchShard() *Shard {
	sh := NewShard(0, 0, 100_000, 64)
	sh.Init(rng.New(1), 1)
	return sh
}

func BenchmarkShardWrite(b *testing.B) {
	sh := benchShard()
	path := filepath.Join(b.TempDir(), "s.pbg")
	b.SetBytes(sh.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteShard(path, sh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardRead(b *testing.B) {
	sh := benchShard()
	path := filepath.Join(b.TempDir(), "s.pbg")
	if err := WriteShard(path, sh); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(sh.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadShard(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFloatEncodeDirect measures the direct little-endian codec against
// BenchmarkFloatEncodeReflect (the reflective binary.Write it replaced) on
// the same 6.4M-element payload, isolating serialisation from file I/O.
func BenchmarkFloatEncodeDirect(b *testing.B) {
	sh := benchShard()
	w := bufio.NewWriterSize(io.Discard, 1<<20)
	b.SetBytes(int64(len(sh.Embs)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeFloats(w, sh.Embs); err != nil {
			b.Fatal(err)
		}
		_ = w.Flush()
	}
}

func BenchmarkFloatEncodeReflect(b *testing.B) {
	sh := benchShard()
	w := bufio.NewWriterSize(io.Discard, 1<<20)
	b.SetBytes(int64(len(sh.Embs)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := binary.Write(w, binary.LittleEndian, sh.Embs); err != nil {
			b.Fatal(err)
		}
		_ = w.Flush()
	}
}
