// Package storetest provides a deterministic, instrumented storage.Store
// for pipeline and controller tests: an ordered event log of
// acquire/prefetch/release/evict calls, a refcount ledger for leak checks,
// per-shard gates that hold loads until the test releases them (channel
// gating instead of wall-clock latency — no sleeps anywhere), and scripted
// acquire/write-back errors.
//
// Two modes:
//
//   - New(inner) emulates the asynchronous Prefetch contract itself on top
//     of any inner store (typically a MemStore): a hint starts a background
//     "load" that completes when its gate opens, and an Acquire joins the
//     pending load exactly like DiskStore joins an in-flight prefetch. This
//     makes executor behaviour — overlap, join, abort — testable with zero
//     real I/O and zero timing assumptions.
//
//   - NewPassthrough(inner) forwards hints to the inner store's own
//     machinery (DiskStore, the distributed remote store) and only records
//     events and refcounts; gates and scripted errors do not apply. Use it
//     to assert invariants (budgets, leaks) over a real store.
package storetest

import (
	"fmt"
	"sync"

	"pbg/internal/storage"
)

// Key identifies a shard: (entity type index, partition).
type Key struct{ Type, Part int }

// Kind labels one logged store operation.
type Kind string

const (
	// KindPrefetch is a Prefetch hint (logged even when it is a no-op).
	KindPrefetch Kind = "prefetch"
	// KindAcquire is an Acquire call entering the store.
	KindAcquire Kind = "acquire"
	// KindAcquired is an Acquire call returning successfully.
	KindAcquired Kind = "acquired"
	// KindRelease is a Release call.
	KindRelease Kind = "release"
	// KindEvict marks a refcount reaching zero — the point where a real
	// disk store would schedule the write-back eviction.
	KindEvict Kind = "evict"
)

// Event is one entry of the ordered operation log.
type Event struct {
	Kind Kind
	Key  Key
}

// Gate holds loads of one shard until the test opens it. Started() closes
// when the first load blocks on the gate, giving tests a deterministic
// handshake ("the executor is now stalled on this shard") without polling
// or sleeping.
type Gate struct {
	startedOnce sync.Once
	openOnce    sync.Once
	started     chan struct{}
	open        chan struct{}
}

func newGate() *Gate {
	return &Gate{started: make(chan struct{}), open: make(chan struct{})}
}

// Started closes when a load first blocks on this gate.
func (g *Gate) Started() <-chan struct{} { return g.started }

// Open releases every current and future load held by the gate.
func (g *Gate) Open() { g.openOnce.Do(func() { close(g.open) }) }

// pass is the load-side of the gate: announce, then wait for Open.
func (g *Gate) pass() {
	g.startedOnce.Do(func() { close(g.started) })
	<-g.open
}

// pendingLoad is one emulated in-flight shard load; err is set before done
// closes and immutable afterwards.
type pendingLoad struct {
	done chan struct{}
	err  error
}

// Store is the instrumented storage.Store wrapper.
type Store struct {
	inner       storage.Store
	passthrough bool

	mu          sync.Mutex
	events      []Event
	refs        map[Key]int
	loading     map[Key]*pendingLoad
	gates       map[Key]*Gate
	acquireErrs map[Key][]error
	releaseErrs map[Key][]error
}

// New wraps inner with full emulation (gates, scripted errors, async
// prefetch loads run by the wrapper).
func New(inner storage.Store) *Store {
	return &Store{
		inner:       inner,
		refs:        make(map[Key]int),
		loading:     make(map[Key]*pendingLoad),
		gates:       make(map[Key]*Gate),
		acquireErrs: make(map[Key][]error),
		releaseErrs: make(map[Key][]error),
	}
}

// NewPassthrough wraps inner with instrumentation only: every call
// forwards, the wrapper just records events and the refcount ledger.
func NewPassthrough(inner storage.Store) *Store {
	s := New(inner)
	s.passthrough = true
	return s
}

// GateLoad registers (or returns) the gate holding loads of shard (t,p).
// Must be set up before the load it should catch is issued. Emulation mode
// only.
func (s *Store) GateLoad(t, p int) *Gate {
	k := Key{t, p}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gates[k]
	if !ok {
		g = newGate()
		s.gates[k] = g
	}
	return g
}

// FailAcquire scripts the next load of shard (t,p) to fail with err. When
// the load is a prefetch, the failure is held until an Acquire joins it —
// the deterministic version of a failed DiskStore background load. The
// error is one-shot: the retry after it succeeds. Emulation mode only.
func (s *Store) FailAcquire(t, p int, err error) {
	k := Key{t, p}
	s.mu.Lock()
	s.acquireErrs[k] = append(s.acquireErrs[k], err)
	s.mu.Unlock()
}

// FailRelease scripts the next Release of shard (t,p) to return err after
// decrementing the refcount — the shape of a DiskStore sticky write-back
// error. Emulation mode only.
func (s *Store) FailRelease(t, p int, err error) {
	k := Key{t, p}
	s.mu.Lock()
	s.releaseErrs[k] = append(s.releaseErrs[k], err)
	s.mu.Unlock()
}

func popErrLocked(m map[Key][]error, k Key) error {
	q := m[k]
	if len(q) == 0 {
		return nil
	}
	err := q[0]
	m[k] = q[1:]
	return err
}

func (s *Store) logLocked(kind Kind, k Key) {
	s.events = append(s.events, Event{kind, k})
}

// Prefetch implements storage.Store.
func (s *Store) Prefetch(t, p int) {
	k := Key{t, p}
	s.mu.Lock()
	s.logLocked(KindPrefetch, k)
	if s.passthrough {
		s.mu.Unlock()
		s.inner.Prefetch(t, p)
		return
	}
	if s.refs[k] > 0 || s.loading[k] != nil {
		s.mu.Unlock()
		return
	}
	ld := &pendingLoad{done: make(chan struct{})}
	s.loading[k] = ld
	gate := s.gates[k]
	s.mu.Unlock()
	go func() {
		if gate != nil {
			gate.pass()
		}
		s.mu.Lock()
		// A failed load stays pending until an Acquire joins and consumes
		// the error — deterministic delivery, where a real store's failed
		// background load may evaporate before anyone observes it.
		ld.err = popErrLocked(s.acquireErrs, k)
		close(ld.done)
		s.mu.Unlock()
	}()
}

// Acquire implements storage.Store: it joins a pending emulated load (or
// blocks on the shard's gate for a cold load), honours scripted errors,
// then forwards to the inner store and bumps the ledger.
func (s *Store) Acquire(t, p int) (*storage.Shard, error) {
	k := Key{t, p}
	s.mu.Lock()
	s.logLocked(KindAcquire, k)
	if !s.passthrough {
		passedGate := false
		for {
			if ld := s.loading[k]; ld != nil {
				s.mu.Unlock()
				<-ld.done
				s.mu.Lock()
				if s.loading[k] == ld {
					delete(s.loading, k)
				}
				if ld.err != nil {
					s.mu.Unlock()
					return nil, ld.err
				}
				break
			}
			if s.refs[k] > 0 {
				break // resident: no load needed
			}
			if err := popErrLocked(s.acquireErrs, k); err != nil {
				s.mu.Unlock()
				return nil, err
			}
			if gate := s.gates[k]; gate != nil && !passedGate {
				s.mu.Unlock()
				gate.pass()
				s.mu.Lock()
				passedGate = true
				continue // re-check: the world may have moved while gated
			}
			break
		}
	}
	s.mu.Unlock()
	sh, err := s.inner.Acquire(t, p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.refs[k]++
	s.logLocked(KindAcquired, k)
	s.mu.Unlock()
	return sh, nil
}

// Release implements storage.Store: the ledger is decremented first (a
// refcount reaching zero logs the logical eviction point), then scripted
// write-back errors surface, then the inner store releases.
func (s *Store) Release(t, p int) error {
	k := Key{t, p}
	s.mu.Lock()
	s.logLocked(KindRelease, k)
	if s.refs[k] <= 0 {
		s.mu.Unlock()
		return fmt.Errorf("storetest: Release of unacquired shard (%d,%d)", t, p)
	}
	s.refs[k]--
	if s.refs[k] == 0 {
		delete(s.refs, k)
		s.logLocked(KindEvict, k)
	}
	var scripted error
	if !s.passthrough {
		scripted = popErrLocked(s.releaseErrs, k)
	}
	s.mu.Unlock()
	if err := s.inner.Release(t, p); err != nil {
		return err
	}
	return scripted
}

// SetMaxResidentBytes forwards the admission budget to the inner store when
// it enforces one (DiskStore, the distributed remote store). Without this
// the wrapper would silently disable budget enforcement for any trainer
// built over it — train.New plumbs Config.MemBudgetBytes through exactly
// this interface.
func (s *Store) SetMaxResidentBytes(n int64) {
	if b, ok := s.inner.(interface{ SetMaxResidentBytes(int64) }); ok {
		b.SetMaxResidentBytes(n)
	}
}

// SetCodec forwards the shard codec to the inner store when it encodes one
// (DiskStore). Mirrors SetMaxResidentBytes: train.New plumbs Config.Codec
// through exactly this interface, and without the forwarder a harness-
// wrapped DiskStore would silently write fp32 while the trainer's budget
// controller priced shards quantized.
func (s *Store) SetCodec(c storage.Codec) {
	if b, ok := s.inner.(interface{ SetCodec(storage.Codec) }); ok {
		b.SetCodec(c)
	}
}

// Flush implements storage.Store.
func (s *Store) Flush() error { return s.inner.Flush() }

// ResidentBytes implements storage.Store.
func (s *Store) ResidentBytes() int64 { return s.inner.ResidentBytes() }

// Close implements storage.Store.
func (s *Store) Close() error { return s.inner.Close() }

// Events returns a snapshot of the operation log.
func (s *Store) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// CountEvents counts logged events of the given kind for key k.
func (s *Store) CountEvents(kind Kind, k Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Kind == kind && e.Key == k {
			n++
		}
	}
	return n
}

// FirstIndex returns the log position of the first event of the given kind
// for key k, or -1.
func (s *Store) FirstIndex(kind Kind, k Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range s.events {
		if e.Kind == kind && e.Key == k {
			return i
		}
	}
	return -1
}

// Refs returns the ledger refcount of shard (t,p).
func (s *Store) Refs(t, p int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs[Key{t, p}]
}

// Outstanding returns the total number of unreleased references.
func (s *Store) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, r := range s.refs {
		n += r
	}
	return n
}

// PendingLoads returns the number of emulated loads not yet consumed.
func (s *Store) PendingLoads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.loading)
}

// LeakCheck returns an error when references are still outstanding — every
// acquired shard must eventually be released, even on aborted epochs.
// (Pending loads are not leaks: a hint takes no reference, and an unopened
// gate legitimately holds its load.)
func (s *Store) LeakCheck() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, r := range s.refs {
		if r != 0 {
			return fmt.Errorf("storetest: shard (%d,%d) leaked %d references", k.Type, k.Part, r)
		}
	}
	return nil
}
