package storetest

import (
	"errors"
	"testing"

	"pbg/internal/graph"
	"pbg/internal/storage"
)

func harness(t *testing.T) (*Store, *storage.MemStore) {
	t.Helper()
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "node", Count: 12, NumPartitions: 4}},
		[]graph.RelationType{{Name: "r", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
	mem := storage.NewMemStore(schema, 4, 1, 1)
	return New(mem), mem
}

func TestEventLogAndLedger(t *testing.T) {
	st, _ := harness(t)
	st.Prefetch(0, 1)
	sh, err := st.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sh == nil || sh.Part != 1 {
		t.Fatalf("wrong shard: %+v", sh)
	}
	if st.Refs(0, 1) != 1 || st.Outstanding() != 1 {
		t.Fatalf("ledger wrong: refs=%d outstanding=%d", st.Refs(0, 1), st.Outstanding())
	}
	if err := st.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	k := Key{0, 1}
	if st.FirstIndex(KindPrefetch, k) >= st.FirstIndex(KindAcquire, k) {
		t.Fatal("prefetch not logged before acquire")
	}
	if st.CountEvents(KindEvict, k) != 1 {
		t.Fatal("refcount zero did not log an evict")
	}
	if err := st.Release(0, 1); err == nil {
		t.Fatal("over-release not detected")
	}
}

func TestGateHoldsLoadDeterministically(t *testing.T) {
	st, _ := harness(t)
	gate := st.GateLoad(0, 2)
	st.Prefetch(0, 2)
	// The emulated load is now blocked on the gate; an Acquire joins it.
	got := make(chan *storage.Shard, 1)
	go func() {
		sh, err := st.Acquire(0, 2)
		if err != nil {
			t.Error(err)
		}
		got <- sh
	}()
	<-gate.Started() // deterministic handshake: the load is stalled
	select {
	case <-got:
		t.Fatal("Acquire completed while the gate was closed")
	default:
	}
	gate.Open()
	if sh := <-got; sh == nil || sh.Part != 2 {
		t.Fatalf("gated acquire returned wrong shard: %+v", sh)
	}
	if st.PendingLoads() != 0 {
		t.Fatal("consumed load still pending")
	}
	if err := st.Release(0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestScriptedErrors(t *testing.T) {
	st, _ := harness(t)
	boom := errors.New("boom")
	st.FailAcquire(0, 0, boom)
	if _, err := st.Acquire(0, 0); !errors.Is(err, boom) {
		t.Fatalf("scripted acquire error not surfaced: %v", err)
	}
	// One-shot: the retry succeeds, like a DiskStore load retry.
	//lint:ignore pairedrelease the scripted FailAcquire above makes the first Acquire fail (holding nothing); this retry is paired with the Release below and LeakCheck verifies the balance
	if _, err := st.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	wb := errors.New("write-back failed")
	st.FailRelease(0, 0, wb)
	if err := st.Release(0, 0); !errors.Is(err, wb) {
		t.Fatalf("scripted release error not surfaced: %v", err)
	}
	// The refcount was still decremented (DiskStore's sticky-error shape).
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchErrorSurfacesAtJoin(t *testing.T) {
	st, _ := harness(t)
	boom := errors.New("load failed")
	st.FailAcquire(0, 3, boom)
	st.Prefetch(0, 3)
	if _, err := st.Acquire(0, 3); !errors.Is(err, boom) {
		t.Fatalf("prefetch load error not observed by the joined Acquire: %v", err)
	}
	// The failed load evaporated; a retry succeeds.
	//lint:ignore pairedrelease the scripted FailAcquire makes the prefetched Acquire above fail (holding nothing); this retry is paired with the Release below
	if _, err := st.Acquire(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Release(0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPassthroughForwardsHints(t *testing.T) {
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "node", Count: 12, NumPartitions: 2}},
		[]graph.RelationType{{Name: "r", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
	ds, err := storage.NewDiskStore(t.TempDir(), schema, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := NewPassthrough(ds)
	st.Prefetch(0, 0) // must reach the DiskStore's background machinery
	sh, err := st.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Part != 0 {
		t.Fatalf("wrong shard: %+v", sh)
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := ds.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := ds.IOStats().Loads; got != 1 {
		t.Fatalf("inner store loads = %d, want 1 (hint + join, no double load)", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
