// Package storage implements the embedding persistence layer of §4.1: each
// (entity type, partition) pair owns a shard holding its embedding rows plus
// the row-wise Adagrad accumulators, and shards are swapped between memory
// and disk as training iterates over edge buckets, so at most the two
// partitions of the current bucket (plus unpartitioned types) are resident.
//
// The on-disk format is a small header followed by raw little-endian
// float32s; shards are also gob-serialisable for the distributed partition
// server. DiskStore additionally runs a background I/O pool so prefetched
// loads and write-back evictions overlap training (see disk.go).
//
// Two contracts matter to callers beyond plain Acquire/Release:
//
//   - Prefetch(t, p) is a non-blocking hint that (t, p) will be Acquired
//     soon. It takes no reference and may be ignored; a later Acquire
//     returns exactly what it would have without the hint — just sooner.
//     The pipelined epoch executor issues hints for the next buckets'
//     shards while the current bucket trains.
//   - SetMaxResidentBytes(n) (DiskStore, the distributed checkout cache)
//     turns the store into a memory-budgeted shard cache: resident shards,
//     in-flight load projections, and write-back snapshots are accounted
//     against n — hints that don't fit are dropped or shed, must-have
//     Acquires evict clean unreferenced shards LRU-by-last-release, and
//     only a working set that simply cannot fit runs over budget. n = 0
//     disables budgeting (and clean-shard retention) entirely.
//
// DiskStore.IOStats reports the resulting decisions as cumulative
// counters: Loads and Writes are the raw shard I/O; Admits counts loads
// that passed budget admission; PrefetchSheds counts hints the budget
// refused; ForcedEvicts counts clean shards evicted to make room for a
// must-have. The budget_aware bucket order (internal/partition) exists to
// drive ForcedEvicts toward zero by sequencing buckets so the cache's
// working set turns over as little as possible.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pbg/internal/graph"
	"pbg/internal/rng"
)

// ParseByteSize parses a human-readable byte count for memory-budget flags:
// a plain number is bytes, and the binary suffixes K/KB/KiB, M/MB/MiB,
// G/GB/GiB, T/TB/TiB (case-insensitive, powers of 1024) scale it. "0" or
// "" means unbounded. Longer suffixes take precedence over their suffixes
// ("1TiB" is a tebibyte, not "1TI" bytes), which the suffix list order
// below encodes: the bare "B" must come last or it would strip the B off
// every two-letter suffix.
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"TIB", 1 << 40}, {"TB", 1 << 40}, {"T", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			s = strings.TrimSpace(s[:len(s)-len(suf.name)])
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("storage: bad byte size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// Shard holds the parameters of one partition of one entity type.
type Shard struct {
	TypeIndex int // entity type index within the schema
	Part      int
	Count     int // number of entity rows
	Dim       int
	Embs      []float32 // Count×Dim embeddings, row major
	Acc       []float32 // Count row-wise Adagrad accumulators
}

// NewShard allocates a zeroed shard.
func NewShard(typeIndex, part, count, dim int) *Shard {
	return &Shard{
		TypeIndex: typeIndex,
		Part:      part,
		Count:     count,
		Dim:       dim,
		Embs:      make([]float32, count*dim),
		Acc:       make([]float32, count),
	}
}

// Init fills the shard with N(0, scale²/√d) entries, the initialisation PBG
// uses so early scores are O(scale).
func (s *Shard) Init(r *rng.RNG, scale float32) {
	std := scale / float32(math.Sqrt(float64(s.Dim)))
	for i := range s.Embs {
		s.Embs[i] = r.NormFloat32() * std
	}
	for i := range s.Acc {
		s.Acc[i] = 0
	}
}

// Row returns embedding row i as a slice view.
//
//pbg:hotpath
func (s *Shard) Row(i int) []float32 {
	return s.Embs[i*s.Dim : (i+1)*s.Dim]
}

// Bytes returns the approximate in-memory size of the shard.
func (s *Shard) Bytes() int64 {
	return int64(len(s.Embs)+len(s.Acc)) * 4
}

// ProjectedShardBytes is the fp32 size shard (t,p) will occupy, priced from
// the schema alone — it matches Shard.Bytes for a shard of that shape
// (count×dim embeddings plus count Adagrad cells, float32 each). Budget
// admission, the remote checkout cache, and the lookahead controller's
// window projections all price shards through this helper — or through
// ProjectedShardBytesCodec when a run stores shards quantized — so
// accounting cannot drift from the bytes actually held.
func ProjectedShardBytes(schema *graph.Schema, dim, t, p int) int64 {
	return ProjectedShardBytesCodec(schema, dim, t, p, CodecFP32)
}

const shardMagic = uint32(0x50424753) // "PBGS"

// tmpSeq distinguishes concurrent temp files targeting the same path (e.g. a
// Flush racing an async write-back of the same shard): each writer renames
// its own complete temp file, so the destination is always a whole shard.
var tmpSeq atomic.Uint64

// writeFileAtomic writes the output of emit to path via a unique temp file +
// rename.
func writeFileAtomic(path string, emit func(w *bufio.Writer) error) error {
	tmp := fmt.Sprintf("%s.tmp%d", path, tmpSeq.Add(1))
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := emit(w); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		// Remove the orphan: temp names are unique per attempt, so leaked
		// files would otherwise accumulate across retries.
		os.Remove(tmp)
		return err
	}
	return nil
}

// ShardPath is the canonical on-disk location of shard (t, p) under dir.
// DiskStore and the durable partition servers share it, so a directory
// written by one is readable by the other.
func ShardPath(dir string, t, p int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_t%d_p%d.pbg", t, p))
}

// WriteShard persists a shard to path atomically (write temp + rename).
func WriteShard(path string, s *Shard) error {
	return writeFileAtomic(path, func(w *bufio.Writer) error {
		hdr := []uint32{shardMagic, 1, uint32(s.TypeIndex), uint32(s.Part), uint32(s.Count), uint32(s.Dim)}
		for _, v := range hdr {
			if err := writeU32(w, v); err != nil {
				return err
			}
		}
		if err := writeFloats(w, s.Embs); err != nil {
			return err
		}
		return writeFloats(w, s.Acc)
	})
}

// The float/int codecs below encode directly through a fixed stack buffer
// instead of reflective binary.Write/binary.Read calls, which is roughly an
// order of magnitude faster on large shards and allocation-free — shard
// (de)serialisation sits on the bucket-swap path the pipelined executor is
// trying to hide. The four chunked loops are deliberately spelled out
// rather than sharing a generic core: a per-element conversion callback
// measures ~2.4× slower (the closure defeats inlining), so any change to
// the chunking logic must be mirrored across all four.

const codecChunk = 8192 // bytes per encode/decode batch

func writeU32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU64(w *bufio.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func writeFloats(w *bufio.Writer, xs []float32) error {
	var buf [codecChunk]byte
	for len(xs) > 0 {
		n := len(buf) / 4
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(xs[i]))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func readFloats(r io.Reader, xs []float32) error {
	var buf [codecChunk]byte
	for len(xs) > 0 {
		n := len(buf) / 4
		if n > len(xs) {
			n = len(xs)
		}
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		xs = xs[n:]
	}
	return nil
}

func writeInt32s(w *bufio.Writer, xs []int32) error {
	var buf [codecChunk]byte
	for len(xs) > 0 {
		n := len(buf) / 4
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(xs[i]))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func readInt32s(r io.Reader, xs []int32) error {
	var buf [codecChunk]byte
	for len(xs) > 0 {
		n := len(buf) / 4
		if n > len(xs) {
			n = len(xs)
		}
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			xs[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		xs = xs[n:]
	}
	return nil
}

// Store provides shards keyed by (entity type, partition), abstracting over
// whether evicted shards go to disk (DiskStore, the §4.1 swapping scheme) or
// stay resident (MemStore, used for unpartitioned training and as the
// backing of the distributed partition server).
type Store interface {
	// Acquire returns the shard, loading or lazily initialising it. Repeated
	// Acquires return the same shard and increase a refcount.
	Acquire(typeIndex, part int) (*Shard, error)
	// Release drops one reference; when it reaches zero a DiskStore persists
	// and evicts the shard.
	Release(typeIndex, part int) error
	// Prefetch hints that (typeIndex, part) will be Acquired soon. It must
	// not block on I/O and takes no reference: implementations may start
	// loading the shard in the background or ignore the hint entirely. A
	// subsequent Acquire returns exactly what it would have returned without
	// the hint — just sooner. The pipelined epoch executor issues this for
	// the next bucket's shards while the current bucket trains.
	Prefetch(typeIndex, part int)
	// Flush persists all resident shards without evicting (checkpointing).
	Flush() error
	// ResidentBytes reports the memory held by resident shards.
	ResidentBytes() int64
	// Close releases any resources behind the store (network connections for
	// remote stores, a final Flush for disk stores). The store must not be
	// used afterwards.
	Close() error
}

type shardKey struct{ t, p int }

type entry struct {
	shard *Shard
	refs  int
}

// ShardSeed derives the per-shard RNG seed for (entity type t, partition p).
// Initialisation is deterministic regardless of the order in which shards
// are first touched, and the distributed partition servers use the same
// derivation so remote lazy init matches a local store bit for bit.
func ShardSeed(seed uint64, t, p int) uint64 {
	return (seed ^ uint64(t)<<32 ^ uint64(p)) + 0x9E3779B97F4A7C15
}

// newShardRNG returns the deterministic init RNG for shard (t,p).
func newShardRNG(seed uint64, t, p int) *rng.RNG {
	return rng.New(ShardSeed(seed, t, p))
}

// MemStore keeps every shard resident forever.
type MemStore struct {
	mu     sync.Mutex
	cache  map[shardKey]*entry
	schema *graph.Schema
	dim    int
	seed   uint64
	scale  float32
}

// NewMemStore creates an in-memory store with deterministic initialisation.
func NewMemStore(schema *graph.Schema, dim int, seed uint64, initScale float32) *MemStore {
	return &MemStore{cache: make(map[shardKey]*entry), schema: schema, dim: dim, seed: seed, scale: initScale}
}

// Acquire implements Store.
func (m *MemStore) Acquire(t, p int) (*Shard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := shardKey{t, p}
	e, ok := m.cache[k]
	if !ok {
		ent := m.schema.Entities[t]
		sh := NewShard(t, p, ent.PartitionCount(p), m.dim)
		sh.Init(newShardRNG(m.seed, t, p), m.scale)
		e = &entry{shard: sh}
		m.cache[k] = e
	}
	e.refs++
	return e.shard, nil
}

// Release implements Store; shards stay resident.
func (m *MemStore) Release(t, p int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.cache[shardKey{t, p}]
	if !ok || e.refs <= 0 {
		return fmt.Errorf("storage: Release of unacquired shard (%d,%d)", t, p)
	}
	e.refs--
	return nil
}

// Prefetch implements Store (no-op: everything stays resident after first
// touch, so there is no I/O to hide).
func (m *MemStore) Prefetch(t, p int) {}

// Flush implements Store (no-op: nothing to persist).
func (m *MemStore) Flush() error { return nil }

// ResidentBytes implements Store.
func (m *MemStore) ResidentBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, e := range m.cache {
		total += e.shard.Bytes()
	}
	return total
}

// Close implements Store (no-op: everything lives in memory).
func (m *MemStore) Close() error { return nil }

// WriteEdges persists an edge list in a compact binary format (bucket files
// on the shared filesystem in Figure 2's architecture).
func WriteEdges(path string, el *graph.EdgeList) error {
	return writeFileAtomic(path, func(w *bufio.Writer) error {
		if err := writeU64(w, uint64(el.Len())); err != nil {
			return err
		}
		for _, col := range [][]int32{el.Srcs, el.Rels, el.Dsts} {
			if err := writeInt32s(w, col); err != nil {
				return err
			}
		}
		return nil
	})
}

// ReadEdges loads an edge list written by WriteEdges.
func ReadEdges(path string) (*graph.EdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	el := &graph.EdgeList{
		Srcs: make([]int32, n),
		Rels: make([]int32, n),
		Dsts: make([]int32, n),
	}
	for _, col := range [][]int32{el.Srcs, el.Rels, el.Dsts} {
		if err := readInt32s(r, col); err != nil {
			return nil, err
		}
	}
	return el, nil
}

// RelationState is the shared-parameter block persisted with checkpoints:
// per-relation operator parameters plus their dense Adagrad accumulators.
type RelationState struct {
	Params [][]float32
	Acc    [][]float32
}

// WriteRelations persists relation parameters.
func WriteRelations(path string, rs *RelationState) error {
	return writeFileAtomic(path, func(w *bufio.Writer) error {
		if err := writeU64(w, uint64(len(rs.Params))); err != nil {
			return err
		}
		for i := range rs.Params {
			if err := writeU64(w, uint64(len(rs.Params[i]))); err != nil {
				return err
			}
			if err := writeFloats(w, rs.Params[i]); err != nil {
				return err
			}
			if err := writeFloats(w, rs.Acc[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// ReadRelations loads relation parameters written by WriteRelations.
func ReadRelations(path string) (*RelationState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	rs := &RelationState{Params: make([][]float32, n), Acc: make([][]float32, n)}
	for i := range rs.Params {
		m, err := readU64(r)
		if err != nil {
			return nil, err
		}
		rs.Params[i] = make([]float32, m)
		rs.Acc[i] = make([]float32, m)
		if err := readFloats(r, rs.Params[i]); err != nil {
			return nil, err
		}
		if err := readFloats(r, rs.Acc[i]); err != nil {
			return nil, err
		}
	}
	return rs, nil
}
