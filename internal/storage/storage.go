// Package storage implements the embedding persistence layer of §4.1: each
// (entity type, partition) pair owns a shard holding its embedding rows plus
// the row-wise Adagrad accumulators, and shards are swapped between memory
// and disk as training iterates over edge buckets, so at most the two
// partitions of the current bucket (plus unpartitioned types) are resident.
//
// The on-disk format is a small header followed by raw little-endian
// float32s; shards are also gob-serialisable for the distributed partition
// server.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pbg/internal/graph"
	"pbg/internal/rng"
)

// Shard holds the parameters of one partition of one entity type.
type Shard struct {
	TypeIndex int // entity type index within the schema
	Part      int
	Count     int // number of entity rows
	Dim       int
	Embs      []float32 // Count×Dim embeddings, row major
	Acc       []float32 // Count row-wise Adagrad accumulators
}

// NewShard allocates a zeroed shard.
func NewShard(typeIndex, part, count, dim int) *Shard {
	return &Shard{
		TypeIndex: typeIndex,
		Part:      part,
		Count:     count,
		Dim:       dim,
		Embs:      make([]float32, count*dim),
		Acc:       make([]float32, count),
	}
}

// Init fills the shard with N(0, scale²/√d) entries, the initialisation PBG
// uses so early scores are O(scale).
func (s *Shard) Init(r *rng.RNG, scale float32) {
	std := scale / sqrt32(float32(s.Dim))
	for i := range s.Embs {
		s.Embs[i] = r.NormFloat32() * std
	}
	for i := range s.Acc {
		s.Acc[i] = 0
	}
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for an init constant.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// Row returns embedding row i as a slice view.
func (s *Shard) Row(i int) []float32 {
	return s.Embs[i*s.Dim : (i+1)*s.Dim]
}

// Bytes returns the approximate in-memory size of the shard.
func (s *Shard) Bytes() int64 {
	return int64(len(s.Embs)+len(s.Acc)) * 4
}

const shardMagic = uint32(0x50424753) // "PBGS"

// WriteShard persists a shard to path atomically (write temp + rename).
func WriteShard(path string, s *Shard) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: create shard: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	hdr := []uint32{shardMagic, 1, uint32(s.TypeIndex), uint32(s.Part), uint32(s.Count), uint32(s.Dim)}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			f.Close()
			return err
		}
	}
	if err := writeFloats(w, s.Embs); err != nil {
		f.Close()
		return err
	}
	if err := writeFloats(w, s.Acc); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadShard loads a shard previously written with WriteShard.
func ReadShard(path string) (*Shard, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [6]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("storage: shard header: %w", err)
		}
	}
	if hdr[0] != shardMagic {
		return nil, fmt.Errorf("storage: %s is not a shard file", path)
	}
	if hdr[1] != 1 {
		return nil, fmt.Errorf("storage: unsupported shard version %d", hdr[1])
	}
	s := NewShard(int(hdr[2]), int(hdr[3]), int(hdr[4]), int(hdr[5]))
	if err := readFloats(r, s.Embs); err != nil {
		return nil, err
	}
	if err := readFloats(r, s.Acc); err != nil {
		return nil, err
	}
	return s, nil
}

func writeFloats(w *bufio.Writer, xs []float32) error {
	return binary.Write(w, binary.LittleEndian, xs)
}

func readFloats(r *bufio.Reader, xs []float32) error {
	return binary.Read(r, binary.LittleEndian, xs)
}

// Store provides shards keyed by (entity type, partition), abstracting over
// whether evicted shards go to disk (DiskStore, the §4.1 swapping scheme) or
// stay resident (MemStore, used for unpartitioned training and as the
// backing of the distributed partition server).
type Store interface {
	// Acquire returns the shard, loading or lazily initialising it. Repeated
	// Acquires return the same shard and increase a refcount.
	Acquire(typeIndex, part int) (*Shard, error)
	// Release drops one reference; when it reaches zero a DiskStore persists
	// and evicts the shard.
	Release(typeIndex, part int) error
	// Flush persists all resident shards without evicting (checkpointing).
	Flush() error
	// ResidentBytes reports the memory held by resident shards.
	ResidentBytes() int64
	// Close releases any resources behind the store (network connections for
	// remote stores, a final Flush for disk stores). The store must not be
	// used afterwards.
	Close() error
}

type shardKey struct{ t, p int }

type entry struct {
	shard *Shard
	refs  int
}

// common implements the cache bookkeeping shared by both stores.
type common struct {
	mu     sync.Mutex
	cache  map[shardKey]*entry
	schema *graph.Schema
	dim    int
	seed   uint64
	scale  float32
}

// ShardSeed derives the per-shard RNG seed for (entity type t, partition p).
// Initialisation is deterministic regardless of the order in which shards
// are first touched, and the distributed partition servers use the same
// derivation so remote lazy init matches a local store bit for bit.
func ShardSeed(seed uint64, t, p int) uint64 {
	return (seed ^ uint64(t)<<32 ^ uint64(p)) + 0x9E3779B97F4A7C15
}

func (c *common) newShard(t, p int) *Shard {
	e := c.schema.Entities[t]
	sh := NewShard(t, p, e.PartitionCount(p), c.dim)
	sh.Init(rng.New(ShardSeed(c.seed, t, p)), c.scale)
	return sh
}

func (c *common) residentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, e := range c.cache {
		total += e.shard.Bytes()
	}
	return total
}

// MemStore keeps every shard resident forever.
type MemStore struct {
	common
}

// NewMemStore creates an in-memory store with deterministic initialisation.
func NewMemStore(schema *graph.Schema, dim int, seed uint64, initScale float32) *MemStore {
	return &MemStore{common{cache: make(map[shardKey]*entry), schema: schema, dim: dim, seed: seed, scale: initScale}}
}

// Acquire implements Store.
func (m *MemStore) Acquire(t, p int) (*Shard, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := shardKey{t, p}
	e, ok := m.cache[k]
	if !ok {
		e = &entry{shard: m.newShard(t, p)}
		m.cache[k] = e
	}
	e.refs++
	return e.shard, nil
}

// Release implements Store; shards stay resident.
func (m *MemStore) Release(t, p int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.cache[shardKey{t, p}]
	if !ok || e.refs <= 0 {
		return fmt.Errorf("storage: Release of unacquired shard (%d,%d)", t, p)
	}
	e.refs--
	return nil
}

// Flush implements Store (no-op: nothing to persist).
func (m *MemStore) Flush() error { return nil }

// ResidentBytes implements Store.
func (m *MemStore) ResidentBytes() int64 { return m.residentBytes() }

// Close implements Store (no-op: everything lives in memory).
func (m *MemStore) Close() error { return nil }

// DiskStore persists shards under Dir and keeps only referenced shards in
// memory — the partition-swapping mode that gives the 88% memory reduction
// of §5.4.2.
type DiskStore struct {
	common
	dir string
}

// NewDiskStore creates a disk-backed store rooted at dir.
func NewDiskStore(dir string, schema *graph.Schema, dim int, seed uint64, initScale float32) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskStore{
		common: common{cache: make(map[shardKey]*entry), schema: schema, dim: dim, seed: seed, scale: initScale},
		dir:    dir,
	}, nil
}

func (d *DiskStore) path(t, p int) string {
	return filepath.Join(d.dir, fmt.Sprintf("shard_t%d_p%d.pbg", t, p))
}

// Acquire implements Store, loading from disk when evicted earlier.
func (d *DiskStore) Acquire(t, p int) (*Shard, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := shardKey{t, p}
	if e, ok := d.cache[k]; ok {
		e.refs++
		return e.shard, nil
	}
	var sh *Shard
	if _, err := os.Stat(d.path(t, p)); err == nil {
		sh, err = ReadShard(d.path(t, p))
		if err != nil {
			return nil, err
		}
	} else {
		sh = d.newShard(t, p)
	}
	d.cache[k] = &entry{shard: sh, refs: 1}
	return sh, nil
}

// Release implements Store: the last reference persists and evicts.
func (d *DiskStore) Release(t, p int) error {
	d.mu.Lock()
	k := shardKey{t, p}
	e, ok := d.cache[k]
	if !ok || e.refs <= 0 {
		d.mu.Unlock()
		return fmt.Errorf("storage: Release of unacquired shard (%d,%d)", t, p)
	}
	e.refs--
	if e.refs > 0 {
		d.mu.Unlock()
		return nil
	}
	delete(d.cache, k)
	d.mu.Unlock()
	// Write outside the lock: shard is no longer visible to other callers.
	return WriteShard(d.path(t, p), e.shard)
}

// Flush implements Store: persist all resident shards, keeping them cached.
func (d *DiskStore) Flush() error {
	d.mu.Lock()
	shards := make([]*Shard, 0, len(d.cache))
	for _, e := range d.cache {
		shards = append(shards, e.shard)
	}
	d.mu.Unlock()
	for _, sh := range shards {
		if err := WriteShard(d.path(sh.TypeIndex, sh.Part), sh); err != nil {
			return err
		}
	}
	return nil
}

// ResidentBytes implements Store.
func (d *DiskStore) ResidentBytes() int64 { return d.residentBytes() }

// Close implements Store: persist everything still resident.
func (d *DiskStore) Close() error { return d.Flush() }

// WriteEdges persists an edge list in a compact binary format (bucket files
// on the shared filesystem in Figure 2's architecture).
func WriteEdges(path string, el *graph.EdgeList) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := binary.Write(w, binary.LittleEndian, uint64(el.Len())); err != nil {
		f.Close()
		return err
	}
	for _, col := range [][]int32{el.Srcs, el.Rels, el.Dsts} {
		if err := binary.Write(w, binary.LittleEndian, col); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadEdges loads an edge list written by WriteEdges.
func ReadEdges(path string) (*graph.EdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	el := &graph.EdgeList{
		Srcs: make([]int32, n),
		Rels: make([]int32, n),
		Dsts: make([]int32, n),
	}
	for _, col := range [][]int32{el.Srcs, el.Rels, el.Dsts} {
		if err := binary.Read(r, binary.LittleEndian, col); err != nil {
			return nil, err
		}
	}
	return el, nil
}

// RelationState is the shared-parameter block persisted with checkpoints:
// per-relation operator parameters plus their dense Adagrad accumulators.
type RelationState struct {
	Params [][]float32
	Acc    [][]float32
}

// WriteRelations persists relation parameters.
func WriteRelations(path string, rs *RelationState) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := binary.Write(w, binary.LittleEndian, uint64(len(rs.Params))); err != nil {
		f.Close()
		return err
	}
	for i := range rs.Params {
		if err := binary.Write(w, binary.LittleEndian, uint64(len(rs.Params[i]))); err != nil {
			f.Close()
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, rs.Params[i]); err != nil {
			f.Close()
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, rs.Acc[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadRelations loads relation parameters written by WriteRelations.
func ReadRelations(path string) (*RelationState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	rs := &RelationState{Params: make([][]float32, n), Acc: make([][]float32, n)}
	for i := range rs.Params {
		var m uint64
		if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
			return nil, err
		}
		rs.Params[i] = make([]float32, m)
		rs.Acc[i] = make([]float32, m)
		if err := binary.Read(r, binary.LittleEndian, rs.Params[i]); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, rs.Acc[i]); err != nil {
			return nil, err
		}
	}
	return rs, nil
}
