package storage

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pbg/internal/graph"
	"pbg/internal/rng"
)

func testSchema(t *testing.T) *graph.Schema {
	t.Helper()
	return graph.MustSchema(
		[]graph.EntityType{
			{Name: "node", Count: 20, NumPartitions: 4},
			{Name: "tag", Count: 6, NumPartitions: 1},
		},
		[]graph.RelationType{{Name: "r", SourceType: "node", DestType: "tag", Operator: "identity"}},
	)
}

func TestShardInitStatistics(t *testing.T) {
	sh := NewShard(0, 0, 1000, 16)
	sh.Init(rng.New(1), 1.0)
	var sum, sumsq float64
	for _, v := range sh.Embs {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	n := float64(len(sh.Embs))
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("init mean %v", mean)
	}
	want := 1.0 / 4.0 // scale/√dim = 1/√16
	if math.Abs(std-want) > 0.02 {
		t.Fatalf("init std %v, want %v", std, want)
	}
}

func TestShardInitDeterministic(t *testing.T) {
	a := NewShard(0, 0, 10, 4)
	b := NewShard(0, 0, 10, 4)
	a.Init(rng.New(5), 1)
	b.Init(rng.New(5), 1)
	for i := range a.Embs {
		if a.Embs[i] != b.Embs[i] {
			t.Fatal("same seed must give same init")
		}
	}
}

func TestShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sh := NewShard(1, 2, 7, 5)
	sh.Init(rng.New(3), 1)
	sh.Acc[3] = 42.5
	path := filepath.Join(dir, "s.pbg")
	if err := WriteShard(path, sh); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeIndex != 1 || got.Part != 2 || got.Count != 7 || got.Dim != 5 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range sh.Embs {
		if got.Embs[i] != sh.Embs[i] {
			t.Fatalf("emb[%d] %v != %v", i, got.Embs[i], sh.Embs[i])
		}
	}
	if got.Acc[3] != 42.5 {
		t.Fatalf("acc not preserved: %v", got.Acc[3])
	}
}

func TestReadShardRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.pbg")
	if err := os.WriteFile(path, []byte("not a shard at all, sorry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(path); err == nil {
		t.Fatal("expected error for garbage file")
	}
}

func TestMemStoreAcquireIdentity(t *testing.T) {
	st := NewMemStore(testSchema(t), 8, 1, 1)
	a, err := st.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("repeated Acquire must return the same shard")
	}
	if a.Count != 5 { // 20 entities / 4 partitions
		t.Fatalf("shard count %d, want 5", a.Count)
	}
	if err := st.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Release(0, 1); err == nil {
		t.Fatal("over-release not detected")
	}
}

func TestMemStoreShardsPersistAcrossReleases(t *testing.T) {
	st := NewMemStore(testSchema(t), 8, 1, 1)
	a, _ := st.Acquire(0, 0)
	a.Row(0)[0] = 123
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	b, _ := st.Acquire(0, 0)
	if b.Row(0)[0] != 123 {
		t.Fatal("MemStore dropped shard state")
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreSwapsToDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDiskStore(dir, testSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := st.Acquire(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh.Row(1)[3] = 7.5
	sh.Acc[1] = 2.0
	if err := st.Release(0, 2); err != nil {
		t.Fatal(err)
	}
	// The write-back is asynchronous; drain it before observing eviction.
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	// Evicted: resident bytes drop to zero and the file exists.
	if st.ResidentBytes() != 0 {
		t.Fatalf("resident bytes %d after eviction", st.ResidentBytes())
	}
	if _, err := os.Stat(filepath.Join(dir, "shard_t0_p2.pbg")); err != nil {
		t.Fatalf("shard file missing: %v", err)
	}
	// Re-acquire restores the mutated state.
	sh2, err := st.Acquire(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sh2.Row(1)[3] != 7.5 || sh2.Acc[1] != 2.0 {
		t.Fatal("state lost through disk round trip")
	}
	if err := st.Release(0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreRefCounting(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewDiskStore(dir, testSchema(t), 8, 1, 1)
	a, _ := st.Acquire(0, 0)
	b, _ := st.Acquire(0, 0)
	if a != b {
		t.Fatal("double acquire returned different shards")
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	// Still referenced: must stay resident.
	if st.ResidentBytes() == 0 {
		t.Fatal("shard evicted while still referenced")
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	if st.ResidentBytes() != 0 {
		t.Fatal("shard not evicted at refcount zero")
	}
}

func TestDiskStoreDeterministicInitAcrossStores(t *testing.T) {
	dir1 := t.TempDir()
	dir2 := t.TempDir()
	s1, _ := NewDiskStore(dir1, testSchema(t), 8, 42, 1)
	s2, _ := NewDiskStore(dir2, testSchema(t), 8, 42, 1)
	a, _ := s1.Acquire(0, 3)
	b, _ := s2.Acquire(0, 3)
	for i := range a.Embs {
		if a.Embs[i] != b.Embs[i] {
			t.Fatal("same seed must init shards identically across stores")
		}
	}
	// Different partitions must differ.
	c, _ := s1.Acquire(0, 1)
	same := true
	for i := range c.Embs {
		if c.Embs[i] != a.Embs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different partitions initialised identically")
	}
	if err := s1.Release(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := s2.Release(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := s1.Release(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreFlushKeepsResident(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewDiskStore(dir, testSchema(t), 8, 1, 1)
	sh, _ := st.Acquire(1, 0)
	sh.Row(0)[0] = 5
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.ResidentBytes() == 0 {
		t.Fatal("Flush must not evict")
	}
	got, err := ReadShard(filepath.Join(dir, "shard_t1_p0.pbg"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Row(0)[0] != 5 {
		t.Fatal("Flush did not persist state")
	}
	if err := st.Release(1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	el := &graph.EdgeList{}
	for i := int32(0); i < 100; i++ {
		el.Append(i, i%3, i*7%19)
	}
	path := filepath.Join(dir, "edges.bin")
	if err := WriteEdges(path, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdges(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != el.Len() {
		t.Fatalf("len %d != %d", got.Len(), el.Len())
	}
	for i := 0; i < el.Len(); i++ {
		s1, r1, d1 := el.Edge(i)
		s2, r2, d2 := got.Edge(i)
		if s1 != s2 || r1 != r2 || d1 != d2 {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestRelationsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rs := &RelationState{
		Params: [][]float32{{1, 2, 3}, {4}},
		Acc:    [][]float32{{0.1, 0.2, 0.3}, {0.4}},
	}
	path := filepath.Join(dir, "rel.bin")
	if err := WriteRelations(path, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelations(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != 2 || len(got.Params[0]) != 3 || len(got.Params[1]) != 1 {
		t.Fatalf("shape mismatch: %+v", got)
	}
	if got.Params[0][1] != 2 || got.Acc[1][0] != 0.4 {
		t.Fatal("values lost")
	}
}

// TestDiskStoreConcurrentAcquireRelease pins the write-back race: a Release
// that evicts must never let a concurrent Acquire observe a stale file or
// the temp-rename window. Each goroutine owns one embedding cell and bumps
// it once per iteration; any stale read surfaces as a lost increment.
func TestDiskStoreConcurrentAcquireRelease(t *testing.T) {
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "node", Count: 64, NumPartitions: 2}},
		[]graph.RelationType{{Name: "r", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
	dir := t.TempDir()
	st, err := NewDiskStore(dir, schema, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const iters = 150
	// Zero the counter cells (Init fills them with random values).
	for part := 0; part < 2; part++ {
		sh, err := st.Acquire(0, part)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			sh.Row(w)[0] = 0
		}
		if err := st.Release(0, part); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := w % 2
			for i := 0; i < iters; i++ {
				if i%3 == w%3 {
					// Interleave hints for both partitions: prefetches must
					// coexist with concurrent Acquire/Release traffic.
					st.Prefetch(0, (part+i)%2)
				}
				sh, err := st.Acquire(0, part)
				if err != nil {
					errs[w] = err
					return
				}
				sh.Row(w)[0]++ // cell owned by this goroutine
				if err := st.Release(0, part); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 0; w < workers; w++ {
		sh, err := st.Acquire(0, w%2)
		if err != nil {
			t.Fatal(err)
		}
		if got := sh.Row(w)[0]; got != iters {
			t.Fatalf("worker %d cell = %v, want %v (lost updates through write-back race)", w, got, iters)
		}
		if err := st.Release(0, w%2); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStorePrefetch checks the Prefetch contract: the hint loads the
// shard in the background, a later Acquire returns exactly the data it would
// have loaded itself, and no double-load can fork the shard into two copies.
func TestDiskStorePrefetch(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDiskStore(dir, testSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Persist a recognisable shard, then evict it.
	sh, _ := st.Acquire(0, 1)
	sh.Row(2)[0] = 99
	if err := st.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	st.Prefetch(0, 1)
	st.Prefetch(0, 1) // repeated hints must not double-load
	got, err := st.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Row(2)[0] != 99 {
		t.Fatalf("prefetched shard lost state: %v", got.Row(2)[0])
	}
	// The prefetched copy and a second Acquire must alias the same shard.
	again, _ := st.Acquire(0, 1)
	if again != got {
		t.Fatal("Acquire after prefetch returned a different shard copy")
	}
	for i := 0; i < 2; i++ {
		if err := st.Release(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	io := st.IOStats()
	if io.Loads < 2 || io.Writes < 1 {
		t.Fatalf("unexpected IO stats: %+v", io)
	}
}

func TestShardBytes(t *testing.T) {
	sh := NewShard(0, 0, 10, 4)
	if sh.Bytes() != (40+10)*4 {
		t.Fatalf("Bytes = %d", sh.Bytes())
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1234", 1234, false},
		{"64KB", 64 << 10, false},
		{"64k", 64 << 10, false},
		{"1.5MiB", 3 << 19, false},
		{"2G", 2 << 30, false},
		{"512 MB", 512 << 20, false},
		{"10B", 10, false},
		// Terabyte budgets (embedding tables at the millions-of-users
		// scale need them).
		{"1T", 1 << 40, false},
		{"2TB", 2 << 40, false},
		{"1.5TiB", 3 << 39, false},
		{"1 tib", 1 << 40, false},
		// Suffix precedence: the longest suffix wins, so KiB/TiB are not
		// read as "KI"/"TI" bytes and TB is not read as T... or bare B.
		{"1KiB", 1 << 10, false},
		{"1kb", 1 << 10, false},
		{"1GiB", 1 << 30, false},
		{"1gb", 1 << 30, false},
		{"1MiB", 1 << 20, false},
		{"-1", 0, true},
		{"abc", 0, true},
		{"1XB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.err != (err != nil) {
			t.Fatalf("ParseByteSize(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if !c.err && got != c.want {
			t.Fatalf("ParseByteSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
