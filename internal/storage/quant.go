package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pbg/internal/graph"
	"pbg/internal/vec"
)

// Codec selects the on-disk encoding of a shard's embedding block. The
// Adagrad accumulators always stay float32 — they are a running sum of
// squared gradients whose dynamic range quantization would clip, and at one
// cell per row they are a 1/(dim+1) fraction of the shard anyway.
//
//	fp32  v1 format, bit-exact round trip (the only format before v2).
//	fp16  IEEE binary16 embeddings, round-to-nearest-even, ±Inf-free
//	      (overflow clamps to ±65504): 2 bytes/cell, ~2× smaller.
//	int8  per-row symmetric int8 with one float32 scale per row
//	      (scale = maxabs/127): ~4× smaller, error ≤ maxabs(row)/254.
//
// The codec is a property of the run, not the file: DiskStore.SetCodec
// makes every write-back, flush, and budget-admission price use it, while
// ReadShard transparently decodes whatever version a file actually is — so
// switching codecs between runs over the same directory just works, and
// mixed directories (mid-migration) load fine.
type Codec uint8

const (
	CodecFP32 Codec = iota
	CodecFP16
	CodecInt8
)

// Codecs lists every codec, for test matrices and bench sweeps.
func Codecs() []Codec { return []Codec{CodecFP32, CodecFP16, CodecInt8} }

// String implements fmt.Stringer with the flag spellings ParseCodec accepts.
func (c Codec) String() string {
	switch c {
	case CodecFP32:
		return "fp32"
	case CodecFP16:
		return "fp16"
	case CodecInt8:
		return "int8"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec parses a -codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "fp32", "f32", "float32":
		return CodecFP32, nil
	case "fp16", "f16", "half":
		return CodecFP16, nil
	case "int8", "i8":
		return CodecInt8, nil
	default:
		return 0, fmt.Errorf("storage: unknown codec %q (want fp32, fp16 or int8)", s)
	}
}

// shardDataBytes prices the persisted payload of a count×dim shard under
// codec c, excluding the file header: the embedding block at codec width,
// the int8 per-row scale block, and the always-fp32 Adagrad block. This is
// the byte count the memory budget charges per shard under SetCodec — the
// store's steady-state footprint is quantized bytes, with decoded fp32
// views living only transiently above it (see DiskStore.SetCodec).
func shardDataBytes(count, dim int, c Codec) int64 {
	cnt, d := int64(count), int64(dim)
	switch c {
	case CodecFP16:
		return cnt*d*2 + cnt*4
	case CodecInt8:
		return cnt*4 + cnt*d + cnt*4
	default:
		return cnt * (d + 1) * 4
	}
}

// ProjectedShardBytesCodec prices shard (t,p) under codec c, from the
// schema alone. It is ProjectedShardBytes generalised: admission budgets,
// the lookahead controller, and buffer-slot pricing all route through it,
// so choosing a 2–4× smaller codec automatically widens every one of those
// windows at the same byte budget.
func ProjectedShardBytesCodec(schema *graph.Schema, dim, t, p int, c Codec) int64 {
	return shardDataBytes(schema.Entities[t].PartitionCount(p), dim, c)
}

// v2 shard format: a 28-byte header of 7 little-endian uint32s
//
//	{magic "PBGS", version 2, codec, typeIndex, part, count, dim}
//
// followed by the codec payload and the fp32 Adagrad block:
//
//	fp16: count×dim uint16 LE embeddings, then count float32 acc
//	int8: count float32 row scales, then count×dim int8 embeddings,
//	      then count float32 acc
//
// Offsets are chosen for zero-copy mmap serving: the first payload block
// starts at 28 (4-aligned), so the fp16 embedding view and the int8 scale
// view are always aligned for their element types. fp32 shards keep the
// exact v1 layout (24-byte header, no codec field) so every pre-codec file
// and golden pin stays valid.
const (
	shardV2Header = 28
	shardV1Header = 24
)

// shardFileSize is the exact on-disk size of a count×dim shard under c.
// Both the writer and the decode-time geometry check derive from it, so a
// file that passes validation is tiled exactly — no trailing garbage, no
// truncated rows.
func shardFileSize(count, dim int, c Codec) int64 {
	if c == CodecFP32 {
		return shardV1Header + shardDataBytes(count, dim, c)
	}
	return shardV2Header + shardDataBytes(count, dim, c)
}

// checkShardGeometry validates a decoded header against the actual file
// size before anything is allocated: a hostile header cannot make the
// reader allocate count×dim of anything unless the bytes really are on
// disk, and truncation is caught up front instead of as a mid-decode EOF.
func checkShardGeometry(count, dim uint32, c Codec, fileSize int64) error {
	cnt, d := int64(count), int64(dim)
	if d != 0 && cnt > (1<<59)/d { // count*dim*4 must not overflow int64
		return fmt.Errorf("storage: shard geometry overflow (count %d × dim %d)", count, dim)
	}
	if want := shardFileSize(int(count), int(dim), c); fileSize != want {
		return fmt.Errorf("storage: shard file is %d bytes, want %d for count %d × dim %d under %v",
			fileSize, want, count, dim, c)
	}
	return nil
}

// WriteShardCodec persists a shard to path atomically under codec c.
// CodecFP32 writes the v1 format bit-for-bit (WriteShard is that case);
// fp16 and int8 quantize the embedding block on the way out — the in-memory
// shard is not modified, and the quantization cost is amortised into the
// same chunked encode pass the fp32 codec uses.
func WriteShardCodec(path string, s *Shard, c Codec) error {
	if c == CodecFP32 {
		return WriteShard(path, s)
	}
	return writeFileAtomic(path, func(w *bufio.Writer) error {
		hdr := []uint32{shardMagic, 2, uint32(c), uint32(s.TypeIndex), uint32(s.Part), uint32(s.Count), uint32(s.Dim)}
		for _, v := range hdr {
			if err := writeU32(w, v); err != nil {
				return err
			}
		}
		switch c {
		case CodecFP16:
			if err := writeF16s(w, s.Embs); err != nil {
				return err
			}
		case CodecInt8:
			scales := make([]float32, s.Count)
			for r := 0; r < s.Count; r++ {
				scales[r] = vec.I8RowScale(s.Row(r))
			}
			if err := writeFloats(w, scales); err != nil {
				return err
			}
			if err := writeQuantI8Rows(w, s, scales); err != nil {
				return err
			}
		default:
			return fmt.Errorf("storage: cannot encode codec %v", c)
		}
		return writeFloats(w, s.Acc)
	})
}

// ReadShard loads a shard written by WriteShard or WriteShardCodec,
// transparently decoding any codec to fp32.
func ReadShard(path string) (*Shard, error) {
	s, _, err := ReadShardCodec(path)
	return s, err
}

// ReadShardCodec loads a shard and reports which codec it was stored
// under. Decoding always yields fp32 buffers; the header is validated
// against the real file size before any allocation.
func ReadShardCodec(path string) (*Shard, Codec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	magic, err := readU32(r)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: shard header: %w", err)
	}
	if magic != shardMagic {
		return nil, 0, fmt.Errorf("storage: %s is not a shard file", path)
	}
	version, err := readU32(r)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: shard header: %w", err)
	}
	switch version {
	case 1:
		var hdr [4]uint32 // typeIndex, part, count, dim
		for i := range hdr {
			if hdr[i], err = readU32(r); err != nil {
				return nil, 0, fmt.Errorf("storage: shard header: %w", err)
			}
		}
		if err := checkShardGeometry(hdr[2], hdr[3], CodecFP32, fi.Size()); err != nil {
			return nil, 0, err
		}
		s := NewShard(int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3]))
		if err := readFloats(r, s.Embs); err != nil {
			return nil, 0, err
		}
		if err := readFloats(r, s.Acc); err != nil {
			return nil, 0, err
		}
		return s, CodecFP32, nil
	case 2:
		var hdr [5]uint32 // codec, typeIndex, part, count, dim
		for i := range hdr {
			if hdr[i], err = readU32(r); err != nil {
				return nil, 0, fmt.Errorf("storage: shard header: %w", err)
			}
		}
		c := Codec(hdr[0])
		if c != CodecFP16 && c != CodecInt8 {
			return nil, 0, fmt.Errorf("storage: bad v2 shard codec %d", hdr[0])
		}
		if err := checkShardGeometry(hdr[3], hdr[4], c, fi.Size()); err != nil {
			return nil, 0, err
		}
		s := NewShard(int(hdr[1]), int(hdr[2]), int(hdr[3]), int(hdr[4]))
		switch c {
		case CodecFP16:
			if err := readF16s(r, s.Embs); err != nil {
				return nil, 0, err
			}
		case CodecInt8:
			scales := make([]float32, s.Count)
			if err := readFloats(r, scales); err != nil {
				return nil, 0, err
			}
			if err := readQuantI8Rows(r, s, scales); err != nil {
				return nil, 0, err
			}
		}
		if err := readFloats(r, s.Acc); err != nil {
			return nil, 0, err
		}
		return s, c, nil
	default:
		return nil, 0, fmt.Errorf("storage: unsupported shard version %d", version)
	}
}

// writeF16s encodes xs as binary16 through the chunked stack buffer (see
// the codec note in storage.go: the loop is spelled out, not shared).
func writeF16s(w *bufio.Writer, xs []float32) error {
	var buf [codecChunk]byte
	for len(xs) > 0 {
		n := len(buf) / 2
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint16(buf[i*2:], vec.F16Bits(xs[i]))
		}
		if _, err := w.Write(buf[:n*2]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func readF16s(r io.Reader, xs []float32) error {
	var buf [codecChunk]byte
	for len(xs) > 0 {
		n := len(buf) / 2
		if n > len(xs) {
			n = len(xs)
		}
		if _, err := io.ReadFull(r, buf[:n*2]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			xs[i] = vec.F16Value(binary.LittleEndian.Uint16(buf[i*2:]))
		}
		xs = xs[n:]
	}
	return nil
}

// writeQuantI8Rows quantizes and writes the embedding block row by row,
// because the scale changes per row; the bufio.Writer absorbs the per-row
// Write calls.
func writeQuantI8Rows(w *bufio.Writer, s *Shard, scales []float32) error {
	q := make([]int8, s.Dim)
	buf := make([]byte, s.Dim)
	for r := 0; r < s.Count; r++ {
		vec.QuantI8(q, s.Row(r), scales[r])
		for i, v := range q {
			buf[i] = byte(v)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func readQuantI8Rows(r io.Reader, s *Shard, scales []float32) error {
	buf := make([]byte, s.Dim)
	q := make([]int8, s.Dim)
	for row := 0; row < s.Count; row++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i, b := range buf {
			q[i] = int8(b)
		}
		vec.DequantI8(s.Row(row), q, scales[row])
	}
	return nil
}

// QuantShardPath is the on-disk location of the quantized sibling copy of
// shard (t, p) — the scan-side companion a serving process maps next to a
// full-precision checkpoint (see WriteQuantCopy). Training never touches
// these files.
func QuantShardPath(dir string, t, p int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_t%d_p%d.q.pbg", t, p))
}

// WriteQuantCopy writes a quantized sibling (QuantShardPath) of every shard
// in the checkpoint at dir, for the serving layer's quantized-scan +
// fp32-re-rank path: candidate generation scans the small sibling, and only
// surviving rows are re-scored from the untouched fp32 originals. The
// source shards must be fp32 (v1) — quantizing an already-quantized
// checkpoint would silently stack two rounds of error, so that is an error
// instead.
func WriteQuantCopy(dir string, schema *graph.Schema, c Codec) error {
	if c == CodecFP32 {
		return fmt.Errorf("storage: quant copy needs a quantized codec, got fp32")
	}
	for t := range schema.Entities {
		for p := 0; p < schema.Entities[t].NumPartitions; p++ {
			sh, src, err := ReadShardCodec(ShardPath(dir, t, p))
			if err != nil {
				return fmt.Errorf("storage: quant copy source (%d,%d): %w", t, p, err)
			}
			if src != CodecFP32 {
				return fmt.Errorf("storage: shard (%d,%d) is already %v; quant copies need fp32 sources", t, p, src)
			}
			if err := WriteShardCodec(QuantShardPath(dir, t, p), sh, c); err != nil {
				return err
			}
		}
	}
	return nil
}
