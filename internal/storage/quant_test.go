package storage

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pbg/internal/rng"
	"pbg/internal/vec"
)

// goldenShard is the fixed tiny shard whose on-disk bytes are pinned per
// codec below: values chosen so every quantized byte is hand-computable.
func goldenShard() *Shard {
	return &Shard{
		TypeIndex: 1, Part: 2, Count: 2, Dim: 2,
		Embs: []float32{1, -1, 0.5, 0.25},
		Acc:  []float32{3, 4},
	}
}

func putU32s(buf *bytes.Buffer, vs ...uint32) {
	for _, v := range vs {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
}

func putF32s(buf *bytes.Buffer, vs ...float32) {
	for _, v := range vs {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		buf.Write(b[:])
	}
}

// TestShardGoldenBytes pins the exact on-disk image of the golden shard
// under every codec. Any drift in header layout, field order, endianness,
// scale placement, or rounding behaviour fails here before it can corrupt
// a real checkpoint.
func TestShardGoldenBytes(t *testing.T) {
	dir := t.TempDir()

	want := map[Codec]*bytes.Buffer{}

	// v1 fp32: 6-word header, fp32 embeddings, fp32 acc.
	b := &bytes.Buffer{}
	putU32s(b, 0x50424753, 1, 1, 2, 2, 2)
	putF32s(b, 1, -1, 0.5, 0.25)
	putF32s(b, 3, 4)
	want[CodecFP32] = b

	// v2 fp16: 7-word header (codec=1), binary16 embeddings, fp32 acc.
	// 1.0 = 0x3c00, -1.0 = 0xbc00, 0.5 = 0x3800, 0.25 = 0x3400.
	b = &bytes.Buffer{}
	putU32s(b, 0x50424753, 2, 1, 1, 2, 2, 2)
	for _, h := range []uint16{0x3c00, 0xbc00, 0x3800, 0x3400} {
		var hb [2]byte
		binary.LittleEndian.PutUint16(hb[:], h)
		b.Write(hb[:])
	}
	putF32s(b, 3, 4)
	want[CodecFP16] = b

	// v2 int8: 7-word header (codec=2), per-row fp32 scales, int8 rows,
	// fp32 acc. Row 0 scale 1/127: [1,-1] -> [127,-127] = 0x7f,0x81.
	// Row 1 scale 0.5/127: [0.5,0.25] -> [127, round(63.5)=64] = 0x7f,0x40.
	b = &bytes.Buffer{}
	putU32s(b, 0x50424753, 2, 2, 1, 2, 2, 2)
	putF32s(b, float32(1)/127, float32(0.5)/127)
	b.Write([]byte{0x7f, 0x81, 0x7f, 0x40})
	putF32s(b, 3, 4)
	want[CodecInt8] = b

	for c, exp := range want {
		path := filepath.Join(dir, "golden_"+c.String()+".pbg")
		if err := WriteShardCodec(path, goldenShard(), c); err != nil {
			t.Fatalf("%v: write: %v", c, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, exp.Bytes()) {
			t.Fatalf("%v: on-disk bytes drifted\n got %x\nwant %x", c, got, exp.Bytes())
		}
		if int64(len(got)) != shardFileSize(2, 2, c) {
			t.Fatalf("%v: shardFileSize = %d, file is %d", c, shardFileSize(2, 2, c), len(got))
		}
	}
}

// TestShardCodecRoundTrip checks the per-codec decode guarantees on
// randomized shards: fp32 is bit-exact, fp16 matches the scalar kernels
// exactly, int8 error is bounded by scale/2 per element, and the Adagrad
// block plus all header fields survive every codec untouched.
func TestShardCodecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(17)
	for trial := 0; trial < 8; trial++ {
		count := 1 + r.Intn(50)
		dim := 1 + r.Intn(24)
		sh := NewShard(3, trial, count, dim)
		sh.Init(rng.New(uint64(trial)), 2.0)
		if trial%3 == 0 && count > 1 {
			for i := range sh.Row(1) { // an all-zero row per codec
				sh.Row(1)[i] = 0
			}
		}
		for i := range sh.Acc {
			sh.Acc[i] = float32(i) * 0.75
		}
		for _, c := range Codecs() {
			path := filepath.Join(dir, "rt.pbg")
			if err := WriteShardCodec(path, sh, c); err != nil {
				t.Fatalf("%v: %v", c, err)
			}
			got, gc, err := ReadShardCodec(path)
			if err != nil {
				t.Fatalf("%v: %v", c, err)
			}
			if gc != c {
				t.Fatalf("decoded codec %v, wrote %v", gc, c)
			}
			if got.TypeIndex != 3 || got.Part != trial || got.Count != count || got.Dim != dim {
				t.Fatalf("%v: header drifted: %+v", c, got)
			}
			for i, a := range sh.Acc {
				if got.Acc[i] != a {
					t.Fatalf("%v: acc[%d] %v != %v (Adagrad must stay fp32-exact)", c, i, got.Acc[i], a)
				}
			}
			switch c {
			case CodecFP32:
				for i := range sh.Embs {
					if got.Embs[i] != sh.Embs[i] {
						t.Fatalf("fp32 emb[%d] %v != %v", i, got.Embs[i], sh.Embs[i])
					}
				}
			case CodecFP16:
				for i := range sh.Embs {
					if want := vec.F16Value(vec.F16Bits(sh.Embs[i])); got.Embs[i] != want {
						t.Fatalf("fp16 emb[%d] %v, want %v", i, got.Embs[i], want)
					}
				}
			case CodecInt8:
				for row := 0; row < count; row++ {
					scale := vec.I8RowScale(sh.Row(row))
					bound := float64(scale)/2*(1+1e-6) + 1e-30
					for i, x := range sh.Row(row) {
						if err := math.Abs(float64(x) - float64(got.Row(row)[i])); err > bound {
							t.Fatalf("int8 row %d elem %d: error %g > scale/2 = %g", row, i, err, bound)
						}
					}
				}
			}
		}
	}
}

// TestReadShardRejectsHostileHeaders drives the decode surface with the
// malformed inputs FuzzQuantShardHeader explores: every case must error
// without panicking, and a giant claimed geometry must be rejected from
// the file size alone, before the decoder allocates anything.
func TestReadShardRejectsHostileHeaders(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, words []uint32, tail []byte) string {
		b := &bytes.Buffer{}
		putU32s(b, words...)
		b.Write(tail)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []string{
		mk("badmagic", []uint32{0xdeadbeef, 2, 1, 0, 0, 1, 1}, make([]byte, 6)),
		mk("badver", []uint32{0x50424753, 3, 1, 0, 0, 1, 1}, make([]byte, 6)),
		mk("badcodec", []uint32{0x50424753, 2, 9, 0, 0, 1, 1}, make([]byte, 6)),
		mk("fp32codecv2", []uint32{0x50424753, 2, 0, 0, 0, 1, 1}, make([]byte, 8)),
		mk("trunchdr", []uint32{0x50424753, 2, 1}, nil),
		mk("truncrow", []uint32{0x50424753, 2, 1, 0, 0, 4, 4}, make([]byte, 10)),
		mk("overclaim", []uint32{0x50424753, 2, 2, 0, 0, 1 << 30, 1 << 30}, make([]byte, 16)),
		mk("trailing", []uint32{0x50424753, 2, 1, 0, 0, 1, 1}, make([]byte, 20)),
		mk("v1trunc", []uint32{0x50424753, 1, 0, 0, 8, 8}, make([]byte, 12)),
		mk("v1overclaim", []uint32{0x50424753, 1, 0, 0, 1 << 31, 1 << 31}, nil),
	}
	for _, path := range cases {
		if _, _, err := ReadShardCodec(path); err == nil {
			t.Fatalf("%s: hostile header accepted", filepath.Base(path))
		}
	}
	// A well-formed empty shard is still fine under every codec.
	empty := NewShard(0, 0, 0, 4)
	for _, c := range Codecs() {
		path := filepath.Join(dir, "empty.pbg")
		if err := WriteShardCodec(path, empty, c); err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if _, _, err := ReadShardCodec(path); err != nil {
			t.Fatalf("%v: empty shard rejected: %v", c, err)
		}
	}
}

func TestWriteQuantCopy(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	st, err := NewDiskStore(dir, schema, 8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for tIdx := range schema.Entities {
		for p := 0; p < schema.Entities[tIdx].NumPartitions; p++ {
			if _, err := st.Acquire(tIdx, p); err != nil {
				t.Fatal(err)
			}
			if err := st.Release(tIdx, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if err := WriteQuantCopy(dir, schema, CodecFP32); err == nil {
		t.Fatal("fp32 quant copy must be rejected")
	}
	if err := WriteQuantCopy(dir, schema, CodecInt8); err != nil {
		t.Fatal(err)
	}
	for tIdx := range schema.Entities {
		for p := 0; p < schema.Entities[tIdx].NumPartitions; p++ {
			orig, oc, err := ReadShardCodec(ShardPath(dir, tIdx, p))
			if err != nil || oc != CodecFP32 {
				t.Fatalf("source (%d,%d): codec %v err %v", tIdx, p, oc, err)
			}
			q, qc, err := ReadShardCodec(QuantShardPath(dir, tIdx, p))
			if err != nil {
				t.Fatalf("sibling (%d,%d): %v", tIdx, p, err)
			}
			if qc != CodecInt8 {
				t.Fatalf("sibling codec %v", qc)
			}
			for row := 0; row < orig.Count; row++ {
				bound := float64(vec.I8RowScale(orig.Row(row)))/2*(1+1e-6) + 1e-30
				for i := range orig.Row(row) {
					if d := math.Abs(float64(orig.Row(row)[i]) - float64(q.Row(row)[i])); d > bound {
						t.Fatalf("sibling (%d,%d) row %d: error %g > %g", tIdx, p, row, d, bound)
					}
				}
			}
		}
	}

	// Quantizing a directory that is already quantized must refuse rather
	// than stack a second round of error.
	dir2 := t.TempDir()
	st2, err := NewDiskStore(dir2, schema, 8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	st2.SetCodec(CodecFP16)
	if _, err := st2.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st2.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteQuantCopy(dir2, schema, CodecInt8); err == nil {
		t.Fatal("quant copy over a quantized checkpoint must be rejected")
	}
}

// TestDiskStoreCodecRoundTrip exercises the full swap cycle under each
// quantized codec: mutate, release (async write-back), re-acquire — the
// reloaded state must be the quantized image of what was released, the
// Adagrad state must be exact, and the file on disk must be v2.
func TestDiskStoreCodecRoundTrip(t *testing.T) {
	for _, c := range []Codec{CodecFP16, CodecInt8} {
		t.Run(c.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, err := NewDiskStore(dir, testSchema(t), 8, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			st.SetCodec(c)
			sh, err := st.Acquire(0, 2)
			if err != nil {
				t.Fatal(err)
			}
			sh.Row(1)[3] = 7.5
			sh.Acc[1] = 2.0
			released := sh.snapshot()
			if err := st.Release(0, 2); err != nil {
				t.Fatal(err)
			}
			if err := st.Drain(); err != nil {
				t.Fatal(err)
			}
			if _, gc, err := ReadShardCodec(ShardPath(dir, 0, 2)); err != nil || gc != c {
				t.Fatalf("on-disk codec %v err %v, want %v", gc, err, c)
			}
			got, err := st.Acquire(0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got.Acc[1] != 2.0 {
				t.Fatalf("Adagrad state lost: %v", got.Acc[1])
			}
			for row := 0; row < released.Count; row++ {
				var bound float64
				if c == CodecInt8 {
					bound = float64(vec.I8RowScale(released.Row(row)))/2*(1+1e-6) + 1e-30
				}
				for i, x := range released.Row(row) {
					y := got.Row(row)[i]
					switch c {
					case CodecFP16:
						if y != vec.F16Value(vec.F16Bits(x)) {
							t.Fatalf("row %d elem %d: %v not the fp16 image of %v", row, i, y, x)
						}
					case CodecInt8:
						if d := math.Abs(float64(x) - float64(y)); d > bound {
							t.Fatalf("row %d elem %d: error %g > %g", row, i, d, bound)
						}
					}
				}
			}
			if err := st.Release(0, 2); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDiskStoreBudgetChargesQuantizedBytes pins the pricing side of the
// tentpole: at a fixed SetMaxResidentBytes budget, admission must charge
// ProjectedShardBytesCodec — so a working set whose fp32 pricing sheds
// prefetch hints is admitted in full under int8, and ResidentBytes stays
// within the quantized pricing.
func TestDiskStoreBudgetChargesQuantizedBytes(t *testing.T) {
	schema := testSchema(t)
	const dim = 16
	// Budget: every node shard at int8 pricing, well under two at fp32.
	var i8All, fp32One int64
	for p := 0; p < 4; p++ {
		i8All += ProjectedShardBytesCodec(schema, dim, 0, p, CodecInt8)
	}
	fp32One = ProjectedShardBytes(schema, dim, 0, 0)
	if i8All >= 2*fp32One {
		t.Fatalf("test geometry broken: int8 total %d vs fp32 shard %d", i8All, fp32One)
	}
	budget := i8All

	run := func(c Codec) IOStats {
		dir := t.TempDir()
		st, err := NewDiskStore(dir, schema, dim, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		st.SetCodec(c)
		st.SetMaxResidentBytes(budget)
		for p := 0; p < 4; p++ {
			st.Prefetch(0, p)
		}
		if err := st.Drain(); err != nil {
			t.Fatal(err)
		}
		if got, want := st.ResidentBytes(), budget; got > want {
			t.Fatalf("%v: resident %d over budget %d", c, got, want)
		}
		io := st.IOStats()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return io
	}

	if io := run(CodecInt8); io.PrefetchSheds != 0 || io.Admits != 4 {
		t.Fatalf("int8 pricing should admit all 4 hints, got %+v", io)
	}
	if io := run(CodecFP32); io.PrefetchSheds == 0 {
		t.Fatalf("fp32 pricing at the int8 budget should shed hints, got %+v", io)
	}
}

func TestParseCodec(t *testing.T) {
	cases := map[string]Codec{
		"": CodecFP32, "fp32": CodecFP32, "float32": CodecFP32,
		"fp16": CodecFP16, "half": CodecFP16,
		"int8": CodecInt8, "i8": CodecInt8,
	}
	for in, want := range cases {
		got, err := ParseCodec(in)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", in, got, err)
		}
		if in != "" && in != "float32" && in != "half" && in != "i8" {
			if got.String() != in {
				t.Fatalf("String round trip: %q -> %q", in, got.String())
			}
		}
	}
	if _, err := ParseCodec("bf16"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestProjectedShardBytesCodec(t *testing.T) {
	schema := testSchema(t)
	// node: 20 entities / 4 partitions = 5 rows; dim 8.
	fp32 := ProjectedShardBytesCodec(schema, 8, 0, 0, CodecFP32)
	fp16 := ProjectedShardBytesCodec(schema, 8, 0, 0, CodecFP16)
	int8 := ProjectedShardBytesCodec(schema, 8, 0, 0, CodecInt8)
	if fp32 != 5*9*4 {
		t.Fatalf("fp32 = %d", fp32)
	}
	if fp16 != 5*8*2+5*4 {
		t.Fatalf("fp16 = %d", fp16)
	}
	if int8 != 5*4+5*8+5*4 {
		t.Fatalf("int8 = %d", int8)
	}
	if fp32 != ProjectedShardBytes(schema, 8, 0, 0) {
		t.Fatal("fp32 pricing drifted from ProjectedShardBytes")
	}
	// The acceptance bar: ≥2× shard-byte reduction for int8 at any dim;
	// fp16 approaches 2× from below (the Adagrad block stays fp32, so the
	// ratio is 4(d+1)/(2d+4)) and must clear 1.9× at serving dims.
	for _, dim := range []int{16, 64, 128} {
		f32 := float64(ProjectedShardBytesCodec(schema, dim, 0, 0, CodecFP32))
		if q := float64(ProjectedShardBytesCodec(schema, dim, 0, 0, CodecInt8)); f32 < 2*q {
			t.Fatalf("dim %d int8: %v not ≥2× smaller than %v", dim, q, f32)
		}
		if q := float64(ProjectedShardBytesCodec(schema, dim, 0, 0, CodecFP16)); dim >= 64 && f32 < 1.9*q {
			t.Fatalf("dim %d fp16: %v not ≥1.9× smaller than %v", dim, q, f32)
		}
	}
}
