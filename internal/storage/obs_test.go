package storage

import (
	"strings"
	"testing"
	"time"

	"pbg/internal/obs"
)

// findSpan returns the first recorded span whose name has the given prefix.
func findSpan(t *testing.T, evs []obs.SpanEvent, prefix string) obs.SpanEvent {
	t.Helper()
	for _, ev := range evs {
		if strings.HasPrefix(ev.Name, prefix) {
			return ev
		}
	}
	t.Fatalf("no span with prefix %q in %d events", prefix, len(evs))
	return obs.SpanEvent{}
}

// TestDiskStoreSpanNesting drives one shard through the full prefetch →
// acquire → release → write-back lifecycle and asserts the recorded spans
// tell that story: the load nests inside its prefetch window (and is its
// child), and the write-back starts only after Release.
func TestDiskStoreSpanNesting(t *testing.T) {
	hub := obs.NewHub()
	st, err := NewDiskStore(t.TempDir(), testSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetObs(hub)

	st.Prefetch(0, 1)
	sh, err := st.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh.Row(0)[0] = 1.0
	released := time.Now()
	if err := st.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}

	evs := hub.Trace.Events()
	prefetch := findSpan(t, evs, "prefetch t0 p1")
	load := findSpan(t, evs, "load t0 p1")
	write := findSpan(t, evs, "writeback t0 p1")
	snap := findSpan(t, evs, "snapshot t0 p1")

	if load.Parent != prefetch.ID {
		t.Errorf("load parent = %d, want prefetch span %d", load.Parent, prefetch.ID)
	}
	if load.Start.Before(prefetch.Start) {
		t.Error("load starts before its prefetch window opens")
	}
	if load.Start.Add(load.Dur).After(prefetch.Start.Add(prefetch.Dur)) {
		t.Error("load ends after its prefetch window closes")
	}
	for _, sp := range []struct {
		name string
		ev   obs.SpanEvent
	}{{"snapshot", snap}, {"writeback", write}} {
		if sp.ev.Start.Before(released) {
			t.Errorf("%s span starts %v before Release", sp.name, released.Sub(sp.ev.Start))
		}
	}

	// IOStats is a view over the same registry the endpoint scrapes.
	snapReg := hub.Reg.Snapshot()
	stats := st.IOStats()
	if stats.Loads != snapReg.Counters["pbg_storage_loads_total"] || stats.Loads != 1 {
		t.Errorf("loads: IOStats %d, registry %d, want 1",
			stats.Loads, snapReg.Counters["pbg_storage_loads_total"])
	}
	if stats.Writes != snapReg.Counters["pbg_storage_writebacks_total"] || stats.Writes != 1 {
		t.Errorf("writes: IOStats %d, registry %d, want 1",
			stats.Writes, snapReg.Counters["pbg_storage_writebacks_total"])
	}
	// Unbudgeted stores evict on write-back, so the resident gauge must have
	// returned to zero.
	if got := snapReg.Gauges["pbg_storage_resident_bytes"]; got != 0 {
		t.Errorf("resident gauge = %d after drain, want 0", got)
	}
}
