package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"pbg/internal/graph"
	"pbg/internal/obs"
)

// diskIOWorkers bounds the number of concurrent background shard loads and
// write-backs per DiskStore. Two is enough to overlap one prefetch with one
// eviction; four covers buckets whose relations span several entity types.
const diskIOWorkers = 4

// errShed marks a prefetch that the memory budget cancelled while it sat in
// the pool queue. An Acquire that joined the load observes it and retries as
// a must-have cache miss instead of surfacing an error: shedding a hint must
// never fail a real acquisition (and must never strand the joined waiter on
// a deleted loading entry).
var errShed = errors.New("storage: prefetch shed by memory budget")

// diskEntry is one cached shard together with its I/O state. An entry moves
// through three states, always under the store lock:
//
//	loading:  ready != nil — a Prefetch or first Acquire is reading the file
//	          (or initialising); shard/loadErr are set before ready closes.
//	resident: ready == nil, writing == false — the shard is usable.
//	writing:  refs hit zero and a write-back is in flight. The write works
//	          on a snapshot copied under the store lock, so a concurrent
//	          Acquire revives the live in-memory shard immediately — it
//	          neither re-reads a stale or half-renamed file nor waits for
//	          the disk write. The entry stays cached until the rename lands.
//	          (Under a memory budget with no headroom for the snapshot copy,
//	          the write uses the live buffers instead and a revival waits
//	          for the disk write via writeDone.)
type diskEntry struct {
	shard *Shard
	refs  int

	// size is the projected in-memory footprint while the shard is still
	// loading (shard == nil); admission accounting charges loads up front so
	// a burst of prefetch hints cannot overshoot the budget. Shard shapes
	// are known from the schema, so the projection is exact.
	size int64

	ready   chan struct{} // non-nil while a load is in flight
	loadErr error         // set before ready closes; immutable afterwards
	// waiters counts Acquires blocked on ready (or re-locking just after it
	// closed); eviction skips entries a waiter is about to claim.
	waiters int
	// queued marks a prefetch whose pool load has not started yet; only
	// queued loads can be shed (a running disk read cannot be cancelled).
	queued bool
	// shedded tells the pool goroutine its entry was cancelled and removed
	// from the cache; it must abandon the load without touching the map.
	shedded bool

	// span is the open prefetch-window span (Prefetch call → load
	// published or hint shed); the load itself traces as its child. Nil
	// when tracing is off or the entry came from a direct Acquire.
	span *obs.Span

	// clean marks a resident shard that is bit-identical to its disk copy
	// (or to its deterministic lazy init): a prefetched-but-unacquired load,
	// or — under a budget — a shard retained in cache after its write-back
	// landed. Clean entries evict without any I/O. Acquire clears the flag.
	clean bool
	// lastUse is the LRU stamp (a monotonic release counter, not wall
	// time): bumped when refs drop to zero and when a prefetch load lands.
	lastUse int64

	writing bool
	// rewrite marks that refs hit zero again while a write was in flight;
	// the completion handler chains a write of a fresh snapshot, so an
	// older in-flight write can never overwrite newer data (writes of one
	// shard are strictly serialised through this flag).
	rewrite bool
	// snapDone is non-nil for the brief window while the write-back's
	// snapshot copy is being taken outside the store lock; an Acquire that
	// revives the entry waits on it (a memcpy, not a disk write) before
	// handing out the buffers for mutation.
	snapDone chan struct{}
	// writeDone is non-nil while a write-back of the live buffers is in
	// flight (the budget had no headroom for a snapshot copy); a revival
	// waits for the whole disk write before the caller may mutate.
	writeDone chan struct{}
}

// diskMetrics holds the store's registry handles. The counters are the
// authoritative accounting — IOStats is a point-in-time view over them —
// and every one is an uncontended atomic bumped at disk-I/O granularity.
type diskMetrics struct {
	loads, writes, admits, sheds, forcedEvicts *obs.Counter
	resident                                   *obs.Gauge
}

func newDiskMetrics(reg *obs.Registry) diskMetrics {
	return diskMetrics{
		loads:        reg.Counter("pbg_storage_loads_total"),
		writes:       reg.Counter("pbg_storage_writebacks_total"),
		admits:       reg.Counter("pbg_storage_admits_total"),
		sheds:        reg.Counter("pbg_storage_prefetch_sheds_total"),
		forcedEvicts: reg.Counter("pbg_storage_forced_evicts_total"),
		resident:     reg.Gauge("pbg_storage_resident_bytes"),
	}
}

// IOStats is DiskStore's cumulative I/O and memory-budget accounting — a
// snapshot of the store's obs registry counters (see SetObs).
type IOStats struct {
	// Loads counts shard loads (disk reads or deterministic lazy inits).
	Loads int64
	// Writes counts shard write-backs (including Flush rewrites).
	Writes int64
	// Admits counts loads that passed the admission check while a budget
	// was set (prefetch hints and must-have Acquires both count).
	Admits int64
	// PrefetchSheds counts prefetch hints the budget refused: dropped at
	// Prefetch time, or shed from the pool queue before their load started.
	PrefetchSheds int64
	// ForcedEvicts counts unreferenced clean shards evicted to make room
	// for a must-have Acquire (LRU by last release; no I/O needed — the
	// disk copy is current).
	ForcedEvicts int64
}

// DiskStore persists shards under dir and keeps only referenced (or
// prefetched) shards in memory — the partition-swapping mode that gives the
// 88% memory reduction of §5.4.2. Loads hinted via Prefetch and the
// write-back of evicted shards run on a small background I/O pool so the
// training thread overlaps bucket transitions with compute (§4.1
// pipelining). Write-backs double-buffer: each writes a snapshot taken at
// eviction, costing one transient shard copy per in-flight write (bounded
// by the pool size) in exchange for re-Acquires never stalling on the disk.
//
// SetMaxResidentBytes turns the store into a memory-budgeted shard cache:
// admission accounting (resident shards + in-flight load projections +
// write snapshots) is enforced against the budget — prefetch hints that
// don't fit are dropped or shed, a must-have Acquire evicts unreferenced
// shards LRU-first (waiting for in-flight write-backs when that is the only
// way to free memory), and shards whose write-back landed are retained as
// clean cache entries while they fit. Only a must-have whose working set
// simply cannot fit runs over budget.
type DiskStore struct {
	schema *graph.Schema
	dim    int
	seed   uint64
	scale  float32
	dir    string
	codec  Codec // on-disk encoding + budget pricing; see SetCodec

	mu          sync.Mutex
	cond        *sync.Cond // signalled when in-flight I/O frees accounted memory
	cache       map[shardKey]*diskEntry
	ioErr       error // first async write-back failure; sticky
	closed      bool
	maxResident int64 // admission budget; 0 = unbounded (no retention either)
	useSeq      int64 // LRU clock for lastUse stamps
	snapBytes   int64 // memory held by in-flight write-back snapshots

	// obs carries the store's metrics and spans; m caches the registry
	// handles. Both are set at construction (private quiet hub) or by a
	// single SetObs call before the store is used, and read without the
	// store lock afterwards.
	obs *obs.Hub
	m   diskMetrics

	sem     chan struct{} // bounds concurrent background I/O
	pending sync.WaitGroup

	// testHookPrefetchLoad, when set before any Prefetch, runs in the pool
	// goroutine just before a queued prefetch re-checks admission — tests
	// use it to pin the join-then-shed interleaving deterministically.
	testHookPrefetchLoad func(k shardKey)
}

// NewDiskStore creates a disk-backed store rooted at dir.
func NewDiskStore(dir string, schema *graph.Schema, dim int, seed uint64, initScale float32) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskStore{
		schema: schema,
		dim:    dim,
		seed:   seed,
		scale:  initScale,
		dir:    dir,
		cache:  make(map[shardKey]*diskEntry),
		sem:    make(chan struct{}, diskIOWorkers),
		obs:    obs.NewQuietHub(),
	}
	d.m = newDiskMetrics(d.obs.Reg)
	d.cond = sync.NewCond(&d.mu)
	return d, nil
}

// SetObs attaches the store's metrics (pbg_storage_* counters, the
// resident-bytes gauge) and its load/write-back/snapshot spans to h. Call
// it once, before the store's first Prefetch/Acquire: attaching re-creates
// the metric handles in h's registry, so counts recorded on the previous
// hub are not carried over. train.New plumbs Config.Obs here automatically
// for any store exposing this method.
func (d *DiskStore) SetObs(h *obs.Hub) {
	if h == nil {
		return
	}
	d.obs = h
	d.m = newDiskMetrics(h.Reg)
}

// SetCodec selects the shard encoding for every subsequent write-back and
// flush, and switches the memory budget to codec pricing: admission,
// eviction, snapshot reservations, and ResidentBytes all charge
// ProjectedShardBytesCodec instead of fp32 bytes, so a 2–4× smaller codec
// directly admits 2–4× more shards (and a wider prefetch lookahead) at the
// same SetMaxResidentBytes budget. The budget is thus an I/O-footprint
// cost model: the store's steady state is quantized bytes on disk and in
// cache-pricing terms, with the decoded fp32 working copies of the
// currently-trained bucket living transiently above it — exactly the
// shards a trainer holds references to, which no budget may evict anyway.
//
// Like SetObs, call it once before the store's first Prefetch/Acquire;
// reads transparently decode whatever codec each file already is, so a
// directory written under a different codec converges to the new one as
// shards are rewritten.
func (d *DiskStore) SetCodec(c Codec) {
	d.codec = c
}

// Codec reports the store's shard encoding.
func (d *DiskStore) Codec() Codec {
	return d.codec
}

// SetMaxResidentBytes sets the admission budget (0 disables budgeting and
// restores evict-on-write-back). The budget bounds resident shards plus
// in-flight load projections plus write-back snapshots; see the type doc
// for the enforcement rules.
func (d *DiskStore) SetMaxResidentBytes(n int64) {
	d.mu.Lock()
	d.maxResident = n
	d.mu.Unlock()
}

// MaxResidentBytes reports the current admission budget (0 = unbounded).
func (d *DiskStore) MaxResidentBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maxResident
}

func (d *DiskStore) path(t, p int) string {
	return ShardPath(d.dir, t, p)
}

// shardBytes is the budget price of shard (t,p), known from the schema
// without touching disk: its exact fp32 in-memory size, or its quantized
// footprint when a codec is set (see SetCodec for the cost model).
func (d *DiskStore) shardBytes(t, p int) int64 {
	return ProjectedShardBytesCodec(d.schema, d.dim, t, p, d.codec)
}

// sizeOf is the budget price of a loaded shard — the same quantity
// shardBytes projects, derived from the shard's actual shape so the two
// can never disagree for the same (count, dim).
func (d *DiskStore) sizeOf(sh *Shard) int64 {
	return shardDataBytes(sh.Count, sh.Dim, d.codec)
}

// newShard lazily initialises shard (t,p) with the deterministic per-shard
// seed derivation shared with the distributed partition servers.
func (d *DiskStore) newShard(t, p int) *Shard {
	e := d.schema.Entities[t]
	sh := NewShard(t, p, e.PartitionCount(p), d.dim)
	sh.Init(newShardRNG(d.seed, t, p), d.scale)
	return sh
}

// submit runs fn on the background I/O pool.
func (d *DiskStore) submit(fn func()) {
	d.pending.Add(1)
	go func() {
		defer d.pending.Done()
		d.sem <- struct{}{}
		defer func() { <-d.sem }()
		fn()
	}()
}

// accountedLocked is the admission measure: actual resident shard bytes,
// plus the projected bytes of loads still in flight, plus in-flight write
// snapshots. It upper-bounds ResidentBytes, so enforcing the budget here
// enforces it on real memory too.
func (d *DiskStore) accountedLocked() int64 {
	total := d.snapBytes
	for _, e := range d.cache {
		if e.shard != nil {
			total += d.sizeOf(e.shard)
		} else {
			total += e.size
		}
	}
	return total
}

func (d *DiskStore) bumpUseLocked() int64 {
	d.useSeq++
	return d.useSeq
}

// Prefetch implements Store: it starts loading shard (t,p) on the background
// pool so a later Acquire finds it resident. It never blocks on I/O, takes
// no reference, and is a no-op when the shard is already cached, loading, or
// mid-write-back (an Acquire revives the latter without touching disk).
// Under a memory budget a hint that does not fit is dropped — hints are
// advisory, so the budget sheds them rather than evicting for them.
func (d *DiskStore) Prefetch(t, p int) {
	k := shardKey{t, p}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if _, ok := d.cache[k]; ok {
		d.mu.Unlock()
		return
	}
	size := d.shardBytes(t, p)
	if d.maxResident > 0 {
		if d.accountedLocked()+size > d.maxResident {
			d.m.sheds.Inc()
			d.mu.Unlock()
			return
		}
		d.m.admits.Inc()
	}
	e := &diskEntry{ready: make(chan struct{}), size: size, queued: true}
	e.span = d.obs.Trace.Start("storage", fmt.Sprintf("prefetch t%d p%d", t, p))
	d.cache[k] = e
	d.mu.Unlock()
	d.submit(func() { d.prefetchLoad(k, e) })
}

// prefetchLoad runs an admitted hint on the pool. Admission is re-checked
// when the load actually starts: must-have Acquires may have consumed the
// budget while the hint sat in the queue, in which case the hint is shed —
// even if an Acquire has already joined it (the waiter observes errShed and
// retries as a must-have miss, so no loading entry is ever stranded).
func (d *DiskStore) prefetchLoad(k shardKey, e *diskEntry) {
	d.mu.Lock()
	hook := d.testHookPrefetchLoad
	d.mu.Unlock()
	if hook != nil {
		hook(k)
	}
	d.mu.Lock()
	if e.shedded {
		d.mu.Unlock()
		return
	}
	e.queued = false
	if d.maxResident > 0 && d.accountedLocked() > d.maxResident {
		d.shedLocked(k, e)
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	d.load(k, e, true)
}

// shedLocked cancels a queued prefetch: the entry leaves the cache, waiters
// are woken with errShed (they retry as must-have misses), and the pool
// goroutine — if it has not run yet — abandons the load via the shedded
// flag.
func (d *DiskStore) shedLocked(k shardKey, e *diskEntry) {
	e.shedded = true
	e.loadErr = errShed
	delete(d.cache, k)
	d.m.sheds.Inc()
	e.span.End()
	e.span = nil
	if e.ready != nil {
		close(e.ready)
		e.ready = nil
	}
	d.cond.Broadcast()
}

// load reads or initialises shard k and publishes the result into e. On
// failure the entry is removed so a retry can re-attempt the load; waiters
// read loadErr from their captured entry pointer. Lazy initialisation only
// happens when the shard file verifiably does not exist — any other stat
// failure is an error, because re-initialising over a real-but-unreadable
// file would silently discard that partition's training on write-back.
func (d *DiskStore) load(k shardKey, e *diskEntry, prefetch bool) {
	var lsp *obs.Span
	if e.span != nil {
		lsp = e.span.Child(fmt.Sprintf("load t%d p%d", k.t, k.p))
	} else {
		lsp = d.obs.Trace.Start("storage", fmt.Sprintf("load t%d p%d", k.t, k.p))
	}
	var sh *Shard
	var err error
	if _, serr := os.Stat(d.path(k.t, k.p)); serr == nil {
		sh, err = ReadShard(d.path(k.t, k.p))
	} else if os.IsNotExist(serr) {
		sh = d.newShard(k.t, k.p)
	} else {
		err = fmt.Errorf("storage: stat shard (%d,%d): %w", k.t, k.p, serr)
	}
	d.mu.Lock()
	e.shard, e.loadErr = sh, err
	if err != nil {
		delete(d.cache, k)
	} else {
		e.size = d.sizeOf(sh)
		if prefetch && d.maxResident > 0 {
			// Until an Acquire hands it out, a prefetched shard is identical
			// to its disk copy (or its deterministic lazy init): evictable
			// with no write should a must-have need the memory.
			e.clean = true
			e.lastUse = d.bumpUseLocked()
		}
	}
	d.m.loads.Inc()
	lsp.End()
	e.span.End()
	e.span = nil
	d.updateResidentLocked()
	close(e.ready)
	e.ready = nil
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Acquire implements Store, loading from disk when evicted earlier. A hit on
// a prefetched-but-still-loading entry waits for the background load rather
// than issuing a second read; a hit on an entry whose write-back is in
// flight revives the live in-memory shard immediately (the writer works on
// a snapshot) and never re-reads the file. Under a memory budget a miss is
// a must-have: makeRoomLocked evicts unreferenced shards (LRU by last
// release) and waits for in-flight write-backs until the load fits — and
// only runs over budget when the remaining bytes all belong to referenced
// shards.
func (d *DiskStore) Acquire(t, p int) (*Shard, error) {
	k := shardKey{t, p}
	d.mu.Lock()
	for {
		e, ok := d.cache[k]
		if !ok {
			size := d.shardBytes(t, p)
			if d.maxResident > 0 {
				if waited := d.makeRoomLocked(size); waited {
					continue // the cache changed while we waited; re-check
				}
				d.m.admits.Inc()
			}
			e = &diskEntry{ready: make(chan struct{}), size: size}
			d.cache[k] = e
			d.mu.Unlock()
			d.load(k, e, false) // synchronous load in this goroutine
			if e.loadErr != nil {
				return nil, e.loadErr
			}
			d.mu.Lock()
			continue
		}
		if e.ready != nil { // load in flight (prefetch or racing Acquire)
			ready := e.ready
			e.waiters++
			d.mu.Unlock()
			<-ready
			d.mu.Lock()
			e.waiters--
			if e.loadErr == errShed {
				continue // the budget shed the hint we joined; retry as a miss
			}
			if e.loadErr != nil {
				d.mu.Unlock()
				return nil, e.loadErr
			}
			continue
		}
		e.refs++
		e.clean = false
		sh := e.shard
		if e.snapDone != nil {
			// A write-back is snapshotting these buffers outside the lock;
			// wait for the memcpy (not the disk write) before the caller may
			// mutate them.
			done := e.snapDone
			d.mu.Unlock()
			<-done
			return sh, nil
		}
		if e.writeDone != nil {
			// The budget had no headroom for a snapshot, so the write-back
			// holds the live buffers; wait for the disk write itself.
			done := e.writeDone
			d.mu.Unlock()
			<-done
			return sh, nil
		}
		d.mu.Unlock()
		return sh, nil
	}
}

// makeRoomLocked frees accounted memory until `need` more bytes fit inside
// the budget, in escalating steps: shed queued prefetch hints, evict clean
// unreferenced shards (LRU by last release; no I/O), then wait for
// in-flight write-backs, snapshot copies, or pure-prefetch loads to land
// and retry. It returns waited=true when it released the lock (the caller
// must re-check the cache). When every remaining byte belongs to referenced
// shards or joined loads it gives up and lets the must-have proceed over
// budget — training cannot make progress otherwise.
func (d *DiskStore) makeRoomLocked(need int64) (waited bool) {
	for d.accountedLocked()+need > d.maxResident {
		if d.shedQueuedLocked() {
			continue
		}
		if d.evictCleanLocked() {
			continue
		}
		if d.waitableLocked() {
			d.cond.Wait()
			waited = true
			continue
		}
		break
	}
	return waited
}

// shedQueuedLocked cancels one queued prefetch nobody has joined yet.
func (d *DiskStore) shedQueuedLocked() bool {
	for k, e := range d.cache {
		if e.queued && !e.shedded && e.waiters == 0 {
			d.shedLocked(k, e)
			return true
		}
	}
	return false
}

// evictCleanLocked drops the least-recently-used unreferenced clean shard;
// its disk copy (or deterministic lazy init) is current, so no write is
// needed. Entries a waiter is about to claim are skipped.
func (d *DiskStore) evictCleanLocked() bool {
	var victimK shardKey
	var victim *diskEntry
	for k, e := range d.cache {
		if e.clean && e.refs == 0 && e.ready == nil && !e.writing && e.waiters == 0 {
			if victim == nil || e.lastUse < victim.lastUse {
				victimK, victim = k, e
			}
		}
	}
	if victim == nil {
		return false
	}
	delete(d.cache, victimK)
	d.m.forcedEvicts.Inc()
	d.updateResidentLocked()
	d.cond.Broadcast()
	return true
}

// waitableLocked reports whether any in-flight I/O will free accounted
// memory when it lands: a write snapshot, a write-back of an unreferenced
// shard, or a pure-prefetch load (which becomes clean, hence evictable).
func (d *DiskStore) waitableLocked() bool {
	if d.snapBytes > 0 {
		return true
	}
	for _, e := range d.cache {
		if e.writing && e.refs == 0 {
			return true
		}
		if e.ready != nil && e.waiters == 0 && !e.queued && !e.shedded {
			return true
		}
	}
	return false
}

// snapshot returns a private copy of s. Write-backs serialise snapshots
// (taken under the store lock, when no trainer holds a reference) instead
// of the live buffers, so a revived shard can be mutated while its previous
// state is still being written out.
func (s *Shard) snapshot() *Shard {
	return &Shard{
		TypeIndex: s.TypeIndex, Part: s.Part, Count: s.Count, Dim: s.Dim,
		Embs: append([]float32(nil), s.Embs...),
		Acc:  append([]float32(nil), s.Acc...),
	}
}

// Release implements Store: the last reference schedules an asynchronous
// write-back of a snapshot on the I/O pool and the shard is evicted once
// the write lands (retained as a clean cache entry instead when a budget
// is set and it fits). Because write-backs are asynchronous, a failure
// surfaces as the (sticky) error of a later Release, Flush, Drain, or
// Close call.
func (d *DiskStore) Release(t, p int) error {
	k := shardKey{t, p}
	d.mu.Lock()
	e, ok := d.cache[k]
	if !ok || e.refs <= 0 || e.ready != nil {
		d.mu.Unlock()
		return fmt.Errorf("storage: Release of unacquired shard (%d,%d)", t, p)
	}
	e.refs--
	err := d.ioErr
	if e.refs > 0 {
		d.mu.Unlock()
		return err
	}
	e.lastUse = d.bumpUseLocked()
	if e.writing {
		// A write of an older snapshot is still in flight; chain a rewrite
		// behind it rather than racing two renames to the same file.
		e.rewrite = true
		d.mu.Unlock()
		return err
	}
	e.writing = true
	d.startWrite(k, e)
	return err
}

// startWrite snapshots e's shard and submits its write-back. The caller
// must hold d.mu with e.writing freshly set; startWrite unlocks it. The
// multi-MB snapshot copy runs outside the store lock — guarded by
// e.snapDone so only a revival of this very shard waits for the memcpy —
// keeping evictions from convoying every other Acquire/Prefetch/Release.
// When a budget is set and the snapshot copy itself would not fit, the
// write uses the live buffers instead (refs is zero, so nothing mutates
// them) and a revival waits for the disk write via writeDone.
func (d *DiskStore) startWrite(k shardKey, e *diskEntry) {
	if d.maxResident > 0 && d.accountedLocked()+d.sizeOf(e.shard) > d.maxResident {
		e.writeDone = make(chan struct{})
		live := e.shard
		d.mu.Unlock()
		d.submit(func() { d.writeBack(k, e, live, true) })
		return
	}
	e.snapDone = make(chan struct{})
	sh := e.shard
	// Reserve the snapshot's bytes before releasing the lock: an admission
	// check racing the memcpy must already see them, or a prefetch admitted
	// during the copy would push real memory past the budget.
	d.snapBytes += d.sizeOf(sh)
	d.updateResidentLocked()
	d.mu.Unlock()
	ssp := d.obs.Trace.Start("storage", fmt.Sprintf("snapshot t%d p%d", k.t, k.p))
	snap := sh.snapshot()
	ssp.End()
	d.mu.Lock()
	close(e.snapDone)
	e.snapDone = nil
	d.mu.Unlock()
	d.submit(func() { d.writeBack(k, e, snap, false) })
}

// writeBack persists a snapshot of e's shard (or the live buffers when
// live) and evicts the entry unless an Acquire revived it while the write
// was in flight. On failure the entry stays resident: the in-memory shard
// is the only current copy, so evicting it would lose the bucket's training
// — the sticky error surfaces on the next Release or Drain, while Flush and
// Close retry the write (clearing the error if the retry lands).
func (d *DiskStore) writeBack(k shardKey, e *diskEntry, snap *Shard, live bool) {
	wsp := d.obs.Trace.Start("storage", fmt.Sprintf("writeback t%d p%d", k.t, k.p))
	werr := WriteShardCodec(d.path(k.t, k.p), snap, d.codec)
	wsp.End()
	d.mu.Lock()
	d.m.writes.Inc()
	if !live {
		d.snapBytes -= d.sizeOf(snap)
	}
	finish := func() {
		if e.writeDone != nil {
			close(e.writeDone)
			e.writeDone = nil
		}
		d.cond.Broadcast()
	}
	if werr != nil {
		e.writing = false
		e.rewrite = false
		if d.ioErr == nil {
			d.ioErr = fmt.Errorf("storage: write back shard (%d,%d): %w", k.t, k.p, werr)
		}
		finish()
		d.mu.Unlock()
		return
	}
	if e.rewrite {
		e.rewrite = false
		if e.refs == 0 {
			// Newer state was released while the older snapshot was being
			// written; chain the next write (keeping e.writing) so writes of
			// this shard stay ordered. No revival can be waiting on writeDone
			// here: a reviver holds a reference, which contradicts refs == 0.
			finish()
			d.startWrite(k, e)
			return
		}
		// Revived since: its next Release will write.
		e.writing = false
		finish()
		d.mu.Unlock()
		return
	}
	e.writing = false
	if e.refs == 0 {
		if d.maxResident > 0 && d.accountedLocked() <= d.maxResident {
			// Budgeted mode keeps the written shard as a clean cache entry —
			// the budget is a shard cache, not just a ceiling — so a
			// re-Acquire skips the disk read. Eviction reclaims it LRU-first
			// whenever a must-have needs the memory.
			e.clean = true
		} else {
			delete(d.cache, k)
		}
	}
	d.updateResidentLocked()
	finish()
	d.mu.Unlock()
}

// Drain blocks until every background load and write-back has completed and
// returns the first asynchronous write error, if any. The caller must not
// issue concurrent Prefetch/Release calls while draining.
func (d *DiskStore) Drain() error {
	d.pending.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ioErr
}

// IOStats reports cumulative I/O counts and memory-budget decisions, for
// tests and throughput accounting. It is a snapshot of the store's obs
// registry counters, so callers see the same numbers a /metrics scrape
// would.
func (d *DiskStore) IOStats() IOStats {
	return IOStats{
		Loads:         d.m.loads.Value(),
		Writes:        d.m.writes.Value(),
		Admits:        d.m.admits.Value(),
		PrefetchSheds: d.m.sheds.Value(),
		ForcedEvicts:  d.m.forcedEvicts.Value(),
	}
}

// Flush implements Store: wait for pending I/O, then persist every resident
// shard, keeping all of them cached (the interface's checkpointing
// contract — prefetched shards and warm cache entries survive). A
// successful Flush also clears — and thereby retries — earlier asynchronous
// write-back failures: a failed write-back keeps its shard resident, so
// rewriting everything resident re-covers exactly the shards whose write
// was lost.
func (d *DiskStore) Flush() error {
	d.pending.Wait()
	type item struct {
		k shardKey
		e *diskEntry
	}
	d.mu.Lock()
	d.ioErr = nil
	items := make([]item, 0, len(d.cache))
	for k, e := range d.cache {
		// Clean retained entries are bit-identical to their disk copy (or
		// to their deterministic lazy init), so rewriting them on every
		// checkpoint would be O(warm cache) of disk writes for nothing.
		if e.shard != nil && !(e.clean && e.refs == 0) {
			items = append(items, item{k, e})
		}
	}
	d.mu.Unlock()
	for _, it := range items {
		if err := WriteShardCodec(d.path(it.k.t, it.k.p), it.e.shard, d.codec); err != nil {
			d.mu.Lock()
			if d.ioErr == nil {
				d.ioErr = fmt.Errorf("storage: flush shard (%d,%d): %w", it.k.t, it.k.p, err)
			}
			d.mu.Unlock()
			return err
		}
	}
	return nil
}

// ResidentBytes implements Store. Shards being prefetched count once
// loaded; shards awaiting write-back and the in-flight write snapshots
// count too — all genuinely occupy memory, and the pipeline's extra
// transient footprint should be visible to the §5.4.2 accounting rather
// than hidden. Under SetCodec the report is in budget-priced (codec)
// bytes, the same unit the admission budget charges, so the invariant
// "accounted ≥ resident" holds in one currency.
func (d *DiskStore) ResidentBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.residentLocked()
}

func (d *DiskStore) residentLocked() int64 {
	total := d.snapBytes
	for _, e := range d.cache {
		if e.shard != nil {
			total += d.sizeOf(e.shard)
		}
	}
	return total
}

// updateResidentLocked refreshes the resident-bytes gauge. Called at every
// transition that changes real shard memory (load publish, snapshot
// reservation, write-back completion, eviction), so a /metrics scrape sees
// the same footprint ResidentBytes reports.
func (d *DiskStore) updateResidentLocked() {
	d.m.resident.Set(d.residentLocked())
}

// Close implements Store: persist everything still resident and reject
// further background work.
func (d *DiskStore) Close() error {
	err := d.Flush()
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return err
}
