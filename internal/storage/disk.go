package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"pbg/internal/graph"
)

// diskIOWorkers bounds the number of concurrent background shard loads and
// write-backs per DiskStore. Two is enough to overlap one prefetch with one
// eviction; four covers buckets whose relations span several entity types.
const diskIOWorkers = 4

// diskEntry is one cached shard together with its I/O state. An entry moves
// through three states, always under the store lock:
//
//	loading:  ready != nil — a Prefetch or first Acquire is reading the file
//	          (or initialising); shard/loadErr are set before ready closes.
//	resident: ready == nil, writing == false — the shard is usable.
//	writing:  refs hit zero and a write-back is in flight. The write works
//	          on a snapshot copied under the store lock, so a concurrent
//	          Acquire revives the live in-memory shard immediately — it
//	          neither re-reads a stale or half-renamed file nor waits for
//	          the disk write. The entry stays cached until the rename lands.
type diskEntry struct {
	shard *Shard
	refs  int

	ready   chan struct{} // non-nil while a load is in flight
	loadErr error         // set before ready closes; immutable afterwards

	writing bool
	// rewrite marks that refs hit zero again while a write was in flight;
	// the completion handler chains a write of a fresh snapshot, so an
	// older in-flight write can never overwrite newer data (writes of one
	// shard are strictly serialised through this flag).
	rewrite bool
	// snapDone is non-nil for the brief window while the write-back's
	// snapshot copy is being taken outside the store lock; an Acquire that
	// revives the entry waits on it (a memcpy, not a disk write) before
	// handing out the buffers for mutation.
	snapDone chan struct{}
}

// DiskStore persists shards under dir and keeps only referenced (or
// prefetched) shards in memory — the partition-swapping mode that gives the
// 88% memory reduction of §5.4.2. Loads hinted via Prefetch and the
// write-back of evicted shards run on a small background I/O pool so the
// training thread overlaps bucket transitions with compute (§4.1
// pipelining). Write-backs double-buffer: each writes a snapshot taken at
// eviction, costing one transient shard copy per in-flight write (bounded
// by the pool size) in exchange for re-Acquires never stalling on the disk.
type DiskStore struct {
	schema *graph.Schema
	dim    int
	seed   uint64
	scale  float32
	dir    string

	mu        sync.Mutex
	cache     map[shardKey]*diskEntry
	ioErr     error // first async write-back failure; sticky
	closed    bool
	loads     int64
	writes    int64
	snapBytes int64 // memory held by in-flight write-back snapshots

	sem     chan struct{} // bounds concurrent background I/O
	pending sync.WaitGroup
}

// NewDiskStore creates a disk-backed store rooted at dir.
func NewDiskStore(dir string, schema *graph.Schema, dim int, seed uint64, initScale float32) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DiskStore{
		schema: schema,
		dim:    dim,
		seed:   seed,
		scale:  initScale,
		dir:    dir,
		cache:  make(map[shardKey]*diskEntry),
		sem:    make(chan struct{}, diskIOWorkers),
	}, nil
}

func (d *DiskStore) path(t, p int) string {
	return filepath.Join(d.dir, fmt.Sprintf("shard_t%d_p%d.pbg", t, p))
}

// newShard lazily initialises shard (t,p) with the deterministic per-shard
// seed derivation shared with the distributed partition servers.
func (d *DiskStore) newShard(t, p int) *Shard {
	e := d.schema.Entities[t]
	sh := NewShard(t, p, e.PartitionCount(p), d.dim)
	sh.Init(newShardRNG(d.seed, t, p), d.scale)
	return sh
}

// submit runs fn on the background I/O pool.
func (d *DiskStore) submit(fn func()) {
	d.pending.Add(1)
	go func() {
		defer d.pending.Done()
		d.sem <- struct{}{}
		defer func() { <-d.sem }()
		fn()
	}()
}

// Prefetch implements Store: it starts loading shard (t,p) on the background
// pool so a later Acquire finds it resident. It never blocks on I/O, takes
// no reference, and is a no-op when the shard is already cached, loading, or
// mid-write-back (an Acquire revives the latter without touching disk).
func (d *DiskStore) Prefetch(t, p int) {
	k := shardKey{t, p}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if _, ok := d.cache[k]; ok {
		d.mu.Unlock()
		return
	}
	e := &diskEntry{ready: make(chan struct{})}
	d.cache[k] = e
	d.mu.Unlock()
	d.submit(func() { d.load(k, e) })
}

// load reads or initialises shard k and publishes the result into e. On
// failure the entry is removed so a retry can re-attempt the load; waiters
// read loadErr from their captured entry pointer. Lazy initialisation only
// happens when the shard file verifiably does not exist — any other stat
// failure is an error, because re-initialising over a real-but-unreadable
// file would silently discard that partition's training on write-back.
func (d *DiskStore) load(k shardKey, e *diskEntry) {
	var sh *Shard
	var err error
	if _, serr := os.Stat(d.path(k.t, k.p)); serr == nil {
		sh, err = ReadShard(d.path(k.t, k.p))
	} else if os.IsNotExist(serr) {
		sh = d.newShard(k.t, k.p)
	} else {
		err = fmt.Errorf("storage: stat shard (%d,%d): %w", k.t, k.p, serr)
	}
	d.mu.Lock()
	e.shard, e.loadErr = sh, err
	if err != nil {
		delete(d.cache, k)
	}
	d.loads++
	close(e.ready)
	e.ready = nil
	d.mu.Unlock()
}

// Acquire implements Store, loading from disk when evicted earlier. A hit on
// a prefetched-but-still-loading entry waits for the background load rather
// than issuing a second read; a hit on an entry whose write-back is in
// flight revives the live in-memory shard immediately (the writer works on
// a snapshot) and never re-reads the file.
func (d *DiskStore) Acquire(t, p int) (*Shard, error) {
	k := shardKey{t, p}
	d.mu.Lock()
	for {
		e, ok := d.cache[k]
		if !ok {
			e = &diskEntry{ready: make(chan struct{})}
			d.cache[k] = e
			d.mu.Unlock()
			d.load(k, e) // synchronous load in this goroutine
			if e.loadErr != nil {
				return nil, e.loadErr
			}
			d.mu.Lock()
			continue
		}
		if e.ready != nil { // load in flight (prefetch or racing Acquire)
			ready := e.ready
			d.mu.Unlock()
			<-ready
			if e.loadErr != nil {
				return nil, e.loadErr
			}
			d.mu.Lock()
			continue
		}
		e.refs++
		sh := e.shard
		if e.snapDone != nil {
			// A write-back is snapshotting these buffers outside the lock;
			// wait for the memcpy (not the disk write) before the caller may
			// mutate them.
			done := e.snapDone
			d.mu.Unlock()
			<-done
			return sh, nil
		}
		d.mu.Unlock()
		return sh, nil
	}
}

// snapshot returns a private copy of s. Write-backs serialise snapshots
// (taken under the store lock, when no trainer holds a reference) instead
// of the live buffers, so a revived shard can be mutated while its previous
// state is still being written out.
func (s *Shard) snapshot() *Shard {
	return &Shard{
		TypeIndex: s.TypeIndex, Part: s.Part, Count: s.Count, Dim: s.Dim,
		Embs: append([]float32(nil), s.Embs...),
		Acc:  append([]float32(nil), s.Acc...),
	}
}

// Release implements Store: the last reference schedules an asynchronous
// write-back of a snapshot on the I/O pool and the shard is evicted once
// the write lands. Because write-backs are asynchronous, a failure surfaces
// as the (sticky) error of a later Release, Flush, Drain, or Close call.
func (d *DiskStore) Release(t, p int) error {
	k := shardKey{t, p}
	d.mu.Lock()
	e, ok := d.cache[k]
	if !ok || e.refs <= 0 || e.ready != nil {
		d.mu.Unlock()
		return fmt.Errorf("storage: Release of unacquired shard (%d,%d)", t, p)
	}
	e.refs--
	err := d.ioErr
	if e.refs > 0 {
		d.mu.Unlock()
		return err
	}
	if e.writing {
		// A write of an older snapshot is still in flight; chain a rewrite
		// behind it rather than racing two renames to the same file.
		e.rewrite = true
		d.mu.Unlock()
		return err
	}
	e.writing = true
	d.startWrite(k, e)
	return err
}

// startWrite snapshots e's shard and submits its write-back. The caller
// must hold d.mu with e.writing freshly set; startWrite unlocks it. The
// multi-MB snapshot copy runs outside the store lock — guarded by
// e.snapDone so only a revival of this very shard waits for the memcpy —
// keeping evictions from convoying every other Acquire/Prefetch/Release.
func (d *DiskStore) startWrite(k shardKey, e *diskEntry) {
	e.snapDone = make(chan struct{})
	sh := e.shard
	d.mu.Unlock()
	snap := sh.snapshot()
	d.mu.Lock()
	close(e.snapDone)
	e.snapDone = nil
	d.snapBytes += snap.Bytes()
	d.mu.Unlock()
	d.submit(func() { d.writeBack(k, e, snap) })
}

// writeBack persists a snapshot of e's shard and evicts the entry unless an
// Acquire revived it while the write was in flight. On failure the entry
// stays resident: the in-memory shard is the only current copy, so evicting
// it would lose the bucket's training — the sticky error surfaces on the
// next Release or Drain, while Flush and Close retry the write (clearing
// the error if the retry lands).
func (d *DiskStore) writeBack(k shardKey, e *diskEntry, snap *Shard) {
	werr := WriteShard(d.path(k.t, k.p), snap)
	d.mu.Lock()
	d.writes++
	d.snapBytes -= snap.Bytes()
	if werr != nil {
		e.writing = false
		e.rewrite = false
		if d.ioErr == nil {
			d.ioErr = fmt.Errorf("storage: write back shard (%d,%d): %w", k.t, k.p, werr)
		}
		d.mu.Unlock()
		return
	}
	if e.rewrite {
		e.rewrite = false
		if e.refs == 0 {
			// Newer state was released while the older snapshot was being
			// written; chain the next write (keeping e.writing) so writes of
			// this shard stay ordered.
			d.startWrite(k, e)
			return
		}
		// Revived since: its next Release will write.
		e.writing = false
		d.mu.Unlock()
		return
	}
	e.writing = false
	if e.refs == 0 {
		delete(d.cache, k)
	}
	d.mu.Unlock()
}

// Drain blocks until every background load and write-back has completed and
// returns the first asynchronous write error, if any. The caller must not
// issue concurrent Prefetch/Release calls while draining.
func (d *DiskStore) Drain() error {
	d.pending.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ioErr
}

// IOStats reports cumulative shard loads (disk reads or lazy inits) and
// shard writes, for tests and throughput accounting.
func (d *DiskStore) IOStats() (loads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.loads, d.writes
}

// Flush implements Store: wait for pending I/O, then persist every resident
// shard, keeping all of them cached (the interface's checkpointing
// contract — prefetched shards and warm cache entries survive). A
// successful Flush also clears — and thereby retries — earlier asynchronous
// write-back failures: a failed write-back keeps its shard resident, so
// rewriting everything resident re-covers exactly the shards whose write
// was lost.
func (d *DiskStore) Flush() error {
	d.pending.Wait()
	type item struct {
		k shardKey
		e *diskEntry
	}
	d.mu.Lock()
	d.ioErr = nil
	items := make([]item, 0, len(d.cache))
	for k, e := range d.cache {
		if e.shard != nil {
			items = append(items, item{k, e})
		}
	}
	d.mu.Unlock()
	for _, it := range items {
		if err := WriteShard(d.path(it.k.t, it.k.p), it.e.shard); err != nil {
			d.mu.Lock()
			if d.ioErr == nil {
				d.ioErr = fmt.Errorf("storage: flush shard (%d,%d): %w", it.k.t, it.k.p, err)
			}
			d.mu.Unlock()
			return err
		}
	}
	return nil
}

// ResidentBytes implements Store. Shards being prefetched count once
// loaded; shards awaiting write-back and the in-flight write snapshots
// count too — all genuinely occupy memory, and the pipeline's extra
// transient footprint should be visible to the §5.4.2 accounting rather
// than hidden.
func (d *DiskStore) ResidentBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := d.snapBytes
	for _, e := range d.cache {
		if e.shard != nil {
			total += e.shard.Bytes()
		}
	}
	return total
}

// Close implements Store: persist everything still resident and reject
// further background work.
func (d *DiskStore) Close() error {
	err := d.Flush()
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return err
}
