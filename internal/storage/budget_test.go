package storage

import (
	"runtime"
	"testing"
	"time"

	"pbg/internal/graph"
)

// budgetSchema has one partitioned type with 4 equal shards so budget math
// is exact: each shard is 5 rows × (dim+1) × 4 bytes.
func budgetSchema(t *testing.T) *graph.Schema {
	t.Helper()
	return graph.MustSchema(
		[]graph.EntityType{{Name: "node", Count: 20, NumPartitions: 4}},
		[]graph.RelationType{{Name: "r", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
}

// waitUntil spins (yielding) until cond holds; it is a bounded handshake on
// internal state, not a timing assumption — failures mean the condition can
// never hold, and surface as a fatal after a generous bound.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
		if i%10_000 == 9_999 {
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("condition never became true")
}

func TestDiskStoreBudgetShedsPrefetchHints(t *testing.T) {
	st, err := NewDiskStore(t.TempDir(), budgetSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard := st.shardBytes(0, 0)
	st.SetMaxResidentBytes(2 * shard)
	// Fill the budget with two referenced shards.
	if _, err := st.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Acquire(0, 1); err != nil {
		t.Fatal(err)
	}
	// A hint that does not fit is dropped, not queued.
	st.Prefetch(0, 2)
	io := st.IOStats()
	if io.PrefetchSheds != 1 {
		t.Fatalf("sheds = %d, want 1 (stats %+v)", io.PrefetchSheds, io)
	}
	st.mu.Lock()
	_, cached := st.cache[shardKey{0, 2}]
	st.mu.Unlock()
	if cached {
		t.Fatal("shed hint left a cache entry")
	}
	// The shard is still acquirable as a must-have (over-budget allowance:
	// everything else is referenced).
	if _, err := st.Acquire(0, 2); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := st.Release(0, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreBudgetRetainsCleanShards(t *testing.T) {
	st, err := NewDiskStore(t.TempDir(), budgetSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard := st.shardBytes(0, 0)
	st.SetMaxResidentBytes(4 * shard)
	sh, err := st.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh.Row(0)[0] = 42
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	// Budgeted mode retains the written shard as a clean cache entry.
	if st.ResidentBytes() == 0 {
		t.Fatal("budgeted store evicted a shard it had room to retain")
	}
	loadsBefore := st.IOStats().Loads
	again, err := st.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Row(0)[0] != 42 {
		t.Fatalf("retained shard lost state: %v", again.Row(0)[0])
	}
	if got := st.IOStats().Loads; got != loadsBefore {
		t.Fatalf("re-acquire of a retained shard hit disk: loads %d -> %d", loadsBefore, got)
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreBudgetForcedEvictionLRU(t *testing.T) {
	st, err := NewDiskStore(t.TempDir(), budgetSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard := st.shardBytes(0, 0)
	st.SetMaxResidentBytes(2 * shard)
	// Leave two clean retained shards: p0 released first (LRU victim).
	for _, p := range []int{0, 1} {
		sh, err := st.Acquire(0, p)
		if err != nil {
			t.Fatal(err)
		}
		sh.Row(0)[0] = float32(10 + p)
		if err := st.Release(0, p); err != nil {
			t.Fatal(err)
		}
		if err := st.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if st.ResidentBytes() != 2*shard {
		t.Fatalf("resident %d, want both shards retained (%d)", st.ResidentBytes(), 2*shard)
	}
	// A must-have for a third shard evicts the least recently released.
	if _, err := st.Acquire(0, 2); err != nil {
		t.Fatal(err)
	}
	io := st.IOStats()
	if io.ForcedEvicts != 1 {
		t.Fatalf("forced evicts = %d, want 1 (stats %+v)", io.ForcedEvicts, io)
	}
	st.mu.Lock()
	_, p0 := st.cache[shardKey{0, 0}]
	_, p1 := st.cache[shardKey{0, 1}]
	st.mu.Unlock()
	if p0 || !p1 {
		t.Fatalf("LRU eviction wrong: p0 cached=%v p1 cached=%v (want p0 evicted)", p0, p1)
	}
	if st.ResidentBytes() > 2*shard {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes(), 2*shard)
	}
	// The evicted shard reloads from disk with its state intact.
	if err := st.Release(0, 2); err != nil {
		t.Fatal(err)
	}
	back, err := st.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Row(0)[0] != 10 {
		t.Fatalf("evicted shard lost state: %v", back.Row(0)[0])
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStoreBudgetLiveWriteBack pins the no-headroom write path: with a
// budget of exactly one shard there is no room for a write-back snapshot,
// so the write uses the live buffers and a mid-write revival waits for the
// disk write instead of a memcpy — state must survive both ways.
func TestDiskStoreBudgetLiveWriteBack(t *testing.T) {
	st, err := NewDiskStore(t.TempDir(), budgetSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.SetMaxResidentBytes(st.shardBytes(0, 0)) // one shard: snapshot can never fit
	zero, err := st.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	zero.Row(0)[0] = 0 // lazy init fills the cell with noise
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sh, err := st.Acquire(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		sh.Row(0)[0]++
		if err := st.Release(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	sh, err := st.Acquire(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Row(0)[0]; got != 20 {
		t.Fatalf("cell = %v, want 20 (lost updates through live write-back revival)", got)
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStorePrefetchShedJoinedAcquire pins the join-then-shed
// interleaving (the admission-failure path): a prefetch is admitted, an
// Acquire joins the in-flight load, then the budget — consumed meanwhile by
// a must-have — sheds the queued hint when its pool load starts. The joined
// Acquire must retry as a must-have miss and succeed; no loading entry may
// be left stranded in the cache.
func TestDiskStorePrefetchShedJoinedAcquire(t *testing.T) {
	st, err := NewDiskStore(t.TempDir(), budgetSchema(t), 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	shard := st.shardBytes(0, 0)
	st.SetMaxResidentBytes(shard + shard/2) // fits the hint, not hint + must-have

	gate := make(chan struct{})
	st.testHookPrefetchLoad = func(k shardKey) {
		if k == (shardKey{0, 1}) {
			<-gate // hold the queued hint until the test tightens the budget
		}
	}

	st.Prefetch(0, 1) // admitted: nothing else is resident
	if got := st.IOStats().Admits; got != 1 {
		t.Fatalf("admits = %d, want 1", got)
	}

	// Join the in-flight prefetch from another goroutine.
	type result struct {
		sh  *Shard
		err error
	}
	joined := make(chan result, 1)
	go func() {
		sh, err := st.Acquire(0, 1)
		joined <- result{sh, err}
	}()
	waitUntil(t, func() bool {
		st.mu.Lock()
		defer st.mu.Unlock()
		e := st.cache[shardKey{0, 1}]
		return e != nil && e.waiters == 1
	})

	// A must-have consumes the budget while the hint sits in the queue.
	// makeRoom must NOT shed the joined hint (a waiter is about to claim
	// it); the must-have runs over budget instead.
	if _, err := st.Acquire(0, 0); err != nil {
		t.Fatal(err)
	}

	close(gate) // the pool load now re-checks admission: over budget → shed

	res := <-joined
	if res.err != nil {
		t.Fatalf("joined Acquire failed after shed: %v", res.err)
	}
	if res.sh == nil || res.sh.Part != 1 {
		t.Fatalf("joined Acquire returned wrong shard: %+v", res.sh)
	}
	io := st.IOStats()
	if io.PrefetchSheds != 1 {
		t.Fatalf("sheds = %d, want 1 (stats %+v)", io.PrefetchSheds, io)
	}
	// No stranded loading entry: the cache holds exactly the two live
	// shards, both resident (ready == nil).
	st.mu.Lock()
	for k, e := range st.cache {
		if e.ready != nil || e.shard == nil {
			t.Errorf("stranded loading entry for %+v", k)
		}
	}
	n := len(st.cache)
	st.mu.Unlock()
	if n != 2 {
		t.Fatalf("cache has %d entries, want 2", n)
	}
	if err := st.Release(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
