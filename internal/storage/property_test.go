package storage

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"pbg/internal/graph"
	"pbg/internal/rng"
)

// Property: shard disk round trips are lossless for arbitrary shapes and
// contents.
func TestShardRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(seed uint64, countRaw, dimRaw uint8) bool {
		i++
		count := int(countRaw)%50 + 1
		dim := int(dimRaw)%32 + 1
		sh := NewShard(int(seed%7), int(seed%3), count, dim)
		r := rng.New(seed)
		for k := range sh.Embs {
			sh.Embs[k] = r.NormFloat32()
		}
		for k := range sh.Acc {
			sh.Acc[k] = r.Float32() * 100
		}
		path := filepath.Join(dir, "p", "..", "shard.bin")
		if err := WriteShard(path, sh); err != nil {
			return false
		}
		got, err := ReadShard(path)
		if err != nil {
			return false
		}
		if got.Count != count || got.Dim != dim {
			return false
		}
		for k := range sh.Embs {
			if got.Embs[k] != sh.Embs[k] {
				return false
			}
		}
		for k := range sh.Acc {
			if got.Acc[k] != sh.Acc[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: edge files round trip losslessly.
func TestEdgesRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) % 200
		r := rng.New(seed)
		el := &graph.EdgeList{}
		for i := 0; i < n; i++ {
			el.Append(int32(r.Intn(1000)), int32(r.Intn(5)), int32(r.Intn(1000)))
		}
		path := filepath.Join(dir, "edges.bin")
		if err := WriteEdges(path, el); err != nil {
			return false
		}
		got, err := ReadEdges(path)
		if err != nil {
			return false
		}
		if got.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			s1, r1, d1 := el.Edge(i)
			s2, r2, d2 := got.Edge(i)
			if s1 != s2 || r1 != r2 || d1 != d2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
