//go:build !race

package dist

// raceDetectorEnabled reports whether this test binary was built with -race.
const raceDetectorEnabled = false
