package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"pbg/internal/partition"
)

// manifestName is the checkpoint manifest's filename inside the checkpoint
// directory (the same directory the durable partition servers write shards
// to, so one directory is a complete restartable model).
const manifestName = "MANIFEST.json"

// Manifest is the consistency cut a Cluster checkpoint records: the epoch in
// progress, the buckets already committed in it, and the global relation
// parameters. Together with the durable shard files beside it, it lets a
// crashed run resume from the cut instead of epoch 0. The done-bucket set is
// snapshotted before the shards are flushed, so the durable shards are
// always at least as new as the cut — resuming retrains at most the buckets
// that were in flight, never loses a committed one.
type Manifest struct {
	// Epoch is the lock-server epoch at the cut (0 = before the first
	// StartEpoch).
	Epoch int
	// Done lists the buckets committed in Epoch at the cut.
	Done []partition.Bucket
	// RelParams carries the parameter server's relation blocks (omitted for
	// parameter-free operators).
	RelParams []RelBlock
}

// RelBlock is one relation's global parameter block.
type RelBlock struct {
	Rel    int
	Params []float32
}

// WriteManifest atomically persists m into dir (temp file + rename, so a
// crash mid-checkpoint leaves the previous manifest intact).
func WriteManifest(dir string, m *Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// ReadManifest loads dir's checkpoint manifest. ok is false (with a nil
// error) when the directory holds no manifest — a fresh run.
func ReadManifest(dir string) (m *Manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	m = new(Manifest)
	if err := json.Unmarshal(data, m); err != nil {
		return nil, false, fmt.Errorf("dist: corrupt checkpoint manifest in %s: %w", dir, err)
	}
	return m, true, nil
}
