package dist

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pbg/internal/datagen"
	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/obs"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// chaosGraph builds the social graph the chaos tests share. Its single
// relation uses the identity operator, so there are no relation parameters
// and the async parameter sync is a no-op — with Workers:1 the whole cluster
// is race-clean and these tests run under `go test -race` (the CI chaos
// smoke).
func chaosGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: 600, AvgOutDegree: 10, NumPartitions: 4, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func insideOutOrder(t *testing.T, parts int) []partition.Bucket {
	t.Helper()
	order, err := partition.Order(partition.OrderInsideOut, parts, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	return order
}

// evalMRR ranks test edges over emb with the shared protocol, so the
// distributed and single-machine numbers are comparable.
func evalMRR(t *testing.T, g, test *graph.Graph, emb eval.EmbeddingSource, scorers eval.ScorerSource, dim int) float64 {
	t.Helper()
	rk := eval.NewRanker(g.Schema, emb, scorers, dim, graph.ComputeDegrees(g))
	m, err := rk.Evaluate(test.Edges, eval.Config{
		Mode: eval.CandidatesUniform, K: 200, MaxEdges: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.MRR
}

// TestClusterTrainerDeathMidEpoch is the ISSUE's acceptance bar: a trainer is
// SIGKILLed (chaos-killed: every RPC fails terminally, abandon included)
// partway through an epoch while holding a bucket lease. The lease must
// expire, the survivor must re-lease and retrain the orphaned bucket, every
// epoch must still cover the full grid, and the embeddings must reach MRR
// parity with a single-machine run of the same budget.
func TestClusterTrainerDeathMidEpoch(t *testing.T) {
	const (
		parts  = 4
		dim    = 16
		epochs = 4
		ttl    = 150 * time.Millisecond
	)
	g := chaosGraph(t)
	gtr, _, test := g.Split(0, 0.1, 3)

	// Rank 1's first three partition-server Gets succeed — enough to train
	// its first bucket and start checking out its second — then the process
	// "dies" with a lease held.
	chaos := NewChaos(1)
	chaos.KillAfter("rank1", "PartitionServer.Get", 3)

	hub := obs.NewQuietHub()
	cl, err := NewCluster(gtr, insideOutOrder(t, parts), ClusterConfig{
		Machines:     2,
		SyncInterval: 5 * time.Millisecond,
		Seed:         6,
		Train:        train.Config{Dim: dim, Workers: 1, Seed: 5, Obs: hub},
		LeaseTTL:     ttl,
		Retry:        RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
		Chaos:        chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	for epoch := 1; epoch <= epochs; epoch++ {
		st, err := cl.RunEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if len(st.Failed) != 1 || st.Failed[0] != 1 {
			t.Fatalf("epoch %d failed ranks = %v, want [1]", epoch, st.Failed)
		}
		// The grid is still covered in full: buckets rank 1 committed before
		// dying plus everything the survivor trained (including the bucket
		// whose lease expired).
		if st.Buckets != parts*parts {
			t.Fatalf("epoch %d trained %d buckets, want %d", epoch, st.Buckets, parts*parts)
		}
	}
	t.Log(chaos.Stats())

	// The lease expiry is observable on /metrics.
	var buf bytes.Buffer
	if err := hub.Reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// (leases_lost stays 0 here: a killed trainer never observes the loss —
	// only the lock server's expiry counter records it.)
	if !promCounterPositive(buf.String(), "pbg_dist_lease_expiries_total") {
		t.Fatalf("metrics report no lease expiries:\n%s", buf.String())
	}

	// MRR parity with a single-machine run: same embedding seed, same
	// training budget (rank 1's lost work is retrained by rank 0).
	store, err := cl.EvalStore()
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	view := train.NewStoreView(store, g.Schema)
	defer view.Close()
	distMRR := evalMRR(t, gtr, test, view, cl.Nodes[0].Trainer(), dim)

	mem := storage.NewMemStore(gtr.Schema, dim, 6, 1)
	tr, err := train.New(gtr, mem, train.Config{Dim: dim, Epochs: epochs, Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	sview := train.NewStoreView(mem, gtr.Schema)
	defer sview.Close()
	soloMRR := evalMRR(t, gtr, test, sview, tr, dim)

	t.Logf("MRR: distributed-with-death %.4f, single-machine %.4f", distMRR, soloMRR)
	if distMRR < 0.08 {
		t.Fatalf("distributed MRR %.4f below absolute floor 0.08", distMRR)
	}
	if distMRR < 0.7*soloMRR {
		t.Fatalf("distributed MRR %.4f not within 70%% of single-machine %.4f", distMRR, soloMRR)
	}
}

// promCounterPositive reports whether the rendered /metrics text has a sample
// of the named counter (any label set) with a positive value.
func promCounterPositive(text, name string) bool {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" && fields[1] != "0.000000" {
			return true
		}
	}
	return false
}

// TestClusterRPCChaosEpochExact runs two epochs under a probabilistic fault
// schedule — dropped sends on shard fetches and lease acquires, dropped
// replies on shard writes and releases — and requires *exact* accounting:
// every bucket trained once, every edge visited once per epoch, no node
// failures. Retries plus server-side idempotency must make the chaos
// invisible to the bookkeeping.
func TestClusterRPCChaosEpochExact(t *testing.T) {
	const parts = 4
	g := chaosGraph(t)

	// DropSend is safe on any method (the call never executes); DropReply is
	// restricted to idempotent methods (Put replaces, ReleaseBucket commits
	// through the released-token map).
	chaos := NewChaos(42,
		ChaosRule{Method: "PartitionServer.Get", DropSend: 0.05},
		ChaosRule{Method: "LockServer.AcquireBucket", DropSend: 0.05},
		ChaosRule{Method: "PartitionServer.Put", DropReply: 0.05},
		ChaosRule{Method: "LockServer.ReleaseBucket", DropReply: 0.1},
	)
	cl, err := NewCluster(g, insideOutOrder(t, parts), ClusterConfig{
		Machines:     2,
		SyncInterval: 5 * time.Millisecond,
		Seed:         3,
		Train:        train.Config{Dim: 16, Workers: 1, Seed: 9},
		LeaseTTL:     500 * time.Millisecond,
		Retry:        RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
		Chaos:        chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	for epoch := 1; epoch <= 2; epoch++ {
		st, err := cl.RunEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if len(st.Failed) != 0 {
			t.Fatalf("epoch %d failed ranks = %v, want none", epoch, st.Failed)
		}
		if st.Buckets != parts*parts {
			t.Fatalf("epoch %d trained %d buckets, want %d", epoch, st.Buckets, parts*parts)
		}
		if st.Edges != g.Edges.Len() {
			t.Fatalf("epoch %d trained %d edges, want %d", epoch, st.Edges, g.Edges.Len())
		}
	}
	t.Log(chaos.Stats())
}

// TestClusterCheckpointResume shuts a durable cluster down after two epochs
// and boots a fresh one over the same directory: the new cluster must resume
// at epoch 3 with bit-exact embeddings, then train a full epoch.
func TestClusterCheckpointResume(t *testing.T) {
	const (
		parts = 4
		dim   = 16
	)
	g := chaosGraph(t)
	order := insideOutOrder(t, parts)
	dir := t.TempDir()
	cfg := ClusterConfig{
		Machines:      1,
		SyncInterval:  5 * time.Millisecond,
		Seed:          3,
		Train:         train.Config{Dim: dim, Workers: 1, Seed: 9},
		CheckpointDir: dir,
	}

	cl, err := NewCluster(g, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 2; epoch++ {
		if got := cl.NextEpoch(); got != epoch {
			t.Fatalf("NextEpoch = %d, want %d", got, epoch)
		}
		if _, err := cl.RunEpoch(); err != nil {
			t.Fatal(err)
		}
		if err := cl.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	before := evalShard(t, cl, 0, 1)
	cl.Shutdown()

	// A fresh cluster over the same directory resumes past the two finished
	// epochs with the exact embeddings the old one shut down with.
	cl2, err := NewCluster(g, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Shutdown()
	if got := cl2.NextEpoch(); got != 3 {
		t.Fatalf("resumed NextEpoch = %d, want 3", got)
	}
	after := evalShard(t, cl2, 0, 1)
	if len(before) == 0 || len(before) != len(after) {
		t.Fatalf("shard sizes differ: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("resumed embedding diverges at %d: %v vs %v", i, before[i], after[i])
		}
	}
	st, err := cl2.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if st.Buckets != parts*parts {
		t.Fatalf("post-resume epoch trained %d buckets, want %d", st.Buckets, parts*parts)
	}
	if got := cl2.NextEpoch(); got != 4 {
		t.Fatalf("NextEpoch after resume epoch = %d, want 4", got)
	}
}

// TestClusterMidEpochResume boots a cluster over a manifest cut mid-epoch
// (the crash-during-epoch case): the interrupted epoch continues — no fresh
// StartEpoch — and only the not-yet-done buckets are trained.
func TestClusterMidEpochResume(t *testing.T) {
	const parts = 4
	g := chaosGraph(t)
	order := insideOutOrder(t, parts)
	dir := t.TempDir()

	const done = 6
	if err := WriteManifest(dir, &Manifest{Epoch: 1, Done: order[:done]}); err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(g, order, ClusterConfig{
		Machines:      1,
		SyncInterval:  5 * time.Millisecond,
		Seed:          3,
		Train:         train.Config{Dim: 16, Workers: 1, Seed: 9},
		CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()
	if got := cl.NextEpoch(); got != 1 {
		t.Fatalf("NextEpoch = %d, want the interrupted epoch 1", got)
	}
	st, err := cl.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if want := parts*parts - done; st.Buckets != want {
		t.Fatalf("resumed epoch trained %d buckets, want the remaining %d", st.Buckets, want)
	}
	if got := cl.NextEpoch(); got != 2 {
		t.Fatalf("NextEpoch after finishing the interrupted epoch = %d, want 2", got)
	}
}

// evalShard snapshots one shard's embeddings through the cluster's read-only
// evaluation store.
func evalShard(t *testing.T, cl *Cluster, typeIdx, part int) []float32 {
	t.Helper()
	store, err := cl.EvalStore()
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sh, err := store.Acquire(typeIdx, part)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]float32(nil), sh.Embs...)
	if err := store.Release(typeIdx, part); err != nil {
		t.Fatal(err)
	}
	return out
}
