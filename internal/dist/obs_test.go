package dist

import (
	"strings"
	"testing"
	"time"

	"pbg/internal/datagen"
	"pbg/internal/obs"
	"pbg/internal/partition"
	"pbg/internal/train"
)

// TestClusterRecordsObsMetrics runs a one-machine cluster with a shared obs
// hub and checks the distributed instrumentation lands there: RPC latency
// histograms for Get/Put/AcquireBucket, fetch/put counters feeding
// EpochStats.PartitionIO, lease-wait time, the param-sync lag gauge, and
// the shared per-epoch summary line.
func TestClusterRecordsObsMetrics(t *testing.T) {
	const parts = 4
	hub := obs.NewHub()
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: 400, AvgOutDegree: 8, NumPartitions: parts, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	order, err := partition.Order(partition.OrderInsideOut, parts, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(g, order, ClusterConfig{
		Machines:     1,
		SyncInterval: time.Hour, // end-of-epoch forced sync only
		Seed:         3,
		Train:        train.Config{Dim: 8, Workers: 1, Seed: 9, Obs: hub},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	var stats []EpochStats
	for epoch := 0; epoch < 2; epoch++ {
		st, err := cl.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
	}

	snap := hub.Reg.Snapshot()
	var fetches, puts int64
	for _, st := range stats {
		fetches += int64(st.PartitionIO)
		if st.Compute <= 0 {
			t.Errorf("epoch compute %v, want positive", st.Compute)
		}
		if st.IOWait <= 0 {
			t.Errorf("epoch IOWait %v, want positive (remote fetches are synchronous stalls)", st.IOWait)
		}
		if st.LeaseWait <= 0 {
			t.Errorf("epoch LeaseWait %v, want positive", st.LeaseWait)
		}
	}
	if got := snap.Counters["pbg_dist_fetches_total"]; got != fetches || got <= 0 {
		t.Errorf("fetches counter = %d, PartitionIO sum %d (want equal, positive)", got, fetches)
	}
	puts = snap.Counters["pbg_dist_puts_total"]
	if puts <= 0 {
		t.Error("puts counter did not accumulate")
	}
	for _, m := range []string{"Get", "Put", "AcquireBucket"} {
		h, ok := snap.Histograms[`pbg_dist_rpc_ns{method="`+m+`"}`]
		if !ok || h.Count <= 0 {
			t.Errorf("RPC histogram for %s empty", m)
		}
	}
	// The identity-operator graph has no relation parameters, so the sync
	// lag gauge may stay zero; it must at least be registered.
	if _, ok := snap.Gauges["pbg_dist_param_sync_lag_ns"]; !ok {
		t.Error("param sync lag gauge not registered")
	}
	if got := snap.Counters["pbg_dist_lease_wait_ns_total"]; got <= 0 {
		t.Error("lease wait counter did not accumulate")
	}

	// The shared summary line matches the local trainer's format.
	line := stats[0].Summary(0, 0)
	if !strings.HasPrefix(line, "rank 0 epoch 0: loss/edge ") || !strings.Contains(line, "iowait") {
		t.Errorf("Summary line %q does not match the shared format", line)
	}
}
