package dist

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pbg/internal/rng"
)

// Fault-injection errors. A dropped RPC looks like transport loss, so it is
// transient (the retryClient backs off and redials); a killed node is gone
// for good, so its error is terminal and fails the node.
var (
	errChaosDrop   = errors.New("dist: chaos drop")
	errChaosKilled = errors.New("dist: chaos killed")
)

// ChaosRule injects one class of fault into RPCs matching (Tag, Method).
// Empty Tag or Method matches everything. Probabilities are in [0,1] and are
// evaluated per call in the order drop-send, delay, (call executes),
// drop-reply, duplicate.
type ChaosRule struct {
	Tag    string // client identity, e.g. "rank1"; "" = any
	Method string // RPC method, e.g. "PartitionServer.Get"; "" = any

	// DropSend is the probability the request never reaches the server (the
	// call is not executed; the caller sees a transient error).
	DropSend float64
	// DropReply is the probability the reply is lost: the call executes on
	// the server, but the caller still sees a transient error — the
	// retry-then-idempotent-release path.
	DropReply float64
	// Delay stalls the call before it executes, with probability DelayProb
	// (Delay > 0 with DelayProb == 0 means always).
	Delay     time.Duration
	DelayProb float64
	// Duplicate is the probability the call is executed a second time after
	// the first completes, as if a retransmit had raced the reply.
	Duplicate float64
	// First limits the rule to the first N matching calls (0 = unlimited).
	First int

	// Before- and after-call effects are counted separately against First: a
	// retried call matches the before hook again, so one shared counter would
	// let the reply-side effects outlive their quota (or vice versa).
	matchedSend  int
	matchedReply int
}

// Chaos deterministically injects faults into a cluster's RPC traffic. Every
// retryClient is constructed with an identity tag (one per trainer rank,
// plus "cluster" for control-plane clients); rules select traffic by tag and
// method. A Chaos value is safe for concurrent use; the fault schedule is
// driven by a single seeded RNG, so a given seed yields a reproducible
// schedule up to goroutine interleaving.
type Chaos struct {
	mu     sync.Mutex
	r      *rng.RNG
	rules  []*ChaosRule
	killed map[string]bool
	kills  []*killRule
	drops  int
	delays int
	dups   int
}

type killRule struct {
	tag    string
	method string
	after  int
	seen   int
}

// NewChaos creates a fault injector with the given deterministic seed and
// rules.
func NewChaos(seed uint64, rules ...ChaosRule) *Chaos {
	c := &Chaos{r: rng.New(seed), killed: make(map[string]bool)}
	for i := range rules {
		r := rules[i]
		c.rules = append(c.rules, &r)
	}
	return c
}

// KillAfter schedules the death of the client identity tag: its first n RPCs
// matching method (empty = any) succeed, after which every call from that
// tag — any method, any server — fails with a terminal error, as if the
// process had been SIGKILLed. The node cannot even abandon its lease; only
// lease expiry recovers its bucket.
func (c *Chaos) KillAfter(tag, method string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kills = append(c.kills, &killRule{tag: tag, method: method, after: n})
}

func ruleMatches(tag, method, rTag, rMethod string) bool {
	return (rTag == "" || rTag == tag) && (rMethod == "" || rMethod == method)
}

// before runs under the injection point preceding call execution: it
// enforces kills, drops sends, and injects delays. A non-nil return means
// the call must not execute.
func (c *Chaos) before(tag, method string) error {
	c.mu.Lock()
	if c.killed[tag] {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", errChaosKilled, tag)
	}
	for _, k := range c.kills {
		if k.tag == tag && (k.method == "" || k.method == method) {
			k.seen++
			if k.seen > k.after {
				c.killed[tag] = true
				c.mu.Unlock()
				return fmt.Errorf("%w: %s", errChaosKilled, tag)
			}
		}
	}
	var delay time.Duration
	for _, r := range c.rules {
		if !ruleMatches(tag, method, r.Tag, r.Method) {
			continue
		}
		if r.First > 0 && r.matchedSend >= r.First {
			continue
		}
		r.matchedSend++
		if r.DropSend > 0 && c.r.Float64() < r.DropSend {
			c.drops++
			c.mu.Unlock()
			return fmt.Errorf("%w: send %s %s", errChaosDrop, tag, method)
		}
		if r.Delay > 0 && (r.DelayProb <= 0 || c.r.Float64() < r.DelayProb) {
			c.delays++
			if r.Delay > delay {
				delay = r.Delay
			}
		}
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

// after runs once the call has executed successfully: it may drop the reply
// (returning a transient error even though the server applied the call) or
// duplicate the call via redo, exercising server-side idempotency.
func (c *Chaos) after(tag, method string, redo func() error) error {
	c.mu.Lock()
	var dropReply, duplicate bool
	for _, r := range c.rules {
		if !ruleMatches(tag, method, r.Tag, r.Method) {
			continue
		}
		if r.First > 0 && r.matchedReply >= r.First {
			continue
		}
		r.matchedReply++
		if r.DropReply > 0 && c.r.Float64() < r.DropReply {
			dropReply = true
		}
		if r.Duplicate > 0 && c.r.Float64() < r.Duplicate {
			duplicate = true
		}
	}
	if dropReply {
		c.drops++
	}
	if duplicate {
		c.dups++
	}
	c.mu.Unlock()
	if duplicate {
		redo() // a retransmit's outcome is invisible to the original caller
	}
	if dropReply {
		return fmt.Errorf("%w: reply %s %s", errChaosDrop, tag, method)
	}
	return nil
}

// Stats summarises the faults injected so far, for CI logs.
func (c *Chaos) Stats() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dead []string
	for tag := range c.killed {
		dead = append(dead, tag)
	}
	sort.Strings(dead)
	return fmt.Sprintf("chaos: drops=%d delays=%d duplicates=%d killed=[%s]",
		c.drops, c.delays, c.dups, strings.Join(dead, " "))
}
