package dist

import (
	"fmt"
	"sync"
	"time"

	"pbg/internal/graph"
	"pbg/internal/obs"
	"pbg/internal/partition"
	"pbg/internal/train"
)

// acquirePoll is how long a trainer waits before re-asking the lock server
// when no disjoint bucket (or no started epoch) is available.
const acquirePoll = 2 * time.Millisecond

// defaultSyncInterval bounds relation-parameter staleness when the caller
// does not choose an interval.
const defaultSyncInterval = 100 * time.Millisecond

// NodeConfig wires one trainer machine into the deployment.
type NodeConfig struct {
	// Rank identifies the trainer (0-based; rank 0 conventionally drives
	// StartEpoch in multi-process deployments).
	Rank int
	// LockAddr is the lock server's address.
	LockAddr string
	// PartitionAddrs lists every partition server, in the deployment-wide
	// order (all trainers must agree, since the key→server hash depends on
	// the list position).
	PartitionAddrs []string
	// ParamAddrs lists the parameter servers (relation r lives on server
	// r mod len). Empty disables relation-parameter sync, which is exact for
	// parameter-free operators like identity.
	ParamAddrs []string
	// Train carries the per-node training hyperparameters.
	Train train.Config
	// SyncInterval throttles the background parameter sync (default 100ms).
	SyncInterval time.Duration
	// InitScale scales lazy shard initialisation on the partition servers;
	// all trainers must agree. Default 1.
	InitScale float32
	// Retry bounds the node's RPC patience (timeouts, attempts, backoff); the
	// zero value uses the RetryPolicy defaults.
	Retry RetryPolicy
	// Chaos, when non-nil, injects deterministic faults into this node's RPC
	// traffic (tests only). The node's chaos identity is "rank<Rank>".
	Chaos *Chaos
	// EpochBase offsets the node's local epoch counter, for joining a
	// deployment resumed from a checkpoint: the node's first RunEpoch trains
	// lock-server epoch EpochBase+1.
	EpochBase int
}

// NodeStats is one trainer's contribution to an epoch.
type NodeStats struct {
	Rank         int
	Buckets      int
	Edges        int
	PeakResident int64
}

// EpochStats aggregates one distributed epoch.
type EpochStats struct {
	Duration time.Duration
	Buckets  int
	Edges    int
	Loss     float64
	PerNode  []NodeStats
	// PartitionIO counts partition-server fetches during the epoch — the
	// distributed analogue of the local trainer's swap-ins. It is a delta
	// over the store's fetch counter, so when several in-process nodes
	// share one obs hub (Config.Obs on a Cluster's Train config) the count
	// covers all of them; each node of a real deployment is its own
	// process, where the two views coincide.
	PartitionIO int
	// IOWait/Compute split the epoch the same way train.EpochStats does:
	// shard checkout/write-back stalls vs in-bucket HOGWILD training.
	IOWait  time.Duration
	Compute time.Duration
	// LeaseWait is the time spent asking the lock server for buckets
	// (AcquireBucket round trips plus polls while no disjoint bucket was
	// free) — contention on the lock server shows up here, not in IOWait.
	LeaseWait time.Duration
	// Failed lists the ranks whose node died during the epoch. Only a
	// fault-tolerant cluster (LeaseTTL > 0) reports partial epochs; the
	// surviving ranks retrained the dead ranks' re-leased buckets, so
	// Buckets still counts every bucket exactly once.
	Failed []int
}

// Summary renders the distributed epoch in the same one-line format
// train.EpochStats.Summary uses for local runs, prefixed with the rank, so
// pbg-train and pbg-node output read identically. epoch is the caller's
// epoch index (the lock server owns epoch numbering, so EpochStats does not
// carry one).
func (s EpochStats) Summary(rank, epoch int) string {
	ts := train.EpochStats{
		Epoch:         epoch,
		Loss:          s.Loss,
		Edges:         s.Edges,
		Duration:      s.Duration,
		PartitionIO:   s.PartitionIO,
		IOWait:        s.IOWait,
		Compute:       s.Compute,
		BucketsActive: s.Buckets,
	}
	return fmt.Sprintf("rank %d %s", rank, ts.Summary())
}

// Node is one trainer machine of Figure 2: it leases buckets from the lock
// server, checks the buckets' partitions out of the partition servers,
// trains them with a local train.Trainer (HOGWILD workers and all), writes
// them back, and keeps relation parameters synced through the parameter
// server from a background goroutine.
type Node struct {
	cfg     NodeConfig
	trainer *train.Trainer
	store   *remoteStore
	lock    *retryClient
	params  []*retryClient

	epoch int // local epoch counter; must track StartEpoch calls

	// obs is cfg.Train.Obs or a private quiet hub; the handles below are
	// its registry's lease/sync metrics (the store and trainer register
	// their own).
	obs        *obs.Hub
	leaseWait  *obs.Counter
	acquireNs  *obs.Histogram
	syncLag    *obs.Gauge
	leasesLost *obs.Counter

	// hbLease is the bucket lease the heartbeat goroutine currently renews
	// (nil when the node holds none or the lease has no TTL); hbKick wakes
	// the goroutine when the lease changes.
	hbMu      sync.Mutex
	hbLease   *heldLease
	hbKick    chan struct{}
	hbDone    chan struct{}
	hbStarted bool

	// syncMu serialises parameter syncs (ticker goroutine vs. the forced
	// end-of-epoch sync). lastSync[r] is the global block at the previous
	// sync, so the next push sends only this node's own updates. lastSyncAt
	// feeds the sync-lag gauge: how stale relation parameters were when the
	// latest sync replaced them.
	syncMu      sync.Mutex
	lastSync    [][]float32
	lastSyncAt  time.Time
	stop        chan struct{}
	syncDone    chan struct{}
	syncStarted bool
	closed      sync.Once
}

// NewNode connects to the deployment and prepares a trainer over g. The
// node's bucket-sorted edge copy comes from g; which of those edges actually
// get trained each epoch is decided by the lock server.
func NewNode(g *graph.Graph, cfg NodeConfig) (*Node, error) {
	if cfg.LockAddr == "" {
		return nil, fmt.Errorf("dist: node needs a lock server address")
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = defaultSyncInterval
	}
	tag := fmt.Sprintf("rank%d", cfg.Rank)
	store, err := dialStore(g.Schema, cfg.Train.Dim, cfg.InitScale, false, cfg.PartitionAddrs,
		storeOpts{policy: cfg.Retry, chaos: cfg.Chaos, tag: tag})
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:      cfg,
		store:    store,
		epoch:    cfg.EpochBase,
		stop:     make(chan struct{}),
		syncDone: make(chan struct{}),
		hbKick:   make(chan struct{}, 1),
		hbDone:   make(chan struct{}),
	}
	n.obs = cfg.Train.Obs
	if n.obs == nil {
		n.obs = obs.NewQuietHub()
	}
	n.leaseWait = n.obs.Reg.Counter("pbg_dist_lease_wait_ns_total")
	n.acquireNs = n.obs.Reg.Histogram(`pbg_dist_rpc_ns{method="AcquireBucket"}`)
	n.syncLag = n.obs.Reg.Gauge("pbg_dist_param_sync_lag_ns")
	n.leasesLost = n.obs.Reg.Counter("pbg_dist_leases_lost_total")
	fail := func(err error) (*Node, error) {
		_ = n.Close()
		return nil, err
	}
	n.lock, err = dialRetry("lock server", cfg.LockAddr, cfg.Retry, cfg.Chaos, tag)
	if err != nil {
		return fail(err)
	}
	n.lock.bindMetrics(n.obs.Reg)
	for _, addr := range cfg.ParamAddrs {
		c, err := dialRetry("param server", addr, cfg.Retry, cfg.Chaos, tag)
		if err != nil {
			return fail(err)
		}
		c.bindMetrics(n.obs.Reg)
		n.params = append(n.params, c)
	}
	n.trainer, err = train.New(g, store, cfg.Train)
	if err != nil {
		return fail(err)
	}
	if err := n.initRelParams(); err != nil {
		return fail(err)
	}
	n.syncStarted = true
	go n.syncLoop()
	n.hbStarted = true
	go n.heartbeatLoop()
	return n, nil
}

// heldLease is the node's current fenced bucket lease.
type heldLease struct {
	epoch  int
	bucket partition.Bucket
	token  uint64
	ttl    time.Duration
}

// setLease points the heartbeat goroutine at a newly granted lease (ttl > 0)
// and stamps the store's fence token.
func (n *Node) setLease(l *heldLease) {
	n.store.SetFenceToken(l.token)
	if l.ttl <= 0 {
		return // eternal lease: nothing to renew
	}
	n.hbMu.Lock()
	n.hbLease = l
	n.hbMu.Unlock()
	select {
	case n.hbKick <- struct{}{}:
	default:
	}
}

// clearLease stops heartbeats for the lease holding token (a newer lease, if
// one was set concurrently, is left alone) and clears the store fence.
func (n *Node) clearLease(token uint64) {
	n.store.SetFenceToken(0)
	n.hbMu.Lock()
	if n.hbLease != nil && n.hbLease.token == token {
		n.hbLease = nil
	}
	n.hbMu.Unlock()
	select {
	case n.hbKick <- struct{}{}:
	default:
	}
}

// heartbeatLoop renews the current lease at TTL/3 so a healthy trainer never
// expires, however long its bucket takes to train. A stale-lease rejection
// just detaches the heartbeat; the training goroutine discovers the loss
// through fencing (or its own release attempt) and handles it there.
func (n *Node) heartbeatLoop() {
	defer close(n.hbDone)
	for {
		n.hbMu.Lock()
		l := n.hbLease
		n.hbMu.Unlock()
		if l == nil {
			select {
			case <-n.stop:
				return
			case <-n.hbKick:
			}
			continue
		}
		interval := l.ttl / 3
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		timer := time.NewTimer(interval)
		select {
		case <-n.stop:
			timer.Stop()
			return
		case <-n.hbKick:
			timer.Stop()
			continue // lease changed; re-read it
		case <-timer.C:
		}
		n.hbMu.Lock()
		cur := n.hbLease
		n.hbMu.Unlock()
		if cur == nil || cur.token != l.token {
			continue
		}
		var ack Ack
		err := n.lock.Call("LockServer.Heartbeat",
			HeartbeatArgs{Epoch: cur.epoch, Rank: n.cfg.Rank, Bucket: cur.bucket, Token: cur.token}, &ack)
		if err != nil && IsStaleLease(err) {
			n.hbMu.Lock()
			if n.hbLease != nil && n.hbLease.token == cur.token {
				n.hbLease = nil
			}
			n.hbMu.Unlock()
		}
	}
}

// Trainer exposes the node's local trainer (scorers, relation parameters,
// store) for evaluation and advanced use.
func (n *Node) Trainer() *train.Trainer { return n.trainer }

// Rank returns the node's rank.
func (n *Node) Rank() int { return n.cfg.Rank }

func (n *Node) paramClient(rel int) *retryClient {
	return n.params[rel%len(n.params)]
}

// initRelParams publishes this node's initial relation parameters and adopts
// the canonical (first writer's) block, so all trainers start identically.
func (n *Node) initRelParams() error {
	schema := n.trainer.Schema()
	n.lastSync = make([][]float32, len(schema.Relations))
	if len(n.params) == 0 {
		return nil
	}
	for r := range schema.Relations {
		block := n.trainer.RelParams(r)
		if len(block) == 0 {
			continue
		}
		var reply InitRelReply
		if err := n.paramClient(r).Call("ParamServer.InitRel", InitRelArgs{Rel: r, Params: Floats(block)}, &reply); err != nil {
			return fmt.Errorf("dist: init relation %d: %w", r, err)
		}
		n.trainer.SetRelParams(r, reply.Params)
		n.lastSync[r] = append([]float32(nil), reply.Params...)
	}
	return nil
}

// syncLoop drives the asynchronous parameter sync at SyncInterval.
func (n *Node) syncLoop() {
	defer close(n.syncDone)
	if len(n.params) == 0 {
		return
	}
	ticker := time.NewTicker(n.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			// Best effort: a failed background sync is retried next tick,
			// and SyncParams surfaces errors where callers can see them.
			_ = n.SyncParams()
		}
	}
}

// SyncParams pushes this node's relation-parameter deltas and pulls the
// global blocks, once for every parameterised relation. It runs in the
// background at SyncInterval and is forced at the end of every epoch so
// evaluation sees each node's final updates.
func (n *Node) SyncParams() error {
	if len(n.params) == 0 {
		return nil
	}
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	for r := range n.lastSync {
		if n.lastSync[r] == nil {
			continue // parameter-free relation
		}
		if err := n.syncRelation(r); err != nil {
			return err
		}
	}
	// Record the realised delta-push lag: how stale the relation parameters
	// this sync replaced had grown since the previous successful sync.
	now := time.Now()
	if !n.lastSyncAt.IsZero() {
		n.syncLag.Set(now.Sub(n.lastSyncAt).Nanoseconds())
	}
	n.lastSyncAt = now
	return nil
}

// syncRelation pushes relation r's local delta and adopts the global block.
// Scoring workers read relation parameters lock-free, so the adoption is a
// benign HOGWILD-style race, exactly like the paper's asynchronous updates;
// WithRelParams only orders this write against concurrent Adagrad updates.
func (n *Node) syncRelation(r int) error {
	last := n.lastSync[r]
	// Snapshot the local block and the delta since the last sync under the
	// trainer's relation lock, so we race with no HOGWILD update.
	snap := make([]float32, len(last))
	delta := make([]float32, len(last))
	n.trainer.WithRelParams(r, func(p []float32) {
		copy(snap, p)
		for i := range p {
			delta[i] = p[i] - last[i]
		}
	})
	var reply SyncReply
	if err := n.paramClient(r).Call("ParamServer.Sync", SyncArgs{Rel: r, Delta: Floats(delta)}, &reply); err != nil {
		return fmt.Errorf("dist: sync relation %d: %w", r, err)
	}
	// Adopt the global block, preserving any local updates that landed while
	// the RPC was in flight (they are not on the server yet; they will ride
	// the next delta).
	n.trainer.WithRelParams(r, func(p []float32) {
		for i := range p {
			p[i] = reply.Params[i] + (p[i] - snap[i])
		}
	})
	n.lastSync[r] = reply.Params
	return nil
}

// RunEpoch trains this node's share of one epoch: it leases buckets until
// the lock server declares the epoch done. Some rank must have called
// StartEpoch (the Cluster does it; in multi-process deployments rank 0
// does); until then the node polls.
func (n *Node) RunEpoch() (EpochStats, error) {
	n.epoch++
	start := time.Now()
	ioBase, computeBase := n.trainer.IOTotals()
	fetchBase := n.store.IOStats().Loads
	leaseBase := n.leaseWait.Value()
	finish := func(st *EpochStats) {
		st.Duration = time.Since(start)
		ioWait, compute := n.trainer.IOTotals()
		st.IOWait = ioWait - ioBase
		st.Compute = compute - computeBase
		st.PartitionIO = int(n.store.IOStats().Loads - fetchBase)
		st.LeaseWait = time.Duration(n.leaseWait.Value() - leaseBase)
	}
	var st EpochStats
	var held []int
	for {
		var rep AcquireReply
		t0 := time.Now()
		err := n.lock.Call("LockServer.AcquireBucket", AcquireArgs{Epoch: n.epoch, Rank: n.cfg.Rank, Held: held}, &rep)
		n.acquireNs.Observe(float64(time.Since(t0).Nanoseconds()))
		n.leaseWait.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			finish(&st)
			return st, err
		}
		if rep.Done {
			break
		}
		if !rep.Granted {
			// Honour the lock server's backoff hint instead of busy-polling.
			d := rep.RetryAfter
			if d <= 0 {
				d = acquirePoll
			}
			time.Sleep(d)
			n.leaseWait.Add(d.Nanoseconds())
			continue
		}
		b := rep.Bucket
		n.setLease(&heldLease{epoch: n.epoch, bucket: b, token: rep.Token, ttl: rep.TTL})
		loss, edges, err := n.trainer.TrainBucket(b)
		if err != nil {
			if IsFenced(err) {
				// The lease expired mid-bucket and the bucket was (or will
				// be) re-leased; the partial work is discarded and the node
				// keeps going — losing a lease is not a node failure.
				n.leasesLost.Inc()
				n.clearLease(rep.Token)
				continue
			}
			// A real training failure: return the lease so another trainer
			// can take the bucket over, then surface the error.
			var ack Ack
			_ = n.lock.Call("LockServer.AbandonBucket",
				ReleaseArgs{Epoch: n.epoch, Rank: n.cfg.Rank, Bucket: b, Token: rep.Token}, &ack)
			n.clearLease(rep.Token)
			finish(&st)
			return st, err
		}
		var ack Ack
		err = n.lock.Call("LockServer.ReleaseBucket",
			ReleaseArgs{Epoch: n.epoch, Rank: n.cfg.Rank, Bucket: b, Token: rep.Token}, &ack)
		n.clearLease(rep.Token)
		if err != nil {
			if IsStaleLease(err) {
				// Trained the whole bucket but the lease had already expired:
				// the commit is void (another trainer owns the bucket now).
				n.leasesLost.Inc()
				continue
			}
			finish(&st)
			return st, err
		}
		// Stats count only after the release lands: a bucket whose lease was
		// lost will be retrained (and counted) by whoever re-leases it.
		st.Loss += loss
		st.Edges += edges
		st.Buckets++
		held = b.Parts()
	}
	if err := n.SyncParams(); err != nil {
		finish(&st)
		return st, err
	}
	finish(&st)
	st.PerNode = []NodeStats{{
		Rank:         n.cfg.Rank,
		Buckets:      st.Buckets,
		Edges:        st.Edges,
		PeakResident: n.trainer.PeakResidentBytes(),
	}}
	return st, nil
}

// Close stops the sync goroutine and hangs up every connection.
func (n *Node) Close() error {
	var first error
	n.closed.Do(func() {
		close(n.stop)
		if n.syncStarted {
			<-n.syncDone
		}
		if n.hbStarted {
			<-n.hbDone
		}
		if n.store != nil {
			first = n.store.Close()
		}
		if n.lock != nil {
			if err := n.lock.Close(); err != nil && first == nil {
				first = err
			}
		}
		for _, c := range n.params {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	})
	return first
}
