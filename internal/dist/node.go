package dist

import (
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"pbg/internal/graph"
	"pbg/internal/obs"
	"pbg/internal/train"
)

// acquirePoll is how long a trainer waits before re-asking the lock server
// when no disjoint bucket (or no started epoch) is available.
const acquirePoll = 2 * time.Millisecond

// defaultSyncInterval bounds relation-parameter staleness when the caller
// does not choose an interval.
const defaultSyncInterval = 100 * time.Millisecond

// NodeConfig wires one trainer machine into the deployment.
type NodeConfig struct {
	// Rank identifies the trainer (0-based; rank 0 conventionally drives
	// StartEpoch in multi-process deployments).
	Rank int
	// LockAddr is the lock server's address.
	LockAddr string
	// PartitionAddrs lists every partition server, in the deployment-wide
	// order (all trainers must agree, since the key→server hash depends on
	// the list position).
	PartitionAddrs []string
	// ParamAddrs lists the parameter servers (relation r lives on server
	// r mod len). Empty disables relation-parameter sync, which is exact for
	// parameter-free operators like identity.
	ParamAddrs []string
	// Train carries the per-node training hyperparameters.
	Train train.Config
	// SyncInterval throttles the background parameter sync (default 100ms).
	SyncInterval time.Duration
	// InitScale scales lazy shard initialisation on the partition servers;
	// all trainers must agree. Default 1.
	InitScale float32
}

// NodeStats is one trainer's contribution to an epoch.
type NodeStats struct {
	Rank         int
	Buckets      int
	Edges        int
	PeakResident int64
}

// EpochStats aggregates one distributed epoch.
type EpochStats struct {
	Duration time.Duration
	Buckets  int
	Edges    int
	Loss     float64
	PerNode  []NodeStats
	// PartitionIO counts partition-server fetches during the epoch — the
	// distributed analogue of the local trainer's swap-ins. It is a delta
	// over the store's fetch counter, so when several in-process nodes
	// share one obs hub (Config.Obs on a Cluster's Train config) the count
	// covers all of them; each node of a real deployment is its own
	// process, where the two views coincide.
	PartitionIO int
	// IOWait/Compute split the epoch the same way train.EpochStats does:
	// shard checkout/write-back stalls vs in-bucket HOGWILD training.
	IOWait  time.Duration
	Compute time.Duration
	// LeaseWait is the time spent asking the lock server for buckets
	// (AcquireBucket round trips plus polls while no disjoint bucket was
	// free) — contention on the lock server shows up here, not in IOWait.
	LeaseWait time.Duration
}

// Summary renders the distributed epoch in the same one-line format
// train.EpochStats.Summary uses for local runs, prefixed with the rank, so
// pbg-train and pbg-node output read identically. epoch is the caller's
// epoch index (the lock server owns epoch numbering, so EpochStats does not
// carry one).
func (s EpochStats) Summary(rank, epoch int) string {
	ts := train.EpochStats{
		Epoch:         epoch,
		Loss:          s.Loss,
		Edges:         s.Edges,
		Duration:      s.Duration,
		PartitionIO:   s.PartitionIO,
		IOWait:        s.IOWait,
		Compute:       s.Compute,
		BucketsActive: s.Buckets,
	}
	return fmt.Sprintf("rank %d %s", rank, ts.Summary())
}

// Node is one trainer machine of Figure 2: it leases buckets from the lock
// server, checks the buckets' partitions out of the partition servers,
// trains them with a local train.Trainer (HOGWILD workers and all), writes
// them back, and keeps relation parameters synced through the parameter
// server from a background goroutine.
type Node struct {
	cfg     NodeConfig
	trainer *train.Trainer
	store   *remoteStore
	lock    *rpc.Client
	params  []*rpc.Client

	epoch int // local epoch counter; must track StartEpoch calls

	// obs is cfg.Train.Obs or a private quiet hub; the handles below are
	// its registry's lease/sync metrics (the store and trainer register
	// their own).
	obs       *obs.Hub
	leaseWait *obs.Counter
	acquireNs *obs.Histogram
	syncLag   *obs.Gauge

	// syncMu serialises parameter syncs (ticker goroutine vs. the forced
	// end-of-epoch sync). lastSync[r] is the global block at the previous
	// sync, so the next push sends only this node's own updates. lastSyncAt
	// feeds the sync-lag gauge: how stale relation parameters were when the
	// latest sync replaced them.
	syncMu      sync.Mutex
	lastSync    [][]float32
	lastSyncAt  time.Time
	stop        chan struct{}
	syncDone    chan struct{}
	syncStarted bool
	closed      sync.Once
}

// NewNode connects to the deployment and prepares a trainer over g. The
// node's bucket-sorted edge copy comes from g; which of those edges actually
// get trained each epoch is decided by the lock server.
func NewNode(g *graph.Graph, cfg NodeConfig) (*Node, error) {
	if cfg.LockAddr == "" {
		return nil, fmt.Errorf("dist: node needs a lock server address")
	}
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = defaultSyncInterval
	}
	store, err := dialStore(g.Schema, cfg.Train.Dim, cfg.InitScale, false, cfg.PartitionAddrs)
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, store: store, stop: make(chan struct{}), syncDone: make(chan struct{})}
	n.obs = cfg.Train.Obs
	if n.obs == nil {
		n.obs = obs.NewQuietHub()
	}
	n.leaseWait = n.obs.Reg.Counter("pbg_dist_lease_wait_ns_total")
	n.acquireNs = n.obs.Reg.Histogram(`pbg_dist_rpc_ns{method="AcquireBucket"}`)
	n.syncLag = n.obs.Reg.Gauge("pbg_dist_param_sync_lag_ns")
	fail := func(err error) (*Node, error) {
		n.Close()
		return nil, err
	}
	n.lock, err = rpc.Dial("tcp", cfg.LockAddr)
	if err != nil {
		return fail(fmt.Errorf("dist: dial lock server %s: %w", cfg.LockAddr, err))
	}
	for _, addr := range cfg.ParamAddrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			return fail(fmt.Errorf("dist: dial param server %s: %w", addr, err))
		}
		n.params = append(n.params, c)
	}
	n.trainer, err = train.New(g, store, cfg.Train)
	if err != nil {
		return fail(err)
	}
	if err := n.initRelParams(); err != nil {
		return fail(err)
	}
	n.syncStarted = true
	go n.syncLoop()
	return n, nil
}

// Trainer exposes the node's local trainer (scorers, relation parameters,
// store) for evaluation and advanced use.
func (n *Node) Trainer() *train.Trainer { return n.trainer }

// Rank returns the node's rank.
func (n *Node) Rank() int { return n.cfg.Rank }

func (n *Node) paramClient(rel int) *rpc.Client {
	return n.params[rel%len(n.params)]
}

// initRelParams publishes this node's initial relation parameters and adopts
// the canonical (first writer's) block, so all trainers start identically.
func (n *Node) initRelParams() error {
	schema := n.trainer.Schema()
	n.lastSync = make([][]float32, len(schema.Relations))
	if len(n.params) == 0 {
		return nil
	}
	for r := range schema.Relations {
		block := n.trainer.RelParams(r)
		if len(block) == 0 {
			continue
		}
		var reply InitRelReply
		if err := n.paramClient(r).Call("ParamServer.InitRel", InitRelArgs{Rel: r, Params: Floats(block)}, &reply); err != nil {
			return fmt.Errorf("dist: init relation %d: %w", r, err)
		}
		n.trainer.SetRelParams(r, reply.Params)
		n.lastSync[r] = append([]float32(nil), reply.Params...)
	}
	return nil
}

// syncLoop drives the asynchronous parameter sync at SyncInterval.
func (n *Node) syncLoop() {
	defer close(n.syncDone)
	if len(n.params) == 0 {
		return
	}
	ticker := time.NewTicker(n.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			// Best effort: a failed background sync is retried next tick,
			// and SyncParams surfaces errors where callers can see them.
			_ = n.SyncParams()
		}
	}
}

// SyncParams pushes this node's relation-parameter deltas and pulls the
// global blocks, once for every parameterised relation. It runs in the
// background at SyncInterval and is forced at the end of every epoch so
// evaluation sees each node's final updates.
func (n *Node) SyncParams() error {
	if len(n.params) == 0 {
		return nil
	}
	n.syncMu.Lock()
	defer n.syncMu.Unlock()
	for r := range n.lastSync {
		if n.lastSync[r] == nil {
			continue // parameter-free relation
		}
		if err := n.syncRelation(r); err != nil {
			return err
		}
	}
	// Record the realised delta-push lag: how stale the relation parameters
	// this sync replaced had grown since the previous successful sync.
	now := time.Now()
	if !n.lastSyncAt.IsZero() {
		n.syncLag.Set(now.Sub(n.lastSyncAt).Nanoseconds())
	}
	n.lastSyncAt = now
	return nil
}

// syncRelation pushes relation r's local delta and adopts the global block.
// Scoring workers read relation parameters lock-free, so the adoption is a
// benign HOGWILD-style race, exactly like the paper's asynchronous updates;
// WithRelParams only orders this write against concurrent Adagrad updates.
func (n *Node) syncRelation(r int) error {
	last := n.lastSync[r]
	// Snapshot the local block and the delta since the last sync under the
	// trainer's relation lock, so we race with no HOGWILD update.
	snap := make([]float32, len(last))
	delta := make([]float32, len(last))
	n.trainer.WithRelParams(r, func(p []float32) {
		copy(snap, p)
		for i := range p {
			delta[i] = p[i] - last[i]
		}
	})
	var reply SyncReply
	if err := n.paramClient(r).Call("ParamServer.Sync", SyncArgs{Rel: r, Delta: Floats(delta)}, &reply); err != nil {
		return fmt.Errorf("dist: sync relation %d: %w", r, err)
	}
	// Adopt the global block, preserving any local updates that landed while
	// the RPC was in flight (they are not on the server yet; they will ride
	// the next delta).
	n.trainer.WithRelParams(r, func(p []float32) {
		for i := range p {
			p[i] = reply.Params[i] + (p[i] - snap[i])
		}
	})
	n.lastSync[r] = reply.Params
	return nil
}

// RunEpoch trains this node's share of one epoch: it leases buckets until
// the lock server declares the epoch done. Some rank must have called
// StartEpoch (the Cluster does it; in multi-process deployments rank 0
// does); until then the node polls.
func (n *Node) RunEpoch() (EpochStats, error) {
	n.epoch++
	start := time.Now()
	ioBase, computeBase := n.trainer.IOTotals()
	fetchBase := n.store.IOStats().Loads
	leaseBase := n.leaseWait.Value()
	finish := func(st *EpochStats) {
		st.Duration = time.Since(start)
		ioWait, compute := n.trainer.IOTotals()
		st.IOWait = ioWait - ioBase
		st.Compute = compute - computeBase
		st.PartitionIO = int(n.store.IOStats().Loads - fetchBase)
		st.LeaseWait = time.Duration(n.leaseWait.Value() - leaseBase)
	}
	var st EpochStats
	var held []int
	for {
		var rep AcquireReply
		t0 := time.Now()
		err := n.lock.Call("LockServer.AcquireBucket", AcquireArgs{Epoch: n.epoch, Rank: n.cfg.Rank, Held: held}, &rep)
		n.acquireNs.Observe(float64(time.Since(t0).Nanoseconds()))
		n.leaseWait.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			finish(&st)
			return st, err
		}
		if rep.Done {
			break
		}
		if !rep.Granted {
			time.Sleep(acquirePoll)
			n.leaseWait.Add(acquirePoll.Nanoseconds())
			continue
		}
		b := rep.Bucket
		loss, edges, err := n.trainer.TrainBucket(b)
		if err != nil {
			// Return the lease so another trainer can take the bucket over.
			var ack Ack
			_ = n.lock.Call("LockServer.AbandonBucket", ReleaseArgs{Epoch: n.epoch, Rank: n.cfg.Rank, Bucket: b}, &ack)
			finish(&st)
			return st, err
		}
		st.Loss += loss
		st.Edges += edges
		st.Buckets++
		var ack Ack
		if err := n.lock.Call("LockServer.ReleaseBucket", ReleaseArgs{Epoch: n.epoch, Rank: n.cfg.Rank, Bucket: b}, &ack); err != nil {
			finish(&st)
			return st, err
		}
		held = b.Parts()
	}
	if err := n.SyncParams(); err != nil {
		finish(&st)
		return st, err
	}
	finish(&st)
	st.PerNode = []NodeStats{{
		Rank:         n.cfg.Rank,
		Buckets:      st.Buckets,
		Edges:        st.Edges,
		PeakResident: n.trainer.PeakResidentBytes(),
	}}
	return st, nil
}

// Close stops the sync goroutine and hangs up every connection.
func (n *Node) Close() error {
	var first error
	n.closed.Do(func() {
		close(n.stop)
		if n.syncStarted {
			<-n.syncDone
		}
		if n.store != nil {
			first = n.store.Close()
		}
		if n.lock != nil {
			if err := n.lock.Close(); err != nil && first == nil {
				first = err
			}
		}
		for _, c := range n.params {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	})
	return first
}
