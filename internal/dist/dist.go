// Package dist implements PBG's distributed execution mode (§4.2, Figure 2):
// a set of trainer machines cooperate on one epoch by leasing edge buckets
// with pairwise-disjoint partitions from a central lock server, exchanging
// embedding partitions (with their Adagrad state) through sharded in-memory
// partition servers, and keeping shared relation-operator parameters loosely
// in sync through an asynchronous parameter server.
//
// All components speak net/rpc over TCP, so the same pieces assemble both the
// in-process Cluster harness (loopback sockets, used by TrainDistributed and
// the Tables 3–4 / Figure 6 benchmarks) and a real multi-host deployment via
// cmd/pbg-node.
//
// The division of state follows the paper exactly:
//
//   - Edge buckets: every trainer holds the full (deterministically
//     regenerated or shared-filesystem) edge list; the LockServer decides who
//     trains which bucket, enforcing disjointness and the §4.1 "established
//     partitions" constraint through partition.Scheduler.
//   - Partitioned entity embeddings: owned by the PartitionServer shard that
//     the (entity type, partition) key hashes to; a trainer checks the two
//     partitions of its current bucket out, trains them locally with HOGWILD
//     workers, and writes them back before releasing the bucket, so at most
//     one trainer ever holds a partition.
//   - Relation parameters: updated by every trainer concurrently, so they are
//     synchronised optimistically: a background goroutine pushes the local
//     delta since the last sync and pulls the global value every
//     SyncInterval, giving staleness bounded by that interval (§4.2's
//     asynchronous parameter server).
//
// Unpartitioned entity types are stored on the partition servers too (key
// (type, 0)); with more than one trainer their concurrent write-backs would
// be last-writer-wins, so NewCluster rejects unpartitioned types when
// Machines > 1 — distributed runs must partition every entity type, as the
// paper requires. (NewNode cannot check this: a single node does not know
// how many trainers the deployment has.)
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/rpc"
	"strings"
	"time"

	"pbg/internal/partition"
	"pbg/internal/storage"
)

// Fencing and lease-lifecycle rejections cross the wire as net/rpc server
// errors, which arrive as bare strings; they are therefore matched by prefix.
// staleLeaseMsg marks lock-server rejections (the lease expired or was
// re-granted under a newer token); fencedWriteMsg marks partition-server
// rejections of writes carrying a token older than one the shard has already
// seen. Both mean the same thing to a trainer: it is a zombie for that
// bucket and must stop trying to commit it.
const (
	staleLeaseMsg  = "dist: stale lease"
	fencedWriteMsg = "dist: fenced write"
)

// IsStaleLease reports whether err is a lock-server stale-lease rejection
// (lease expired, re-granted, or heartbeated/released with an old token).
func IsStaleLease(err error) bool {
	return err != nil && strings.Contains(err.Error(), staleLeaseMsg)
}

// IsFenced reports whether err means the caller has lost its write authority
// for a bucket — either a lock-server stale-lease rejection or a partition
// server refusing a shard write whose fencing token has been superseded.
func IsFenced(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, staleLeaseMsg) || strings.Contains(s, fencedWriteMsg)
}

// isTransientRPC classifies an RPC failure as retryable: connection-level
// trouble (dial failures, broken pipes, timeouts, the client shutting the
// connection down after an I/O error) is transient, while an error the
// server itself returned (rpc.ServerError) is a definitive answer and must
// not be retried — retrying a stale-lease rejection would never succeed,
// and retrying an application error hides it.
func isTransientRPC(err error) bool {
	if err == nil {
		return false
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, errCallTimeout) || errors.Is(err, errChaosDrop)
}

// SplitAddrs parses a comma-separated address list, returning nil for the
// empty string (so optional server lists can be passed straight from flags).
func SplitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// serverIndex maps an (entity type, partition) key onto one of n servers.
// Every client must agree on this mapping, so it is fixed here.
func serverIndex(typeIndex, part, n int) int {
	return (typeIndex*7919 + part) % n
}

// RankSeed offsets a deployment-wide training seed for one trainer rank, so
// HOGWILD shuffles and negative samples differ across machines while staying
// deterministic. Cluster and cmd/pbg-node both use it; graph regeneration
// keeps the unoffset seed.
func RankSeed(seed uint64, rank int) uint64 {
	return seed + uint64(rank)*0x9E37
}

// Floats is a []float32 with a compact gob encoding. The reflective gob
// path encodes every float separately, which dominates swap time for
// multi-megabyte partitions; this fixed-width little-endian form keeps the
// partition servers I/O-bound on the socket instead of the encoder.
type Floats []float32

// GobEncode implements gob.GobEncoder.
func (f Floats) GobEncode() ([]byte, error) {
	out := make([]byte, 4*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out, nil
}

// GobDecode implements gob.GobDecoder.
func (f *Floats) GobDecode(b []byte) error {
	if len(b)%4 != 0 {
		return fmt.Errorf("dist: float payload length %d not a multiple of 4", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	*f = out
	return nil
}

// ShardPayload is the wire form of a storage.Shard.
type ShardPayload struct {
	TypeIndex int
	Part      int
	Count     int
	Dim       int
	Embs      Floats
	Acc       Floats
}

// payloadFromShard wraps a shard for transmission without copying.
func payloadFromShard(s *storage.Shard) *ShardPayload {
	return &ShardPayload{
		TypeIndex: s.TypeIndex,
		Part:      s.Part,
		Count:     s.Count,
		Dim:       s.Dim,
		Embs:      Floats(s.Embs),
		Acc:       Floats(s.Acc),
	}
}

// Shard converts the payload back into a storage.Shard, sharing the decoded
// buffers.
func (p *ShardPayload) Shard() *storage.Shard {
	return &storage.Shard{
		TypeIndex: p.TypeIndex,
		Part:      p.Part,
		Count:     p.Count,
		Dim:       p.Dim,
		Embs:      []float32(p.Embs),
		Acc:       []float32(p.Acc),
	}
}

// --- Lock server wire types ---

// StartEpochArgs begins a new epoch on the lock server (called once per
// epoch, by rank 0 in multi-process deployments).
type StartEpochArgs struct{}

// StartEpochReply reports the epoch number just started (1-based).
type StartEpochReply struct {
	Epoch int
}

// AcquireArgs requests a bucket lease for the given epoch. Held lists the
// partitions the trainer most recently worked on, so the scheduler can
// prefer buckets that reuse them (less partition-server traffic).
type AcquireArgs struct {
	Epoch int
	Rank  int
	Held  []int
}

// AcquireReply grants a bucket, asks the trainer to retry, or declares the
// epoch finished.
type AcquireReply struct {
	// Granted means Bucket is leased to the caller until ReleaseBucket.
	Granted bool
	Bucket  partition.Bucket
	// Done means every bucket of the requested epoch has been trained (or
	// the server has already moved past that epoch).
	Done bool
	// Token fences the lease: it is strictly monotonic across all grants, it
	// must accompany Heartbeat/ReleaseBucket/AbandonBucket calls for this
	// lease, and the trainer stamps it on every partition-server write for
	// the bucket so a write from a superseded lease can be rejected.
	Token uint64
	// TTL is the lease time-to-live the server enforces (0 = leases never
	// expire). A trainer must Heartbeat well within TTL or the lease is
	// abandoned back to the scheduler for re-leasing.
	TTL time.Duration
	// RetryAfter hints how long the caller should wait before re-asking when
	// the reply is neither Granted nor Done — longer when the epoch has not
	// started yet, shorter when buckets are merely contended — so trainers
	// stop busy-polling the lock server.
	RetryAfter time.Duration
}

// ReleaseArgs returns a completed (or abandoned) bucket lease. Token must be
// the fencing token the lease was granted under; a stale token (the lease
// expired and was re-granted) is rejected with a staleLeaseMsg error.
type ReleaseArgs struct {
	Epoch  int
	Rank   int
	Bucket partition.Bucket
	Token  uint64
}

// HeartbeatArgs renews the lease on Bucket. The server resets the lease
// deadline to now+TTL; a heartbeat carrying a stale token is rejected so a
// zombie trainer learns it has lost the bucket.
type HeartbeatArgs struct {
	Epoch  int
	Rank   int
	Bucket partition.Bucket
	Token  uint64
}

// EpochStateArgs asks the lock server for its current epoch progress.
type EpochStateArgs struct{}

// EpochStateReply snapshots epoch progress for checkpointing: the current
// epoch, the buckets already completed in it, and how many leases are
// outstanding.
type EpochStateReply struct {
	Epoch  int
	Done   []partition.Bucket
	Leases int
}

// Ack is an empty RPC reply.
type Ack struct{}

// --- Partition server wire types ---

// GetArgs fetches one (entity type, partition) shard. InitScale seeds lazy
// initialisation the first time any trainer touches the shard; all trainers
// must pass the same value (it defaults to 1).
type GetArgs struct {
	TypeIndex int
	Part      int
	Count     int // rows the shard must have (from the schema)
	Dim       int
	InitScale float32
	// Token is the fencing token of the bucket lease this read serves (0 =
	// unfenced, e.g. an evaluation snapshot). A non-zero token advances the
	// shard's fence, after which writes under older tokens are rejected; a
	// read under an already-superseded token is itself rejected so a zombie
	// trainer fails before wasting a bucket of compute.
	Token uint64
}

// ShardReply carries one shard.
type ShardReply struct {
	Shard *ShardPayload
}

// PutArgs stores a shard back, overwriting the server copy. Token fences the
// write (0 = unfenced): a Put whose token is older than the shard's fence is
// rejected, so a zombie trainer whose lease expired can never overwrite the
// re-leased holder's committed state.
type PutArgs struct {
	Shard *ShardPayload
	Token uint64
}

// SwapArgs combines Put(Old) and Get(new key) in a single round trip — the
// §4.2 partition swap. Token fences the Put half (the Get half carries its
// own token).
type SwapArgs struct {
	Put   *ShardPayload
	Get   GetArgs
	Token uint64
}

// FlushArgs asks a durable partition server to drain its write-behind queue
// so every shard accepted so far is on disk (checkpoint barrier). A no-op on
// memory-only servers.
type FlushArgs struct{}

// --- Parameter server wire types ---

// InitRelArgs publishes a relation's initial parameter block. The first
// writer wins; every caller receives the canonical block back, so all
// trainers start from identical relation parameters.
type InitRelArgs struct {
	Rel    int
	Params Floats
}

// SyncArgs pushes the local parameter delta accumulated since the last sync.
type SyncArgs struct {
	Rel   int
	Delta Floats
}

// SyncReply returns the post-push global parameters and their version (the
// total number of pushes applied), letting clients observe staleness.
type SyncReply struct {
	Params  Floats
	Version int64
}

// PullArgs fetches a relation's current global parameters without pushing.
type PullArgs struct {
	Rel int
}
