// Package dist implements PBG's distributed execution mode (§4.2, Figure 2):
// a set of trainer machines cooperate on one epoch by leasing edge buckets
// with pairwise-disjoint partitions from a central lock server, exchanging
// embedding partitions (with their Adagrad state) through sharded in-memory
// partition servers, and keeping shared relation-operator parameters loosely
// in sync through an asynchronous parameter server.
//
// All components speak net/rpc over TCP, so the same pieces assemble both the
// in-process Cluster harness (loopback sockets, used by TrainDistributed and
// the Tables 3–4 / Figure 6 benchmarks) and a real multi-host deployment via
// cmd/pbg-node.
//
// The division of state follows the paper exactly:
//
//   - Edge buckets: every trainer holds the full (deterministically
//     regenerated or shared-filesystem) edge list; the LockServer decides who
//     trains which bucket, enforcing disjointness and the §4.1 "established
//     partitions" constraint through partition.Scheduler.
//   - Partitioned entity embeddings: owned by the PartitionServer shard that
//     the (entity type, partition) key hashes to; a trainer checks the two
//     partitions of its current bucket out, trains them locally with HOGWILD
//     workers, and writes them back before releasing the bucket, so at most
//     one trainer ever holds a partition.
//   - Relation parameters: updated by every trainer concurrently, so they are
//     synchronised optimistically: a background goroutine pushes the local
//     delta since the last sync and pulls the global value every
//     SyncInterval, giving staleness bounded by that interval (§4.2's
//     asynchronous parameter server).
//
// Unpartitioned entity types are stored on the partition servers too (key
// (type, 0)); with more than one trainer their concurrent write-backs would
// be last-writer-wins, so NewCluster rejects unpartitioned types when
// Machines > 1 — distributed runs must partition every entity type, as the
// paper requires. (NewNode cannot check this: a single node does not know
// how many trainers the deployment has.)
package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"pbg/internal/partition"
	"pbg/internal/storage"
)

// SplitAddrs parses a comma-separated address list, returning nil for the
// empty string (so optional server lists can be passed straight from flags).
func SplitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// serverIndex maps an (entity type, partition) key onto one of n servers.
// Every client must agree on this mapping, so it is fixed here.
func serverIndex(typeIndex, part, n int) int {
	return (typeIndex*7919 + part) % n
}

// RankSeed offsets a deployment-wide training seed for one trainer rank, so
// HOGWILD shuffles and negative samples differ across machines while staying
// deterministic. Cluster and cmd/pbg-node both use it; graph regeneration
// keeps the unoffset seed.
func RankSeed(seed uint64, rank int) uint64 {
	return seed + uint64(rank)*0x9E37
}

// Floats is a []float32 with a compact gob encoding. The reflective gob
// path encodes every float separately, which dominates swap time for
// multi-megabyte partitions; this fixed-width little-endian form keeps the
// partition servers I/O-bound on the socket instead of the encoder.
type Floats []float32

// GobEncode implements gob.GobEncoder.
func (f Floats) GobEncode() ([]byte, error) {
	out := make([]byte, 4*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out, nil
}

// GobDecode implements gob.GobDecoder.
func (f *Floats) GobDecode(b []byte) error {
	if len(b)%4 != 0 {
		return fmt.Errorf("dist: float payload length %d not a multiple of 4", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	*f = out
	return nil
}

// ShardPayload is the wire form of a storage.Shard.
type ShardPayload struct {
	TypeIndex int
	Part      int
	Count     int
	Dim       int
	Embs      Floats
	Acc       Floats
}

// payloadFromShard wraps a shard for transmission without copying.
func payloadFromShard(s *storage.Shard) *ShardPayload {
	return &ShardPayload{
		TypeIndex: s.TypeIndex,
		Part:      s.Part,
		Count:     s.Count,
		Dim:       s.Dim,
		Embs:      Floats(s.Embs),
		Acc:       Floats(s.Acc),
	}
}

// Shard converts the payload back into a storage.Shard, sharing the decoded
// buffers.
func (p *ShardPayload) Shard() *storage.Shard {
	return &storage.Shard{
		TypeIndex: p.TypeIndex,
		Part:      p.Part,
		Count:     p.Count,
		Dim:       p.Dim,
		Embs:      []float32(p.Embs),
		Acc:       []float32(p.Acc),
	}
}

// --- Lock server wire types ---

// StartEpochArgs begins a new epoch on the lock server (called once per
// epoch, by rank 0 in multi-process deployments).
type StartEpochArgs struct{}

// StartEpochReply reports the epoch number just started (1-based).
type StartEpochReply struct {
	Epoch int
}

// AcquireArgs requests a bucket lease for the given epoch. Held lists the
// partitions the trainer most recently worked on, so the scheduler can
// prefer buckets that reuse them (less partition-server traffic).
type AcquireArgs struct {
	Epoch int
	Rank  int
	Held  []int
}

// AcquireReply grants a bucket, asks the trainer to retry, or declares the
// epoch finished.
type AcquireReply struct {
	// Granted means Bucket is leased to the caller until ReleaseBucket.
	Granted bool
	Bucket  partition.Bucket
	// Done means every bucket of the requested epoch has been trained (or
	// the server has already moved past that epoch).
	Done bool
}

// ReleaseArgs returns a completed (or abandoned) bucket lease.
type ReleaseArgs struct {
	Epoch  int
	Rank   int
	Bucket partition.Bucket
}

// Ack is an empty RPC reply.
type Ack struct{}

// --- Partition server wire types ---

// GetArgs fetches one (entity type, partition) shard. InitScale seeds lazy
// initialisation the first time any trainer touches the shard; all trainers
// must pass the same value (it defaults to 1).
type GetArgs struct {
	TypeIndex int
	Part      int
	Count     int // rows the shard must have (from the schema)
	Dim       int
	InitScale float32
}

// ShardReply carries one shard.
type ShardReply struct {
	Shard *ShardPayload
}

// PutArgs stores a shard back, overwriting the server copy.
type PutArgs struct {
	Shard *ShardPayload
}

// SwapArgs combines Put(Old) and Get(new key) in a single round trip — the
// §4.2 partition swap.
type SwapArgs struct {
	Put *ShardPayload
	Get GetArgs
}

// --- Parameter server wire types ---

// InitRelArgs publishes a relation's initial parameter block. The first
// writer wins; every caller receives the canonical block back, so all
// trainers start from identical relation parameters.
type InitRelArgs struct {
	Rel    int
	Params Floats
}

// SyncArgs pushes the local parameter delta accumulated since the last sync.
type SyncArgs struct {
	Rel   int
	Delta Floats
}

// SyncReply returns the post-push global parameters and their version (the
// total number of pushes applied), letting clients observe staleness.
type SyncReply struct {
	Params  Floats
	Version int64
}

// PullArgs fetches a relation's current global parameters without pushing.
type PullArgs struct {
	Rel int
}
