package dist

import (
	"strings"
	"testing"
	"time"

	"pbg/internal/partition"
	"pbg/internal/storage"
)

// fakeClock is a manually advanced clock for deterministic lease-expiry
// tests: expiry is lazy (checked at RPC time), so pausing time pauses it.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(ls *LockServer, c *fakeClock) { ls.now = c.now }

// mustAcquire drives AcquireBucket until it grants, failing on Done.
func mustAcquire(t *testing.T, ls *LockServer, epoch, rank int) AcquireReply {
	t.Helper()
	var rep AcquireReply
	if err := ls.AcquireBucket(AcquireArgs{Epoch: epoch, Rank: rank}, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Granted {
		t.Fatalf("expected a grant for rank %d, got %+v", rank, rep)
	}
	return rep
}

// TestLeaseExpiryEdgeCases covers the lease-lifecycle races the fencing
// tokens exist for: a release racing its own lease's expiry, re-leasing a
// bucket whose partitions the dead holder still has checked out, double
// expiry of one lease, and idempotent release retries.
func TestLeaseExpiryEdgeCases(t *testing.T) {
	const ttl = 100 * time.Millisecond
	order, err := partition.Order(partition.OrderInsideOut, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	newServer := func(t *testing.T) (*LockServer, *fakeClock) {
		t.Helper()
		ls := NewLockServer(order, WithLeaseTTL(ttl))
		clock := newFakeClock()
		withClock(ls, clock)
		var se StartEpochReply
		if err := ls.StartEpoch(StartEpochArgs{}, &se); err != nil {
			t.Fatal(err)
		}
		return ls, clock
	}

	t.Run("expiry racing legitimate release", func(t *testing.T) {
		ls, clock := newServer(t)
		rep := mustAcquire(t, ls, 1, 0)
		clock.advance(ttl + time.Millisecond)
		var ack Ack
		err := ls.ReleaseBucket(ReleaseArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}, &ack)
		if !IsStaleLease(err) {
			t.Fatalf("release after expiry = %v, want stale-lease rejection", err)
		}
		if got := ls.expiries.Value(); got != 1 {
			t.Fatalf("expiries = %d, want 1", got)
		}
		// The bucket went back to the scheduler: someone else can lease it.
		rep2 := mustAcquire(t, ls, 1, 1)
		if rep2.Bucket != rep.Bucket {
			t.Fatalf("re-lease granted %v, want the abandoned %v", rep2.Bucket, rep.Bucket)
		}
		if rep2.Token <= rep.Token {
			t.Fatalf("re-lease token %d not newer than %d", rep2.Token, rep.Token)
		}
	})

	t.Run("re-lease with dead holder's partitions checked out", func(t *testing.T) {
		ls, clock := newServer(t)
		rep := mustAcquire(t, ls, 1, 0) // rank 0 "checks out" the partitions, then dies
		clock.advance(ttl + time.Millisecond)
		rep2 := mustAcquire(t, ls, 1, 1) // expiry + re-lease in one call
		if rep2.Bucket != rep.Bucket {
			t.Fatalf("re-lease granted %v, want %v", rep2.Bucket, rep.Bucket)
		}
		// The zombie's whole lease vocabulary is now rejected...
		var ack Ack
		if err := ls.Heartbeat(HeartbeatArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}, &ack); !IsStaleLease(err) {
			t.Fatalf("zombie heartbeat = %v, want stale-lease rejection", err)
		}
		if err := ls.ReleaseBucket(ReleaseArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}, &ack); !IsStaleLease(err) {
			t.Fatalf("zombie release = %v, want stale-lease rejection", err)
		}
		// ...but its abandon is a harmless no-op that must NOT kill the new
		// holder's lease.
		if err := ls.AbandonBucket(ReleaseArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}, &ack); err != nil {
			t.Fatalf("zombie abandon = %v, want nil", err)
		}
		if err := ls.ReleaseBucket(ReleaseArgs{Epoch: 1, Rank: 1, Bucket: rep2.Bucket, Token: rep2.Token}, &ack); err != nil {
			t.Fatalf("new holder's release = %v", err)
		}
	})

	t.Run("double expiry counts once", func(t *testing.T) {
		ls, clock := newServer(t)
		rep := mustAcquire(t, ls, 1, 0)
		clock.advance(ttl + time.Millisecond)
		var es EpochStateReply
		if err := ls.EpochState(EpochStateArgs{}, &es); err != nil { // triggers expiry
			t.Fatal(err)
		}
		if err := ls.EpochState(EpochStateArgs{}, &es); err != nil { // must not expire again
			t.Fatal(err)
		}
		if got := ls.expiries.Value(); got != 1 {
			t.Fatalf("expiries = %d, want exactly 1", got)
		}
		if es.Leases != 0 {
			t.Fatalf("leases = %d after expiry", es.Leases)
		}
		_ = rep
	})

	t.Run("heartbeat keeps a slow lease alive", func(t *testing.T) {
		ls, clock := newServer(t)
		rep := mustAcquire(t, ls, 1, 0)
		var ack Ack
		for i := 0; i < 3; i++ {
			clock.advance(ttl * 4 / 5)
			if err := ls.Heartbeat(HeartbeatArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}, &ack); err != nil {
				t.Fatalf("heartbeat %d: %v", i, err)
			}
		}
		// 2.4×TTL of wall time has passed, but the lease is still valid.
		if err := ls.ReleaseBucket(ReleaseArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}, &ack); err != nil {
			t.Fatalf("release after heartbeats = %v", err)
		}
		if got := ls.expiries.Value(); got != 0 {
			t.Fatalf("expiries = %d, want 0", got)
		}
	})

	t.Run("release retry is idempotent", func(t *testing.T) {
		ls, _ := newServer(t)
		rep := mustAcquire(t, ls, 1, 0)
		var ack Ack
		args := ReleaseArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}
		if err := ls.ReleaseBucket(args, &ack); err != nil {
			t.Fatal(err)
		}
		// The reply was "lost"; the client retries the identical call.
		if err := ls.ReleaseBucket(args, &ack); err != nil {
			t.Fatalf("retried release = %v, want idempotent nil", err)
		}
		// A different (zombie) token for the same bucket still fails.
		if err := ls.ReleaseBucket(ReleaseArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token + 99}, &ack); !IsStaleLease(err) {
			t.Fatalf("foreign-token release = %v, want stale-lease rejection", err)
		}
	})
}

// TestFencedZombieWriteRejected is the acceptance-bar unit test: once a
// newer lease has touched a shard, a Put carrying the older lease's token is
// provably rejected, so a zombie trainer can never overwrite the re-leased
// holder's committed state.
func TestFencedZombieWriteRejected(t *testing.T) {
	schema := testSchema(t)
	const dim = 4
	ps := NewPartitionServer(schema, dim, 7, 2)

	fetch := func(token uint64) (*ShardPayload, error) {
		var rep ShardReply
		err := ps.Get(GetArgs{TypeIndex: 0, Part: 1, Dim: dim, InitScale: 1, Token: token}, &rep)
		if rep.Shard == nil {
			return nil, err
		}
		// Direct in-process calls alias the live shard's buffers; clone, as
		// the gob round trip would over a real connection.
		cp := *rep.Shard
		cp.Embs = append(Floats(nil), rep.Shard.Embs...)
		cp.Acc = append(Floats(nil), rep.Shard.Acc...)
		return &cp, err
	}
	// The doomed trainer checks the shard out under token 5 and trains it.
	zombie, err := fetch(5)
	if err != nil {
		t.Fatal(err)
	}
	zombie.Embs[0] = -999
	// Its lease expires; the bucket is re-leased under token 9, whose holder
	// reads and writes the shard.
	fresh, err := fetch(9)
	if err != nil {
		t.Fatal(err)
	}
	var ack Ack
	if err := ps.Put(PutArgs{Shard: fresh, Token: 9}, &ack); err != nil {
		t.Fatal(err)
	}
	// The zombie's late write must be rejected...
	err = ps.Put(PutArgs{Shard: zombie, Token: 5}, &ack)
	if !IsFenced(err) {
		t.Fatalf("zombie Put = %v, want fenced rejection", err)
	}
	if got := ps.fencedRejects.Value(); got != 1 {
		t.Fatalf("fenced rejects = %d, want 1", got)
	}
	// ...and so must its attempt to re-read for another try.
	if _, err := fetch(5); !IsFenced(err) {
		t.Fatalf("zombie Get = %v, want fenced rejection", err)
	}
	// An unfenced (token-0) write to a fenced shard is likewise refused, but
	// unfenced reads (evaluation snapshots) still work and see the fresh
	// holder's state, not the zombie's.
	if err := ps.Put(PutArgs{Shard: zombie, Token: 0}, &ack); !IsFenced(err) {
		t.Fatalf("token-0 Put on fenced shard = %v, want fenced rejection", err)
	}
	got, err := fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Embs[0] == -999 {
		t.Fatal("zombie write reached the canonical shard")
	}
}

// TestRetryClientTransientRetry checks the retry wrapper's two halves:
// transport-level failures (here chaos-dropped sends) are retried with
// backoff until the call lands, while server-returned errors pass through on
// the first attempt.
func TestRetryClientTransientRetry(t *testing.T) {
	order, err := partition.Order(partition.OrderInsideOut, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLockServer(order)
	l, addr, err := serve(map[string]any{"LockServer": ls})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	chaos := NewChaos(7, ChaosRule{Tag: "t", Method: "LockServer.StartEpoch", DropSend: 1, First: 2})
	policy := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	rc, err := dialRetry("lock server", addr, policy, chaos, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// First two attempts are dropped on the wire; the third succeeds.
	var rep StartEpochReply
	if err := rc.Call("LockServer.StartEpoch", StartEpochArgs{}, &rep); err != nil {
		t.Fatalf("Call through chaos = %v", err)
	}
	if rep.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", rep.Epoch)
	}
	if got := rc.retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	// A server-side rejection is NOT retried: the retry counter stays put.
	var ack Ack
	err = rc.Call("LockServer.ReleaseBucket", ReleaseArgs{Epoch: 1, Bucket: partition.Bucket{P1: 0, P2: 0}}, &ack)
	if err == nil {
		t.Fatal("expected server error for unleased release")
	}
	if got := rc.retries.Value(); got != 2 {
		t.Fatalf("server error consumed %d extra retries", got-2)
	}
}

// TestDropReplyIdempotentRelease exercises the lost-reply path end to end
// over real RPC: the server applies a ReleaseBucket but the reply is
// dropped, the client retries, and the retry succeeds through the released
// map instead of failing as "unleased".
func TestDropReplyIdempotentRelease(t *testing.T) {
	order, err := partition.Order(partition.OrderInsideOut, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLockServer(order)
	l, addr, err := serve(map[string]any{"LockServer": ls})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	chaos := NewChaos(3, ChaosRule{Tag: "t", Method: "LockServer.ReleaseBucket", DropReply: 1, First: 1})
	rc, err := dialRetry("lock server", addr, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}, chaos, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	var se StartEpochReply
	if err := rc.Call("LockServer.StartEpoch", StartEpochArgs{}, &se); err != nil {
		t.Fatal(err)
	}
	var rep AcquireReply
	if err := rc.Call("LockServer.AcquireBucket", AcquireArgs{Epoch: 1, Rank: 0}, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Granted {
		t.Fatalf("no grant: %+v", rep)
	}
	var ack Ack
	if err := rc.Call("LockServer.ReleaseBucket",
		ReleaseArgs{Epoch: 1, Rank: 0, Bucket: rep.Bucket, Token: rep.Token}, &ack); err != nil {
		t.Fatalf("release through dropped reply = %v", err)
	}
	// The bucket really was committed exactly once.
	var es EpochStateReply
	if err := rc.Call("LockServer.EpochState", EpochStateArgs{}, &es); err != nil {
		t.Fatal(err)
	}
	if len(es.Done) != 1 || es.Done[0] != rep.Bucket {
		t.Fatalf("done = %v, want [%v]", es.Done, rep.Bucket)
	}
	if es.Leases != 0 {
		t.Fatalf("leases = %d after release", es.Leases)
	}
}

// TestPartitionServerDurableRestart checks the durable write path: shards
// written to a durable server survive its shutdown and are served (not
// re-initialised) by a fresh server over the same directory.
func TestPartitionServerDurableRestart(t *testing.T) {
	schema := testSchema(t)
	const dim = 4
	dir := t.TempDir()
	ps := NewPartitionServer(schema, dim, 7, 2, WithDurableDir(dir))

	var rep ShardReply
	if err := ps.Get(GetArgs{TypeIndex: 0, Part: 1, Dim: dim, InitScale: 1}, &rep); err != nil {
		t.Fatal(err)
	}
	rep.Shard.Embs[0] = 123.5
	rep.Shard.Acc[0] = 6.25
	var ack Ack
	if err := ps.Put(PutArgs{Shard: rep.Shard}, &ack); err != nil {
		t.Fatal(err)
	}
	if err := ps.Flush(FlushArgs{}, &ack); err != nil {
		t.Fatal(err)
	}
	if err := ps.closeDurable(); err != nil {
		t.Fatal(err)
	}
	// The flushed shard is on disk in the shared DiskStore format.
	if _, err := storage.ReadShard(storage.ShardPath(dir, 0, 1)); err != nil {
		t.Fatalf("durable shard unreadable: %v", err)
	}

	// A "restarted" server over the same directory serves the written state.
	ps2 := NewPartitionServer(schema, dim, 7, 2, WithDurableDir(dir))
	defer ps2.closeDurable()
	var rep2 ShardReply
	if err := ps2.Get(GetArgs{TypeIndex: 0, Part: 1, Dim: dim, InitScale: 1}, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Shard.Embs[0] != 123.5 || rep2.Shard.Acc[0] != 6.25 {
		t.Fatalf("restart lost the write: emb %v acc %v", rep2.Shard.Embs[0], rep2.Shard.Acc[0])
	}
	// Untouched partitions still lazy-init deterministically.
	var fresh ShardReply
	if err := ps2.Get(GetArgs{TypeIndex: 0, Part: 2, Dim: dim, InitScale: 1}, &fresh); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Shard.Embs) == 0 {
		t.Fatal("lazy init of unwritten partition failed")
	}
}

// TestManifestRoundTrip checks checkpoint-manifest persistence, including
// the fresh-directory and corrupt-manifest cases.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadManifest(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v, want absent manifest", ok, err)
	}
	m := &Manifest{
		Epoch:     3,
		Done:      []partition.Bucket{{P1: 0, P2: 0}, {P1: 1, P2: 2}},
		RelParams: []RelBlock{{Rel: 0, Params: []float32{1, 2, 3}}},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("ReadManifest: ok=%v err=%v", ok, err)
	}
	if got.Epoch != 3 || len(got.Done) != 2 || got.Done[1] != (partition.Bucket{P1: 1, P2: 2}) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.RelParams) != 1 || got.RelParams[0].Params[2] != 3 {
		t.Fatalf("relation params lost: %+v", got.RelParams)
	}
}

// TestIsTransientClassification pins which failures the retry loop may
// retry: transport trouble yes, server verdicts no.
func TestIsTransientClassification(t *testing.T) {
	if isTransientRPC(nil) {
		t.Fatal("nil is not transient")
	}
	if !isTransientRPC(errCallTimeout) || !isTransientRPC(errChaosDrop) {
		t.Fatal("timeouts and drops must be transient")
	}
	if isTransientRPC(errChaosKilled) {
		t.Fatal("a killed node is not transient")
	}
	// A server-returned error (how rpc.ServerError reaches clients).
	if isTransientRPC(serverErrorFor(t)) {
		t.Fatal("rpc.ServerError must not be retried")
	}
}

// serverErrorFor obtains a genuine rpc.ServerError by making a real RPC that
// the server rejects.
func serverErrorFor(t *testing.T) error {
	t.Helper()
	order, err := partition.Order(partition.OrderInsideOut, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := serve(map[string]any{"LockServer": NewLockServer(order)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rc, err := dialRetry("lock server", addr, RetryPolicy{}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var ack Ack
	err = rc.Call("LockServer.ReleaseBucket", ReleaseArgs{Bucket: partition.Bucket{}}, &ack)
	if err == nil {
		t.Fatal("expected a server error")
	}
	if !strings.Contains(err.Error(), "unleased") && !IsStaleLease(err) {
		t.Fatalf("unexpected error shape: %v", err)
	}
	return err
}
