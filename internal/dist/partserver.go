package dist

import (
	"fmt"
	"sync"

	"pbg/internal/graph"
	"pbg/internal/rng"
	"pbg/internal/storage"
)

// PartitionServer holds embedding partitions (with their Adagrad state) in
// memory for the trainers of one deployment. A deployment runs several of
// these; each (entity type, partition) key lives on exactly one server,
// chosen by the shared client-side hash (serverIndex), so a server only ever
// materialises the shards it owns.
//
// Shards are created lazily with the same deterministic per-shard seeding as
// storage stores, so a partition first touched by any trainer — or never
// written back at all — still has well-defined contents.
type PartitionServer struct {
	schema *graph.Schema
	dim    int
	seed   uint64

	// Storage is striped to keep concurrent Get/Put/Swap from different
	// trainers from serialising on one mutex.
	stripes []partStripe
}

type partStripe struct {
	mu     sync.Mutex
	shards map[partKey]*storage.Shard
}

type partKey struct{ t, p int }

// NewPartitionServer creates a server for the given schema and embedding
// dimension. seed drives lazy shard initialisation (it must match across the
// deployment's partition servers and the single-machine baseline for
// reproducible starts). shards is the number of internal lock stripes;
// values below 1 mean 1.
func NewPartitionServer(schema *graph.Schema, dim int, seed uint64, shards int) *PartitionServer {
	if shards < 1 {
		shards = 1
	}
	ps := &PartitionServer{schema: schema, dim: dim, seed: seed, stripes: make([]partStripe, shards)}
	for i := range ps.stripes {
		ps.stripes[i].shards = make(map[partKey]*storage.Shard)
	}
	return ps
}

func (ps *PartitionServer) stripe(k partKey) *partStripe {
	return &ps.stripes[(k.t*31+k.p)%len(ps.stripes)]
}

func (ps *PartitionServer) checkKey(t, p, dim int) error {
	if t < 0 || t >= len(ps.schema.Entities) {
		return fmt.Errorf("dist: entity type %d out of range", t)
	}
	e := ps.schema.Entities[t]
	if p < 0 || p >= e.NumPartitions {
		return fmt.Errorf("dist: partition %d out of range for type %q (%d partitions)", p, e.Name, e.NumPartitions)
	}
	if dim != 0 && dim != ps.dim {
		return fmt.Errorf("dist: client dim %d, server dim %d", dim, ps.dim)
	}
	return nil
}

// loadLocked returns the shard for k, initialising it deterministically on
// first touch. The stripe mutex must be held.
func (ps *PartitionServer) loadLocked(st *partStripe, k partKey, scale float32) *storage.Shard {
	if sh, ok := st.shards[k]; ok {
		return sh
	}
	if scale == 0 {
		scale = 1
	}
	e := ps.schema.Entities[k.t]
	sh := storage.NewShard(k.t, k.p, e.PartitionCount(k.p), ps.dim)
	// Shared seed derivation, so a fresh distributed run starts from the
	// same embeddings as a MemStore with the same seed.
	sh.Init(rng.New(storage.ShardSeed(ps.seed, k.t, k.p)), scale)
	st.shards[k] = sh
	return sh
}

// Get fetches one shard, lazily initialising it on first touch.
func (ps *PartitionServer) Get(args GetArgs, reply *ShardReply) error {
	if err := ps.checkKey(args.TypeIndex, args.Part, args.Dim); err != nil {
		return err
	}
	if want := ps.schema.Entities[args.TypeIndex].PartitionCount(args.Part); args.Count != 0 && args.Count != want {
		return fmt.Errorf("dist: client expects %d rows in shard (%d,%d), server schema has %d — mismatched graph configuration",
			args.Count, args.TypeIndex, args.Part, want)
	}
	k := partKey{args.TypeIndex, args.Part}
	st := ps.stripe(k)
	st.mu.Lock()
	sh := ps.loadLocked(st, k, args.InitScale)
	st.mu.Unlock()
	reply.Shard = payloadFromShard(sh)
	return nil
}

// Put stores a shard back, replacing the server copy.
func (ps *PartitionServer) Put(args PutArgs, reply *Ack) error {
	if args.Shard == nil {
		return fmt.Errorf("dist: Put with nil shard")
	}
	sh := args.Shard.Shard()
	if err := ps.checkKey(sh.TypeIndex, sh.Part, sh.Dim); err != nil {
		return err
	}
	want := ps.schema.Entities[sh.TypeIndex].PartitionCount(sh.Part)
	if sh.Count != want || len(sh.Embs) != want*ps.dim || len(sh.Acc) != want {
		return fmt.Errorf("dist: Put shard (%d,%d) has %d rows, want %d", sh.TypeIndex, sh.Part, sh.Count, want)
	}
	k := partKey{sh.TypeIndex, sh.Part}
	st := ps.stripe(k)
	st.mu.Lock()
	st.shards[k] = sh
	st.mu.Unlock()
	return nil
}

// Swap writes one shard back and fetches another in a single round trip —
// the partition exchange a trainer performs between consecutive buckets.
func (ps *PartitionServer) Swap(args SwapArgs, reply *ShardReply) error {
	if args.Put != nil {
		var ack Ack
		if err := ps.Put(PutArgs{Shard: args.Put}, &ack); err != nil {
			return err
		}
	}
	return ps.Get(args.Get, reply)
}
