package dist

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"pbg/internal/graph"
	"pbg/internal/obs"
	"pbg/internal/rng"
	"pbg/internal/storage"
)

// PartitionServer holds embedding partitions (with their Adagrad state) in
// memory for the trainers of one deployment. A deployment runs several of
// these; each (entity type, partition) key lives on exactly one server,
// chosen by the shared client-side hash (serverIndex), so a server only ever
// materialises the shards it owns.
//
// Shards are created lazily with the same deterministic per-shard seeding as
// storage stores, so a partition first touched by any trainer — or never
// written back at all — still has well-defined contents.
//
// Fencing: each shard remembers the highest lease token that has read or
// written it. A write carrying an older token is rejected — the writer's
// bucket lease expired and was re-granted, so its state is stale. Token 0
// (single-machine stores, read-only evaluation snapshots) bypasses reads but
// may write only while a shard is still unfenced.
//
// Durability: with WithDurableDir, accepted writes are persisted to disk by
// a write-behind goroutine (latest version wins; Flush drains the queue),
// and a restarted server reloads shards from the directory instead of
// re-initialising them, so a partition server crash costs at most the
// not-yet-flushed tail rather than an epoch of embeddings.
type PartitionServer struct {
	schema *graph.Schema
	dim    int
	seed   uint64

	// Storage is striped to keep concurrent Get/Put/Swap from different
	// trainers from serialising on one mutex.
	stripes []partStripe

	durable *durableState

	fencedRejects *obs.Counter
	durableWrites *obs.Counter
}

type partStripe struct {
	mu     sync.Mutex
	shards map[partKey]*storage.Shard
	fence  map[partKey]uint64
}

type partKey struct{ t, p int }

// PartOption configures a PartitionServer at construction (options rather
// than setter methods: net/rpc registration warns about exported methods
// that do not match the RPC signature).
type PartOption func(*PartitionServer)

// WithDurableDir makes the server write shards through to dir (write-behind)
// and restore them from it on startup. The directory uses the same on-disk
// shard format and naming as storage.DiskStore.
func WithDurableDir(dir string) PartOption {
	return func(ps *PartitionServer) {
		if dir == "" {
			return
		}
		ps.durable = newDurableState(dir)
	}
}

// WithPartObs publishes the server's fencing/durability metrics on h's
// registry instead of a private quiet hub.
func WithPartObs(h *obs.Hub) PartOption {
	return func(ps *PartitionServer) {
		if h == nil {
			return
		}
		ps.bindMetrics(h.Reg)
	}
}

// NewPartitionServer creates a server for the given schema and embedding
// dimension. seed drives lazy shard initialisation (it must match across the
// deployment's partition servers and the single-machine baseline for
// reproducible starts). shards is the number of internal lock stripes;
// values below 1 mean 1.
func NewPartitionServer(schema *graph.Schema, dim int, seed uint64, shards int, opts ...PartOption) *PartitionServer {
	if shards < 1 {
		shards = 1
	}
	ps := &PartitionServer{schema: schema, dim: dim, seed: seed, stripes: make([]partStripe, shards)}
	for i := range ps.stripes {
		ps.stripes[i].shards = make(map[partKey]*storage.Shard)
		ps.stripes[i].fence = make(map[partKey]uint64)
	}
	ps.bindMetrics(obs.NewQuietHub().Reg)
	for _, opt := range opts {
		opt(ps)
	}
	if ps.durable != nil {
		go ps.durable.run(ps)
	}
	return ps
}

func (ps *PartitionServer) bindMetrics(reg *obs.Registry) {
	ps.fencedRejects = reg.Counter(`pbg_dist_fenced_rejects_total{server="partition"}`)
	ps.durableWrites = reg.Counter("pbg_dist_durable_writes_total")
}

func (ps *PartitionServer) stripe(k partKey) *partStripe {
	return &ps.stripes[(k.t*31+k.p)%len(ps.stripes)]
}

func (ps *PartitionServer) checkKey(t, p, dim int) error {
	if t < 0 || t >= len(ps.schema.Entities) {
		return fmt.Errorf("dist: entity type %d out of range", t)
	}
	e := ps.schema.Entities[t]
	if p < 0 || p >= e.NumPartitions {
		return fmt.Errorf("dist: partition %d out of range for type %q (%d partitions)", p, e.Name, e.NumPartitions)
	}
	if dim != 0 && dim != ps.dim {
		return fmt.Errorf("dist: client dim %d, server dim %d", dim, ps.dim)
	}
	return nil
}

// loadLocked returns the shard for k, restoring it from the durable
// directory if one exists there, else initialising it deterministically on
// first touch. The stripe mutex must be held.
func (ps *PartitionServer) loadLocked(st *partStripe, k partKey, scale float32) (*storage.Shard, error) {
	if sh, ok := st.shards[k]; ok {
		return sh, nil
	}
	if scale == 0 {
		scale = 1
	}
	e := ps.schema.Entities[k.t]
	want := e.PartitionCount(k.p)
	if ps.durable != nil {
		sh, err := storage.ReadShard(storage.ShardPath(ps.durable.dir, k.t, k.p))
		switch {
		case err == nil:
			if sh.Count != want || sh.Dim != ps.dim {
				return nil, fmt.Errorf("dist: durable shard (%d,%d) is %d×%d, schema wants %d×%d",
					k.t, k.p, sh.Count, sh.Dim, want, ps.dim)
			}
			st.shards[k] = sh
			return sh, nil
		case !errors.Is(err, fs.ErrNotExist):
			return nil, err
		}
	}
	sh := storage.NewShard(k.t, k.p, want, ps.dim)
	// Shared seed derivation, so a fresh distributed run starts from the
	// same embeddings as a MemStore with the same seed.
	sh.Init(rng.New(storage.ShardSeed(ps.seed, k.t, k.p)), scale)
	st.shards[k] = sh
	return sh, nil
}

// Get fetches one shard, lazily initialising it on first touch. A non-zero
// token advances the shard's fence; a token the fence has already passed is
// rejected, so a trainer whose lease was superseded fails before training.
func (ps *PartitionServer) Get(args GetArgs, reply *ShardReply) error {
	if err := ps.checkKey(args.TypeIndex, args.Part, args.Dim); err != nil {
		return err
	}
	if want := ps.schema.Entities[args.TypeIndex].PartitionCount(args.Part); args.Count != 0 && args.Count != want {
		return fmt.Errorf("dist: client expects %d rows in shard (%d,%d), server schema has %d — mismatched graph configuration",
			args.Count, args.TypeIndex, args.Part, want)
	}
	k := partKey{args.TypeIndex, args.Part}
	st := ps.stripe(k)
	st.mu.Lock()
	if args.Token != 0 {
		if args.Token < st.fence[k] {
			st.mu.Unlock()
			ps.fencedRejects.Inc()
			return fmt.Errorf("%s: get of shard (%d,%d) under token %d, fence at %d",
				fencedWriteMsg, k.t, k.p, args.Token, st.fence[k])
		}
		st.fence[k] = args.Token
	}
	sh, err := ps.loadLocked(st, k, args.InitScale)
	st.mu.Unlock()
	if err != nil {
		return err
	}
	reply.Shard = payloadFromShard(sh)
	return nil
}

// Put stores a shard back, replacing the server copy. The write is fenced:
// a token older than the shard's fence — or a token-0 write to a shard some
// lease has fenced — is rejected, so a zombie trainer whose bucket was
// re-leased can never overwrite the new holder's state.
func (ps *PartitionServer) Put(args PutArgs, reply *Ack) error {
	if args.Shard == nil {
		return fmt.Errorf("dist: Put with nil shard")
	}
	sh := args.Shard.Shard()
	if err := ps.checkKey(sh.TypeIndex, sh.Part, sh.Dim); err != nil {
		return err
	}
	want := ps.schema.Entities[sh.TypeIndex].PartitionCount(sh.Part)
	if sh.Count != want || len(sh.Embs) != want*ps.dim || len(sh.Acc) != want {
		return fmt.Errorf("dist: Put shard (%d,%d) has %d rows, want %d", sh.TypeIndex, sh.Part, sh.Count, want)
	}
	k := partKey{sh.TypeIndex, sh.Part}
	st := ps.stripe(k)
	st.mu.Lock()
	if fence := st.fence[k]; args.Token < fence {
		st.mu.Unlock()
		ps.fencedRejects.Inc()
		return fmt.Errorf("%s: put of shard (%d,%d) under token %d, fence at %d",
			fencedWriteMsg, k.t, k.p, args.Token, fence)
	}
	if args.Token != 0 {
		st.fence[k] = args.Token
	}
	st.shards[k] = sh
	st.mu.Unlock()
	if ps.durable != nil {
		ps.durable.enqueue(k)
	}
	return nil
}

// Swap writes one shard back and fetches another in a single round trip —
// the partition exchange a trainer performs between consecutive buckets.
// Token fences the Put half; the Get half carries its own token.
func (ps *PartitionServer) Swap(args SwapArgs, reply *ShardReply) error {
	if args.Put != nil {
		var ack Ack
		if err := ps.Put(PutArgs{Shard: args.Put, Token: args.Token}, &ack); err != nil {
			return err
		}
	}
	return ps.Get(args.Get, reply)
}

// Flush drains the durable write-behind queue, so every write accepted
// before the call is on disk when it returns. A no-op for memory-only
// servers.
func (ps *PartitionServer) Flush(args FlushArgs, reply *Ack) error {
	return ps.flushDurable()
}

// flushDurable is the in-process form of Flush, used by Cluster checkpoints.
func (ps *PartitionServer) flushDurable() error {
	if ps.durable == nil {
		return nil
	}
	return ps.durable.flush()
}

// closeDurable stops the write-behind goroutine after draining its queue.
func (ps *PartitionServer) closeDurable() error {
	if ps.durable == nil {
		return nil
	}
	return ps.durable.close()
}

// durableState is the write-behind machinery of a durable PartitionServer:
// Put marks the shard key dirty and a single goroutine persists the latest
// version of each dirty shard in FIFO key order. Re-dirtying a queued key is
// free (latest wins — the writer re-reads the live shard at write time), so
// a hot shard costs one disk write per drain, not one per Put.
type durableState struct {
	dir string

	mu       sync.Mutex
	cond     *sync.Cond
	dirty    map[partKey]bool
	queue    []partKey
	inFlight bool
	err      error // first write error, sticky — surfaced by flush
	closed   bool
	done     chan struct{}
}

func newDurableState(dir string) *durableState {
	d := &durableState{
		dir:   dir,
		dirty: make(map[partKey]bool),
		done:  make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *durableState) enqueue(k partKey) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.dirty[k] {
		return
	}
	d.dirty[k] = true
	d.queue = append(d.queue, k)
	d.cond.Broadcast()
}

// run is the write-behind loop; it exits when close drains the queue.
func (d *durableState) run(ps *PartitionServer) {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		k := d.queue[0]
		d.queue = d.queue[1:]
		delete(d.dirty, k)
		d.inFlight = true
		d.mu.Unlock()

		// Re-read the live shard now, so the write always persists the most
		// recent accepted version.
		st := ps.stripe(k)
		st.mu.Lock()
		sh := st.shards[k]
		st.mu.Unlock()
		var err error
		if sh != nil {
			err = storage.WriteShard(storage.ShardPath(d.dir, k.t, k.p), sh)
			if err == nil {
				ps.durableWrites.Inc()
			}
		}

		d.mu.Lock()
		d.inFlight = false
		if err != nil && d.err == nil {
			d.err = err
		}
		d.cond.Broadcast()
		d.mu.Unlock()
	}
}

// flush blocks until the queue is drained, returning the first write error
// seen so far (checkpoints must not report success over a failed write).
func (d *durableState) flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.queue) > 0 || d.inFlight {
		d.cond.Wait()
	}
	return d.err
}

func (d *durableState) close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return d.err
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}
