package dist

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"pbg/internal/graph"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// partServerStripes is the lock striping inside each in-process partition
// server; trainers touch at most a handful of shards concurrently.
const partServerStripes = 8

// ClusterConfig sizes an in-process distributed deployment.
type ClusterConfig struct {
	// Machines is the number of trainer nodes; the deployment also runs
	// Machines partition-server shards (the paper shards partition servers
	// across the trainer machines) and one parameter server.
	Machines int
	// SyncInterval throttles background parameter sync (default 100ms).
	SyncInterval time.Duration
	// Seed drives deterministic lazy shard initialisation on the partition
	// servers (the distributed counterpart of a store seed).
	Seed uint64
	// Train carries the per-node hyperparameters; each node gets a
	// rank-offset copy of Train.Seed so HOGWILD shuffles and negative
	// samples differ across machines.
	Train train.Config
	// InitScale scales shard initialisation. Default Train.InitScale, then 1.
	InitScale float32
	// LeaseTTL enables fault tolerance: bucket leases expire after this long
	// without a heartbeat and are re-leased, and RunEpoch survives node
	// deaths as long as one node lives. 0 (the default) keeps the fail-stop
	// model: any node error fails the epoch.
	LeaseTTL time.Duration
	// CheckpointDir, when set, makes the partition servers durable (shards
	// written through to this directory) and enables Checkpoint/resume: a
	// NewCluster pointed at a directory holding a previous run's checkpoint
	// resumes from its consistency cut instead of epoch 0.
	CheckpointDir string
	// CheckpointEvery runs Checkpoint in the background at this period
	// (requires CheckpointDir; 0 = only explicit Checkpoint calls).
	CheckpointEvery time.Duration
	// Retry bounds every client's RPC patience; zero-value = defaults.
	Retry RetryPolicy
	// Chaos, when non-nil, injects deterministic faults into the trainers'
	// RPC traffic (tests only).
	Chaos *Chaos
}

// Cluster wires every §4.2 component together inside one process, over real
// loopback-TCP net/rpc: one lock server, Machines sharded partition servers,
// one parameter server and Machines trainer nodes. It exists so distributed
// training can be exercised (and benchmarked, Tables 3–4) without a fleet,
// while running the exact same code a multi-host deployment runs.
type Cluster struct {
	// Nodes are the trainer machines, indexed by rank.
	Nodes []*Node

	g         *graph.Graph
	cfg       ClusterConfig
	initScale float32
	partAddrs []string
	listeners []net.Listener
	lock      *retryClient
	shutdown  sync.Once

	// Direct references to the in-process servers, for checkpointing (the
	// RPC surface stays the only interface trainers use).
	lockSrv  *LockServer
	partSrvs []*PartitionServer
	paramSrv *ParamServer

	// nextEpoch is the lock-server epoch the next RunEpoch will train;
	// pendingResume means that epoch was already started by the checkpointed
	// run, so the next RunEpoch must not call StartEpoch again.
	nextEpoch     int
	pendingResume bool

	ckptStop chan struct{}
	ckptDone chan struct{}
}

// serve registers the receivers on a fresh loopback listener and serves
// connections until the listener closes. It returns the bound address.
func serve(receivers map[string]any) (net.Listener, string, error) {
	srv := rpc.NewServer()
	for name, rcvr := range receivers {
		if err := srv.RegisterName(name, rcvr); err != nil {
			return nil, "", err
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed: shutdown
			}
			go srv.ServeConn(conn)
		}
	}()
	return l, l.Addr().String(), nil
}

// NewCluster boots the deployment. order is the bucket order the lock
// server leases from (it must cover the partition grid g's schema implies).
// With CheckpointDir set and a manifest present there, the cluster resumes
// from the checkpoint's consistency cut: durable shards are reloaded
// lazily, relation parameters are restored, and the interrupted epoch (if
// any) continues from its done-bucket set.
func NewCluster(g *graph.Graph, order []partition.Bucket, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("dist: Machines must be positive, got %d", cfg.Machines)
	}
	if cfg.Train.Dim <= 0 {
		return nil, fmt.Errorf("dist: Train.Dim must be positive")
	}
	// With several trainers, an unpartitioned type's whole shard is written
	// back concurrently by nodes holding disjoint buckets — last writer wins
	// and the others' updates are silently lost. Refuse the config, as the
	// paper requires partitioning every entity type for distributed training.
	if cfg.Machines > 1 {
		for _, e := range g.Schema.Entities {
			if !e.Partitioned() {
				return nil, fmt.Errorf("dist: entity type %q is unpartitioned; distributed training with %d machines needs every type partitioned (its concurrent write-backs would be last-writer-wins)", e.Name, cfg.Machines)
			}
		}
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("dist: CheckpointEvery needs CheckpointDir")
	}
	initScale := cfg.InitScale
	if initScale == 0 {
		initScale = cfg.Train.InitScale
	}
	if initScale == 0 {
		initScale = 1
	}
	cl := &Cluster{g: g, cfg: cfg, initScale: initScale, nextEpoch: 1}
	fail := func(err error) (*Cluster, error) {
		cl.Shutdown()
		return nil, err
	}

	var manifest *Manifest
	if cfg.CheckpointDir != "" {
		m, ok, err := ReadManifest(cfg.CheckpointDir)
		if err != nil {
			return fail(err)
		}
		if ok {
			manifest = m
		}
	}

	lockOpts := []LockOption{WithLeaseTTL(cfg.LeaseTTL)}
	if cfg.Train.Obs != nil {
		lockOpts = append(lockOpts, WithLockObs(cfg.Train.Obs))
	}
	epochBase := 0
	if manifest != nil && manifest.Epoch > 0 {
		lockOpts = append(lockOpts, WithRestoredEpoch(manifest.Epoch, manifest.Done))
		// An interrupted epoch (done set not covering the grid) continues
		// without a fresh StartEpoch; a cut taken between epochs moves on.
		cl.pendingResume = len(manifest.Done) < len(order)
		if cl.pendingResume {
			cl.nextEpoch = manifest.Epoch
			epochBase = manifest.Epoch - 1
		} else {
			cl.nextEpoch = manifest.Epoch + 1
			epochBase = manifest.Epoch
		}
	}
	cl.lockSrv = NewLockServer(order, lockOpts...)
	l, lockAddr, err := serve(map[string]any{"LockServer": cl.lockSrv})
	if err != nil {
		return fail(err)
	}
	cl.listeners = append(cl.listeners, l)

	var partOpts []PartOption
	if cfg.CheckpointDir != "" {
		partOpts = append(partOpts, WithDurableDir(cfg.CheckpointDir))
	}
	if cfg.Train.Obs != nil {
		partOpts = append(partOpts, WithPartObs(cfg.Train.Obs))
	}
	for i := 0; i < cfg.Machines; i++ {
		ps := NewPartitionServer(g.Schema, cfg.Train.Dim, cfg.Seed, partServerStripes, partOpts...)
		l, addr, err := serve(map[string]any{"PartitionServer": ps})
		if err != nil {
			return fail(err)
		}
		cl.partSrvs = append(cl.partSrvs, ps)
		cl.listeners = append(cl.listeners, l)
		cl.partAddrs = append(cl.partAddrs, addr)
	}
	cl.paramSrv = NewParamServer()
	if manifest != nil {
		cl.paramSrv.restore(manifest.RelParams)
	}
	l, paramAddr, err := serve(map[string]any{"ParamServer": cl.paramSrv})
	if err != nil {
		return fail(err)
	}
	cl.listeners = append(cl.listeners, l)

	// The cluster's own control-plane client carries the "cluster" chaos tag,
	// so fault schedules can target trainers without severing the harness.
	cl.lock, err = dialRetry("lock server", lockAddr, cfg.Retry, cfg.Chaos, "cluster")
	if err != nil {
		return fail(err)
	}
	for rank := 0; rank < cfg.Machines; rank++ {
		trainCfg := cfg.Train
		trainCfg.Seed = RankSeed(cfg.Train.Seed, rank)
		node, err := NewNode(g, NodeConfig{
			Rank:           rank,
			LockAddr:       lockAddr,
			PartitionAddrs: cl.partAddrs,
			ParamAddrs:     []string{paramAddr},
			Train:          trainCfg,
			SyncInterval:   cfg.SyncInterval,
			InitScale:      initScale,
			Retry:          cfg.Retry,
			Chaos:          cfg.Chaos,
			EpochBase:      epochBase,
		})
		if err != nil {
			return fail(err)
		}
		cl.Nodes = append(cl.Nodes, node)
	}
	if cfg.CheckpointEvery > 0 {
		cl.ckptStop = make(chan struct{})
		cl.ckptDone = make(chan struct{})
		go cl.checkpointLoop()
	}
	return cl, nil
}

// NextEpoch reports the lock-server epoch the next RunEpoch call will train
// (1-based). After a resume this is the interrupted epoch, so callers loop
// `for cl.NextEpoch() <= epochs` instead of counting from 1 themselves.
func (cl *Cluster) NextEpoch() int { return cl.nextEpoch }

// RunEpoch starts an epoch on the lock server and runs every node's share
// concurrently, returning the merged statistics. With LeaseTTL set, node
// deaths mid-epoch are tolerated: the dead nodes' leases expire, survivors
// retrain their buckets, and the failed ranks are reported in
// EpochStats.Failed — the epoch only fails if every node dies. Without a
// TTL any node error fails the epoch (the original fail-stop model).
func (cl *Cluster) RunEpoch() (EpochStats, error) {
	if cl.pendingResume {
		// The checkpointed run already started this epoch; its done buckets
		// are marked on the scheduler and must not be reset.
		cl.pendingResume = false
	} else {
		var rep StartEpochReply
		if err := cl.lock.Call("LockServer.StartEpoch", StartEpochArgs{}, &rep); err != nil {
			return EpochStats{}, err
		}
	}
	start := time.Now()
	stats := make([]EpochStats, len(cl.Nodes))
	errs := make([]error, len(cl.Nodes))
	var wg sync.WaitGroup
	for i, n := range cl.Nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			stats[i], errs[i] = n.RunEpoch()
		}(i, n)
	}
	wg.Wait()
	var merged EpochStats
	var failed []int
	for i := range cl.Nodes {
		if errs[i] != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) > 0 {
		if cl.cfg.LeaseTTL <= 0 {
			return merged, errs[failed[0]]
		}
		if len(failed) == len(cl.Nodes) {
			return merged, fmt.Errorf("dist: all %d nodes failed; first: %w", len(cl.Nodes), errs[failed[0]])
		}
	}
	merged.Failed = failed
	isFailed := make(map[int]bool, len(failed))
	for _, r := range failed {
		isFailed[r] = true
	}
	// Second sync round after the barrier: each node's end-of-epoch sync ran
	// before later-finishing nodes pushed their final deltas, so adopt the
	// settled global block everywhere before anyone evaluates.
	for i, n := range cl.Nodes {
		if isFailed[i] {
			continue
		}
		if err := n.SyncParams(); err != nil {
			return merged, err
		}
	}
	// Merge every node's stats, failed ones included: buckets a dead node
	// committed before dying are real work (its uncommitted bucket was
	// retrained by a survivor), so Buckets still sums to the full grid.
	for i := range cl.Nodes {
		merged.Loss += stats[i].Loss
		merged.Edges += stats[i].Edges
		merged.Buckets += stats[i].Buckets
		merged.PartitionIO += stats[i].PartitionIO
		merged.IOWait += stats[i].IOWait
		merged.Compute += stats[i].Compute
		merged.LeaseWait += stats[i].LeaseWait
		merged.PerNode = append(merged.PerNode, stats[i].PerNode...)
	}
	sort.Slice(merged.PerNode, func(i, j int) bool { return merged.PerNode[i].Rank < merged.PerNode[j].Rank })
	merged.Duration = time.Since(start)
	cl.nextEpoch++
	return merged, nil
}

// Checkpoint writes a consistency cut into CheckpointDir: the lock server's
// epoch progress is snapshotted first, then the durable partition servers
// flush their write-behind queues, then the manifest (epoch, done buckets,
// relation parameters) commits atomically. Because the progress snapshot
// precedes the flush, the durable shards are always at least as new as the
// manifest's cut — a resume retrains at most the buckets that were in
// flight, never loses a committed one.
func (cl *Cluster) Checkpoint() error {
	if cl.cfg.CheckpointDir == "" {
		return fmt.Errorf("dist: cluster has no CheckpointDir")
	}
	var es EpochStateReply
	if err := cl.lock.Call("LockServer.EpochState", EpochStateArgs{}, &es); err != nil {
		return err
	}
	m := &Manifest{Epoch: es.Epoch, Done: es.Done}
	for r := range cl.g.Schema.Relations {
		var rep SyncReply
		if err := cl.paramSrv.Pull(PullArgs{Rel: r}, &rep); err != nil {
			continue // parameter-free relation, or not initialised yet
		}
		m.RelParams = append(m.RelParams, RelBlock{Rel: r, Params: rep.Params})
	}
	for _, ps := range cl.partSrvs {
		if err := ps.flushDurable(); err != nil {
			return err
		}
	}
	return WriteManifest(cl.cfg.CheckpointDir, m)
}

// checkpointLoop runs Checkpoint at CheckpointEvery until Shutdown. Failures
// are retried next tick; an async checkpoint that raced shutdown is simply
// older than one taken explicitly before Shutdown.
func (cl *Cluster) checkpointLoop() {
	defer close(cl.ckptDone)
	ticker := time.NewTicker(cl.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-cl.ckptStop:
			return
		case <-ticker.C:
			_ = cl.Checkpoint()
		}
	}
}

// EvalStore returns a read-only store over the cluster's current embeddings
// (fetched lazily from the partition servers). The caller must Close it; the
// cluster itself stays alive for further epochs. The store is exempt from
// the cluster's chaos schedule — evaluation is the harness, not the system
// under test.
func (cl *Cluster) EvalStore() (storage.Store, error) {
	return dialStore(cl.g.Schema, cl.cfg.Train.Dim, cl.initScale, true, cl.partAddrs,
		storeOpts{policy: cl.cfg.Retry})
}

// Shutdown stops every node and server. Safe to call more than once.
func (cl *Cluster) Shutdown() {
	cl.shutdown.Do(func() {
		if cl.ckptStop != nil {
			close(cl.ckptStop)
			<-cl.ckptDone
		}
		for _, n := range cl.Nodes {
			_ = n.Close()
		}
		if cl.lock != nil {
			_ = cl.lock.Close()
		}
		for _, ps := range cl.partSrvs {
			ps.closeDurable()
		}
		for _, l := range cl.listeners {
			_ = l.Close()
		}
	})
}
