package dist

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"pbg/internal/graph"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// partServerStripes is the lock striping inside each in-process partition
// server; trainers touch at most a handful of shards concurrently.
const partServerStripes = 8

// ClusterConfig sizes an in-process distributed deployment.
type ClusterConfig struct {
	// Machines is the number of trainer nodes; the deployment also runs
	// Machines partition-server shards (the paper shards partition servers
	// across the trainer machines) and one parameter server.
	Machines int
	// SyncInterval throttles background parameter sync (default 100ms).
	SyncInterval time.Duration
	// Seed drives deterministic lazy shard initialisation on the partition
	// servers (the distributed counterpart of a store seed).
	Seed uint64
	// Train carries the per-node hyperparameters; each node gets a
	// rank-offset copy of Train.Seed so HOGWILD shuffles and negative
	// samples differ across machines.
	Train train.Config
	// InitScale scales shard initialisation. Default Train.InitScale, then 1.
	InitScale float32
}

// Cluster wires every §4.2 component together inside one process, over real
// loopback-TCP net/rpc: one lock server, Machines sharded partition servers,
// one parameter server and Machines trainer nodes. It exists so distributed
// training can be exercised (and benchmarked, Tables 3–4) without a fleet,
// while running the exact same code a multi-host deployment runs.
type Cluster struct {
	// Nodes are the trainer machines, indexed by rank.
	Nodes []*Node

	g         *graph.Graph
	dim       int
	initScale float32
	partAddrs []string
	listeners []net.Listener
	lock      *rpc.Client
	shutdown  sync.Once
}

// serve registers the receivers on a fresh loopback listener and serves
// connections until the listener closes. It returns the bound address.
func serve(receivers map[string]any) (net.Listener, string, error) {
	srv := rpc.NewServer()
	for name, rcvr := range receivers {
		if err := srv.RegisterName(name, rcvr); err != nil {
			return nil, "", err
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed: shutdown
			}
			go srv.ServeConn(conn)
		}
	}()
	return l, l.Addr().String(), nil
}

// NewCluster boots the deployment. order is the bucket order the lock
// server leases from (it must cover the partition grid g's schema implies).
func NewCluster(g *graph.Graph, order []partition.Bucket, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("dist: Machines must be positive, got %d", cfg.Machines)
	}
	if cfg.Train.Dim <= 0 {
		return nil, fmt.Errorf("dist: Train.Dim must be positive")
	}
	// With several trainers, an unpartitioned type's whole shard is written
	// back concurrently by nodes holding disjoint buckets — last writer wins
	// and the others' updates are silently lost. Refuse the config, as the
	// paper requires partitioning every entity type for distributed training.
	if cfg.Machines > 1 {
		for _, e := range g.Schema.Entities {
			if !e.Partitioned() {
				return nil, fmt.Errorf("dist: entity type %q is unpartitioned; distributed training with %d machines needs every type partitioned (its concurrent write-backs would be last-writer-wins)", e.Name, cfg.Machines)
			}
		}
	}
	initScale := cfg.InitScale
	if initScale == 0 {
		initScale = cfg.Train.InitScale
	}
	if initScale == 0 {
		initScale = 1
	}
	cl := &Cluster{g: g, dim: cfg.Train.Dim, initScale: initScale}
	fail := func(err error) (*Cluster, error) {
		cl.Shutdown()
		return nil, err
	}

	l, lockAddr, err := serve(map[string]any{"LockServer": NewLockServer(order)})
	if err != nil {
		return fail(err)
	}
	cl.listeners = append(cl.listeners, l)
	for i := 0; i < cfg.Machines; i++ {
		ps := NewPartitionServer(g.Schema, cfg.Train.Dim, cfg.Seed, partServerStripes)
		l, addr, err := serve(map[string]any{"PartitionServer": ps})
		if err != nil {
			return fail(err)
		}
		cl.listeners = append(cl.listeners, l)
		cl.partAddrs = append(cl.partAddrs, addr)
	}
	l, paramAddr, err := serve(map[string]any{"ParamServer": NewParamServer()})
	if err != nil {
		return fail(err)
	}
	cl.listeners = append(cl.listeners, l)

	cl.lock, err = rpc.Dial("tcp", lockAddr)
	if err != nil {
		return fail(err)
	}
	for rank := 0; rank < cfg.Machines; rank++ {
		trainCfg := cfg.Train
		trainCfg.Seed = RankSeed(cfg.Train.Seed, rank)
		node, err := NewNode(g, NodeConfig{
			Rank:           rank,
			LockAddr:       lockAddr,
			PartitionAddrs: cl.partAddrs,
			ParamAddrs:     []string{paramAddr},
			Train:          trainCfg,
			SyncInterval:   cfg.SyncInterval,
			InitScale:      initScale,
		})
		if err != nil {
			return fail(err)
		}
		cl.Nodes = append(cl.Nodes, node)
	}
	return cl, nil
}

// RunEpoch starts an epoch on the lock server and runs every node's share
// concurrently, returning the merged statistics.
func (cl *Cluster) RunEpoch() (EpochStats, error) {
	var rep StartEpochReply
	if err := cl.lock.Call("LockServer.StartEpoch", StartEpochArgs{}, &rep); err != nil {
		return EpochStats{}, err
	}
	start := time.Now()
	stats := make([]EpochStats, len(cl.Nodes))
	errs := make([]error, len(cl.Nodes))
	var wg sync.WaitGroup
	for i, n := range cl.Nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			stats[i], errs[i] = n.RunEpoch()
		}(i, n)
	}
	wg.Wait()
	var merged EpochStats
	for i := range cl.Nodes {
		if errs[i] != nil {
			return merged, errs[i]
		}
	}
	// Second sync round after the barrier: each node's end-of-epoch sync ran
	// before later-finishing nodes pushed their final deltas, so adopt the
	// settled global block everywhere before anyone evaluates.
	for _, n := range cl.Nodes {
		if err := n.SyncParams(); err != nil {
			return merged, err
		}
	}
	for i := range cl.Nodes {
		merged.Loss += stats[i].Loss
		merged.Edges += stats[i].Edges
		merged.Buckets += stats[i].Buckets
		merged.PartitionIO += stats[i].PartitionIO
		merged.IOWait += stats[i].IOWait
		merged.Compute += stats[i].Compute
		merged.LeaseWait += stats[i].LeaseWait
		merged.PerNode = append(merged.PerNode, stats[i].PerNode...)
	}
	sort.Slice(merged.PerNode, func(i, j int) bool { return merged.PerNode[i].Rank < merged.PerNode[j].Rank })
	merged.Duration = time.Since(start)
	return merged, nil
}

// EvalStore returns a read-only store over the cluster's current embeddings
// (fetched lazily from the partition servers). The caller must Close it; the
// cluster itself stays alive for further epochs.
func (cl *Cluster) EvalStore() (storage.Store, error) {
	return dialStore(cl.g.Schema, cl.dim, cl.initScale, true, cl.partAddrs)
}

// Shutdown stops every node and server. Safe to call more than once.
func (cl *Cluster) Shutdown() {
	cl.shutdown.Do(func() {
		for _, n := range cl.Nodes {
			n.Close()
		}
		if cl.lock != nil {
			cl.lock.Close()
		}
		for _, l := range cl.listeners {
			l.Close()
		}
	})
}
