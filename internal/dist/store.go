package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pbg/internal/graph"
	"pbg/internal/obs"
	"pbg/internal/storage"
)

// distStoreMetrics holds the checkout cache's registry handles. Each store
// starts on a private quiet hub; SetObs rebinds the handles to a shared
// registry (train.New plumbs Config.Obs here, the same way it does for
// storage.DiskStore).
type distStoreMetrics struct {
	fetches, puts, sheds, forcedEvicts *obs.Counter
	getNs, putNs                       *obs.Histogram
	resident                           *obs.Gauge
}

func newDistStoreMetrics(reg *obs.Registry) distStoreMetrics {
	return distStoreMetrics{
		fetches:      reg.Counter("pbg_dist_fetches_total"),
		puts:         reg.Counter("pbg_dist_puts_total"),
		sheds:        reg.Counter("pbg_dist_prefetch_sheds_total"),
		forcedEvicts: reg.Counter("pbg_dist_forced_evicts_total"),
		getNs:        reg.Histogram(`pbg_dist_rpc_ns{method="Get"}`),
		putNs:        reg.Histogram(`pbg_dist_rpc_ns{method="Put"}`),
		resident:     reg.Gauge("pbg_dist_resident_bytes"),
	}
}

// remoteStore implements storage.Store on top of a set of partition servers:
// Acquire checks a shard out over RPC, Release writes it back and evicts it.
// It is the distributed analogue of storage.DiskStore — the "disk" is the
// deployment's sharded partition-server memory — and it is what makes
// train.Trainer work unchanged in distributed mode: the trainer's per-bucket
// Acquire/Release calls become the §4.2 partition swaps.
//
// A readonly store (used for evaluation snapshots) skips the write-back so
// concurrent trainers never observe an evaluator's stale copy.
//
// Shards are deliberately not cached across buckets: once the bucket lease
// is released, another trainer may acquire and modify a shared partition,
// so a kept copy could go stale. Exploiting the lock server's Held affinity
// without refetching would require leases that span bucket transitions; the
// Swap RPC exists so such a trainer can at least pair its write-back and
// fetch in one round trip.
type remoteStore struct {
	schema    *graph.Schema
	dim       int
	initScale float32
	readonly  bool
	clients   []*retryClient

	// fenceTok is the fencing token of the node's current bucket lease,
	// stamped on every Get/Put so the partition servers can reject writes
	// from a superseded lease. 0 (eval stores, single-trainer runs without a
	// TTL) bypasses fencing.
	fenceTok atomic.Uint64

	mu    sync.Mutex
	cache map[partKey]*storeEntry
	// maxResident is the same admission budget storage.DiskStore enforces,
	// plumbed here so a node's checkout cache obeys the node's memory
	// envelope: prefetch hints that do not fit are dropped, and a must-have
	// Acquire first evicts fetched-but-never-acquired shards (which were
	// never modified, so they drop without a Put). 0 = unbounded.
	maxResident int64
	useSeq      int64

	// obs/m record fetches, write-backs, budget decisions, and RPC
	// latencies; set at construction or by one SetObs call before use.
	// The private atomics below back IOStats: several in-process stores
	// may share one hub (a Cluster with Config.Obs set), so the registry
	// counters aggregate across stores while these stay per-store exact.
	obs        *obs.Hub
	m          distStoreMetrics
	fetchCount atomic.Int64
	putCount   atomic.Int64
	shedCount  atomic.Int64
	evictCount atomic.Int64
}

type storeEntry struct {
	shard *storage.Shard
	refs  int
	// size is the projected shard footprint while the fetch is in flight
	// (known from the schema), so admission charges fetches up front.
	size int64
	// lastUse orders never-acquired prefetched shards for LRU eviction.
	lastUse int64
	// waiters counts Acquires blocked on ready (or re-locking just after
	// it closed); eviction skips entries a waiter is about to claim, so a
	// just-landed prefetch cannot be evicted into a redundant re-fetch.
	waiters int
	// ready is non-nil while a fetch (Prefetch or first Acquire) is in
	// flight; shard/err are set before it closes and immutable afterwards.
	ready chan struct{}
	err   error
}

// storeOpts carries the resilience knobs a store's partition-server clients
// are built with.
type storeOpts struct {
	policy RetryPolicy
	chaos  *Chaos
	tag    string // chaos identity of the owning node
}

// dialStore connects to every partition server and returns a store over
// them. The store owns the connections; Close hangs them up.
func dialStore(schema *graph.Schema, dim int, initScale float32, readonly bool, addrs []string, o storeOpts) (*remoteStore, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: no partition servers")
	}
	if initScale == 0 {
		initScale = 1
	}
	s := &remoteStore{
		schema:    schema,
		dim:       dim,
		initScale: initScale,
		readonly:  readonly,
		cache:     make(map[partKey]*storeEntry),
		obs:       obs.NewQuietHub(),
	}
	s.m = newDistStoreMetrics(s.obs.Reg)
	for _, addr := range addrs {
		c, err := dialRetry("partition server", addr, o.policy, o.chaos, o.tag)
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		s.clients = append(s.clients, c)
	}
	return s, nil
}

func (s *remoteStore) client(t, p int) *retryClient {
	return s.clients[serverIndex(t, p, len(s.clients))]
}

// SetFenceToken sets the lease token stamped on subsequent partition-server
// reads and writes (0 = unfenced). The node updates it at every lease grant.
func (s *remoteStore) SetFenceToken(tok uint64) {
	s.fenceTok.Store(tok)
}

// SetObs rebinds the store's metrics onto h's shared registry; call once,
// before the first Prefetch/Acquire. train.New plumbs Config.Obs here
// automatically for any store exposing this method.
func (s *remoteStore) SetObs(h *obs.Hub) {
	if h == nil {
		return
	}
	s.obs = h
	s.m = newDistStoreMetrics(h.Reg)
	for _, c := range s.clients {
		c.bindMetrics(h.Reg)
	}
}

// IOStats reports cumulative checkout-cache activity in DiskStore's IOStats
// shape: Loads are partition-server fetches, Writes are Put write-backs
// (Admits is not a remote-store concept and stays 0). The counts come from
// per-store atomics, so they stay exact even when several stores share one
// obs hub.
func (s *remoteStore) IOStats() storage.IOStats {
	return storage.IOStats{
		Loads:         s.fetchCount.Load(),
		Writes:        s.putCount.Load(),
		PrefetchSheds: s.shedCount.Load(),
		ForcedEvicts:  s.evictCount.Load(),
	}
}

// SetMaxResidentBytes sets the checkout-cache admission budget (0 =
// unbounded). train.New plumbs Config.MemBudgetBytes here, the same way it
// does for a local DiskStore.
func (s *remoteStore) SetMaxResidentBytes(n int64) {
	s.mu.Lock()
	s.maxResident = n
	s.mu.Unlock()
}

// shardBytes is the exact in-memory size shard (t,p) will occupy once
// fetched, known from the schema without a round trip.
func (s *remoteStore) shardBytes(t, p int) int64 {
	return storage.ProjectedShardBytes(s.schema, s.dim, t, p)
}

// accountedLocked charges resident shards plus in-flight fetch projections
// against the budget.
func (s *remoteStore) accountedLocked() int64 {
	var total int64
	for _, e := range s.cache {
		if e.shard != nil {
			total += e.shard.Bytes()
		} else {
			total += e.size
		}
	}
	return total
}

// evictUnusedLocked drops the least-recently-fetched shard that was
// prefetched but never acquired. Such shards are unmodified, so no Put is
// needed — the partition server's copy is still canonical.
func (s *remoteStore) evictUnusedLocked() bool {
	var victimK partKey
	var victim *storeEntry
	for k, e := range s.cache {
		if e.refs == 0 && e.ready == nil && e.waiters == 0 {
			if victim == nil || e.lastUse < victim.lastUse {
				victimK, victim = k, e
			}
		}
	}
	if victim == nil {
		return false
	}
	delete(s.cache, victimK)
	s.m.forcedEvicts.Inc()
	s.evictCount.Add(1)
	s.updateResidentLocked()
	return true
}

// get performs the Get RPC for shard (t,p). Called without the lock held so
// fetches of different shards overlap on the wire.
func (s *remoteStore) get(t, p int) (*storage.Shard, error) {
	var reply ShardReply
	args := GetArgs{
		TypeIndex: t,
		Part:      p,
		Count:     s.schema.Entities[t].PartitionCount(p),
		Dim:       s.dim,
		InitScale: s.initScale,
		Token:     s.fenceTok.Load(),
	}
	sp := s.obs.Trace.Start("dist", fmt.Sprintf("get t%d p%d", t, p))
	t0 := time.Now()
	err := s.client(t, p).Call("PartitionServer.Get", args, &reply)
	s.m.getNs.Observe(float64(time.Since(t0).Nanoseconds()))
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("dist: get shard (%d,%d): %w", t, p, err)
	}
	s.m.fetches.Inc()
	s.fetchCount.Add(1)
	return reply.Shard.Shard(), nil
}

// fetch resolves an in-flight entry: it runs the RPC and publishes the
// result. On failure the entry is removed so a retry can refetch; waiters
// read err from their captured entry pointer.
func (s *remoteStore) fetch(k partKey, e *storeEntry) {
	sh, err := s.get(k.t, k.p)
	s.mu.Lock()
	e.shard, e.err = sh, err
	if err != nil {
		delete(s.cache, k)
	} else {
		e.size = sh.Bytes()
		s.useSeq++
		e.lastUse = s.useSeq
	}
	s.updateResidentLocked()
	close(e.ready)
	e.ready = nil
	s.mu.Unlock()
}

// Prefetch implements storage.Store: it starts fetching shard (t,p) from its
// partition server in the background so a later Acquire finds it resident —
// the remote analogue of the DiskStore prefetch that lets the pipelined
// epoch executor overlap partition-server round trips with training. It is
// a no-op when the shard is already cached or being fetched.
func (s *remoteStore) Prefetch(t, p int) {
	k := partKey{t, p}
	s.mu.Lock()
	if _, ok := s.cache[k]; ok {
		s.mu.Unlock()
		return
	}
	size := s.shardBytes(t, p)
	if s.maxResident > 0 && s.accountedLocked()+size > s.maxResident {
		// Hints are advisory: the budget drops them rather than evicting
		// for them (mirroring storage.DiskStore's admission rule).
		s.m.sheds.Inc()
		s.shedCount.Add(1)
		s.mu.Unlock()
		return
	}
	e := &storeEntry{ready: make(chan struct{}), size: size}
	s.cache[k] = e
	s.mu.Unlock()
	go s.fetch(k, e)
}

// Acquire implements storage.Store: a cache miss fetches the shard from the
// owning partition server; a hit on an in-flight prefetch waits for that
// fetch instead of issuing a second Get (two copies of the same shard would
// diverge under training).
func (s *remoteStore) Acquire(t, p int) (*storage.Shard, error) {
	k := partKey{t, p}
	s.mu.Lock()
	for {
		e, ok := s.cache[k]
		if !ok {
			size := s.shardBytes(t, p)
			if s.maxResident > 0 {
				// A must-have evicts never-acquired prefetched shards until
				// the fetch fits; when everything left is referenced it
				// proceeds over budget (training cannot progress otherwise).
				for s.accountedLocked()+size > s.maxResident && s.evictUnusedLocked() {
				}
			}
			e = &storeEntry{ready: make(chan struct{}), size: size}
			s.cache[k] = e
			s.mu.Unlock()
			s.fetch(k, e) // synchronous fetch in this goroutine
			if e.err != nil {
				return nil, e.err
			}
			s.mu.Lock()
			continue
		}
		if e.ready != nil {
			ready := e.ready
			e.waiters++
			s.mu.Unlock()
			<-ready
			s.mu.Lock()
			e.waiters--
			if e.err != nil {
				s.mu.Unlock()
				return nil, e.err
			}
			continue
		}
		e.refs++
		sh := e.shard
		s.mu.Unlock()
		return sh, nil
	}
}

// Release implements storage.Store: the last reference writes the shard back
// to its partition server and evicts it, so the next trainer to lease a
// bucket touching this partition sees the update. Unlike DiskStore's
// asynchronous write-back, the Put stays synchronous: the lock server may
// grant these partitions to another trainer the moment the bucket lease is
// returned, so the write must have landed before Release returns.
func (s *remoteStore) Release(t, p int) error {
	s.mu.Lock()
	k := partKey{t, p}
	e, ok := s.cache[k]
	if !ok || e.refs <= 0 {
		s.mu.Unlock()
		return fmt.Errorf("dist: Release of unacquired shard (%d,%d)", t, p)
	}
	e.refs--
	if e.refs > 0 {
		s.mu.Unlock()
		return nil
	}
	delete(s.cache, k)
	s.updateResidentLocked()
	s.mu.Unlock()
	if s.readonly {
		return nil
	}
	// Write back outside the lock: the shard is no longer visible locally.
	var ack Ack
	sp := s.obs.Trace.Start("dist", fmt.Sprintf("put t%d p%d", t, p))
	t0 := time.Now()
	err := s.client(t, p).Call("PartitionServer.Put", PutArgs{Shard: payloadFromShard(e.shard), Token: s.fenceTok.Load()}, &ack)
	s.m.putNs.Observe(float64(time.Since(t0).Nanoseconds()))
	sp.End()
	if err != nil {
		return fmt.Errorf("dist: put shard (%d,%d): %w", t, p, err)
	}
	s.m.puts.Inc()
	s.putCount.Add(1)
	return nil
}

// Flush implements storage.Store: push every resident shard back without
// evicting (checkpoint-style).
func (s *remoteStore) Flush() error {
	if s.readonly {
		return nil
	}
	s.mu.Lock()
	shards := make([]*storage.Shard, 0, len(s.cache))
	for _, e := range s.cache {
		if e.shard != nil { // skip fetches still in flight
			shards = append(shards, e.shard)
		}
	}
	s.mu.Unlock()
	for _, sh := range shards {
		var ack Ack
		if err := s.client(sh.TypeIndex, sh.Part).Call("PartitionServer.Put", PutArgs{Shard: payloadFromShard(sh), Token: s.fenceTok.Load()}, &ack); err != nil {
			return err
		}
	}
	return nil
}

// ResidentBytes implements storage.Store.
func (s *remoteStore) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residentLocked()
}

func (s *remoteStore) residentLocked() int64 {
	var total int64
	for _, e := range s.cache {
		if e.shard != nil { // fetches still in flight hold no memory yet
			total += e.shard.Bytes()
		}
	}
	return total
}

// updateResidentLocked refreshes the resident-bytes gauge at every
// transition that changes checkout-cache memory.
func (s *remoteStore) updateResidentLocked() {
	s.m.resident.Set(s.residentLocked())
}

// Close implements storage.Store: hang up the partition-server connections.
func (s *remoteStore) Close() error {
	var first error
	for _, c := range s.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.clients = nil
	return first
}
