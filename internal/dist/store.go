package dist

import (
	"fmt"
	"net/rpc"
	"sync"

	"pbg/internal/graph"
	"pbg/internal/storage"
)

// remoteStore implements storage.Store on top of a set of partition servers:
// Acquire checks a shard out over RPC, Release writes it back and evicts it.
// It is the distributed analogue of storage.DiskStore — the "disk" is the
// deployment's sharded partition-server memory — and it is what makes
// train.Trainer work unchanged in distributed mode: the trainer's per-bucket
// Acquire/Release calls become the §4.2 partition swaps.
//
// A readonly store (used for evaluation snapshots) skips the write-back so
// concurrent trainers never observe an evaluator's stale copy.
//
// Shards are deliberately not cached across buckets: once the bucket lease
// is released, another trainer may acquire and modify a shared partition,
// so a kept copy could go stale. Exploiting the lock server's Held affinity
// without refetching would require leases that span bucket transitions; the
// Swap RPC exists so such a trainer can at least pair its write-back and
// fetch in one round trip.
type remoteStore struct {
	schema    *graph.Schema
	dim       int
	initScale float32
	readonly  bool
	clients   []*rpc.Client

	mu    sync.Mutex
	cache map[partKey]*storeEntry
}

type storeEntry struct {
	shard *storage.Shard
	refs  int
	// ready is non-nil while a fetch (Prefetch or first Acquire) is in
	// flight; shard/err are set before it closes and immutable afterwards.
	ready chan struct{}
	err   error
}

// dialStore connects to every partition server and returns a store over
// them. The store owns the connections; Close hangs them up.
func dialStore(schema *graph.Schema, dim int, initScale float32, readonly bool, addrs []string) (*remoteStore, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: no partition servers")
	}
	if initScale == 0 {
		initScale = 1
	}
	s := &remoteStore{
		schema:    schema,
		dim:       dim,
		initScale: initScale,
		readonly:  readonly,
		cache:     make(map[partKey]*storeEntry),
	}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("dist: dial partition server %s: %w", addr, err)
		}
		s.clients = append(s.clients, c)
	}
	return s, nil
}

func (s *remoteStore) client(t, p int) *rpc.Client {
	return s.clients[serverIndex(t, p, len(s.clients))]
}

// get performs the Get RPC for shard (t,p). Called without the lock held so
// fetches of different shards overlap on the wire.
func (s *remoteStore) get(t, p int) (*storage.Shard, error) {
	var reply ShardReply
	args := GetArgs{
		TypeIndex: t,
		Part:      p,
		Count:     s.schema.Entities[t].PartitionCount(p),
		Dim:       s.dim,
		InitScale: s.initScale,
	}
	if err := s.client(t, p).Call("PartitionServer.Get", args, &reply); err != nil {
		return nil, fmt.Errorf("dist: get shard (%d,%d): %w", t, p, err)
	}
	return reply.Shard.Shard(), nil
}

// fetch resolves an in-flight entry: it runs the RPC and publishes the
// result. On failure the entry is removed so a retry can refetch; waiters
// read err from their captured entry pointer.
func (s *remoteStore) fetch(k partKey, e *storeEntry) {
	sh, err := s.get(k.t, k.p)
	s.mu.Lock()
	e.shard, e.err = sh, err
	if err != nil {
		delete(s.cache, k)
	}
	close(e.ready)
	e.ready = nil
	s.mu.Unlock()
}

// Prefetch implements storage.Store: it starts fetching shard (t,p) from its
// partition server in the background so a later Acquire finds it resident —
// the remote analogue of the DiskStore prefetch that lets the pipelined
// epoch executor overlap partition-server round trips with training. It is
// a no-op when the shard is already cached or being fetched.
func (s *remoteStore) Prefetch(t, p int) {
	k := partKey{t, p}
	s.mu.Lock()
	if _, ok := s.cache[k]; ok {
		s.mu.Unlock()
		return
	}
	e := &storeEntry{ready: make(chan struct{})}
	s.cache[k] = e
	s.mu.Unlock()
	go s.fetch(k, e)
}

// Acquire implements storage.Store: a cache miss fetches the shard from the
// owning partition server; a hit on an in-flight prefetch waits for that
// fetch instead of issuing a second Get (two copies of the same shard would
// diverge under training).
func (s *remoteStore) Acquire(t, p int) (*storage.Shard, error) {
	k := partKey{t, p}
	s.mu.Lock()
	for {
		e, ok := s.cache[k]
		if !ok {
			e = &storeEntry{ready: make(chan struct{})}
			s.cache[k] = e
			s.mu.Unlock()
			s.fetch(k, e) // synchronous fetch in this goroutine
			if e.err != nil {
				return nil, e.err
			}
			s.mu.Lock()
			continue
		}
		if e.ready != nil {
			ready := e.ready
			s.mu.Unlock()
			<-ready
			if e.err != nil {
				return nil, e.err
			}
			s.mu.Lock()
			continue
		}
		e.refs++
		sh := e.shard
		s.mu.Unlock()
		return sh, nil
	}
}

// Release implements storage.Store: the last reference writes the shard back
// to its partition server and evicts it, so the next trainer to lease a
// bucket touching this partition sees the update. Unlike DiskStore's
// asynchronous write-back, the Put stays synchronous: the lock server may
// grant these partitions to another trainer the moment the bucket lease is
// returned, so the write must have landed before Release returns.
func (s *remoteStore) Release(t, p int) error {
	s.mu.Lock()
	k := partKey{t, p}
	e, ok := s.cache[k]
	if !ok || e.refs <= 0 {
		s.mu.Unlock()
		return fmt.Errorf("dist: Release of unacquired shard (%d,%d)", t, p)
	}
	e.refs--
	if e.refs > 0 {
		s.mu.Unlock()
		return nil
	}
	delete(s.cache, k)
	s.mu.Unlock()
	if s.readonly {
		return nil
	}
	// Write back outside the lock: the shard is no longer visible locally.
	var ack Ack
	if err := s.client(t, p).Call("PartitionServer.Put", PutArgs{Shard: payloadFromShard(e.shard)}, &ack); err != nil {
		return fmt.Errorf("dist: put shard (%d,%d): %w", t, p, err)
	}
	return nil
}

// Flush implements storage.Store: push every resident shard back without
// evicting (checkpoint-style).
func (s *remoteStore) Flush() error {
	if s.readonly {
		return nil
	}
	s.mu.Lock()
	shards := make([]*storage.Shard, 0, len(s.cache))
	for _, e := range s.cache {
		if e.shard != nil { // skip fetches still in flight
			shards = append(shards, e.shard)
		}
	}
	s.mu.Unlock()
	for _, sh := range shards {
		var ack Ack
		if err := s.client(sh.TypeIndex, sh.Part).Call("PartitionServer.Put", PutArgs{Shard: payloadFromShard(sh)}, &ack); err != nil {
			return err
		}
	}
	return nil
}

// ResidentBytes implements storage.Store.
func (s *remoteStore) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, e := range s.cache {
		if e.shard != nil { // fetches still in flight hold no memory yet
			total += e.shard.Bytes()
		}
	}
	return total
}

// Close implements storage.Store: hang up the partition-server connections.
func (s *remoteStore) Close() error {
	var first error
	for _, c := range s.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.clients = nil
	return first
}
