package dist

import (
	"math"
	"testing"
	"time"

	"pbg/internal/datagen"
	"pbg/internal/graph"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

func TestSplitAddrs(t *testing.T) {
	if got := SplitAddrs(""); got != nil {
		t.Fatalf("SplitAddrs(\"\") = %v, want nil", got)
	}
	got := SplitAddrs("a:1,b:2")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("SplitAddrs = %v", got)
	}
}

func TestFloatsGobRoundTrip(t *testing.T) {
	in := Floats{0, 1.5, -2.25, float32(math.Pi)}
	b, err := in.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var out Floats
	if err := out.GobDecode(b); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d != %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("element %d: %v != %v", i, in[i], out[i])
		}
	}
	if err := out.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

// TestLockServerDisjointLeases drives three simulated trainers through two
// epochs and checks the §4.2 invariants: in-flight buckets are pairwise
// disjoint, every bucket after the first touches an established partition
// (first epoch only), and each epoch trains every bucket exactly once.
func TestLockServerDisjointLeases(t *testing.T) {
	const p = 4
	order, err := partition.Order(partition.OrderInsideOut, p, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls := NewLockServer(order)

	// Asking for epoch 1 before StartEpoch: neither granted nor done.
	var rep AcquireReply
	if err := ls.AcquireBucket(AcquireArgs{Epoch: 1}, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Granted || rep.Done {
		t.Fatalf("pre-StartEpoch acquire: %+v", rep)
	}

	established := map[int]bool{}
	for epoch := 1; epoch <= 2; epoch++ {
		var se StartEpochReply
		if err := ls.StartEpoch(StartEpochArgs{}, &se); err != nil {
			t.Fatal(err)
		}
		if se.Epoch != epoch {
			t.Fatalf("epoch = %d, want %d", se.Epoch, epoch)
		}
		held := map[int]partition.Bucket{} // rank -> leased bucket
		tokens := map[int]uint64{}         // rank -> lease fencing token
		trained := map[partition.Bucket]int{}
		grants := 0
		for done := false; !done; {
			progressed := false
			for rank := 0; rank < 3; rank++ {
				if _, busy := held[rank]; busy {
					continue
				}
				var rep AcquireReply
				if err := ls.AcquireBucket(AcquireArgs{Epoch: epoch, Rank: rank}, &rep); err != nil {
					t.Fatal(err)
				}
				if rep.Done {
					done = true
					break
				}
				if !rep.Granted {
					continue
				}
				b := rep.Bucket
				for other, ob := range held {
					if !b.Disjoint(ob) {
						t.Fatalf("epoch %d: bucket %v granted to rank %d overlaps %v held by rank %d", epoch, b, rank, ob, other)
					}
				}
				if epoch == 1 && grants > 0 && !established[b.P1] && !established[b.P2] {
					t.Fatalf("epoch 1: bucket %v granted with both partitions unestablished", b)
				}
				if rep.Token == 0 {
					t.Fatalf("grant of %v carries no fencing token", b)
				}
				grants++
				held[rank] = b
				tokens[rank] = rep.Token
				progressed = true
			}
			if done {
				break
			}
			// Release one lease so the loop always advances.
			released := false
			for rank, b := range held {
				established[b.P1] = true
				established[b.P2] = true
				var ack Ack
				if err := ls.ReleaseBucket(ReleaseArgs{Epoch: epoch, Rank: rank, Bucket: b, Token: tokens[rank]}, &ack); err != nil {
					t.Fatal(err)
				}
				trained[b]++
				delete(held, rank)
				released = true
				break
			}
			if !progressed && !released {
				t.Fatalf("epoch %d: no grants and nothing to release", epoch)
			}
		}
		if len(trained) != p*p {
			t.Fatalf("epoch %d trained %d distinct buckets, want %d", epoch, len(trained), p*p)
		}
		for b, nTimes := range trained {
			if nTimes != 1 {
				t.Fatalf("epoch %d: bucket %v trained %d times", epoch, b, nTimes)
			}
		}
	}

	// The superseded epoch reports done; releases of unleased buckets fail.
	if err := ls.AcquireBucket(AcquireArgs{Epoch: 1}, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Done {
		t.Fatal("stale epoch should report done")
	}
	var ack Ack
	if err := ls.ReleaseBucket(ReleaseArgs{Epoch: 2, Bucket: partition.Bucket{P1: 0, P2: 0}}, &ack); err == nil {
		t.Fatal("expected error releasing unleased bucket")
	}
}

func testSchema(t *testing.T) *graph.Schema {
	t.Helper()
	s, err := graph.NewSchema(
		[]graph.EntityType{{Name: "node", Count: 40, NumPartitions: 4}},
		[]graph.RelationType{{Name: "r", SourceType: "node", DestType: "node", Operator: "translation"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPartitionServerSwapRoundTrip exercises Get/Put/Swap over real
// loopback-TCP RPC, including the parity of lazy initialisation with a
// MemStore using the same seed.
func TestPartitionServerSwapRoundTrip(t *testing.T) {
	schema := testSchema(t)
	const dim, seed = 8, uint64(7)
	l, addr, err := serve(map[string]any{"PartitionServer": NewPartitionServer(schema, dim, seed, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	store, err := dialStore(schema, dim, 1, false, []string{addr}, storeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Lazy initialisation matches a MemStore with the same seed.
	sh, err := store.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemStore(schema, dim, seed, 1)
	ref, err := mem.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Embs) != len(ref.Embs) {
		t.Fatalf("shard size %d != %d", len(sh.Embs), len(ref.Embs))
	}
	for i := range sh.Embs {
		if sh.Embs[i] != ref.Embs[i] {
			t.Fatalf("init mismatch at %d: %v != %v", i, sh.Embs[i], ref.Embs[i])
		}
	}
	if err := mem.Release(0, 1); err != nil {
		t.Fatal(err)
	}

	// Mutate, write back (Release), fetch again: the round trip preserves
	// embeddings and Adagrad state exactly.
	sh.Embs[3] = 42.5
	sh.Acc[0] = 7.25
	want := append([]float32(nil), sh.Embs...)
	if err := store.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	sh2, err := store.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sh2.Embs[i] != want[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, sh2.Embs[i], want[i])
		}
	}
	if sh2.Acc[0] != 7.25 {
		t.Fatalf("Adagrad state lost: %v", sh2.Acc[0])
	}
	if err := store.Release(0, 1); err != nil {
		t.Fatal(err)
	}

	// Swap: one RPC stores partition 1 and fetches partition 2.
	client := store.clients[0]
	var got ShardReply
	put := payloadFromShard(storage.NewShard(0, 1, schema.Entities[0].PartitionCount(1), dim))
	if err := client.Call("PartitionServer.Swap", SwapArgs{Put: put, Get: GetArgs{TypeIndex: 0, Part: 2, Dim: dim, InitScale: 1}}, &got); err != nil {
		t.Fatal(err)
	}
	if got.Shard.Part != 2 {
		t.Fatalf("swap returned partition %d", got.Shard.Part)
	}
	var back ShardReply
	if err := client.Call("PartitionServer.Get", GetArgs{TypeIndex: 0, Part: 1, Dim: dim, InitScale: 1}, &back); err != nil {
		t.Fatal(err)
	}
	for i, v := range back.Shard.Embs {
		if v != 0 {
			t.Fatalf("swap's put was lost: element %d = %v", i, v)
		}
	}

	// Dimension and range validation.
	var bad ShardReply
	if err := client.Call("PartitionServer.Get", GetArgs{TypeIndex: 0, Part: 9, Dim: dim}, &bad); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := client.Call("PartitionServer.Get", GetArgs{TypeIndex: 0, Part: 0, Dim: dim + 1}, &bad); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

// TestParamServerAsyncConvergence checks the delta-push protocol: with three
// clients pushing interleaved updates, the global block converges to the
// initial value plus the sum of every client's updates, and a final pull
// brings all clients to the same state.
func TestParamServerAsyncConvergence(t *testing.T) {
	ps := NewParamServer()
	const rel, dim, clients, rounds = 0, 4, 3, 50
	init := make(Floats, dim)
	for i := range init {
		init[i] = float32(i)
	}
	var ir InitRelReply
	for c := 0; c < clients; c++ {
		if err := ps.InitRel(InitRelArgs{Rel: rel, Params: init}, &ir); err != nil {
			t.Fatal(err)
		}
		for i := range init {
			if ir.Params[i] != init[i] {
				t.Fatalf("client %d got non-canonical init %v", c, ir.Params)
			}
		}
	}

	local := make([][]float32, clients)
	last := make([][]float32, clients)
	for c := range local {
		local[c] = append([]float32(nil), init...)
		last[c] = append([]float32(nil), init...)
	}
	sync := func(c int) {
		delta := make(Floats, dim)
		for i := range delta {
			delta[i] = local[c][i] - last[c][i]
		}
		var rep SyncReply
		if err := ps.Sync(SyncArgs{Rel: rel, Delta: delta}, &rep); err != nil {
			t.Fatal(err)
		}
		copy(local[c], rep.Params)
		copy(last[c], rep.Params)
	}
	// Interleave: each round, every client applies one local +1 update to a
	// client-specific coordinate, syncing at staggered times.
	for round := 0; round < rounds; round++ {
		for c := 0; c < clients; c++ {
			local[c][c%dim]++
			if (round+c)%3 == 0 {
				sync(c)
			}
		}
	}
	for c := 0; c < clients; c++ {
		sync(c)
	}
	// Expected totals: coordinate i gained `rounds` for every client with
	// c%dim == i. Small integer sums are exact in float32.
	want := append([]float32(nil), init...)
	for c := 0; c < clients; c++ {
		want[c%dim] += rounds
	}
	var pull SyncReply
	if err := ps.Pull(PullArgs{Rel: rel}, &pull); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if pull.Params[i] != want[i] {
			t.Fatalf("server param %d = %v, want %v", i, pull.Params[i], want[i])
		}
	}
	for c := 0; c < clients; c++ {
		var rep SyncReply
		if err := ps.Sync(SyncArgs{Rel: rel, Delta: make(Floats, dim)}, &rep); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if rep.Params[i] != want[i] {
				t.Fatalf("client %d param %d = %v, want %v", c, i, rep.Params[i], want[i])
			}
		}
	}
	if err := ps.Sync(SyncArgs{Rel: 9, Delta: make(Floats, dim)}, &pull); err == nil {
		t.Fatal("expected error for uninitialised relation")
	}
}

// TestClusterLoopbackIntegration runs the full Figure 2 assembly — lock
// server, sharded partition servers, parameter server, two trainer nodes —
// over loopback TCP for two epochs and checks the work accounting.
func TestClusterLoopbackIntegration(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("HOGWILD workers race with the async param sync by design (§4.2); the RPC/store machinery is covered race-clean by the other dist tests")
	}
	const parts = 4
	g, err := datagen.Knowledge(datagen.KGConfig{
		Entities: 800, Relations: 4, Edges: 6000, NumPartitions: parts, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	order, err := partition.Order(partition.OrderInsideOut, parts, parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(g, order, ClusterConfig{
		Machines:     2,
		SyncInterval: 5 * time.Millisecond,
		Seed:         3,
		// One worker per node: `go test -race` then checks the distribution
		// infrastructure without flagging the trainer's intentional HOGWILD
		// races (covered by the train package's own tests).
		Train: train.Config{Dim: 16, Workers: 1, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Shutdown()

	totalBuckets := 0
	perRank := map[int]int{}
	for epoch := 0; epoch < 2; epoch++ {
		st, err := cl.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if st.Buckets != parts*parts {
			t.Fatalf("epoch %d trained %d buckets, want %d", epoch, st.Buckets, parts*parts)
		}
		if st.Edges != g.Edges.Len() {
			t.Fatalf("epoch %d trained %d edges, want %d", epoch, st.Edges, g.Edges.Len())
		}
		if math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) || st.Loss <= 0 {
			t.Fatalf("epoch %d loss = %v", epoch, st.Loss)
		}
		if len(st.PerNode) != 2 {
			t.Fatalf("epoch %d has %d per-node entries", epoch, len(st.PerNode))
		}
		for _, ns := range st.PerNode {
			totalBuckets += ns.Buckets
			perRank[ns.Rank] += ns.Buckets
			if ns.PeakResident <= 0 {
				t.Fatalf("rank %d reports no resident memory", ns.Rank)
			}
		}
	}
	if totalBuckets != 2*parts*parts {
		t.Fatalf("total buckets %d, want %d", totalBuckets, 2*parts*parts)
	}
	// Over two epochs both machines must have contributed (the scheduler
	// would need pathological timing to starve a node for 32 leases).
	for rank := 0; rank < 2; rank++ {
		if perRank[rank] == 0 {
			t.Fatalf("rank %d trained no buckets across two epochs (perRank %v)", rank, perRank)
		}
	}

	// EvalStore exposes the trained embeddings read-only.
	store, err := cl.EvalStore()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.Acquire(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := g.Schema.Entities[0].PartitionCount(1)
	if sh.Count != wantRows || len(sh.Embs) != wantRows*16 {
		t.Fatalf("eval shard %d rows (embs %d), want %d", sh.Count, len(sh.Embs), wantRows)
	}
	if store.ResidentBytes() <= 0 {
		t.Fatal("eval store reports no resident bytes")
	}
	if err := store.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteStoreBudget checks the checkout cache obeys a memory budget the
// way storage.DiskStore does: hints that do not fit are dropped, and a
// must-have Acquire evicts fetched-but-never-acquired shards (no Put — they
// were never modified) LRU-first.
func TestRemoteStoreBudget(t *testing.T) {
	schema := testSchema(t)
	const dim = 8
	l, addr, err := serve(map[string]any{"PartitionServer": NewPartitionServer(schema, dim, 7, 4)})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	store, err := dialStore(schema, dim, 1, false, []string{addr}, storeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	shard := store.shardBytes(0, 0)
	store.SetMaxResidentBytes(2 * shard)

	// Two hints fit; land them one at a time so the LRU order (by fetch
	// completion) is deterministic: p0 is the older entry.
	fetched := func(p int) bool {
		store.mu.Lock()
		defer store.mu.Unlock()
		e := store.cache[partKey{0, p}]
		return e != nil && e.ready == nil && e.shard != nil
	}
	for _, p := range []int{0, 1} {
		store.Prefetch(0, p)
		for i := 0; i < 1_000_000 && !fetched(p); i++ {
			time.Sleep(time.Microsecond)
		}
		if !fetched(p) {
			t.Fatalf("prefetched shard %d never landed", p)
		}
	}

	// A third hint exceeds the budget: dropped, no cache entry.
	store.Prefetch(0, 2)
	store.mu.Lock()
	cached := store.cache[partKey{0, 2}] != nil
	store.mu.Unlock()
	if sheds := store.IOStats().PrefetchSheds; sheds != 1 || cached {
		t.Fatalf("over-budget hint not dropped: sheds=%d cached=%v", sheds, cached)
	}

	// A must-have evicts the least-recently-fetched unacquired shard.
	if _, err := store.Acquire(0, 2); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	_, p0 := store.cache[partKey{0, 0}]
	store.mu.Unlock()
	evicts := store.IOStats().ForcedEvicts
	if evicts != 1 || p0 {
		t.Fatalf("must-have did not evict LRU prefetched shard: evicts=%d p0 cached=%v", evicts, p0)
	}
	if rb := store.ResidentBytes(); rb > 2*shard {
		t.Fatalf("resident %d exceeds budget %d", rb, 2*shard)
	}
	if err := store.Release(0, 2); err != nil {
		t.Fatal(err)
	}
}
