//go:build race

package dist

// raceDetectorEnabled reports whether this test binary was built with -race.
// The cluster integration test trains relation-parameterised operators with
// HOGWILD workers while the node's background sync adopts global parameter
// blocks — the paper's intended benign asynchrony — so it skips under the
// detector; the RPC/store machinery itself is race-clean and covered by the
// remaining dist tests.
const raceDetectorEnabled = true
