package dist

import (
	"fmt"
	"sync"
)

// ParamServer keeps the shared relation-operator parameters loosely
// consistent across trainers (§4.2). Trainers update relation parameters on
// every batch, so checking them in and out like partitions would serialise
// training; instead each trainer periodically pushes the delta it
// accumulated locally since its last sync and receives the current global
// block back. The global value therefore converges to the initial value
// plus the sum of all trainers' updates, while any trainer's view is stale
// by at most its sync interval — the paper's asynchronous parameter server.
type ParamServer struct {
	mu       sync.Mutex
	params   map[int][]float32
	versions map[int]int64
}

// NewParamServer creates an empty parameter server; relation blocks appear
// as trainers call InitRel.
func NewParamServer() *ParamServer {
	return &ParamServer{params: make(map[int][]float32), versions: make(map[int]int64)}
}

// restore seeds the server with checkpointed relation blocks before any
// trainer connects; InitRel's first-writer-wins rule then makes every
// trainer adopt the restored values instead of fresh initialisation.
func (s *ParamServer) restore(blocks []RelBlock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range blocks {
		s.params[b.Rel] = append([]float32(nil), b.Params...)
	}
}

// InitRel publishes a relation's initial parameters. The first caller's
// block becomes canonical; everyone receives it back, so all trainers start
// identically even if their local initialisation differs.
func (s *ParamServer) InitRel(args InitRelArgs, reply *InitRelReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.params[args.Rel]
	if !ok {
		cur = append([]float32(nil), args.Params...)
		s.params[args.Rel] = cur
	} else if len(cur) != len(args.Params) {
		return fmt.Errorf("dist: relation %d has %d params on server, client sent %d", args.Rel, len(cur), len(args.Params))
	}
	reply.Params = append(Floats(nil), cur...)
	reply.Version = s.versions[args.Rel]
	return nil
}

// InitRelReply returns the canonical initial block.
type InitRelReply struct {
	Params  Floats
	Version int64
}

// Sync applies a client's accumulated delta and returns the new global
// parameters.
func (s *ParamServer) Sync(args SyncArgs, reply *SyncReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.params[args.Rel]
	if !ok {
		return fmt.Errorf("dist: Sync for uninitialised relation %d", args.Rel)
	}
	if len(args.Delta) != len(cur) {
		return fmt.Errorf("dist: Sync delta for relation %d has %d params, want %d", args.Rel, len(args.Delta), len(cur))
	}
	for i, d := range args.Delta {
		cur[i] += d
	}
	s.versions[args.Rel]++
	reply.Params = append(Floats(nil), cur...)
	reply.Version = s.versions[args.Rel]
	return nil
}

// Pull fetches a relation's current global parameters without pushing.
func (s *ParamServer) Pull(args PullArgs, reply *SyncReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.params[args.Rel]
	if !ok {
		return fmt.Errorf("dist: Pull for uninitialised relation %d", args.Rel)
	}
	reply.Params = append(Floats(nil), cur...)
	reply.Version = s.versions[args.Rel]
	return nil
}
