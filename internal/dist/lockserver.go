package dist

import (
	"fmt"
	"sync"

	"pbg/internal/partition"
)

// LockServer is the central bucket-leasing service of §4.2. It wraps
// partition.Scheduler — which enforces pairwise-disjoint in-flight buckets
// and the "established partitions" constraint — with epoch bookkeeping so
// independently-paced trainers stay in lockstep at epoch granularity:
// a trainer asking for buckets of an epoch the server has not started yet is
// told to wait, and one asking for an already-superseded epoch is told that
// epoch is done.
//
// A lease held by a trainer that dies without calling AbandonBucket is never
// reclaimed (there is no heartbeat or timeout), so the epoch stalls — the
// same restart-the-run failure model as the paper's implementation. Lease
// TTLs would need trainer heartbeats to avoid handing a slow trainer's
// partitions to a second writer.
type LockServer struct {
	mu     sync.Mutex
	sched  *partition.Scheduler
	epoch  int                      // 0 until the first StartEpoch
	leases map[partition.Bucket]int // bucket -> holding rank
}

// NewLockServer creates a lock server over the given bucket order. The first
// epoch starts when StartEpoch is called.
func NewLockServer(order []partition.Bucket) *LockServer {
	return &LockServer{
		sched:  partition.NewScheduler(order, false),
		leases: make(map[partition.Bucket]int),
	}
}

// StartEpoch begins the next epoch. All buckets become pending again; the
// set of initialised partitions is retained, so from the second epoch on the
// two-uninitialised-partitions rule no longer throttles parallelism.
func (ls *LockServer) StartEpoch(args StartEpochArgs, reply *StartEpochReply) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if len(ls.leases) > 0 {
		return fmt.Errorf("dist: StartEpoch with %d buckets still leased", len(ls.leases))
	}
	if ls.epoch > 0 {
		ls.sched.Reset()
	}
	ls.epoch++
	reply.Epoch = ls.epoch
	return nil
}

// AcquireBucket leases the next available bucket of args.Epoch.
func (ls *LockServer) AcquireBucket(args AcquireArgs, reply *AcquireReply) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	switch {
	case args.Epoch > ls.epoch:
		// Epoch not started yet: retry after rank 0 calls StartEpoch.
		return nil
	case args.Epoch < ls.epoch:
		// The server has moved on; the requested epoch is complete.
		reply.Done = true
		return nil
	}
	b, ok, done := ls.sched.Acquire(args.Held)
	if done {
		reply.Done = true
		return nil
	}
	if !ok {
		return nil // nothing disjoint available right now: retry
	}
	ls.leases[b] = args.Rank
	reply.Granted = true
	reply.Bucket = b
	return nil
}

// ReleaseBucket completes a lease: the bucket is marked done for this epoch
// and its partitions become available (and count as established).
func (ls *LockServer) ReleaseBucket(args ReleaseArgs, reply *Ack) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	holder, ok := ls.leases[args.Bucket]
	if !ok {
		return fmt.Errorf("dist: release of unleased bucket %v", args.Bucket)
	}
	if holder != args.Rank {
		return fmt.Errorf("dist: rank %d releasing bucket %v leased to rank %d", args.Rank, args.Bucket, holder)
	}
	if args.Epoch != ls.epoch {
		return fmt.Errorf("dist: release of bucket %v for epoch %d, server at %d", args.Bucket, args.Epoch, ls.epoch)
	}
	delete(ls.leases, args.Bucket)
	ls.sched.Release(args.Bucket)
	return nil
}

// AbandonBucket returns a lease without marking the bucket done (trainer
// failure); another trainer will pick it up.
func (ls *LockServer) AbandonBucket(args ReleaseArgs, reply *Ack) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	holder, ok := ls.leases[args.Bucket]
	if !ok {
		return fmt.Errorf("dist: abandon of unleased bucket %v", args.Bucket)
	}
	if holder != args.Rank {
		return fmt.Errorf("dist: rank %d abandoning bucket %v leased to rank %d", args.Rank, args.Bucket, holder)
	}
	delete(ls.leases, args.Bucket)
	ls.sched.Abandon(args.Bucket)
	return nil
}
