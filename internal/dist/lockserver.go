package dist

import (
	"fmt"
	"sync"
	"time"

	"pbg/internal/obs"
	"pbg/internal/partition"
)

// Default RetryAfter hints handed to trainers that could not be granted a
// bucket: polling for an epoch nobody has started is cheap to do rarely,
// while a disjointness conflict usually clears as soon as another trainer
// releases, so it re-polls faster.
const (
	retryAfterNotStarted = 5 * time.Millisecond
	retryAfterContended  = 2 * time.Millisecond
)

// lease is one outstanding bucket grant.
type lease struct {
	rank    int
	token   uint64
	expires time.Time // zero when the server runs without a TTL
}

// LockServer is the central bucket-leasing service of §4.2. It wraps
// partition.Scheduler — which enforces pairwise-disjoint in-flight buckets
// and the "established partitions" constraint — with epoch bookkeeping so
// independently-paced trainers stay in lockstep at epoch granularity:
// a trainer asking for buckets of an epoch the server has not started yet is
// told to wait, and one asking for an already-superseded epoch is told that
// epoch is done.
//
// Lease lifecycle: when built with WithLeaseTTL, every grant carries a
// deadline and a strictly-monotonic fencing token. Trainers extend the
// deadline with Heartbeat; a lease whose deadline passes is expired lazily
// (on the next RPC of any kind) and its bucket is abandoned back to the
// scheduler for re-leasing by a live trainer. The token fences the zombie
// out: a late ReleaseBucket, AbandonBucket, or Heartbeat carrying the old
// token is rejected with a staleLeaseMsg error, and partition servers reject
// shard writes under superseded tokens (see PartitionServer), so two holders
// of the same bucket can never both commit it. Without a TTL the server
// keeps the original fail-stop model: a dead trainer's lease is never
// reclaimed and the epoch stalls.
type LockServer struct {
	mu        sync.Mutex
	order     []partition.Bucket
	sched     *partition.Scheduler
	epoch     int // 0 until the first StartEpoch
	ttl       time.Duration
	now       func() time.Time // test clock hook
	nextToken uint64
	leases    map[partition.Bucket]*lease
	// released records the token that completed each bucket this epoch, so a
	// ReleaseBucket retried after a lost reply succeeds idempotently instead
	// of erroring as "unleased".
	released map[partition.Bucket]uint64

	expiries      *obs.Counter
	fencedRejects *obs.Counter
	leasesHeld    *obs.Gauge
}

// LockOption configures a LockServer at construction (options rather than
// setter methods: net/rpc registration warns about exported methods that do
// not match the RPC signature).
type LockOption func(*LockServer)

// WithLeaseTTL enables lease expiry: grants carry deadline now+d, renewable
// via Heartbeat; expired leases are abandoned for re-leasing. d <= 0 keeps
// leases eternal.
func WithLeaseTTL(d time.Duration) LockOption {
	return func(ls *LockServer) { ls.ttl = d }
}

// WithLockObs publishes the server's lease metrics (expiries, fencing
// rejections, leases held) on h's registry instead of a private quiet hub.
func WithLockObs(h *obs.Hub) LockOption {
	return func(ls *LockServer) {
		if h == nil {
			return
		}
		ls.bindMetrics(h.Reg)
	}
}

// WithRestoredEpoch resumes the server from a checkpoint cut: the current
// epoch is epoch with the done buckets already completed. From epoch 2 on
// every partition counts as established (epoch 1 trained them); a mid-first-
// epoch restore re-establishes only the partitions of done buckets.
func WithRestoredEpoch(epoch int, done []partition.Bucket) LockOption {
	return func(ls *LockServer) {
		if epoch <= 0 {
			return
		}
		ls.epoch = epoch
		ls.sched = partition.NewScheduler(ls.order, epoch >= 2)
		for _, b := range done {
			ls.sched.MarkDone(b)
		}
	}
}

// NewLockServer creates a lock server over the given bucket order. The first
// epoch starts when StartEpoch is called.
func NewLockServer(order []partition.Bucket, opts ...LockOption) *LockServer {
	ls := &LockServer{
		order:    append([]partition.Bucket(nil), order...),
		sched:    partition.NewScheduler(order, false),
		now:      time.Now,
		leases:   make(map[partition.Bucket]*lease),
		released: make(map[partition.Bucket]uint64),
	}
	ls.bindMetrics(obs.NewQuietHub().Reg)
	for _, opt := range opts {
		opt(ls)
	}
	return ls
}

func (ls *LockServer) bindMetrics(reg *obs.Registry) {
	ls.expiries = reg.Counter("pbg_dist_lease_expiries_total")
	ls.fencedRejects = reg.Counter(`pbg_dist_fenced_rejects_total{server="lock"}`)
	ls.leasesHeld = reg.Gauge("pbg_dist_leases_held")
}

// expireLocked lazily reclaims leases whose deadline has passed: the lease
// record is dropped (so the holder's token goes stale) and the bucket is
// abandoned back to the scheduler for re-leasing. It runs at the start of
// every RPC, so expiry needs no background sweeper and a paused test clock
// makes it fully deterministic. Note the dead holder may still have the
// bucket's partitions checked out in its memory — that is exactly what the
// fencing tokens exist for.
func (ls *LockServer) expireLocked() {
	if ls.ttl <= 0 {
		return
	}
	now := ls.now()
	for b, l := range ls.leases {
		if now.After(l.expires) {
			delete(ls.leases, b)
			ls.sched.Abandon(b)
			ls.expiries.Inc()
		}
	}
	ls.leasesHeld.Set(int64(len(ls.leases)))
}

// StartEpoch begins the next epoch. All buckets become pending again; the
// set of initialised partitions is retained, so from the second epoch on the
// two-uninitialised-partitions rule no longer throttles parallelism.
func (ls *LockServer) StartEpoch(args StartEpochArgs, reply *StartEpochReply) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.expireLocked()
	if len(ls.leases) > 0 {
		return fmt.Errorf("dist: StartEpoch with %d buckets still leased", len(ls.leases))
	}
	if ls.epoch > 0 {
		ls.sched.Reset()
	}
	ls.epoch++
	ls.released = make(map[partition.Bucket]uint64)
	reply.Epoch = ls.epoch
	return nil
}

// AcquireBucket leases the next available bucket of args.Epoch.
func (ls *LockServer) AcquireBucket(args AcquireArgs, reply *AcquireReply) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.expireLocked()
	switch {
	case args.Epoch > ls.epoch:
		// Epoch not started yet: retry after rank 0 calls StartEpoch.
		reply.RetryAfter = retryAfterNotStarted
		return nil
	case args.Epoch < ls.epoch:
		// The server has moved on; the requested epoch is complete.
		reply.Done = true
		return nil
	}
	b, ok, done := ls.sched.Acquire(args.Held)
	if done {
		reply.Done = true
		return nil
	}
	if !ok {
		// Nothing disjoint available right now: retry after a release (or,
		// with a TTL, at latest after the next expiry could free a bucket).
		reply.RetryAfter = retryAfterContended
		return nil
	}
	ls.nextToken++
	l := &lease{rank: args.Rank, token: ls.nextToken}
	if ls.ttl > 0 {
		l.expires = ls.now().Add(ls.ttl)
	}
	ls.leases[b] = l
	ls.leasesHeld.Set(int64(len(ls.leases)))
	reply.Granted = true
	reply.Bucket = b
	reply.Token = l.token
	reply.TTL = ls.ttl
	return nil
}

// Heartbeat extends the lease on args.Bucket to now+TTL. A heartbeat whose
// lease has expired or been re-granted is rejected with a staleLeaseMsg
// error, telling the (slow or partitioned) holder it must abandon the
// bucket's results.
func (ls *LockServer) Heartbeat(args HeartbeatArgs, reply *Ack) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.expireLocked()
	l, ok := ls.leases[args.Bucket]
	if !ok || l.token != args.Token {
		ls.fencedRejects.Inc()
		return fmt.Errorf("%s: heartbeat for bucket %v token %d (expired or re-granted)", staleLeaseMsg, args.Bucket, args.Token)
	}
	if args.Epoch != ls.epoch {
		return fmt.Errorf("%s: heartbeat for bucket %v epoch %d, server at %d", staleLeaseMsg, args.Bucket, args.Epoch, ls.epoch)
	}
	if ls.ttl > 0 {
		l.expires = ls.now().Add(ls.ttl)
	}
	return nil
}

// ReleaseBucket completes a lease: the bucket is marked done for this epoch
// and its partitions become available (and count as established). The call
// is idempotent under its token, so a retried release after a lost reply
// succeeds; a release under a superseded token is rejected.
func (ls *LockServer) ReleaseBucket(args ReleaseArgs, reply *Ack) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.expireLocked()
	l, ok := ls.leases[args.Bucket]
	if !ok {
		if args.Token != 0 && ls.released[args.Bucket] == args.Token {
			return nil // duplicate of a release that already landed
		}
		if tok := ls.released[args.Bucket]; tok != 0 || args.Token != 0 {
			ls.fencedRejects.Inc()
			return fmt.Errorf("%s: release of bucket %v token %d by rank %d (lease expired or re-granted)", staleLeaseMsg, args.Bucket, args.Token, args.Rank)
		}
		return fmt.Errorf("dist: release of unleased bucket %v", args.Bucket)
	}
	if args.Token != l.token {
		ls.fencedRejects.Inc()
		return fmt.Errorf("%s: release of bucket %v under token %d, current lease token %d", staleLeaseMsg, args.Bucket, args.Token, l.token)
	}
	if l.rank != args.Rank {
		return fmt.Errorf("dist: rank %d releasing bucket %v leased to rank %d", args.Rank, args.Bucket, l.rank)
	}
	if args.Epoch != ls.epoch {
		return fmt.Errorf("dist: release of bucket %v for epoch %d, server at %d", args.Bucket, args.Epoch, ls.epoch)
	}
	delete(ls.leases, args.Bucket)
	ls.released[args.Bucket] = l.token
	ls.leasesHeld.Set(int64(len(ls.leases)))
	ls.sched.Release(args.Bucket)
	return nil
}

// AbandonBucket returns a lease without marking the bucket done (trainer
// failure); another trainer will pick it up. Abandoning a lease that has
// already expired (or was never granted under this token) is a success —
// the bucket is back in the pool either way.
func (ls *LockServer) AbandonBucket(args ReleaseArgs, reply *Ack) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.expireLocked()
	l, ok := ls.leases[args.Bucket]
	if !ok {
		if args.Token != 0 {
			return nil // expired and already abandoned server-side
		}
		return fmt.Errorf("dist: abandon of unleased bucket %v", args.Bucket)
	}
	if args.Token != 0 && args.Token != l.token {
		// The bucket has been re-leased; abandoning would kill the new
		// holder's lease. The zombie's own lease is already gone.
		return nil
	}
	if args.Token == 0 && l.rank != args.Rank {
		return fmt.Errorf("dist: rank %d abandoning bucket %v leased to rank %d", args.Rank, args.Bucket, l.rank)
	}
	delete(ls.leases, args.Bucket)
	ls.leasesHeld.Set(int64(len(ls.leases)))
	ls.sched.Abandon(args.Bucket)
	return nil
}

// EpochState snapshots epoch progress for checkpointing: the current epoch,
// the buckets completed so far in it, and the number of outstanding leases.
func (ls *LockServer) EpochState(args EpochStateArgs, reply *EpochStateReply) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.expireLocked()
	reply.Epoch = ls.epoch
	reply.Done = ls.sched.DoneBuckets()
	reply.Leases = len(ls.leases)
	return nil
}
