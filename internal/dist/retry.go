package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"pbg/internal/obs"
	"pbg/internal/rng"
)

// errCallTimeout marks an RPC call that exceeded RetryPolicy.CallTimeout.
// The underlying connection is torn down (the reply may still arrive and
// would otherwise desynchronise the stream), so the error is transient: the
// next attempt redials.
var errCallTimeout = errors.New("dist: rpc call timeout")

// RetryPolicy bounds a retryClient's patience. The zero value means "use
// defaults" — every field is defaulted independently, so tests can shorten
// just the knob they care about.
type RetryPolicy struct {
	// DialTimeout caps each connection attempt (default 5s).
	DialTimeout time.Duration
	// CallTimeout caps each individual RPC attempt (default 60s — partition
	// swaps move multi-megabyte shards, so this is deliberately generous).
	CallTimeout time.Duration
	// MaxAttempts is the total number of tries per Call, first included
	// (default 4). Only transient failures are retried.
	MaxAttempts int
	// BaseBackoff is the sleep before the second attempt; it doubles per
	// retry up to MaxBackoff, with jitter in [½,1]× (defaults 5ms / 500ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.DialTimeout <= 0 {
		p.DialTimeout = 5 * time.Second
	}
	if p.CallTimeout <= 0 {
		p.CallTimeout = 60 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	return p
}

// retryClient wraps one *rpc.Client with connect/call timeouts, bounded
// exponential backoff with jitter, and reconnect-on-broken-pipe, so a
// restarted server or a dropped packet costs a retry instead of a hung or
// failed epoch. Server-side errors (rpc.ServerError, e.g. a fencing
// rejection) pass through untouched on the first attempt — only transport
// failures are retried. All methods are safe for concurrent use; net/rpc
// multiplexes concurrent calls on the shared connection.
type retryClient struct {
	addr   string
	name   string // human label for errors ("lock server", "partition server")
	tag    string // chaos identity ("rank0", "cluster"); empty = no chaos
	policy RetryPolicy
	chaos  *Chaos

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	c      *rpc.Client
	closed bool
	jit    *rng.RNG

	retries    *obs.Counter
	reconnects *obs.Counter
}

// dialRetry connects to addr with the policy's dial timeout. The returned
// client lazily redials after transport errors.
func dialRetry(name, addr string, policy RetryPolicy, chaos *Chaos, tag string) (*retryClient, error) {
	rc := &retryClient{
		addr:   addr,
		name:   name,
		tag:    tag,
		policy: policy.withDefaults(),
		chaos:  chaos,
		jit:    rng.New(0xC0FFEE ^ uint64(len(addr))<<16 ^ uint64(len(name))),
	}
	rc.ctx, rc.cancel = context.WithCancel(context.Background())
	rc.bindMetrics(obs.NewQuietHub().Reg)
	c, err := rc.dial()
	if err != nil {
		return nil, err
	}
	rc.c = c
	return rc, nil
}

// bindMetrics (re)binds the retry/reconnect counters, so remoteStore.SetObs
// can move an already-dialed client onto the run's registry.
func (rc *retryClient) bindMetrics(reg *obs.Registry) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.retries = reg.Counter("pbg_dist_rpc_retries_total")
	rc.reconnects = reg.Counter("pbg_dist_rpc_reconnects_total")
}

func (rc *retryClient) dial() (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", rc.addr, rc.policy.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s %s: %w", rc.name, rc.addr, err)
	}
	return rpc.NewClient(conn), nil
}

// client returns the live connection, redialing if a previous attempt tore
// it down.
func (rc *retryClient) client() (*rpc.Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, rpc.ErrShutdown
	}
	if rc.c == nil {
		c, err := rc.dial()
		if err != nil {
			return nil, err
		}
		rc.c = c
		rc.reconnects.Inc()
	}
	return rc.c, nil
}

// dropConn discards the connection that produced a transport error, so the
// next attempt redials. Only the connection that failed is dropped — a
// concurrent caller may already have replaced it.
func (rc *retryClient) dropConn(c *rpc.Client) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.c == c {
		rc.c = nil
	}
	_ = c.Close()
}

// callOnce performs a single attempt with the per-call timeout, applying any
// chaos rule for this client's tag first.
func (rc *retryClient) callOnce(method string, args, reply any) error {
	if rc.chaos != nil {
		if err := rc.chaos.before(rc.tag, method); err != nil {
			return err
		}
	}
	c, err := rc.client()
	if err != nil {
		return err
	}
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(rc.policy.CallTimeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		if call.Error != nil && isTransientRPC(call.Error) {
			rc.dropConn(c)
		}
		if call.Error == nil && rc.chaos != nil {
			if err := rc.chaos.after(rc.tag, method, func() error {
				return c.Call(method, args, reply)
			}); err != nil {
				return err
			}
		}
		return call.Error
	case <-timer.C:
		rc.dropConn(c) // the late reply would desynchronise the stream
		return fmt.Errorf("%w: %s %s after %v", errCallTimeout, rc.name, method, rc.policy.CallTimeout)
	case <-rc.ctx.Done():
		return rpc.ErrShutdown
	}
}

// Call invokes method with retries: transient transport failures back off
// exponentially (with jitter) and redial; server-returned errors and
// non-transient failures are returned immediately.
func (rc *retryClient) Call(method string, args, reply any) error {
	policy := rc.policy
	backoff := policy.BaseBackoff
	var err error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.retries.Inc()
			d := backoff/2 + time.Duration(rc.jitterFloat()*float64(backoff/2))
			select {
			case <-time.After(d):
			case <-rc.ctx.Done():
				return rpc.ErrShutdown
			}
			backoff *= 2
			if backoff > policy.MaxBackoff {
				backoff = policy.MaxBackoff
			}
		}
		err = rc.callOnce(method, args, reply)
		if err == nil || !isTransientRPC(err) {
			return err
		}
	}
	return fmt.Errorf("dist: %s %s failed after %d attempts: %w", rc.name, method, policy.MaxAttempts, err)
}

func (rc *retryClient) jitterFloat() float64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.jit.Float64()
}

// Close shuts the client down; in-flight Calls return rpc.ErrShutdown.
func (rc *retryClient) Close() error {
	rc.cancel()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.closed = true
	if rc.c != nil {
		err := rc.c.Close()
		rc.c = nil
		return err
	}
	return nil
}
