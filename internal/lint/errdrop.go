package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags resource-teardown calls whose error return is silently
// discarded as a bare statement: Close, Flush, Release, Drain, and Sync all
// surface deferred write-back failures in this codebase (DiskStore's async
// snapshot errors are sticky and deliver on exactly these calls — dropping
// them drops a corrupted-checkpoint signal). A discarded error must be
// explicit: assign it (`_ = f.Close()`) or handle it.
//
// `defer f.Close()` is exempt: it is the accepted teardown idiom for
// read-only handles, and wrapping every defer in a closure costs more than
// it catches. Deferred *write* paths should use named-error wrappers
// instead, which this analyzer leaves to review.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "Close/Flush/Release/Drain/Sync errors must not be silently discarded",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch name {
			case "Close", "Flush", "Release", "Drain", "Sync":
			default:
				return true
			}
			if !returnsError(pass.TypesInfo, call) {
				return true
			}
			recv := ""
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				recv = exprString(sel.X) + "."
			}
			pass.Reportf(call.Pos(), "error from %s%s discarded; handle it or make the drop explicit with `_ =`", recv, name)
			return true
		})
	}
	return nil
}

// returnsError reports whether any of the call's results is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
