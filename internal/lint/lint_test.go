package lint

import "testing"

// Each analyzer is pinned by a fixture package under testdata/src/<name>:
// `// want "re"` comments mark the lines that must fire, and every other
// line must stay silent. The fixtures double as a catalogue of the exact
// idioms the analyzers accept and reject.

func TestHotPathAlloc(t *testing.T)  { RunFixture(t, HotPathAlloc, "hotpath") }
func TestRangeMapDet(t *testing.T)   { RunFixture(t, RangeMapDet, "rangemapdet") }
func TestLockCall(t *testing.T)      { RunFixture(t, LockCall, "lockcall") }
func TestObsHandle(t *testing.T)     { RunFixture(t, ObsHandle, "obshandle") }
func TestPairedRelease(t *testing.T) { RunFixture(t, PairedRelease, "pairedrelease") }
func TestErrDrop(t *testing.T)       { RunFixture(t, ErrDrop, "errdrop") }

// TestRepoIsClean is the zero-finding baseline: the full suite over the
// whole module must report nothing. A failure here is either a real
// regression or a new idiom the analyzers need to learn — fix the code or
// add a reasoned //lint:ignore, never delete the test.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped with -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
