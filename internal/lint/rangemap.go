package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RangeMapDet flags argmin/argmax selections fed by map iteration: a
// `for … := range m` over a map whose body conditionally assigns to state
// declared outside the loop under a </> comparison, with no deterministic
// tie-break in the condition. This is the exact bug class PR 5 fixed twice
// (SwapCostUnderBuffer and OptimizeOrder victim selection drifting run to
// run): when two candidates tie, map iteration order picks the winner.
//
// A condition that also compares with == (the tie-break idiom
// `cost < best || (cost == best && k < bestKey)`) is accepted; so is
// iterating a sorted key slice, which this analyzer never sees a map range
// for.
var RangeMapDet = &Analyzer{
	Name: "rangemapdet",
	Doc:  "min/max/argbest selection must not depend on map iteration order",
	Run:  runRangeMapDet,
}

func runRangeMapDet(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !hasOrderedCmp(ifs.Cond) || hasTieBreak(ifs.Cond) {
			return true
		}
		// The guarded branch must write selection state that outlives the
		// loop; writes to loop-local state are just per-iteration logic.
		var sel ast.Node
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || asg.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range asg.Lhs {
				if assignsOutside(info, lhs, rs) {
					sel = asg
					return false
				}
			}
			return true
		})
		if sel != nil {
			pass.Reportf(sel.Pos(), "argbest selection over map iteration order: ties resolve nondeterministically; iterate sorted keys or add a deterministic tie-break (… || (cmp == best && key < bestKey))")
		}
		return true
	})
}

// hasOrderedCmp reports whether e contains a < <= > >= comparison.
func hasOrderedCmp(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				found = true
			}
		}
		return !found
	})
	return found
}

// hasTieBreak reports whether e contains an == comparison — the shape of an
// explicit deterministic tie-break clause.
func hasTieBreak(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.EQL {
			found = true
		}
		return !found
	})
	return found
}

// assignsOutside reports whether lhs writes state declared outside the range
// statement. Non-identifier targets (fields, index expressions) are treated
// as outside: their container almost always outlives the loop.
func assignsOutside(info *types.Info, lhs ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return true
	}
	if id.Name == "_" {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}
