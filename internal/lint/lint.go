// Package lint is the repo's static-analysis suite: a set of analyzers that
// machine-enforce invariants the compiler cannot see — hot paths staying
// allocation-free, ordering decisions never resting on map iteration order,
// no blocking I/O while a mutex is held, obs metric handles resolved at
// construction, and every store Acquire paired with a reachable Release.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature but is
// stdlib-only: packages are loaded with `go list -export -json` and
// typechecked against the build cache's export data (the same mechanism
// `go vet`'s unitchecker uses), so the suite runs offline at `go vet` cost.
//
// Each analyzer is pinned by fixture tests under testdata/src (see
// RunFixture), and cmd/pbg-lint drives the whole suite over the repo in CI.
//
// Findings are suppressed with an explanatory directive on the offending
// line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive does not suppress.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run receives a fully typechecked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer encodes.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one typechecked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings (suppression directives applied), sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		diags = suppress(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	names  []string // analyzer names, or ["all"]
	reason string
}

func (d ignoreDirective) covers(analyzer string) bool {
	if d.reason == "" {
		return false // an unexplained suppression does not suppress
	}
	for _, n := range d.names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// suppress drops findings covered by a //lint:ignore directive on the same
// line or the line directly above.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	directives := map[string]map[int][]ignoreDirective{} // file -> line -> directives
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				pos := pkg.Fset.Position(c.Pos())
				if directives[pos.Filename] == nil {
					directives[pos.Filename] = map[int][]ignoreDirective{}
				}
				directives[pos.Filename][pos.Line] = append(directives[pos.Filename][pos.Line], ignoreDirective{
					names:  strings.Split(names, ","),
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		lines := directives[d.Position.Filename]
		covered := false
		for _, dir := range append(lines[d.Position.Line], lines[d.Position.Line-1]...) {
			if dir.covers(d.Analyzer) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept
}

// --- shared helpers used by the analyzers ---

// pkgPathHasSuffix reports whether a type's defining package path ends with
// suffix at a path-segment boundary. Matching by suffix rather than exact
// path lets fixture stubs under testdata mirror real repo packages.
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// namedRecvType resolves the named type (and its package) of a method call's
// receiver, looking through pointers.
func namedRecvType(info *types.Info, call *ast.CallExpr) (*types.Named, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// recvFromPkg reports whether call is a method call whose receiver's named
// type is declared in a package whose path ends with one of the suffixes,
// returning the type name.
func recvFromPkg(info *types.Info, call *ast.CallExpr, suffixes ...string) (string, bool) {
	named, ok := namedRecvType(info, call)
	if !ok {
		return "", false
	}
	for _, s := range suffixes {
		if pkgPathHasSuffix(named.Obj().Pkg(), s) {
			return named.Obj().Name(), true
		}
	}
	return "", false
}

// calleeName returns the method or function name of a call, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// calleePkg returns the package of the called function/method, or nil (e.g.
// for builtins, conversions, and calls through function-typed variables).
func calleePkg(info *types.Info, call *ast.CallExpr) *types.Package {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	return obj.Pkg()
}

// isTestFile reports whether the file defining pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// funcDecls walks every function declaration in the pass's files.
func funcDecls(pass *Pass, fn func(*ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// exprString renders an expression compactly for diagnostics and for
// matching lock/unlock receivers textually.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// metricNameRE is the repo's metric naming convention: pbg_<pkg>_<name>,
// lowercase, with an optional {label="value",...} suffix (obs.Registry
// treats the whole string as the series key; WritePrometheus emits it
// verbatim).
var metricNameRE = regexp.MustCompile(`^pbg_[a-z0-9]+(_[a-z0-9]+)+(\{[a-z0-9_]+="[^"{}]*"(,[a-z0-9_]+="[^"{}]*")*\})?$`)
