// Fixture for the obshandle analyzer: registry lookups belong in
// constructors, and metric names follow pbg_<pkg>_<name>.
package obshandle

import "pbg/internal/obs"

type server struct {
	reg  *obs.Registry
	hits *obs.Counter
	lat  *obs.Histogram
}

// newServer resolves handles at construction — the approved shape.
func newServer(reg *obs.Registry) *server {
	return &server{
		reg:  reg,
		hits: reg.Counter("pbg_obshandle_hits_total"),
		lat:  reg.Histogram(`pbg_obshandle_rpc_ns{method="get"}`),
	}
}

// newBadName is a constructor, but the literal violates the naming scheme.
func newBadName(reg *obs.Registry) *obs.Counter {
	return reg.Counter("requests") // want `metric name "requests" does not match`
}

// bindMetrics rebinds handles onto a new registry — also construction-time.
func (s *server) bindMetrics(reg *obs.Registry) {
	s.reg = reg
	s.hits = reg.Counter("pbg_obshandle_hits_total")
}

// handle is a request path: per-operation lookups take the registry mutex.
func (s *server) handle() {
	s.reg.Counter("pbg_obshandle_hits_total").Inc() // want `obs\.Registry\.Counter outside a constructor`
	s.hits.Inc()
}

func (s *server) observeDepth(d int64) {
	g := s.reg.Gauge("pbg_obshandle_queue_depth") // want `obs\.Registry\.Gauge outside a constructor`
	g.Set(d)
}
