// Fixture for the lockcall analyzer: no blocking operations while a mutex
// is held.
package lockcall

import (
	"net/rpc"
	"os"
	"sync"
	"time"

	"pbg/internal/storage"
)

type S struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (s *S) channelBad() {
	s.mu.Lock()
	<-s.ch    // want "channel receive while holding s.mu"
	s.ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func (s *S) sleepUnderDefer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
}

func (s *S) diskBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = os.ReadFile("state") // want `os\.ReadFile while holding s\.mu`
}

func (s *S) rpcBad(c *rpc.Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = c.Call("M.F", 1, nil) // want `rpc c\.Call while holding s\.mu`
}

func (s *S) storageBad(st *storage.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = st.Flush() // want `storage Store\.Flush while holding s\.mu`
}

func (s *S) selectBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select while holding s.mu"
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// unlockFirst is the approved shape: drop the lock, then block.
func (s *S) unlockFirst() {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	if n == 0 {
		time.Sleep(time.Millisecond)
	}
}

// unlockWaitRelock is the condition-wait idiom (dist remoteStore.Acquire):
// the lock is dropped around the blocking wait and retaken after.
func (s *S) unlockWaitRelock() {
	s.mu.Lock()
	for s.n == 0 {
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		s.mu.Lock()
	}
	s.n--
	s.mu.Unlock()
}

// earlyUnlockReturn: the branch unlocks before returning, so the
// fall-through still holds but the branch body is clean.
func (s *S) earlyUnlockReturn() {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
		return
	}
	s.n--
	s.mu.Unlock()
}

// closureEscapes: function literals are not interpreted as running under
// the lock — they usually run after release.
func (s *S) closureEscapes() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		time.Sleep(time.Millisecond)
	}
}
