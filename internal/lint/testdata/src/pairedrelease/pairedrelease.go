// Fixture for the pairedrelease analyzer: every store Acquire needs a
// Release reachable on all exits.
package pairedrelease

import "pbg/internal/storage"

type holder struct {
	sh *storage.Shard
	st *storage.Store
}

func use(sh *storage.Shard) error { return nil }

// leakyReturn leaks on the early return: the shard stays pinned forever.
func leakyReturn(st *storage.Store) error {
	sh, err := st.Acquire(0, 0)
	if err != nil {
		return err
	}
	if len(sh.Embs) == 0 {
		return nil // want "return with 1 outstanding store Acquire"
	}
	return st.Release(0, 0)
}

// leakFallThrough never releases at all.
func leakFallThrough(st *storage.Store) {
	sh, _ := st.Acquire(0, 0) // want "store Acquire without a Release on the fall-through exit of leakFallThrough"
	_ = use(sh)
}

// deferredRelease covers every exit with one defer.
func deferredRelease(st *storage.Store) error {
	sh, err := st.Acquire(0, 0)
	if err != nil {
		return err
	}
	defer func() { _ = st.Release(0, 0) }()
	return use(sh)
}

// errBranchHoldsNothing: a failed Acquire pins nothing, so returning from
// the error branch is fine.
func errBranchHoldsNothing(st *storage.Store) error {
	if _, err := st.Acquire(0, 0); err != nil {
		return err
	}
	return st.Release(0, 0)
}

// bestEffortEvict is the discardPrefetched idiom: acquire-then-release,
// ignoring a failed acquire (which holds nothing).
func bestEffortEvict(st *storage.Store, parts []int) {
	for _, p := range parts {
		if _, err := st.Acquire(0, p); err == nil {
			_ = st.Release(0, p)
		}
	}
}

// transferToField hands the refcount to the holder, whose close pairs it.
func transferToField(h *holder, st *storage.Store) error {
	sh, err := st.Acquire(0, 0)
	if err != nil {
		return err
	}
	h.sh = sh
	h.st = st
	return nil
}

// cleanupClosure is the runEpochPipelined idiom: a local closure releases
// everything acquired so far, and is invoked on both error and success.
func cleanupClosure(st *storage.Store) error {
	n := 0
	release := func() {
		for i := 0; i < n; i++ {
			_ = st.Release(0, i)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Acquire(0, i); err != nil {
			release()
			return err
		}
		n++
	}
	release()
	return nil
}

// bulkReleaseLoop releases every held shard in one loop before returning.
func bulkReleaseLoop(st *storage.Store) error {
	for p := 0; p < 3; p++ {
		if _, err := st.Acquire(0, p); err != nil {
			return err
		}
	}
	for p := 0; p < 3; p++ {
		if err := st.Release(0, p); err != nil {
			return err
		}
	}
	return nil
}
