// Fixture for the rangemapdet analyzer: argbest selection over map
// iteration order is nondeterministic on ties.
package rangemapdet

type state struct {
	best int
	key  string
}

// argbestBad is the PR-5 bug class: the winner on a cost tie depends on map
// iteration order.
func argbestBad(costs map[string]int) string {
	best := ""
	bestCost := int(^uint(0) >> 1)
	for k, c := range costs {
		if c < bestCost {
			bestCost = c
			best = k // want "argbest selection over map iteration order"
		}
	}
	return best
}

// argbestField writes the selection into a struct that outlives the loop.
func argbestField(s *state, costs map[string]int) {
	for k, c := range costs {
		if c < s.best {
			s.best = c
			s.key = k // want "argbest selection over map iteration order"
		}
	}
}

// tieBreak carries the deterministic tie-break clause, so ties cannot
// resolve by iteration order.
func tieBreak(costs map[string]int) string {
	best := ""
	bestCost := int(^uint(0) >> 1)
	for k, c := range costs {
		if c < bestCost || (c == bestCost && k < best) {
			bestCost = c
			best = k
		}
	}
	return best
}

// sortedKeys iterates a slice, which has a defined order.
func sortedKeys(keys []string, costs map[string]int) string {
	best := ""
	bestCost := int(^uint(0) >> 1)
	for _, k := range keys {
		if c := costs[k]; c < bestCost {
			bestCost = c
			best = k
		}
	}
	return best
}

// loopLocal only writes per-iteration state; nothing outlives the loop.
func loopLocal(costs map[string]int) int {
	total := 0
	for _, c := range costs {
		clamped := 0
		if c < 100 {
			clamped = c
		}
		total += clamped
	}
	return total
}
