// Fixture for the hotpathalloc analyzer: //pbg:hotpath functions must stay
// free of allocation and scheduling hazards.
package hotpath

import "fmt"

func release()   {}
func run()       {}
func sink(v any) { _ = v }

//pbg:hotpath
func bad(xs []int, m map[int]int) int {
	defer release()              // want "defer in hot path"
	go run()                     // want "goroutine launch in hot path"
	f := func() int { return 1 } // want "closure literal in hot path"
	total := 0
	for k, v := range m { // want "map iteration in hot path"
		total += k + v
	}
	fmt.Println(total) // want `fmt\.Println in hot path`
	var ys []int
	ys = append(xs, 1) // want "append in hot path bad does not write back to its own first argument"
	sink(total)        // want "argument total converts to interface"
	return f() + len(ys)
}

// good shows the approved idioms: self-appends reuse the buffer, constants
// box statically, and panics with constant messages stay allocation-free.
//
//pbg:hotpath
func good(xs []int, m map[int]int, keys []int) int {
	if m == nil {
		panic("hotpath: nil map")
	}
	total := 0
	for _, k := range keys { // sorted keys, not the map itself
		total += m[k]
	}
	xs = append(xs, total)     // self-append: writes back to its own slice
	xs = append(xs[:0], 1, 2)  // truncate-and-refill reuses the buffer
	sink("constant is static") // constants box into static descriptors
	return total + len(xs)
}

// suppressed pins the //lint:ignore contract: a reasoned directive on the
// line above the finding silences it.
//
//pbg:hotpath
func suppressed() {
	//lint:ignore hotpathalloc fixture demonstrating that reasoned suppressions are honored
	defer release()
}

// unannotated functions may do whatever they like.
func unannotated(m map[int]int) {
	defer release()
	for range m {
		fmt.Println("fine here")
	}
}
