// Package storage is a fixture stub mirroring the real pbg/internal/storage
// refcounting surface the pairedrelease and lockcall analyzers key on.
// Analyzers match package paths by suffix, so this stub triggers the same
// logic as the real package.
package storage

// Shard is one partition's embedding block.
type Shard struct {
	Embs []float32
}

// Store hands out refcounted shards.
type Store struct{}

// Acquire pins shard (t, p) and returns it.
func (s *Store) Acquire(t, p int) (*Shard, error) { return &Shard{}, nil }

// Release drops one reference to shard (t, p).
func (s *Store) Release(t, p int) error { return nil }

// Prefetch hints that shard (t, p) will be acquired soon.
func (s *Store) Prefetch(t, p int) {}

// Flush persists dirty shards.
func (s *Store) Flush() error { return nil }

// Drain blocks until async write-backs complete.
func (s *Store) Drain() error { return nil }

// Close flushes and shuts the store down.
func (s *Store) Close() error { return nil }
