// Package obs is a fixture stub mirroring the real pbg/internal/obs API
// surface the obshandle analyzer keys on: a mutex-guarded Registry that
// resolves Counter/Gauge/Histogram handles by name. Analyzers match package
// paths by suffix, so this stub triggers the same logic as the real package.
package obs

// Counter is a monotonic metric handle.
type Counter struct{ v int64 }

// Inc increments the counter.
func (c *Counter) Inc() { c.v++ }

// Gauge is a set-to-current-value metric handle.
type Gauge struct{ v int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v = v }

// Histogram is a distribution metric handle.
type Histogram struct{ n int64 }

// Observe records one sample.
func (h *Histogram) Observe(v int64) { h.n++ }

// Registry resolves metric handles by name (mutex-guarded in the real
// implementation — which is exactly why lookups belong in constructors).
type Registry struct{}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }
