// Fixture for the errdrop analyzer: teardown errors must not vanish as
// bare statements.
package errdrop

import "os"

type conn struct{}

func (c *conn) Close() error   { return nil }
func (c *conn) Flush() error   { return nil }
func (c *conn) Release() error { return nil }
func (c *conn) Drain() error   { return nil }
func (c *conn) Stop()          {} // no error result

func dropped(c *conn) {
	c.Close()   // want `error from c\.Close discarded`
	c.Flush()   // want `error from c\.Flush discarded`
	c.Release() // want `error from c\.Release discarded`
	c.Drain()   // want `error from c\.Drain discarded`
}

func handled(c *conn) error {
	if err := c.Flush(); err != nil {
		return err
	}
	_ = c.Drain()   // explicit discard is the author saying "I mean it"
	defer c.Close() // the accepted read-only teardown idiom
	c.Stop()        // no error to drop
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	return f.Close()
}
