package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// ObsHandle enforces the observability layer's two conventions (PR 6):
//
//  1. obs.Registry lookups (Counter/Gauge/Histogram by name) are map-guarded
//     by a mutex, so handles must be resolved at construction — in a New*/
//     init/bind*-style function — and cached in struct fields, never looked
//     up per operation on a hot or warm path.
//  2. Metric-name literals follow pbg_<pkg>_<name>, lowercase, with an
//     optional {label="value"} suffix, so /metrics stays greppable and
//     dashboards survive refactors.
//
// The obs package itself (implementation and its tests) is exempt; _test.go
// files elsewhere are exempt from the construction rule (tests legitimately
// look handles up to read them) but not from the naming rule.
var ObsHandle = &Analyzer{
	Name: "obshandle",
	Doc:  "obs.Registry lookups belong in constructors; metric names must match pbg_<pkg>_…",
	Run:  runObsHandle,
}

func runObsHandle(pass *Pass) error {
	if pkgPathHasSuffix(pass.Pkg, "internal/obs") || strings.HasSuffix(pass.Pkg.Path(), "internal/obs_test") {
		return nil
	}
	funcDecls(pass, func(fd *ast.FuncDecl) {
		inConstructor := isConstructorish(fd.Name.Name)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch name {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			if tn, ok := recvFromPkg(pass.TypesInfo, call, "internal/obs"); !ok || tn != "Registry" {
				return true
			}
			if !inConstructor && !isTestFile(pass.Fset, call.Pos()) {
				pass.Reportf(call.Pos(), "obs.Registry.%s outside a constructor: resolve the handle in New*/init/bind* and cache it in a field (registry lookups take the registry mutex)", name)
			}
			if len(call.Args) > 0 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					if s, err := strconv.Unquote(lit.Value); err == nil && !metricNameRE.MatchString(s) {
						pass.Reportf(lit.Pos(), "metric name %q does not match pbg_<pkg>_<name> (lowercase, optional {label=%q} suffix)", s, "value")
					}
				}
			}
			return true
		})
	})
	return nil
}

// isConstructorish reports whether a function name marks a construction-time
// context where registry lookups are expected: New*/new* constructors, init
// functions, and the bind/set-metrics idioms (bindMetrics, newTrainMetrics,
// SetObs).
func isConstructorish(name string) bool {
	switch {
	case strings.HasPrefix(name, "New"), strings.HasPrefix(name, "new"),
		strings.HasPrefix(name, "init"), name == "init",
		strings.Contains(name, "Metrics"), strings.Contains(name, "Obs"),
		strings.HasPrefix(name, "bind"):
		return true
	}
	return false
}
