package lint

import (
	"go/ast"
	"go/types"
)

// HotPathDirective marks a function whose body must stay allocation-free:
// the HOGWILD worker loop, the vec kernels, the serve scan/heap path, and
// the DiskStore fast paths. The pipelined executor's throughput (PR 2) rests
// on these paths never touching the allocator or the scheduler per edge.
const HotPathDirective = "//pbg:hotpath"

// HotPathAlloc flags allocation and scheduling hazards inside functions
// annotated //pbg:hotpath: fmt calls, closure literals, defer, go
// statements, map iteration, non-self appends (append must write back to
// its own first argument, the amortized-zero-alloc buffer-reuse idiom), and
// implicit interface conversions at call sites (which box the value).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions annotated //pbg:hotpath must stay free of allocation and scheduling hazards",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		if !hasDirective(fd.Doc, HotPathDirective) {
			return
		}
		checkHotBody(pass, fd)
	})
	return nil
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	parent := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path allocates; hoist it out of %s", fd.Name.Name)
			stack = stack[:len(stack)-1]
			return false
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path; %s must release resources inline", fd.Name.Name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in hot path %s", fd.Name.Name)
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration in hot path %s: order is nondeterministic and the hidden iterator defeats bounds-check elimination; index a slice instead", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, parent)
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, parent map[ast.Node]ast.Node) {
	info := pass.TypesInfo

	// Conversions: flag conversions to interface types (they box).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
				pass.Reportf(call.Pos(), "conversion to interface %s in hot path %s allocates", tv.Type, fd.Name.Name)
			}
		}
		return
	}

	if pkg := calleePkg(info, call); pkg != nil && pkg.Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s: formatting allocates and boxes every operand", calleeName(call), fd.Name.Name)
		return
	}

	// append: only the self-append idiom (x = append(x, ...) or
	// x = append(x[:0], ...)) is amortized allocation-free.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			if !isSelfAppend(call, parent[call]) {
				pass.Reportf(call.Pos(), "append in hot path %s does not write back to its own first argument; grown slices escape the buffer-reuse idiom", fd.Name.Name)
			}
			return
		}
	}

	// Implicit interface conversions at call boundaries box the argument.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1 && call.Ellipsis == 0:
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || types.IsInterface(atv.Type) || atv.IsNil() {
			continue
		}
		if atv.Value != nil {
			// Constants (panic("msg"), log levels, …) box into static
			// descriptors at compile time — no per-call allocation.
			continue
		}
		pass.Reportf(arg.Pos(), "argument %s converts to interface %s in hot path %s (boxing allocation)", exprString(arg), param, fd.Name.Name)
	}
}

// isSelfAppend reports whether call is `x = append(x, ...)` or
// `x = append(x[:0], ...)` (modulo formatting), i.e. the append result is
// assigned back over its own first argument.
func isSelfAppend(call *ast.CallExpr, parent ast.Node) bool {
	asg, ok := parent.(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != call || len(call.Args) == 0 {
		return false
	}
	dst := exprString(asg.Lhs[0])
	src := call.Args[0]
	if sl, ok := src.(*ast.SliceExpr); ok {
		// append(x[:0], ...) and append(x[:n], ...) reuse x's backing array.
		return exprString(sl.X) == dst
	}
	return exprString(src) == dst
}
