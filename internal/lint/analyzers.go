package lint

// Analyzers returns the full pbg-lint suite, in stable order. Each analyzer
// encodes an invariant a past PR fixed or established by hand; see
// docs/ARCHITECTURE.md "Static analysis" for the history.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		RangeMapDet,
		LockCall,
		ObsHandle,
		PairedRelease,
		ErrDrop,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
