package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCall flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends/receives, select, time.Sleep, RPC
// (net/rpc Client calls and the dist retryClient), os file I/O, and calls
// into a storage.Store (Acquire/Release/Flush/Prefetch/Drain block on disk
// or RPC). The dist package learned this the careful way — remoteStore
// drops mu before every Put, DiskStore hands write-backs to an async worker
// — and this analyzer keeps new code from regressing it: a blocked lock
// holder stalls every HOGWILD worker behind one slow syscall.
//
// Lock state is tracked per function with a small lexical interpreter:
// Lock() sets a mutex held, Unlock() clears it (including the
// unlock-wait-relock idiom), a deferred Unlock holds to function exit, and
// branches whose body terminates (return/continue/break/panic) do not leak
// their state past the branch. Function literals are not descended into —
// they usually run after release.
var LockCall = &Analyzer{
	Name: "lockcall",
	Doc:  "no blocking I/O, RPC, or channel operations while holding a mutex",
	Run:  runLockCall,
}

func runLockCall(pass *Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		held := map[string]bool{}
		walkLockStmts(pass, fd.Body.List, held)
	})
	return nil
}

// walkLockStmts interprets one statement list, mutating held (the set of
// printed mutex receivers currently locked) as it goes.
func walkLockStmts(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		walkLockStmt(pass, stmt, held)
	}
}

func walkLockStmt(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	info := pass.TypesInfo
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if recv, kind, ok := mutexOp(info, s); ok {
			switch kind {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return
		}
		checkHazards(pass, s, held)
	case *ast.DeferStmt:
		if recv, kind, ok := mutexCall(info, s.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			// Held to function exit; everything after is a critical section,
			// which is exactly what the subsequent statements report against.
			_ = recv
			return
		}
		checkHazards(pass, s.Call, held)
	case *ast.BlockStmt:
		walkLockStmts(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		checkHazards(pass, s.Cond, held)
		thenHeld := copyHeld(held)
		walkLockStmts(pass, s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		if s.Else != nil {
			walkLockStmt(pass, s.Else, elseHeld)
		}
		// Merge: only branches that fall through contribute; a branch ending
		// in return/continue/break/panic keeps its lock state to itself.
		merged := map[string]bool{}
		fellThrough := false
		if !terminates(s.Body.List) {
			for k := range thenHeld {
				merged[k] = true
			}
			fellThrough = true
		}
		elseTerm := false
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			elseTerm = terminates(eb.List)
		}
		if !elseTerm {
			for k := range elseHeld {
				merged[k] = true
			}
			fellThrough = true
		}
		clear(held)
		if fellThrough {
			for k := range merged {
				held[k] = true
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkLockStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			checkHazards(pass, s.Cond, held)
		}
		body := copyHeld(held)
		walkLockStmts(pass, s.Body.List, body)
	case *ast.RangeStmt:
		checkHazards(pass, s.X, held)
		body := copyHeld(held)
		walkLockStmts(pass, s.Body.List, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		if _, ok := s.(*ast.SelectStmt); ok && anyHeld(held) {
			pass.Reportf(s.Pos(), "select while holding %s", firstHeld(held))
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok {
				body := copyHeld(held)
				walkLockStmts(pass, cc.Body, body)
				return false
			}
			if cc, ok := n.(*ast.CommClause); ok {
				body := copyHeld(held)
				walkLockStmts(pass, cc.Body, body)
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		walkLockStmt(pass, s.Stmt, held)
	default:
		checkHazards(pass, stmt, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k := range held {
		c[k] = true
	}
	return c
}

func anyHeld(held map[string]bool) bool { return len(held) > 0 }

// firstHeld picks a deterministic representative of the held set for the
// diagnostic message.
func firstHeld(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// terminates reports whether a statement list always transfers control away
// (return, continue, break, goto, panic, or os.Exit-style never-returns are
// approximated by return/branch/panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkHazards inspects one non-lock statement or expression for blocking
// operations, reporting each against the currently held mutexes.
func checkHazards(pass *Pass, n ast.Node, held map[string]bool) {
	if !anyHeld(held) {
		return
	}
	lock := firstHeld(held)
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				pass.Reportf(m.Pos(), "channel receive while holding %s", lock)
			}
		case *ast.SendStmt:
			pass.Reportf(m.Pos(), "channel send while holding %s", lock)
		case *ast.CallExpr:
			checkCallUnderLock(pass, m, lock)
		}
		return true
	})
}

func checkCallUnderLock(pass *Pass, call *ast.CallExpr, lock string) {
	info := pass.TypesInfo
	name := calleeName(call)

	if pkg := calleePkg(info, call); pkg != nil {
		switch {
		case pkg.Path() == "time" && name == "Sleep":
			pass.Reportf(call.Pos(), "time.Sleep while holding %s", lock)
			return
		case pkg.Path() == "os":
			switch name {
			case "ReadFile", "WriteFile", "Open", "OpenFile", "Create", "CreateTemp",
				"Rename", "Remove", "RemoveAll", "Mkdir", "MkdirAll", "ReadDir":
				pass.Reportf(call.Pos(), "os.%s while holding %s", name, lock)
				return
			}
		}
	}

	named, ok := namedRecvType(info, call)
	if !ok {
		return
	}
	tn, pkg := named.Obj().Name(), named.Obj().Pkg()
	switch {
	case pkg != nil && pkg.Path() == "net/rpc" && tn == "Client" && (name == "Call" || name == "Go"):
		pass.Reportf(call.Pos(), "rpc %s.%s while holding %s", exprString(call.Fun.(*ast.SelectorExpr).X), name, lock)
	case tn == "retryClient" && (name == "Call" || name == "Go"):
		pass.Reportf(call.Pos(), "retryClient.%s while holding %s (retry/backoff can hold the lock for seconds)", name, lock)
	case pkg != nil && pkg.Path() == "os" && tn == "File":
		switch name {
		case "Read", "ReadAt", "Write", "WriteAt", "Sync", "Close", "Seek", "Truncate":
			pass.Reportf(call.Pos(), "file %s.%s while holding %s", exprString(call.Fun.(*ast.SelectorExpr).X), name, lock)
		}
	case pkgPathHasSuffix(pkg, "internal/storage") && !pkgPathHasSuffix(pass.Pkg, "internal/storage"):
		switch name {
		case "Acquire", "Release", "Flush", "Prefetch", "Drain":
			pass.Reportf(call.Pos(), "storage %s.%s while holding %s (blocks on disk or RPC)", tn, name, lock)
		}
	}
}

// mutexOp matches a statement that is exactly `recv.Lock()` (or
// RLock/Unlock/RUnlock) on a sync mutex, returning the receiver's printed
// form and the method name.
func mutexOp(info *types.Info, stmt *ast.ExprStmt) (recv, kind string, ok bool) {
	call, isCall := stmt.X.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	return mutexCall(info, call)
}

func mutexCall(info *types.Info, call *ast.CallExpr) (recv, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	named, isNamed := namedRecvType(info, call)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}
