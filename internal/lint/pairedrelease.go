package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// PairedRelease enforces the store refcount contract: every store Acquire
// (storage.Store and its implementations — DiskStore, MemStore, the dist
// remoteStore, the storetest harness) must have a Release reachable on all
// exits of the enclosing function. storetest.LeakCheck catches the leaks a
// test happens to execute; this analyzer catches the early-return paths it
// doesn't: an `if err != nil { return … }` between Acquire and Release
// leaks the refcount, which pins the shard resident and (for DiskStore)
// suppresses its write-back forever.
//
// The check is a lexical abstract interpretation, not a full CFG. It
// understands the codebase's release idioms:
//
//   - `sh, err := store.Acquire(…)` followed by `if err != nil { … }`:
//     the error branch holds nothing.
//   - a deferred Release (directly, in a deferred closure, or registered
//     through a callback like t.Cleanup(func() { … Release … })) covers
//     every exit.
//   - a local cleanup closure containing Release (the runEpochPipelined
//     releaseHeld idiom) releases everything when called.
//   - storing the acquired shard into a field, map, or returned value
//     transfers ownership to the caller/holder (train.View caches refs in
//     v.held and pairs them in Close).
//
// Ownership-transferring helpers — functions whose own name contains
// acquire/release/checkout — are exempt: their callers carry the pairing.
var PairedRelease = &Analyzer{
	Name: "pairedrelease",
	Doc:  "every store Acquire must have a Release reachable on all exits",
	Run:  runPairedRelease,
}

func runPairedRelease(pass *Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		lower := strings.ToLower(fd.Name.Name)
		if strings.Contains(lower, "acquire") || strings.Contains(lower, "release") || strings.Contains(lower, "checkout") {
			return
		}
		st := &releaseState{
			pass:      pass,
			fn:        fd,
			releasers: localReleasers(pass, fd.Body),
			tainted:   map[string]bool{},
		}
		st.walkStmts(fd.Body.List)
		if st.outstanding > 0 && !st.deferred && st.lastAcquire != nil {
			pass.Reportf(st.lastAcquire.Pos(), "store Acquire without a Release on the fall-through exit of %s", fd.Name.Name)
		}
	})
	return nil
}

// localReleasers finds names of local closures whose body contains a store
// Release — calling one releases held shards.
func localReleasers(pass *Pass, body *ast.BlockStmt) map[string]bool {
	rel := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if fl, ok := asg.Rhs[0].(*ast.FuncLit); ok && countStoreCalls(pass, fl.Body, "Release") > 0 {
			rel[id.Name] = true
		}
		return true
	})
	return rel
}

type releaseState struct {
	pass        *Pass
	fn          *ast.FuncDecl
	releasers   map[string]bool
	tainted     map[string]bool // idents carrying an acquired shard
	outstanding int
	deferred    bool
	inLoop      bool // inside a for/range body: Release means bulk release
	lastAcquire ast.Node
	errVar      string // error result of the most recent Acquire assignment
}

func (st *releaseState) walkStmts(stmts []ast.Stmt) {
	for i := 0; i < len(stmts); i++ {
		// `sh, err := store.Acquire(…)` directly followed by an
		// `if err != nil { … }` error branch: the branch holds nothing new.
		if st.acquireAssign(stmts[i]) && i+1 < len(stmts) {
			if ifs, ok := stmts[i+1].(*ast.IfStmt); ok && st.isErrCheck(ifs.Cond) {
				body := st.fork()
				if body.outstanding > 0 {
					body.outstanding--
				}
				body.walkStmts(ifs.Body.List)
				i++
				if !terminates(ifs.Body.List) {
					st.join(body)
				}
				continue
			}
			continue
		}
		st.walkStmt(stmts[i])
	}
}

// acquireAssign handles `sh, err := store.Acquire(…)`-shaped statements,
// returning true if it consumed one.
func (st *releaseState) acquireAssign(stmt ast.Stmt) bool {
	asg, ok := stmt.(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isStoreCall(st.pass, call, "Acquire") {
		return false
	}
	st.outstanding++
	st.lastAcquire = call
	st.errVar = ""
	if len(asg.Lhs) == 2 {
		if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			st.tainted[id.Name] = true
		}
		if id, ok := asg.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			st.errVar = id.Name
		}
	}
	return true
}

// isErrCheck matches `err != nil` (possibly inside ||/&&) for the most
// recent acquire's error variable.
func (st *releaseState) isErrCheck(cond ast.Expr) bool {
	if st.errVar == "" {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.NEQ {
			if id, ok := b.X.(*ast.Ident); ok && id.Name == st.errVar {
				found = true
			}
		}
		return !found
	})
	return found
}

// isNilCheck matches `err == nil` for the most recent acquire's error
// variable.
func (st *releaseState) isNilCheck(cond ast.Expr) bool {
	if st.errVar == "" {
		return false
	}
	b, ok := cond.(*ast.BinaryExpr)
	if !ok || b.Op != token.EQL {
		return false
	}
	id, ok := b.X.(*ast.Ident)
	return ok && id.Name == st.errVar
}

func (st *releaseState) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.DeferStmt:
		if countStoreCalls(st.pass, s, "Release") > 0 {
			st.deferred = true
		}
	case *ast.ReturnStmt:
		st.scanNode(stmt)
		// Returning a tainted value hands the refcount to the caller.
		for _, r := range s.Results {
			if st.mentionsTainted(r) && st.outstanding > 0 {
				st.outstanding--
			}
		}
		if st.outstanding > 0 && !st.deferred {
			st.pass.Reportf(s.Pos(), "return with %d outstanding store Acquire(s) and no deferred Release (acquired at %s)",
				st.outstanding, st.pass.Fset.Position(st.lastAcquire.Pos()))
		}
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			if st.acquireAssign(s.Init) {
				switch {
				case st.isErrCheck(s.Cond):
					// `if _, err := store.Acquire(…); err != nil { … }`:
					// the then-branch is the failure path, holding nothing.
					fail := st.fork()
					if fail.outstanding > 0 {
						fail.outstanding--
					}
					fail.walkStmts(s.Body.List)
					if !terminates(s.Body.List) {
						st.join(fail)
					}
					return
				case st.isNilCheck(s.Cond):
					// `if _, err := store.Acquire(…); err == nil { … }`
					// (discardPrefetched's best-effort evict): the branch
					// holds; the fall-through is the failure path.
					then := st.fork()
					then.walkStmts(s.Body.List)
					if st.outstanding > 0 {
						st.outstanding--
					}
					if !terminates(s.Body.List) {
						st.join(then)
					}
					return
				}
			} else {
				st.walkStmt(s.Init)
			}
		}
		st.scanNode(s.Cond)
		then := st.fork()
		then.walkStmts(s.Body.List)
		if s.Else != nil {
			els := st.fork()
			els.walkStmt(s.Else)
			if !terminates(s.Body.List) {
				st.join(then)
			}
			if eb, ok := s.Else.(*ast.BlockStmt); !ok || !terminates(eb.List) {
				st.join(els)
			}
		} else if !terminates(s.Body.List) {
			st.join(then)
		}
	case *ast.ForStmt:
		// Loop bodies thread state straight through: acquires count once,
		// and a Release inside a loop is the bulk-release idiom (release
		// every held shard), so it clears the count rather than
		// decrementing — the iteration count isn't knowable lexically.
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		if s.Cond != nil {
			st.scanNode(s.Cond)
		}
		saved := st.inLoop
		st.inLoop = true
		st.walkStmts(s.Body.List)
		st.inLoop = saved
	case *ast.RangeStmt:
		st.scanNode(s.X)
		saved := st.inLoop
		st.inLoop = true
		st.walkStmts(s.Body.List)
		st.inLoop = saved
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			switch cc := n.(type) {
			case *ast.CaseClause:
				body := st.fork()
				body.walkStmts(cc.Body)
				st.join(body)
				return false
			case *ast.CommClause:
				body := st.fork()
				body.walkStmts(cc.Body)
				st.join(body)
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.AssignStmt:
		st.scanNode(stmt)
		// Propagate taint (ref := shardRef{shard: sh}) and detect ownership
		// transfer into longer-lived state (v.held[k] = ref, s.shard = sh).
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			if rhs == nil || !st.mentionsTainted(rhs) {
				continue
			}
			switch l := lhs.(type) {
			case *ast.Ident:
				if l.Name != "_" {
					st.tainted[l.Name] = true
				}
			case *ast.SelectorExpr, *ast.IndexExpr:
				if st.outstanding > 0 {
					st.outstanding--
				}
			}
		}
	default:
		st.scanNode(stmt)
	}
}

// mentionsTainted reports whether e references an ident carrying an
// acquired shard.
func (st *releaseState) mentionsTainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && st.tainted[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

func (st *releaseState) fork() *releaseState {
	c := *st
	c.tainted = map[string]bool{}
	for k := range st.tainted {
		c.tainted[k] = true
	}
	return &c
}

// join folds a branch's exit state back in: outstanding acquires take the
// maximum (a leak on either path is a leak), deferred release propagates by
// OR — a conditional defer-release is rare and explicit.
func (st *releaseState) join(branch *releaseState) {
	if branch.outstanding > st.outstanding {
		st.outstanding = branch.outstanding
		st.lastAcquire = branch.lastAcquire
	}
	st.deferred = st.deferred || branch.deferred
}

// scanNode updates the acquire/release count from one simple statement or
// expression: direct Acquire/Release calls, calls to local release
// closures, and callback registrations that defer a Release.
func (st *releaseState) scanNode(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // counted only where invoked or registered
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isStoreCall(st.pass, call, "Acquire"):
			st.outstanding++
			st.lastAcquire = call
		case isStoreCall(st.pass, call, "Release"):
			if st.inLoop {
				st.outstanding = 0
			} else if st.outstanding > 0 {
				st.outstanding--
			}
		default:
			if id, ok := call.Fun.(*ast.Ident); ok && st.releasers[id.Name] {
				// A cleanup closure releases everything it tracked.
				st.outstanding = 0
			}
			// Registering a releasing callback (t.Cleanup(func() { … })) is
			// a deferred release.
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok && countStoreCalls(st.pass, fl.Body, "Release") > 0 {
					st.deferred = true
				}
			}
		}
		return true
	})
}

// countStoreCalls counts calls to the named method on a store type under n,
// including inside function literals.
func countStoreCalls(pass *Pass, n ast.Node, method string) int {
	count := 0
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && isStoreCall(pass, call, method) {
			count++
		}
		return true
	})
	return count
}

// isStoreCall reports whether call invokes the named method on a type from
// a store package: internal/storage (Store, DiskStore, MemStore), the
// storetest harness, or internal/dist (remoteStore).
func isStoreCall(pass *Pass, call *ast.CallExpr, method string) bool {
	if calleeName(call) != method {
		return false
	}
	_, ok := recvFromPkg(pass.TypesInfo, call, "internal/storage", "storage/storetest", "internal/dist")
	return ok
}
