package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one typechecked package ready for analysis. Test files are
// folded into their package (the `p [p.test]` variant the compiler builds);
// external _test packages load as their own Package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	ForTest    string

	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string

	Error *struct{ Err string }
}

// Load typechecks the packages matching patterns (e.g. "./...") in the
// module containing dir. Dependencies — stdlib and module-internal alike —
// resolve from the build cache's export data via `go list -export`, so no
// network or GOPATH is touched.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "-test"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			switch {
			case p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" ["):
				// `p [p.test]` is the package-under-test rebuilt with its
				// _test.go files; its export data is a superset of the plain
				// package's, so external test packages resolve their import
				// of the package under test to the right build. (Other
				// bracketed entries — helpers rebuilt against the test
				// variant, and the _test package itself — also carry ForTest
				// and must not clobber this slot.)
				exports[p.ForTest] = p.Export
			default:
				if _, ok := exports[p.ImportPath]; !ok {
					exports[p.ImportPath] = p.Export
				}
			}
		}
		if !p.Standard && p.ForTest == "" && !strings.HasSuffix(p.ImportPath, ".test") {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		// The package proper plus its in-package test files, as one unit.
		files := make([]string, 0, len(t.GoFiles)+len(t.CgoFiles)+len(t.TestGoFiles))
		files = append(files, t.GoFiles...)
		files = append(files, t.CgoFiles...)
		files = append(files, t.TestGoFiles...)
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)

		if len(t.XTestGoFiles) > 0 {
			xpkg, err := check(fset, imp, t.ImportPath+"_test", t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xpkg)
		}
	}
	return pkgs, nil
}

// check parses and typechecks one package's files.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
