package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// RunFixture loads the fixture package at testdata/src/<name>, runs one
// analyzer over it, and matches the diagnostics against `// want "regexp"`
// comments — the analysistest contract in miniature. Every diagnostic must
// be wanted by a regexp on its line, and every want must be hit.
//
// Fixture imports of pbg/... paths resolve to stub packages under
// testdata/src (e.g. testdata/src/pbg/internal/obs mirrors the real obs
// API), so fixtures exercise the same package-path matching the analyzers
// apply to the real repo. Stdlib imports resolve from build-cache export
// data, same as the real loader.
func RunFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg, err := loadFixture(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}
	checkWants(t, pkg, diags)
}

// wantRE matches one `// want "…"` or `// want `…“ comment tail.
var wantRE = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					lit := m[1]
					var pattern string
					if lit[0] == '`' {
						pattern = lit[1 : len(lit)-1]
					} else {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("bad want literal %s: %v", lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", pattern, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// --- fixture loading ---

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

// stdExportData builds (once per process) the export-data index for the
// stdlib packages fixtures are allowed to import.
func stdExportData() (map[string]string, error) {
	stdExportsOnce.Do(func() {
		cmd := exec.Command("go", "list", "-e", "-export", "-json=ImportPath,Export", "-deps",
			"fmt", "os", "sync", "time", "sort", "strings", "strconv", "net/rpc", "errors", "bytes", "io")
		out, err := cmd.Output()
		if err != nil {
			stdExportsErr = fmt.Errorf("go list std exports: %w", err)
			return
		}
		stdExports = map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdExportsErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	return stdExports, stdExportsErr
}

// fixtureImporter resolves pbg/... paths from testdata stub sources and
// everything else from stdlib export data.
type fixtureImporter struct {
	fset    *token.FileSet
	root    string // testdata/src
	gc      types.Importer
	sources map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.sources[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := checkFixtureDir(fi.fset, fi, path, dir)
		if err != nil {
			return nil, err
		}
		fi.sources[path] = pkg.Types
		return pkg.Types, nil
	}
	return fi.gc.Import(path)
}

func loadFixture(dir string) (*Package, error) {
	exports, err := stdExportData()
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fixture: no export data for %q (add it to stdExportData)", path)
		}
		return os.Open(e)
	}
	fi := &fixtureImporter{
		fset:    fset,
		root:    filepath.Join("testdata", "src"),
		gc:      importer.ForCompiler(fset, "gc", lookup),
		sources: map[string]*types.Package{},
	}
	return checkFixtureDir(fset, fi, filepath.ToSlash(strings.TrimPrefix(dir, "testdata/src/")), dir)
}

func checkFixtureDir(fset *token.FileSet, imp types.Importer, importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture: no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
