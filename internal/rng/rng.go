// Package rng provides the fast, seedable random number generation the
// training and sampling loops depend on: a splittable xoshiro256** generator
// (one per HOGWILD worker, no locking), Walker alias tables for O(1)
// sampling from the data-prevalence distribution (§3.1 of the paper), and a
// Zipf sampler used by the synthetic dataset generators.
package rng

import "math"

// RNG is a xoshiro256** pseudo random generator. It is not safe for
// concurrent use; give each worker its own instance via Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 is used for seeding, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Avoid the all-zero state (probability ~0 but cheap to rule out).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from r, suitable for handing to a
// worker goroutine. The parent stream advances.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xA5A5A5A5A5A5A5A5)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method.
	v := r.Uint64()
	hi, _ := mul64(v, uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat32 returns a standard normal variate (Box–Muller; the second
// variate is discarded to keep the generator allocation-free and stateless).
func (r *RNG) NormFloat32() float32 {
	// Guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	return float32(math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v))
}

// Perm fills out with a random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	r.ShuffleInts(out)
}

// ShuffleInts permutes xs in place (Fisher–Yates).
func (r *RNG) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle permutes n elements using the given swap callback.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Alias is a Walker alias table for O(1) sampling from a discrete
// distribution. PBG uses this shape of sampler for data-prevalence negative
// sampling: the table is built once from training-set degree counts and then
// shared read-only across workers.
type Alias struct {
	prob  []float32
	alias []int32
}

// NewAlias builds an alias table from non-negative weights. Weights that sum
// to zero yield a uniform table. The input slice is not retained.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAlias with negative weight")
		}
		total += w
	}
	a := &Alias{prob: make([]float32, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	if total == 0 {
		for i := range a.prob {
			a.prob[i] = 1
			a.alias[i] = int32(i)
		}
		return a
	}
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[l] = float32(scaled[l])
		a.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		a.prob[g] = 1
		a.alias[g] = int32(g)
	}
	for _, l := range small {
		a.prob[l] = 1
		a.alias[l] = int32(l)
	}
	return a
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index according to the table's distribution.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float32() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Zipf samples integers in [0, n) with P(k) ∝ 1/(k+1)^s using inversion by
// rejection (Devroye). It reproduces the heavy-tailed node popularity of
// real web graphs that the paper's datasets exhibit.
type Zipf struct {
	n              int
	s              float64
	hx0            float64
	hxm            float64
	hIntegralConst float64
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s > 0, s != 1 is
// handled as well as s == 1.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf requires n > 0 and s > 0")
	}
	z := &Zipf{n: n, s: s}
	z.hx0 = z.h(0.5) - 1
	z.hxm = z.h(float64(n) + 0.5)
	z.hIntegralConst = z.hx0 - z.hxm
	return z
}

// h is the integral of x^-s (antiderivative up to constants).
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return -math.Log(x)
	}
	return -math.Pow(x, 1-z.s) / (1 - z.s)
}

func (z *Zipf) hInv(x float64) float64 {
	if z.s == 1 {
		return math.Exp(-x)
	}
	return math.Pow(-(1-z.s)*x, 1/(1-z.s))
}

// Sample draws one Zipf-distributed value in [0, n).
func (z *Zipf) Sample(r *RNG) int {
	// Rejection sampling against the dominating curve; expected iterations
	// are close to 1 for the exponents (0.5–2) the generators use.
	for {
		u := z.hxm + r.Float64()*z.hIntegralConst
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= 0.5 || z.h(k+0.5)-z.h(k-0.5) >= math.Pow(k, -z.s)*0.999999 {
			return int(k) - 1
		}
	}
}
