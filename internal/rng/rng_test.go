package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds matched %d/64 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children should produce different streams")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat32Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat32Moments(t *testing.T) {
	r := New(13)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := float64(r.NormFloat32())
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(17)
	xs := make([]int, 100)
	r.Perm(xs)
	seen := make([]bool, 100)
	for _, x := range xs {
		if x < 0 || x >= 100 || seen[x] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[x] = true
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	r := New(19)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	total := 10.0
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("alias outcome %d: freq %v, want %v", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 1})
	r := New(23)
	for i := 0; i < 10000; i++ {
		s := a.Sample(r)
		if s == 0 || s == 2 {
			t.Fatalf("sampled zero-weight outcome %d", s)
		}
	}
}

func TestAliasAllZeroIsUniform(t *testing.T) {
	a := NewAlias([]float64{0, 0, 0})
	r := New(29)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[a.Sample(r)]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Fatalf("all-zero alias not uniform: bucket %d = %d", i, c)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias([]float64{5})
	r := New(31)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias must always return 0")
		}
	}
}

func TestAliasNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAlias([]float64{1, -1})
}

func TestZipfRangeAndSkew(t *testing.T) {
	z := NewZipf(1000, 1.1)
	r := New(37)
	const draws = 100000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Heavy tail: rank 0 must dominate rank 99 by roughly (100)^1.1.
	if counts[0] < counts[99]*10 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[99]=%d", counts[0], counts[99])
	}
	// And the head should not hold everything: the tail half must be nonempty.
	var tail int
	for _, c := range counts[500:] {
		tail += c
	}
	if tail == 0 {
		t.Fatal("Zipf tail never sampled")
	}
}

func TestZipfExponentOne(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf(s=1) sample %d out of range", v)
		}
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 100000)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	a := NewAlias(weights)
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Sample(r)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
