package eval

// This file holds the ranking-tie conventions shared between evaluation and
// the serving layer. Both must agree on what a tie means: evaluation turns
// ties into fractional mid-ranks (so a constant scorer cannot fake a perfect
// MRR), and serve's top-K selection breaks ties deterministically (so two
// replicas answering the same query return the same neighbour list). Keeping
// both rules here, next to each other, is what pins them together — a latent
// eval/serve mismatch (serve preferring high IDs, eval counting ties as
// wins) would silently make served neighbour lists irreproducible against
// offline evaluation numbers.

// MidRank returns the mid-rank of trueScore among the candidate scores:
// rank = 1 + |{score > true}| + |{score = true}|/2. A candidate scoring
// exactly the true score contributes half a rank position, so a degenerate
// constant scorer gets rank 1+K/2 (MRR ≈ 2/(K+2)) instead of a fake perfect
// 1. Used by the eval Ranker and by serve.Server.Rank.
func MidRank(trueScore float32, scores []float32) float64 {
	greater, equal := 0, 0
	for _, v := range scores {
		switch {
		case v > trueScore:
			greater++
		case v == trueScore:
			equal++
		}
	}
	return 1 + float64(greater) + float64(equal)/2
}

// CompareScored is the deterministic candidate ordering for top-K results:
// higher score first, ties broken by lower entity ID. It reports whether
// candidate (scoreI, idI) ranks strictly before (scoreJ, idJ). Serve's
// top-K heaps and the servetest brute-force oracle both sort with it, so a
// tied boundary can never make the two disagree on membership.
func CompareScored(scoreI float32, idI int32, scoreJ float32, idJ int32) bool {
	if scoreI != scoreJ {
		return scoreI > scoreJ
	}
	return idI < idJ
}
