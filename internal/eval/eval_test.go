package eval

import (
	"strings"
	"testing"

	"pbg/internal/datagen"
	"pbg/internal/graph"
	"pbg/internal/model"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// trainedSetup trains a small model and returns everything the ranker needs.
func trainedSetup(t *testing.T, epochs int, parts int) (*graph.Graph, *graph.EdgeList, *train.Trainer, *graph.Degrees) {
	t.Helper()
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: 500, AvgOutDegree: 10, NumPartitions: parts, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	trainG, _, testG := g.Split(0, 0.2, 5)
	store := storage.NewMemStore(g.Schema, 16, 9, 1)
	tr, err := train.New(trainG, store, train.Config{Dim: 16, Epochs: epochs, Seed: 5, Comparator: "cos", Margin: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	return trainG, testG.Edges, tr, graph.ComputeDegrees(trainG)
}

func TestMetricsString(t *testing.T) {
	m := Metrics{MRR: 0.5, MR: 2, Hits1: 0.25, Hits10: 1, Count: 4}
	s := m.String()
	if !strings.Contains(s, "MRR 0.500") || !strings.Contains(s, "n=4") {
		t.Fatalf("bad format: %s", s)
	}
}

func TestTrainedBeatsUntrained(t *testing.T) {
	_, test, tr, deg := trainedSetup(t, 6, 1)
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(trGraphSchema(tr), view, tr, 16, deg)
	cfg := Config{Mode: CandidatesUniform, K: 100, MaxEdges: 300, Seed: 1}
	trained, err := rk.Evaluate(test, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Untrained baseline: fresh random store.
	g2, _ := datagen.Social(datagen.SocialConfig{Nodes: 500, AvgOutDegree: 10, Seed: 21})
	store2 := storage.NewMemStore(g2.Schema, 16, 999, 1)
	tr2, err := train.New(g2, store2, train.Config{Dim: 16, Epochs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	view2 := tr2.NewView()
	defer view2.Close()
	rk2 := NewRanker(g2.Schema, view2, tr2, 16, deg)
	random, err := rk2.Evaluate(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trained.MRR < random.MRR*2 {
		t.Fatalf("trained MRR %.3f not clearly above untrained %.3f", trained.MRR, random.MRR)
	}
	if trained.Hits10 <= random.Hits10 {
		t.Fatalf("trained Hits@10 %.3f <= untrained %.3f", trained.Hits10, random.Hits10)
	}
}

// trGraphSchema digs the schema back out of the trainer's view (helper to
// keep call sites short).
func trGraphSchema(tr *train.Trainer) *graph.Schema {
	// The trainer was built from the graph; its buckets and relations
	// reflect the schema. We reconstruct via the store's schema — simplest
	// is to expose it from the trainer; see Trainer.Schema.
	return tr.Schema()
}

func TestFilteredBeatsRaw(t *testing.T) {
	trainG, test, tr, deg := trainedSetup(t, 4, 1)
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(tr.Schema(), view, tr, 16, deg)
	known := graph.NewEdgeSet(trainG.Edges, test)
	raw, err := rk.Evaluate(test, Config{Mode: CandidatesUniform, K: 200, MaxEdges: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	filt, err := rk.Evaluate(test, Config{Mode: CandidatesUniform, K: 200, MaxEdges: 200, Seed: 2, Filtered: true, Known: known})
	if err != nil {
		t.Fatal(err)
	}
	// Filtering removes true edges from candidates, so ranks can only
	// improve (§5.4.1 footnote 8).
	if filt.MRR < raw.MRR-1e-9 {
		t.Fatalf("filtered MRR %.4f below raw %.4f", filt.MRR, raw.MRR)
	}
}

func TestPrevalenceCandidatesHarder(t *testing.T) {
	// Ranking against popular candidates is harder than uniform ones for a
	// degree-correlated model (the point of the §5.4.2 protocol).
	_, test, tr, deg := trainedSetup(t, 4, 1)
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(tr.Schema(), view, tr, 16, deg)
	uni, err := rk.Evaluate(test, Config{Mode: CandidatesUniform, K: 200, MaxEdges: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := rk.Evaluate(test, Config{Mode: CandidatesPrevalence, K: 200, MaxEdges: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if prev.MRR > uni.MRR*1.1 {
		t.Fatalf("prevalence candidates easier (%.3f) than uniform (%.3f)?", prev.MRR, uni.MRR)
	}
}

func TestCandidatesAllSmallGraph(t *testing.T) {
	_, test, tr, deg := trainedSetup(t, 3, 1)
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(tr.Schema(), view, tr, 16, deg)
	m, err := rk.Evaluate(test, Config{Mode: CandidatesAll, MaxEdges: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 50 {
		t.Fatalf("count = %d, want 50", m.Count)
	}
	if m.MR < 1 || m.MR > 499 {
		t.Fatalf("mean rank %v out of range", m.MR)
	}
}

func TestBothSidesDoublesCount(t *testing.T) {
	_, test, tr, deg := trainedSetup(t, 2, 1)
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(tr.Schema(), view, tr, 16, deg)
	m, err := rk.Evaluate(test, Config{Mode: CandidatesUniform, K: 50, MaxEdges: 40, BothSides: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 80 {
		t.Fatalf("count = %d, want 80", m.Count)
	}
}

func TestPartitionedEvalWorks(t *testing.T) {
	_, test, tr, deg := trainedSetup(t, 4, 4)
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(tr.Schema(), view, tr, 16, deg)
	m, err := rk.Evaluate(test, Config{Mode: CandidatesUniform, K: 100, MaxEdges: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 100 {
		t.Fatalf("count = %d", m.Count)
	}
}

func TestRanksAreValid(t *testing.T) {
	_, test, tr, deg := trainedSetup(t, 2, 1)
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(tr.Schema(), view, tr, 16, deg)
	m, err := rk.Evaluate(test, Config{Mode: CandidatesUniform, K: 10, MaxEdges: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// With K=10 candidates, MR must lie in [1, 11].
	if m.MR < 1 || m.MR > 11 {
		t.Fatalf("mean rank %v impossible for K=10", m.MR)
	}
	if m.MRR < 0 || m.MRR > 1 {
		t.Fatalf("MRR %v out of [0,1]", m.MRR)
	}
	if m.Hits10 < m.Hits1 {
		t.Fatalf("Hits@10 %v < Hits@1 %v", m.Hits10, m.Hits1)
	}
}

func TestCurveRecording(t *testing.T) {
	c := &Curve{Label: "pbg-1"}
	c.Add(0, 1.5, 0.1)
	c.Add(1, 3.0, 0.2)
	s := c.String()
	if !strings.Contains(s, "pbg-1") || !strings.Contains(s, "0.2000") {
		t.Fatalf("bad curve format:\n%s", s)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{1, 2, 3, 4})
	if mean != 2.5 {
		t.Fatalf("mean = %v", mean)
	}
	if std < 1.1 || std > 1.2 {
		t.Fatalf("std = %v", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty input should give zeros")
	}
}

var _ EmbeddingSource = (*train.View)(nil)
var _ ScorerSource = (*train.Trainer)(nil)
var _ = model.Masked // keep import for interface assertions above

// A degenerate scorer emitting one constant value ties every candidate
// with the true edge. The optimistic rank (1 + strict wins) scored that as
// a perfect MRR of 1.0; mid-rank tie handling must give rank 1+K/2, i.e.
// MRR ≈ 2/(K+2).
func TestConstantScorerMidRankMRR(t *testing.T) {
	g, err := datagen.Social(datagen.SocialConfig{Nodes: 500, AvgOutDegree: 8, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	// initScale 0 zeroes every embedding, so the dot comparator scores all
	// pairs identically — the constant scorer.
	store := storage.NewMemStore(g.Schema, 16, 9, 0)
	tr, err := train.New(g, store, train.Config{Dim: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(tr.Schema(), view, tr, 16, nil)
	const k = 100
	m, err := rk.Evaluate(g.Edges, Config{Mode: CandidatesUniform, K: k, MaxEdges: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / (k + 2)
	// Uniform candidates occasionally collide with the true id and are
	// dropped, so the per-edge candidate count wobbles just below K.
	if m.MRR < want*0.9 || m.MRR > want*1.1 {
		t.Fatalf("constant scorer MRR = %.4f, want ≈ %.4f (2/(K+2)); optimistic tie-ranking would give 1.0", m.MRR, want)
	}
	if m.Hits1 != 0 {
		t.Fatalf("constant scorer Hits@1 = %.3f, want 0 (rank 1+K/2 is far past 1)", m.Hits1)
	}
	if m.MR < float64(k)/2*0.9 {
		t.Fatalf("constant scorer MR = %.1f, want ≈ 1+K/2", m.MR)
	}
}

// End-to-end smoke for schemas whose ceil-division partition sizes leave a
// trailing partition empty (Count=6 over 4 partitions → sizes 2,2,2,0):
// training over a DiskStore (zero-row shards swap through disk) and
// evaluating must work without panics.
func TestEmptyTrailingPartitionTrainsAndEvaluates(t *testing.T) {
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "n", Count: 6, NumPartitions: 4}},
		[]graph.RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
	)
	el := &graph.EdgeList{}
	for i := int32(0); i < 6; i++ {
		for j := int32(0); j < 6; j++ {
			if i != j {
				el.Append(i, 0, j)
			}
		}
	}
	g := graph.MustGraph(schema, el)
	store, err := storage.NewDiskStore(t.TempDir(), schema, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Striped-lock mode: this test runs under -race, where two pure-HOGWILD
	// workers racing on embedding rows would (correctly) be reported.
	tr, err := train.New(g, store, train.Config{Dim: 8, Epochs: 2, Seed: 5, Workers: 2, HogwildOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Train(nil); err != nil {
		t.Fatal(err)
	}
	view := tr.NewView()
	defer view.Close()
	rk := NewRanker(schema, view, tr, 8, graph.ComputeDegrees(g))
	for _, mode := range []CandidateMode{CandidatesAll, CandidatesUniform, CandidatesPrevalence} {
		m, err := rk.Evaluate(g.Edges, Config{Mode: mode, K: 4, Seed: 2, BothSides: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.Count == 0 {
			t.Fatalf("mode %d evaluated nothing", mode)
		}
	}
}
