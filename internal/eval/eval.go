// Package eval implements the link-prediction evaluation protocols from §5:
// for each test edge, the true destination (and source) is ranked among
// candidate corrupted edges, and MRR (raw and filtered), MR and Hits@K are
// reported. Candidate sets cover the paper's variants: every entity, k
// uniformly sampled entities, or k entities sampled by their training-set
// prevalence (the 10,000-candidate protocol of §5.4.2).
package eval

import (
	"fmt"
	"math"

	"pbg/internal/graph"
	"pbg/internal/model"
	"pbg/internal/rng"
	"pbg/internal/vec"
)

// Metrics aggregates ranking results. Ranks are mid-rank tie-adjusted
// (see rankSide), so MR and the rank thresholds behind MRR/Hits@K are
// fractional-rank-aware: a candidate scoring exactly the true score
// contributes half a rank position.
type Metrics struct {
	MRR    float64 // mean reciprocal rank
	MR     float64 // mean rank
	Hits1  float64
	Hits10 float64
	Count  int // ranked examples
}

// String renders the metrics like the paper's tables.
func (m Metrics) String() string {
	return fmt.Sprintf("MRR %.3f  MR %.1f  Hits@1 %.3f  Hits@10 %.3f  (n=%d)", m.MRR, m.MR, m.Hits1, m.Hits10, m.Count)
}

func (m *Metrics) add(rank float64) {
	m.MRR += 1 / rank
	m.MR += rank
	if rank <= 1 {
		m.Hits1++
	}
	if rank <= 10 {
		m.Hits10++
	}
	m.Count++
}

func (m *Metrics) finish() {
	if m.Count == 0 {
		return
	}
	n := float64(m.Count)
	m.MRR /= n
	m.MR /= n
	m.Hits1 /= n
	m.Hits10 /= n
}

// CandidateMode selects how corrupted-edge candidates are drawn.
type CandidateMode int

const (
	// CandidatesAll ranks against every entity of the correct type
	// (FB15k-style, feasible on small graphs).
	CandidatesAll CandidateMode = iota
	// CandidatesUniform samples K entities uniformly.
	CandidatesUniform
	// CandidatesPrevalence samples K entities by training prevalence — the
	// §5.4.2 protocol that avoids degree-distribution shortcuts.
	CandidatesPrevalence
)

// Config controls one evaluation run.
type Config struct {
	Mode CandidateMode
	// K is the number of sampled candidates (ignored for CandidatesAll).
	K int
	// Filtered removes known-true edges from the candidates (§5.4.1). The
	// Known set must then be provided.
	Filtered bool
	Known    *graph.EdgeSet
	// BothSides ranks both corrupted destinations and corrupted sources
	// (standard KG protocol). When false only destinations are ranked.
	BothSides bool
	// MaxEdges caps evaluated test edges (0 = all).
	MaxEdges int
	Seed     uint64
}

// EmbeddingSource supplies entity embeddings; satisfied by train.View.
type EmbeddingSource interface {
	Embedding(typeIdx int, id int32, out []float32) ([]float32, error)
}

// ScorerSource supplies the per-relation scorer and parameters; satisfied by
// the trainer (and the distributed coordinator).
type ScorerSource interface {
	Scorer(rel int) *model.Scorer
	RelParams(rel int) []float32
}

// Ranker evaluates link prediction on a test edge list.
type Ranker struct {
	schema  *graph.Schema
	emb     EmbeddingSource
	scorers ScorerSource
	dim     int
	degrees *graph.Degrees
}

// NewRanker builds an evaluator. degrees is required for
// CandidatesPrevalence (pass training-set degrees).
func NewRanker(schema *graph.Schema, emb EmbeddingSource, scorers ScorerSource, dim int, degrees *graph.Degrees) *Ranker {
	return &Ranker{schema: schema, emb: emb, scorers: scorers, dim: dim, degrees: degrees}
}

// Evaluate ranks every test edge under cfg and returns aggregate metrics.
func (rk *Ranker) Evaluate(test *graph.EdgeList, cfg Config) (Metrics, error) {
	if cfg.K == 0 {
		cfg.K = 1000
	}
	r := rng.New(cfg.Seed)
	var m Metrics
	n := test.Len()
	if cfg.MaxEdges > 0 && n > cfg.MaxEdges {
		n = cfg.MaxEdges
	}
	// Pre-build prevalence alias tables per entity type on demand.
	aliases := map[int]*rng.Alias{}
	aliasFor := func(typeIdx int) (*rng.Alias, error) {
		if a, ok := aliases[typeIdx]; ok {
			return a, nil
		}
		if rk.degrees == nil {
			return nil, fmt.Errorf("eval: prevalence candidates need degrees")
		}
		a := rng.NewAlias(rk.degrees.ByType[typeIdx])
		aliases[typeIdx] = a
		return a, nil
	}

	srcBuf := make([]float32, rk.dim)
	dstBuf := make([]float32, rk.dim)
	for i := 0; i < n; i++ {
		s, rel, d := test.Edge(i)
		srcType := rk.schema.EntityTypeIndex(rk.schema.Relations[rel].SourceType)
		dstType := rk.schema.EntityTypeIndex(rk.schema.Relations[rel].DestType)
		if _, err := rk.emb.Embedding(srcType, s, srcBuf); err != nil {
			return m, err
		}
		if _, err := rk.emb.Embedding(dstType, d, dstBuf); err != nil {
			return m, err
		}
		// Rank true destination among corrupted destinations.
		rank, err := rk.rankSide(r, cfg, aliasFor, rel, s, d, dstType, srcBuf, dstBuf, false)
		if err != nil {
			return m, err
		}
		m.add(rank)
		if cfg.BothSides {
			rank, err := rk.rankSide(r, cfg, aliasFor, rel, s, d, srcType, srcBuf, dstBuf, true)
			if err != nil {
				return m, err
			}
			m.add(rank)
		}
	}
	m.finish()
	return m, nil
}

// rankSide ranks the true endpoint among candidates on one side.
// corruptSource false: candidates replace d; true: candidates replace s.
//
// Ties are handled with the mid-rank convention of MidRank (rank.go),
// shared with the serving layer. The optimistic rank (counting only strict
// wins) silently inflated the metrics — a degenerate scorer emitting one
// constant value tied every candidate and walked away with a perfect
// MRR/Hits@1, when its true ranking power is chance. Under mid-rank that
// scorer gets rank 1+K/2, i.e. MRR ≈ 2/(K+2), which a test pins.
func (rk *Ranker) rankSide(r *rng.RNG, cfg Config, aliasFor func(int) (*rng.Alias, error),
	rel, s, d int32, candType int, srcEmb, dstEmb []float32, corruptSource bool) (float64, error) {

	sc := rk.scorers.Scorer(int(rel))
	params := rk.scorers.RelParams(int(rel))
	// True edge score. Corrupted-source ranking uses the reverse direction
	// under reciprocal relations.
	var trueScore float32
	if corruptSource {
		trueScore = sc.ScoreReverse(srcEmb, dstEmb, params)
	} else {
		trueScore = sc.Score(srcEmb, dstEmb, params)
	}

	count := rk.schema.Entities[candType].Count
	var candIDs []int32
	switch cfg.Mode {
	case CandidatesAll:
		candIDs = make([]int32, 0, count)
		for id := int32(0); int(id) < count; id++ {
			candIDs = append(candIDs, id)
		}
	case CandidatesUniform:
		candIDs = make([]int32, cfg.K)
		for i := range candIDs {
			candIDs[i] = int32(r.Intn(count))
		}
	case CandidatesPrevalence:
		a, err := aliasFor(candType)
		if err != nil {
			return 0, err
		}
		candIDs = make([]int32, cfg.K)
		for i := range candIDs {
			candIDs[i] = int32(a.Sample(r))
		}
	default:
		return 0, fmt.Errorf("eval: unknown candidate mode %d", cfg.Mode)
	}

	// Batch-score candidates.
	cand := vec.NewMatrix(len(candIDs), rk.dim)
	keep := candIDs[:0]
	row := 0
	for _, id := range candIDs {
		if corruptSource {
			if id == s {
				continue
			}
			if cfg.Filtered && cfg.Known != nil && cfg.Known.Contains(id, rel, d) {
				continue
			}
		} else {
			if id == d {
				continue
			}
			if cfg.Filtered && cfg.Known != nil && cfg.Known.Contains(s, rel, id) {
				continue
			}
		}
		if _, err := rk.emb.Embedding(candType, id, cand.Row(row)); err != nil {
			return 0, err
		}
		keep = append(keep, id)
		row++
	}
	cand = vec.MatrixFrom(cand.Data[:row*rk.dim], row, rk.dim)
	scores := make([]float32, row)
	if corruptSource {
		// Score candidates as sources against the fixed destination:
		// f(s', r, d). Compute one by one through the operator (candidates
		// must be transformed); ScoreMany transforms the query side, so
		// evaluate per candidate.
		for j := 0; j < row; j++ {
			scores[j] = sc.ScoreReverse(cand.Row(j), dstEmb, params)
		}
	} else {
		sc.ScoreMany(scores, srcEmb, params, cand)
	}
	return MidRank(trueScore, scores), nil
}

// Curve records a learning curve: MRR over epochs with wallclock stamps
// (Figures 5–7).
type Curve struct {
	Label   string
	Epochs  []int
	Seconds []float64
	MRR     []float64
}

// Add appends one point.
func (c *Curve) Add(epoch int, seconds, mrr float64) {
	c.Epochs = append(c.Epochs, epoch)
	c.Seconds = append(c.Seconds, seconds)
	c.MRR = append(c.MRR, mrr)
}

// String renders the curve as aligned columns.
func (c *Curve) String() string {
	out := fmt.Sprintf("# %s\n# epoch  seconds  MRR\n", c.Label)
	for i := range c.Epochs {
		out += fmt.Sprintf("%7d %8.2f %.4f\n", c.Epochs[i], c.Seconds[i], c.MRR[i])
	}
	return out
}

// MeanStd returns the mean and standard deviation of xs (for the ComplEx
// instability probe of §5.4.2).
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
