// Package baselines implements the two published systems the paper compares
// against in Table 1 and Figure 5: DeepWalk (Perozzi et al. 2014) and MILE
// (Liang et al. 2018). Both are reimplemented from their papers so they run
// under the identical evaluation protocol as PBG.
package baselines

import (
	"fmt"
	"math"
	"sync"

	"pbg/internal/graph"
	"pbg/internal/optim"
	"pbg/internal/rng"
	"pbg/internal/vec"
)

// Adjacency is a CSR view of an undirected version of the graph, used for
// random walks and refinement smoothing.
type Adjacency struct {
	Offsets   []int32
	Neighbors []int32
	Weights   []float32 // parallel to Neighbors
	N         int
}

// BuildAdjacency symmetrises the edge list of a single-entity-type graph.
func BuildAdjacency(g *graph.Graph) *Adjacency {
	n := g.Schema.Entities[0].Count
	deg := make([]int32, n+1)
	m := g.Edges.Len()
	for i := 0; i < m; i++ {
		s, _, d := g.Edges.Edge(i)
		deg[s+1]++
		deg[d+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	adj := &Adjacency{Offsets: deg, Neighbors: make([]int32, 2*m), Weights: make([]float32, 2*m), N: n}
	cursor := make([]int32, n)
	for i := 0; i < m; i++ {
		s, _, d := g.Edges.Edge(i)
		adj.Neighbors[adj.Offsets[s]+cursor[s]] = d
		adj.Weights[adj.Offsets[s]+cursor[s]] = 1
		cursor[s]++
		adj.Neighbors[adj.Offsets[d]+cursor[d]] = s
		adj.Weights[adj.Offsets[d]+cursor[d]] = 1
		cursor[d]++
	}
	return adj
}

// Degree returns the number of neighbours of v.
func (a *Adjacency) Degree(v int32) int {
	return int(a.Offsets[v+1] - a.Offsets[v])
}

// Neigh returns the neighbour slice of v.
func (a *Adjacency) Neigh(v int32) []int32 {
	return a.Neighbors[a.Offsets[v]:a.Offsets[v+1]]
}

// NeighWeights returns the edge weights parallel to Neigh(v).
func (a *Adjacency) NeighWeights(v int32) []float32 {
	return a.Weights[a.Offsets[v]:a.Offsets[v+1]]
}

// DeepWalkConfig holds the hyperparameters from Perozzi et al. 2014 /
// word2vec.
type DeepWalkConfig struct {
	Dim       int
	WalksPer  int // γ: walks per node per epoch
	WalkLen   int // t: walk length
	Window    int // w: skip-gram window
	Negatives int // k: negative samples per positive
	LR        float32
	Epochs    int
	Workers   int
	Seed      uint64
	// UnigramPower is the negative-sampling distribution exponent (0.75 in
	// word2vec).
	UnigramPower float64
}

func (c DeepWalkConfig) withDefaults() DeepWalkConfig {
	if c.WalksPer == 0 {
		c.WalksPer = 10
	}
	if c.WalkLen == 0 {
		c.WalkLen = 40
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.UnigramPower == 0 {
		c.UnigramPower = 0.75
	}
	return c
}

// DeepWalkModel holds the trained embeddings (input vectors, as in
// word2vec) plus the context table.
type DeepWalkModel struct {
	Dim int
	In  vec.Matrix
	Out vec.Matrix
}

// DeepWalkEpochStats reports one epoch of training.
type DeepWalkEpochStats struct {
	Epoch int
	Pairs int
}

// TrainDeepWalk runs random walks + skip-gram with negative sampling over
// the undirected view of g. onEpoch, if non-nil, fires after each epoch
// (learning curves for Figure 5).
func TrainDeepWalk(g *graph.Graph, cfg DeepWalkConfig, onEpoch func(DeepWalkEpochStats, *DeepWalkModel)) (*DeepWalkModel, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("baselines: DeepWalk needs Dim > 0")
	}
	if len(g.Schema.Entities) != 1 {
		return nil, fmt.Errorf("baselines: DeepWalk supports single-entity-type graphs")
	}
	adj := BuildAdjacency(g)
	n := adj.N
	r := rng.New(cfg.Seed)
	m := &DeepWalkModel{Dim: cfg.Dim, In: vec.NewMatrix(n, cfg.Dim), Out: vec.NewMatrix(n, cfg.Dim)}
	std := 1 / float32(math.Sqrt(float64(cfg.Dim)))
	for i := range m.In.Data {
		m.In.Data[i] = r.NormFloat32() * std
	}
	// Out starts at zero, as in word2vec.

	// Negative sampling ∝ degree^0.75.
	w := make([]float64, n)
	for v := 0; v < n; v++ {
		w[v] = math.Pow(float64(adj.Degree(int32(v))), cfg.UnigramPower)
	}
	negAlias := rng.NewAlias(w)

	inAcc := make([]float32, n)
	outAcc := make([]float32, n)
	opt := optim.NewRowAdagrad(cfg.LR)

	for e := 0; e < cfg.Epochs; e++ {
		var wg sync.WaitGroup
		pairCounts := make([]int, cfg.Workers)
		for wk := 0; wk < cfg.Workers; wk++ {
			wg.Add(1)
			go func(wk int, wr *rng.RNG) {
				defer wg.Done()
				walk := make([]int32, cfg.WalkLen)
				gradC := make([]float32, cfg.Dim)
				gradX := make([]float32, cfg.Dim)
				lo := wk * n / cfg.Workers
				hi := (wk + 1) * n / cfg.Workers
				for start := lo; start < hi; start++ {
					if adj.Degree(int32(start)) == 0 {
						continue
					}
					for wn := 0; wn < cfg.WalksPer; wn++ {
						// Generate one walk.
						v := int32(start)
						length := 0
						for length < cfg.WalkLen {
							walk[length] = v
							length++
							nb := adj.Neigh(v)
							if len(nb) == 0 {
								break
							}
							v = nb[wr.Intn(len(nb))]
						}
						// Skip-gram over the walk.
						for i := 0; i < length; i++ {
							c := walk[i]
							win := 1 + wr.Intn(cfg.Window)
							for j := i - win; j <= i+win; j++ {
								if j < 0 || j >= length || j == i {
									continue
								}
								x := walk[j]
								pairCounts[wk]++
								// Positive pair + k negatives.
								vec.Zero(gradC)
								for neg := -1; neg < cfg.Negatives; neg++ {
									var target int32
									var label float32
									if neg < 0 {
										target, label = x, 1
									} else {
										target, label = int32(negAlias.Sample(wr)), 0
										if target == x {
											continue
										}
									}
									ci := m.In.Row(int(c))
									co := m.Out.Row(int(target))
									s := vec.Dot(ci, co)
									gr := vec.Sigmoid(s) - label
									for k2 := 0; k2 < cfg.Dim; k2++ {
										gradC[k2] += gr * co[k2]
										gradX[k2] = gr * ci[k2]
									}
									opt.Update(co, gradX, &outAcc[target])
								}
								opt.Update(m.In.Row(int(c)), gradC, &inAcc[c])
							}
						}
					}
				}
			}(wk, r.Split())
		}
		wg.Wait()
		total := 0
		for _, pc := range pairCounts {
			total += pc
		}
		if onEpoch != nil {
			onEpoch(DeepWalkEpochStats{Epoch: e, Pairs: total}, m)
		}
	}
	return m, nil
}

// MemoryBytes reports the model's table sizes (for Table 1's memory column).
func (m *DeepWalkModel) MemoryBytes() int64 {
	return int64(len(m.In.Data)+len(m.Out.Data)) * 4
}
