package baselines

import (
	"fmt"

	"pbg/internal/model"
	"pbg/internal/vec"
)

// EmbeddingTable adapts a flat baseline embedding matrix to the evaluation
// interfaces (eval.EmbeddingSource and eval.ScorerSource), so DeepWalk and
// MILE are ranked under exactly the same protocol as PBG. Scoring uses
// cosine similarity with the identity operator, the standard choice for
// single-relation baselines.
type EmbeddingTable struct {
	Emb    vec.Matrix
	scorer *model.Scorer
}

// NewEmbeddingTable wraps a trained matrix.
func NewEmbeddingTable(emb vec.Matrix) (*EmbeddingTable, error) {
	sc, err := model.NewScorer(emb.Cols, "identity", "cos", "ranking", 0.1, false)
	if err != nil {
		return nil, err
	}
	return &EmbeddingTable{Emb: emb, scorer: sc}, nil
}

// Embedding implements eval.EmbeddingSource.
func (t *EmbeddingTable) Embedding(typeIdx int, id int32, out []float32) ([]float32, error) {
	if typeIdx != 0 {
		return nil, fmt.Errorf("baselines: single entity type only")
	}
	if int(id) >= t.Emb.Rows {
		return nil, fmt.Errorf("baselines: id %d out of range", id)
	}
	copy(out, t.Emb.Row(int(id)))
	return out, nil
}

// Scorer implements eval.ScorerSource.
func (t *EmbeddingTable) Scorer(rel int) *model.Scorer { return t.scorer }

// RelParams implements eval.ScorerSource (identity operator: no params).
func (t *EmbeddingTable) RelParams(rel int) []float32 { return nil }
