package baselines

import (
	"fmt"
	"math"

	"pbg/internal/graph"
	"pbg/internal/rng"
	"pbg/internal/vec"
)

// MILE (Liang et al. 2018) embeds large graphs by (1) repeatedly coarsening
// the graph with heavy-edge matching, (2) embedding the coarsest graph with
// a base method (DeepWalk here, as in the paper), and (3) refining the
// embeddings back up the hierarchy.
//
// Substitution note: the published MILE refines with a graph convolutional
// network trained to reconstruct the coarse embeddings. This implementation
// refines by projection + degree-normalised neighbourhood smoothing, which
// preserves the method's shape (quality degrades as levels increase, memory
// shrinks) without a neural-network training loop; the paper's Table 1 MILE
// rows show exactly that qualitative pattern.
type MILEConfig struct {
	// Levels of coarsening (the paper sweeps 1–8).
	Levels int
	// Base configures the DeepWalk run on the coarsest graph.
	Base DeepWalkConfig
	// SmoothRounds per refinement level.
	SmoothRounds int
	// SmoothBeta blends neighbour means into each node (0..1).
	SmoothBeta float32
	Seed       uint64
}

func (c MILEConfig) withDefaults() MILEConfig {
	if c.Levels == 0 {
		c.Levels = 2
	}
	if c.SmoothRounds == 0 {
		c.SmoothRounds = 2
	}
	if c.SmoothBeta == 0 {
		c.SmoothBeta = 0.5
	}
	return c
}

// coarseGraph is one level of the hierarchy.
type coarseGraph struct {
	adj *Adjacency
	// match[v] = supernode index at the next-coarser level.
	match []int32
	n     int
}

// MILEModel holds the refined embeddings for the original graph.
type MILEModel struct {
	Dim int
	Emb vec.Matrix
	// CoarsestNodes reports the size of the graph the base embedding ran
	// on (the memory-saving knob of the method).
	CoarsestNodes int
}

// TrainMILE runs the full coarsen → embed → refine pipeline.
func TrainMILE(g *graph.Graph, cfg MILEConfig) (*MILEModel, error) {
	cfg = cfg.withDefaults()
	if cfg.Base.Dim <= 0 {
		return nil, fmt.Errorf("baselines: MILE needs Base.Dim > 0")
	}
	if len(g.Schema.Entities) != 1 {
		return nil, fmt.Errorf("baselines: MILE supports single-entity-type graphs")
	}
	r := rng.New(cfg.Seed)

	// ---- Coarsening phase: heavy-edge matching ----
	levels := []*coarseGraph{{adj: BuildAdjacency(g), n: g.Schema.Entities[0].Count}}
	for l := 0; l < cfg.Levels; l++ {
		cur := levels[len(levels)-1]
		matched, coarseN := heavyEdgeMatch(cur.adj, r)
		cur.match = matched
		if coarseN >= cur.n {
			break // no further coarsening possible
		}
		coarse := buildCoarse(cur.adj, matched, coarseN)
		levels = append(levels, &coarseGraph{adj: coarse, n: coarseN})
	}

	// ---- Base embedding on the coarsest graph ----
	coarsest := levels[len(levels)-1]
	baseCfg := cfg.Base
	baseCfg.Seed = cfg.Seed ^ 0xD1CE
	baseG := adjacencyToGraph(coarsest.adj)
	baseModel, err := TrainDeepWalk(baseG, baseCfg, nil)
	if err != nil {
		return nil, err
	}
	emb := baseModel.In

	// ---- Refinement phase: project + smooth back down the hierarchy ----
	for l := len(levels) - 2; l >= 0; l-- {
		fine := levels[l]
		fineEmb := vec.NewMatrix(fine.n, cfg.Base.Dim)
		for v := 0; v < fine.n; v++ {
			copy(fineEmb.Row(v), emb.Row(int(fine.match[v])))
		}
		smooth(fine.adj, fineEmb, cfg.SmoothRounds, cfg.SmoothBeta)
		emb = fineEmb
	}
	return &MILEModel{Dim: cfg.Base.Dim, Emb: emb, CoarsestNodes: coarsest.n}, nil
}

// heavyEdgeMatch greedily matches each unmatched node with its
// heaviest-edge unmatched neighbour; unmatched leftovers become singleton
// supernodes. Returns the fine→coarse map and the coarse node count.
func heavyEdgeMatch(adj *Adjacency, r *rng.RNG) ([]int32, int) {
	n := adj.N
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	// Visit nodes in random order for matching fairness.
	order := make([]int, n)
	r.Perm(order)
	next := int32(0)
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		// Find the heaviest unmatched neighbour.
		var best int32 = -1
		var bestW float32 = -1
		nb := adj.Neigh(v)
		ws := adj.NeighWeights(v)
		for k, u := range nb {
			if u != v && match[u] < 0 && ws[k] > bestW {
				best, bestW = u, ws[k]
			}
		}
		match[v] = next
		if best >= 0 {
			match[best] = next
		}
		next++
	}
	return match, int(next)
}

// buildCoarse aggregates the fine adjacency through the matching, summing
// parallel edge weights and dropping supernode self-loops.
func buildCoarse(adj *Adjacency, match []int32, coarseN int) *Adjacency {
	type edge struct{ a, b int32 }
	agg := map[edge]float32{}
	for v := 0; v < adj.N; v++ {
		cv := match[v]
		nb := adj.Neigh(int32(v))
		ws := adj.NeighWeights(int32(v))
		for k, u := range nb {
			cu := match[u]
			if cu == cv {
				continue
			}
			// Count each undirected pair once (from the lower endpoint).
			if cv < cu {
				agg[edge{cv, cu}] += ws[k]
			}
		}
	}
	deg := make([]int32, coarseN+1)
	for e := range agg {
		deg[e.a+1]++
		deg[e.b+1]++
	}
	for i := 1; i <= coarseN; i++ {
		deg[i] += deg[i-1]
	}
	total := 0
	for range agg {
		total += 2
	}
	out := &Adjacency{Offsets: deg, Neighbors: make([]int32, total), Weights: make([]float32, total), N: coarseN}
	cursor := make([]int32, coarseN)
	for e, w := range agg {
		out.Neighbors[out.Offsets[e.a]+cursor[e.a]] = e.b
		out.Weights[out.Offsets[e.a]+cursor[e.a]] = w
		cursor[e.a]++
		out.Neighbors[out.Offsets[e.b]+cursor[e.b]] = e.a
		out.Weights[out.Offsets[e.b]+cursor[e.b]] = w
		cursor[e.b]++
	}
	return out
}

// adjacencyToGraph converts a coarse adjacency back into a graph.Graph so
// the base embedder can run on it (each undirected edge appears once).
func adjacencyToGraph(adj *Adjacency) *graph.Graph {
	el := &graph.EdgeList{}
	for v := int32(0); int(v) < adj.N; v++ {
		for _, u := range adj.Neigh(v) {
			if v < u {
				el.Append(v, 0, u)
			}
		}
	}
	n := adj.N
	if n == 0 {
		n = 1
	}
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "node", Count: n, NumPartitions: 1}},
		[]graph.RelationType{{Name: "e", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
	return graph.MustGraph(schema, el)
}

// smooth runs degree-normalised neighbourhood averaging:
// x_v ← (1−β)·x_v + β·Σ_u w_vu·x_u / Σ_u w_vu, then renormalises rows.
func smooth(adj *Adjacency, emb vec.Matrix, rounds int, beta float32) {
	d := emb.Cols
	next := vec.NewMatrix(emb.Rows, d)
	for round := 0; round < rounds; round++ {
		for v := 0; v < adj.N; v++ {
			nb := adj.Neigh(int32(v))
			ws := adj.NeighWeights(int32(v))
			row := next.Row(v)
			copy(row, emb.Row(v))
			if len(nb) == 0 {
				continue
			}
			var totalW float32
			mean := make([]float32, d)
			for k, u := range nb {
				vec.Axpy(ws[k], emb.Row(int(u)), mean)
				totalW += ws[k]
			}
			if totalW > 0 {
				for k2 := 0; k2 < d; k2++ {
					row[k2] = (1-beta)*row[k2] + beta*mean[k2]/totalW
				}
			}
		}
		copy(emb.Data, next.Data)
	}
	// Renormalise so cosine scoring stays scale-free.
	for v := 0; v < emb.Rows; v++ {
		vec.Normalize(emb.Row(v))
	}
}

// MemoryBytes reports the final table plus the base model's share — the
// quantity MILE economises by embedding only the coarsest graph.
func (m *MILEModel) MemoryBytes() int64 {
	base := int64(m.CoarsestNodes) * int64(m.Dim) * 4 * 2 // in+out tables
	return int64(len(m.Emb.Data))*4 + base
}

// EffectiveCompression returns original/coarsest node ratio.
func (m *MILEModel) EffectiveCompression(originalNodes int) float64 {
	if m.CoarsestNodes == 0 {
		return math.Inf(1)
	}
	return float64(originalNodes) / float64(m.CoarsestNodes)
}
