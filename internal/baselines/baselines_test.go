package baselines

import (
	"testing"

	"pbg/internal/datagen"
	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/rng"
	"pbg/internal/vec"
)

func socialGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := datagen.Social(datagen.SocialConfig{Nodes: 500, AvgOutDegree: 8, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildAdjacencySymmetric(t *testing.T) {
	g := socialGraph(t)
	adj := BuildAdjacency(g)
	if adj.N != 500 {
		t.Fatalf("N = %d", adj.N)
	}
	// Symmetry: u in Neigh(v) ⇔ v in Neigh(u).
	for v := int32(0); v < 100; v++ {
		for _, u := range adj.Neigh(v) {
			found := false
			for _, w := range adj.Neigh(u) {
				if w == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency: %d→%d", v, u)
			}
		}
	}
	// Total neighbor entries = 2×edges.
	if len(adj.Neighbors) != 2*g.Edges.Len() {
		t.Fatalf("neighbor entries %d, want %d", len(adj.Neighbors), 2*g.Edges.Len())
	}
}

func TestDeepWalkLearns(t *testing.T) {
	g := socialGraph(t)
	trainG, _, testG := g.Split(0, 0.2, 5)
	m, err := TrainDeepWalk(trainG, DeepWalkConfig{Dim: 16, Epochs: 2, WalksPer: 5, WalkLen: 20, Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.AllFinite(m.In.Data) {
		t.Fatal("non-finite embeddings")
	}
	table, err := NewEmbeddingTable(m.In)
	if err != nil {
		t.Fatal(err)
	}
	deg := graph.ComputeDegrees(trainG)
	rk := eval.NewRanker(trainG.Schema, table, table, 16, deg)
	got, err := rk.Evaluate(testG.Edges, eval.Config{Mode: eval.CandidatesUniform, K: 100, MaxEdges: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Random MRR ≈ 0.05 against 100 candidates; DeepWalk must beat it
	// decisively on a community graph.
	if got.MRR < 0.1 {
		t.Fatalf("DeepWalk MRR %.3f not above random", got.MRR)
	}
}

func TestDeepWalkEpochCallback(t *testing.T) {
	g := socialGraph(t)
	calls := 0
	_, err := TrainDeepWalk(g, DeepWalkConfig{Dim: 8, Epochs: 3, WalksPer: 1, WalkLen: 10, Seed: 7},
		func(st DeepWalkEpochStats, m *DeepWalkModel) {
			if st.Epoch != calls {
				t.Errorf("epoch %d out of order", st.Epoch)
			}
			if st.Pairs == 0 {
				t.Error("no pairs trained")
			}
			calls++
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("callback fired %d times", calls)
	}
}

func TestDeepWalkRejectsMultiEntity(t *testing.T) {
	g, err := datagen.Bipartite(datagen.BipartiteConfig{Users: 50, Items: 10, Edges: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainDeepWalk(g, DeepWalkConfig{Dim: 8}, nil); err == nil {
		t.Fatal("expected error for multi-entity graph")
	}
}

func TestHeavyEdgeMatchHalves(t *testing.T) {
	g := socialGraph(t)
	adj := BuildAdjacency(g)
	match, coarseN := heavyEdgeMatch(adj, rng.New(1))
	if coarseN >= adj.N {
		t.Fatalf("no coarsening: %d → %d", adj.N, coarseN)
	}
	if coarseN < adj.N/2 {
		t.Fatalf("impossible coarsening below half: %d → %d", adj.N, coarseN)
	}
	// Every node mapped; each supernode has 1 or 2 members.
	counts := make([]int, coarseN)
	for _, c := range match {
		if c < 0 || int(c) >= coarseN {
			t.Fatalf("bad supernode %d", c)
		}
		counts[c]++
	}
	for s, n := range counts {
		if n < 1 || n > 2 {
			t.Fatalf("supernode %d has %d members", s, n)
		}
	}
}

func TestMILECoarsensAndRefines(t *testing.T) {
	g := socialGraph(t)
	trainG, _, testG := g.Split(0, 0.2, 5)
	m, err := TrainMILE(trainG, MILEConfig{
		Levels: 2,
		Base:   DeepWalkConfig{Dim: 16, Epochs: 2, WalksPer: 5, WalkLen: 20},
		Seed:   9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Emb.Rows != 500 {
		t.Fatalf("refined rows %d", m.Emb.Rows)
	}
	if m.CoarsestNodes >= 500 {
		t.Fatal("no compression achieved")
	}
	if !vec.AllFinite(m.Emb.Data) {
		t.Fatal("non-finite embeddings")
	}
	table, err := NewEmbeddingTable(m.Emb)
	if err != nil {
		t.Fatal(err)
	}
	deg := graph.ComputeDegrees(trainG)
	rk := eval.NewRanker(trainG.Schema, table, table, 16, deg)
	got, err := rk.Evaluate(testG.Edges, eval.Config{Mode: eval.CandidatesUniform, K: 100, MaxEdges: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.MRR < 0.08 {
		t.Fatalf("MILE MRR %.3f not above random", got.MRR)
	}
}

func TestMILEMoreLevelsMoreCompression(t *testing.T) {
	g := socialGraph(t)
	m1, err := TrainMILE(g, MILEConfig{Levels: 1, Base: DeepWalkConfig{Dim: 8, Epochs: 1, WalksPer: 2, WalkLen: 10}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := TrainMILE(g, MILEConfig{Levels: 3, Base: DeepWalkConfig{Dim: 8, Epochs: 1, WalksPer: 2, WalkLen: 10}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m3.CoarsestNodes >= m1.CoarsestNodes {
		t.Fatalf("levels=3 coarsest %d not smaller than levels=1 %d", m3.CoarsestNodes, m1.CoarsestNodes)
	}
	if m3.MemoryBytes() >= m1.MemoryBytes() {
		t.Fatalf("more levels should reduce base memory: %d vs %d", m3.MemoryBytes(), m1.MemoryBytes())
	}
}

func TestEmbeddingTableBounds(t *testing.T) {
	table, err := NewEmbeddingTable(vec.NewMatrix(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, 4)
	if _, err := table.Embedding(0, 3, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := table.Embedding(0, 99, buf); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := table.Embedding(1, 0, buf); err == nil {
		t.Fatal("expected entity-type error")
	}
}
