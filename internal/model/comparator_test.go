package model

import (
	"math"
	"testing"

	"pbg/internal/rng"
	"pbg/internal/vec"
)

var allComparatorNames = []string{"dot", "cos", "l2", "squared_l2"}

func TestNewComparatorUnknown(t *testing.T) {
	if _, err := NewComparator("hamming"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDotPairScores(t *testing.T) {
	a := vec.MatrixFrom([]float32{1, 0, 0, 1}, 2, 2)
	b := vec.MatrixFrom([]float32{2, 3, 4, 5}, 2, 2)
	out := make([]float32, 2)
	DotComparator{}.PairScores(out, a, b)
	if out[0] != 2 || out[1] != 5 {
		t.Fatalf("PairScores = %v", out)
	}
}

func TestCosScoresAreNormalized(t *testing.T) {
	cmp := CosComparator{}
	a := vec.MatrixFrom([]float32{3, 4}, 1, 2)
	b := vec.MatrixFrom([]float32{30, 40}, 1, 2)
	cmp.Prepare(a)
	cmp.Prepare(b)
	out := make([]float32, 1)
	cmp.PairScores(out, a, b)
	if !approx(out[0], 1, 1e-4) {
		t.Fatalf("cos of parallel vectors = %v, want 1", out[0])
	}
}

func TestSquaredL2CrossMatchesPair(t *testing.T) {
	r := rng.New(3)
	a := vec.NewMatrix(3, 5)
	b := vec.NewMatrix(3, 5)
	fill(r, a.Data)
	fill(r, b.Data)
	cmp := SquaredL2Comparator{}
	pair := make([]float32, 3)
	cmp.PairScores(pair, a, b)
	cross := vec.NewMatrix(3, 3)
	cmp.CrossScores(cross, a, b)
	for i := 0; i < 3; i++ {
		if !approx(pair[i], cross.Row(i)[i], 1e-3) {
			t.Fatalf("diag mismatch at %d: pair %v vs cross %v", i, pair[i], cross.Row(i)[i])
		}
	}
}

func TestL2CrossMatchesPair(t *testing.T) {
	r := rng.New(5)
	a := vec.NewMatrix(4, 6)
	b := vec.NewMatrix(4, 6)
	fill(r, a.Data)
	fill(r, b.Data)
	cmp := L2Comparator{}
	pair := make([]float32, 4)
	cmp.PairScores(pair, a, b)
	cross := vec.NewMatrix(4, 4)
	cmp.CrossScores(cross, a, b)
	for i := 0; i < 4; i++ {
		if !approx(pair[i], cross.Row(i)[i], 1e-3) {
			t.Fatalf("diag mismatch at %d: %v vs %v", i, pair[i], cross.Row(i)[i])
		}
	}
	// All distances are non-positive scores.
	for _, v := range cross.Data {
		if v > 0 {
			t.Fatalf("l2 score %v > 0", v)
		}
	}
}

// comparatorLoss builds the scalar Σ gPair·pair + Σ gCross·cross for FD
// checking. It re-runs Prepare on fresh copies each call.
func comparatorLoss(cmp Comparator, aRaw, bRaw vec.Matrix, gPair []float32, gCross vec.Matrix) float64 {
	a := vec.NewMatrix(aRaw.Rows, aRaw.Cols)
	b := vec.NewMatrix(bRaw.Rows, bRaw.Cols)
	copy(a.Data, aRaw.Data)
	copy(b.Data, bRaw.Data)
	cmp.Prepare(a)
	cmp.Prepare(b)
	pair := make([]float32, a.Rows)
	cmp.PairScores(pair, a, b)
	cross := vec.NewMatrix(a.Rows, b.Rows)
	cmp.CrossScores(cross, a, b)
	var s float64
	for i := range pair {
		s += float64(gPair[i] * pair[i])
	}
	for i := range cross.Data {
		s += float64(gCross.Data[i] * cross.Data[i])
	}
	return s
}

// TestComparatorGradients validates PairBackward + CrossBackward +
// UnprepareGrad against finite differences for every comparator.
func TestComparatorGradients(t *testing.T) {
	const n, m, d = 3, 4, 5
	for _, name := range allComparatorNames {
		cmp, err := NewComparator(name)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(11)
		aRaw := vec.NewMatrix(n, d)
		bRaw := vec.NewMatrix(n, d) // pair side needs equal rows
		fill(r, aRaw.Data)
		fill(r, bRaw.Data)
		gPair := make([]float32, n)
		gCross := vec.NewMatrix(n, n)
		fill(r, gPair)
		fill(r, gCross.Data)

		// Analytic gradients.
		a := vec.NewMatrix(n, d)
		b := vec.NewMatrix(n, d)
		copy(a.Data, aRaw.Data)
		copy(b.Data, bRaw.Data)
		sa := cmp.Prepare(a)
		sb := cmp.Prepare(b)
		pair := make([]float32, n)
		cmp.PairScores(pair, a, b)
		cross := vec.NewMatrix(n, n)
		cmp.CrossScores(cross, a, b)
		ga := vec.NewMatrix(n, d)
		gb := vec.NewMatrix(n, d)
		cmp.PairBackward(ga, gb, gPair, pair, a, b)
		cmp.CrossBackward(ga, gb, gCross, cross, a, b)
		cmp.UnprepareGrad(ga, a, sa)
		cmp.UnprepareGrad(gb, b, sb)

		const h = 1e-2
		check := func(raw vec.Matrix, grad vec.Matrix, label string) {
			for i := range raw.Data {
				old := raw.Data[i]
				raw.Data[i] = old + h
				lp := comparatorLoss(cmp, aRaw, bRaw, gPair, gCross)
				raw.Data[i] = old - h
				lm := comparatorLoss(cmp, aRaw, bRaw, gPair, gCross)
				raw.Data[i] = old
				fd := float32((lp - lm) / (2 * h))
				if !approx(fd, grad.Data[i], 5e-2) {
					t.Errorf("%s: %s[%d] analytic %v vs fd %v", name, label, i, grad.Data[i], fd)
				}
			}
		}
		check(aRaw, ga, "gA")
		check(bRaw, gb, "gB")
	}
}

// Cosine gradients must be orthogonal to the embedding direction: moving
// along x cannot change cos(x, y).
func TestCosGradOrthogonalToInput(t *testing.T) {
	cmp := CosComparator{}
	r := rng.New(21)
	aRaw := vec.NewMatrix(2, 6)
	bRaw := vec.NewMatrix(2, 6)
	fill(r, aRaw.Data)
	fill(r, bRaw.Data)
	a := vec.NewMatrix(2, 6)
	copy(a.Data, aRaw.Data)
	b := vec.NewMatrix(2, 6)
	copy(b.Data, bRaw.Data)
	sa := cmp.Prepare(a)
	cmp.Prepare(b)
	pair := make([]float32, 2)
	cmp.PairScores(pair, a, b)
	ga := vec.NewMatrix(2, 6)
	gb := vec.NewMatrix(2, 6)
	gPair := []float32{1, 1}
	cmp.PairBackward(ga, gb, gPair, pair, a, b)
	cmp.UnprepareGrad(ga, a, sa)
	for i := 0; i < 2; i++ {
		dot := vec.Dot(ga.Row(i), aRaw.Row(i))
		if math.Abs(float64(dot)) > 1e-3 {
			t.Fatalf("cos gradient not orthogonal to input: row %d dot %v", i, dot)
		}
	}
}

func TestCosZeroVectorNoNaN(t *testing.T) {
	cmp := CosComparator{}
	a := vec.NewMatrix(1, 4) // zero row
	b := vec.MatrixFrom([]float32{1, 2, 3, 4}, 1, 4)
	sa := cmp.Prepare(a)
	cmp.Prepare(b)
	out := make([]float32, 1)
	cmp.PairScores(out, a, b)
	if out[0] != 0 {
		t.Fatalf("cos with zero vector = %v, want 0", out[0])
	}
	ga := vec.NewMatrix(1, 4)
	gb := vec.NewMatrix(1, 4)
	cmp.PairBackward(ga, gb, []float32{1}, out, a, b)
	cmp.UnprepareGrad(ga, a, sa)
	if !vec.AllFinite(ga.Data) {
		t.Fatalf("non-finite gradient for zero vector: %v", ga.Data)
	}
	for _, v := range ga.Data {
		if v != 0 {
			t.Fatalf("zero row should get zero grad, got %v", ga.Data)
		}
	}
}

func TestL2IdenticalVectorsNoNaN(t *testing.T) {
	cmp := L2Comparator{}
	a := vec.MatrixFrom([]float32{1, 2}, 1, 2)
	b := vec.MatrixFrom([]float32{1, 2}, 1, 2)
	out := make([]float32, 1)
	cmp.PairScores(out, a, b)
	if math.IsNaN(float64(out[0])) {
		t.Fatal("NaN score for identical vectors")
	}
	ga := vec.NewMatrix(1, 2)
	gb := vec.NewMatrix(1, 2)
	cmp.PairBackward(ga, gb, []float32{1}, out, a, b)
	if !vec.AllFinite(ga.Data) || !vec.AllFinite(gb.Data) {
		t.Fatal("non-finite gradient at zero distance")
	}
}
