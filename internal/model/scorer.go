package model

import (
	"fmt"

	"pbg/internal/vec"
)

// Scorer wires an operator, comparator and loss into the batched chunk
// computation of §4.3 / Figure 3. One Scorer is shared read-only by all
// workers; each worker owns a Workspace for scratch space.
//
// Scoring convention: the operator transforms the source side,
// f(s, r, d) = sim(g(θ_s; θ_r), θ_d). With Reciprocal=true a second
// parameter block per relation (the "reciprocal predicate" of Lacroix et al.
// 2018, used by the paper's FB15k ComplEx runs) transforms the destination
// side when ranking corrupted sources: f_rev(s, r, d) = sim(θ_s, g(θ_d; θ'_r)).
type Scorer struct {
	Dim        int
	Op         Operator
	Cmp        Comparator
	Loss       Loss
	Reciprocal bool
}

// NewScorer validates and builds a scorer from config strings.
func NewScorer(dim int, operator, comparator, loss string, margin float32, reciprocal bool) (*Scorer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("model: non-positive dimension %d", dim)
	}
	op, err := NewOperator(operator, dim)
	if err != nil {
		return nil, err
	}
	cmp, err := NewComparator(comparator)
	if err != nil {
		return nil, err
	}
	ls, err := NewLoss(loss, margin)
	if err != nil {
		return nil, err
	}
	return &Scorer{Dim: dim, Op: op, Cmp: cmp, Loss: ls, Reciprocal: reciprocal}, nil
}

// RelParamCount returns the number of float32 parameters one relation needs
// (doubled under reciprocal mode).
func (s *Scorer) RelParamCount() int {
	n := s.Op.ParamCount(s.Dim)
	if s.Reciprocal {
		n *= 2
	}
	return n
}

// SplitRelParams splits a relation's parameter block into forward and
// reverse halves. rev is nil when not reciprocal.
func (s *Scorer) SplitRelParams(params []float32) (fwd, rev []float32) {
	n := s.Op.ParamCount(s.Dim)
	if n == 0 {
		return nil, nil
	}
	if s.Reciprocal {
		return params[:n], params[n:]
	}
	return params, nil
}

// InitRelParams initialises a relation parameter block in place.
func (s *Scorer) InitRelParams(params []float32) {
	fwd, rev := s.SplitRelParams(params)
	if fwd != nil {
		s.Op.InitParams(fwd, nil)
	}
	if rev != nil {
		s.Op.InitParams(rev, nil)
	}
}

// Score computes f(s, r, d) for a single edge given raw embeddings; used by
// evaluation. relParams is the full (possibly reciprocal) block; the forward
// half is used.
func (s *Scorer) Score(src, dst, relParams []float32) float32 {
	fwd, _ := s.SplitRelParams(relParams)
	ts := make([]float32, s.Dim)
	s.Op.Apply(ts, src, fwd)
	a := vec.MatrixFrom(ts, 1, s.Dim)
	dcopy := make([]float32, s.Dim)
	copy(dcopy, dst)
	b := vec.MatrixFrom(dcopy, 1, s.Dim)
	s.Cmp.Prepare(a)
	s.Cmp.Prepare(b)
	out := make([]float32, 1)
	s.Cmp.PairScores(out, a, b)
	return out[0]
}

// ScoreReverse computes the reverse-direction score used when ranking
// corrupted sources under reciprocal relations:
// f_rev(s, r, d) = sim(θ_s, g(θ_d; θ'_r)). Without reciprocal parameters it
// equals Score.
func (s *Scorer) ScoreReverse(src, dst, relParams []float32) float32 {
	if !s.Reciprocal {
		return s.Score(src, dst, relParams)
	}
	_, rev := s.SplitRelParams(relParams)
	td := make([]float32, s.Dim)
	s.Op.Apply(td, dst, rev)
	a := vec.MatrixFrom(td, 1, s.Dim)
	scopy := make([]float32, s.Dim)
	copy(scopy, src)
	b := vec.MatrixFrom(scopy, 1, s.Dim)
	s.Cmp.Prepare(a)
	s.Cmp.Prepare(b)
	out := make([]float32, 1)
	s.Cmp.PairScores(out, a, b)
	return out[0]
}

// ScoreMany computes scores of one transformed query against many candidate
// rows: out[j] = sim(g(src), cand_j). cand is modified in place by Prepare;
// pass a scratch copy. Used by the evaluation harness for ranking.
func (s *Scorer) ScoreMany(out []float32, src, relParams []float32, cand vec.Matrix) {
	fwd, _ := s.SplitRelParams(relParams)
	ts := make([]float32, s.Dim)
	s.Op.Apply(ts, src, fwd)
	a := vec.MatrixFrom(ts, 1, s.Dim)
	s.Cmp.Prepare(a)
	s.Cmp.Prepare(cand)
	o := vec.MatrixFrom(out, 1, len(out))
	s.Cmp.CrossScores(o, a, cand)
}

// ChunkInput is one chunk of positive edges plus the uniformly sampled
// candidate entities, with raw (untransformed, unprepared) embeddings
// gathered by the caller. C = Src.Rows positives, U = USrc.Rows extra
// candidates per side.
type ChunkInput struct {
	Src, Dst   vec.Matrix // C×d raw embeddings of the positive edges
	USrc, UDst vec.Matrix // U×d raw embeddings of sampled candidates
	// Entity IDs aligned with the rows above; used to mask induced
	// positives (a candidate that IS the true endpoint of that edge).
	SrcIDs, DstIDs   []int32
	USrcIDs, UDstIDs []int32
	// RelWeight is the per-relation edge weight (§3.1 feature list).
	RelWeight float32
	// RelFwd / RelRev are the relation operator parameters. RelRev is only
	// consulted when the scorer is reciprocal.
	RelFwd, RelRev []float32
}

// ChunkGrad receives gradients with respect to every raw input of a chunk.
// The caller owns the buffers and applies them with its optimizer.
type ChunkGrad struct {
	Src, Dst   vec.Matrix
	USrc, UDst vec.Matrix
	RelFwd     []float32
	RelRev     []float32
	Loss       float64
	// NegCount is the number of unmasked negative examples contributing.
	NegCount int
}

// NewChunkGrad allocates gradient buffers for chunks up to maxC positives
// and maxU uniform candidates.
func (s *Scorer) NewChunkGrad(maxC, maxU int) *ChunkGrad {
	g := &ChunkGrad{
		Src:    vec.NewMatrix(maxC, s.Dim),
		Dst:    vec.NewMatrix(maxC, s.Dim),
		USrc:   vec.NewMatrix(maxU, s.Dim),
		UDst:   vec.NewMatrix(maxU, s.Dim),
		RelFwd: make([]float32, s.Op.ParamCount(s.Dim)),
	}
	if s.Reciprocal {
		g.RelRev = make([]float32, s.Op.ParamCount(s.Dim))
	}
	return g
}

// view returns the subview of g sized for a chunk with C positives and U
// candidates, zeroing the active region.
func (g *ChunkGrad) view(c, u, dim int) *ChunkGrad {
	out := &ChunkGrad{
		Src:    vec.MatrixFrom(g.Src.Data[:c*dim], c, dim),
		Dst:    vec.MatrixFrom(g.Dst.Data[:c*dim], c, dim),
		USrc:   vec.MatrixFrom(g.USrc.Data[:u*dim], u, dim),
		UDst:   vec.MatrixFrom(g.UDst.Data[:u*dim], u, dim),
		RelFwd: g.RelFwd,
		RelRev: g.RelRev,
	}
	vec.Zero(out.Src.Data)
	vec.Zero(out.Dst.Data)
	vec.Zero(out.USrc.Data)
	vec.Zero(out.UDst.Data)
	vec.Zero(out.RelFwd)
	vec.Zero(out.RelRev)
	return out
}

// Workspace holds per-worker scratch buffers for ScoreChunk, sized at
// construction for the largest chunk the worker will process.
type Workspace struct {
	maxC, maxU int
	dim        int

	ts      vec.Matrix // C×d transformed sources
	td      vec.Matrix // C×d transformed destinations (reciprocal mode)
	candD   vec.Matrix // (C+U)×d destination candidates (prepared in place)
	candS   vec.Matrix // (C+U)×d source candidate raw copies
	tsAll   vec.Matrix // (C+U)×d transformed source candidates (non-reciprocal)
	pd      vec.Matrix // C×d prepared destination copies
	pos     []float32
	pos2    []float32
	gPos    []float32
	gPos2   []float32
	negD    vec.Matrix
	negS    vec.Matrix
	gNegD   vec.Matrix
	gNegS   vec.Matrix
	gTS     vec.Matrix
	gTD     vec.Matrix
	gCandD  vec.Matrix
	gCandS  vec.Matrix
	gTSAll  vec.Matrix
	gPD     vec.Matrix
	candIDs []int32
}

// NewWorkspace allocates scratch for chunks of at most maxC positives and
// maxU uniform candidates per side.
func (s *Scorer) NewWorkspace(maxC, maxU int) *Workspace {
	d := s.Dim
	cu := maxC + maxU
	return &Workspace{
		maxC: maxC, maxU: maxU, dim: d,
		ts:      vec.NewMatrix(maxC, d),
		td:      vec.NewMatrix(maxC, d),
		candD:   vec.NewMatrix(cu, d),
		candS:   vec.NewMatrix(cu, d),
		tsAll:   vec.NewMatrix(cu, d),
		pd:      vec.NewMatrix(maxC, d),
		pos:     make([]float32, maxC),
		pos2:    make([]float32, maxC),
		gPos:    make([]float32, maxC),
		gPos2:   make([]float32, maxC),
		negD:    vec.NewMatrix(maxC, cu),
		negS:    vec.NewMatrix(maxC, cu),
		gNegD:   vec.NewMatrix(maxC, cu),
		gNegS:   vec.NewMatrix(maxC, cu),
		gTS:     vec.NewMatrix(maxC, d),
		gTD:     vec.NewMatrix(maxC, d),
		gCandD:  vec.NewMatrix(cu, d),
		gCandS:  vec.NewMatrix(cu, d),
		gTSAll:  vec.NewMatrix(cu, d),
		gPD:     vec.NewMatrix(maxC, d),
		candIDs: make([]int32, cu),
	}
}

func subMat(m vec.Matrix, rows, cols int) vec.Matrix {
	return vec.MatrixFrom(m.Data[:rows*cols], rows, cols)
}

// ScoreChunk runs the full forward + backward pass for one chunk: every
// positive is scored against all C+U destination-side candidates (its own
// chunk's destinations plus the uniform sample) and all C+U source-side
// candidates, masking induced positives — exactly the construction of
// Figure 3, where a chunk of 50 edges and 50+50 sampled entities yields
// 50×200−100 = 9900 negatives. Gradients land in grad.
func (s *Scorer) ScoreChunk(ws *Workspace, in *ChunkInput, grad *ChunkGrad) {
	c := in.Src.Rows
	u := in.USrc.Rows
	if c > ws.maxC || u > ws.maxU {
		panic(fmt.Sprintf("model: chunk %d/%d exceeds workspace %d/%d", c, u, ws.maxC, ws.maxU))
	}
	d := s.Dim
	g := grad.view(c, u, d)
	cu := c + u

	// ---- Destination-corruption side ----
	// Transform sources.
	ts := subMat(ws.ts, c, d)
	for i := 0; i < c; i++ {
		s.Op.Apply(ts.Row(i), in.Src.Row(i), in.RelFwd)
	}
	// Candidate destinations = [Dst; UDst] (copied: Prepare mutates).
	candD := subMat(ws.candD, cu, d)
	copy(candD.Data[:c*d], in.Dst.Data)
	copy(candD.Data[c*d:], in.UDst.Data)
	stateTS := s.Cmp.Prepare(ts)
	stateD := s.Cmp.Prepare(candD)

	pos := ws.pos[:c]
	topD := subMat(candD, c, d)
	s.Cmp.PairScores(pos, ts, topD)

	negD := subMat(ws.negD, c, cu)
	s.Cmp.CrossScores(negD, ts, candD)
	candIDs := ws.candIDs[:cu]
	copy(candIDs[:c], in.DstIDs)
	copy(candIDs[c:], in.UDstIDs)
	maskInduced(negD, candIDs, in.DstIDs)

	gPos := ws.gPos[:c]
	vec.Zero(gPos)
	gNegD := subMat(ws.gNegD, c, cu)
	g.Loss += s.Loss.Compute(pos, negD, gPos, gNegD, in.RelWeight)
	g.NegCount += countUnmasked(negD)

	gTS := subMat(ws.gTS, c, d)
	gCandD := subMat(ws.gCandD, cu, d)
	vec.Zero(gTS.Data)
	vec.Zero(gCandD.Data)
	gTopD := subMat(gCandD, c, d)
	s.Cmp.PairBackward(gTS, gTopD, gPos, pos, ts, topD)
	s.Cmp.CrossBackward(gTS, gCandD, gNegD, negD, ts, candD)
	s.Cmp.UnprepareGrad(gTS, ts, stateTS)
	s.Cmp.UnprepareGrad(gCandD, candD, stateD)
	// Distribute: candidate grads → Dst/UDst, transformed-source grads →
	// Src (through the operator) and relation params.
	vec.Axpy(1, gCandD.Data[:c*d], g.Dst.Data)
	vec.Axpy(1, gCandD.Data[c*d:], g.UDst.Data)
	for i := 0; i < c; i++ {
		s.Op.Backward(g.Src.Row(i), g.RelFwd, in.Src.Row(i), in.RelFwd, gTS.Row(i))
	}

	// ---- Source-corruption side ----
	candS := subMat(ws.candS, cu, d)
	copy(candS.Data[:c*d], in.Src.Data)
	copy(candS.Data[c*d:], in.USrc.Data)
	copy(candIDs[:c], in.SrcIDs)
	copy(candIDs[c:], in.USrcIDs)

	pos2 := ws.pos2[:c]
	gPos2 := ws.gPos2[:c]
	vec.Zero(gPos2)
	negS := subMat(ws.negS, c, cu)
	gNegS := subMat(ws.gNegS, c, cu)

	if s.Reciprocal {
		// f_rev(s', r, d) = sim(g(d; θ_rev), s'): transform destinations,
		// compare against raw candidate sources.
		td := subMat(ws.td, c, d)
		for i := 0; i < c; i++ {
			s.Op.Apply(td.Row(i), in.Dst.Row(i), in.RelRev)
		}
		stateTD := s.Cmp.Prepare(td)
		stateS := s.Cmp.Prepare(candS)
		topS := subMat(candS, c, d)
		s.Cmp.PairScores(pos2, td, topS)
		s.Cmp.CrossScores(negS, td, candS)
		maskInduced(negS, candIDs, in.SrcIDs)
		g.Loss += s.Loss.Compute(pos2, negS, gPos2, gNegS, in.RelWeight)
		g.NegCount += countUnmasked(negS)

		gTD := subMat(ws.gTD, c, d)
		gCandS := subMat(ws.gCandS, cu, d)
		vec.Zero(gTD.Data)
		vec.Zero(gCandS.Data)
		gTopS := subMat(gCandS, c, d)
		s.Cmp.PairBackward(gTD, gTopS, gPos2, pos2, td, topS)
		s.Cmp.CrossBackward(gTD, gCandS, gNegS, negS, td, candS)
		s.Cmp.UnprepareGrad(gTD, td, stateTD)
		s.Cmp.UnprepareGrad(gCandS, candS, stateS)
		vec.Axpy(1, gCandS.Data[:c*d], g.Src.Data)
		vec.Axpy(1, gCandS.Data[c*d:], g.USrc.Data)
		for i := 0; i < c; i++ {
			s.Op.Backward(g.Dst.Row(i), g.RelRev, in.Dst.Row(i), in.RelRev, gTD.Row(i))
		}
	} else {
		// f(s', r, d) = sim(g(s'), d): transform every candidate source,
		// compare against (a fresh prepared copy of) the destinations.
		tsAll := subMat(ws.tsAll, cu, d)
		for k := 0; k < cu; k++ {
			s.Op.Apply(tsAll.Row(k), candS.Row(k), in.RelFwd)
		}
		pd := subMat(ws.pd, c, d)
		copy(pd.Data, in.Dst.Data)
		stateAll := s.Cmp.Prepare(tsAll)
		statePD := s.Cmp.Prepare(pd)
		topAll := subMat(tsAll, c, d)
		s.Cmp.PairScores(pos2, pd, topAll)
		s.Cmp.CrossScores(negS, pd, tsAll)
		maskInduced(negS, candIDs, in.SrcIDs)
		g.Loss += s.Loss.Compute(pos2, negS, gPos2, gNegS, in.RelWeight)
		g.NegCount += countUnmasked(negS)

		gPD := subMat(ws.gPD, c, d)
		gTSAll := subMat(ws.gTSAll, cu, d)
		vec.Zero(gPD.Data)
		vec.Zero(gTSAll.Data)
		gTopAll := subMat(gTSAll, c, d)
		s.Cmp.PairBackward(gPD, gTopAll, gPos2, pos2, pd, topAll)
		s.Cmp.CrossBackward(gPD, gTSAll, gNegS, negS, pd, tsAll)
		s.Cmp.UnprepareGrad(gPD, pd, statePD)
		s.Cmp.UnprepareGrad(gTSAll, tsAll, stateAll)
		vec.Axpy(1, gPD.Data, g.Dst.Data)
		for k := 0; k < cu; k++ {
			var target []float32
			if k < c {
				target = g.Src.Row(k)
			} else {
				target = g.USrc.Row(k - c)
			}
			s.Op.Backward(target, g.RelFwd, candS.Row(k), in.RelFwd, gTSAll.Row(k))
		}
	}

	grad.Loss = g.Loss
	grad.NegCount = g.NegCount
}

// maskInduced sets score (i, j) to Masked when candidate j is the true
// endpoint of positive i: either the self column (j == i, the edge itself)
// or any candidate carrying the same entity ID.
func maskInduced(scores vec.Matrix, candIDs []int32, posIDs []int32) {
	for i := 0; i < scores.Rows; i++ {
		row := scores.Row(i)
		id := posIDs[i]
		for j, cid := range candIDs {
			if j == i || cid == id {
				row[j] = Masked
			}
		}
	}
}

func countUnmasked(m vec.Matrix) int {
	n := 0
	for _, v := range m.Data {
		if !IsMasked(v) {
			n++
		}
	}
	return n
}
