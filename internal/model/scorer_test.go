package model

import (
	"fmt"
	"math"
	"testing"

	"pbg/internal/rng"
	"pbg/internal/vec"
)

// makeChunk builds a random chunk with C positives and U candidates, all
// entity IDs distinct so only the self column gets masked.
func makeChunk(s *Scorer, c, u int, seed uint64) *ChunkInput {
	r := rng.New(seed)
	d := s.Dim
	in := &ChunkInput{
		Src:       vec.NewMatrix(c, d),
		Dst:       vec.NewMatrix(c, d),
		USrc:      vec.NewMatrix(u, d),
		UDst:      vec.NewMatrix(u, d),
		SrcIDs:    make([]int32, c),
		DstIDs:    make([]int32, c),
		USrcIDs:   make([]int32, u),
		UDstIDs:   make([]int32, u),
		RelWeight: 1,
	}
	fill(r, in.Src.Data)
	fill(r, in.Dst.Data)
	fill(r, in.USrc.Data)
	fill(r, in.UDst.Data)
	id := int32(0)
	for i := range in.SrcIDs {
		in.SrcIDs[i] = id
		id++
	}
	for i := range in.DstIDs {
		in.DstIDs[i] = id
		id++
	}
	for i := range in.USrcIDs {
		in.USrcIDs[i] = id
		id++
	}
	for i := range in.UDstIDs {
		in.UDstIDs[i] = id
		id++
	}
	n := s.Op.ParamCount(d)
	params := make([]float32, s.RelParamCount())
	fill(r, params)
	if n > 0 {
		in.RelFwd = params[:n]
		if s.Reciprocal {
			in.RelRev = params[n:]
		}
	}
	return in
}

func chunkLoss(s *Scorer, ws *Workspace, in *ChunkInput, grad *ChunkGrad) float64 {
	s.ScoreChunk(ws, in, grad)
	return grad.Loss
}

// TestScorerGradientsAllCombos is the central correctness test for the
// no-autograd port: for every operator × comparator × reciprocal mode (with
// the smooth losses; the piecewise-linear ranking loss is FD-checked at the
// loss level), the analytic chunk gradients must match finite differences of
// the total chunk loss with respect to every raw input.
func TestScorerGradientsAllCombos(t *testing.T) {
	const c, u = 3, 2
	dim := 6
	for _, opName := range allOperatorNames {
		for _, cmpName := range allComparatorNames {
			for _, lossName := range []string{"logistic", "softmax"} {
				for _, recip := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/%s/recip=%v", opName, cmpName, lossName, recip)
					s, err := NewScorer(dim, opName, cmpName, lossName, 0.1, recip)
					if err != nil {
						t.Fatal(err)
					}
					in := makeChunk(s, c, u, 97)
					ws := s.NewWorkspace(c, u)
					grad := s.NewChunkGrad(c, u)
					s.ScoreChunk(ws, in, grad)
					base := grad.Loss
					if math.IsNaN(base) || math.IsInf(base, 0) {
						t.Fatalf("%s: non-finite loss %v", name, base)
					}

					scratch := s.NewChunkGrad(c, u)
					const h = 1e-2
					checkFD := func(data []float32, analytic []float32, label string) {
						for i := range data {
							old := data[i]
							data[i] = old + h
							lp := chunkLoss(s, ws, in, scratch)
							data[i] = old - h
							lm := chunkLoss(s, ws, in, scratch)
							data[i] = old
							fd := float32((lp - lm) / (2 * h))
							if !approx(fd, analytic[i], 8e-2) {
								t.Errorf("%s: %s[%d] analytic %v vs fd %v", name, label, i, analytic[i], fd)
							}
						}
					}
					checkFD(in.Src.Data, grad.Src.Data, "gSrc")
					checkFD(in.Dst.Data, grad.Dst.Data, "gDst")
					checkFD(in.USrc.Data, grad.USrc.Data, "gUSrc")
					checkFD(in.UDst.Data, grad.UDst.Data, "gUDst")
					if in.RelFwd != nil {
						checkFD(in.RelFwd, grad.RelFwd, "gRelFwd")
					}
					if in.RelRev != nil {
						checkFD(in.RelRev, grad.RelRev, "gRelRev")
					}
					if t.Failed() {
						t.Fatalf("%s: gradient check failed", name)
					}
				}
			}
		}
	}
}

// naiveChunkLoss recomputes the chunk loss by scoring each (positive,
// candidate) pair one at a time with Score/naive transforms — the reference
// the Figure-3 batched construction must agree with.
func naiveChunkLoss(s *Scorer, in *ChunkInput) float64 {
	c := in.Src.Rows
	u := in.USrc.Rows
	d := s.Dim
	cu := c + u
	score := func(src, dst, params []float32, reverse bool) float32 {
		t := make([]float32, d)
		var a, b vec.Matrix
		if reverse {
			s.Op.Apply(t, dst, params)
			sc := append([]float32(nil), src...)
			a = vec.MatrixFrom(t, 1, d)
			b = vec.MatrixFrom(sc, 1, d)
		} else {
			s.Op.Apply(t, src, params)
			dc := append([]float32(nil), dst...)
			a = vec.MatrixFrom(t, 1, d)
			b = vec.MatrixFrom(dc, 1, d)
		}
		s.Cmp.Prepare(a)
		s.Cmp.Prepare(b)
		out := make([]float32, 1)
		s.Cmp.PairScores(out, a, b)
		return out[0]
	}
	var total float64
	// Destination corruption.
	for i := 0; i < c; i++ {
		pos := score(in.Src.Row(i), in.Dst.Row(i), in.RelFwd, false)
		neg := vec.NewMatrix(1, cu)
		for j := 0; j < cu; j++ {
			var cand []float32
			var cid int32
			if j < c {
				cand, cid = in.Dst.Row(j), in.DstIDs[j]
			} else {
				cand, cid = in.UDst.Row(j-c), in.UDstIDs[j-c]
			}
			if j == i || cid == in.DstIDs[i] {
				neg.Data[j] = Masked
				continue
			}
			neg.Data[j] = score(in.Src.Row(i), cand, in.RelFwd, false)
		}
		gp := make([]float32, 1)
		gn := vec.NewMatrix(1, cu)
		total += s.Loss.Compute([]float32{pos}, neg, gp, gn, in.RelWeight)
	}
	// Source corruption.
	for i := 0; i < c; i++ {
		var pos float32
		if s.Reciprocal {
			pos = score(in.Src.Row(i), in.Dst.Row(i), in.RelRev, true)
		} else {
			pos = score(in.Src.Row(i), in.Dst.Row(i), in.RelFwd, false)
		}
		neg := vec.NewMatrix(1, cu)
		for j := 0; j < cu; j++ {
			var cand []float32
			var cid int32
			if j < c {
				cand, cid = in.Src.Row(j), in.SrcIDs[j]
			} else {
				cand, cid = in.USrc.Row(j-c), in.USrcIDs[j-c]
			}
			if j == i || cid == in.SrcIDs[i] {
				neg.Data[j] = Masked
				continue
			}
			if s.Reciprocal {
				neg.Data[j] = score(cand, in.Dst.Row(i), in.RelRev, true)
			} else {
				neg.Data[j] = score(cand, in.Dst.Row(i), in.RelFwd, false)
			}
		}
		gp := make([]float32, 1)
		gn := vec.NewMatrix(1, cu)
		total += s.Loss.Compute([]float32{pos}, neg, gp, gn, in.RelWeight)
	}
	return total
}

// TestBatchedMatchesNaive: the batched GEMM construction of Figure 3 must
// produce exactly the same loss as the naive per-pair loop.
func TestBatchedMatchesNaive(t *testing.T) {
	for _, opName := range []string{"identity", "translation", "diagonal", "complex_diagonal"} {
		for _, cmpName := range allComparatorNames {
			for _, recip := range []bool{false, true} {
				s, err := NewScorer(6, opName, cmpName, "logistic", 0.1, recip)
				if err != nil {
					t.Fatal(err)
				}
				in := makeChunk(s, 4, 3, 5)
				ws := s.NewWorkspace(4, 3)
				grad := s.NewChunkGrad(4, 3)
				s.ScoreChunk(ws, in, grad)
				naive := naiveChunkLoss(s, in)
				if math.Abs(grad.Loss-naive) > 1e-3*(1+math.Abs(naive)) {
					t.Errorf("%s/%s/recip=%v: batched %v vs naive %v", opName, cmpName, recip, grad.Loss, naive)
				}
			}
		}
	}
}

// TestFigure3NegativeCount reproduces the arithmetic from §4.3: 50 positives
// with 50 in-chunk + 50 uniform candidates per side yield 50·200−100 = 9900
// negatives.
func TestFigure3NegativeCount(t *testing.T) {
	s, err := NewScorer(4, "identity", "dot", "ranking", 0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	in := makeChunk(s, 50, 50, 13)
	ws := s.NewWorkspace(50, 50)
	grad := s.NewChunkGrad(50, 50)
	s.ScoreChunk(ws, in, grad)
	if grad.NegCount != 9900 {
		t.Fatalf("negative count = %d, want 9900", grad.NegCount)
	}
}

// Duplicate entity IDs among candidates must be masked as induced positives.
func TestSameIDCandidatesMasked(t *testing.T) {
	s, _ := NewScorer(4, "identity", "dot", "ranking", 0.1, false)
	in := makeChunk(s, 2, 1, 17)
	// Make uniform dest candidate 0 carry the same entity as positive 0's
	// destination: scoring positive 0 against it would be a false negative.
	in.UDstIDs[0] = in.DstIDs[0]
	ws := s.NewWorkspace(2, 1)
	grad := s.NewChunkGrad(2, 1)
	s.ScoreChunk(ws, in, grad)
	// Full count would be 2·(2·(2+1) − 2) = 8 per construction: per side
	// 2×3 entries minus 2 self-masks = 4, two sides = 8. The duplicate ID
	// masks one more entry.
	if grad.NegCount != 7 {
		t.Fatalf("negative count = %d, want 7", grad.NegCount)
	}
}

func TestScoreSingleEdgeConsistency(t *testing.T) {
	// Score must equal the chunk's positive pair score.
	s, _ := NewScorer(6, "translation", "cos", "logistic", 0.1, false)
	in := makeChunk(s, 2, 2, 23)
	got := s.Score(in.Src.Row(1), in.Dst.Row(1), in.RelFwd)
	// Reference via naive path.
	tbuf := make([]float32, 6)
	s.Op.Apply(tbuf, in.Src.Row(1), in.RelFwd)
	want := vec.Cosine(tbuf, in.Dst.Row(1))
	if !approx(got, want, 1e-4) {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestScoreManyMatchesScore(t *testing.T) {
	s, _ := NewScorer(6, "diagonal", "dot", "logistic", 0.1, false)
	in := makeChunk(s, 3, 0, 29)
	cand := vec.NewMatrix(3, 6)
	copy(cand.Data, in.Dst.Data)
	out := make([]float32, 3)
	s.ScoreMany(out, in.Src.Row(0), in.RelFwd, cand)
	for j := 0; j < 3; j++ {
		want := s.Score(in.Src.Row(0), in.Dst.Row(j), in.RelFwd)
		if !approx(out[j], want, 1e-4) {
			t.Fatalf("ScoreMany[%d] = %v, want %v", j, out[j], want)
		}
	}
}

func TestWorkspaceTooSmallPanics(t *testing.T) {
	s, _ := NewScorer(4, "identity", "dot", "ranking", 0.1, false)
	in := makeChunk(s, 4, 2, 31)
	ws := s.NewWorkspace(2, 2)
	grad := s.NewChunkGrad(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized chunk")
		}
	}()
	s.ScoreChunk(ws, in, grad)
}

func TestNewScorerValidation(t *testing.T) {
	if _, err := NewScorer(0, "identity", "dot", "ranking", 0.1, false); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, err := NewScorer(4, "nope", "dot", "ranking", 0.1, false); err == nil {
		t.Fatal("expected error for bad operator")
	}
	if _, err := NewScorer(4, "identity", "nope", "ranking", 0.1, false); err == nil {
		t.Fatal("expected error for bad comparator")
	}
	if _, err := NewScorer(4, "identity", "dot", "nope", 0.1, false); err == nil {
		t.Fatal("expected error for bad loss")
	}
}

func BenchmarkScoreChunkBatched(b *testing.B) {
	// Figure 3 configuration: chunk of 50, 50 uniform candidates, d=100.
	s, _ := NewScorer(100, "identity", "dot", "ranking", 0.1, false)
	in := makeChunk(s, 50, 50, 1)
	ws := s.NewWorkspace(50, 50)
	grad := s.NewChunkGrad(50, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreChunk(ws, in, grad)
	}
	// 50 positives per call.
	b.ReportMetric(float64(b.N*50)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkScoreChunkUnbatched(b *testing.B) {
	// Same per-positive negative count achieved with chunk size 1: the
	// unbatched baseline from Figure 4.
	s, _ := NewScorer(100, "identity", "dot", "ranking", 0.1, false)
	in := makeChunk(s, 1, 99, 1)
	ws := s.NewWorkspace(1, 99)
	grad := s.NewChunkGrad(1, 99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreChunk(ws, in, grad)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}
