package model

import (
	"fmt"
	"math"

	"pbg/internal/vec"
)

// Masked is the sentinel score that marks an excluded negative (an induced
// positive from the chunked construction of Figure 3). Losses skip masked
// entries entirely: they contribute neither loss nor gradient.
const Masked float32 = -1e30

// maskedThreshold separates genuine scores from sentinels.
const maskedThreshold float32 = -1e29

// IsMasked reports whether a score is the masked sentinel.
func IsMasked(s float32) bool { return s <= maskedThreshold }

// Loss scores a set of positives against per-positive negative candidates.
// pos has length C; neg is C×N where row i holds the negative scores for
// positive i. Compute accumulates (+=) dL/dpos into gPos, sets (=) dL/dneg
// into gNeg, scales everything by weight (per-relation edge weight), and
// returns the summed loss. Masked negatives are skipped.
type Loss interface {
	Name() string
	Compute(pos []float32, neg vec.Matrix, gPos []float32, gNeg vec.Matrix, weight float32) float64
}

// NewLoss returns the loss registered under name: "ranking" (margin λ),
// "logistic", or "softmax". The margin parameter only affects "ranking".
func NewLoss(name string, margin float32) (Loss, error) {
	switch name {
	case "", "ranking":
		if margin <= 0 {
			margin = 0.1
		}
		return &RankingLoss{Margin: margin}, nil
	case "logistic":
		return LogisticLoss{}, nil
	case "softmax":
		return SoftmaxLoss{}, nil
	default:
		return nil, fmt.Errorf("model: unknown loss %q", name)
	}
}

// RankingLoss is the margin-based ranking objective of §3.1:
// L = Σ_e Σ_{e'} max(0, λ − f(e) + f(e')).
type RankingLoss struct {
	Margin float32
}

func (l *RankingLoss) Name() string { return "ranking" }

func (l *RankingLoss) Compute(pos []float32, neg vec.Matrix, gPos []float32, gNeg vec.Matrix, weight float32) float64 {
	var total float64
	for i, p := range pos {
		row := neg.Row(i)
		grow := gNeg.Row(i)
		for j, n := range row {
			if IsMasked(n) {
				grow[j] = 0
				continue
			}
			viol := l.Margin - p + n
			if viol > 0 {
				total += float64(viol) * float64(weight)
				gPos[i] -= weight
				grow[j] = weight
			} else {
				grow[j] = 0
			}
		}
	}
	return total
}

// LogisticLoss is independent binary cross-entropy on positives (label 1)
// and negatives (label 0) with the score as the logit. The paper notes this
// choice makes partition-restricted negatives immaterial (§4.1 footnote).
type LogisticLoss struct{}

func (LogisticLoss) Name() string { return "logistic" }

func (LogisticLoss) Compute(pos []float32, neg vec.Matrix, gPos []float32, gNeg vec.Matrix, weight float32) float64 {
	var total float64
	for i, p := range pos {
		total += -float64(vec.LogSigmoid(p)) * float64(weight)
		gPos[i] += (vec.Sigmoid(p) - 1) * weight
		row := neg.Row(i)
		grow := gNeg.Row(i)
		for j, n := range row {
			if IsMasked(n) {
				grow[j] = 0
				continue
			}
			total += -float64(vec.LogSigmoid(-n)) * float64(weight)
			grow[j] = vec.Sigmoid(n) * weight
		}
	}
	return total
}

// SoftmaxLoss is the multi-class objective used for the ComplEx FB15k runs
// (§5.4.1): each positive competes against its own negatives,
// L_i = −f(e_i) + log(exp f(e_i) + Σ_j exp f(e'_ij)).
type SoftmaxLoss struct{}

func (SoftmaxLoss) Name() string { return "softmax" }

func (SoftmaxLoss) Compute(pos []float32, neg vec.Matrix, gPos []float32, gNeg vec.Matrix, weight float32) float64 {
	var total float64
	for i, p := range pos {
		row := neg.Row(i)
		grow := gNeg.Row(i)
		// Stable logsumexp over {pos} ∪ unmasked negatives.
		m := p
		for _, n := range row {
			if !IsMasked(n) && n > m {
				m = n
			}
		}
		var sum float64
		for _, n := range row {
			if !IsMasked(n) {
				sum += math.Exp(float64(n - m))
			}
		}
		sum += math.Exp(float64(p - m))
		lse := float64(m) + math.Log(sum)
		total += (lse - float64(p)) * float64(weight)
		pPos := float32(math.Exp(float64(p) - lse))
		gPos[i] += (pPos - 1) * weight
		for j, n := range row {
			if IsMasked(n) {
				grow[j] = 0
				continue
			}
			grow[j] = float32(math.Exp(float64(n)-lse)) * weight
		}
	}
	return total
}
