package model

import (
	"fmt"
	"math"

	"pbg/internal/vec"
)

// Comparator computes similarity scores between (transformed) embeddings.
// The batched path works on "prepared" matrices: Prepare is called once per
// matrix (cos normalises rows there), scores are computed in prepared space,
// and UnprepareGrad maps gradients back to raw space. This mirrors how PBG
// amortises normalisation across the Bn×Bn score block of Figure 3.
type Comparator interface {
	// Name returns the config string for this comparator.
	Name() string
	// Prepare may transform m in place and returns per-row state needed by
	// UnprepareGrad (e.g. row norms), or nil when Prepare is the identity.
	Prepare(m vec.Matrix) []float32
	// PairScores computes out[i] = sim(a_i, b_i) for matching rows.
	PairScores(out []float32, a, b vec.Matrix)
	// CrossScores computes out[i][j] = sim(a_i, b_j) for all pairs.
	CrossScores(out, a, b vec.Matrix)
	// PairBackward accumulates gradients of Σ g[i]·score[i] into ga, gb
	// (in prepared space). scores holds the forward PairScores output.
	PairBackward(ga, gb vec.Matrix, g, scores []float32, a, b vec.Matrix)
	// CrossBackward accumulates gradients of Σ g[i][j]·score[i][j] into
	// ga, gb (in prepared space). scores holds the forward CrossScores
	// output.
	CrossBackward(ga, gb vec.Matrix, g, scores, a, b vec.Matrix)
	// UnprepareGrad maps the accumulated gradient g from prepared space back
	// to raw space in place, given the prepared matrix and Prepare's state.
	UnprepareGrad(g, prepared vec.Matrix, state []float32)
}

// NewComparator returns the comparator registered under name. Valid names:
// "dot", "cos", "l2", "squared_l2".
func NewComparator(name string) (Comparator, error) {
	switch name {
	case "", "dot":
		return DotComparator{}, nil
	case "cos":
		return CosComparator{}, nil
	case "l2":
		return L2Comparator{}, nil
	case "squared_l2":
		return SquaredL2Comparator{}, nil
	default:
		return nil, fmt.Errorf("model: unknown comparator %q", name)
	}
}

// DotComparator scores by inner product: sim(a, b) = ⟨a, b⟩.
type DotComparator struct{}

func (DotComparator) Name() string                   { return "dot" }
func (DotComparator) Prepare(_ vec.Matrix) []float32 { return nil }

func (DotComparator) PairScores(out []float32, a, b vec.Matrix) {
	for i := range out {
		out[i] = vec.Dot(a.Row(i), b.Row(i))
	}
}

func (DotComparator) CrossScores(out, a, b vec.Matrix) {
	vec.MulABt(out, a, b)
}

func (DotComparator) PairBackward(ga, gb vec.Matrix, g, _ []float32, a, b vec.Matrix) {
	for i, gi := range g {
		if gi == 0 {
			continue
		}
		vec.Axpy(gi, b.Row(i), ga.Row(i))
		vec.Axpy(gi, a.Row(i), gb.Row(i))
	}
}

func (DotComparator) CrossBackward(ga, gb vec.Matrix, g, _, a, b vec.Matrix) {
	vec.AddOuterAtB(ga, g, b)
	vec.AddOuterGtA(gb, g, a)
}

func (DotComparator) UnprepareGrad(_, _ vec.Matrix, _ []float32) {}

// CosComparator scores by cosine similarity. Rows are normalised once in
// Prepare; scoring is then plain dot products (GEMM-friendly), and
// UnprepareGrad applies the normalisation Jacobian
// dL/dx = (g − u⟨u, g⟩)/‖x‖ with u = x/‖x‖.
type CosComparator struct{}

func (CosComparator) Name() string { return "cos" }

func (CosComparator) Prepare(m vec.Matrix) []float32 {
	norms := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		norms[i] = vec.Normalize(m.Row(i))
	}
	return norms
}

func (CosComparator) PairScores(out []float32, a, b vec.Matrix) {
	DotComparator{}.PairScores(out, a, b)
}

func (CosComparator) CrossScores(out, a, b vec.Matrix) {
	DotComparator{}.CrossScores(out, a, b)
}

func (CosComparator) PairBackward(ga, gb vec.Matrix, g, scores []float32, a, b vec.Matrix) {
	DotComparator{}.PairBackward(ga, gb, g, scores, a, b)
}

func (CosComparator) CrossBackward(ga, gb vec.Matrix, g, scores, a, b vec.Matrix) {
	DotComparator{}.CrossBackward(ga, gb, g, scores, a, b)
}

func (CosComparator) UnprepareGrad(g, prepared vec.Matrix, state []float32) {
	for i := 0; i < g.Rows; i++ {
		n := state[i]
		gi := g.Row(i)
		if n == 0 {
			// Zero rows were left unnormalised; their cosine is constant 0,
			// so no gradient flows.
			vec.Zero(gi)
			continue
		}
		u := prepared.Row(i)
		proj := vec.Dot(u, gi)
		vec.Axpy(-proj, u, gi)
		vec.Scale(1/n, gi)
	}
}

// SquaredL2Comparator scores by negative squared distance:
// sim(a, b) = −‖a−b‖². Cross scores decompose into row norms plus one GEMM:
// −(‖a_i‖² − 2⟨a_i, b_j⟩ + ‖b_j‖²).
type SquaredL2Comparator struct{}

func (SquaredL2Comparator) Name() string                   { return "squared_l2" }
func (SquaredL2Comparator) Prepare(_ vec.Matrix) []float32 { return nil }

func (SquaredL2Comparator) PairScores(out []float32, a, b vec.Matrix) {
	for i := range out {
		out[i] = -vec.SquaredDistance(a.Row(i), b.Row(i))
	}
}

func (SquaredL2Comparator) CrossScores(out, a, b vec.Matrix) {
	vec.MulABt(out, a, b)
	aN := make([]float32, a.Rows)
	bN := make([]float32, b.Rows)
	for i := range aN {
		aN[i] = vec.SumSquares(a.Row(i))
	}
	for j := range bN {
		bN[j] = vec.SumSquares(b.Row(j))
	}
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = 2*row[j] - aN[i] - bN[j]
		}
	}
}

func (SquaredL2Comparator) PairBackward(ga, gb vec.Matrix, g, _ []float32, a, b vec.Matrix) {
	// d/da −‖a−b‖² = −2(a−b)
	for i, gi := range g {
		if gi == 0 {
			continue
		}
		ar, br := a.Row(i), b.Row(i)
		gar, gbr := ga.Row(i), gb.Row(i)
		for k := range ar {
			diff := 2 * gi * (ar[k] - br[k])
			gar[k] -= diff
			gbr[k] += diff
		}
	}
}

func (SquaredL2Comparator) CrossBackward(ga, gb vec.Matrix, g, _, a, b vec.Matrix) {
	// dL/da_i = Σ_j g_ij · (−2)(a_i − b_j) = −2·rowsum_i·a_i + 2·(G·B)_i
	// dL/db_j = Σ_i g_ij · ( 2)(a_i − b_j) =  2·(Gᵀ·A)_j − 2·colsum_j·b_j
	rows := make([]float32, g.Rows)
	cols := make([]float32, g.Cols)
	for i := 0; i < g.Rows; i++ {
		row := g.Row(i)
		for j, v := range row {
			rows[i] += v
			cols[j] += v
		}
	}
	// The GEMM parts.
	tmpA := vec.NewMatrix(ga.Rows, ga.Cols)
	tmpB := vec.NewMatrix(gb.Rows, gb.Cols)
	vec.AddOuterAtB(tmpA, g, b)
	vec.AddOuterGtA(tmpB, g, a)
	for i := 0; i < ga.Rows; i++ {
		gar, ar, tr := ga.Row(i), a.Row(i), tmpA.Row(i)
		for k := range gar {
			gar[k] += 2*tr[k] - 2*rows[i]*ar[k]
		}
	}
	for j := 0; j < gb.Rows; j++ {
		gbr, br, tr := gb.Row(j), b.Row(j), tmpB.Row(j)
		for k := range gbr {
			gbr[k] += 2*tr[k] - 2*cols[j]*br[k]
		}
	}
}

func (SquaredL2Comparator) UnprepareGrad(_, _ vec.Matrix, _ []float32) {}

// L2Comparator scores by negative distance: sim(a, b) = −‖a−b‖. The backward
// pass reuses the forward scores (dist = −score) to avoid recomputing norms.
type L2Comparator struct{}

const l2Eps = 1e-12

func (L2Comparator) Name() string                   { return "l2" }
func (L2Comparator) Prepare(_ vec.Matrix) []float32 { return nil }

func (L2Comparator) PairScores(out []float32, a, b vec.Matrix) {
	for i := range out {
		out[i] = -float32(math.Sqrt(float64(vec.SquaredDistance(a.Row(i), b.Row(i))) + l2Eps))
	}
}

func (L2Comparator) CrossScores(out, a, b vec.Matrix) {
	SquaredL2Comparator{}.CrossScores(out, a, b)
	for i := range out.Data {
		sq := float64(-out.Data[i])
		if sq < 0 {
			sq = 0 // float32 cancellation can nudge tiny distances negative
		}
		out.Data[i] = -float32(math.Sqrt(sq + l2Eps))
	}
}

func (L2Comparator) PairBackward(ga, gb vec.Matrix, g, scores []float32, a, b vec.Matrix) {
	// score = −dist; d(score)/da = −(a−b)/dist.
	for i, gi := range g {
		if gi == 0 {
			continue
		}
		dist := -scores[i]
		if dist <= 0 {
			continue
		}
		f := gi / dist
		ar, br := a.Row(i), b.Row(i)
		gar, gbr := ga.Row(i), gb.Row(i)
		for k := range ar {
			d := f * (ar[k] - br[k])
			gar[k] -= d
			gbr[k] += d
		}
	}
}

func (L2Comparator) CrossBackward(ga, gb vec.Matrix, g, scores, a, b vec.Matrix) {
	// Reduce to the squared-L2 backward with rescaled upstream gradients:
	// d(−dist)/dθ = d(−dist²)/dθ · 1/(2·dist).
	scaled := vec.NewMatrix(g.Rows, g.Cols)
	for i := range g.Data {
		dist := -scores.Data[i]
		if dist > 0 && g.Data[i] != 0 {
			scaled.Data[i] = g.Data[i] / (2 * dist)
		}
	}
	SquaredL2Comparator{}.CrossBackward(ga, gb, scaled, scores, a, b)
}

func (L2Comparator) UnprepareGrad(_, _ vec.Matrix, _ []float32) {}
