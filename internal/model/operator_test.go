package model

import (
	"testing"

	"pbg/internal/rng"
)

func fill(r *rng.RNG, xs []float32) {
	for i := range xs {
		xs[i] = r.NormFloat32() * 0.5
	}
}

func approx(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := float32(1)
	if aa := abs32(a); aa > m {
		m = aa
	}
	if bb := abs32(b); bb > m {
		m = bb
	}
	return d <= tol*m
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

var allOperatorNames = []string{"identity", "translation", "diagonal", "linear", "complex_diagonal"}

func TestNewOperatorUnknown(t *testing.T) {
	if _, err := NewOperator("frobnicate", 4); err == nil {
		t.Fatal("expected error for unknown operator")
	}
}

func TestNewOperatorComplexOddDim(t *testing.T) {
	if _, err := NewOperator("complex_diagonal", 5); err == nil {
		t.Fatal("expected error for odd dimension")
	}
}

func TestOperatorParamCounts(t *testing.T) {
	const d = 6
	want := map[string]int{
		"identity":         0,
		"translation":      d,
		"diagonal":         d,
		"linear":           d * d,
		"complex_diagonal": d,
	}
	for name, w := range want {
		op, err := NewOperator(name, d)
		if err != nil {
			t.Fatal(err)
		}
		if got := op.ParamCount(d); got != w {
			t.Errorf("%s: ParamCount = %d, want %d", name, got, w)
		}
	}
}

// Identity-like initialisation must make every operator a no-op at start,
// which is what lets untrained relations behave as plain similarity.
func TestOperatorInitIsIdentity(t *testing.T) {
	const d = 6
	r := rng.New(1)
	x := make([]float32, d)
	fill(r, x)
	for _, name := range allOperatorNames {
		op, err := NewOperator(name, d)
		if err != nil {
			t.Fatal(err)
		}
		params := make([]float32, op.ParamCount(d))
		op.InitParams(params, r)
		dst := make([]float32, d)
		op.Apply(dst, x, params)
		for i := range x {
			if !approx(dst[i], x[i], 1e-5) {
				t.Errorf("%s: init apply differs at %d: %v vs %v", name, i, dst[i], x[i])
			}
		}
	}
}

// TestOperatorGradients checks every operator's Backward against finite
// differences of a random linear functional of Apply's output.
func TestOperatorGradients(t *testing.T) {
	const d = 6
	for _, name := range allOperatorNames {
		op, err := NewOperator(name, d)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(42)
		x := make([]float32, d)
		params := make([]float32, op.ParamCount(d))
		gOut := make([]float32, d)
		fill(r, x)
		fill(r, params)
		fill(r, gOut)

		loss := func() float64 {
			dst := make([]float32, d)
			op.Apply(dst, x, params)
			var s float64
			for i := range dst {
				s += float64(dst[i] * gOut[i])
			}
			return s
		}
		gX := make([]float32, d)
		gP := make([]float32, len(params))
		op.Backward(gX, gP, x, params, gOut)

		const h = 1e-2
		for i := range x {
			old := x[i]
			x[i] = old + h
			lp := loss()
			x[i] = old - h
			lm := loss()
			x[i] = old
			fd := float32((lp - lm) / (2 * h))
			if !approx(fd, gX[i], 2e-2) {
				t.Errorf("%s: gX[%d] analytic %v vs fd %v", name, i, gX[i], fd)
			}
		}
		for i := range params {
			old := params[i]
			params[i] = old + h
			lp := loss()
			params[i] = old - h
			lm := loss()
			params[i] = old
			fd := float32((lp - lm) / (2 * h))
			if !approx(fd, gP[i], 2e-2) {
				t.Errorf("%s: gParams[%d] analytic %v vs fd %v", name, i, gP[i], fd)
			}
		}
	}
}

// Backward with nil gParams must not touch parameters and still produce gX.
func TestOperatorBackwardNilParams(t *testing.T) {
	const d = 4
	r := rng.New(7)
	for _, name := range []string{"translation", "diagonal", "linear"} {
		op, _ := NewOperator(name, d)
		x := make([]float32, d)
		params := make([]float32, op.ParamCount(d))
		gOut := make([]float32, d)
		fill(r, x)
		fill(r, params)
		fill(r, gOut)
		gX := make([]float32, d)
		op.Backward(gX, nil, x, params, gOut) // must not panic
		nonzero := false
		for _, v := range gX {
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("%s: gX all zero with nil gParams", name)
		}
	}
}

func TestComplexDiagonalMatchesComplexAlgebra(t *testing.T) {
	// d=4 → 2 complex numbers. x = (1+2i, 3+0i), w = (0+1i, 2+2i).
	x := []float32{1, 3, 2, 0}
	w := []float32{0, 2, 1, 2}
	op := ComplexDiagonalOperator{}
	dst := make([]float32, 4)
	op.Apply(dst, x, w)
	// (1+2i)(0+1i) = -2+1i ; (3+0i)(2+2i) = 6+6i
	want := []float32{-2, 6, 1, 6}
	for i := range want {
		if !approx(dst[i], want[i], 1e-5) {
			t.Fatalf("complex apply[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestLinearOperatorApply(t *testing.T) {
	op := LinearOperator{}
	// 2x2 matrix [[1,2],[3,4]], x = [1,1] → [3,7]
	params := []float32{1, 2, 3, 4}
	dst := make([]float32, 2)
	op.Apply(dst, []float32{1, 1}, params)
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("linear apply = %v", dst)
	}
}

func TestRelParamCountReciprocal(t *testing.T) {
	s, err := NewScorer(8, "translation", "dot", "ranking", 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.RelParamCount() != 16 {
		t.Fatalf("reciprocal RelParamCount = %d, want 16", s.RelParamCount())
	}
	fwd, rev := s.SplitRelParams(make([]float32, 16))
	if len(fwd) != 8 || len(rev) != 8 {
		t.Fatalf("split sizes %d/%d", len(fwd), len(rev))
	}
	s2, _ := NewScorer(8, "identity", "dot", "ranking", 0.1, true)
	if s2.RelParamCount() != 0 {
		t.Fatal("identity reciprocal should still need 0 params")
	}
}
