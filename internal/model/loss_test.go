package model

import (
	"math"
	"testing"

	"pbg/internal/rng"
	"pbg/internal/vec"
)

var allLossNames = []string{"ranking", "logistic", "softmax"}

func TestNewLossUnknown(t *testing.T) {
	if _, err := NewLoss("hinge2", 0.1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRankingLossBasic(t *testing.T) {
	l := &RankingLoss{Margin: 1}
	pos := []float32{5}
	neg := vec.MatrixFrom([]float32{3, 4.5, 6}, 1, 3)
	gPos := make([]float32, 1)
	gNeg := vec.NewMatrix(1, 3)
	got := l.Compute(pos, neg, gPos, gNeg, 1)
	// Violations: 1-5+3=-1 (no), 1-5+4.5=0.5, 1-5+6=2 → loss 2.5.
	if !approx(float32(got), 2.5, 1e-5) {
		t.Fatalf("ranking loss = %v, want 2.5", got)
	}
	if gPos[0] != -2 {
		t.Fatalf("gPos = %v, want -2", gPos[0])
	}
	want := []float32{0, 1, 1}
	for i, w := range want {
		if gNeg.Data[i] != w {
			t.Fatalf("gNeg = %v", gNeg.Data)
		}
	}
}

func TestRankingLossPerfectSeparationZero(t *testing.T) {
	l := &RankingLoss{Margin: 0.1}
	pos := []float32{10}
	neg := vec.MatrixFrom([]float32{-10, -5}, 1, 2)
	gPos := make([]float32, 1)
	gNeg := vec.NewMatrix(1, 2)
	if got := l.Compute(pos, neg, gPos, gNeg, 1); got != 0 {
		t.Fatalf("separated loss = %v, want 0", got)
	}
	if gPos[0] != 0 || gNeg.Data[0] != 0 || gNeg.Data[1] != 0 {
		t.Fatal("gradients should be zero when separated")
	}
}

func TestMaskedNegativesSkipped(t *testing.T) {
	for _, name := range allLossNames {
		l, err := NewLoss(name, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		pos := []float32{0.3}
		negAll := vec.MatrixFrom([]float32{0.1, Masked, 0.2}, 1, 3)
		negSome := vec.MatrixFrom([]float32{0.1, 0.2}, 1, 2)
		gPos1 := make([]float32, 1)
		gPos2 := make([]float32, 1)
		gNeg1 := vec.NewMatrix(1, 3)
		gNeg2 := vec.NewMatrix(1, 2)
		l1 := l.Compute(pos, negAll, gPos1, gNeg1, 1)
		l2 := l.Compute(pos, negSome, gPos2, gNeg2, 1)
		if math.Abs(l1-l2) > 1e-6 {
			t.Errorf("%s: masked loss %v != unmasked %v", name, l1, l2)
		}
		if gNeg1.Data[1] != 0 {
			t.Errorf("%s: masked entry received gradient %v", name, gNeg1.Data[1])
		}
		if !approx(gPos1[0], gPos2[0], 1e-5) {
			t.Errorf("%s: gPos differs under masking: %v vs %v", name, gPos1[0], gPos2[0])
		}
	}
}

func TestWeightScalesLossAndGrads(t *testing.T) {
	for _, name := range allLossNames {
		l, _ := NewLoss(name, 0.5)
		pos := []float32{0.3, -0.2}
		neg := vec.MatrixFrom([]float32{0.1, 0.6, -0.3, 0.9}, 2, 2)
		g1 := make([]float32, 2)
		gn1 := vec.NewMatrix(2, 2)
		l1 := l.Compute(pos, neg, g1, gn1, 1)
		g2 := make([]float32, 2)
		gn2 := vec.NewMatrix(2, 2)
		l2 := l.Compute(pos, neg, g2, gn2, 2.5)
		if !approx(float32(l2), float32(l1*2.5), 1e-4) {
			t.Errorf("%s: weighted loss %v, want %v", name, l2, l1*2.5)
		}
		for i := range g1 {
			if !approx(g2[i], g1[i]*2.5, 1e-4) {
				t.Errorf("%s: weighted gPos[%d] %v, want %v", name, i, g2[i], g1[i]*2.5)
			}
		}
		for i := range gn1.Data {
			if !approx(gn2.Data[i], gn1.Data[i]*2.5, 1e-4) {
				t.Errorf("%s: weighted gNeg[%d] %v, want %v", name, i, gn2.Data[i], gn1.Data[i]*2.5)
			}
		}
	}
}

// FD check of dL/dpos and dL/dneg for every loss, choosing scores away from
// the ranking hinge's kink so central differences are valid.
func TestLossGradientsFiniteDifference(t *testing.T) {
	const c, n = 3, 4
	for _, name := range allLossNames {
		l, _ := NewLoss(name, 0.5)
		r := rng.New(31)
		pos := make([]float32, c)
		neg := vec.NewMatrix(c, n)
		// Keep every hinge argument at least 0.1 away from zero.
		for i := range pos {
			pos[i] = r.NormFloat32()
		}
		for i := range neg.Data {
			for {
				v := r.NormFloat32()
				ok := true
				for j := range pos {
					arg := 0.5 - pos[j] + v
					if abs32(arg) < 0.1 {
						ok = false
					}
				}
				if ok {
					neg.Data[i] = v
					break
				}
			}
		}
		gPos := make([]float32, c)
		gNeg := vec.NewMatrix(c, n)
		l.Compute(pos, neg, gPos, gNeg, 1.3)

		loss := func() float64 {
			gp := make([]float32, c)
			gn := vec.NewMatrix(c, n)
			return l.Compute(pos, neg, gp, gn, 1.3)
		}
		const h = 1e-3
		for i := range pos {
			old := pos[i]
			pos[i] = old + h
			lp := loss()
			pos[i] = old - h
			lm := loss()
			pos[i] = old
			fd := float32((lp - lm) / (2 * h))
			if !approx(fd, gPos[i], 2e-2) {
				t.Errorf("%s: gPos[%d] analytic %v vs fd %v", name, i, gPos[i], fd)
			}
		}
		for i := range neg.Data {
			old := neg.Data[i]
			neg.Data[i] = old + h
			lp := loss()
			neg.Data[i] = old - h
			lm := loss()
			neg.Data[i] = old
			fd := float32((lp - lm) / (2 * h))
			if !approx(fd, gNeg.Data[i], 2e-2) {
				t.Errorf("%s: gNeg[%d] analytic %v vs fd %v", name, i, gNeg.Data[i], fd)
			}
		}
	}
}

func TestSoftmaxLossGradSumsToZero(t *testing.T) {
	// For softmax, dL/dpos + Σ dL/dneg = 0 per positive (probabilities sum
	// to one).
	l := SoftmaxLoss{}
	r := rng.New(37)
	pos := make([]float32, 5)
	neg := vec.NewMatrix(5, 7)
	fill(r, pos)
	fill(r, neg.Data)
	gPos := make([]float32, 5)
	gNeg := vec.NewMatrix(5, 7)
	l.Compute(pos, neg, gPos, gNeg, 1)
	for i := 0; i < 5; i++ {
		s := gPos[i]
		for _, v := range gNeg.Row(i) {
			s += v
		}
		if abs32(s) > 1e-4 {
			t.Fatalf("softmax grads for positive %d sum to %v, want 0", i, s)
		}
	}
}

func TestLogisticLossAtZeroScores(t *testing.T) {
	l := LogisticLoss{}
	pos := []float32{0}
	neg := vec.MatrixFrom([]float32{0}, 1, 1)
	gPos := make([]float32, 1)
	gNeg := vec.NewMatrix(1, 1)
	got := l.Compute(pos, neg, gPos, gNeg, 1)
	want := 2 * math.Log(2) // −log σ(0) twice
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("logistic loss at 0 = %v, want %v", got, want)
	}
	if !approx(gPos[0], -0.5, 1e-5) || !approx(gNeg.Data[0], 0.5, 1e-5) {
		t.Fatalf("logistic grads %v / %v", gPos[0], gNeg.Data[0])
	}
}

func TestNewLossDefaultMargin(t *testing.T) {
	l, err := NewLoss("ranking", 0)
	if err != nil {
		t.Fatal(err)
	}
	rl := l.(*RankingLoss)
	if rl.Margin <= 0 {
		t.Fatalf("default margin = %v, want > 0", rl.Margin)
	}
}
