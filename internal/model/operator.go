// Package model implements the multi-relation scoring machinery of §3.1:
// relation operators g(x; θr), comparators sim(a, b), ranking losses, and
// the memory-efficient batched negative scoring of §4.3 / Figure 3.
//
// There is no autograd here: every operator, comparator and loss implements
// an explicit backward pass, and the test suite validates each against
// finite differences. The combination (operator, comparator) reproduces the
// published models:
//
//	RESCAL   = linear + dot
//	TransE   = translation + cos (or l2)
//	DistMult = diagonal + dot
//	ComplEx  = complex_diagonal + dot
package model

import (
	"fmt"

	"pbg/internal/rng"
	"pbg/internal/vec"
)

// Operator is a relation operator g(x; θ) applied rowwise to embeddings.
// Implementations are stateless; relation parameters are passed in so the
// same Operator value serves every relation of that kind.
type Operator interface {
	// Name returns the config string for this operator.
	Name() string
	// ParamCount returns the number of float32 parameters a relation needs
	// at embedding dimension dim.
	ParamCount(dim int) int
	// Apply computes dst = g(x; params). dst and x must not alias unless the
	// operator documents otherwise; all callers in this repo use distinct
	// buffers.
	Apply(dst, x, params []float32)
	// Backward accumulates (+=) the gradients of a scalar loss into gX and
	// gParams, given the upstream gradient gOut on the operator output.
	// gParams may be nil to skip parameter gradients (e.g. frozen relations).
	Backward(gX, gParams, x, params, gOut []float32)
	// InitParams writes the identity-like initialisation the paper uses so
	// that training starts from untransformed embeddings.
	InitParams(params []float32, r *rng.RNG)
}

// NewOperator returns the operator registered under name. Valid names:
// "identity", "translation", "diagonal", "linear", "complex_diagonal".
func NewOperator(name string, dim int) (Operator, error) {
	switch name {
	case "", "identity":
		return IdentityOperator{}, nil
	case "translation":
		return TranslationOperator{}, nil
	case "diagonal":
		return DiagonalOperator{}, nil
	case "linear":
		return LinearOperator{}, nil
	case "complex_diagonal":
		if dim%2 != 0 {
			return nil, fmt.Errorf("model: complex_diagonal requires even dimension, got %d", dim)
		}
		return ComplexDiagonalOperator{}, nil
	default:
		return nil, fmt.Errorf("model: unknown operator %q", name)
	}
}

// IdentityOperator leaves embeddings untransformed: g(x) = x. Used for
// single-relation graphs (LiveJournal, Twitter) where §3.1 notes the
// untransformed embeddings predict edges directly.
type IdentityOperator struct{}

func (IdentityOperator) Name() string           { return "identity" }
func (IdentityOperator) ParamCount(dim int) int { return 0 }
func (IdentityOperator) Apply(dst, x, _ []float32) {
	vec.Copy(dst, x)
}
func (IdentityOperator) Backward(gX, _, _, _, gOut []float32) {
	vec.Axpy(1, gOut, gX)
}
func (IdentityOperator) InitParams(_ []float32, _ *rng.RNG) {}

// TranslationOperator implements TransE: g(x) = x + θ.
type TranslationOperator struct{}

func (TranslationOperator) Name() string           { return "translation" }
func (TranslationOperator) ParamCount(dim int) int { return dim }
func (TranslationOperator) Apply(dst, x, params []float32) {
	vec.Add(dst, x, params)
}
func (TranslationOperator) Backward(gX, gParams, _, _, gOut []float32) {
	vec.Axpy(1, gOut, gX)
	if gParams != nil {
		vec.Axpy(1, gOut, gParams)
	}
}
func (TranslationOperator) InitParams(params []float32, _ *rng.RNG) {
	vec.Zero(params)
}

// DiagonalOperator implements DistMult: g(x) = x ⊙ θ.
type DiagonalOperator struct{}

func (DiagonalOperator) Name() string           { return "diagonal" }
func (DiagonalOperator) ParamCount(dim int) int { return dim }
func (DiagonalOperator) Apply(dst, x, params []float32) {
	vec.Mul(dst, x, params)
}
func (DiagonalOperator) Backward(gX, gParams, x, params, gOut []float32) {
	vec.MulAdd(gX, gOut, params)
	if gParams != nil {
		vec.MulAdd(gParams, gOut, x)
	}
}
func (DiagonalOperator) InitParams(params []float32, _ *rng.RNG) {
	for i := range params {
		params[i] = 1
	}
}

// LinearOperator implements RESCAL: g(x) = A·x with A a dense d×d matrix
// stored row-major in params.
type LinearOperator struct{}

func (LinearOperator) Name() string           { return "linear" }
func (LinearOperator) ParamCount(dim int) int { return dim * dim }
func (LinearOperator) Apply(dst, x, params []float32) {
	d := len(x)
	a := vec.MatrixFrom(params, d, d)
	vec.MatVec(dst, a, x)
}
func (LinearOperator) Backward(gX, gParams, x, params, gOut []float32) {
	d := len(x)
	a := vec.MatrixFrom(params, d, d)
	// gX += Aᵀ · gOut
	for i := 0; i < d; i++ {
		vec.Axpy(gOut[i], a.Row(i), gX)
	}
	// gA[i][j] += gOut[i] * x[j]
	if gParams != nil {
		ga := vec.MatrixFrom(gParams, d, d)
		for i := 0; i < d; i++ {
			vec.Axpy(gOut[i], x, ga.Row(i))
		}
	}
}
func (LinearOperator) InitParams(params []float32, _ *rng.RNG) {
	d := 0
	for d*d < len(params) {
		d++
	}
	vec.Zero(params)
	for i := 0; i < d; i++ {
		params[i*d+i] = 1
	}
}

// ComplexDiagonalOperator implements ComplEx: embeddings of even dimension d
// are treated as d/2 complex numbers (layout [re..., im...]) and
// g(x) = x ∘ θ (complex Hadamard product). Combined with the dot comparator
// this yields exactly Re⟨x∘θ, conj(y)⟩, the ComplEx score.
type ComplexDiagonalOperator struct{}

func (ComplexDiagonalOperator) Name() string           { return "complex_diagonal" }
func (ComplexDiagonalOperator) ParamCount(dim int) int { return dim }
func (ComplexDiagonalOperator) Apply(dst, x, params []float32) {
	vec.ComplexMul(dst, x, params)
}
func (ComplexDiagonalOperator) Backward(gX, gParams, x, params, gOut []float32) {
	tmp := make([]float32, len(x))
	vec.ComplexMulConj(tmp, gOut, params)
	vec.Axpy(1, tmp, gX)
	if gParams != nil {
		vec.ComplexMulConj(tmp, gOut, x)
		vec.Axpy(1, tmp, gParams)
	}
}
func (ComplexDiagonalOperator) InitParams(params []float32, _ *rng.RNG) {
	h := len(params) / 2
	for i := 0; i < h; i++ {
		params[i] = 1   // real part
		params[h+i] = 0 // imaginary part
	}
}
