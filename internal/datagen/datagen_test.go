package datagen

import (
	"sort"
	"testing"

	"pbg/internal/graph"
)

func TestSocialBasicShape(t *testing.T) {
	g, err := Social(SocialConfig{Nodes: 2000, AvgOutDegree: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges.Len() < 2000*3 {
		t.Fatalf("too few edges: %d", g.Edges.Len())
	}
	// No self loops, all in range (NewGraph validates range already).
	for i := 0; i < g.Edges.Len(); i++ {
		s, _, d := g.Edges.Edge(i)
		if s == d {
			t.Fatalf("self loop at %d", i)
		}
	}
}

func TestSocialDeterministic(t *testing.T) {
	a, _ := Social(SocialConfig{Nodes: 500, AvgOutDegree: 3, Seed: 9})
	b, _ := Social(SocialConfig{Nodes: 500, AvgOutDegree: 3, Seed: 9})
	if a.Edges.Len() != b.Edges.Len() {
		t.Fatal("nondeterministic edge count")
	}
	for i := 0; i < a.Edges.Len(); i++ {
		s1, r1, d1 := a.Edges.Edge(i)
		s2, r2, d2 := b.Edges.Edge(i)
		if s1 != s2 || r1 != r2 || d1 != d2 {
			t.Fatal("nondeterministic edges")
		}
	}
	c, _ := Social(SocialConfig{Nodes: 500, AvgOutDegree: 3, Seed: 10})
	diff := false
	for i := 0; i < min(a.Edges.Len(), c.Edges.Len()); i++ {
		s1, _, d1 := a.Edges.Edge(i)
		s2, _, d2 := c.Edges.Edge(i)
		if s1 != s2 || d1 != d2 {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSocialHeavyTail(t *testing.T) {
	g, _ := Social(SocialConfig{Nodes: 5000, AvgOutDegree: 5, Seed: 2})
	deg := graph.ComputeDegrees(g)
	ds := append([]float64(nil), deg.ByType[0]...)
	sort.Float64s(ds)
	n := len(ds)
	top1 := 0.0
	for _, d := range ds[n-n/100:] {
		top1 += d
	}
	var total float64
	for _, d := range ds {
		total += d
	}
	// Heavy tail: top 1% of nodes should hold well above their uniform 1%
	// share of degree mass (per-community hubs dilute the global tail
	// relative to pure preferential attachment, so the bar is 2×).
	if top1/total < 0.02 {
		t.Fatalf("top-1%% degree share %v too uniform for a social graph", top1/total)
	}
	// And the single largest hub must dwarf the median node.
	if ds[n-1] < 10*ds[n/2] {
		t.Fatalf("max degree %v not ≫ median %v", ds[n-1], ds[n/2])
	}
}

func TestSocialRejectsBadConfig(t *testing.T) {
	if _, err := Social(SocialConfig{Nodes: 1, AvgOutDegree: 1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Social(SocialConfig{Nodes: 10, AvgOutDegree: 0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCommunityLabelsAndEdges(t *testing.T) {
	cg, err := Community(CommunityConfig{
		Nodes: 2000, Communities: 10, Edges: 10000,
		ExtraLabelProb: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cg.Graph.Edges.Len() != 10000 {
		t.Fatalf("edges = %d", cg.Graph.Edges.Len())
	}
	if cg.NumClasses != 10 {
		t.Fatalf("classes = %d", cg.NumClasses)
	}
	multi := 0
	for v, ls := range cg.Labels {
		if len(ls) == 0 {
			t.Fatalf("node %d has no labels", v)
		}
		if len(ls) > 1 {
			multi++
		}
		for _, l := range ls {
			if l < 0 || l >= 10 {
				t.Fatalf("label %d out of range", l)
			}
		}
	}
	if multi == 0 {
		t.Fatal("no multi-label nodes despite ExtraLabelProb > 0")
	}
}

func TestCommunityHomophily(t *testing.T) {
	cg, _ := Community(CommunityConfig{
		Nodes: 3000, Communities: 12, Edges: 20000, InFrac: 0.9, Seed: 4,
	})
	shared := 0
	for i := 0; i < cg.Graph.Edges.Len(); i++ {
		s, _, d := cg.Graph.Edges.Edge(i)
		if cg.Labels[s][0] == cg.Labels[d][0] {
			shared++
		}
	}
	frac := float64(shared) / float64(cg.Graph.Edges.Len())
	if frac < 0.6 {
		t.Fatalf("intra-community edge fraction %v too low for InFrac=0.9", frac)
	}
}

func TestKnowledgeShape(t *testing.T) {
	g, err := Knowledge(KGConfig{Entities: 1000, Relations: 20, Edges: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges.Len() < 7000 {
		t.Fatalf("edges = %d, want ≈8000", g.Edges.Len())
	}
	if len(g.Schema.Relations) != 20 {
		t.Fatalf("relations = %d", len(g.Schema.Relations))
	}
	// All relations should be exercised... at least several given Zipf usage.
	relSeen := map[int32]bool{}
	for i := 0; i < g.Edges.Len(); i++ {
		_, r, _ := g.Edges.Edge(i)
		relSeen[r] = true
	}
	if len(relSeen) < 5 {
		t.Fatalf("only %d relations used", len(relSeen))
	}
	// Zipf usage: relation 0 dominates.
	counts := map[int32]int{}
	for i := 0; i < g.Edges.Len(); i++ {
		_, r, _ := g.Edges.Edge(i)
		counts[r]++
	}
	if counts[0] < counts[10] {
		t.Fatal("relation usage not skewed")
	}
}

func TestKnowledgeLearnableStructure(t *testing.T) {
	// The same (s, r) should prefer a small set of destinations — the graph
	// must not be pure noise. Check popularity skew of destinations.
	g, _ := Knowledge(KGConfig{Entities: 500, Relations: 5, Edges: 5000, Seed: 6})
	deg := graph.ComputeDegrees(g)
	ds := append([]float64(nil), deg.ByType[0]...)
	sort.Float64s(ds)
	n := len(ds)
	top, bottom := 0.0, 0.0
	for _, d := range ds[n-50:] {
		top += d
	}
	for _, d := range ds[:50] {
		bottom += d
	}
	if top < bottom*5 {
		t.Fatalf("no popularity skew: top50=%v bottom50=%v", top, bottom)
	}
}

func TestKnowledgeDeterministic(t *testing.T) {
	a, _ := Knowledge(KGConfig{Entities: 300, Relations: 4, Edges: 1000, Seed: 7})
	b, _ := Knowledge(KGConfig{Entities: 300, Relations: 4, Edges: 1000, Seed: 7})
	if a.Edges.Len() != b.Edges.Len() {
		t.Fatal("nondeterministic")
	}
	for i := 0; i < a.Edges.Len(); i++ {
		s1, r1, d1 := a.Edges.Edge(i)
		s2, r2, d2 := b.Edges.Edge(i)
		if s1 != s2 || r1 != r2 || d1 != d2 {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestBipartiteTypesAndRanges(t *testing.T) {
	g, err := Bipartite(BipartiteConfig{Users: 1000, Items: 50, Edges: 5000, UserPartitions: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Schema.Entities) != 2 {
		t.Fatal("want two entity types")
	}
	if g.Schema.Entities[0].NumPartitions != 4 || g.Schema.Entities[1].NumPartitions != 1 {
		t.Fatal("partitioning config not honoured")
	}
	for i := 0; i < g.Edges.Len(); i++ {
		s, _, d := g.Edges.Edge(i)
		if int(s) >= 1000 || int(d) >= 50 {
			t.Fatalf("edge (%d,%d) out of range", s, d)
		}
	}
	// Item popularity must be skewed.
	deg := graph.ComputeDegrees(g)
	items := deg.ByType[1]
	maxDeg, minDeg := items[0], items[0]
	for _, d := range items {
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	if maxDeg < 10*minDeg+10 {
		t.Fatalf("item popularity too flat: max %v min %v", maxDeg, minDeg)
	}
}

func TestBipartiteBadConfig(t *testing.T) {
	if _, err := Bipartite(BipartiteConfig{Users: 0, Items: 5, Edges: 10}); err == nil {
		t.Fatal("expected error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
