// Package datagen generates synthetic graphs standing in for the paper's
// datasets, which cannot be redistributed here (LiveJournal and Twitter from
// SNAP, YouTube from Tang & Liu, the Freebase dumps). Each generator
// preserves the structural properties PBG's design responds to:
//
//   - Social graphs (LiveJournal/Twitter-like): directed, heavy-tailed
//     degree distribution via preferential attachment, single relation.
//   - Community graphs (YouTube-like): overlapping community structure with
//     multi-label ground truth for the downstream classification task.
//   - Knowledge graphs (FB15k/Freebase-like): multi-relation edges generated
//     from a ground-truth latent-factor model with Zipf entity popularity,
//     so that embedding methods can actually recover structure.
//   - Bipartite graphs (the user×item motivation of §3.1): two entity types
//     with wildly unbalanced cardinalities.
//
// All generators are deterministic under their Seed.
package datagen

import (
	"fmt"
	"math"

	"pbg/internal/graph"
	"pbg/internal/rng"
	"pbg/internal/vec"
)

// SocialConfig parameterises a follow graph combining community structure
// (homophily — what embeddings actually learn) with preferential attachment
// inside each community (the heavy degree tail of real social graphs).
type SocialConfig struct {
	Nodes int
	// AvgOutDegree controls edges ≈ Nodes × AvgOutDegree.
	AvgOutDegree int
	// UniformFrac is the probability a target is chosen uniformly across the
	// whole graph instead of preferentially within the node's community;
	// >0 keeps some global noise, mirroring cross-community follows.
	UniformFrac float64
	// Communities is the number of latent communities; 0 picks ≈ Nodes/50.
	Communities int
	// NumPartitions for the single "node" entity type.
	NumPartitions int
	Seed          uint64
}

// Social generates a directed follow graph with heavy-tailed in-degrees and
// latent community structure (the LiveJournal / Twitter stand-in). Without
// homophily a synthetic graph has no signal beyond degree, which the paper's
// α-mixture negative sampling deliberately neutralises — so community
// structure is what makes the held-out link prediction task meaningful.
func Social(cfg SocialConfig) (*graph.Graph, error) {
	if cfg.Nodes < 2 || cfg.AvgOutDegree < 1 {
		return nil, fmt.Errorf("datagen: social config needs ≥2 nodes and ≥1 degree")
	}
	if cfg.NumPartitions <= 0 {
		cfg.NumPartitions = 1
	}
	if cfg.UniformFrac == 0 {
		cfg.UniformFrac = 0.1
	}
	if cfg.Communities <= 0 {
		cfg.Communities = cfg.Nodes / 50
		if cfg.Communities < 2 {
			cfg.Communities = 2
		}
	}
	r := rng.New(cfg.Seed)
	// Random relabeling so contiguous-block partitioning equals uniform
	// assignment (§5.4.2 partitions "uniformly").
	relabel := make([]int, cfg.Nodes)
	r.Perm(relabel)

	// Zipf community sizes: a few huge groups, many tiny ones.
	comm := make([]int, cfg.Nodes)
	commZipf := rng.NewZipf(cfg.Communities, 1.1)
	members := make([][]int32, cfg.Communities)
	for v := 0; v < cfg.Nodes; v++ {
		c := commZipf.Sample(r)
		comm[v] = c
		members[c] = append(members[c], int32(v))
	}
	// Per-community Zipf popularity over members: the first members of each
	// community (an arbitrary subset of nodes) are its celebrities. This
	// produces a global heavy tail whose hubs sit inside communities, like
	// real follow graphs.
	popZipf := make([]*rng.Zipf, cfg.Communities)
	for c := range members {
		if len(members[c]) > 0 {
			popZipf[c] = rng.NewZipf(len(members[c]), 1.2)
		}
	}
	globalPop := rng.NewZipf(cfg.Nodes, 1.2)

	el := &graph.EdgeList{}
	seen := make(map[int64]bool, cfg.Nodes*cfg.AvgOutDegree)
	for v := 0; v < cfg.Nodes; v++ {
		c := comm[v]
		for k := 0; k < cfg.AvgOutDegree; k++ {
			var target int32
			if r.Float64() < cfg.UniformFrac || len(members[c]) < 2 {
				// Cross-community follow, still popularity-biased.
				target = int32(globalPop.Sample(r))
			} else {
				target = members[c][popZipf[c].Sample(r)]
			}
			if target == int32(v) {
				continue
			}
			key := int64(v)<<32 | int64(target)
			if seen[key] {
				continue
			}
			seen[key] = true
			el.Append(int32(relabel[v]), 0, int32(relabel[target]))
		}
	}
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "node", Count: cfg.Nodes, NumPartitions: cfg.NumPartitions}},
		[]graph.RelationType{{Name: "follows", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
	return graph.NewGraph(schema, el)
}

// CommunityConfig parameterises an overlapping-community graph with labels.
type CommunityConfig struct {
	Nodes       int
	Communities int
	// Edges to generate.
	Edges int
	// InFrac is the probability an edge stays within a community.
	InFrac float64
	// ExtraLabelProb is the chance a node carries each additional label
	// beyond its primary community (multi-label ground truth).
	ExtraLabelProb float64
	NumPartitions  int
	Seed           uint64
}

// CommunityGraph is the YouTube stand-in: a social graph with community
// structure plus per-node multi-label ground truth (group subscriptions).
type CommunityGraph struct {
	Graph *graph.Graph
	// Labels[node] lists the label IDs the node carries (≥1 each).
	Labels     [][]int
	NumClasses int
}

// Community generates the graph and labels.
func Community(cfg CommunityConfig) (*CommunityGraph, error) {
	if cfg.Nodes < cfg.Communities || cfg.Communities < 2 {
		return nil, fmt.Errorf("datagen: community config invalid")
	}
	if cfg.InFrac == 0 {
		cfg.InFrac = 0.85
	}
	if cfg.NumPartitions <= 0 {
		cfg.NumPartitions = 1
	}
	r := rng.New(cfg.Seed)
	primary := make([]int, cfg.Nodes)
	members := make([][]int32, cfg.Communities)
	// Zipf community sizes: a few big groups, many small, like real
	// subscription data.
	z := rng.NewZipf(cfg.Communities, 1.2)
	for v := 0; v < cfg.Nodes; v++ {
		c := z.Sample(r)
		primary[v] = c
		members[c] = append(members[c], int32(v))
	}
	// Every community needs at least one member for edge generation.
	for c := range members {
		if len(members[c]) == 0 {
			v := r.Intn(cfg.Nodes)
			members[c] = append(members[c], int32(v))
		}
	}
	labels := make([][]int, cfg.Nodes)
	for v := 0; v < cfg.Nodes; v++ {
		labels[v] = []int{primary[v]}
		for c := 0; c < cfg.Communities; c++ {
			if c != primary[v] && r.Float64() < cfg.ExtraLabelProb {
				labels[v] = append(labels[v], c)
			}
		}
	}
	el := &graph.EdgeList{}
	seen := make(map[int64]bool, cfg.Edges)
	for len(seen) < cfg.Edges {
		var s, d int32
		if r.Float64() < cfg.InFrac {
			c := primary[r.Intn(cfg.Nodes)] // community ∝ size
			m := members[c]
			s = m[r.Intn(len(m))]
			d = m[r.Intn(len(m))]
		} else {
			s = int32(r.Intn(cfg.Nodes))
			d = int32(r.Intn(cfg.Nodes))
		}
		if s == d {
			continue
		}
		key := int64(s)<<32 | int64(d)
		if seen[key] {
			continue
		}
		seen[key] = true
		el.Append(s, 0, d)
	}
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "user", Count: cfg.Nodes, NumPartitions: cfg.NumPartitions}},
		[]graph.RelationType{{Name: "contact", SourceType: "user", DestType: "user", Operator: "identity"}},
	)
	g, err := graph.NewGraph(schema, el)
	if err != nil {
		return nil, err
	}
	return &CommunityGraph{Graph: g, Labels: labels, NumClasses: cfg.Communities}, nil
}

// KGConfig parameterises a multi-relation knowledge graph generated from a
// ground-truth latent-factor model.
type KGConfig struct {
	Entities  int
	Relations int
	Edges     int
	// LatentDim is the dimension of the hidden ground-truth embeddings.
	LatentDim int
	// CandidatePool: destinations are chosen as the best-scoring of this
	// many popularity-sampled candidates; larger pools give cleaner
	// structure.
	CandidatePool int
	// PopularityExponent shapes the Zipf head of entity usage.
	PopularityExponent float64
	NumPartitions      int
	Seed               uint64
}

func (c *KGConfig) defaults() {
	if c.LatentDim == 0 {
		c.LatentDim = 8
	}
	if c.CandidatePool == 0 {
		// The pool bounds how identifiable the destination is: an oracle
		// ranks the true destination around Entities/CandidatePool among
		// all entities, so small pools produce unlearnable graphs. Real
		// knowledge-graph relations are near-functional (capital_of has one
		// answer), which corresponds to a large pool.
		c.CandidatePool = c.Entities / 3
		if c.CandidatePool < 256 {
			c.CandidatePool = 256
		}
		if c.CandidatePool > c.Entities {
			c.CandidatePool = c.Entities
		}
	}
	if c.PopularityExponent == 0 {
		c.PopularityExponent = 1.1
	}
	if c.NumPartitions <= 0 {
		c.NumPartitions = 1
	}
}

// KGTruth is the generator's hidden model, exposed so tests can verify the
// graph is learnable (an oracle scoring with the truth must rank true edges
// near the top).
type KGTruth struct {
	Latent     vec.Matrix // Entities×k ground-truth embeddings
	RelW, RelT vec.Matrix // Relations×k diagonal transform and translation
	LogPop     []float32  // per-entity popularity boost
	Gamma      float32    // weight of the popularity term
}

// Score computes the generative score of an edge:
// ⟨z_s ⊙ w_r + t_r, z_d⟩ + γ·logpop_d.
func (t *KGTruth) Score(s, rel, d int32) float32 {
	k := t.Latent.Cols
	zs := t.Latent.Row(int(s))
	w := t.RelW.Row(int(rel))
	tt := t.RelT.Row(int(rel))
	var sum float32
	zd := t.Latent.Row(int(d))
	for i := 0; i < k; i++ {
		sum += (zs[i]*w[i] + tt[i]) * zd[i]
	}
	return sum + t.Gamma*t.LogPop[d]
}

// Knowledge generates the FB15k / full-Freebase stand-in; see
// KnowledgeWithTruth.
func Knowledge(cfg KGConfig) (*graph.Graph, error) {
	g, _, err := KnowledgeWithTruth(cfg)
	return g, err
}

// KnowledgeWithTruth generates edges (s, r, d) where d maximises the hidden
// relational score ⟨z_s ⊙ w_r + t_r, z_d⟩ + γ·logpop_d over a uniform
// candidate pool. The additive popularity term creates the heavy-tailed
// destination degrees of real knowledge graphs (§5.4.2 footnote) while
// remaining learnable (a model can absorb it into embedding norms); the
// latent term carries the relational structure. Source usage and relation
// usage are Zipf.
func KnowledgeWithTruth(cfg KGConfig) (*graph.Graph, *KGTruth, error) {
	cfg.defaults()
	if cfg.Entities < 4 || cfg.Relations < 1 || cfg.Edges < 1 {
		return nil, nil, fmt.Errorf("datagen: knowledge config invalid")
	}
	r := rng.New(cfg.Seed)
	k := cfg.LatentDim
	z := make([]float32, cfg.Entities*k)
	for i := range z {
		z[i] = r.NormFloat32()
	}
	latent := vec.MatrixFrom(z, cfg.Entities, k)
	relW := make([]float32, cfg.Relations*k)
	relT := make([]float32, cfg.Relations*k)
	for i := range relW {
		relW[i] = r.NormFloat32()
		relT[i] = r.NormFloat32() * 0.5
	}
	// Per-entity popularity boost: Zipf-shaped log weights, normalised to
	// zero mean so it tilts rather than dominates the latent scores.
	logPop := make([]float32, cfg.Entities)
	zp := rng.NewZipf(cfg.Entities, cfg.PopularityExponent)
	counts := make([]float64, cfg.Entities)
	for i := 0; i < cfg.Entities*4; i++ {
		counts[zp.Sample(r)]++
	}
	var meanLog float64
	for i := range logPop {
		logPop[i] = float32(math.Log(counts[i] + 1))
		meanLog += float64(logPop[i])
	}
	meanLog /= float64(cfg.Entities)
	for i := range logPop {
		logPop[i] -= float32(meanLog)
	}
	truth := &KGTruth{
		Latent: latent,
		RelW:   vec.MatrixFrom(relW, cfg.Relations, k),
		RelT:   vec.MatrixFrom(relT, cfg.Relations, k),
		LogPop: logPop,
		Gamma:  1.5,
	}
	popularity := rng.NewZipf(cfg.Entities, cfg.PopularityExponent)
	relZipf := rng.NewZipf(cfg.Relations, 1.05)

	el := &graph.EdgeList{}
	seen := make(map[[2]int64]bool, cfg.Edges)
	attempts := 0
	for el.Len() < cfg.Edges && attempts < cfg.Edges*20 {
		attempts++
		rel := relZipf.Sample(r)
		s := popularity.Sample(r)
		best, bestScore := -1, float32(0)
		for c := 0; c < cfg.CandidatePool; c++ {
			d := r.Intn(cfg.Entities)
			if d == s {
				continue
			}
			sc := truth.Score(int32(s), int32(rel), int32(d))
			if best < 0 || sc > bestScore {
				best, bestScore = d, sc
			}
		}
		if best < 0 {
			continue
		}
		key := [2]int64{int64(s)<<32 | int64(best), int64(rel)}
		if seen[key] {
			continue
		}
		seen[key] = true
		el.Append(int32(s), int32(rel), int32(best))
	}
	rels := make([]graph.RelationType, cfg.Relations)
	for i := range rels {
		rels[i] = graph.RelationType{
			Name:       fmt.Sprintf("rel_%d", i),
			SourceType: "entity",
			DestType:   "entity",
			Operator:   "translation",
		}
	}
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "entity", Count: cfg.Entities, NumPartitions: cfg.NumPartitions}},
		rels,
	)
	g, err := graph.NewGraph(schema, el)
	if err != nil {
		return nil, nil, err
	}
	return g, truth, nil
}

// BipartiteConfig parameterises the user×item graph from §3.1's motivation
// (e.g. 1B users vs 1M products — unbalanced entity types).
type BipartiteConfig struct {
	Users, Items   int
	Edges          int
	LatentDim      int
	CandidatePool  int
	UserPartitions int
	Seed           uint64
}

// Bipartite generates a two-entity-type purchase graph where users buy items
// matching their hidden taste vector; items have Zipf popularity. Users are
// partitioned, items (small cardinality) are not — the configuration of
// Figure 1 (center).
func Bipartite(cfg BipartiteConfig) (*graph.Graph, error) {
	if cfg.LatentDim == 0 {
		cfg.LatentDim = 8
	}
	if cfg.CandidatePool == 0 {
		cfg.CandidatePool = 8
	}
	if cfg.UserPartitions <= 0 {
		cfg.UserPartitions = 1
	}
	if cfg.Users < 1 || cfg.Items < 2 || cfg.Edges < 1 {
		return nil, fmt.Errorf("datagen: bipartite config invalid")
	}
	r := rng.New(cfg.Seed)
	k := cfg.LatentDim
	uz := make([]float32, cfg.Users*k)
	iz := make([]float32, cfg.Items*k)
	for i := range uz {
		uz[i] = r.NormFloat32()
	}
	for i := range iz {
		iz[i] = r.NormFloat32()
	}
	users := vec.MatrixFrom(uz, cfg.Users, k)
	items := vec.MatrixFrom(iz, cfg.Items, k)
	pop := rng.NewZipf(cfg.Items, 1.1)
	el := &graph.EdgeList{}
	seen := make(map[int64]bool, cfg.Edges)
	attempts := 0
	for el.Len() < cfg.Edges && attempts < cfg.Edges*20 {
		attempts++
		u := r.Intn(cfg.Users)
		best, bestScore := -1, float32(0)
		for c := 0; c < cfg.CandidatePool; c++ {
			it := pop.Sample(r)
			sc := vec.Dot(users.Row(u), items.Row(it))
			if best < 0 || sc > bestScore {
				best, bestScore = it, sc
			}
		}
		key := int64(u)<<32 | int64(best)
		if seen[key] {
			continue
		}
		seen[key] = true
		el.Append(int32(u), 0, int32(best))
	}
	schema := graph.MustSchema(
		[]graph.EntityType{
			{Name: "user", Count: cfg.Users, NumPartitions: cfg.UserPartitions},
			{Name: "item", Count: cfg.Items, NumPartitions: 1},
		},
		[]graph.RelationType{{Name: "buys", SourceType: "user", DestType: "item", Operator: "identity"}},
	)
	return graph.NewGraph(schema, el)
}
