// Package classify implements the downstream evaluation of §5.3: node
// embeddings are used as features for a one-vs-rest logistic regression that
// predicts multi-label node categories (the YouTube task), scored with
// micro- and macro-F1 under the standard protocol of Perozzi et al. 2014 —
// for each test node, the top-kᵢ classes are predicted, where kᵢ is the
// node's true label count.
package classify

import (
	"fmt"
	"sort"

	"pbg/internal/optim"
	"pbg/internal/rng"
	"pbg/internal/vec"
)

// Config for the one-vs-rest trainer.
type Config struct {
	Classes int
	Epochs  int
	LR      float32
	// L2 regularisation strength.
	L2   float32
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.LR == 0 {
		c.LR = 0.5
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	return c
}

// Model is a set of per-class logistic regressors (weights + bias).
type Model struct {
	Classes int
	Dim     int
	// W is Classes×(Dim+1); the last column is the bias.
	W vec.Matrix
}

// Train fits one-vs-rest logistic regression on features X (n×d) and
// multi-labels Y (Y[i] lists class IDs of example i).
func Train(x vec.Matrix, y [][]int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("classify: Classes must be positive")
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("classify: %d feature rows but %d label rows", x.Rows, len(y))
	}
	d := x.Cols
	m := &Model{Classes: cfg.Classes, Dim: d, W: vec.NewMatrix(cfg.Classes, d+1)}
	// Dense label matrix as bitsets for O(1) membership.
	isLabel := make([]map[int]bool, len(y))
	for i, ls := range y {
		isLabel[i] = make(map[int]bool, len(ls))
		for _, l := range ls {
			if l < 0 || l >= cfg.Classes {
				return nil, fmt.Errorf("classify: label %d out of range", l)
			}
			isLabel[i][l] = true
		}
	}
	r := rng.New(cfg.Seed)
	order := make([]int, x.Rows)
	opt := make([]*optim.DenseAdagrad, cfg.Classes)
	for c := range opt {
		opt[c] = optim.NewDenseAdagrad(cfg.LR, d+1)
	}
	grad := make([]float32, d+1)
	for e := 0; e < cfg.Epochs; e++ {
		r.Perm(order)
		for _, i := range order {
			xi := x.Row(i)
			for c := 0; c < cfg.Classes; c++ {
				w := m.W.Row(c)
				s := vec.Dot(w[:d], xi) + w[d]
				var label float32
				if isLabel[i][c] {
					label = 1
				}
				g := vec.Sigmoid(s) - label
				for k := 0; k < d; k++ {
					grad[k] = g*xi[k] + cfg.L2*w[k]
				}
				grad[d] = g
				opt[c].Update(w, grad)
			}
		}
	}
	return m, nil
}

// Scores returns the raw per-class logits for one feature vector.
func (m *Model) Scores(xi []float32, out []float32) {
	d := m.Dim
	for c := 0; c < m.Classes; c++ {
		w := m.W.Row(c)
		out[c] = vec.Dot(w[:d], xi) + w[d]
	}
}

// PredictTopK returns the k highest-scoring classes for xi (the
// label-count-oracle protocol used by DeepWalk/MILE evaluations).
func (m *Model) PredictTopK(xi []float32, k int) []int {
	scores := make([]float32, m.Classes)
	m.Scores(xi, scores)
	idx := make([]int, m.Classes)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// F1Result carries both averaging modes of the F1 score.
type F1Result struct {
	MicroF1 float64
	MacroF1 float64
}

// EvaluateTopK predicts top-kᵢ labels for every row of x and compares with
// the ground truth, returning micro/macro F1.
func (m *Model) EvaluateTopK(x vec.Matrix, y [][]int) F1Result {
	classTP := make([]float64, m.Classes)
	classFP := make([]float64, m.Classes)
	classFN := make([]float64, m.Classes)
	for i := 0; i < x.Rows; i++ {
		truth := map[int]bool{}
		for _, l := range y[i] {
			truth[l] = true
		}
		pred := m.PredictTopK(x.Row(i), len(y[i]))
		predSet := map[int]bool{}
		for _, p := range pred {
			predSet[p] = true
			if truth[p] {
				classTP[p]++
			} else {
				classFP[p]++
			}
		}
		for l := range truth {
			if !predSet[l] {
				classFN[l]++
			}
		}
	}
	var tp, fp, fn float64
	var macro float64
	activeClasses := 0
	for c := 0; c < m.Classes; c++ {
		tp += classTP[c]
		fp += classFP[c]
		fn += classFN[c]
		if classTP[c]+classFP[c]+classFN[c] > 0 {
			macro += f1(classTP[c], classFP[c], classFN[c])
			activeClasses++
		}
	}
	out := F1Result{MicroF1: f1(tp, fp, fn)}
	if activeClasses > 0 {
		out.MacroF1 = macro / float64(activeClasses)
	}
	return out
}

func f1(tp, fp, fn float64) float64 {
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}

// CrossValidate runs k-fold cross-validation with trainFrac of each fold's
// data used for training (the paper uses 10 folds at 90%), returning the
// mean micro/macro F1 over folds.
func CrossValidate(x vec.Matrix, y [][]int, cfg Config, folds int, trainFrac float64) (F1Result, error) {
	if folds < 2 {
		return F1Result{}, fmt.Errorf("classify: need ≥ 2 folds")
	}
	n := x.Rows
	r := rng.New(cfg.Seed ^ 0xF01D)
	var sum F1Result
	for f := 0; f < folds; f++ {
		perm := make([]int, n)
		r.Perm(perm)
		nTrain := int(trainFrac * float64(n))
		trainX := vec.NewMatrix(nTrain, x.Cols)
		trainY := make([][]int, nTrain)
		for i := 0; i < nTrain; i++ {
			copy(trainX.Row(i), x.Row(perm[i]))
			trainY[i] = y[perm[i]]
		}
		testX := vec.NewMatrix(n-nTrain, x.Cols)
		testY := make([][]int, n-nTrain)
		for i := nTrain; i < n; i++ {
			copy(testX.Row(i-nTrain), x.Row(perm[i]))
			testY[i-nTrain] = y[perm[i]]
		}
		m, err := Train(trainX, trainY, cfg)
		if err != nil {
			return F1Result{}, err
		}
		res := m.EvaluateTopK(testX, testY)
		sum.MicroF1 += res.MicroF1
		sum.MacroF1 += res.MacroF1
	}
	sum.MicroF1 /= float64(folds)
	sum.MacroF1 /= float64(folds)
	return sum, nil
}
