package classify

import (
	"testing"

	"pbg/internal/rng"
	"pbg/internal/vec"
)

// separableData builds a trivially separable multi-class problem: class c
// has mean vector e_c scaled by 3.
func separableData(n, classes, dim int, seed uint64) (vec.Matrix, [][]int) {
	r := rng.New(seed)
	x := vec.NewMatrix(n, dim)
	y := make([][]int, n)
	for i := 0; i < n; i++ {
		c := r.Intn(classes)
		y[i] = []int{c}
		for k := 0; k < dim; k++ {
			x.Row(i)[k] = r.NormFloat32() * 0.3
		}
		x.Row(i)[c%dim] += 3
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	x, y := separableData(500, 4, 8, 1)
	m, err := Train(x, y, Config{Classes: 4, Epochs: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := m.EvaluateTopK(x, y)
	if res.MicroF1 < 0.95 {
		t.Fatalf("micro-F1 %.3f on separable data", res.MicroF1)
	}
	if res.MacroF1 < 0.9 {
		t.Fatalf("macro-F1 %.3f on separable data", res.MacroF1)
	}
}

func TestMultiLabelTopK(t *testing.T) {
	// Nodes with two labels must get two predictions under the oracle-k
	// protocol.
	x := vec.NewMatrix(4, 4)
	y := [][]int{{0, 1}, {0}, {1}, {0, 1}}
	for i := range y {
		for _, l := range y[i] {
			x.Row(i)[l] = 2
		}
	}
	m, err := Train(x, y, Config{Classes: 2, Epochs: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictTopK(x.Row(0), 2)
	if len(pred) != 2 {
		t.Fatalf("PredictTopK returned %d classes", len(pred))
	}
	res := m.EvaluateTopK(x, y)
	if res.MicroF1 < 0.9 {
		t.Fatalf("multi-label micro-F1 %.3f", res.MicroF1)
	}
}

func TestEvaluateRandomIsPoor(t *testing.T) {
	x, y := separableData(300, 6, 8, 4)
	// Untrained model ranks arbitrarily.
	m := &Model{Classes: 6, Dim: 8, W: vec.NewMatrix(6, 9)}
	res := m.EvaluateTopK(x, y)
	if res.MicroF1 > 0.5 {
		t.Fatalf("untrained model micro-F1 %.3f suspiciously high", res.MicroF1)
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := separableData(400, 4, 8, 5)
	res, err := CrossValidate(x, y, Config{Classes: 4, Epochs: 15, Seed: 6}, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.MicroF1 < 0.9 {
		t.Fatalf("CV micro-F1 %.3f", res.MicroF1)
	}
}

func TestTrainValidation(t *testing.T) {
	x := vec.NewMatrix(2, 3)
	if _, err := Train(x, [][]int{{0}}, Config{Classes: 2}); err == nil {
		t.Fatal("expected row-count error")
	}
	if _, err := Train(x, [][]int{{0}, {5}}, Config{Classes: 2}); err == nil {
		t.Fatal("expected label-range error")
	}
	if _, err := Train(x, [][]int{{0}, {1}}, Config{Classes: 0}); err == nil {
		t.Fatal("expected class-count error")
	}
	if _, err := CrossValidate(x, [][]int{{0}, {1}}, Config{Classes: 2}, 1, 0.9); err == nil {
		t.Fatal("expected folds error")
	}
}

func TestPredictTopKBounds(t *testing.T) {
	m := &Model{Classes: 3, Dim: 2, W: vec.NewMatrix(3, 3)}
	pred := m.PredictTopK([]float32{1, 1}, 10)
	if len(pred) != 3 {
		t.Fatalf("k clamped wrong: %d", len(pred))
	}
}

func TestF1Helper(t *testing.T) {
	if f1(0, 5, 5) != 0 {
		t.Fatal("zero TP should give 0")
	}
	if got := f1(10, 0, 0); got != 1 {
		t.Fatalf("perfect f1 = %v", got)
	}
}
