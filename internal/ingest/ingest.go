// Package ingest converts external edge lists into pbg graphs, mirroring
// the importer of the open-source PBG release: entities and relations are
// named by arbitrary strings in the input; the importer interns them into
// dense int32 IDs, optionally shuffles entity IDs (so contiguous-block
// partitioning equals the uniform assignment of §5.4.2), and applies a
// minimum-frequency filter (the paper keeps Freebase entities/relations
// appearing ≥ 5 times).
package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pbg/internal/graph"
	"pbg/internal/rng"
)

// Options configures an import.
type Options struct {
	// EntityType names the single entity type of the imported graph.
	EntityType string
	// NumPartitions for the entity type.
	NumPartitions int
	// MinFrequency drops entities and relations appearing fewer times
	// (paper §5.4.2 uses 5 for full Freebase). 0 keeps everything.
	MinFrequency int
	// ShuffleSeed, when non-zero, randomises the entity-ID assignment so
	// block partitioning is uniform.
	ShuffleSeed uint64
	// Operator assigned to every imported relation. Empty = identity.
	Operator string
	// Comment prefixes a line to skip ("#" by default).
	Comment string
}

func (o Options) withDefaults() Options {
	if o.EntityType == "" {
		o.EntityType = "entity"
	}
	if o.NumPartitions <= 0 {
		o.NumPartitions = 1
	}
	if o.Comment == "" {
		o.Comment = "#"
	}
	if o.Operator == "" {
		o.Operator = "identity"
	}
	return o
}

// Result couples the imported graph with its dictionaries.
type Result struct {
	Graph *graph.Graph
	// Entities maps entity name → dense ID; Names is the inverse.
	Entities map[string]int32
	Names    []string
	// Relations maps relation name → relation index; RelNames the inverse.
	Relations map[string]int32
	RelNames  []string
	// DroppedEdges counts edges removed by the frequency filter.
	DroppedEdges int
}

// rawEdge is a parsed input line.
type rawEdge struct {
	src, rel, dst string
}

// ReadTSV imports whitespace-separated edges: "src dst" (single implicit
// relation) or "src rel dst".
func ReadTSV(r io.Reader, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var raws []rawEdge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, opts.Comment) {
			continue
		}
		fields := strings.Fields(line)
		switch len(fields) {
		case 2:
			raws = append(raws, rawEdge{src: fields[0], rel: "__default__", dst: fields[1]})
		case 3:
			raws = append(raws, rawEdge{src: fields[0], rel: fields[1], dst: fields[2]})
		default:
			return nil, fmt.Errorf("ingest: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return build(raws, opts)
}

func build(raws []rawEdge, opts Options) (*Result, error) {
	if len(raws) == 0 {
		return nil, fmt.Errorf("ingest: no edges in input")
	}
	// Frequency pass.
	entFreq := map[string]int{}
	relFreq := map[string]int{}
	for _, e := range raws {
		entFreq[e.src]++
		entFreq[e.dst]++
		relFreq[e.rel]++
	}
	keepEnt := func(name string) bool { return entFreq[name] >= opts.MinFrequency }
	keepRel := func(name string) bool { return relFreq[name] >= opts.MinFrequency }

	// Intern surviving names in first-seen order.
	res := &Result{
		Entities:  map[string]int32{},
		Relations: map[string]int32{},
	}
	entID := func(name string) int32 {
		if id, ok := res.Entities[name]; ok {
			return id
		}
		id := int32(len(res.Names))
		res.Entities[name] = id
		res.Names = append(res.Names, name)
		return id
	}
	relID := func(name string) int32 {
		if id, ok := res.Relations[name]; ok {
			return id
		}
		id := int32(len(res.RelNames))
		res.Relations[name] = id
		res.RelNames = append(res.RelNames, name)
		return id
	}
	el := &graph.EdgeList{}
	for _, e := range raws {
		if opts.MinFrequency > 0 && (!keepEnt(e.src) || !keepEnt(e.dst) || !keepRel(e.rel)) {
			res.DroppedEdges++
			continue
		}
		el.Append(entID(e.src), relID(e.rel), entID(e.dst))
	}
	if el.Len() == 0 {
		return nil, fmt.Errorf("ingest: frequency filter %d removed every edge", opts.MinFrequency)
	}

	// Optional uniform shuffle of entity IDs.
	if opts.ShuffleSeed != 0 {
		n := len(res.Names)
		perm := make([]int, n)
		rng.New(opts.ShuffleSeed).Perm(perm)
		// perm[old] = new
		newNames := make([]string, n)
		for old, name := range res.Names {
			res.Entities[name] = int32(perm[old])
			newNames[perm[old]] = name
		}
		res.Names = newNames
		for i := range el.Srcs {
			el.Srcs[i] = int32(perm[el.Srcs[i]])
			el.Dsts[i] = int32(perm[el.Dsts[i]])
		}
	}

	parts := opts.NumPartitions
	if parts > len(res.Names) {
		parts = len(res.Names)
	}
	rels := make([]graph.RelationType, len(res.RelNames))
	for i, name := range res.RelNames {
		rels[i] = graph.RelationType{
			Name:       name,
			SourceType: opts.EntityType,
			DestType:   opts.EntityType,
			Operator:   opts.Operator,
		}
	}
	schema, err := graph.NewSchema(
		[]graph.EntityType{{Name: opts.EntityType, Count: len(res.Names), NumPartitions: parts}},
		rels,
	)
	if err != nil {
		return nil, err
	}
	g, err := graph.NewGraph(schema, el)
	if err != nil {
		return nil, err
	}
	res.Graph = g
	return res, nil
}
