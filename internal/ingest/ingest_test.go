package ingest

import (
	"strings"
	"testing"
)

func TestReadTSVTwoColumn(t *testing.T) {
	in := "alice bob\nbob carol\n# comment\nalice carol\n"
	res, err := ReadTSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Edges.Len() != 3 {
		t.Fatalf("edges = %d", res.Graph.Edges.Len())
	}
	if len(res.Names) != 3 {
		t.Fatalf("entities = %d", len(res.Names))
	}
	if len(res.RelNames) != 1 {
		t.Fatalf("relations = %d", len(res.RelNames))
	}
	// Round-trip an edge by name.
	s, _, d := res.Graph.Edges.Edge(0)
	if res.Names[s] != "alice" || res.Names[d] != "bob" {
		t.Fatalf("edge 0 = %s → %s", res.Names[s], res.Names[d])
	}
}

func TestReadTSVThreeColumn(t *testing.T) {
	in := "paris capital_of france\nberlin capital_of germany\nparis located_in europe\n"
	res, err := ReadTSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RelNames) != 2 {
		t.Fatalf("relations = %d: %v", len(res.RelNames), res.RelNames)
	}
	if res.Graph.Schema.Relations[res.Relations["capital_of"]].Name != "capital_of" {
		t.Fatal("relation name not preserved")
	}
	if len(res.Names) != 5 {
		t.Fatalf("entities = %d", len(res.Names))
	}
}

func TestMinFrequencyFilter(t *testing.T) {
	// "rare" appears once; with MinFrequency 2 its edge is dropped.
	in := "a r b\na r b2\nb r a\nrare r a\n"
	res, err := ReadTSV(strings.NewReader(in), Options{MinFrequency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedEdges != 2 {
		t.Fatalf("dropped = %d, want 2 (rare src + b2 dst)", res.DroppedEdges)
	}
	if _, ok := res.Entities["rare"]; ok {
		t.Fatal("rare entity survived filter")
	}
}

func TestFilterEverythingErrors(t *testing.T) {
	in := "a r b\nc r d\n"
	if _, err := ReadTSV(strings.NewReader(in), Options{MinFrequency: 10}); err == nil {
		t.Fatal("expected error when filter removes all edges")
	}
}

func TestShuffleRelabelsConsistently(t *testing.T) {
	in := "a x b\nb x c\nc x a\nd x a\ne x a\nf x a\ng x a\nh x a\n"
	plain, err := ReadTSV(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := ReadTSV(strings.NewReader(in), Options{ShuffleSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if shuf.Graph.Edges.Len() != plain.Graph.Edges.Len() {
		t.Fatal("edge count changed by shuffle")
	}
	// Dictionary must stay consistent: the edge list expressed in names is
	// identical.
	for i := 0; i < plain.Graph.Edges.Len(); i++ {
		s1, r1, d1 := plain.Graph.Edges.Edge(i)
		s2, r2, d2 := shuf.Graph.Edges.Edge(i)
		if plain.Names[s1] != shuf.Names[s2] || r1 != r2 || plain.Names[d1] != shuf.Names[d2] {
			t.Fatalf("edge %d differs by name after shuffle", i)
		}
	}
	// And the assignment is actually permuted (8 entities: the identity
	// permutation is vanishingly unlikely with this seed).
	same := true
	for name, id := range plain.Entities {
		if shuf.Entities[name] != id {
			same = false
		}
	}
	if same {
		t.Fatal("shuffle produced identity mapping")
	}
	// Names index is the inverse of Entities.
	for name, id := range shuf.Entities {
		if shuf.Names[id] != name {
			t.Fatalf("Names[%d] = %s, want %s", id, shuf.Names[id], name)
		}
	}
}

func TestPartitionsClampedToEntities(t *testing.T) {
	in := "a x b\n"
	res, err := ReadTSV(strings.NewReader(in), Options{NumPartitions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Schema.Entities[0].NumPartitions != 2 {
		t.Fatalf("partitions = %d, want clamped 2", res.Graph.Schema.Entities[0].NumPartitions)
	}
}

func TestMalformedLine(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("a b c d\n"), Options{}); err == nil {
		t.Fatal("expected error for 4 fields")
	}
	if _, err := ReadTSV(strings.NewReader(""), Options{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestOperatorOption(t *testing.T) {
	res, err := ReadTSV(strings.NewReader("a r b\n"), Options{Operator: "translation"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Schema.Relations[0].Operator != "translation" {
		t.Fatal("operator option ignored")
	}
}

func TestImportedGraphIsTrainable(t *testing.T) {
	// End-to-end: the imported graph must be a valid training input.
	var sb strings.Builder
	for i := 0; i < 26; i++ {
		for j := 0; j < 26; j++ {
			if (i+j)%3 == 0 && i != j {
				sb.WriteString(string(rune('a'+i)) + " knows " + string(rune('a'+j)) + "\n")
			}
		}
	}
	res, err := ReadTSV(strings.NewReader(sb.String()), Options{NumPartitions: 2, ShuffleSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Schema.Entities[0].Count != 26 {
		t.Fatalf("entities = %d", res.Graph.Schema.Entities[0].Count)
	}
}
