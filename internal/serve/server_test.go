package serve_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbg/internal/obs"
	"pbg/internal/serve"
	"pbg/internal/serve/servetest"
)

// TestConcurrentMixedRequestsWithReload is the -race satellite: goroutines
// hammer one Server with mixed top-K/score/rank traffic while another
// goroutine hot-reloads the checkpoint repeatedly. Every response must be
// internally consistent; no request may error with anything but ErrClosed
// and none may observe a torn view (the race detector guards the rest).
func TestConcurrentMixedRequestsWithReload(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s := openServer(t, f, serve.ModeAuto)
	if err := s.BuildIndex(serve.IVFConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	oracle := f.NewOracle(t)
	// Exact results are stable across reloads of the same checkpoint, so
	// every worker can verify against one oracle snapshot.
	const workers = 8
	const iters = 30
	var workerWg, reloadWg sync.WaitGroup
	errs := make(chan error, workers+1)
	stop := make(chan struct{})

	reloadWg.Add(1)
	go func() {
		defer reloadWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Reload(""); err != nil {
				errs <- err
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		workerWg.Add(1)
		go func(w int) {
			defer workerWg.Done()
			reqs := f.Requests(uint64(1000+w), iters, 10, w%2 == 0)
			for i, req := range reqs {
				switch i % 3 {
				case 0:
					res, err := s.TopK([]serve.TopKRequest{req})
					if err != nil {
						errs <- err
						return
					}
					if req.Exact {
						wantIDs, _ := oracle.TopK(req.Rel, req.SrcID, nil, req.K)
						for j := range wantIDs {
							if res[0].IDs[j] != wantIDs[j] {
								t.Errorf("worker %d: exact top-K diverged from oracle mid-reload", w)
								return
							}
						}
					}
				case 1:
					dst := (req.SrcID + 3) % int32(f.Cfg.Nodes)
					got, err := s.Score([]serve.ScoreRequest{{Rel: req.Rel, Src: req.SrcID, Dst: dst}})
					if err != nil {
						errs <- err
						return
					}
					if want := oracle.Score(req.Rel, req.SrcID, dst); got[0] != want {
						t.Errorf("worker %d: score diverged from oracle mid-reload", w)
						return
					}
				case 2:
					if _, err := s.Rank(req.Rel, req.SrcID, (req.SrcID+9)%int32(f.Cfg.Nodes)); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	// Let every request worker finish under live reload churn, then stop
	// the reloader.
	workerWg.Wait()
	close(stop)
	reloadWg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestHotSwapNeverTearsAView reloads between two checkpoints with visibly
// different embeddings while readers assert that every single response is
// consistent with exactly one of the two checkpoints — never a mixture.
func TestHotSwapNeverTearsAView(t *testing.T) {
	fA := servetest.Shared(t, servetest.FixtureConfig{Seed: 41})
	fB := servetest.Shared(t, servetest.FixtureConfig{Seed: 42})
	// Same geometry, different training seeds → same schema, different rows.
	s := openServer(t, fA, serve.ModeAuto)
	oracleA := fA.NewOracle(t)
	oracleB := fB.NewOracle(t)

	var flips atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		dirs := []string{fB.Dir, fA.Dir}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Reload(dirs[i%2]); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			flips.Add(1)
		}
	}()

	// Probe until the reloader has demonstrably swapped a few times — the
	// main goroutine can otherwise outrun the reloader's first iteration
	// and the test would assert nothing. Deadline-bounded so a stuck
	// reloader fails fast instead of hanging.
	const minProbes = 200
	deadline := time.Now().Add(20 * time.Second)
	mismatches, probes := 0, 0
	for i := 0; i < minProbes || (flips.Load() < 3 && time.Now().Before(deadline)); i++ {
		probes++
		src := int32(i % fA.Cfg.Nodes)
		dst := int32((i*7 + 3) % fA.Cfg.Nodes)
		got, err := s.Score([]serve.ScoreRequest{{Rel: 0, Src: src, Dst: dst}})
		if err != nil {
			t.Fatal(err)
		}
		a := oracleA.Score(0, src, dst)
		b := oracleB.Score(0, src, dst)
		if got[0] != a && got[0] != b {
			mismatches++
		}
	}
	close(stop)
	wg.Wait()
	if mismatches > 0 {
		t.Fatalf("%d of %d responses matched neither checkpoint — torn view", mismatches, probes)
	}
	if flips.Load() == 0 {
		t.Fatal("reloader never completed a swap; test exercised nothing")
	}
}

// TestCloseDrainsInFlight pins the lifecycle: Close rejects new requests
// with ErrClosed while already-admitted requests complete.
func TestCloseDrainsInFlight(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s, err := serve.Open(f.Dir, f.ServerConfig(serve.ModeAuto))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK([]serve.TopKRequest{{Rel: 0, SrcID: 1, K: 3, Exact: true}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK([]serve.TopKRequest{{Rel: 0, SrcID: 1, K: 3, Exact: true}}); err == nil {
		t.Fatal("TopK after Close did not error")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestServeMetrics pins the obs wiring: request counters, latency
// histograms and footprint gauges must move when traffic flows.
func TestServeMetrics(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	hub := obs.NewQuietHub()
	cfg := f.ServerConfig(serve.ModeAuto)
	cfg.Obs = hub
	s, err := serve.Open(f.Dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.BuildIndex(serve.IVFConfig{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK(f.Requests(51, 8, 5, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Score([]serve.ScoreRequest{{Rel: 0, Src: 1, Dst: 2}}); err != nil {
		t.Fatal(err)
	}
	snap := hub.Reg.Snapshot()
	if snap.Counters[`pbg_serve_requests_total{api="topk"}`] == 0 {
		t.Fatal("topk request counter did not move")
	}
	if snap.Counters[`pbg_serve_rows_scored_total`] == 0 {
		t.Fatal("rows-scored counter did not move")
	}
	if h := snap.Histograms[`pbg_serve_latency_s{api="topk"}`]; h.Count == 0 {
		t.Fatal("topk latency histogram is empty")
	} else if h.Quantile(0.99) <= 0 {
		t.Fatal("p99 of a non-empty histogram is not positive")
	}
	if snap.Gauges[`pbg_serve_index_lists`] == 0 {
		t.Fatal("index-lists gauge not published")
	}
	if serve.MmapAvailable() && snap.Gauges[`pbg_serve_mapped_shards`] == 0 {
		t.Fatal("mapped-shards gauge not published")
	}
}
