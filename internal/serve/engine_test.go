package serve_test

import (
	"testing"

	"pbg/internal/eval"
	"pbg/internal/model"
	"pbg/internal/serve"
	"pbg/internal/serve/servetest"
	"pbg/internal/storage"
)

func openServer(t *testing.T, f *servetest.Fixture, mode serve.Mode) *serve.Server {
	t.Helper()
	s, err := serve.Open(f.Dir, f.ServerConfig(mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// TestExactTopKMatchesOracleBitwise pins the strongest parity claim: a
// single-query exact top-K returns the oracle's IDs AND the oracle's exact
// score bits. A 1-row query matrix takes vec.MulABt's Dot tail path, the
// same kernel model.Scorer.ScoreMany bottoms out in, so chunking cannot
// change a single bit.
func TestExactTopKMatchesOracleBitwise(t *testing.T) {
	for _, cmp := range []string{"dot", "cos", "squared_l2", "l2"} {
		t.Run(cmp, func(t *testing.T) {
			f := servetest.Shared(t, servetest.FixtureConfig{Comparator: cmp})
			s := openServer(t, f, serve.ModeAuto)
			oracle := f.NewOracle(t)
			for _, req := range f.Requests(101, 25, 10, true) {
				got, err := s.TopK([]serve.TopKRequest{req})
				if err != nil {
					t.Fatal(err)
				}
				wantIDs, wantScores := oracle.TopK(req.Rel, req.SrcID, nil, req.K)
				if len(got[0].IDs) != len(wantIDs) {
					t.Fatalf("src %d: got %d ids, want %d", req.SrcID, len(got[0].IDs), len(wantIDs))
				}
				for i := range wantIDs {
					if got[0].IDs[i] != wantIDs[i] {
						t.Fatalf("src %d rank %d: got id %d, want %d", req.SrcID, i, got[0].IDs[i], wantIDs[i])
					}
					if got[0].Scores[i] != wantScores[i] {
						t.Fatalf("src %d rank %d: got score bits %x, want %x", req.SrcID, i, got[0].Scores[i], wantScores[i])
					}
				}
			}
		})
	}
}

// TestBatchedTopKMatchesSingle pins that batching requests (grouped GEMMs,
// blocked kernels) returns the same neighbour lists as issuing each
// request alone. Everything is seeded, so this is fully deterministic.
func TestBatchedTopKMatchesSingle(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s := openServer(t, f, serve.ModeAuto)
	reqs := f.Requests(202, 32, 10, true)
	batched, err := s.TopK(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		single, err := s.TopK([]serve.TopKRequest{req})
		if err != nil {
			t.Fatal(err)
		}
		if len(single[0].IDs) != len(batched[i].IDs) {
			t.Fatalf("request %d: batched %d ids, single %d", i, len(batched[i].IDs), len(single[0].IDs))
		}
		for j := range single[0].IDs {
			if single[0].IDs[j] != batched[i].IDs[j] {
				t.Fatalf("request %d rank %d: batched id %d, single id %d", i, j, batched[i].IDs[j], single[0].IDs[j])
			}
		}
	}
}

// TestScoreMatchesOracleBitwise pins Score == model.Scorer.Score for the
// same checkpoint, bit for bit, batched or not.
func TestScoreMatchesOracleBitwise(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{Comparator: "cos"})
	s := openServer(t, f, serve.ModeAuto)
	oracle := f.NewOracle(t)
	var reqs []serve.ScoreRequest
	for _, r := range f.Requests(303, 40, 1, true) {
		reqs = append(reqs, serve.ScoreRequest{Rel: r.Rel, Src: r.SrcID, Dst: (r.SrcID + 7) % int32(f.Cfg.Nodes)})
	}
	scores, err := s.Score(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		want := oracle.Score(r.Rel, r.Src, r.Dst)
		if scores[i] != want {
			t.Fatalf("pair %d: serve score bits %x, oracle %x", i, scores[i], want)
		}
	}
}

// TestQueryByVector serves a raw query vector (not a stored row) and
// checks it against the oracle given the same vector.
func TestQueryByVector(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s := openServer(t, f, serve.ModeAuto)
	oracle := f.NewOracle(t)
	vecQ := make([]float32, f.Cfg.Dim)
	for i := range vecQ {
		vecQ[i] = float32(i%5) * 0.25
	}
	got, err := s.TopK([]serve.TopKRequest{{Rel: 0, Vector: vecQ, K: 5, Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs, _ := oracle.TopK(0, 0, vecQ, 5)
	for i := range wantIDs {
		if got[0].IDs[i] != wantIDs[i] {
			t.Fatalf("rank %d: got %d, want %d", i, got[0].IDs[i], wantIDs[i])
		}
	}
}

// TestRankMatchesOracle pins serve.Rank == the oracle's eval.MidRank
// construction on a trained fixture.
func TestRankMatchesOracle(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s := openServer(t, f, serve.ModeAuto)
	oracle := f.NewOracle(t)
	for _, r := range f.Requests(404, 20, 1, true) {
		dst := (r.SrcID + 13) % int32(f.Cfg.Nodes)
		got, err := s.Rank(r.Rel, r.SrcID, dst)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Rank(r.Rel, r.SrcID, dst); got != want {
			t.Fatalf("rank(%d,%d,%d): serve %v, oracle %v", r.Rel, r.SrcID, dst, got, want)
		}
	}
}

// TestConstantScorerEvalServeParity is the satellite pinning the shared
// tie conventions end to end: on an all-zero checkpoint every score is the
// same constant, so (a) serve's top-K must order purely by ID, matching the
// oracle; (b) serve.Rank, the oracle, and eval.Ranker must all return the
// mid-rank 1 + (N-1)/2 — none of the three may count a tie as a win.
func TestConstantScorerEvalServeParity(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{Zero: true})
	s := openServer(t, f, serve.ModeAuto)
	oracle := f.NewOracle(t)
	n := f.Cfg.Nodes
	wantRank := 1 + float64(n-1)/2

	// (a) Orderings: both must be 0..K-1, the pure-ID tie-break.
	got, err := s.TopK([]serve.TopKRequest{{Rel: 0, SrcID: 5, K: 8, Exact: true}})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs, _ := oracle.TopK(0, 5, nil, 8)
	for i := 0; i < 8; i++ {
		if got[0].IDs[i] != int32(i) || wantIDs[i] != int32(i) {
			t.Fatalf("rank %d: serve id %d, oracle id %d, want %d", i, got[0].IDs[i], wantIDs[i], i)
		}
	}

	// (b) Mid-ranks agree across serve, oracle, and the eval Ranker.
	gotRank, err := s.Rank(0, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if gotRank != wantRank {
		t.Fatalf("serve rank = %v, want %v", gotRank, wantRank)
	}
	if or := oracle.Rank(0, 5, 9); or != wantRank {
		t.Fatalf("oracle rank = %v, want %v", or, wantRank)
	}

	ss, err := serve.OpenShardSet(f.Dir, f.Graph.Schema, f.Cfg.Dim, serve.ModeAuto, serve.QuantAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	rk := eval.NewRanker(f.Graph.Schema, shardEmb{ss}, constScorers{t: t, f: f}, f.Cfg.Dim, nil)
	m, err := rk.Evaluate(f.Graph.Edges, eval.Config{Mode: eval.CandidatesAll, MaxEdges: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.MR != wantRank {
		t.Fatalf("eval MR = %v, want %v", m.MR, wantRank)
	}
	// MRR averages ten identical 1/rank terms; the sum-then-divide picks up
	// one ulp of rounding, so compare to within float64 noise.
	if diff := m.MRR - 1/wantRank; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("eval MRR = %v, want %v", m.MRR, 1/wantRank)
	}
}

// shardEmb adapts a serving ShardSet into eval's EmbeddingSource — the
// serving read path feeding the offline evaluator directly.
type shardEmb struct{ ss *serve.ShardSet }

func (e shardEmb) Embedding(typeIdx int, id int32, out []float32) ([]float32, error) {
	copy(out, e.ss.Row(typeIdx, id))
	return out, nil
}

// constScorers rebuilds the checkpoint's scorers the way the server does.
type constScorers struct {
	t *testing.T
	f *servetest.Fixture
}

func (c constScorers) Scorer(rel int) *model.Scorer {
	sc, err := model.NewScorer(c.f.Cfg.Dim, c.f.Graph.Schema.Relations[rel].Operator, c.f.Cfg.Comparator, "ranking", 1, false)
	if err != nil {
		c.t.Fatal(err)
	}
	return sc
}

func (c constScorers) RelParams(rel int) []float32 {
	rs, err := storage.ReadRelations(c.f.Dir + "/relations.pbg")
	if err != nil {
		c.t.Fatal(err)
	}
	return rs.Params[rel]
}
