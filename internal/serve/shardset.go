package serve

import (
	"encoding/binary"
	"fmt"
	"os"

	"pbg/internal/graph"
	"pbg/internal/storage"
	"pbg/internal/vec"
)

// Shard file layout (written by storage.WriteShard): a 24-byte header of six
// little-endian uint32s — magic "PBGS", version, entity-type index,
// partition, row count, dim — then count×dim float32 embeddings, then count
// float32 Adagrad accumulators. The serving layer maps only the embedding
// block; the accumulator tail is training state and never touched here.
const (
	shardMagic   = 0x50424753 // "PBGS", must match storage.go
	shardVersion = 1
	headerBytes  = 24
)

// shardLayout is the validated geometry of one shard file.
type shardLayout struct {
	TypeIndex int
	Part      int
	Count     int
	Dim       int
	// EmbBytes is the byte length of the embedding block, which starts at
	// offset headerBytes.
	EmbBytes int64
}

// parseShardLayout validates a shard header against the file size and
// returns the layout. It is the single bounds gate for the mmap path —
// every offset the reader later dereferences is proven in-range here —
// and is the target of FuzzShardHeader: malformed input must error, never
// panic or imply an out-of-range access.
func parseShardLayout(hdr []byte, fileSize int64) (shardLayout, error) {
	var l shardLayout
	if len(hdr) < headerBytes {
		return l, fmt.Errorf("serve: shard header truncated: %d bytes, want %d", len(hdr), headerBytes)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != shardMagic {
		return l, fmt.Errorf("serve: bad shard magic 0x%08x", magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != shardVersion {
		return l, fmt.Errorf("serve: unsupported shard version %d", v)
	}
	typeIndex := binary.LittleEndian.Uint32(hdr[8:])
	part := binary.LittleEndian.Uint32(hdr[12:])
	count := binary.LittleEndian.Uint32(hdr[16:])
	dim := binary.LittleEndian.Uint32(hdr[20:])
	const maxI32 = 1<<31 - 1
	if typeIndex > maxI32 || part > maxI32 || count > maxI32 || dim > maxI32 {
		return l, fmt.Errorf("serve: shard header field out of range (type %d part %d count %d dim %d)", typeIndex, part, count, dim)
	}
	if count > 0 && dim == 0 {
		return l, fmt.Errorf("serve: shard has %d rows but dim 0", count)
	}
	// All arithmetic in int64: count, dim < 2^31 so count*(dim+1)*4 < 2^65
	// could still overflow — bound the product first.
	c, d := int64(count), int64(dim)
	if d > 0 && c > (1<<59)/d {
		return l, fmt.Errorf("serve: shard geometry overflows (count %d dim %d)", count, dim)
	}
	embBytes := c * d * 4
	accBytes := c * 4
	want := int64(headerBytes) + embBytes + accBytes
	if fileSize != want {
		return l, fmt.Errorf("serve: shard file size %d does not match header (want %d for count %d dim %d)", fileSize, want, count, dim)
	}
	l = shardLayout{
		TypeIndex: int(typeIndex),
		Part:      int(part),
		Count:     int(count),
		Dim:       int(dim),
		EmbBytes:  embBytes,
	}
	return l, nil
}

// shardRows is one open shard: a count×dim read-only matrix of embedding
// rows, either a zero-copy view into an mmap region or codec-decoded
// private memory.
type shardRows struct {
	rows    vec.Matrix
	mapped  *mapping // nil on the codec path
	mmapped bool
}

func (s *shardRows) close() error {
	if s.mapped != nil {
		m := s.mapped
		s.mapped = nil
		s.rows = vec.Matrix{}
		return m.close()
	}
	s.rows = vec.Matrix{}
	return nil
}

// openShard opens one shard file under mode and validates that its header
// matches the expected (typeIdx, part, dim) from the schema.
func openShard(path string, typeIdx, part, dim int, mode Mode) (*shardRows, error) {
	useMmap := mode == ModeMmap || (mode == ModeAuto && mmapSupported)
	if mode == ModeMmap && !mmapSupported {
		return nil, fmt.Errorf("serve: mmap mode requested but unsupported on this platform")
	}
	var sr *shardRows
	var err error
	if useMmap {
		sr, err = openShardMmap(path)
	} else {
		sr, err = openShardCodec(path)
	}
	if err != nil {
		return nil, err
	}
	if sr.rows.Cols != dim {
		c := sr.rows.Cols
		sr.close()
		return nil, fmt.Errorf("serve: shard %s has dim %d, server configured for %d", path, c, dim)
	}
	return sr, nil
}

// openShardMmap maps the file and returns a zero-copy view of the embedding
// block. The mapping is PROT_READ: any write through a row slice faults,
// which is the point — serving can never corrupt a checkpoint.
func openShardMmap(path string) (*shardRows, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	m, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("serve: mmap %s: %w", path, err)
	}
	b := m.bytes()
	l, err := parseShardLayout(b, st.Size())
	if err != nil {
		m.close()
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	embs, err := floatView(b[headerBytes : int64(headerBytes)+l.EmbBytes])
	if err != nil {
		m.close()
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	return &shardRows{
		rows:    vec.MatrixFrom(embs, l.Count, l.Dim),
		mapped:  m,
		mmapped: true,
	}, nil
}

// openShardCodec reads the shard through the trainer's storage codec. The
// parity test pins that rows from this path are bit-identical to the mmap
// view: both decode the same little-endian float32 block.
func openShardCodec(path string) (*shardRows, error) {
	sh, err := storage.ReadShard(path)
	if err != nil {
		return nil, err
	}
	return &shardRows{
		rows: vec.MatrixFrom(sh.Embs, sh.Count, sh.Dim),
	}, nil
}

// ShardSet is a read-only view over every shard of a checkpoint directory.
// It is immutable after Open: hot reloads build a fresh ShardSet and swap
// it in atomically (see Server), so concurrent readers never observe a
// partially-open set.
type ShardSet struct {
	schema *graph.Schema
	dim    int
	shards []map[int]*shardRows // per entity type: partition → rows
	mapped int
	bytes  int64
	closed bool
}

// OpenShardSet opens every (entity type, partition) shard of the checkpoint
// under dir, validating each header against the schema geometry.
func OpenShardSet(dir string, schema *graph.Schema, dim int, mode Mode) (*ShardSet, error) {
	ss := &ShardSet{schema: schema, dim: dim}
	ss.shards = make([]map[int]*shardRows, len(schema.Entities))
	for t := range schema.Entities {
		ent := &schema.Entities[t]
		ss.shards[t] = make(map[int]*shardRows, ent.NumPartitions)
		for p := 0; p < ent.NumPartitions; p++ {
			path := storage.ShardPath(dir, t, p)
			sr, err := openShard(path, t, p, dim, mode)
			if err != nil {
				ss.Close()
				return nil, err
			}
			wantRows := ent.PartitionCount(p)
			if sr.rows.Rows != wantRows {
				got := sr.rows.Rows
				sr.close()
				ss.Close()
				return nil, fmt.Errorf("serve: shard %s has %d rows, schema expects %d", path, got, wantRows)
			}
			ss.shards[t][p] = sr
			if sr.mmapped {
				ss.mapped++
			}
			ss.bytes += int64(len(sr.rows.Data)) * 4
		}
	}
	return ss, nil
}

// Rows returns the count×dim embedding matrix of one (entity type,
// partition) shard. The matrix is read-only — on the mmap path writing
// through it faults — and callers that feed it to comparator Prepare (which
// mutates in place) must copy rows out first.
func (ss *ShardSet) Rows(typeIdx, part int) vec.Matrix {
	return ss.shards[typeIdx][part].rows
}

// Row returns the embedding of one entity by global ID (zero-copy view).
func (ss *ShardSet) Row(typeIdx int, id int32) []float32 {
	ent := &ss.schema.Entities[typeIdx]
	p := ent.PartitionOf(id)
	local := ent.LocalOffset(id)
	return ss.shards[typeIdx][p].rows.Row(int(local))
}

// Schema returns the schema the set was opened against.
func (ss *ShardSet) Schema() *graph.Schema { return ss.schema }

// Dim returns the embedding dimension.
func (ss *ShardSet) Dim() int { return ss.dim }

// MappedShards reports how many shards are on the zero-copy mmap path.
func (ss *ShardSet) MappedShards() int { return ss.mapped }

// Bytes reports the total embedding bytes resident or mapped.
func (ss *ShardSet) Bytes() int64 { return ss.bytes }

// Close unmaps/releases every shard. The caller must guarantee no
// outstanding readers; Server does this with view refcounting.
func (ss *ShardSet) Close() error {
	if ss.closed {
		return nil
	}
	ss.closed = true
	var first error
	for _, parts := range ss.shards {
		for _, sr := range parts {
			if err := sr.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
