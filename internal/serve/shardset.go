package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"pbg/internal/graph"
	"pbg/internal/storage"
	"pbg/internal/vec"
)

// Shard file layouts the serving layer reads directly:
//
// v1 (storage.WriteShard): a 24-byte header of six little-endian uint32s —
// magic "PBGS", version 1, entity-type index, partition, row count, dim —
// then count×dim float32 embeddings, then count float32 Adagrad
// accumulators.
//
// v2 (storage.WriteShardCodec, quantized): a 28-byte header that inserts a
// codec word after the version — magic, version 2, codec, type, partition,
// count, dim — then the codec payload (fp16: count×dim uint16; int8: count
// float32 row scales then count×dim int8 cells), then the fp32 accumulator
// block. Payload offsets are aligned for zero-copy views (see storage's v2
// format note).
//
// The serving layer never touches the accumulator tail — it is training
// state.
const (
	shardMagic    = 0x50424753 // "PBGS", must match storage.go
	shardVersion  = 1
	shardVersionQ = 2
	headerBytes   = 24
	headerBytesV2 = 28
)

// shardLayout is the validated geometry of one shard file.
type shardLayout struct {
	TypeIndex int
	Part      int
	Count     int
	Dim       int
	// Codec is the embedding block's encoding (CodecFP32 for v1 files).
	Codec storage.Codec
	// DataOff is the offset of the first payload block: headerBytes for v1,
	// headerBytesV2 for v2.
	DataOff int64
	// ScaleBytes is the byte length of the int8 per-row scale block at
	// DataOff (0 for other codecs).
	ScaleBytes int64
	// EmbBytes is the byte length of the embedding block, which starts at
	// DataOff+ScaleBytes, in codec element width.
	EmbBytes int64
}

// parseShardLayout validates a shard header against the file size and
// returns the layout. It is the single bounds gate for the zero-copy read
// paths — every offset the reader later dereferences is proven in-range
// here — and is the target of FuzzShardHeader and FuzzQuantShardHeader:
// malformed input must error, never panic or imply an out-of-range access.
func parseShardLayout(hdr []byte, fileSize int64) (shardLayout, error) {
	var l shardLayout
	if len(hdr) < headerBytes {
		return l, fmt.Errorf("serve: shard header truncated: %d bytes, want %d", len(hdr), headerBytes)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != shardMagic {
		return l, fmt.Errorf("serve: bad shard magic 0x%08x", magic)
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	geom := hdr[8:]
	switch version {
	case shardVersion:
		l.Codec = storage.CodecFP32
		l.DataOff = headerBytes
	case shardVersionQ:
		if len(hdr) < headerBytesV2 {
			return l, fmt.Errorf("serve: v2 shard header truncated: %d bytes, want %d", len(hdr), headerBytesV2)
		}
		codec := binary.LittleEndian.Uint32(hdr[8:])
		if c := storage.Codec(codec); codec > 255 || (c != storage.CodecFP16 && c != storage.CodecInt8) {
			return l, fmt.Errorf("serve: bad v2 shard codec %d", codec)
		}
		l.Codec = storage.Codec(codec)
		l.DataOff = headerBytesV2
		geom = hdr[12:]
	default:
		return l, fmt.Errorf("serve: unsupported shard version %d", version)
	}
	typeIndex := binary.LittleEndian.Uint32(geom[0:])
	part := binary.LittleEndian.Uint32(geom[4:])
	count := binary.LittleEndian.Uint32(geom[8:])
	dim := binary.LittleEndian.Uint32(geom[12:])
	const maxI32 = 1<<31 - 1
	if typeIndex > maxI32 || part > maxI32 || count > maxI32 || dim > maxI32 {
		return l, fmt.Errorf("serve: shard header field out of range (type %d part %d count %d dim %d)", typeIndex, part, count, dim)
	}
	if count > 0 && dim == 0 {
		return l, fmt.Errorf("serve: shard has %d rows but dim 0", count)
	}
	// All arithmetic in int64: count, dim < 2^31 so count*(dim+1)*4 < 2^65
	// could still overflow — bound the product first.
	c, d := int64(count), int64(dim)
	if d > 0 && c > (1<<59)/d {
		return l, fmt.Errorf("serve: shard geometry overflows (count %d dim %d)", count, dim)
	}
	switch l.Codec {
	case storage.CodecFP16:
		l.EmbBytes = c * d * 2
	case storage.CodecInt8:
		l.ScaleBytes = c * 4
		l.EmbBytes = c * d
	default:
		l.EmbBytes = c * d * 4
	}
	accBytes := c * 4
	want := l.DataOff + l.ScaleBytes + l.EmbBytes + accBytes
	if fileSize != want {
		return l, fmt.Errorf("serve: shard file size %d does not match header (want %d for count %d dim %d codec %v)", fileSize, want, count, dim, l.Codec)
	}
	l.TypeIndex = int(typeIndex)
	l.Part = int(part)
	l.Count = int(count)
	l.Dim = int(dim)
	return l, nil
}

// shardRows is one open shard: an optional count×dim read-only fp32 matrix
// (zero-copy mmap view or codec-decoded private memory) and/or a quantized
// view of the same rows. A v1 shard has fp32 only; a native v2 shard has
// quant only; a v1 shard with a .q.pbg sibling has both — the engine scans
// the quantized copy and re-ranks from fp32.
type shardRows struct {
	rows    vec.Matrix // fp32 rows; valid iff fp32 is true
	fp32    bool
	quant   *quantRows
	mapped  *mapping // primary file mapping (nil on private-memory paths)
	qmapped *mapping // sibling quant file mapping, when distinct
	mmapped bool     // primary file is on the zero-copy path
	count   int
	dim     int
}

func (s *shardRows) close() error {
	var first error
	for _, m := range []*mapping{s.mapped, s.qmapped} {
		if m != nil {
			if err := m.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	s.mapped, s.qmapped = nil, nil
	s.rows = vec.Matrix{}
	s.quant = nil
	return first
}

// copyRow copies local row r into dst at the best available precision:
// fp32 when present, dequantized otherwise.
func (s *shardRows) copyRow(dst []float32, r int) {
	if s.fp32 {
		copy(dst, s.rows.Row(r))
		return
	}
	s.quant.copyRow(dst, r)
}

// fillBlock copies rows [lo, lo+m) into the first m rows of dst. With
// preferQuant the quantized view is used when attached (the scan path);
// otherwise fp32 wins and quant is the fallback for quant-only shards.
//
//pbg:hotpath
func (s *shardRows) fillBlock(dst vec.Matrix, lo, m int, preferQuant bool) {
	if s.quant != nil && (preferQuant || !s.fp32) {
		s.quant.fill(dst, lo, m)
		return
	}
	for j := 0; j < m; j++ {
		copy(dst.Row(j), s.rows.Row(lo+j))
	}
}

// openShard opens the shard file for (typeIdx, part) plus, when quant
// serving is on and the shard is fp32, its quantized sibling copy (if one
// exists), and validates the geometry against the schema's expectations.
func openShard(path, qpath string, typeIdx, part, dim int, mode Mode, quant QuantMode) (*shardRows, error) {
	sr, err := openShardFile(path, mode, quant)
	if err != nil {
		return nil, err
	}
	if sr.dim != dim {
		d := sr.dim
		sr.close()
		return nil, fmt.Errorf("serve: shard %s has dim %d, server configured for %d", path, d, dim)
	}
	if quant != QuantOff && sr.fp32 && qpath != "" {
		if _, statErr := os.Stat(qpath); statErr == nil {
			qr, err := openShardFile(qpath, mode, quant)
			if err != nil {
				sr.close()
				return nil, err
			}
			if qr.quant == nil || qr.count != sr.count || qr.dim != sr.dim {
				qr.close()
				sr.close()
				return nil, fmt.Errorf("serve: quant sibling %s does not match shard %s (want a %dx%d quantized copy)", qpath, path, sr.count, sr.dim)
			}
			sr.quant = qr.quant
			sr.qmapped = qr.mapped
		}
	}
	return sr, nil
}

// openShardFile opens one physical shard file under mode. v1 files yield
// fp32 rows (zero-copy when mapped). v2 files yield a quantized view —
// unless quant is off, in which case they are decoded to fp32 in private
// memory so full-precision serving still works against a quantized
// checkpoint.
func openShardFile(path string, mode Mode, quant QuantMode) (*shardRows, error) {
	useMmap := mode == ModeMmap || (mode == ModeAuto && mmapSupported)
	if mode == ModeMmap && !mmapSupported {
		return nil, fmt.Errorf("serve: mmap mode requested but unsupported on this platform")
	}
	if useMmap {
		return openShardMmap(path, quant)
	}
	return openShardCodec(path, quant)
}

// openShardMmap maps the file and returns zero-copy views: the fp32
// embedding block of a v1 file, or the quantized payload of a v2 file. The
// mapping is PROT_READ: any write through a row slice faults, which is the
// point — serving can never corrupt a checkpoint.
func openShardMmap(path string, quant QuantMode) (*shardRows, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	m, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("serve: mmap %s: %w", path, err)
	}
	b := m.bytes()
	l, err := parseShardLayout(b, st.Size())
	if err != nil {
		m.close()
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	if l.Codec != storage.CodecFP32 {
		if quant == QuantOff {
			// Full-precision serving requested: decode privately instead.
			m.close()
			return openShardDecode(path)
		}
		q, err := quantViews(b, l)
		if err != nil {
			m.close()
			return nil, fmt.Errorf("serve: %s: %w", path, err)
		}
		return &shardRows{quant: q, mapped: m, mmapped: true, count: l.Count, dim: l.Dim}, nil
	}
	embs, err := floatView(b[l.DataOff : l.DataOff+l.EmbBytes])
	if err != nil {
		m.close()
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	return &shardRows{
		rows:    vec.MatrixFrom(embs, l.Count, l.Dim),
		fp32:    true,
		mapped:  m,
		mmapped: true,
		count:   l.Count,
		dim:     l.Dim,
	}, nil
}

// openShardCodec reads the shard without mmap. v1 files stream through
// storage.ReadShard into fp32 private memory (the parity test pins that
// rows from this path are bit-identical to the mmap view). v2 files are
// read whole and served through quantized views over the private buffer —
// the same scan path as mmap, minus the shared page cache — unless quant is
// off, which decodes them to fp32.
func openShardCodec(path string, quant QuantMode) (*shardRows, error) {
	version, err := peekShardVersion(path)
	if err != nil {
		return nil, err
	}
	if version == shardVersion || quant == QuantOff {
		return openShardDecode(path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	l, err := parseShardLayout(b, int64(len(b)))
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	if l.Codec == storage.CodecFP32 {
		return openShardDecode(path)
	}
	q, err := quantViews(b, l)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	return &shardRows{quant: q, count: l.Count, dim: l.Dim}, nil
}

// openShardDecode loads any shard version through the storage codec into
// private fp32 memory.
func openShardDecode(path string) (*shardRows, error) {
	sh, err := storage.ReadShard(path)
	if err != nil {
		return nil, err
	}
	return &shardRows{
		rows:  vec.MatrixFrom(sh.Embs, sh.Count, sh.Dim),
		fp32:  true,
		count: sh.Count,
		dim:   sh.Dim,
	}, nil
}

// peekShardVersion reads just enough header to dispatch the codec read path
// without pulling a large v1 file into one buffer.
func peekShardVersion(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("serve: shard header %s: %w", path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != shardMagic {
		return 0, fmt.Errorf("serve: %s is not a shard file", path)
	}
	return binary.LittleEndian.Uint32(hdr[4:]), nil
}

// ShardSet is a read-only view over every shard of a checkpoint directory.
// It is immutable after Open: hot reloads build a fresh ShardSet and swap
// it in atomically (see Server), so concurrent readers never observe a
// partially-open set.
type ShardSet struct {
	schema *graph.Schema
	dim    int
	shards []map[int]*shardRows // per entity type: partition → rows
	// exactType[t] / quantType[t]: every partition of type t has fp32 /
	// quantized rows. The engine quant-scans a destination type only when
	// quantType holds for it, and re-ranks only when exactType also holds.
	exactType  []bool
	quantType  []bool
	quantCodec storage.Codec
	mapped     int
	quantN     int
	bytes      int64
	qbytes     int64
	closed     bool
}

// OpenShardSet opens every (entity type, partition) shard of the checkpoint
// under dir, validating each header against the schema geometry. With quant
// serving on (QuantAuto), quantized sibling copies (storage.QuantShardPath)
// are attached for scanning, and native v2 quantized checkpoints serve
// directly from their quantized bytes.
func OpenShardSet(dir string, schema *graph.Schema, dim int, mode Mode, quant QuantMode) (*ShardSet, error) {
	ss := &ShardSet{schema: schema, dim: dim}
	ss.shards = make([]map[int]*shardRows, len(schema.Entities))
	ss.exactType = make([]bool, len(schema.Entities))
	ss.quantType = make([]bool, len(schema.Entities))
	for t := range schema.Entities {
		ent := &schema.Entities[t]
		ss.shards[t] = make(map[int]*shardRows, ent.NumPartitions)
		ss.exactType[t], ss.quantType[t] = true, true
		for p := 0; p < ent.NumPartitions; p++ {
			path := storage.ShardPath(dir, t, p)
			sr, err := openShard(path, storage.QuantShardPath(dir, t, p), t, p, dim, mode, quant)
			if err != nil {
				_ = ss.Close()
				return nil, err
			}
			wantRows := ent.PartitionCount(p)
			if sr.count != wantRows {
				got := sr.count
				sr.close()
				_ = ss.Close()
				return nil, fmt.Errorf("serve: shard %s has %d rows, schema expects %d", path, got, wantRows)
			}
			ss.shards[t][p] = sr
			if sr.mmapped {
				ss.mapped++
			}
			if sr.fp32 {
				ss.bytes += int64(len(sr.rows.Data)) * 4
			} else {
				ss.exactType[t] = false
			}
			if sr.quant != nil {
				if ss.quantN > 0 && sr.quant.codec != ss.quantCodec {
					c := sr.quant.codec
					_ = ss.Close() // sr is already owned by ss.shards
					return nil, fmt.Errorf("serve: mixed quantized codecs in %s (%v and %v)", dir, ss.quantCodec, c)
				}
				ss.quantCodec = sr.quant.codec
				ss.quantN++
				ss.qbytes += sr.quant.bytes()
			} else {
				ss.quantType[t] = false
			}
		}
	}
	return ss, nil
}

// Rows returns the count×dim fp32 embedding matrix of one (entity type,
// partition) shard. Valid only when the shard has fp32 rows (see
// ExactType); quant-only shards are read through CopyRow / the engine's
// block fills. The matrix is read-only — on the mmap path writing through
// it faults — and callers that feed it to comparator Prepare (which mutates
// in place) must copy rows out first.
func (ss *ShardSet) Rows(typeIdx, part int) vec.Matrix {
	return ss.shards[typeIdx][part].rows
}

// Row returns the fp32 embedding of one entity by global ID (zero-copy
// view). Valid only when the shard has fp32 rows; use CopyRow for
// codec-independent access.
func (ss *ShardSet) Row(typeIdx int, id int32) []float32 {
	ent := &ss.schema.Entities[typeIdx]
	p := ent.PartitionOf(id)
	local := ent.LocalOffset(id)
	return ss.shards[typeIdx][p].rows.Row(int(local))
}

// CopyRow copies the embedding of one entity by global ID into dst (length
// Dim), at the best precision the shard holds: fp32 when present,
// dequantized through the vec kernels otherwise.
func (ss *ShardSet) CopyRow(typeIdx int, id int32, dst []float32) {
	ent := &ss.schema.Entities[typeIdx]
	p := ent.PartitionOf(id)
	local := ent.LocalOffset(id)
	ss.shards[typeIdx][p].copyRow(dst, int(local))
}

// copyLocalRow copies one partition-local row at best precision.
func (ss *ShardSet) copyLocalRow(typeIdx, part, local int, dst []float32) {
	ss.shards[typeIdx][part].copyRow(dst, local)
}

// fillBlock copies rows [lo, lo+m) of shard (typeIdx, part) into the first
// m rows of dst; preferQuant selects the quantized view when attached.
//
//pbg:hotpath
func (ss *ShardSet) fillBlock(typeIdx, part, lo, m int, dst vec.Matrix, preferQuant bool) {
	ss.shards[typeIdx][part].fillBlock(dst, lo, m, preferQuant)
}

// MaterializeRows returns the fp32 rows of one shard: the zero-copy view
// when fp32 is present, otherwise a freshly dequantized private copy (used
// by IVF construction, which clusters in fp32 space).
func (ss *ShardSet) MaterializeRows(typeIdx, part int) vec.Matrix {
	sr := ss.shards[typeIdx][part]
	if sr.fp32 {
		return sr.rows
	}
	m := vec.NewMatrix(sr.count, sr.dim)
	sr.quant.fill(m, 0, sr.count)
	return m
}

// ExactType reports whether every partition of entity type t has fp32 rows
// (so quantized scans of that type can re-rank at full precision).
func (ss *ShardSet) ExactType(t int) bool { return ss.exactType[t] }

// QuantizedType reports whether every partition of entity type t has a
// quantized view (so the engine can scan it quantized).
func (ss *ShardSet) QuantizedType(t int) bool { return ss.quantType[t] }

// QuantCodec reports the codec of the quantized views (CodecFP32 when the
// set has none).
func (ss *ShardSet) QuantCodec() storage.Codec {
	if ss.quantN == 0 {
		return storage.CodecFP32
	}
	return ss.quantCodec
}

// QuantShards reports how many shards carry a quantized scan view.
func (ss *ShardSet) QuantShards() int { return ss.quantN }

// QuantBytes reports the quantized payload bytes resident or mapped.
func (ss *ShardSet) QuantBytes() int64 { return ss.qbytes }

// Schema returns the schema the set was opened against.
func (ss *ShardSet) Schema() *graph.Schema { return ss.schema }

// Dim returns the embedding dimension.
func (ss *ShardSet) Dim() int { return ss.dim }

// MappedShards reports how many shards are on the zero-copy mmap path.
func (ss *ShardSet) MappedShards() int { return ss.mapped }

// Bytes reports the total embedding bytes resident or mapped: fp32 views
// plus quantized payloads. A natively quantized checkpoint's footprint is
// QuantBytes alone — the 2–4× reduction the codec buys carries through to
// serving residency.
func (ss *ShardSet) Bytes() int64 { return ss.bytes + ss.qbytes }

// Close unmaps/releases every shard. The caller must guarantee no
// outstanding readers; Server does this with view refcounting.
func (ss *ShardSet) Close() error {
	if ss.closed {
		return nil
	}
	ss.closed = true
	var first error
	for _, parts := range ss.shards {
		for _, sr := range parts {
			if err := sr.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
