//go:build !unix

package serve

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform has the zero-copy mmap path.
// Without it ModeAuto falls back to the storage codec; the parity test pins
// that both paths decode identical rows, so behaviour does not change —
// only residency (private pages instead of shared page cache).
const mmapSupported = false

type mapping struct{}

func mapFile(f *os.File, size int64) (*mapping, error) {
	return nil, errors.New("mmap unsupported on this platform")
}

func (m *mapping) bytes() []byte { return nil }
func (m *mapping) close() error  { return nil }

func floatView(b []byte) ([]float32, error) {
	return nil, errors.New("mmap unsupported on this platform")
}
