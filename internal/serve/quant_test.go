package serve_test

import (
	"math"
	"testing"

	"pbg/internal/serve"
	"pbg/internal/serve/servetest"
	"pbg/internal/storage"
)

// openServer opens a Server over dir with the fixture's model config.
func openQuantServer(t *testing.T, f *servetest.Fixture, dir string, quant serve.QuantMode) *serve.Server {
	t.Helper()
	cfg := f.ServerConfig(serve.ModeAuto)
	cfg.Quant = quant
	s, err := serve.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// TestQuantSiblingScanRecall is the tentpole serving claim: an fp32
// checkpoint with int8/fp16 sibling copies serves top-K through the
// quantized scan + fp32 re-rank, and the answers stay within the pinned
// recall of the independent fp32 oracle.
func TestQuantSiblingScanRecall(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	o := f.NewOracle(t)
	const k = 10
	reqs := f.Requests(7, 40, k, true)

	for _, codec := range []storage.Codec{storage.CodecInt8, storage.CodecFP16} {
		t.Run(codec.String(), func(t *testing.T) {
			dir := f.QuantSiblings(t, codec)
			s := openQuantServer(t, f, dir, serve.QuantAuto)

			st, err := s.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.QuantCodec != codec.String() || st.QuantShards == 0 || st.QuantBytes == 0 {
				t.Fatalf("stats do not report the quantized view: %+v", st)
			}

			res, err := s.TopK(reqs)
			if err != nil {
				t.Fatal(err)
			}
			var recall float64
			for i, r := range res {
				if r.Reranked == 0 {
					t.Fatalf("request %d: quantized scan did not re-rank (scanned %d)", i, r.Scanned)
				}
				if r.Reranked < k || r.Reranked > 3*k+1 {
					t.Fatalf("request %d: reranked %d rows, want within [K, ceil(3K)]", i, r.Reranked)
				}
				wantIDs, _ := o.TopK(reqs[i].Rel, reqs[i].SrcID, nil, k)
				recall += servetest.Recall(r.IDs, wantIDs)
			}
			recall /= float64(len(res))
			if recall < 0.95 {
				t.Fatalf("quant-scan+rerank recall@%d = %.3f vs fp32 oracle, want ≥ 0.95", k, recall)
			}

			// Re-ranked scores are computed from the fp32 rows, so every
			// returned score must be the oracle's score for that pair bit for
			// bit.
			for i, r := range res {
				all := o.AllScores(reqs[i].Rel, reqs[i].SrcID, nil)
				for j, id := range r.IDs {
					if r.Scores[j] != all[id] {
						t.Fatalf("request %d: re-ranked score %x for id %d, oracle %x", i, r.Scores[j], id, all[id])
					}
				}
			}

			// QuantOff on the same directory must ignore the siblings
			// entirely: bit-identical answers to the same engine serving the
			// sibling-free fixture checkpoint.
			off := openQuantServer(t, f, dir, serve.QuantOff)
			stOff, err := off.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if stOff.QuantShards != 0 || stOff.QuantCodec != "" {
				t.Fatalf("QuantOff still reports quantized shards: %+v", stOff)
			}
			base := openQuantServer(t, f, f.Dir, serve.QuantAuto) // no siblings there
			resOff, err := off.TopK(reqs)
			if err != nil {
				t.Fatal(err)
			}
			resBase, err := base.TopK(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range resOff {
				if r.Reranked != 0 {
					t.Fatalf("QuantOff request %d reports %d reranked rows", i, r.Reranked)
				}
				for j := range r.IDs {
					if r.IDs[j] != resBase[i].IDs[j] || r.Scores[j] != resBase[i].Scores[j] {
						t.Fatalf("QuantOff request %d result %d: (%d, %x) vs sibling-free (%d, %x)",
							i, j, r.IDs[j], r.Scores[j], resBase[i].IDs[j], resBase[i].Scores[j])
					}
				}
			}
		})
	}
}

// TestNativeQuantServesBitEqualToDecode pins the no-rerank leg: a natively
// quantized (v2) checkpoint has no fp32 rows, so the quantized scan's
// dequantized scores ARE the decoded checkpoint's scores — serving it with
// quant on and quant off must agree bit for bit, and Score must match the
// independent oracle (which decodes through storage.ReadShard) exactly.
func TestNativeQuantServesBitEqualToDecode(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	const k = 10
	reqs := f.Requests(13, 30, k, true)

	for _, codec := range []storage.Codec{storage.CodecInt8, storage.CodecFP16} {
		t.Run(codec.String(), func(t *testing.T) {
			dir := f.CheckpointAs(t, codec)
			on := openQuantServer(t, f, dir, serve.QuantAuto)
			off := openQuantServer(t, f, dir, serve.QuantOff)

			st, err := on.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.QuantCodec != codec.String() || st.QuantShards == 0 {
				t.Fatalf("native v2 checkpoint not served quantized: %+v", st)
			}
			stOff, err := off.Stats()
			if err != nil {
				t.Fatal(err)
			}
			// Quant-off decodes to fp32: ~4 bytes/dim resident vs the codec's
			// 1–2 — the serving-residency half of the ≥2× reduction claim.
			if codec == storage.CodecInt8 && st.MappedBytes*2 > stOff.MappedBytes {
				t.Fatalf("int8 serving residency %d not ≥2x below decoded %d", st.MappedBytes, stOff.MappedBytes)
			}

			rOn, err := on.TopK(reqs)
			if err != nil {
				t.Fatal(err)
			}
			rOff, err := off.TopK(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range rOn {
				if rOn[i].Reranked != 0 {
					t.Fatalf("request %d: re-rank claimed without fp32 rows", i)
				}
				if len(rOn[i].IDs) != len(rOff[i].IDs) {
					t.Fatalf("request %d: result sizes differ", i)
				}
				for j := range rOn[i].IDs {
					if rOn[i].IDs[j] != rOff[i].IDs[j] || rOn[i].Scores[j] != rOff[i].Scores[j] {
						t.Fatalf("request %d result %d: quant (%d, %x) vs decoded (%d, %x)",
							i, j, rOn[i].IDs[j], rOn[i].Scores[j], rOff[i].IDs[j], rOff[i].Scores[j])
					}
				}
			}

			// Pair scores go through CopyRow (dequantized) — bitwise the
			// oracle's decode of the same checkpoint.
			oracle := fixtureOracleAt(t, f, dir)
			pairs := []serve.ScoreRequest{{Rel: 0, Src: 1, Dst: 2}, {Rel: 0, Src: 5, Dst: 9}}
			got, err := on.Score(pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pairs {
				if want := oracle.Score(p.Rel, p.Src, p.Dst); got[i] != want {
					t.Fatalf("pair %d: served score %x, oracle %x", i, got[i], want)
				}
			}
		})
	}
}

// fixtureOracleAt loads an oracle over an alternate checkpoint directory of
// the same fixture geometry.
func fixtureOracleAt(t *testing.T, f *servetest.Fixture, dir string) *servetest.Oracle {
	t.Helper()
	alt := *f
	alt.Dir = dir
	return alt.NewOracle(t)
}

// TestCodecEvalParityMatrix is the offline half of the parity matrix:
// re-encode the trained checkpoint through every codec and pin how far MRR
// may move against the fp32 baseline. fp32 re-encoding is lossless; fp16
// carries ~3 decimal digits (≤ 1e-3 MRR drift on these fixtures); int8's
// per-row scaling is documented to hold MRR within 0.05.
func TestCodecEvalParityMatrix(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	base := f.EvalMRR(t, f.Dir)
	// Unfiltered all-candidates eval on the tiny social fixture tops out
	// near 0.09 (each source's ~8 true neighbours outrank the held-out edge);
	// the gate only guards against a degenerate constant-score baseline
	// (which would sit at 2/(K+2) ≈ 0.005 here).
	if base < 0.05 {
		t.Fatalf("fixture MRR %.3f too weak to pin codec drift against", base)
	}
	bounds := map[storage.Codec]float64{
		storage.CodecFP32: 0,
		storage.CodecFP16: 1e-3,
		storage.CodecInt8: 0.05,
	}
	for _, codec := range storage.Codecs() {
		t.Run(codec.String(), func(t *testing.T) {
			dir := f.CheckpointAs(t, codec)
			mrr := f.EvalMRR(t, dir)
			if delta := math.Abs(mrr - base); delta > bounds[codec] {
				t.Fatalf("codec %v MRR %.4f drifted %.4f from fp32 %.4f, bound %.4f",
					codec, mrr, delta, base, bounds[codec])
			}
		})
	}
}

// TestBuildQuantHotSwap drives the online path: a server opened over a
// plain fp32 checkpoint starts with no quantized view, BuildQuant writes
// int8 siblings and hot-swaps, and subsequent requests run the quantized
// scan with fp32 re-rank.
func TestBuildQuantHotSwap(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	// BuildQuant writes into the served directory — use a private fp32 copy,
	// not the shared fixture.
	fp32Dir := f.CheckpointAs(t, storage.CodecFP32)

	s := openQuantServer(t, f, fp32Dir, serve.QuantAuto)
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QuantShards != 0 {
		t.Fatalf("fresh fp32 checkpoint reports quantized shards: %+v", st)
	}
	if err := s.BuildQuant(storage.CodecInt8); err != nil {
		t.Fatal(err)
	}
	st, err = s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QuantCodec != "int8" || st.QuantShards == 0 {
		t.Fatalf("BuildQuant did not install a quantized view: %+v", st)
	}
	res, err := s.TopK(f.Requests(3, 5, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Reranked == 0 {
			t.Fatalf("request %d did not take the quantized-scan path after BuildQuant", i)
		}
	}
}
