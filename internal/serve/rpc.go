package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"net/rpc"
)

// The RPC front end mirrors internal/dist's plumbing: a net/rpc server on
// plain TCP with gob encoding, one goroutine per connection. Request
// structs are wire types distinct from the engine types so the decode
// surface stays small and fully validated before any scoring happens —
// FuzzTopKRequest drives DecodeTopKArgs + Validate with arbitrary bytes.

// rpcMaxBatch bounds requests per RPC batch: past protecting the server
// from absurd allocations, it keeps a single call's latency bounded so one
// giant batch can't starve the connection.
const rpcMaxBatch = 4096

// TopKArgs is the wire form of a TopK batch.
type TopKArgs struct {
	Reqs []TopKRequest
}

// Validate bounds-checks a decoded batch against the serving schema before
// any row is touched. Malformed input errors; it must never panic or cause
// an out-of-range read downstream.
func (a *TopKArgs) Validate(s *Server) error {
	if len(a.Reqs) == 0 {
		return fmt.Errorf("serve: empty topk batch")
	}
	if len(a.Reqs) > rpcMaxBatch {
		return fmt.Errorf("serve: topk batch of %d exceeds limit %d", len(a.Reqs), rpcMaxBatch)
	}
	for i := range a.Reqs {
		if a.Reqs[i].K > 1<<20 {
			return fmt.Errorf("serve: request %d: K %d exceeds limit", i, a.Reqs[i].K)
		}
	}
	return s.validateTopK(a.Reqs)
}

// DecodeTopKArgs gob-decodes a TopKArgs from raw bytes, bounding how much
// it will read. This is the exact decode path net/rpc runs for a TopK call
// body, extracted so the fuzzer can drive it directly with corrupt input.
func DecodeTopKArgs(data []byte) (*TopKArgs, error) {
	const maxBytes = 16 << 20
	if len(data) > maxBytes {
		return nil, fmt.Errorf("serve: topk request body of %d bytes exceeds limit", len(data))
	}
	var a TopKArgs
	dec := gob.NewDecoder(io.LimitReader(bytes.NewReader(data), maxBytes))
	if err := dec.Decode(&a); err != nil {
		return nil, err
	}
	return &a, nil
}

// encodeTopKArgs is DecodeTopKArgs' inverse; it seeds the fuzz corpus.
func encodeTopKArgs(a *TopKArgs) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TopKReply carries the batch results, aligned with TopKArgs.Reqs.
type TopKReply struct {
	Results []TopKResult
}

// ScoreArgs is the wire form of a Score batch.
type ScoreArgs struct {
	Reqs []ScoreRequest
}

// ScoreReply carries the scores, aligned with ScoreArgs.Reqs.
type ScoreReply struct {
	Scores []float32
}

// RankArgs asks for the eval-convention mid-rank of one edge.
type RankArgs struct {
	Rel      int
	Src, Dst int32
}

// RankReply carries the mid-rank.
type RankReply struct {
	Rank float64
}

// ReloadArgs triggers a hot reload. Empty Dir re-reads the directory the
// server already serves (pick up retrained shards / a rebuilt index).
type ReloadArgs struct {
	Dir string
}

// ReloadReply is empty; the call erroring is the signal.
type ReloadReply struct{}

// StatsArgs requests a Stats snapshot.
type StatsArgs struct{}

// StatsReply carries the snapshot.
type StatsReply struct {
	Stats Stats
}

// Service is the net/rpc receiver. Methods follow net/rpc's signature
// contract and validate every argument before touching the engine.
type Service struct {
	s *Server
}

// TopK answers a batched top-K call.
func (sv *Service) TopK(args *TopKArgs, reply *TopKReply) error {
	if err := args.Validate(sv.s); err != nil {
		return err
	}
	res, err := sv.s.TopK(args.Reqs)
	if err != nil {
		return err
	}
	reply.Results = res
	return nil
}

// Score answers a batched edge-score call.
func (sv *Service) Score(args *ScoreArgs, reply *ScoreReply) error {
	if len(args.Reqs) == 0 {
		return fmt.Errorf("serve: empty score batch")
	}
	if len(args.Reqs) > rpcMaxBatch {
		return fmt.Errorf("serve: score batch of %d exceeds limit %d", len(args.Reqs), rpcMaxBatch)
	}
	scores, err := sv.s.Score(args.Reqs)
	if err != nil {
		return err
	}
	reply.Scores = scores
	return nil
}

// Rank answers a single mid-rank call.
func (sv *Service) Rank(args *RankArgs, reply *RankReply) error {
	r, err := sv.s.Rank(args.Rel, args.Src, args.Dst)
	if err != nil {
		return err
	}
	reply.Rank = r
	return nil
}

// Reload hot-swaps the checkpoint.
func (sv *Service) Reload(args *ReloadArgs, _ *ReloadReply) error {
	return sv.s.Reload(args.Dir)
}

// Stats reports the serving footprint.
func (sv *Service) Stats(_ *StatsArgs, reply *StatsReply) error {
	st, err := sv.s.Stats()
	if err != nil {
		return err
	}
	reply.Stats = st
	return nil
}

// serviceName is the registered net/rpc receiver name.
const serviceName = "Serve"

// RPCServer is a listening front end over one Server.
type RPCServer struct {
	ln net.Listener
}

// ListenAndServe exposes s over net/rpc on addr ("host:port"; ":0" picks a
// free port). It returns once the listener is bound; connections are
// served on background goroutines until Close.
func ListenAndServe(addr string, s *Server) (*RPCServer, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, &Service{s: s}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: shutdown
			}
			go srv.ServeConn(conn)
		}
	}()
	return &RPCServer{ln: ln}, nil
}

// Addr returns the bound listen address.
func (r *RPCServer) Addr() string { return r.ln.Addr().String() }

// Close stops accepting connections. In-flight calls finish.
func (r *RPCServer) Close() error { return r.ln.Close() }

// Client is a typed net/rpc client for the serving API.
type Client struct {
	c *rpc.Client
}

// Dial connects to a serving front end.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// TopK runs a batched top-K query.
func (c *Client) TopK(reqs []TopKRequest) ([]TopKResult, error) {
	var reply TopKReply
	if err := c.c.Call(serviceName+".TopK", &TopKArgs{Reqs: reqs}, &reply); err != nil {
		return nil, err
	}
	return reply.Results, nil
}

// Score runs a batched edge-score query.
func (c *Client) Score(reqs []ScoreRequest) ([]float32, error) {
	var reply ScoreReply
	if err := c.c.Call(serviceName+".Score", &ScoreArgs{Reqs: reqs}, &reply); err != nil {
		return nil, err
	}
	return reply.Scores, nil
}

// Rank fetches the mid-rank of dst for (src, rel).
func (c *Client) Rank(rel int, src, dst int32) (float64, error) {
	var reply RankReply
	if err := c.c.Call(serviceName+".Rank", &RankArgs{Rel: rel, Src: src, Dst: dst}, &reply); err != nil {
		return 0, err
	}
	return reply.Rank, nil
}

// Reload asks the server to hot-swap its checkpoint.
func (c *Client) Reload(dir string) error {
	return c.c.Call(serviceName+".Reload", &ReloadArgs{Dir: dir}, &ReloadReply{})
}

// Stats fetches the serving footprint.
func (c *Client) Stats() (Stats, error) {
	var reply StatsReply
	if err := c.c.Call(serviceName+".Stats", &StatsArgs{}, &reply); err != nil {
		return Stats{}, err
	}
	return reply.Stats, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }
