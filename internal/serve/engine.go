package serve

import (
	"fmt"
	"math"
	"sort"

	"pbg/internal/eval"
	"pbg/internal/vec"
)

// scoreBlock is the candidate chunk width of the exact scan. Candidates are
// copied block-wise into scratch (comparator Prepare mutates its input; the
// mmap pages are PROT_READ), so the block bounds both the copy buffer and
// the score matrix: n queries × scoreBlock floats.
const scoreBlock = 256

// TopKRequest asks for the K best-scoring destination entities under one
// relation: argmax_d f(src, rel, d) over every destination-type entity.
type TopKRequest struct {
	// Rel is the relation index in the schema.
	Rel int
	// SrcID is the global ID of the query (source-side) entity. Ignored
	// when Vector is set.
	SrcID int32
	// Vector, when non-nil, is a raw dim-length query embedding used
	// instead of a stored row (e.g. an externally computed centroid). It is
	// transformed through the relation operator like a stored row.
	Vector []float32
	// K is the number of neighbours wanted.
	K int
	// Exact forces the brute-force scan even when an IVF index is loaded.
	Exact bool
	// NProbe overrides the server's probe width for this request
	// (0 = server default). Ignored in exact mode.
	NProbe int
}

// TopKResult holds one request's neighbours, best first. Ties are broken by
// eval.CompareScored (higher score, then lower ID), so results are
// deterministic across replicas and read paths.
type TopKResult struct {
	IDs    []int32
	Scores []float32
	// Scanned counts candidate rows actually scored.
	Scanned int
	// Probed counts IVF lists visited (0 on the exact path).
	Probed int
	// Reranked counts candidates re-scored from fp32 after a quantized scan
	// (0 when the scan itself was full precision).
	Reranked int
}

// ScoreRequest asks for the model score of one (src, rel, dst) edge.
type ScoreRequest struct {
	Rel int
	Src int32
	Dst int32
}

// scored is one candidate in a top-K selection.
type scored struct {
	id    int32
	score float32
}

// after reports whether a ranks after b under the shared eval ordering.
//
//pbg:hotpath
func after(a, b scored) bool {
	return eval.CompareScored(b.score, b.id, a.score, a.id)
}

// topkHeap is a bounded selection heap: it keeps the K best candidates seen,
// with the worst kept candidate at the root so a beat-the-worst test is one
// comparison. Ordering is eval.CompareScored throughout.
type topkHeap struct {
	k int
	h []scored
}

func (t *topkHeap) reset(k int) {
	t.k = k
	t.h = t.h[:0]
}

//pbg:hotpath
func (t *topkHeap) push(id int32, score float32) {
	c := scored{id: id, score: score}
	if len(t.h) < t.k {
		t.h = append(t.h, c)
		// Sift up: keep the worst candidate at the root.
		i := len(t.h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !after(t.h[i], t.h[parent]) {
				break
			}
			t.h[i], t.h[parent] = t.h[parent], t.h[i]
			i = parent
		}
		return
	}
	if !after(t.h[0], c) {
		return // c does not beat the current worst
	}
	t.h[0] = c
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(t.h) && after(t.h[l], t.h[worst]) {
			worst = l
		}
		if r < len(t.h) && after(t.h[r], t.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}

// take empties the heap into a best-first result.
func (t *topkHeap) take(res *TopKResult) {
	sort.Slice(t.h, func(i, j int) bool {
		return eval.CompareScored(t.h[i].score, t.h[i].id, t.h[j].score, t.h[j].id)
	})
	res.IDs = make([]int32, len(t.h))
	res.Scores = make([]float32, len(t.h))
	for i, c := range t.h {
		res.IDs[i] = c.id
		res.Scores[i] = c.score
	}
}

// workspace is per-call scratch, pooled by the Server so steady-state
// requests allocate only their result slices.
type workspace struct {
	q       vec.Matrix // gathered raw query embeddings
	tq      vec.Matrix // operator-transformed (then prepared) queries
	scratch vec.Matrix // candidate block copy (Prepare target)
	scores  vec.Matrix // n×block cross-score output
	heaps   []topkHeap
	rr      topkHeap // fp32 re-rank selection after a quantized scan
	probes  []probeCand
	order   []int // request order within a group
}

func ensureMat(m *vec.Matrix, rows, cols int) vec.Matrix {
	if cap(m.Data) < rows*cols {
		*m = vec.NewMatrix(rows, cols)
	} else {
		*m = vec.MatrixFrom(m.Data[:rows*cols], rows, cols)
	}
	return *m
}

// gatherQueries fills ws.q and ws.tq for the group's requests and prepares
// the transformed queries. Returns the prepared n×dim query matrix.
func (v *view) gatherQueries(ws *workspace, rel int, srcOf func(i int) (int32, []float32), n int) vec.Matrix {
	dim := v.ss.dim
	sc := v.scorers[rel]
	fwd := v.relFwd[rel]
	srcType := v.srcType[rel]
	q := ensureMat(&ws.q, n, dim)
	for i := 0; i < n; i++ {
		id, raw := srcOf(i)
		if raw != nil {
			copy(q.Row(i), raw)
		} else {
			v.ss.CopyRow(srcType, id, q.Row(i))
		}
	}
	tq := ensureMat(&ws.tq, n, dim)
	for i := 0; i < n; i++ {
		sc.Op.Apply(tq.Row(i), q.Row(i), fwd)
	}
	sc.Cmp.Prepare(tq)
	return tq
}

// scoreCandidateBlock copies the given rows into scratch, prepares them, and
// cross-scores them against the prepared queries tq. ids maps block row j to
// the candidate's global ID; scores land in the returned n×m matrix.
//
//pbg:hotpath
func (v *view) scoreCandidateBlock(ws *workspace, rel int, tq vec.Matrix, rows vec.Matrix, lo, m int) vec.Matrix {
	dim := v.ss.dim
	sc := v.scorers[rel]
	scratch := ensureMat(&ws.scratch, m, dim)
	for j := 0; j < m; j++ {
		copy(scratch.Row(j), rows.Row(lo+j))
	}
	sc.Cmp.Prepare(scratch)
	out := ensureMat(&ws.scores, tq.Rows, m)
	sc.Cmp.CrossScores(out, tq, scratch)
	return out
}

// scoreShardBlock is scoreCandidateBlock addressed by shard instead of by
// fp32 matrix: rows [lo, lo+m) of shard (t, p) are filled into scratch at
// whatever precision the shard holds (quantized cells dequantize through the
// vec kernels during the fill), prepared, and cross-scored against tq.
//
//pbg:hotpath
func (v *view) scoreShardBlock(ws *workspace, rel int, tq vec.Matrix, t, p, lo, m int, preferQuant bool) vec.Matrix {
	dim := v.ss.dim
	sc := v.scorers[rel]
	scratch := ensureMat(&ws.scratch, m, dim)
	v.ss.fillBlock(t, p, lo, m, scratch, preferQuant)
	sc.Cmp.Prepare(scratch)
	out := ensureMat(&ws.scores, tq.Rows, m)
	sc.Cmp.CrossScores(out, tq, scratch)
	return out
}

// topKExact runs the brute-force scan for a group of requests sharing one
// relation: every destination-type partition, block by block, one GEMM per
// (group, block). Results are written into out[i] for each group request.
func (v *view) topKExact(ws *workspace, rel int, reqs []TopKRequest, out []TopKResult) {
	n := len(reqs)
	tq := v.gatherQueries(ws, rel, func(i int) (int32, []float32) {
		return reqs[i].SrcID, reqs[i].Vector
	}, n)

	if cap(ws.heaps) < n {
		ws.heaps = make([]topkHeap, n)
	}
	heaps := ws.heaps[:n]
	for i := range heaps {
		heaps[i].reset(reqs[i].K)
	}

	dstType := v.dstType[rel]
	if v.ss.QuantizedType(dstType) {
		v.quantScanRerank(ws, rel, tq, reqs, out, heaps)
		return
	}
	ent := &v.ss.schema.Entities[dstType]
	scanned := 0
	for p := 0; p < ent.NumPartitions; p++ {
		nrows := ent.PartitionCount(p)
		base := int32(p * ent.PartSize())
		for lo := 0; lo < nrows; lo += scoreBlock {
			m := nrows - lo
			if m > scoreBlock {
				m = scoreBlock
			}
			scores := v.scoreShardBlock(ws, rel, tq, dstType, p, lo, m, false)
			for i := 0; i < n; i++ {
				row := scores.Row(i)
				for j := 0; j < m; j++ {
					heaps[i].push(base+int32(lo+j), row[j])
				}
			}
			scanned += m
		}
	}
	for i := 0; i < n; i++ {
		heaps[i].take(&out[i])
		out[i].Scanned = scanned
	}
}

// quantScanRerank is the quantized twin of the exact scan: every candidate
// block dequantizes from the shard's compact cells (int8/fp16) into scratch,
// so the fp32 working set of the scan is one scoreBlock — never the full
// embedding table. When fp32 rows also exist (an fp32 checkpoint with
// quantized sibling copies), each request keeps ceil(rerank·K) survivors
// instead of K, re-scores just those rows from fp32, and returns the best K
// by true score. On a natively quantized checkpoint there is no fp32 to
// consult, so the dequantized scores are final — bit-identical to serving
// the decoded checkpoint, since decoding is the same dequantization.
func (v *view) quantScanRerank(ws *workspace, rel int, tq vec.Matrix, reqs []TopKRequest, out []TopKResult, heaps []topkHeap) {
	n := len(reqs)
	dstType := v.dstType[rel]
	ent := &v.ss.schema.Entities[dstType]
	rerank := v.ss.ExactType(dstType)
	if rerank {
		for i := range heaps {
			kq := int(math.Ceil(float64(reqs[i].K) * v.rerank))
			if kq < reqs[i].K {
				kq = reqs[i].K
			}
			heaps[i].reset(kq)
		}
	}

	scanned := 0
	for p := 0; p < ent.NumPartitions; p++ {
		nrows := ent.PartitionCount(p)
		base := int32(p * ent.PartSize())
		for lo := 0; lo < nrows; lo += scoreBlock {
			m := nrows - lo
			if m > scoreBlock {
				m = scoreBlock
			}
			scores := v.scoreShardBlock(ws, rel, tq, dstType, p, lo, m, true)
			for i := 0; i < n; i++ {
				row := scores.Row(i)
				for j := 0; j < m; j++ {
					heaps[i].push(base+int32(lo+j), row[j])
				}
			}
			scanned += m
		}
	}

	if !rerank {
		for i := 0; i < n; i++ {
			heaps[i].take(&out[i])
			out[i].Scanned = scanned
		}
		return
	}

	// fp32 re-rank: re-score each request's survivors at full precision and
	// keep the true top K. Candidates are chunked through the same blocked
	// GEMM as the scan.
	dim := v.ss.dim
	sc := v.scorers[rel]
	for i := 0; i < n; i++ {
		cands := heaps[i].h
		qv := vec.MatrixFrom(tq.Row(i), 1, dim)
		ws.rr.reset(reqs[i].K)
		for lo := 0; lo < len(cands); lo += scoreBlock {
			m := len(cands) - lo
			if m > scoreBlock {
				m = scoreBlock
			}
			scratch := ensureMat(&ws.scratch, m, dim)
			for j := 0; j < m; j++ {
				v.ss.CopyRow(dstType, cands[lo+j].id, scratch.Row(j))
			}
			sc.Cmp.Prepare(scratch)
			scores := ensureMat(&ws.scores, 1, m)
			sc.Cmp.CrossScores(scores, qv, scratch)
			row := scores.Row(0)
			for j := 0; j < m; j++ {
				ws.rr.push(cands[lo+j].id, row[j])
			}
		}
		ws.rr.take(&out[i])
		out[i].Scanned = scanned
		out[i].Reranked = len(cands)
	}
}

// scorePairs batch-scores (src, rel, dst) edges for a group sharing one
// relation. The construction matches model.Scorer.Score bit for bit: the
// source is operator-transformed, both sides prepared, then pair-scored.
func (v *view) scorePairs(ws *workspace, rel int, reqs []ScoreRequest, out []float32) {
	n := len(reqs)
	sc := v.scorers[rel]
	dim := v.ss.dim
	tq := v.gatherQueries(ws, rel, func(i int) (int32, []float32) {
		return reqs[i].Src, nil
	}, n)
	dstType := v.dstType[rel]
	scratch := ensureMat(&ws.scratch, n, dim)
	for i := 0; i < n; i++ {
		v.ss.CopyRow(dstType, reqs[i].Dst, scratch.Row(i))
	}
	sc.Cmp.Prepare(scratch)
	sc.Cmp.PairScores(out, tq, scratch)
}

// rank computes the mid-rank of dst among all destination-type entities for
// (src, rel) — the serving twin of eval.Ranker's rankSide, sharing
// eval.MidRank so online and offline ranks agree on tie handling. The true
// edge itself is excluded from the candidate set, matching eval.
func (v *view) rank(ws *workspace, rel int, src, dst int32) (float64, error) {
	dstType := v.dstType[rel]
	ent := &v.ss.schema.Entities[dstType]
	if int(dst) >= ent.Count || dst < 0 {
		return 0, fmt.Errorf("serve: rank dst %d out of range for type %d (count %d)", dst, dstType, ent.Count)
	}
	tq := v.gatherQueries(ws, rel, func(int) (int32, []float32) {
		return src, nil
	}, 1)

	// True score first, through the same block scorer (n=1 blocks take the
	// vec.Dot tail path, so this is bitwise model.Scorer.Score).
	dp := ent.PartitionOf(dst)
	dlocal := int(ent.LocalOffset(dst))
	trueScores := v.scoreShardBlock(ws, rel, tq, dstType, dp, dlocal, 1, false)
	trueScore := trueScores.Row(0)[0]

	all := make([]float32, 0, ent.Count-1)
	for p := 0; p < ent.NumPartitions; p++ {
		nrows := ent.PartitionCount(p)
		base := int32(p * ent.PartSize())
		for lo := 0; lo < nrows; lo += scoreBlock {
			m := nrows - lo
			if m > scoreBlock {
				m = scoreBlock
			}
			scores := v.scoreShardBlock(ws, rel, tq, dstType, p, lo, m, false)
			row := scores.Row(0)
			for j := 0; j < m; j++ {
				if base+int32(lo+j) == dst {
					continue
				}
				all = append(all, row[j])
			}
		}
	}
	return eval.MidRank(trueScore, all), nil
}
