package serve

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pbg/internal/graph"
	"pbg/internal/storage"
)

// mkShardBytes builds a syntactically valid shard file image.
func mkShardBytes(typeIdx, part, count, dim uint32) []byte {
	b := make([]byte, 0, headerBytes+int(count)*(int(dim)+1)*4)
	var w [4]byte
	push := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:], v)
		b = append(b, w[:]...)
	}
	push(shardMagic)
	push(shardVersion)
	push(typeIdx)
	push(part)
	push(count)
	push(dim)
	for i := uint32(0); i < count*(dim+1); i++ {
		push(math.Float32bits(float32(i) * 0.5))
	}
	return b
}

// FuzzShardHeader drives the mmap reader's single bounds gate with
// arbitrary bytes: parseShardLayout must error on anything malformed and
// never panic, and any accepted layout must exactly account for the file
// size (so no later dereference can be out of range). Accepted inputs are
// then round-tripped through the real file open path.
func FuzzShardHeader(f *testing.F) {
	f.Add(mkShardBytes(0, 0, 3, 4))
	f.Add(mkShardBytes(1, 2, 0, 0))
	f.Add(mkShardBytes(0, 0, 3, 4)[:headerBytes-1]) // truncated header
	f.Add(mkShardBytes(0, 0, 3, 4)[:headerBytes+5]) // truncated body
	huge := mkShardBytes(0, 0, 3, 4)
	binary.LittleEndian.PutUint32(huge[16:], 0xffffffff) // absurd count
	f.Add(huge)
	bad := mkShardBytes(0, 0, 3, 4)
	binary.LittleEndian.PutUint32(bad[0:], 0xdeadbeef) // wrong magic
	f.Add(bad)

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := parseShardLayout(data, int64(len(data)))
		if err != nil {
			return // rejection is the expected outcome for junk
		}
		// Accepted: the declared geometry must tile the file exactly.
		if l.DataOff+l.ScaleBytes+l.EmbBytes+int64(l.Count)*4 != int64(len(data)) {
			t.Fatalf("accepted layout %+v does not account for %d file bytes", l, len(data))
		}
		wantEmb := int64(l.Count) * int64(l.Dim) * 4
		switch l.Codec {
		case storage.CodecFP16:
			wantEmb = int64(l.Count) * int64(l.Dim) * 2
		case storage.CodecInt8:
			wantEmb = int64(l.Count) * int64(l.Dim)
		}
		if l.EmbBytes != wantEmb {
			t.Fatalf("accepted layout %+v has inconsistent EmbBytes", l)
		}
		// Round-trip through the real open path (mmap where available,
		// codec elsewhere): it must come up with the same geometry or
		// error cleanly — never panic.
		path := filepath.Join(dir, "fuzz.pbg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sr, err := openShard(path, "", l.TypeIndex, l.Part, l.Dim, ModeAuto, QuantAuto)
		if err != nil {
			return
		}
		defer sr.close()
		if sr.count != l.Count || sr.dim != l.Dim {
			t.Fatalf("open path decoded %dx%d, header says %dx%d", sr.count, sr.dim, l.Count, l.Dim)
		}
	})
}

// fuzzServer builds one tiny zero-embedding server for request fuzzing.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	dir := f.TempDir()
	schema := graph.MustSchema(
		[]graph.EntityType{{Name: "node", Count: 20, NumPartitions: 2}},
		[]graph.RelationType{{Name: "r", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
	const dim = 4
	for p := 0; p < 2; p++ {
		n := schema.Entities[0].PartitionCount(p)
		sh := &storage.Shard{TypeIndex: 0, Part: p, Count: n, Dim: dim,
			Embs: make([]float32, n*dim), Acc: make([]float32, n)}
		if err := storage.WriteShard(storage.ShardPath(dir, 0, p), sh); err != nil {
			f.Fatal(err)
		}
	}
	s, err := Open(dir, Config{Schema: schema, Dim: dim})
	if err != nil {
		f.Fatal(err)
	}
	return s
}

// FuzzTopKRequest drives the RPC decode+validate surface with arbitrary
// bytes: DecodeTopKArgs must error or return a batch that Validate either
// rejects or the engine can serve — panics and over-reads are the bugs
// being hunted (the gob decoder is bounded, Validate bounds-checks every
// field against the schema).
func FuzzTopKRequest(f *testing.F) {
	s := fuzzServer(f)

	seed := func(a TopKArgs) []byte {
		b, err := encodeTopKArgs(&a)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(TopKArgs{Reqs: []TopKRequest{{Rel: 0, SrcID: 3, K: 5}}}))
	f.Add(seed(TopKArgs{Reqs: []TopKRequest{{Rel: 0, SrcID: 3, K: 5, Exact: true}, {Rel: 0, Vector: []float32{1, 2, 3, 4}, K: 1}}}))
	f.Add(seed(TopKArgs{Reqs: []TopKRequest{{Rel: 7, SrcID: -4, K: -2, NProbe: -9}}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x41, 0x99})

	f.Fuzz(func(t *testing.T, data []byte) {
		args, err := DecodeTopKArgs(data)
		if err != nil {
			return
		}
		if err := args.Validate(s); err != nil {
			return
		}
		// A batch that survives validation must actually be servable.
		if _, err := s.TopK(args.Reqs); err != nil {
			t.Fatalf("validated batch failed to serve: %v", err)
		}
	})
}
