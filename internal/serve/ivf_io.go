package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"pbg/internal/graph"
	"pbg/internal/vec"
)

// IVF index file, serialized next to the checkpoint shards:
//
//	u32 magic "PBGI" · u32 version · u32 dim · u32 ntypes
//	per type: u32 typeIndex · u32 nparts
//	  per partition: u32 nlist
//	    nlist×dim float32 centroids
//	    per list: u32 len · len int32 local row IDs
//
// All little-endian, matching the shard codec. ReadIVF validates every
// count against the schema before allocating, so a corrupt or truncated
// file errors instead of panicking or ballooning memory.
const (
	ivfMagic   = 0x50424749 // "PBGI"
	ivfVersion = 1
)

// IndexPath returns the IVF index path inside a checkpoint directory.
func IndexPath(dir string) string { return filepath.Join(dir, "ivf.pbg") }

// WriteIVF persists the index atomically (temp file + rename), like the
// shard writer: a crashed write never leaves a half-index that a reload
// would then trust.
func WriteIVF(path string, idx *IVF) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ivf-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<20)

	ntypes := 0
	for _, it := range idx.Types {
		if it != nil {
			ntypes++
		}
	}
	if err := writeU32s(w, ivfMagic, ivfVersion, uint32(idx.Dim), uint32(ntypes)); err != nil {
		_ = tmp.Close()
		return err
	}
	for t, it := range idx.Types {
		if it == nil {
			continue
		}
		if err := writeU32s(w, uint32(t), uint32(len(it.Parts))); err != nil {
			_ = tmp.Close()
			return err
		}
		for _, p := range it.Parts {
			if err := writeU32s(w, uint32(len(p.Lists))); err != nil {
				_ = tmp.Close()
				return err
			}
			if err := writeFloats(w, p.Centroids.Data); err != nil {
				_ = tmp.Close()
				return err
			}
			for _, l := range p.Lists {
				if err := writeU32s(w, uint32(len(l))); err != nil {
					_ = tmp.Close()
					return err
				}
				for _, id := range l {
					if err := writeU32s(w, uint32(id)); err != nil {
						_ = tmp.Close()
						return err
					}
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadIVF loads and validates an index against the schema geometry it will
// serve: type indices, partition counts, list lengths and row IDs must all
// be in range, and dim must match the configured embedding dimension.
func ReadIVF(path string, schema *graph.Schema, dim int) (*IVF, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	var hdr [4]uint32
	if err := readU32s(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("serve: ivf header: %w", err)
	}
	if hdr[0] != ivfMagic {
		return nil, fmt.Errorf("serve: bad ivf magic 0x%08x", hdr[0])
	}
	if hdr[1] != ivfVersion {
		return nil, fmt.Errorf("serve: unsupported ivf version %d", hdr[1])
	}
	if int(hdr[2]) != dim {
		return nil, fmt.Errorf("serve: ivf dim %d, server configured for %d", hdr[2], dim)
	}
	ntypes := int(hdr[3])
	if ntypes > len(schema.Entities) {
		return nil, fmt.Errorf("serve: ivf has %d types, schema has %d", ntypes, len(schema.Entities))
	}
	idx := &IVF{Dim: dim, Types: make([]*ivfType, len(schema.Entities))}
	for i := 0; i < ntypes; i++ {
		var th [2]uint32
		if err := readU32s(r, th[:]); err != nil {
			return nil, fmt.Errorf("serve: ivf type header: %w", err)
		}
		t, nparts := int(th[0]), int(th[1])
		if t >= len(schema.Entities) {
			return nil, fmt.Errorf("serve: ivf type index %d out of range", t)
		}
		if idx.Types[t] != nil {
			return nil, fmt.Errorf("serve: ivf repeats type %d", t)
		}
		ent := &schema.Entities[t]
		if nparts != ent.NumPartitions {
			return nil, fmt.Errorf("serve: ivf type %d has %d partitions, schema has %d", t, nparts, ent.NumPartitions)
		}
		it := &ivfType{Parts: make([]ivfPart, nparts)}
		for p := 0; p < nparts; p++ {
			partRows := ent.PartitionCount(p)
			var nl [1]uint32
			if err := readU32s(r, nl[:]); err != nil {
				return nil, fmt.Errorf("serve: ivf part header: %w", err)
			}
			nlist := int(nl[0])
			// A list per row is the densest legal clustering; anything
			// beyond that is corruption, and bounding it here bounds the
			// centroid allocation below.
			if nlist > partRows+1 || nlist < 0 {
				return nil, fmt.Errorf("serve: ivf part %d/%d has %d lists for %d rows", t, p, nlist, partRows)
			}
			cent := vec.NewMatrix(nlist, dim)
			if err := readFloats(r, cent.Data); err != nil {
				return nil, fmt.Errorf("serve: ivf centroids: %w", err)
			}
			lists := make([][]int32, nlist)
			for l := range lists {
				var ll [1]uint32
				if err := readU32s(r, ll[:]); err != nil {
					return nil, fmt.Errorf("serve: ivf list header: %w", err)
				}
				n := int(ll[0])
				if n > partRows {
					return nil, fmt.Errorf("serve: ivf list has %d ids for a %d-row partition", n, partRows)
				}
				ids := make([]int32, n)
				for j := range ids {
					var v [1]uint32
					if err := readU32s(r, v[:]); err != nil {
						return nil, fmt.Errorf("serve: ivf list ids: %w", err)
					}
					if v[0] >= uint32(partRows) {
						return nil, fmt.Errorf("serve: ivf row id %d out of range (partition has %d rows)", v[0], partRows)
					}
					ids[j] = int32(v[0])
				}
				lists[l] = ids
			}
			it.Parts[p] = ivfPart{Centroids: cent, Lists: lists}
			it.Lists += nlist
		}
		idx.Types[t] = it
	}
	// Trailing garbage means the file is not what the writer produced.
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("serve: ivf file has trailing bytes")
	}
	return idx, nil
}

func writeU32s(w *bufio.Writer, vs ...uint32) error {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], v)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readU32s(r *bufio.Reader, out []uint32) error {
	var b [4]byte
	for i := range out {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return err
		}
		out[i] = binary.LittleEndian.Uint32(b[:])
	}
	return nil
}

func writeFloats(w *bufio.Writer, fs []float32) error {
	var b [4]byte
	for _, f := range fs {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readFloats(r *bufio.Reader, out []float32) error {
	var b [4]byte
	for i := range out {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return err
		}
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
	}
	return nil
}
