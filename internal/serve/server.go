package serve

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pbg/internal/graph"
	"pbg/internal/model"
	"pbg/internal/obs"
	"pbg/internal/storage"
)

// Config configures a Server. Schema and Dim must match the checkpoint;
// everything else has serving defaults.
type Config struct {
	Schema *graph.Schema
	Dim    int
	// Comparator is the trained model's comparator ("dot", "cos", "l2",
	// "squared_l2"); default "dot".
	Comparator string
	// Reciprocal must match the training config: it doubles the relation
	// parameter block (the reverse half is unused by forward serving but
	// the checkpoint layout depends on it).
	Reciprocal bool
	// Mode selects the shard read path (default ModeAuto: mmap where
	// available).
	Mode Mode
	// Quant selects the quantized-scan path (default QuantAuto: scan
	// int8/fp16 bytes whenever the checkpoint, or a sibling copy written by
	// BuildQuant, provides them; re-rank from fp32 when available).
	Quant QuantMode
	// Rerank is the quantized-scan oversampling factor α: a K-request keeps
	// ceil(α·K) quantized-scan survivors and re-scores those from fp32.
	// 0 means the default 3; values below 1 are clamped to 1 (no margin).
	Rerank float64
	// NProbe is the default IVF probe width (0 = DefaultNProbe of the
	// destination type's list count).
	NProbe int
	// Obs receives serving metrics; nil installs a quiet hub.
	Obs *obs.Hub
}

// DefaultRerank is the quantized-scan oversampling factor used when
// Config.Rerank is 0. 3× is comfortably above the margin int8 error needs:
// the parity matrix pins recall@10 ≥ 0.95 against the fp32 oracle at this
// setting.
const DefaultRerank = 3.0

// view is one immutable serving snapshot: shards, relation parameters,
// scorers, and (optionally) an IVF index. Requests acquire a reference for
// their whole duration; Reload swaps the current view atomically and the
// old view's resources are released when its last in-flight request
// finishes — a reader can never observe shards from one snapshot paired
// with an index from another, and munmap can never race a reader.
type view struct {
	// refs counts 1 for being current plus 1 per in-flight request; the
	// view closes when it hits 0 after being retired.
	refs    atomic.Int64
	retired atomic.Bool

	ss      *ShardSet
	ivf     *IVF // nil: exact scans only
	scorers []*model.Scorer
	relFwd  [][]float32 // forward operator params per relation
	srcType []int       // source entity-type index per relation
	dstType []int       // destination entity-type index per relation
	nprobe  int         // resolved default probe width
	rerank  float64     // resolved quantized-scan oversampling factor
}

// tryAcquire takes a reference unless the view is already drained.
func (v *view) tryAcquire() bool {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (v *view) release() {
	if v.refs.Add(-1) == 0 {
		_ = v.ss.Close()
	}
}

// retire drops the "current" reference; the last in-flight request (or
// this call, if none) closes the shard set.
func (v *view) retire() {
	if !v.retired.CompareAndSwap(false, true) {
		return
	}
	v.release()
}

// metrics is the serving instrumentation, registered once at Open.
type metrics struct {
	reqTopK     *obs.Counter // pbg_serve_requests_total{api=...}
	reqScore    *obs.Counter
	reqRank     *obs.Counter
	queries     *obs.Counter // individual queries inside batches
	rowsScored  *obs.Counter
	listsProbed *obs.Counter
	reloads     *obs.Counter
	errors      *obs.Counter

	latTopK   *obs.Histogram // whole-call latency, seconds
	latScore  *obs.Histogram
	stagePlan *obs.Histogram // gather + transform + prepare
	stageScan *obs.Histogram // candidate scoring (exact or probe)

	rowsReranked *obs.Counter

	mappedBytes  *obs.Gauge
	mappedShards *obs.Gauge
	indexBytes   *obs.Gauge
	indexLists   *obs.Gauge
	quantBytes   *obs.Gauge
	quantShards  *obs.Gauge
}

func bindMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reqTopK:      reg.Counter(`pbg_serve_requests_total{api="topk"}`),
		reqScore:     reg.Counter(`pbg_serve_requests_total{api="score"}`),
		reqRank:      reg.Counter(`pbg_serve_requests_total{api="rank"}`),
		queries:      reg.Counter(`pbg_serve_queries_total`),
		rowsScored:   reg.Counter(`pbg_serve_rows_scored_total`),
		listsProbed:  reg.Counter(`pbg_serve_lists_probed_total`),
		reloads:      reg.Counter(`pbg_serve_reloads_total`),
		errors:       reg.Counter(`pbg_serve_errors_total`),
		latTopK:      reg.Histogram(`pbg_serve_latency_s{api="topk"}`),
		latScore:     reg.Histogram(`pbg_serve_latency_s{api="score"}`),
		stagePlan:    reg.Histogram(`pbg_serve_stage_s{stage="plan"}`),
		stageScan:    reg.Histogram(`pbg_serve_stage_s{stage="scan"}`),
		rowsReranked: reg.Counter(`pbg_serve_rows_reranked_total`),
		mappedBytes:  reg.Gauge(`pbg_serve_mapped_bytes`),
		mappedShards: reg.Gauge(`pbg_serve_mapped_shards`),
		indexBytes:   reg.Gauge(`pbg_serve_index_bytes`),
		indexLists:   reg.Gauge(`pbg_serve_index_lists`),
		quantBytes:   reg.Gauge(`pbg_serve_quant_bytes`),
		quantShards:  reg.Gauge(`pbg_serve_quant_shards`),
	}
}

// Server answers embedding queries against one checkpoint directory, with
// atomic hot reload. All methods are safe for concurrent use.
type Server struct {
	cfg    Config
	dir    string
	cur    atomic.Pointer[view]
	pool   sync.Pool // *workspace
	met    *metrics
	closed atomic.Bool
	// reloadMu serialises Reload/Close against each other (readers never
	// take it).
	reloadMu sync.Mutex
}

// Open loads the checkpoint under dir and returns a ready server. If an
// IVF index file (IndexPath) is present it is loaded and validated;
// otherwise the server starts in exact-only mode (BuildIndex adds one).
func Open(dir string, cfg Config) (*Server, error) {
	if cfg.Schema == nil || cfg.Dim <= 0 {
		return nil, fmt.Errorf("serve: config needs Schema and positive Dim")
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewQuietHub()
	}
	s := &Server{cfg: cfg, dir: dir, met: bindMetrics(cfg.Obs.Reg)}
	v, err := s.loadView(dir)
	if err != nil {
		return nil, err
	}
	s.install(v)
	return s, nil
}

// loadView opens shards, relation parameters and (if present) the index
// into a fresh view. Nothing is visible to readers until install.
func (s *Server) loadView(dir string) (*view, error) {
	ss, err := OpenShardSet(dir, s.cfg.Schema, s.cfg.Dim, s.cfg.Mode, s.cfg.Quant)
	if err != nil {
		return nil, err
	}
	v := &view{ss: ss, rerank: s.cfg.Rerank}
	if v.rerank == 0 {
		v.rerank = DefaultRerank
	}
	if v.rerank < 1 {
		v.rerank = 1
	}
	schema := s.cfg.Schema
	nrel := len(schema.Relations)
	v.scorers = make([]*model.Scorer, nrel)
	v.relFwd = make([][]float32, nrel)
	v.srcType = make([]int, nrel)
	v.dstType = make([]int, nrel)

	var rs *storage.RelationState
	relPath := dir + "/relations.pbg"
	if _, statErr := os.Stat(relPath); statErr == nil {
		rs, err = storage.ReadRelations(relPath)
		if err != nil {
			_ = ss.Close()
			return nil, err
		}
	}
	for r := 0; r < nrel; r++ {
		rel := &schema.Relations[r]
		sc, err := model.NewScorer(s.cfg.Dim, rel.Operator, s.cfg.Comparator, "ranking", 1, s.cfg.Reciprocal)
		if err != nil {
			_ = ss.Close()
			return nil, err
		}
		v.scorers[r] = sc
		v.srcType[r] = schema.EntityTypeIndex(rel.SourceType)
		v.dstType[r] = schema.EntityTypeIndex(rel.DestType)
		params := make([]float32, sc.RelParamCount())
		sc.InitRelParams(params)
		if rs != nil {
			if r >= len(rs.Params) || len(rs.Params[r]) != len(params) {
				_ = ss.Close()
				return nil, fmt.Errorf("serve: relation %d parameter block mismatch (checkpoint %d floats, scorer wants %d — check -comparator/-reciprocal)", r, len(rs.Params[r]), len(params))
			}
			copy(params, rs.Params[r])
		}
		fwd, _ := sc.SplitRelParams(params)
		v.relFwd[r] = fwd
	}

	if _, statErr := os.Stat(IndexPath(dir)); statErr == nil {
		ivf, err := ReadIVF(IndexPath(dir), schema, s.cfg.Dim)
		if err != nil {
			_ = ss.Close()
			return nil, err
		}
		v.ivf = ivf
	}
	v.nprobe = s.cfg.NProbe
	if v.nprobe <= 0 && v.ivf != nil {
		lists := 0
		for _, it := range v.ivf.Types {
			if it != nil && it.Lists > lists {
				lists = it.Lists
			}
		}
		v.nprobe = DefaultNProbe(lists)
	}
	v.refs.Store(1)
	return v, nil
}

// install makes v the current view and retires the old one.
func (s *Server) install(v *view) {
	old := s.cur.Swap(v)
	s.publishGauges(v)
	if old != nil {
		old.retire()
	}
}

func (s *Server) publishGauges(v *view) {
	s.met.mappedBytes.Set(v.ss.Bytes())
	s.met.mappedShards.Set(int64(v.ss.MappedShards()))
	s.met.quantBytes.Set(v.ss.QuantBytes())
	s.met.quantShards.Set(int64(v.ss.QuantShards()))
	if v.ivf != nil {
		s.met.indexBytes.Set(v.ivf.Bytes())
		lists := 0
		for _, it := range v.ivf.Types {
			if it != nil {
				lists += it.Lists
			}
		}
		s.met.indexLists.Set(int64(lists))
	} else {
		s.met.indexBytes.Set(0)
		s.met.indexLists.Set(0)
	}
}

// acquire returns the current view with a reference held, or ErrClosed.
func (s *Server) acquire() (*view, error) {
	for {
		if s.closed.Load() {
			return nil, ErrClosed
		}
		v := s.cur.Load()
		if v == nil {
			return nil, ErrClosed
		}
		if v.tryAcquire() {
			return v, nil
		}
		// Lost the race with a reload that retired v; the new view is (or
		// will momentarily be) current.
	}
}

// Reload atomically swaps in a freshly loaded checkpoint (same directory by
// default; pass a different dir to repoint). In-flight requests finish on
// the old view; new requests see the new one. There is no torn state: the
// swap is a single pointer store of a fully constructed view.
func (s *Server) Reload(dir string) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if dir == "" {
		dir = s.dir
	}
	v, err := s.loadView(dir)
	if err != nil {
		s.met.errors.Inc()
		return err
	}
	s.dir = dir
	s.install(v)
	s.met.reloads.Inc()
	return nil
}

// BuildIndex builds an IVF index from the current shards, persists it next
// to the checkpoint, and hot-swaps a view that uses it.
func (s *Server) BuildIndex(cfg IVFConfig) error {
	v, err := s.acquire()
	if err != nil {
		return err
	}
	idx := BuildIVF(v.ss, cfg)
	v.release()
	if err := WriteIVF(IndexPath(s.dir), idx); err != nil {
		return err
	}
	return s.Reload(s.dir)
}

// BuildQuant writes quantized sibling copies (storage.QuantShardPath) of
// every fp32 shard in the served checkpoint under codec c, then hot-swaps a
// view that scans them: subsequent TopK calls run the quantized-scan +
// fp32-re-rank path. Serving continues on the old view throughout.
func (s *Server) BuildQuant(c storage.Codec) error {
	dir := s.Dir()
	if err := storage.WriteQuantCopy(dir, s.cfg.Schema, c); err != nil {
		return err
	}
	return s.Reload(dir)
}

// HasIndex reports whether the current view serves through an IVF index.
func (s *Server) HasIndex() bool {
	v, err := s.acquire()
	if err != nil {
		return false
	}
	defer v.release()
	return v.ivf != nil
}

// Dir returns the currently served checkpoint directory.
func (s *Server) Dir() string {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.dir
}

func (s *Server) getWorkspace() *workspace {
	if ws, ok := s.pool.Get().(*workspace); ok {
		return ws
	}
	return &workspace{}
}

// validateTopK checks a batch against the schema before any scoring.
func (s *Server) validateTopK(reqs []TopKRequest) error {
	schema := s.cfg.Schema
	for i := range reqs {
		r := &reqs[i]
		if r.Rel < 0 || r.Rel >= len(schema.Relations) {
			return fmt.Errorf("serve: request %d: relation %d out of range", i, r.Rel)
		}
		if r.K <= 0 {
			return fmt.Errorf("serve: request %d: non-positive K %d", i, r.K)
		}
		if r.Vector != nil {
			if len(r.Vector) != s.cfg.Dim {
				return fmt.Errorf("serve: request %d: vector dim %d, want %d", i, len(r.Vector), s.cfg.Dim)
			}
			continue
		}
		st := schema.EntityTypeIndex(schema.Relations[r.Rel].SourceType)
		if r.SrcID < 0 || int(r.SrcID) >= schema.Entities[st].Count {
			return fmt.Errorf("serve: request %d: src %d out of range for type %q", i, r.SrcID, schema.Relations[r.Rel].SourceType)
		}
		if r.NProbe < 0 {
			return fmt.Errorf("serve: request %d: negative nprobe", i)
		}
	}
	return nil
}

// TopK answers a batch of top-K requests. Requests are grouped per
// (relation, exact/approximate) and each group is scored with one pass of
// block GEMMs; results align with the input order.
func (s *Server) TopK(reqs []TopKRequest) ([]TopKResult, error) {
	start := time.Now()
	if err := s.validateTopK(reqs); err != nil {
		s.met.errors.Inc()
		return nil, err
	}
	v, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer v.release()
	s.met.reqTopK.Inc()
	s.met.queries.Add(int64(len(reqs)))

	out := make([]TopKResult, len(reqs))
	ws := s.getWorkspace()
	defer s.pool.Put(ws)

	// Group request indices by (relation, path). Exact requests and
	// requests on an index-less view take the brute-force scan.
	type groupKey struct {
		rel   int
		exact bool
	}
	groups := make(map[groupKey][]int)
	for i := range reqs {
		exact := reqs[i].Exact || v.ivf == nil || v.ivf.Types[v.dstType[reqs[i].Rel]] == nil
		k := groupKey{rel: reqs[i].Rel, exact: exact}
		groups[k] = append(groups[k], i)
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rel != keys[j].rel {
			return keys[i].rel < keys[j].rel
		}
		return !keys[i].exact && keys[j].exact
	})

	scanStart := time.Now()
	s.met.stagePlan.Observe(scanStart.Sub(start).Seconds())
	for _, k := range keys {
		idxs := groups[k]
		greqs := make([]TopKRequest, len(idxs))
		gout := make([]TopKResult, len(idxs))
		for j, i := range idxs {
			greqs[j] = reqs[i]
		}
		if k.exact {
			v.topKExact(ws, k.rel, greqs, gout)
		} else {
			v.topKIVF(ws, k.rel, greqs, gout)
		}
		for j, i := range idxs {
			out[i] = gout[j]
			s.met.rowsScored.Add(int64(gout[j].Scanned))
			s.met.listsProbed.Add(int64(gout[j].Probed))
			s.met.rowsReranked.Add(int64(gout[j].Reranked))
		}
	}
	now := time.Now()
	s.met.stageScan.Observe(now.Sub(scanStart).Seconds())
	s.met.latTopK.Observe(now.Sub(start).Seconds())
	return out, nil
}

// Score answers a batch of single-edge score requests, grouped per
// relation. Scores are bitwise what model.Scorer.Score returns for the
// same checkpoint.
func (s *Server) Score(reqs []ScoreRequest) ([]float32, error) {
	start := time.Now()
	schema := s.cfg.Schema
	for i := range reqs {
		r := &reqs[i]
		if r.Rel < 0 || r.Rel >= len(schema.Relations) {
			s.met.errors.Inc()
			return nil, fmt.Errorf("serve: request %d: relation %d out of range", i, r.Rel)
		}
		st := schema.EntityTypeIndex(schema.Relations[r.Rel].SourceType)
		dt := schema.EntityTypeIndex(schema.Relations[r.Rel].DestType)
		if r.Src < 0 || int(r.Src) >= schema.Entities[st].Count {
			s.met.errors.Inc()
			return nil, fmt.Errorf("serve: request %d: src %d out of range", i, r.Src)
		}
		if r.Dst < 0 || int(r.Dst) >= schema.Entities[dt].Count {
			s.met.errors.Inc()
			return nil, fmt.Errorf("serve: request %d: dst %d out of range", i, r.Dst)
		}
	}
	v, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer v.release()
	s.met.reqScore.Inc()
	s.met.queries.Add(int64(len(reqs)))

	out := make([]float32, len(reqs))
	ws := s.getWorkspace()
	defer s.pool.Put(ws)

	groups := make(map[int][]int)
	for i := range reqs {
		groups[reqs[i].Rel] = append(groups[reqs[i].Rel], i)
	}
	rels := make([]int, 0, len(groups))
	for r := range groups {
		rels = append(rels, r)
	}
	sort.Ints(rels)
	for _, rel := range rels {
		idxs := groups[rel]
		greqs := make([]ScoreRequest, len(idxs))
		for j, i := range idxs {
			greqs[j] = reqs[i]
		}
		gout := make([]float32, len(idxs))
		v.scorePairs(ws, rel, greqs, gout)
		for j, i := range idxs {
			out[i] = gout[j]
		}
	}
	s.met.latScore.Observe(time.Since(start).Seconds())
	return out, nil
}

// Rank returns the mid-rank of dst among all destination-type entities for
// (src, rel), under the same tie convention as offline evaluation
// (eval.MidRank).
func (s *Server) Rank(rel int, src, dst int32) (float64, error) {
	schema := s.cfg.Schema
	if rel < 0 || rel >= len(schema.Relations) {
		s.met.errors.Inc()
		return 0, fmt.Errorf("serve: relation %d out of range", rel)
	}
	st := schema.EntityTypeIndex(schema.Relations[rel].SourceType)
	if src < 0 || int(src) >= schema.Entities[st].Count {
		s.met.errors.Inc()
		return 0, fmt.Errorf("serve: src %d out of range", src)
	}
	v, err := s.acquire()
	if err != nil {
		return 0, err
	}
	defer v.release()
	s.met.reqRank.Inc()
	ws := s.getWorkspace()
	defer s.pool.Put(ws)
	return v.rank(ws, rel, src, dst)
}

// Stats is a point-in-time summary of the serving state.
type Stats struct {
	Dir          string
	MappedShards int
	MappedBytes  int64
	HasIndex     bool
	IndexBytes   int64
	IndexLists   int
	Requests     int64
	// QuantCodec names the quantized scan codec ("" when scans are fp32).
	QuantCodec string
	// QuantBytes is the quantized payload footprint; QuantShards counts
	// shards with a quantized scan view.
	QuantBytes  int64
	QuantShards int
}

// Stats reports the current view's footprint.
func (s *Server) Stats() (Stats, error) {
	v, err := s.acquire()
	if err != nil {
		return Stats{}, err
	}
	defer v.release()
	st := Stats{
		Dir:          s.Dir(),
		MappedShards: v.ss.MappedShards(),
		MappedBytes:  v.ss.Bytes(),
		HasIndex:     v.ivf != nil,
		Requests:     s.met.reqTopK.Value() + s.met.reqScore.Value() + s.met.reqRank.Value(),
		QuantBytes:   v.ss.QuantBytes(),
		QuantShards:  v.ss.QuantShards(),
	}
	if v.ss.QuantShards() > 0 {
		st.QuantCodec = v.ss.QuantCodec().String()
	}
	if v.ivf != nil {
		st.IndexBytes = v.ivf.Bytes()
		for _, it := range v.ivf.Types {
			if it != nil {
				st.IndexLists += it.Lists
			}
		}
	}
	return st, nil
}

// Close retires the current view and rejects further requests. In-flight
// requests finish; the shard set unmaps when the last one releases.
func (s *Server) Close() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if v := s.cur.Swap(nil); v != nil {
		v.retire()
	}
	return nil
}
