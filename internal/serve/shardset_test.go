package serve_test

import (
	"os"
	"testing"

	"pbg/internal/serve"
	"pbg/internal/serve/servetest"
	"pbg/internal/storage"
)

func TestMain(m *testing.M) {
	code := m.Run()
	servetest.Cleanup()
	os.Exit(code)
}

// TestMmapCodecBitParity is the tentpole parity claim: every row served
// from the mmap view is bit-identical to the same row decoded by the
// storage codec.
func TestMmapCodecBitParity(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	codec, err := serve.OpenShardSet(f.Dir, f.Graph.Schema, f.Cfg.Dim, serve.ModeCodec, serve.QuantAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer codec.Close()
	auto, err := serve.OpenShardSet(f.Dir, f.Graph.Schema, f.Cfg.Dim, serve.ModeAuto, serve.QuantAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()

	for ti := range f.Graph.Schema.Entities {
		ent := &f.Graph.Schema.Entities[ti]
		for id := int32(0); int(id) < ent.Count; id++ {
			a, b := codec.Row(ti, id), auto.Row(ti, id)
			if len(a) != len(b) {
				t.Fatalf("row length mismatch for type %d id %d", ti, id)
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("type %d id %d dim %d: codec %x mmap %x", ti, id, k, a[k], b[k])
				}
			}
		}
		for p := 0; p < ent.NumPartitions; p++ {
			ma, mb := codec.Rows(ti, p), auto.Rows(ti, p)
			if ma.Rows != mb.Rows || ma.Cols != mb.Cols {
				t.Fatalf("shard %d/%d shape mismatch", ti, p)
			}
		}
	}
	if serve.MmapAvailable() && auto.MappedShards() == 0 {
		t.Fatalf("ModeAuto mapped no shards on an mmap-capable platform")
	}
	if codec.MappedShards() != 0 {
		t.Fatalf("ModeCodec reported %d mapped shards", codec.MappedShards())
	}
}

func TestOpenShardSetRejectsCorruptShard(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	for _, mode := range []serve.Mode{serve.ModeCodec, serve.ModeAuto} {
		dir := t.TempDir()
		// Copy the checkpoint, then truncate one shard.
		if err := copyDir(f.Dir, dir); err != nil {
			t.Fatal(err)
		}
		path := storage.ShardPath(dir, 0, 0)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := serve.OpenShardSet(dir, f.Graph.Schema, f.Cfg.Dim, mode, serve.QuantAuto); err == nil {
			t.Fatalf("mode %v: opened a truncated shard without error", mode)
		}
		// Corrupt the magic.
		copy(data, []byte{0, 1, 2, 3})
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := serve.OpenShardSet(dir, f.Graph.Schema, f.Cfg.Dim, mode, serve.QuantAuto); err == nil {
			t.Fatalf("mode %v: opened a bad-magic shard without error", mode)
		}
	}
}

func TestOpenShardSetRejectsDimMismatch(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	if _, err := serve.OpenShardSet(f.Dir, f.Graph.Schema, f.Cfg.Dim+1, serve.ModeAuto, serve.QuantAuto); err == nil {
		t.Fatal("opened checkpoint with wrong dim without error")
	}
}

func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(src + "/" + e.Name())
		if err != nil {
			return err
		}
		if err := os.WriteFile(dst+"/"+e.Name(), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
