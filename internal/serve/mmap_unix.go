//go:build unix

package serve

import (
	"fmt"
	"math"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported reports whether this platform has the zero-copy mmap path.
const mmapSupported = true

// mapping is a read-only memory mapping of a whole shard file.
type mapping struct {
	b []byte
}

// mapFile maps size bytes of f read-only. The mapping is MAP_SHARED so all
// server replicas on one host share the same page-cache pages.
func mapFile(f *os.File, size int64) (*mapping, error) {
	if size < headerBytes {
		return nil, fmt.Errorf("file too small to be a shard (%d bytes)", size)
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mapping{b: b}, nil
}

func (m *mapping) bytes() []byte { return m.b }

func (m *mapping) close() error {
	if m.b == nil {
		return nil
	}
	b := m.b
	m.b = nil
	return syscall.Munmap(b)
}

// floatView reinterprets a byte slice as float32s without copying. The
// caller guarantees len(b) is a multiple of 4; the base must be 4-byte
// aligned, which holds for any page-aligned mapping plus the 24-byte
// header offset. Misalignment is reported rather than risked.
func floatView(b []byte) ([]float32, error) {
	if len(b) == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%4 != 0 {
		return nil, fmt.Errorf("mapped block misaligned for float32 view")
	}
	return unsafe.Slice((*float32)(p), len(b)/4), nil
}
