package serve_test

import (
	"strings"
	"testing"

	"pbg/internal/serve"
	"pbg/internal/serve/servetest"
)

func dialTestServer(t *testing.T, f *servetest.Fixture) (*serve.Server, *serve.Client) {
	t.Helper()
	s := openServer(t, f, serve.ModeAuto)
	front, err := serve.ListenAndServe("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = front.Close() })
	c, err := serve.Dial(front.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return s, c
}

// TestRPCRoundTrip pins that results over the wire equal results from the
// in-process API — gob encode/decode of every wire type included.
func TestRPCRoundTrip(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s, c := dialTestServer(t, f)

	reqs := f.Requests(61, 12, 7, true)
	local, err := s.TopK(reqs)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.TopK(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if len(local[i].IDs) != len(remote[i].IDs) {
			t.Fatalf("req %d: local %d ids, remote %d", i, len(local[i].IDs), len(remote[i].IDs))
		}
		for j := range local[i].IDs {
			if local[i].IDs[j] != remote[i].IDs[j] || local[i].Scores[j] != remote[i].Scores[j] {
				t.Fatalf("req %d rank %d: wire result differs from local", i, j)
			}
		}
	}

	scores, err := c.Score([]serve.ScoreRequest{{Rel: 0, Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Score([]serve.ScoreRequest{{Rel: 0, Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != want[0] {
		t.Fatalf("wire score %x, local %x", scores[0], want[0])
	}

	rank, err := c.Rank(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRank, err := s.Rank(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rank != wantRank {
		t.Fatalf("wire rank %v, local %v", rank, wantRank)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dir != f.Dir {
		t.Fatalf("stats dir %q, want %q", st.Dir, f.Dir)
	}
	if err := c.Reload(""); err != nil {
		t.Fatal(err)
	}
}

// TestRPCValidation pins that malformed requests error over the wire with
// a diagnostic, and never crash the server.
func TestRPCValidation(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	_, c := dialTestServer(t, f)

	cases := []struct {
		name string
		reqs []serve.TopKRequest
		want string
	}{
		{"empty batch", nil, "empty"},
		{"bad relation", []serve.TopKRequest{{Rel: 99, SrcID: 0, K: 3}}, "relation"},
		{"negative K", []serve.TopKRequest{{Rel: 0, SrcID: 0, K: -1}}, "K"},
		{"src out of range", []serve.TopKRequest{{Rel: 0, SrcID: 1 << 30, K: 3}}, "out of range"},
		{"bad vector dim", []serve.TopKRequest{{Rel: 0, Vector: []float32{1}, K: 3}}, "dim"},
		{"negative nprobe", []serve.TopKRequest{{Rel: 0, SrcID: 0, K: 3, NProbe: -2}}, "nprobe"},
	}
	for _, tc := range cases {
		_, err := c.TopK(tc.reqs)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	if _, err := c.Score([]serve.ScoreRequest{{Rel: 0, Src: 0, Dst: 1 << 30}}); err == nil {
		t.Fatal("score with out-of-range dst did not error")
	}
	if _, err := c.Rank(-1, 0, 0); err == nil {
		t.Fatal("rank with negative relation did not error")
	}
	// The connection must still work after every rejected call.
	if _, err := c.TopK([]serve.TopKRequest{{Rel: 0, SrcID: 0, K: 3, Exact: true}}); err != nil {
		t.Fatalf("valid call after rejects: %v", err)
	}
}
