package serve

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pbg/internal/storage"
)

// mkQuantShardBytes builds a syntactically valid v2 (quantized) shard file
// image: 28-byte header, then for int8 count×4 scale bytes, then the
// codec-width embedding cells, then count×4 accumulator bytes.
func mkQuantShardBytes(codec storage.Codec, typeIdx, part, count, dim uint32) []byte {
	cellBytes := uint32(2)
	scaleBytes := uint32(0)
	if codec == storage.CodecInt8 {
		cellBytes = 1
		scaleBytes = count * 4
	}
	b := make([]byte, 0, headerBytesV2+int(scaleBytes+count*dim*cellBytes+count*4))
	var w [4]byte
	push := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:], v)
		b = append(b, w[:]...)
	}
	push(shardMagic)
	push(shardVersionQ)
	push(uint32(codec))
	push(typeIdx)
	push(part)
	push(count)
	push(dim)
	for i := uint32(0); i < scaleBytes/4; i++ {
		push(math.Float32bits(1 + float32(i)*0.25))
	}
	for i := uint32(0); i < count*dim*cellBytes; i++ {
		b = append(b, byte(i*37))
	}
	for i := uint32(0); i < count; i++ {
		push(math.Float32bits(float32(i) * 0.5))
	}
	return b
}

// FuzzQuantShardHeader is FuzzShardHeader's v2 twin: arbitrary bytes
// against the quantized header path. parseShardLayout must reject anything
// malformed with an error — never panic — and any accepted layout must tile
// the file exactly, so the zero-copy quantized views built from it can
// never read out of range. Accepted inputs round-trip through both the
// serve open path (quantized views, then a full dequantizing fill) and the
// storage decoder.
func FuzzQuantShardHeader(f *testing.F) {
	f.Add(mkQuantShardBytes(storage.CodecFP16, 0, 0, 3, 4))
	f.Add(mkQuantShardBytes(storage.CodecInt8, 0, 0, 3, 4))
	f.Add(mkQuantShardBytes(storage.CodecFP16, 1, 2, 0, 0))
	f.Add(mkQuantShardBytes(storage.CodecInt8, 0, 1, 1, 7))
	f.Add(mkQuantShardBytes(storage.CodecFP16, 0, 0, 3, 4)[:headerBytesV2-1]) // truncated header
	f.Add(mkQuantShardBytes(storage.CodecInt8, 0, 0, 3, 4)[:headerBytesV2+5]) // truncated body
	badCodec := mkQuantShardBytes(storage.CodecFP16, 0, 0, 3, 4)
	binary.LittleEndian.PutUint32(badCodec[8:], 3) // no such codec
	f.Add(badCodec)
	fp32v2 := mkQuantShardBytes(storage.CodecFP16, 0, 0, 3, 4)
	binary.LittleEndian.PutUint32(fp32v2[8:], 0) // fp32 must not ride v2
	f.Add(fp32v2)
	huge := mkQuantShardBytes(storage.CodecInt8, 0, 0, 3, 4)
	binary.LittleEndian.PutUint32(huge[20:], 0xffffffff) // absurd count
	f.Add(huge)

	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := parseShardLayout(data, int64(len(data)))
		if err != nil {
			return
		}
		if l.DataOff+l.ScaleBytes+l.EmbBytes+int64(l.Count)*4 != int64(len(data)) {
			t.Fatalf("accepted layout %+v does not account for %d file bytes", l, len(data))
		}
		path := filepath.Join(dir, "fuzz.pbg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Serve open path: quantized views over the accepted layout, then a
		// full dequantizing read of every row — any over-read would fault or
		// trip the race/asan layers here.
		sr, err := openShard(path, "", l.TypeIndex, l.Part, l.Dim, ModeAuto, QuantAuto)
		if err == nil {
			if sr.count != l.Count || sr.dim != l.Dim {
				sr.close()
				t.Fatalf("open path decoded %dx%d, header says %dx%d", sr.count, sr.dim, l.Count, l.Dim)
			}
			if l.Count > 0 && l.Dim > 0 {
				row := make([]float32, l.Dim)
				for r := 0; r < l.Count; r++ {
					sr.copyRow(row, r)
				}
			}
			sr.close()
		}
		// Storage decoder on the same bytes: error or success, never panic.
		if sh, err := storage.ReadShard(path); err == nil {
			if sh.Count != l.Count || sh.Dim != l.Dim {
				t.Fatalf("storage decoded %dx%d, header says %dx%d", sh.Count, sh.Dim, l.Count, l.Dim)
			}
		}
	})
}
