// Package serve is the online embedding serving layer: it answers
// score/top-K-neighbour queries against a trained checkpoint directory
// written by pbg-train / Model.Checkpoint, closing the train→serve gap —
// trained embeddings no longer dead-end in shard files.
//
// The layer is built from four pieces:
//
//   - ShardSet (shardset.go): a read-only view over the checkpoint's shard
//     files. On platforms with mmap the embedding block of each shard is
//     memory-mapped and rows are zero-copy slice views into the page cache;
//     elsewhere (or with ModeCodec) shards load through the same
//     storage.ReadShard codec the trainer uses. A parity test pins that
//     both paths return bit-identical rows.
//   - The batched scoring engine (engine.go): incoming requests are grouped
//     per relation, query embeddings are gathered and transformed through
//     the trained model operator once per group, and candidates are scored
//     in blocks through the model comparators (vec.MulABt underneath) with
//     per-worker scratch buffers reused across requests — the same
//     construction as the training hot path, read-only.
//   - An IVF approximate-nearest-neighbour index (ivf.go): the checkpoint's
//     partitions act as the coarse quantizer and each partition gets
//     k-means sub-centroids; a query probes the NProbe best-scoring lists
//     instead of scanning every row. The index serialises next to the
//     checkpoint (ivf.pbg) and recall against the exact scan is pinned by a
//     property test.
//   - Server (server.go) + the net/rpc front end (rpc.go): an atomically
//     hot-swappable view (shards + index + relation parameters) behind
//     TopK/Score/Rank APIs, served over the same net/rpc plumbing
//     internal/dist uses and instrumented through internal/obs
//     (pbg_serve_requests_total, per-stage latency histograms, index-size
//     gauges).
//
// Determinism contract: ties in top-K results are broken by
// eval.CompareScored (higher score first, then lower entity ID), the same
// convention the evaluation mid-rank logic is built on, so served
// neighbour lists are reproducible and comparable against offline eval.
package serve

import (
	"errors"
	"fmt"
)

// Mode selects how ShardSet reads shard files.
type Mode int

const (
	// ModeAuto memory-maps shards where the platform supports it and falls
	// back to the codec path otherwise. The default.
	ModeAuto Mode = iota
	// ModeMmap requires the mmap path; opening fails on platforms without
	// mmap support.
	ModeMmap
	// ModeCodec forces the storage.ReadShard codec path (shards are read
	// into private memory). Used by the parity tests and as the portable
	// fallback.
	ModeCodec
)

// String names the mode for logs and flags.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeMmap:
		return "mmap"
	case ModeCodec:
		return "codec"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -mode flag value: "auto", "mmap" or "codec".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "mmap":
		return ModeMmap, nil
	case "codec":
		return ModeCodec, nil
	default:
		return ModeAuto, fmt.Errorf("serve: unknown shard read mode %q (want auto, mmap or codec)", s)
	}
}

// ErrClosed is returned by Server APIs after Close.
var ErrClosed = errors.New("serve: server closed")

// MmapAvailable reports whether this platform has the zero-copy mmap read
// path (ModeAuto uses it exactly when true).
func MmapAvailable() bool { return mmapSupported }
