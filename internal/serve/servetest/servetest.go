// Package servetest is the deterministic test harness for the serving
// layer, in the spirit of storetest: seeded tiny trained fixtures shared
// across tests, scripted request streams, and an exact brute-force oracle
// that is deliberately independent of internal/serve — it loads shards
// through storage.ReadShard (not the mmap reader) and scores through
// model.Scorer.ScoreMany (not the batched engine), so agreement between the
// two is evidence, not tautology.
package servetest

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"

	"pbg"
	"pbg/internal/datagen"
	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/model"
	"pbg/internal/rng"
	"pbg/internal/serve"
	"pbg/internal/storage"
	"pbg/internal/vec"
)

// FixtureConfig seeds one trained-checkpoint fixture. Identical configs
// share one on-disk checkpoint per test process.
type FixtureConfig struct {
	Nodes      int
	Partitions int
	Dim        int
	Epochs     int
	Comparator string
	Operator   string
	Seed       uint64
	// Zero skips training and checkpoints all-zero embeddings — every
	// score collapses to one constant, the degenerate case the tie-handling
	// tests need.
	Zero bool
}

func (c FixtureConfig) withDefaults() FixtureConfig {
	if c.Nodes == 0 {
		c.Nodes = 400
	}
	if c.Partitions == 0 {
		c.Partitions = 4
	}
	if c.Dim == 0 {
		c.Dim = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.Comparator == "" {
		c.Comparator = "dot"
	}
	if c.Operator == "" {
		c.Operator = "identity"
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	return c
}

// Fixture is one trained checkpoint on disk plus everything needed to
// query it: the graph, and an Oracle over an independently loaded copy of
// the embeddings.
type Fixture struct {
	Cfg   FixtureConfig
	Dir   string
	Graph *graph.Graph
}

var (
	fixturesMu  sync.Mutex
	fixtures    = map[FixtureConfig]*Fixture{}
	fixtureDirs []string
)

// Shared returns the fixture for cfg, building and training it on first
// use and reusing the same checkpoint for every later test in the process.
// Call Cleanup from TestMain to remove the checkpoint directories.
func Shared(tb testing.TB, cfg FixtureConfig) *Fixture {
	tb.Helper()
	cfg = cfg.withDefaults()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[cfg]; ok {
		return f
	}
	f, err := build(cfg)
	if err != nil {
		tb.Fatalf("servetest: building fixture %+v: %v", cfg, err)
	}
	fixtures[cfg] = f
	fixtureDirs = append(fixtureDirs, f.Dir)
	return f
}

// Cleanup removes every shared fixture's checkpoint directory. Call it
// from the test package's TestMain after m.Run().
func Cleanup() {
	fixturesMu.Lock()
	dirs := fixtureDirs
	fixtureDirs = nil
	fixtures = map[FixtureConfig]*Fixture{}
	fixturesMu.Unlock()
	// Disk I/O happens outside the lock: a slow filesystem must not stall
	// a concurrent Shared call.
	for _, dir := range dirs {
		_ = os.RemoveAll(dir)
	}
}

func build(cfg FixtureConfig) (*Fixture, error) {
	g, err := datagen.Social(datagen.SocialConfig{
		Nodes:         cfg.Nodes,
		AvgOutDegree:  8,
		NumPartitions: cfg.Partitions,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Operator != "" {
		for r := range g.Schema.Relations {
			g.Schema.Relations[r].Operator = cfg.Operator
		}
	}
	dir, err := os.MkdirTemp("", "servetest-")
	if err != nil {
		return nil, err
	}
	if cfg.Zero {
		if err := writeZeroCheckpoint(dir, g, cfg); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		return &Fixture{Cfg: cfg, Dir: dir, Graph: g}, nil
	}
	m, err := pbg.Train(g, pbg.TrainConfig{
		Dim:        cfg.Dim,
		Epochs:     cfg.Epochs,
		Comparator: cfg.Comparator,
		Seed:       cfg.Seed,
		Workers:    2,
		// Fixtures build inside race-enabled test binaries; pure HOGWILD
		// races on embedding rows by design, so use the striped-lock mode.
		HogwildOff: true,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	if err := m.Checkpoint(dir); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return &Fixture{Cfg: cfg, Dir: dir, Graph: g}, nil
}

// writeZeroCheckpoint writes all-zero shards + relation params directly
// through the storage codec, bypassing training entirely.
func writeZeroCheckpoint(dir string, g *graph.Graph, cfg FixtureConfig) error {
	for t := range g.Schema.Entities {
		ent := &g.Schema.Entities[t]
		for p := 0; p < ent.NumPartitions; p++ {
			n := ent.PartitionCount(p)
			sh := &storage.Shard{
				TypeIndex: t, Part: p, Count: n, Dim: cfg.Dim,
				Embs: make([]float32, n*cfg.Dim),
				Acc:  make([]float32, n),
			}
			if err := storage.WriteShard(storage.ShardPath(dir, t, p), sh); err != nil {
				return err
			}
		}
	}
	rs := &storage.RelationState{}
	for r := range g.Schema.Relations {
		sc, err := model.NewScorer(cfg.Dim, g.Schema.Relations[r].Operator, cfg.Comparator, "ranking", 1, false)
		if err != nil {
			return err
		}
		params := make([]float32, sc.RelParamCount())
		sc.InitRelParams(params)
		rs.Params = append(rs.Params, params)
		rs.Acc = append(rs.Acc, make([]float32, len(params)))
	}
	return storage.WriteRelations(dir+"/relations.pbg", rs)
}

// CheckpointAs re-encodes the fixture checkpoint through codec into a
// fresh directory (shards via storage.WriteShardCodec, relation state
// copied verbatim) and returns it. The directory is cleaned up with the
// shared fixtures. CodecFP32 yields a plain v1 copy — the baseline of the
// codec parity matrix.
func (f *Fixture) CheckpointAs(tb testing.TB, codec storage.Codec) string {
	tb.Helper()
	dir, err := os.MkdirTemp("", "servetest-codec-")
	if err != nil {
		tb.Fatal(err)
	}
	registerDir(dir)
	for t := range f.Graph.Schema.Entities {
		ent := &f.Graph.Schema.Entities[t]
		for p := 0; p < ent.NumPartitions; p++ {
			sh, err := storage.ReadShard(storage.ShardPath(f.Dir, t, p))
			if err != nil {
				tb.Fatal(err)
			}
			if err := storage.WriteShardCodec(storage.ShardPath(dir, t, p), sh, codec); err != nil {
				tb.Fatal(err)
			}
		}
	}
	copyRelations(tb, f.Dir, dir)
	return dir
}

// QuantSiblings copies the fixture checkpoint into a fresh directory and
// writes quantized .q.pbg sibling copies under codec next to the fp32
// shards — the quantized-scan + fp32-re-rank layout. The fixture's own
// directory is shared across tests and never mutated.
func (f *Fixture) QuantSiblings(tb testing.TB, codec storage.Codec) string {
	tb.Helper()
	dir, err := os.MkdirTemp("", "servetest-quant-")
	if err != nil {
		tb.Fatal(err)
	}
	registerDir(dir)
	entries, err := os.ReadDir(f.Dir)
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(f.Dir + "/" + e.Name())
		if err != nil {
			tb.Fatal(err)
		}
		if err := os.WriteFile(dir+"/"+e.Name(), data, 0o644); err != nil {
			tb.Fatal(err)
		}
	}
	if err := storage.WriteQuantCopy(dir, f.Graph.Schema, codec); err != nil {
		tb.Fatal(err)
	}
	return dir
}

func registerDir(dir string) {
	fixturesMu.Lock()
	fixtureDirs = append(fixtureDirs, dir)
	fixturesMu.Unlock()
}

func copyRelations(tb testing.TB, src, dst string) {
	tb.Helper()
	data, err := os.ReadFile(src + "/relations.pbg")
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(dst+"/relations.pbg", data, 0o644); err != nil {
		tb.Fatal(err)
	}
}

// EvalMRR loads dir through the storage codec (so quantized checkpoints are
// evaluated on their decoded values) and runs the offline ranker over the
// fixture's own edges against all candidates. The returned MRR is the
// pinning currency of the codec parity matrix: re-encoding the checkpoint
// through a codec may move it only within that codec's documented bound.
func (f *Fixture) EvalMRR(tb testing.TB, dir string) float64 {
	tb.Helper()
	o, err := loadOracle(dir, f.Graph.Schema, f.Cfg.Dim, f.Cfg.Comparator)
	if err != nil {
		tb.Fatalf("servetest: loading oracle for %s: %v", dir, err)
	}
	rk := eval.NewRanker(f.Graph.Schema, o, o, f.Cfg.Dim, nil)
	m, err := rk.Evaluate(f.Graph.Edges, eval.Config{Mode: eval.CandidatesAll, MaxEdges: 300, Seed: 1})
	if err != nil {
		tb.Fatalf("servetest: evaluating %s: %v", dir, err)
	}
	return m.MRR
}

// Embedding implements eval.EmbeddingSource over the oracle's embeddings.
// The ranker reads through out, so the row is copied, not aliased.
func (o *Oracle) Embedding(typeIdx int, id int32, out []float32) ([]float32, error) {
	copy(out, o.embs[typeIdx].Row(int(id)))
	return out, nil
}

// Scorer implements eval.ScorerSource.
func (o *Oracle) Scorer(rel int) *model.Scorer { return o.scorers[rel] }

// RelParams implements eval.ScorerSource.
func (o *Oracle) RelParams(rel int) []float32 { return o.params[rel] }

// ServerConfig returns the serve.Config matching the fixture's training
// run.
func (f *Fixture) ServerConfig(mode serve.Mode) serve.Config {
	return serve.Config{
		Schema:     f.Graph.Schema,
		Dim:        f.Cfg.Dim,
		Comparator: f.Cfg.Comparator,
		Mode:       mode,
	}
}

// Oracle is the exact brute-force reference: embeddings loaded through the
// storage codec into private memory, scored per query via
// model.Scorer.ScoreMany, ranked by eval.CompareScored. It never touches
// internal/serve's read or scoring paths.
type Oracle struct {
	schema  *graph.Schema
	dim     int
	embs    []vec.Matrix // per entity type, Count×Dim
	scorers []*model.Scorer
	params  [][]float32
}

// NewOracle loads the checkpoint independently of any Server.
func (f *Fixture) NewOracle(tb testing.TB) *Oracle {
	tb.Helper()
	o, err := loadOracle(f.Dir, f.Graph.Schema, f.Cfg.Dim, f.Cfg.Comparator)
	if err != nil {
		tb.Fatalf("servetest: loading oracle: %v", err)
	}
	return o
}

func loadOracle(dir string, schema *graph.Schema, dim int, comparator string) (*Oracle, error) {
	o := &Oracle{schema: schema, dim: dim}
	for t := range schema.Entities {
		ent := &schema.Entities[t]
		m := vec.NewMatrix(ent.Count, dim)
		for p := 0; p < ent.NumPartitions; p++ {
			sh, err := storage.ReadShard(storage.ShardPath(dir, t, p))
			if err != nil {
				return nil, err
			}
			base := p * ent.PartSize()
			for i := 0; i < sh.Count; i++ {
				copy(m.Row(base+i), vec.MatrixFrom(sh.Embs, sh.Count, sh.Dim).Row(i))
			}
		}
		o.embs = append(o.embs, m)
	}
	rs, err := storage.ReadRelations(dir + "/relations.pbg")
	if err != nil {
		return nil, err
	}
	for r := range schema.Relations {
		sc, err := model.NewScorer(dim, schema.Relations[r].Operator, comparator, "ranking", 1, false)
		if err != nil {
			return nil, err
		}
		o.scorers = append(o.scorers, sc)
		if len(rs.Params[r]) != sc.RelParamCount() {
			return nil, fmt.Errorf("servetest: oracle relation %d param mismatch", r)
		}
		o.params = append(o.params, rs.Params[r])
	}
	return o, nil
}

// AllScores returns the query's score against every destination-type
// entity, by ID. The query is the stored embedding of srcID (or vector,
// if non-nil), transformed and scored exactly as model.Scorer.ScoreMany.
func (o *Oracle) AllScores(rel int, srcID int32, vector []float32) []float32 {
	srcType := o.schema.EntityTypeIndex(o.schema.Relations[rel].SourceType)
	dstType := o.schema.EntityTypeIndex(o.schema.Relations[rel].DestType)
	src := vector
	if src == nil {
		src = o.embs[srcType].Row(int(srcID))
	}
	cands := o.embs[dstType]
	scratch := vec.NewMatrix(cands.Rows, o.dim)
	copy(scratch.Data, cands.Data)
	scores := make([]float32, cands.Rows)
	o.scorers[rel].ScoreMany(scores, src, o.params[rel], scratch)
	return scores
}

// TopK returns the exact K best candidates under the shared ordering.
func (o *Oracle) TopK(rel int, srcID int32, vector []float32, k int) ([]int32, []float32) {
	scores := o.AllScores(rel, srcID, vector)
	ids := make([]int32, len(scores))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		return eval.CompareScored(scores[ids[a]], ids[a], scores[ids[b]], ids[b])
	})
	if k > len(ids) {
		k = len(ids)
	}
	outIDs := make([]int32, k)
	outScores := make([]float32, k)
	for i := 0; i < k; i++ {
		outIDs[i] = ids[i]
		outScores[i] = scores[ids[i]]
	}
	return outIDs, outScores
}

// Score returns the exact pair score, via model.Scorer.Score.
func (o *Oracle) Score(rel int, src, dst int32) float32 {
	srcType := o.schema.EntityTypeIndex(o.schema.Relations[rel].SourceType)
	dstType := o.schema.EntityTypeIndex(o.schema.Relations[rel].DestType)
	return o.scorers[rel].Score(o.embs[srcType].Row(int(src)), o.embs[dstType].Row(int(dst)), o.params[rel])
}

// Rank returns the eval-convention mid-rank of dst for (src, rel),
// excluding the true edge from the candidates — the same construction
// eval.Ranker uses.
func (o *Oracle) Rank(rel int, src, dst int32) float64 {
	scores := o.AllScores(rel, src, nil)
	trueScore := scores[dst]
	others := make([]float32, 0, len(scores)-1)
	for i, s := range scores {
		if int32(i) != dst {
			others = append(others, s)
		}
	}
	return eval.MidRank(trueScore, others)
}

// Requests generates a scripted, seeded stream of top-K requests against
// the fixture graph.
func (f *Fixture) Requests(seed uint64, n, k int, exact bool) []serve.TopKRequest {
	r := rng.New(seed)
	reqs := make([]serve.TopKRequest, n)
	for i := range reqs {
		rel := r.Intn(len(f.Graph.Schema.Relations))
		srcType := f.Graph.Schema.EntityTypeIndex(f.Graph.Schema.Relations[rel].SourceType)
		reqs[i] = serve.TopKRequest{
			Rel:   rel,
			SrcID: int32(r.Intn(f.Graph.Schema.Entities[srcType].Count)),
			K:     k,
			Exact: exact,
		}
	}
	return reqs
}

// Recall returns |got ∩ want| / |want| — recall@K when want is the exact
// top-K.
func Recall(got, want []int32) float64 {
	if len(want) == 0 {
		return 1
	}
	set := make(map[int32]struct{}, len(want))
	for _, id := range want {
		set[id] = struct{}{}
	}
	hit := 0
	for _, id := range got {
		if _, ok := set[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
