package serve

import (
	"math"

	"pbg/internal/rng"
	"pbg/internal/vec"
)

// IVF is an inverted-file ANN index over a ShardSet. The checkpoint's
// partitions are the natural coarse quantizer — rows of one partition were
// trained together and stay together on disk — and each partition is
// subdivided by k-means into nlist sub-centroid lists. A query scores every
// sub-centroid through the trained relation operator/comparator (so "near"
// means near under the model's own similarity, not raw Euclidean), then
// exhaustively scores only the rows of the best nprobe lists.
//
// The index stores per destination-type: per partition, an nlist×dim
// centroid matrix plus, per centroid, the local row IDs assigned to it.
// It is immutable after Build/ReadIVF and safe for concurrent readers.
type IVF struct {
	Dim int
	// Types is indexed by entity-type index; nil entries are unindexed
	// types (no relation uses them as a destination, or the index predates
	// them).
	Types []*ivfType
}

type ivfType struct {
	Parts []ivfPart
	// Lists is the total sub-centroid list count across partitions, the
	// denominator for DefaultNProbe.
	Lists int
}

type ivfPart struct {
	// Centroids is nlist×dim; list l holds the rows k-means assigned to
	// centroid l, as partition-local row indices.
	Centroids vec.Matrix
	Lists     [][]int32
}

// IVFConfig controls index construction.
type IVFConfig struct {
	// MaxLists caps sub-centroids per partition; nlist is
	// min(MaxLists, ceil(sqrt(rows))). 0 means the default 256.
	MaxLists int
	// Iters is the number of Lloyd iterations (0 = default 8).
	Iters int
	// Seed feeds the k-means initialisation.
	Seed uint64
}

func (c IVFConfig) withDefaults() IVFConfig {
	if c.MaxLists <= 0 {
		c.MaxLists = 256
	}
	if c.Iters <= 0 {
		c.Iters = 8
	}
	return c
}

// DefaultNProbe is the probe width used when a request doesn't set one:
// 40% of the type's lists, at least 4. Euclidean sub-centroids are an
// imperfect router for dot-product similarity (a high-norm row can score
// high from a "far" cell), so the default is deliberately conservative —
// measured ≥ 0.95 recall@10 on the property-test fixtures while still
// pruning ~2.5× of the scan. Latency-sensitive callers tune NProbe per
// request; the recall property test pins this default.
func DefaultNProbe(totalLists int) int {
	np := (totalLists*2 + 4) / 5
	if np < 4 {
		np = 4
	}
	if np > totalLists {
		np = totalLists
	}
	return np
}

// BuildIVF clusters every partition of every entity type in the set.
func BuildIVF(ss *ShardSet, cfg IVFConfig) *IVF {
	cfg = cfg.withDefaults()
	idx := &IVF{Dim: ss.dim, Types: make([]*ivfType, len(ss.schema.Entities))}
	for t := range ss.schema.Entities {
		ent := &ss.schema.Entities[t]
		it := &ivfType{Parts: make([]ivfPart, ent.NumPartitions)}
		for p := 0; p < ent.NumPartitions; p++ {
			// MaterializeRows: on a quantized-only shard, clustering runs over
			// a dequantized fp32 copy (freed after the build).
			rows := ss.MaterializeRows(t, p)
			r := rng.New(cfg.Seed ^ uint64(t)<<32 ^ uint64(p)<<8 ^ 0x9e3779b97f4a7c15)
			it.Parts[p] = buildPart(rows, cfg, r)
			it.Lists += len(it.Parts[p].Lists)
		}
		idx.Types[t] = it
	}
	return idx
}

// buildPart runs Lloyd k-means over one partition's rows. Clustering is in
// raw embedding space with Euclidean distance — cheap, deterministic, and
// good enough as a bucketing device; retrieval quality is measured under
// the model comparator by the recall property test, not assumed here.
func buildPart(rows vec.Matrix, cfg IVFConfig, r *rng.RNG) ivfPart {
	n, dim := rows.Rows, rows.Cols
	nlist := int(math.Ceil(math.Sqrt(float64(n))))
	if nlist > cfg.MaxLists {
		nlist = cfg.MaxLists
	}
	if nlist < 1 {
		nlist = 1
	}
	if nlist > n {
		nlist = n
	}
	cent := vec.NewMatrix(nlist, dim)
	if n == 0 {
		return ivfPart{Centroids: cent, Lists: make([][]int32, nlist)}
	}
	// Init: a random sample of distinct rows.
	perm := make([]int, n)
	r.Perm(perm)
	for c := 0; c < nlist; c++ {
		copy(cent.Row(c), rows.Row(perm[c]))
	}
	assign := make([]int32, n)
	counts := make([]int, nlist)
	for iter := 0; iter < cfg.Iters; iter++ {
		for i := 0; i < n; i++ {
			assign[i] = int32(nearestCentroid(cent, rows.Row(i)))
		}
		for c := range counts {
			counts[c] = 0
		}
		vec.Zero(cent.Data)
		for i := 0; i < n; i++ {
			vec.Axpy(1, rows.Row(i), cent.Row(int(assign[i])))
			counts[assign[i]]++
		}
		for c := 0; c < nlist; c++ {
			if counts[c] == 0 {
				// Empty cluster: reseed on a random row so no list is dead.
				copy(cent.Row(c), rows.Row(r.Intn(n)))
				continue
			}
			vec.Scale(1/float32(counts[c]), cent.Row(c))
		}
	}
	// Final assignment into lists.
	lists := make([][]int32, nlist)
	for i := 0; i < n; i++ {
		c := nearestCentroid(cent, rows.Row(i))
		lists[c] = append(lists[c], int32(i))
	}
	return ivfPart{Centroids: cent, Lists: lists}
}

func nearestCentroid(cent vec.Matrix, x []float32) int {
	best, bestD := 0, float32(math.Inf(1))
	for c := 0; c < cent.Rows; c++ {
		d := vec.SquaredDistance(cent.Row(c), x)
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// probeCand is one (partition, list) cell with its query-side score.
type probeCand struct {
	part, list int
	score      float32
}

// topKIVF answers a group of same-relation requests through the index:
// score all sub-centroids with the prepared queries, keep each query's
// nprobe best lists, and exact-score only those lists' rows.
func (v *view) topKIVF(ws *workspace, rel int, reqs []TopKRequest, out []TopKResult) {
	n := len(reqs)
	tq := v.gatherQueries(ws, rel, func(i int) (int32, []float32) {
		return reqs[i].SrcID, reqs[i].Vector
	}, n)
	dstType := v.dstType[rel]
	ent := &v.ss.schema.Entities[dstType]
	it := v.ivf.Types[dstType]

	// Stage 1: centroid scores for the whole group, one block GEMM per
	// partition's centroid matrix. Collected per query into ws.probes.
	if cap(ws.probes) < n*it.Lists {
		ws.probes = make([]probeCand, n*it.Lists)
	}
	probes := ws.probes[:n*it.Lists]
	col := 0
	for p := range it.Parts {
		cent := it.Parts[p].Centroids
		for lo := 0; lo < cent.Rows; lo += scoreBlock {
			m := cent.Rows - lo
			if m > scoreBlock {
				m = scoreBlock
			}
			scores := v.scoreCandidateBlock(ws, rel, tq, cent, lo, m)
			for i := 0; i < n; i++ {
				row := scores.Row(i)
				base := i * it.Lists
				for j := 0; j < m; j++ {
					probes[base+col+j] = probeCand{part: p, list: lo + j, score: row[j]}
				}
			}
			col += m
		}
	}

	if cap(ws.heaps) < n {
		ws.heaps = make([]topkHeap, n)
	}
	heaps := ws.heaps[:n]

	// Stage 2: per query, select the nprobe best lists and exact-score
	// their rows. Queries in the group can have different probe widths.
	for i := 0; i < n; i++ {
		nprobe := reqs[i].NProbe
		if nprobe <= 0 {
			nprobe = v.nprobe
		}
		if nprobe > it.Lists {
			nprobe = it.Lists
		}
		mine := probes[i*it.Lists : (i+1)*it.Lists]
		selectProbes(mine, nprobe)

		heaps[i].reset(reqs[i].K)
		qv := vec.MatrixFrom(tq.Row(i), 1, tq.Cols)
		scanned := 0
		for _, pc := range mine[:nprobe] {
			part := &it.Parts[pc.part]
			ids := part.Lists[pc.list]
			base := int32(pc.part * ent.PartSize())
			for lo := 0; lo < len(ids); lo += scoreBlock {
				m := len(ids) - lo
				if m > scoreBlock {
					m = scoreBlock
				}
				scratch := ensureMat(&ws.scratch, m, v.ss.dim)
				for j := 0; j < m; j++ {
					v.ss.copyLocalRow(dstType, pc.part, int(ids[lo+j]), scratch.Row(j))
				}
				sc := v.scorers[rel]
				sc.Cmp.Prepare(scratch)
				scores := ensureMat(&ws.scores, 1, m)
				sc.Cmp.CrossScores(scores, qv, scratch)
				row := scores.Row(0)
				for j := 0; j < m; j++ {
					heaps[i].push(base+ids[lo+j], row[j])
				}
				scanned += m
			}
		}
		heaps[i].take(&out[i])
		out[i].Scanned = scanned
		out[i].Probed = nprobe
	}
}

// selectProbes partially sorts cells so the nprobe best-by-score (ties by
// (part, list) ascending, keeping selection deterministic) come first.
func selectProbes(cells []probeCand, nprobe int) {
	before := func(a, b probeCand) bool {
		if a.score != b.score {
			return a.score > b.score
		}
		if a.part != b.part {
			return a.part < b.part
		}
		return a.list < b.list
	}
	// Heap-select: max-heapify by "after" over the first nprobe, then sweep.
	// Sizes are small (lists ≤ a few thousand); simple selection keeps it
	// allocation-free.
	if nprobe >= len(cells) {
		return
	}
	// Partial selection sort via a bounded heap over cells[:nprobe]: root is
	// the worst kept cell.
	h := cells[:nprobe]
	worse := func(i, j int) bool { return before(h[j], h[i]) }
	var down func(i, n int)
	down = func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < n && worse(l, w) {
				w = l
			}
			if r < n && worse(r, w) {
				w = r
			}
			if w == i {
				return
			}
			h[i], h[w] = h[w], h[i]
			i = w
		}
	}
	for i := nprobe/2 - 1; i >= 0; i-- {
		down(i, nprobe)
	}
	for i := nprobe; i < len(cells); i++ {
		if before(cells[i], h[0]) {
			h[0] = cells[i]
			down(0, nprobe)
		}
	}
}

// Bytes reports the serialized footprint of the index (centroid floats +
// list IDs + headers), the value behind the index-size gauge.
func (idx *IVF) Bytes() int64 {
	var b int64 = 16
	for _, it := range idx.Types {
		if it == nil {
			continue
		}
		for _, p := range it.Parts {
			b += 8 + int64(len(p.Centroids.Data))*4
			for _, l := range p.Lists {
				b += 4 + int64(len(l))*4
			}
		}
	}
	return b
}

// TotalLists reports the sub-centroid list count of one entity type
// (0 when unindexed).
func (idx *IVF) TotalLists(typeIdx int) int {
	if typeIdx >= len(idx.Types) || idx.Types[typeIdx] == nil {
		return 0
	}
	return idx.Types[typeIdx].Lists
}
