package serve_test

import (
	"os"
	"testing"

	"pbg/internal/serve"
	"pbg/internal/serve/servetest"
)

// TestIVFRecallProperty is the satellite property test: over randomized
// dims and partition counts, IVF top-10 at the default nprobe must keep
// mean recall@10 ≥ 0.95 against the exact oracle — while scanning a
// strict subset of the rows (otherwise the index is a no-op).
func TestIVFRecallProperty(t *testing.T) {
	cases := []servetest.FixtureConfig{
		{Nodes: 400, Partitions: 2, Dim: 8, Seed: 21},
		{Nodes: 500, Partitions: 4, Dim: 16, Seed: 22},
		{Nodes: 600, Partitions: 3, Dim: 32, Seed: 23},
		{Nodes: 500, Partitions: 4, Dim: 16, Seed: 24, Comparator: "cos"},
	}
	for _, cfg := range cases {
		f := servetest.Shared(t, cfg)
		s := openServer(t, f, serve.ModeAuto)
		if err := s.BuildIndex(serve.IVFConfig{Seed: cfg.Seed}); err != nil {
			t.Fatal(err)
		}
		if !s.HasIndex() {
			t.Fatal("BuildIndex left the server without an index")
		}
		oracle := f.NewOracle(t)
		reqs := f.Requests(cfg.Seed, 50, 10, false)
		res, err := s.TopK(reqs)
		if err != nil {
			t.Fatal(err)
		}
		var recall float64
		for i, req := range reqs {
			wantIDs, _ := oracle.TopK(req.Rel, req.SrcID, nil, req.K)
			recall += servetest.Recall(res[i].IDs, wantIDs)
			if res[i].Scanned >= f.Cfg.Nodes {
				t.Fatalf("case %+v req %d: IVF scanned %d of %d rows — no pruning", cfg, i, res[i].Scanned, f.Cfg.Nodes)
			}
			if res[i].Probed == 0 {
				t.Fatalf("case %+v req %d: IVF result reports zero probed lists", cfg, i)
			}
		}
		recall /= float64(len(reqs))
		if recall < 0.95 {
			t.Fatalf("case %+v: mean recall@10 = %.3f, want >= 0.95", cfg, recall)
		}
		t.Logf("nodes=%d parts=%d dim=%d cmp=%s: recall@10 = %.3f", cfg.Nodes, cfg.Partitions, cfg.Dim, cfg.Comparator, recall)
	}
}

// TestIVFRoundTrip pins that a written index reads back structurally
// identical and that the reloaded index answers queries identically.
func TestIVFRoundTrip(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s := openServer(t, f, serve.ModeAuto)
	if err := s.BuildIndex(serve.IVFConfig{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	reqs := f.Requests(31, 20, 10, false)
	before, err := s.TopK(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// A reload re-reads the serialized index from disk.
	if err := s.Reload(""); err != nil {
		t.Fatal(err)
	}
	after, err := s.TopK(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if len(before[i].IDs) != len(after[i].IDs) {
			t.Fatalf("req %d: %d ids before reload, %d after", i, len(before[i].IDs), len(after[i].IDs))
		}
		for j := range before[i].IDs {
			if before[i].IDs[j] != after[i].IDs[j] || before[i].Scores[j] != after[i].Scores[j] {
				t.Fatalf("req %d rank %d: result changed across index round-trip", i, j)
			}
		}
	}

	idx, err := serve.ReadIVF(serve.IndexPath(f.Dir), f.Graph.Schema, f.Cfg.Dim)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Dim != f.Cfg.Dim {
		t.Fatalf("round-tripped dim %d, want %d", idx.Dim, f.Cfg.Dim)
	}
}

// TestReadIVFRejectsCorruption flips bytes across the serialized index and
// requires every corruption to be rejected or produce a still-valid index
// — never a panic or an out-of-range list.
func TestReadIVFRejectsCorruption(t *testing.T) {
	f := servetest.Shared(t, servetest.FixtureConfig{})
	s := openServer(t, f, serve.ModeAuto)
	if err := s.BuildIndex(serve.IVFConfig{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(serve.IndexPath(f.Dir))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/ivf.pbg"

	// Truncations at every prefix length of the small header region and a
	// few strides through the body.
	for cut := 0; cut < len(data); cut += 1 + len(data)/97 {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := serve.ReadIVF(path, f.Graph.Schema, f.Cfg.Dim); err == nil {
			t.Fatalf("truncation at %d bytes read back without error", cut)
		}
	}
	// Bit flips in the structural header words.
	for off := 0; off < 32 && off < len(data); off += 4 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		// Must not panic; errors are expected, silent success is only
		// acceptable if the flip landed in float payload (not in the first
		// 16 header bytes, which are all structural).
		idx, err := serve.ReadIVF(path, f.Graph.Schema, f.Cfg.Dim)
		if off < 16 && err == nil {
			t.Fatalf("header corruption at byte %d read back without error (idx=%v)", off, idx != nil)
		}
	}
	// Wrong dim must be rejected.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.ReadIVF(path, f.Graph.Schema, f.Cfg.Dim+3); err == nil {
		t.Fatal("index with mismatched dim read back without error")
	}
}
