package serve

import (
	"fmt"
	"unsafe"

	"pbg/internal/storage"
	"pbg/internal/vec"
)

// QuantMode controls the quantized-scan serving path.
type QuantMode int

const (
	// QuantAuto scans quantized bytes whenever they are present — a native
	// v2 quantized checkpoint, or .q.pbg sibling copies written next to an
	// fp32 checkpoint by storage.WriteQuantCopy / Server.BuildQuant — and
	// re-ranks the surviving top-K·α candidates from fp32 when fp32 rows are
	// available. The default.
	QuantAuto QuantMode = iota
	// QuantOff ignores sibling copies and decodes native quantized
	// checkpoints to fp32 in private memory: full-precision scans
	// everywhere, at fp32 residency.
	QuantOff
)

// String names the mode for logs and flags.
func (m QuantMode) String() string {
	switch m {
	case QuantAuto:
		return "auto"
	case QuantOff:
		return "off"
	default:
		return fmt.Sprintf("QuantMode(%d)", int(m))
	}
}

// ParseQuant parses a -quant flag value: "auto" or "off".
func ParseQuant(s string) (QuantMode, error) {
	switch s {
	case "", "auto":
		return QuantAuto, nil
	case "off":
		return QuantOff, nil
	default:
		return QuantAuto, fmt.Errorf("serve: unknown quant mode %q (want auto or off)", s)
	}
}

// quantRows is the quantized view of one shard's embedding block: the raw
// codec bytes (zero-copy views into an mmap region, or a private file read)
// plus the per-row scales the int8 codec needs. Rows dequantize on the fly
// through the vec kernels — the fp32 working set of a quantized scan is one
// scratch block, never the whole shard.
type quantRows struct {
	codec      storage.Codec
	rows, cols int
	f16        []uint16  // fp16: rows×cols half-precision bits
	i8         []int8    // int8: rows×cols quantized cells
	scales     []float32 // int8: one scale per row
}

// fill dequantizes rows [lo, lo+m) into the first m rows of dst.
//
//pbg:hotpath
func (q *quantRows) fill(dst vec.Matrix, lo, m int) {
	for j := 0; j < m; j++ {
		q.copyRow(dst.Row(j), lo+j)
	}
}

// copyRow dequantizes row r into dst (len cols).
//
//pbg:hotpath
func (q *quantRows) copyRow(dst []float32, r int) {
	switch q.codec {
	case storage.CodecFP16:
		vec.DequantF16(dst, q.f16[r*q.cols:(r+1)*q.cols])
	case storage.CodecInt8:
		vec.DequantI8(dst, q.i8[r*q.cols:(r+1)*q.cols], q.scales[r])
	}
}

// bytes is the quantized payload footprint (embedding cells + scales), the
// scan-side residency the quant gauges report.
func (q *quantRows) bytes() int64 {
	return int64(len(q.f16))*2 + int64(len(q.i8)) + int64(len(q.scales))*4
}

// quantViews builds a quantRows over the payload blocks of a parsed v2
// layout. b is the whole file image — an mmap region or a private read; the
// views alias it either way, so the caller keeps b (or its mapping) alive
// for the life of the shard.
func quantViews(b []byte, l shardLayout) (*quantRows, error) {
	q := &quantRows{codec: l.Codec, rows: l.Count, cols: l.Dim}
	var err error
	switch l.Codec {
	case storage.CodecFP16:
		if q.f16, err = u16View(b[l.DataOff : l.DataOff+l.EmbBytes]); err != nil {
			return nil, err
		}
	case storage.CodecInt8:
		if q.scales, err = f32View(b[l.DataOff : l.DataOff+l.ScaleBytes]); err != nil {
			return nil, err
		}
		q.i8 = i8View(b[l.DataOff+l.ScaleBytes : l.DataOff+l.ScaleBytes+l.EmbBytes])
	default:
		return nil, fmt.Errorf("serve: no quantized view for codec %v", l.Codec)
	}
	return q, nil
}

// The reinterpret views below are the platform-independent twins of the
// mmap path's floatView: they work over heap buffers too (the codec read
// path), and misalignment is reported rather than risked. Go heap
// allocations are at least word-aligned and both v2 payload offsets (28 and
// 28+count·4) are 4-aligned, so the checks only fire on a hostile layout.

func f32View(b []byte) ([]float32, error) {
	if len(b) == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%4 != 0 {
		return nil, fmt.Errorf("serve: block misaligned for float32 view")
	}
	return unsafe.Slice((*float32)(p), len(b)/4), nil
}

func u16View(b []byte) ([]uint16, error) {
	if len(b) == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%2 != 0 {
		return nil, fmt.Errorf("serve: block misaligned for uint16 view")
	}
	return unsafe.Slice((*uint16)(p), len(b)/2), nil
}

func i8View(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}
