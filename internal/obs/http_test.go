package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	hub := NewHub()
	hub.Reg.Counter("pbg_http_test_total").Add(3)
	hub.Trace.Start("train", "epoch").End()
	srv, err := hub.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "pbg_http_test_total 3") ||
		!strings.Contains(body, "# TYPE pbg_http_test_total counter") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get("/trace"); code != http.StatusOK ||
		!strings.Contains(body, "traceEvents") || !strings.Contains(body, "epoch") {
		t.Errorf("/trace = %d:\n%s", code, body)
	}
	// pprof's cmdline endpoint is the cheapest one that exercises the wiring.
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d:\n%s", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestTraceEndpointWithoutTracer(t *testing.T) {
	hub := NewQuietHub()
	srv, err := hub.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", resp.StatusCode)
	}
}
