package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Hub bundles the two halves of the observability layer so instrumented
// subsystems take one handle. Reg is never nil on a hub built by NewHub or
// NewQuietHub; Trace may be nil (spans then no-op), which is the default
// for components not wired to a live endpoint.
type Hub struct {
	Reg   *Registry
	Trace *Tracer
}

// NewHub returns a hub with a fresh registry and a tracer of
// DefaultTraceCapacity — what the CLIs build when -obs-addr is set.
func NewHub() *Hub {
	return &Hub{Reg: NewRegistry(), Trace: NewTracer(0)}
}

// NewQuietHub returns a hub with a registry but no tracer: metrics are
// recorded (cheap atomics), spans no-op. This is the default hub
// instrumented components fall back to when the caller supplies none, so
// instrumentation code never checks for nil.
func NewQuietHub() *Hub {
	return &Hub{Reg: NewRegistry()}
}

// Handler returns the hub's HTTP mux:
//
//	/metrics        Prometheus text-format export of the registry
//	/trace          Chrome trace_event JSON of the span ring buffer
//	/debug/pprof/*  the standard net/http/pprof profiling endpoints
//	/               a plain-text index of the above
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.Reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if h.Trace == nil {
			http.Error(w, "obs: tracing disabled on this hub", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="pbg-trace.json"`)
		if err := h.Trace.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "pbg observability endpoint\n\n/metrics\n/trace\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running observability endpoint; Close shuts it down.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the hub's HTTP endpoint on addr (host:port; port 0 picks a
// free one). The server runs on a background goroutine until Close.
func (h *Hub) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
