// Package obs is the repo's dependency-free observability layer: a
// lock-cheap metrics registry (atomic counters, gauges, and fixed
// log-scale-bucket histograms with a Prometheus text-format exporter), a
// bounded span tracer whose ring buffer exports Chrome trace_event JSON
// (openable in chrome://tracing or Perfetto), and an opt-in HTTP server
// binding the two together with net/http/pprof.
//
// The package deliberately imports nothing outside the standard library so
// every layer of the system — train, storage, dist, the CLIs — can depend
// on it without cycles. Instrumented subsystems hold a *Hub; components
// that are not wired to a live endpoint run against a private Hub whose
// tracer is nil, which makes every span call a no-op and every metric an
// uncontended atomic.
//
// Metric names follow the Prometheus conventions: a family name in
// snake_case with a unit suffix (…_total for counters, …_ns_total for
// cumulative nanoseconds, …_bytes for gauges), optionally followed by a
// brace-delimited label set that is carried verbatim into the export, e.g.
//
//	reg.Counter(`pbg_storage_loads_total`)
//	reg.Histogram(`pbg_dist_rpc_ns{method="Get"}`)
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// unusable; obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative for the
// Prometheus export to stay meaningful; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (resident bytes, live lookahead
// depth, sync lag). Obtain gauges from a Registry.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: fixed base-2 log-scale upper bounds
// 2^histMinExp … 2^(histMinExp+histBuckets-1), plus an implicit +Inf
// bucket. The range (≈6e-8 … ≈1.7e7) covers sub-microsecond RPC latencies
// in seconds, multi-hour durations in seconds, nanosecond counts of short
// stalls, and per-edge losses, all without per-histogram configuration —
// fixed bounds keep Observe allocation-free and mergeable across
// processes.
const (
	histMinExp  = -24
	histBuckets = 49
)

// Histogram is a fixed-bucket log-scale histogram safe for concurrent
// Observe calls. Obtain histograms from a Registry.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	buckets [histBuckets + 1]atomic.Int64
}

// Observe records one value. NaN and values beyond the largest bound land
// in the +Inf bucket; non-positive values land in the smallest.
func (h *Histogram) Observe(v float64) {
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			break
		}
	}
	h.buckets[histBucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// histBucketIndex returns the smallest bucket whose upper bound is >= v;
// histBuckets means +Inf.
func histBucketIndex(v float64) int {
	if v <= math.Ldexp(1, histMinExp) {
		return 0
	}
	if !(v <= math.Ldexp(1, histMinExp+histBuckets-1)) { // catches NaN too
		return histBuckets
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	i := exp - 1 - histMinExp  // v <= 2^(exp-1) exactly when frac == 0.5
	if frac > 0.5 {
		i++
	}
	return i
}

// HistBucketBound returns the upper bound of bucket i (math.Inf(1) for the
// overflow bucket). Exposed for tests and snapshot consumers.
func HistBucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return math.Ldexp(1, histMinExp+i)
}

// Registry is a process- or component-level set of named metrics.
// Registration (Counter/Gauge/Histogram) takes a mutex; the returned
// handles are lock-free, so instrumented code registers once at
// construction and pays one atomic op per event afterwards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Calls with the same name share one counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time. Buckets
// holds per-bucket (non-cumulative) counts aligned with HistBucketBound.
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Buckets []int64
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts:
// the upper bound of the bucket containing the q·Count-th observation.
// With log-2 buckets the estimate is within 2× of the true value, which is
// the right resolution for latency reporting (p99 in the serving bench);
// returns 0 when the histogram is empty and +Inf when the target
// observation landed in the overflow bucket.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= target {
			return HistBucketBound(i)
		}
	}
	return math.Inf(1)
}

// Snapshot is a point-in-time copy of every metric in a registry, for
// tests and end-of-run reporting. Concurrent updates during the copy may
// be torn across metrics but each individual value is atomic.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: make([]int64, histBuckets+1)}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// splitName separates a metric name into its family and an optional label
// body: `pbg_dist_rpc_ns{method="Get"}` → ("pbg_dist_rpc_ns",
// `method="Get"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// formatBound renders a histogram bucket bound as a Prometheus `le` value;
// %g keeps exact powers of two short and round-trippable.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, then the samples,
// with histogram buckets expanded cumulatively under `_bucket{le=…}`.
// Output is sorted by name so exports diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	typed := make(map[string]string) // family → type, first writer wins
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	for n := range snap.Counters {
		names = append(names, n)
	}
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		family, labels := splitName(name)
		braced := ""
		if labels != "" {
			braced = "{" + labels + "}"
		}
		writeType := func(kind string) error {
			if typed[family] == kind {
				return nil
			}
			typed[family] = kind
			_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
			return err
		}
		if v, ok := snap.Counters[name]; ok {
			if err := writeType("counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", family, braced, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := snap.Gauges[name]; ok {
			if err := writeType("gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", family, braced, v); err != nil {
				return err
			}
			continue
		}
		hs := snap.Histograms[name]
		if err := writeType("histogram"); err != nil {
			return err
		}
		sep := ""
		if labels != "" {
			sep = ","
		}
		var cum int64
		for i, c := range hs.Buckets {
			cum += c
			// Elide interior empty buckets: cumulative counts make skipped
			// `le` values implied, and 50 lines per histogram would swamp
			// the export. The +Inf bucket is always written.
			if c == 0 && i < histBuckets {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
				family, labels, sep, formatBound(HistBucketBound(i)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", family, braced, hs.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, braced, hs.Count); err != nil {
			return err
		}
	}
	return nil
}
