package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pbg_test_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("pbg_test_total") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("pbg_test_bytes")
	g.Set(100)
	g.Add(-30)
	if got := g.Value(); got != 70 {
		t.Fatalf("gauge = %d, want 70", got)
	}
}

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want float64 // upper bound of the bucket v must land in
	}{
		{1.0, 1.0}, // exact power of two lands on its own bound
		{1.5, 2.0},
		{0.75, 1.0},
		{0.5, 0.5},
		{1e-9, HistBucketBound(0)}, // below the smallest bound
		{0, HistBucketBound(0)},
		{-3, HistBucketBound(0)},
		{1e12, math.Inf(1)}, // beyond the largest bound
		{math.NaN(), math.Inf(1)},
	}
	for _, c := range cases {
		got := HistBucketBound(histBucketIndex(c.v))
		if got != c.want {
			t.Errorf("bucket bound for %v = %v, want %v", c.v, got, c.want)
		}
		if !math.IsInf(got, 1) && !(c.v <= got) && c.v > 0 && !math.IsNaN(c.v) {
			t.Errorf("value %v above its bucket bound %v", c.v, got)
		}
	}
}

// TestMetricsExactUnderConcurrency hammers one counter, one gauge, and one
// histogram from HOGWILD-width goroutines and asserts exact totals — the
// registry's lock-cheap primitives must not lose updates (run under -race
// in CI).
func TestMetricsExactUnderConcurrency(t *testing.T) {
	const workers = 16
	const perWorker = 10_000
	r := NewRegistry()
	c := r.Counter("pbg_conc_total")
	g := r.Gauge("pbg_conc_gauge")
	h := r.Histogram("pbg_conc_hist")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(3)
				g.Add(1)
				h.Observe(float64(w%4) + 0.5) // 0.5, 1.5, 2.5, 3.5
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Value(), int64(3*workers*perWorker); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), int64(workers*perWorker); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got, want := h.Count(), int64(workers*perWorker); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// Sum is exact: each observed value has a short binary expansion and the
	// running sum stays far below 2^53.
	want := 0.0
	for w := 0; w < workers; w++ {
		want += (float64(w%4) + 0.5) * perWorker
	}
	if got := h.Sum(); got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
	var bucketTotal int64
	snap := r.Snapshot()
	for _, b := range snap.Histograms["pbg_conc_hist"].Buckets {
		bucketTotal += b
	}
	if bucketTotal != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", bucketTotal, h.Count())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pbg_loads_total").Add(7)
	r.Gauge("pbg_resident_bytes").Set(1024)
	r.Histogram(`pbg_rpc_ns{method="Get"}`).Observe(2.0)
	r.Histogram(`pbg_rpc_ns{method="Put"}`).Observe(1e30) // overflow bucket
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pbg_loads_total counter",
		"pbg_loads_total 7",
		"# TYPE pbg_resident_bytes gauge",
		"pbg_resident_bytes 1024",
		"# TYPE pbg_rpc_ns histogram",
		`pbg_rpc_ns_bucket{method="Get",le="2"} 1`,
		`pbg_rpc_ns_bucket{method="Get",le="+Inf"} 1`,
		`pbg_rpc_ns_sum{method="Get"} 2`,
		`pbg_rpc_ns_count{method="Get"} 1`,
		`pbg_rpc_ns_bucket{method="Put",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// The TYPE line for a labelled family must appear exactly once even with
	// two label sets registered.
	if got := strings.Count(out, "# TYPE pbg_rpc_ns histogram"); got != 1 {
		t.Errorf("TYPE line for pbg_rpc_ns appears %d times, want 1:\n%s", got, out)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pbg_x_total")
	c.Add(5)
	snap := r.Snapshot()
	c.Add(5)
	if snap.Counters["pbg_x_total"] != 5 {
		t.Fatalf("snapshot mutated: %d", snap.Counters["pbg_x_total"])
	}
}
