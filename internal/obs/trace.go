package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the span ring-buffer size NewTracer/NewHub use:
// large enough to hold several epochs of bucket/prefetch/write-back spans,
// small enough (a few MB) that an always-on tracer is cheap.
const DefaultTraceCapacity = 1 << 16

// SpanEvent is one completed span as stored in the tracer's ring buffer.
type SpanEvent struct {
	// Name describes the operation ("bucket (3,4)", "load t0 p3", …).
	Name string
	// Track groups spans into one timeline row per subsystem ("train",
	// "storage", "dist"); the Chrome trace export maps each track to a tid.
	Track string
	// Start and Dur delimit the span in wall time.
	Start time.Time
	Dur   time.Duration
	// ID identifies this span; Parent is the enclosing span's ID (0 for
	// roots), so exported traces preserve the nesting the code expressed
	// via Span.Child.
	ID, Parent int64
}

// Tracer records completed spans into a bounded ring buffer: when the
// buffer is full the oldest spans are overwritten, so a long run keeps the
// most recent window instead of growing without bound. All methods are
// safe for concurrent use, and all methods on a nil *Tracer are no-ops —
// instrumented code never branches on whether tracing is enabled.
type Tracer struct {
	ids atomic.Int64

	mu   sync.Mutex
	buf  []SpanEvent
	head int   // next write position
	n    int64 // total events ever recorded
}

// NewTracer returns a tracer whose ring holds capacity completed spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]SpanEvent, capacity)}
}

// Span is one in-flight span; End completes it into the tracer's ring.
// A nil *Span (from a nil tracer) is inert: Child returns nil, End is a
// no-op.
type Span struct {
	t      *Tracer
	name   string
	track  string
	id     int64
	parent int64
	start  time.Time
}

// Start opens a root span on the given track. Returns nil when t is nil.
func (t *Tracer) Start(track, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, track: track, name: name, id: t.ids.Add(1), start: time.Now()}
}

// Child opens a span nested under s, on s's track.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, track: s.track, name: name, id: s.t.ids.Add(1), parent: s.id, start: time.Now()}
}

// End completes the span and records it. Recording happens at End, so
// spans land in the ring in completion order; Events re-sorts by start
// time for consumers that need timeline order.
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := SpanEvent{
		Name: s.name, Track: s.track,
		Start: s.start, Dur: time.Since(s.start),
		ID: s.id, Parent: s.parent,
	}
	t := s.t
	t.mu.Lock()
	t.buf[t.head] = ev
	t.head = (t.head + 1) % len(t.buf)
	t.n++
	t.mu.Unlock()
}

// Len reports how many spans the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(min64(t.n, int64(len(t.buf))))
}

// Dropped reports how many spans were overwritten by newer ones.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= int64(len(t.buf)) {
		return 0
	}
	return t.n - int64(len(t.buf))
}

// Events returns a copy of the buffered spans sorted by start time.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []SpanEvent
	if t.n >= int64(len(t.buf)) {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	} else {
		out = append(out, t.buf[:t.head]...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" metadata naming the tracks), the JSON that
// chrome://tracing and Perfetto open directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the buffered spans as Chrome trace_event JSON.
// Tracks become named threads; span parent IDs ride in args so the nesting
// the code expressed survives even when Perfetto re-derives slice stacks
// from timing alone.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	var base time.Time
	if len(events) > 0 {
		base = events[0].Start
	}
	tids := map[string]int{}
	var out []chromeEvent
	for _, ev := range events {
		tid, ok := tids[ev.Track]
		if !ok {
			tid = len(tids) + 1
			tids[ev.Track] = tid
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": ev.Track},
			})
		}
		out = append(out, chromeEvent{
			Name: ev.Name, Cat: ev.Track, Ph: "X",
			Ts:  float64(ev.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur: float64(ev.Dur.Nanoseconds()) / 1e3,
			Pid: 1, Tid: tid,
			Args: map[string]any{"id": ev.ID, "parent": ev.Parent},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
