package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("train", "epoch")
	if sp != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	sp.End()            // must not panic
	sp.Child("x").End() // ditto
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
}

func TestSpanNestingAndOrder(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("train", "epoch")
	child := root.Child("bucket")
	grand := child.Child("load")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Events are sorted by start time: root, child, grandchild.
	if evs[0].Name != "epoch" || evs[1].Name != "bucket" || evs[2].Name != "load" {
		t.Fatalf("unexpected order: %v %v %v", evs[0].Name, evs[1].Name, evs[2].Name)
	}
	if evs[1].Parent != evs[0].ID || evs[2].Parent != evs[1].ID {
		t.Fatalf("parent chain broken: %+v", evs)
	}
	for _, ev := range evs {
		if ev.Dur <= 0 {
			t.Errorf("span %q has non-positive duration %v", ev.Name, ev.Dur)
		}
	}
	// The grandchild must nest inside the child's window.
	if evs[2].Start.Before(evs[1].Start) ||
		evs[2].Start.Add(evs[2].Dur).After(evs[1].Start.Add(evs[1].Dur)) {
		t.Fatalf("grandchild does not nest in child: %+v", evs)
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Start("t", "s").End()
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("ring holds %d, want 8", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("dropped %d, want 12", got)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("events %d, want 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start.Before(evs[i-1].Start) {
			t.Fatal("events not sorted by start time")
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(1 << 12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("t", "s")
				sp.Child("c").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 1600 {
		t.Fatalf("ring holds %d, want 1600", got)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(16)
	sp := tr.Start("storage", "load t0 p1")
	sp.End()
	tr.Start("train", "bucket (0,1)").End()
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	// Two spans on two tracks: 2 metadata events + 2 complete events.
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "M":
			meta++
		}
		if ev.Pid != 1 || ev.Tid == 0 {
			t.Errorf("event %q missing pid/tid: %+v", ev.Name, ev)
		}
	}
	if complete != 2 || meta != 2 {
		t.Fatalf("got %d complete + %d metadata events, want 2 + 2:\n%s", complete, meta, sb.String())
	}
}
