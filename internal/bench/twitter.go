package bench

import (
	"pbg/internal/datagen"
	"pbg/internal/eval"
	"pbg/internal/graph"
)

// twitterGraph builds the Twitter stand-in: a single-relation follow graph,
// denser than the Freebase stand-in and with one relation (the paper
// contrasts its near-linear scaling against Freebase's).
func twitterGraph(s Scale, parts int) (*graph.Graph, error) {
	return datagen.Social(datagen.SocialConfig{
		Nodes: s.SocialNodes, AvgOutDegree: s.SocialDeg * 2,
		NumPartitions: parts, Seed: s.Seed + 100,
	})
}

// Table4Partitions reproduces Table 4 (left): the Twitter stand-in trained
// on a single machine with 1, 4, 8 and 16 partitions.
func Table4Partitions(s Scale) (*Report, error) {
	return partitionSweep(s, "table4-left", "Twitter partition sweep (paper Table 4, left)",
		func(parts int) (*graph.Graph, error) { return twitterGraph(s, parts) })
}

// Table4Distributed reproduces Table 4 (right): distributed training on 1,
// 2, 4 and 8 machines.
func Table4Distributed(s Scale) (*Report, error) {
	return distributedSweep(s, "table4-right", "Twitter distributed sweep (paper Table 4, right)",
		func(parts int) (*graph.Graph, error) { return twitterGraph(s, parts) })
}

// Figure7TwitterCurves reproduces Figure 7: MRR vs epoch and wallclock for
// 1–8 machines on the Twitter stand-in.
func Figure7TwitterCurves(s Scale) ([]*eval.Curve, error) {
	return distributedCurves(s, func(parts int) (*graph.Graph, error) { return twitterGraph(s, parts) })
}
