// Package bench regenerates every table and figure from the paper's
// evaluation section (§5) on the synthetic dataset stand-ins. Each
// experiment is a function returning a formatted report whose rows mirror
// the paper's, so paper-vs-measured comparisons (EXPERIMENTS.md) are
// mechanical. The same functions back cmd/pbg-bench and the root
// bench_test.go targets.
//
// Absolute values differ from the paper — the substrate is a Go simulator
// on synthetic graphs, not a 24-core Xeon on LiveJournal/Freebase — but the
// shapes the paper claims are asserted here: who wins, how memory scales
// with partitions, how time scales with machines, where batched negatives
// stop helping.
package bench

import (
	"bytes"
	"fmt"
	"text/tabwriter"
	"time"

	"pbg/internal/graph"
)

// Scale sizes an experiment run. Small completes in seconds (CI / go test
// -bench); Medium in minutes (cmd/pbg-bench, the EXPERIMENTS.md numbers).
type Scale struct {
	Name string

	// Social graph (LiveJournal/Twitter stand-ins).
	SocialNodes int
	SocialDeg   int

	// Community graph (YouTube stand-in).
	CommunityNodes  int
	CommunityEdges  int
	CommunityLabels int

	// Knowledge graph (FB15k / Freebase stand-ins).
	KGEntities  int
	KGRelations int
	KGEdges     int

	Dim int
	// Epochs drives the partition/distribution sweeps; SocialEpochs the
	// Table-1 quality comparisons (the paper grid-searches per dataset).
	Epochs       int
	SocialEpochs int
	KGEpochs     int
	// Fig4TableRows sizes the embedding table for the Figure-4 throughput
	// measurement; it must exceed LLC capacity for the memory-bandwidth
	// effect to appear.
	Fig4TableRows int
	EvalEdges     int
	EvalK         int
	Workers       int
	Seed          uint64
}

// SmallScale targets CI: each experiment in roughly a second or two.
var SmallScale = Scale{
	Name:        "small",
	SocialNodes: 2000, SocialDeg: 8,
	CommunityNodes: 1500, CommunityEdges: 12000, CommunityLabels: 12,
	KGEntities: 1000, KGRelations: 20, KGEdges: 40000,
	Dim: 16, Epochs: 4, SocialEpochs: 10, KGEpochs: 16, Fig4TableRows: 500000,
	EvalEdges: 250, EvalK: 100, Workers: 2, Seed: 7,
}

// MediumScale drives the recorded EXPERIMENTS.md numbers.
var MediumScale = Scale{
	Name:        "medium",
	SocialNodes: 20000, SocialDeg: 10,
	CommunityNodes: 8000, CommunityEdges: 80000, CommunityLabels: 25,
	KGEntities: 6000, KGRelations: 40, KGEdges: 240000,
	Dim: 32, Epochs: 8, SocialEpochs: 12, KGEpochs: 12, Fig4TableRows: 2000000,
	EvalEdges: 1000, EvalK: 500, Workers: 2, Seed: 7,
}

// Report is one experiment's output: a human-readable table plus the raw
// rows for programmatic assertions.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes string
}

// Row is one line of a report table.
type Row struct {
	Label  string
	Values map[string]float64
}

// Value fetches a metric with a zero default.
func (r Row) Value(key string) float64 { return r.Values[key] }

// FindRow returns the first row whose label matches.
func (rep *Report) FindRow(label string) (Row, bool) {
	for _, r := range rep.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// Format renders the report as an aligned table with the given column
// order.
func (rep *Report) Format(columns []string) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s: %s ==\n", rep.ID, rep.Title)
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "config")
	for _, c := range columns {
		fmt.Fprintf(w, "\t%s", c)
	}
	fmt.Fprintln(w)
	for _, row := range rep.Rows {
		fmt.Fprint(w, row.Label)
		for _, c := range columns {
			v, ok := row.Values[c]
			if !ok {
				fmt.Fprint(w, "\t-")
				continue
			}
			switch {
			case c == "time_s" || c == "mem_MB":
				fmt.Fprintf(w, "\t%.2f", v)
			case v >= 1000:
				fmt.Fprintf(w, "\t%.0f", v)
			default:
				fmt.Fprintf(w, "\t%.3f", v)
			}
		}
		fmt.Fprintln(w)
	}
	_ = w.Flush()
	if rep.Notes != "" {
		fmt.Fprintf(&buf, "note: %s\n", rep.Notes)
	}
	return buf.String()
}

// mb converts bytes to megabytes.
func mb(b int64) float64 { return float64(b) / (1 << 20) }

// seconds converts a duration to float seconds.
func seconds(d time.Duration) float64 { return d.Seconds() }

// modelBytes estimates the full embedding-model footprint of a schema at
// dimension d: the quantity the paper's memory columns track (embeddings +
// per-row optimizer state).
func modelBytes(s *graph.Schema, dim int) int64 {
	var total int64
	for _, e := range s.Entities {
		total += int64(e.Count) * int64(dim+1) * 4
	}
	return total
}
