package bench

import (
	"fmt"
	"os"
	"time"

	"pbg/internal/datagen"
	"pbg/internal/obs"
	"pbg/internal/serve"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// ServeSweep load-tests the online serving layer on a freshly trained
// social checkpoint: exact top-K at batch 1 and 32, IVF top-K at batch 32,
// and the same IVF batch over the net/rpc front end. QPS is wall-clock
// queries per second; p99 is read back from the server's own
// pbg_serve_latency_s{api="topk"} histogram — the same obs plumbing a
// production dashboard would scrape — and recall@10 compares each row's
// answers against the exact answers for the identical query stream.
// short trims training epochs and the query count to CI size.
func ServeSweep(s Scale, short bool) (*Report, error) {
	const parts = 4
	const k = 10
	epochs, queries := 4, 512
	if short {
		epochs, queries = 1, 96
	}

	g, err := datagen.Social(datagen.SocialConfig{
		Nodes: s.SocialNodes, AvgOutDegree: s.SocialDeg,
		NumPartitions: parts, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "pbg-serve-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	// Train straight into a DiskStore at dir: the drained store IS the
	// checkpoint's shard layout, so only relations.pbg remains to write.
	store, err := storage.NewDiskStore(dir, g.Schema, s.Dim, s.Seed+1, 1)
	if err != nil {
		return nil, err
	}
	tr, err := train.New(g, store, train.Config{
		Dim: s.Dim, Epochs: epochs, Workers: s.Workers, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := tr.Train(nil); err != nil {
		return nil, err
	}
	if err := store.Close(); err != nil {
		return nil, err
	}
	rs := &storage.RelationState{}
	for r := range g.Schema.Relations {
		params := tr.RelParams(r)
		rs.Params = append(rs.Params, params)
		rs.Acc = append(rs.Acc, make([]float32, len(params)))
	}
	if err := storage.WriteRelations(dir+"/relations.pbg", rs); err != nil {
		return nil, err
	}

	// Build the IVF index once, next to the checkpoint; every workload
	// below reopens the same directory.
	{
		srv, err := serve.Open(dir, serve.Config{Schema: g.Schema, Dim: s.Dim})
		if err != nil {
			return nil, err
		}
		if err := srv.BuildIndex(serve.IVFConfig{Seed: s.Seed}); err != nil {
			_ = srv.Close()
			return nil, err
		}
		_ = srv.Close()
	}

	// One deterministic query stream shared by every row.
	srcs := make([]int32, queries)
	for i := range srcs {
		srcs[i] = int32((i*37 + 11) % s.SocialNodes)
	}

	// Exact answers for the stream, used as the recall reference.
	exact := make([][]int32, queries)
	{
		srv, err := serve.Open(dir, serve.Config{Schema: g.Schema, Dim: s.Dim})
		if err != nil {
			return nil, err
		}
		for i, src := range srcs {
			res, err := srv.TopK([]serve.TopKRequest{{Rel: 0, SrcID: src, K: k, Exact: true}})
			if err != nil {
				_ = srv.Close()
				return nil, err
			}
			exact[i] = res[0].IDs
		}
		_ = srv.Close()
	}

	workloads := []struct {
		label string
		batch int
		exact bool
		rpc   bool
	}{
		{"exact_b1", 1, true, false},
		{"exact_b32", 32, true, false},
		{"ivf_b32", 32, false, false},
		{"rpc_ivf_b32", 32, false, true},
	}

	rep := &Report{
		ID:    "serve",
		Title: "online serving: batched top-K, exact vs IVF, local vs RPC",
		Notes: fmt.Sprintf("%d nodes, dim %d, K=%d, %d queries; p99 from pbg_serve_latency_s histogram", s.SocialNodes, s.Dim, k, queries),
	}
	for _, wl := range workloads {
		hub := obs.NewQuietHub()
		srv, err := serve.Open(dir, serve.Config{Schema: g.Schema, Dim: s.Dim, Obs: hub})
		if err != nil {
			return nil, err
		}
		var client *serve.Client
		var front *serve.RPCServer
		if wl.rpc {
			if front, err = serve.ListenAndServe("127.0.0.1:0", srv); err != nil {
				_ = srv.Close()
				return nil, err
			}
			if client, err = serve.Dial(front.Addr()); err != nil {
				_ = front.Close()
				_ = srv.Close()
				return nil, err
			}
		}

		scanned, hits := 0, 0
		start := time.Now()
		for lo := 0; lo < queries; lo += wl.batch {
			hi := lo + wl.batch
			if hi > queries {
				hi = queries
			}
			reqs := make([]serve.TopKRequest, 0, hi-lo)
			for _, src := range srcs[lo:hi] {
				reqs = append(reqs, serve.TopKRequest{Rel: 0, SrcID: src, K: k, Exact: wl.exact})
			}
			var res []serve.TopKResult
			if wl.rpc {
				res, err = client.TopK(reqs)
			} else {
				res, err = srv.TopK(reqs)
			}
			if err != nil {
				_ = srv.Close()
				return nil, err
			}
			for i, r := range res {
				scanned += r.Scanned
				want := exact[lo+i]
				got := map[int32]bool{}
				for _, id := range r.IDs {
					got[id] = true
				}
				for _, id := range want {
					if got[id] {
						hits++
					}
				}
			}
		}
		elapsed := time.Since(start)

		snap := hub.Reg.Snapshot()
		p99 := snap.Histograms[`pbg_serve_latency_s{api="topk"}`].Quantile(0.99)
		rep.Rows = append(rep.Rows, Row{Label: wl.label, Values: map[string]float64{
			"QPS":        float64(queries) / seconds(elapsed),
			"p99_ms":     p99 * 1000,
			"recall@10":  float64(hits) / float64(queries*k),
			"rows/query": float64(scanned) / float64(queries),
		}})

		if client != nil {
			_ = client.Close()
		}
		if front != nil {
			_ = front.Close()
		}
		_ = srv.Close()
	}
	return rep, nil
}
