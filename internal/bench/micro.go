package bench

import (
	"fmt"
	"time"

	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/model"
	"pbg/internal/partition"
	"pbg/internal/rng"
	"pbg/internal/storage"
	"pbg/internal/train"
	"pbg/internal/vec"
)

// Figure1Ordering reproduces the claim attached to Figure 1 (right): the
// inside-out bucket ordering yields better embeddings than alternatives
// while minimising disk swaps. Each ordering trains the same partitioned
// graph; the report shows final MRR and the partition-load count.
func Figure1Ordering(s Scale) (*Report, error) {
	const parts = 8
	rep := &Report{ID: "figure1", Title: "Bucket ordering ablation (paper Figure 1 / §4.1)"}
	for _, ord := range []string{partition.OrderInsideOut, partition.OrderChained, partition.OrderSequential, partition.OrderRandom} {
		g, err := socialGraph(s, parts, s.Seed)
		if err != nil {
			return nil, err
		}
		trainG, _, testG := g.Split(0, 0.1, 5)
		deg := graph.ComputeDegrees(trainG)
		store := storage.NewMemStore(g.Schema, s.Dim, s.Seed+1, 1)
		tr, err := train.New(trainG, store, train.Config{
			Dim: s.Dim, Epochs: s.Epochs / 2, Workers: s.Workers, Seed: s.Seed,
			BucketOrder: ord, Comparator: "cos",
		})
		if err != nil {
			return nil, err
		}
		stats, err := tr.Train(nil)
		if err != nil {
			return nil, err
		}
		view := tr.NewView()
		m, err := evalUniform(s, trainG.Schema, view, tr, deg, testG.Edges)
		_ = view.Close()
		if err != nil {
			return nil, err
		}
		order, _ := partition.Order(ord, parts, parts, s.Seed)
		rep.Rows = append(rep.Rows, Row{Label: ord, Values: map[string]float64{
			"MRR": m.MRR, "Hits@10": m.Hits10,
			"swaps":     float64(partition.SwapCount(order)),
			"IO/epoch":  float64(stats[0].PartitionIO),
			"invariant": boolAs01(partition.CheckInvariant(order)),
		}})
	}
	rep.Notes = "paper: inside-out achieves the best embeddings while minimising swaps; random may violate the initialisation invariant"
	return rep, nil
}

func boolAs01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Figure4Negatives reproduces Figure 4: training throughput (edges/s) as a
// function of the number of negatives Bn per edge, with batched negatives
// (chunked reuse, C=50) versus unbatched (fresh negatives per edge, C=1) at
// d=100, gathering rows from an embedding table sized well beyond the LLC
// so that unbatched sampling is memory-bound, as on the paper's testbed.
//
// Reproduction caveat (recorded in EXPERIMENTS.md): the paper's batched
// curve is flat up to Bn≈100 because MKL GEMMs make the Bn·d FLOPs nearly
// free; scalar Go kernels pay for FLOPs sooner, so our batched curve decays
// earlier. The gather-reuse effect itself reproduces: batched stays a
// constant factor (2.5–8×) above unbatched at every Bn, and unbatched
// decays steeply with Bn.
func Figure4Negatives(s Scale) (*Report, error) {
	const dim = 100
	rep := &Report{ID: "figure4", Title: "Negatives throughput (paper Figure 4, d=100)"}
	sc, err := model.NewScorer(dim, "identity", "dot", "ranking", 0.1, false)
	if err != nil {
		return nil, err
	}
	edges := 3000
	for _, bn := range []int{10, 20, 50, 100, 200, 500} {
		for _, mode := range []string{"batched", "unbatched"} {
			var c, u int
			if mode == "batched" {
				c = 50
				if bn/2 < c {
					c = bn / 2
				}
				if c < 1 {
					c = 1
				}
				u = bn/2 - c + 1
				if u < 0 {
					u = 0
				}
			} else {
				c = 1
				u = bn / 2
			}
			edgesPerSec, err := throughput(sc, dim, c, u, edges, s.Fig4TableRows)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, Row{
				Label: fmt.Sprintf("%s Bn=%d", mode, bn),
				Values: map[string]float64{
					"edges/s": edgesPerSec,
					"Bn":      float64(2 * (c + u - 1)),
				},
			})
		}
	}
	rep.Notes = "paper: unbatched speed ∝ 1/Bn; batched reuses candidates so it stays well above unbatched (flatness up to Bn=100 additionally needs near-peak GEMM, see EXPERIMENTS.md)"
	return rep, nil
}

// throughput measures raw chunk-scoring throughput at the given chunk
// geometry, including the gather/scatter pattern (random rows from a large
// table) that makes unbatched sampling memory-bound.
func throughput(sc *model.Scorer, dim, c, u, totalEdges, tableRows int) (float64, error) {
	table := vec.NewMatrix(tableRows, dim)
	r := rng.New(3)
	for i := range table.Data {
		table.Data[i] = r.NormFloat32()
	}
	ws := sc.NewWorkspace(c, u)
	grad := sc.NewChunkGrad(c, u)
	in := &model.ChunkInput{
		Src:    vec.NewMatrix(c, dim),
		Dst:    vec.NewMatrix(c, dim),
		USrc:   vec.NewMatrix(u, dim),
		UDst:   vec.NewMatrix(u, dim),
		SrcIDs: make([]int32, c), DstIDs: make([]int32, c),
		USrcIDs: make([]int32, u), UDstIDs: make([]int32, u),
		RelWeight: 1,
	}
	gatherRow := func(m vec.Matrix, i int, ids []int32) {
		id := int32(r.Intn(tableRows))
		ids[i] = id
		copy(m.Row(i), table.Row(int(id)))
	}
	// Warm-up pass so first-touch page faults on the table do not bias the
	// first configuration measured.
	for warm := 0; warm < 3; warm++ {
		for i := 0; i < c; i++ {
			gatherRow(in.Src, i, in.SrcIDs)
			gatherRow(in.Dst, i, in.DstIDs)
		}
		for i := 0; i < u; i++ {
			gatherRow(in.USrc, i, in.USrcIDs)
			gatherRow(in.UDst, i, in.UDstIDs)
		}
		sc.ScoreChunk(ws, in, grad)
	}
	// Time-budgeted measurement: fast configurations would otherwise finish
	// in milliseconds and report noise.
	const minDuration = 300 * time.Millisecond
	start := time.Now()
	done := 0
	for done < totalEdges || time.Since(start) < minDuration {
		for i := 0; i < c; i++ {
			gatherRow(in.Src, i, in.SrcIDs)
			gatherRow(in.Dst, i, in.DstIDs)
		}
		for i := 0; i < u; i++ {
			gatherRow(in.USrc, i, in.USrcIDs)
			gatherRow(in.UDst, i, in.UDstIDs)
		}
		sc.ScoreChunk(ws, in, grad)
		done += c
	}
	return float64(done) / time.Since(start).Seconds(), nil
}

// AblationAlpha sweeps the negative-sampling mixture α of §3.1 (0 = pure
// uniform, 1 = pure prevalence; the paper defaults to 0.5 and argues both
// extremes are undesirable).
func AblationAlpha(s Scale) (*Report, error) {
	rep := &Report{ID: "ablation-alpha", Title: "Negative-sampling α sweep (§3.1)"}
	g, err := socialGraph(s, 1, s.Seed)
	if err != nil {
		return nil, err
	}
	trainG, _, testG := g.Split(0, 0.1, 5)
	deg := graph.ComputeDegrees(trainG)
	for _, alpha := range []float32{0.001, 0.25, 0.5, 0.75, 0.999} {
		store := storage.NewMemStore(g.Schema, s.Dim, s.Seed+1, 1)
		tr, err := train.New(trainG, store, train.Config{
			Dim: s.Dim, Epochs: s.Epochs / 2, Workers: s.Workers, Seed: s.Seed,
			NegAlpha: alpha, Comparator: "cos",
		})
		if err != nil {
			return nil, err
		}
		if _, err := tr.Train(nil); err != nil {
			return nil, err
		}
		view := tr.NewView()
		rk := eval.NewRanker(trainG.Schema, view, tr, s.Dim, deg)
		uni, err := rk.Evaluate(testG.Edges, eval.Config{
			Mode: eval.CandidatesUniform, K: s.EvalK, MaxEdges: s.EvalEdges, Seed: 1,
		})
		if err != nil {
			_ = view.Close()
			return nil, err
		}
		prev, err := rk.Evaluate(testG.Edges, eval.Config{
			Mode: eval.CandidatesPrevalence, K: s.EvalK, MaxEdges: s.EvalEdges, Seed: 1,
		})
		_ = view.Close()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Row{Label: fmt.Sprintf("alpha=%.3f", alpha), Values: map[string]float64{
			"MRR-uniform": uni.MRR, "MRR-prevalence": prev.MRR,
		}})
	}
	rep.Notes = "α trades uniform-candidate MRR (popularity shortcut) against prevalence-candidate MRR (tail quality)"
	return rep, nil
}

// AblationComplExPartitioning probes the §5.4.2 / §6 observation that
// ComplEx is unstable under partitioned training: replicated runs at P=1
// versus P=4 on the KG stand-in, reporting mean ± std of MRR.
func AblationComplExPartitioning(s Scale) (*Report, error) {
	rep := &Report{ID: "ablation-complex", Title: "ComplEx under partitioning (§5.4.2 instability probe)"}
	const replicates = 3
	for _, parts := range []int{1, 4} {
		var mrrs []float64
		for rep2 := 0; rep2 < replicates; rep2++ {
			g, err := kgGraph(s, parts, "complex_diagonal")
			if err != nil {
				return nil, err
			}
			trainG, _, testG := g.Split(0.05, 0.05, 5)
			deg := graph.ComputeDegrees(trainG)
			store := storage.NewMemStore(g.Schema, s.Dim, s.Seed+uint64(rep2)*13+1, 1)
			tr, err := train.New(trainG, store, train.Config{
				Dim: s.Dim, Epochs: s.Epochs / 2, Workers: s.Workers,
				Seed: s.Seed + uint64(rep2)*17, Loss: "softmax", Reciprocal: true,
				LR: 0.5, UniformNegs: 150, NegAlpha: 0.1,
			})
			if err != nil {
				return nil, err
			}
			if _, err := tr.Train(nil); err != nil {
				return nil, err
			}
			view := tr.NewView()
			rk := eval.NewRanker(trainG.Schema, view, tr, s.Dim, deg)
			m, err := rk.Evaluate(testG.Edges, eval.Config{
				Mode: eval.CandidatesPrevalence, K: s.EvalK, MaxEdges: s.EvalEdges / 2, Seed: 1,
			})
			_ = view.Close()
			if err != nil {
				return nil, err
			}
			mrrs = append(mrrs, m.MRR)
		}
		mean, std := eval.MeanStd(mrrs)
		rep.Rows = append(rep.Rows, Row{Label: fmt.Sprintf("ComplEx P=%d", parts), Values: map[string]float64{
			"MRR-mean": mean, "MRR-std": std,
		}})
	}
	rep.Notes = "paper: ComplEx MRR varies 0.15–0.22 across partitioned replicates; stable at P=1"
	return rep, nil
}

// AblationStratum probes footnote 3 of §4.1: sweeping buckets multiple
// times per epoch ('stratum losses') trades extra I/O for convergence.
func AblationStratum(s Scale) (*Report, error) {
	rep := &Report{ID: "ablation-stratum", Title: "Stratified sub-epochs (§4.1 footnote 3)"}
	for _, n := range []int{1, 2, 4} {
		g, err := socialGraph(s, 4, s.Seed)
		if err != nil {
			return nil, err
		}
		trainG, _, testG := g.Split(0, 0.1, 5)
		deg := graph.ComputeDegrees(trainG)
		store := storage.NewMemStore(g.Schema, s.Dim, s.Seed+1, 1)
		tr, err := train.New(trainG, store, train.Config{
			Dim: s.Dim, Epochs: 1, Workers: s.Workers, Seed: s.Seed,
			StratumParts: n, Comparator: "cos",
		})
		if err != nil {
			return nil, err
		}
		stats, err := tr.Train(nil)
		if err != nil {
			return nil, err
		}
		view := tr.NewView()
		m, err := evalUniform(s, trainG.Schema, view, tr, deg, testG.Edges)
		_ = view.Close()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Row{Label: fmt.Sprintf("strata=%d", n), Values: map[string]float64{
			"MRR-after-1-epoch": m.MRR,
			"IO/epoch":          float64(stats[0].PartitionIO),
		}})
	}
	rep.Notes = "more strata = more swaps per epoch but faster convergence per epoch (Gemulla et al. 2011)"
	return rep, nil
}
