// The shape tests replay full (small-scale) training runs; under the race
// detector they exceed the 10-minute package timeout, and the DeepWalk
// baseline is deliberately lock-free HOGWILD, which the detector correctly
// reports. Race coverage of the production paths lives in the per-package
// suites (train, storage, dist, serve, obs), so these reproductions run
// only in the non-instrumented test job.
//
//go:build !race

package bench

import (
	"fmt"
	"strings"
	"testing"
)

// The bench tests run every experiment at SmallScale and assert the paper's
// qualitative claims (who wins, how memory/time scale), not absolute
// numbers. The medium-scale numbers live in EXPERIMENTS.md.

func TestTable1LiveJournalShape(t *testing.T) {
	rep, err := Table1LiveJournal(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"MRR", "MR", "Hits@10", "mem_MB"}))
	if len(rep.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rep.Rows))
	}
	pbg, _ := rep.FindRow("PBG (1 partition)")
	dw, _ := rep.FindRow("DeepWalk")
	mile1, _ := rep.FindRow("MILE (1 levels)")
	mile3, _ := rep.FindRow("MILE (3 levels)")
	// Everyone beats random (~1/ln(K)·... ≈ 0.05 at K=100).
	for _, r := range rep.Rows {
		if r.Value("MRR") < 0.05 {
			t.Errorf("%s MRR %.3f at/below random", r.Label, r.Value("MRR"))
		}
	}
	// Paper shape: PBG competitive with DeepWalk (within 25% here), MILE
	// degrades as levels grow.
	if pbg.Value("MRR") < dw.Value("MRR")*0.75 {
		t.Errorf("PBG MRR %.3f far below DeepWalk %.3f", pbg.Value("MRR"), dw.Value("MRR"))
	}
	if mile3.Value("MRR") > mile1.Value("MRR")*1.15 {
		t.Errorf("MILE should not improve with more levels: L1 %.3f vs L3 %.3f",
			mile1.Value("MRR"), mile3.Value("MRR"))
	}
	// Memory: PBG single table < DeepWalk's two tables.
	if pbg.Value("mem_MB") >= dw.Value("mem_MB") {
		t.Errorf("PBG memory %.2f not below DeepWalk %.2f", pbg.Value("mem_MB"), dw.Value("mem_MB"))
	}
}

func TestTable1YouTubeShape(t *testing.T) {
	rep, err := Table1YouTube(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"Micro-F1", "Macro-F1"}))
	pbg, ok := rep.FindRow("PBG (1 partition)")
	if !ok {
		t.Fatal("missing PBG row")
	}
	// All methods must beat the majority-class floor by a clear margin.
	for _, r := range rep.Rows {
		if r.Value("Micro-F1") < 0.2 {
			t.Errorf("%s micro-F1 %.3f too weak", r.Label, r.Value("Micro-F1"))
		}
	}
	// Paper: PBG comparable (slightly better); require within 20% of best.
	best := 0.0
	for _, r := range rep.Rows {
		if v := r.Value("Micro-F1"); v > best {
			best = v
		}
	}
	if pbg.Value("Micro-F1") < best*0.8 {
		t.Errorf("PBG micro-F1 %.3f not comparable to best %.3f", pbg.Value("Micro-F1"), best)
	}
}

func TestTable2FB15kShape(t *testing.T) {
	rep, err := Table2FB15k(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"MRR-raw", "MRR-filt", "Hits@10"}))
	transe, ok := rep.FindRow("PBG (TransE)")
	if !ok {
		t.Fatal("missing TransE row")
	}
	complex, ok := rep.FindRow("PBG (ComplEx)")
	if !ok {
		t.Fatal("missing ComplEx row")
	}
	for _, r := range []Row{transe, complex} {
		// Filtered MRR ≥ raw MRR, always (removing true edges can only help).
		if r.Value("MRR-filt") < r.Value("MRR-raw")-1e-9 {
			t.Errorf("%s filtered MRR %.3f below raw %.3f", r.Label, r.Value("MRR-filt"), r.Value("MRR-raw"))
		}
		// Must be far above random (1/entities ≈ 0.0007 for CandidatesAll).
		if r.Value("MRR-filt") < 0.05 {
			t.Errorf("%s filtered MRR %.3f too weak", r.Label, r.Value("MRR-filt"))
		}
	}
}

func TestTable3PartitionsShape(t *testing.T) {
	rep, err := Table3Partitions(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"MRR", "Hits@10", "time_s", "mem_MB"}))
	if len(rep.Rows) != 4 {
		t.Fatalf("want 4 rows")
	}
	p1 := rep.Rows[0]
	p16 := rep.Rows[3]
	// Memory must fall steeply with partitions (paper: 59.6 → 6.8 GB, 88%).
	if p16.Value("mem_MB") > p1.Value("mem_MB")*0.5 {
		t.Errorf("16-partition memory %.2f not well below 1-partition %.2f",
			p16.Value("mem_MB"), p1.Value("mem_MB"))
	}
	// MRR stays in the same band (paper: 0.170 vs 0.174).
	if p16.Value("MRR") < p1.Value("MRR")*0.7 {
		t.Errorf("partitioned MRR %.3f collapsed vs %.3f", p16.Value("MRR"), p1.Value("MRR"))
	}
}

func TestFigure1OrderingShape(t *testing.T) {
	rep, err := Figure1Ordering(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"MRR", "Hits@10", "swaps", "IO/epoch", "invariant"}))
	io, _ := rep.FindRow("inside_out")
	rnd, _ := rep.FindRow("random")
	// Swap efficiency is deterministic: inside-out must beat random.
	if io.Value("swaps") >= rnd.Value("swaps") {
		t.Errorf("inside-out swaps %.0f not below random %.0f", io.Value("swaps"), rnd.Value("swaps"))
	}
	if io.Value("invariant") != 1 {
		t.Error("inside-out must satisfy the initialisation invariant")
	}
}

func TestFigure4NegativesShape(t *testing.T) {
	rep, err := Figure4Negatives(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"Bn", "edges/s"}))
	get := func(label string) float64 {
		r, ok := rep.FindRow(label)
		if !ok {
			t.Fatalf("missing row %s", label)
		}
		return r.Value("edges/s")
	}
	// Unbatched decays steeply with Bn (paper: inverse-linear).
	if get("unbatched Bn=500") > get("unbatched Bn=10")/4 {
		t.Errorf("unbatched throughput should decay steeply: Bn=10 %.0f vs Bn=500 %.0f",
			get("unbatched Bn=10"), get("unbatched Bn=500"))
	}
	// Batched dominates unbatched at every Bn (the gather-reuse effect of
	// Figure 3; the flat-GEMM region needs MKL-class kernels, see note).
	for _, bn := range []int{10, 20, 50, 100, 200, 500} {
		b := get(fmt.Sprintf("batched Bn=%d", bn))
		ub := get(fmt.Sprintf("unbatched Bn=%d", bn))
		if b < ub*1.2 {
			t.Errorf("batched %.0f not clearly above unbatched %.0f at Bn=%d", b, ub, bn)
		}
	}
}

func TestFigure5CurvesShape(t *testing.T) {
	curves, err := Figure5LearningCurves(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		t.Log("\n" + c.String())
	}
	if len(curves) != 3 {
		t.Fatalf("want 3 curves, got %d", len(curves))
	}
	// PBG's curve must rise.
	pbg := curves[0]
	if pbg.Label != "PBG" {
		t.Fatalf("first curve %s", pbg.Label)
	}
	if len(pbg.MRR) < 2 || pbg.MRR[len(pbg.MRR)-1] <= pbg.MRR[0]*0.9 {
		t.Errorf("PBG curve not rising: %v", pbg.MRR)
	}
	// Wallclock stamps strictly increase.
	for i := 1; i < len(pbg.Seconds); i++ {
		if pbg.Seconds[i] <= pbg.Seconds[i-1] {
			t.Error("non-increasing time stamps")
		}
	}
}

func TestOrderingSweepShape(t *testing.T) {
	rep, err := OrderingSweep(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"proj_swaps", "forced_evicts", "iowait%", "edges/s", "order_ms"}))
	// 6 trained rows (3 slot counts × 2 orders) + 6 large-P projection rows.
	if len(rep.Rows) != 12 {
		t.Fatalf("want 12 rows, got %d", len(rep.Rows))
	}
	var ioEvicts, baEvicts float64
	for _, slots := range []int{3, 4, 6} {
		io, ok := rep.FindRow(fmt.Sprintf("inside_out slots=%d", slots))
		if !ok {
			t.Fatalf("missing inside_out row at slots=%d", slots)
		}
		ba, ok := rep.FindRow(fmt.Sprintf("budget_aware slots=%d", slots))
		if !ok {
			t.Fatalf("missing budget_aware row at slots=%d", slots)
		}
		// The deterministic half of the claim: the optimized order projects
		// strictly fewer partition loads under the buffer it targeted.
		if ba.Value("proj_swaps") >= io.Value("proj_swaps") {
			t.Errorf("slots=%d: budget_aware proj_swaps %.0f not below inside_out %.0f",
				slots, ba.Value("proj_swaps"), io.Value("proj_swaps"))
		}
		ioEvicts += io.Value("forced_evicts")
		baEvicts += ba.Value("forced_evicts")
	}
	// The measured half: across the sweep the optimized order must not force
	// more evictions at the same budgets (summed over buffer sizes to damp
	// prefetch-timing noise in any single cell).
	if baEvicts > ioEvicts {
		t.Errorf("budget_aware forced %.0f evictions vs inside_out %.0f across the sweep", baEvicts, ioEvicts)
	}
	// Large-grid projection rows: the closed-form path must beat inside_out
	// and order in milliseconds (generous bound for slow CI machines; the
	// greedy search it replaces takes ~0.7s at P=96 alone).
	for _, p := range []int{64, 96, 128} {
		io, ok := rep.FindRow(fmt.Sprintf("inside_out P=%d slots=8", p))
		if !ok {
			t.Fatalf("missing inside_out large-P row for P=%d", p)
		}
		var ba Row
		ok = false
		for _, row := range rep.Rows {
			if strings.HasPrefix(row.Label, "budget_aware(") && strings.HasSuffix(row.Label, fmt.Sprintf("P=%d slots=8", p)) {
				ba, ok = row, true
			}
		}
		if !ok {
			t.Fatalf("missing budget_aware large-P row for P=%d", p)
		}
		if ba.Value("proj_swaps") >= io.Value("proj_swaps") {
			t.Errorf("P=%d: budget_aware proj_swaps %.0f not below inside_out %.0f", p, ba.Value("proj_swaps"), io.Value("proj_swaps"))
		}
		if ms := ba.Value("order_ms"); ms > 500 {
			t.Errorf("P=%d: ordering took %.0fms, want milliseconds", p, ms)
		}
	}
}

func TestAblationAlphaShape(t *testing.T) {
	rep, err := AblationAlpha(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"MRR-uniform", "MRR-prevalence"}))
	if len(rep.Rows) != 5 {
		t.Fatalf("want 5 rows")
	}
}

func TestAblationStratumShape(t *testing.T) {
	rep, err := AblationStratum(SmallScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"MRR-after-1-epoch", "IO/epoch"}))
	// IO grows with strata.
	if rep.Rows[2].Value("IO/epoch") <= rep.Rows[0].Value("IO/epoch") {
		t.Error("stratified epochs must cost more partition IO")
	}
}

func TestCodecSweepShape(t *testing.T) {
	rep, err := CodecSweep(SmallScale, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Format([]string{"bytes/row", "xfp32", "shard_MB", "write_MB/s", "read_MB/s", "lookahead"}))
	if len(rep.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rep.Rows))
	}
	fp32, _ := rep.FindRow("fp32")
	fp16, _ := rep.FindRow("fp16")
	int8r, _ := rep.FindRow("int8")
	// The acceptance claim: the quantized codecs shrink shard bytes, with
	// int8 at least 2× below fp32 (4+dim+4 vs 4dim+4 bytes per row).
	if int8r.Value("bytes/row")*2 > fp32.Value("bytes/row") {
		t.Errorf("int8 %.1f bytes/row not ≥2x below fp32 %.1f",
			int8r.Value("bytes/row"), fp32.Value("bytes/row"))
	}
	if fp16.Value("bytes/row") >= fp32.Value("bytes/row") {
		t.Errorf("fp16 %.1f bytes/row not below fp32 %.1f",
			fp16.Value("bytes/row"), fp32.Value("bytes/row"))
	}
	// Smaller shards must widen (never narrow) the lookahead the same byte
	// budget affords — the controller prices its window in codec bytes.
	if int8r.Value("lookahead") <= fp32.Value("lookahead") {
		t.Errorf("int8 lookahead %.0f not above fp32 %.0f at the same budget",
			int8r.Value("lookahead"), fp32.Value("lookahead"))
	}
	if fp16.Value("lookahead") < fp32.Value("lookahead") {
		t.Errorf("fp16 lookahead %.0f below fp32 %.0f at the same budget",
			fp16.Value("lookahead"), fp32.Value("lookahead"))
	}
	for _, r := range rep.Rows {
		if r.Value("write_MB/s") <= 0 || r.Value("read_MB/s") <= 0 {
			t.Errorf("%s reports non-positive throughput", r.Label)
		}
	}
}

func TestReportFormat(t *testing.T) {
	rep := &Report{ID: "x", Title: "T", Rows: []Row{{Label: "a", Values: map[string]float64{"m": 0.5}}}}
	s := rep.Format([]string{"m", "missing"})
	if !strings.Contains(s, "0.500") || !strings.Contains(s, "-") {
		t.Fatalf("bad format: %s", s)
	}
}
