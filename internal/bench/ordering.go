package bench

import (
	"fmt"
	"os"
	"time"

	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// OrderingSweep validates the budget-aware bucket ordering (Marius-style
// BETA ordering; ROADMAP follow-up to the PR 3 memory budget): inside_out
// versus budget_aware on a DiskStore whose admission budget affords 3, 4,
// and 6 resident partition slots. For each configuration it reports the
// analytically projected partition loads under that buffer
// (partition.SwapCostUnderBuffer on the trainer's actual order), the
// ForcedEvicts the store really performed, the IOWait share, and training
// throughput. The claim under test: at the same MemBudgetBytes the
// optimized order forces fewer evictions — the cost model's projection
// made real — without an edges/s regression.
func OrderingSweep(s Scale) (*Report, error) {
	const parts = 8
	rep := &Report{ID: "ordering", Title: "Budget-aware bucket ordering (buffer-bounded swap I/O)"}
	for _, slots := range []int{3, 4, 6} {
		for _, ord := range []string{partition.OrderInsideOut, partition.OrderBudgetAware} {
			g, err := socialGraph(s, parts, s.Seed)
			if err != nil {
				return nil, err
			}
			dir, err := os.MkdirTemp("", "pbgorder")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			store, err := storage.NewDiskStore(dir, g.Schema, s.Dim, s.Seed+1, 1)
			if err != nil {
				return nil, err
			}
			// One slot = one partition shard of the single entity type; the
			// budget adds the one-in-flight-shard allowance the trainer's
			// slot pricing sets aside, so BufferSlots comes out at `slots`
			// exactly. Lookahead is pinned at 1 so both orders run the same
			// pipeline depth and the order is the only variable.
			perShard := storage.ProjectedShardBytes(g.Schema, s.Dim, 0, 0)
			tr, err := train.New(g, store, train.Config{
				Dim: s.Dim, Epochs: s.Epochs, Workers: s.Workers, Seed: s.Seed,
				BucketOrder: ord, MemBudgetBytes: int64(slots+1) * perShard,
				Lookahead: 1, MaxLookahead: 1,
			})
			if err != nil {
				_ = store.Close()
				return nil, err
			}
			if got := tr.BufferSlots(); got != slots {
				_ = store.Close()
				return nil, fmt.Errorf("bench: trainer priced %d buffer slots, want %d", got, slots)
			}
			projected := partition.SwapCostUnderBuffer(tr.Buckets(), slots)

			var edges int
			var ioWait, total time.Duration
			stats, err := tr.Train(nil)
			if err != nil {
				_ = store.Close()
				return nil, err
			}
			for _, st := range stats {
				edges += st.Edges
				ioWait += st.IOWait
				total += st.Duration
			}
			ioStats := store.IOStats()
			if err := store.Close(); err != nil {
				return nil, err
			}
			row := Row{Label: fmt.Sprintf("%s slots=%d", ord, slots), Values: map[string]float64{
				"proj_swaps":    float64(projected),
				"forced_evicts": float64(ioStats.ForcedEvicts),
				"iowait%":       100 * ioWait.Seconds() / total.Seconds(),
				"edges/s":       float64(edges) / total.Seconds(),
			}}
			rep.Rows = append(rep.Rows, row)
		}
	}
	// Large-grid rows: past the greedy-search cutoff the closed-form BETA
	// schedules take over, so bucket ordering must stay in the low
	// milliseconds while still collapsing projected loads. These rows are
	// projection-only (training a 128×128 grid is a different experiment);
	// order_ms is the full planning wall time, including the cost-model
	// comparisons budget_aware runs to pick its strategy.
	for _, p := range []int{64, 96, 128} {
		const slots = 8
		start := time.Now()
		plan := partition.PlanBudgetAware(p, p, slots)
		orderMS := float64(time.Since(start).Microseconds()) / 1000
		if !partition.CheckInvariant(plan.Order) {
			return nil, fmt.Errorf("bench: budget_aware order for %d×%d violates the invariant", p, p)
		}
		rep.Rows = append(rep.Rows, Row{
			Label:  fmt.Sprintf("inside_out P=%d slots=%d", p, slots),
			Values: map[string]float64{"proj_swaps": float64(plan.BaseCost), "order_ms": 0},
		})
		rep.Rows = append(rep.Rows, Row{
			Label:  fmt.Sprintf("budget_aware(%s) P=%d slots=%d", plan.Strategy, p, slots),
			Values: map[string]float64{"proj_swaps": float64(plan.Cost), "order_ms": orderMS},
		})
	}
	rep.Notes = "budget_aware orders buckets against the partition buffer the budget affords (Marius BETA-style); proj_swaps is the cost model, forced_evicts the store's measured evictions at that budget; large-P rows are projection-only and report ordering wall time (closed-form grouped/strided schedules, not the greedy search)"
	return rep, nil
}
