package bench

import (
	"fmt"
	"os"
	"time"

	"pbg/internal/datagen"
	"pbg/internal/dist"
	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/partition"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// kgGraph builds the Freebase stand-in at the given scale and partition
// count. Relations use the requested operator.
func kgGraph(s Scale, parts int, operator string) (*graph.Graph, error) {
	g, err := datagen.Knowledge(datagen.KGConfig{
		Entities: s.KGEntities, Relations: s.KGRelations, Edges: s.KGEdges,
		NumPartitions: parts, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	if operator != "" {
		for i := range g.Schema.Relations {
			g.Schema.Relations[i].Operator = operator
		}
	}
	return g, nil
}

// fb15kLiterature holds the published FB15k rows of Table 2 for printing
// next to our measured PBG rows (the baselines are literature numbers in
// the paper too).
var fb15kLiterature = []Row{
	{Label: "RESCAL (lit.)", Values: map[string]float64{"MRR-raw": 0.189, "MRR-filt": 0.354, "Hits@10": 0.587}},
	{Label: "TransE (lit.)", Values: map[string]float64{"MRR-raw": 0.222, "MRR-filt": 0.463, "Hits@10": 0.749}},
	{Label: "ComplEx (lit.)", Values: map[string]float64{"MRR-raw": 0.242, "MRR-filt": 0.692, "Hits@10": 0.840}},
	{Label: "PBG-paper (TransE)", Values: map[string]float64{"MRR-raw": 0.265, "MRR-filt": 0.594, "Hits@10": 0.785}},
	{Label: "PBG-paper (ComplEx)", Values: map[string]float64{"MRR-raw": 0.242, "MRR-filt": 0.790, "Hits@10": 0.872}},
}

// Table2FB15k reproduces Table 2: PBG configured as TransE and as ComplEx
// (with reciprocal relations and a softmax loss, §5.4.1) on the FB15k
// stand-in, reporting raw and filtered MRR and filtered Hits@10 under the
// standard both-sides full-candidate protocol.
func Table2FB15k(s Scale) (*Report, error) {
	g, err := kgGraph(s, 1, "")
	if err != nil {
		return nil, err
	}
	trainG, validG, testG := g.Split(0.05, 0.05, 5)
	known := graph.NewEdgeSet(trainG.Edges, validG.Edges, testG.Edges)
	deg := graph.ComputeDegrees(trainG)
	rep := &Report{ID: "table2", Title: "FB15k link prediction (paper Table 2)"}
	rep.Rows = append(rep.Rows, fb15kLiterature...)

	type variant struct {
		label      string
		operator   string
		comparator string
		loss       string
		reciprocal bool
	}
	variants := []variant{
		{"PBG (TransE)", "translation", "cos", "ranking", false},
		{"PBG (ComplEx)", "complex_diagonal", "dot", "softmax", true},
	}
	for _, v := range variants {
		for i := range g.Schema.Relations {
			g.Schema.Relations[i].Operator = v.operator
		}
		store := storage.NewMemStore(g.Schema, s.Dim, s.Seed+1, 1)
		// Grid-searched hyperparameters (§5.1 searches lr, margin and
		// negative batch size per dataset).
		tr, err := train.New(trainG, store, train.Config{
			Dim: s.Dim, Epochs: s.KGEpochs, Workers: s.Workers, Seed: s.Seed,
			Comparator: v.comparator, Loss: v.loss, Reciprocal: v.reciprocal,
			LR: 0.5, UniformNegs: 150, NegAlpha: 0.1, Margin: 0.2,
		})
		if err != nil {
			return nil, err
		}
		if _, err := tr.Train(nil); err != nil {
			return nil, err
		}
		view := tr.NewView()
		rk := eval.NewRanker(trainG.Schema, view, tr, s.Dim, deg)
		raw, err := rk.Evaluate(testG.Edges, eval.Config{
			Mode: eval.CandidatesAll, MaxEdges: s.EvalEdges, BothSides: true, Seed: 1,
		})
		if err != nil {
			_ = view.Close()
			return nil, err
		}
		filt, err := rk.Evaluate(testG.Edges, eval.Config{
			Mode: eval.CandidatesAll, MaxEdges: s.EvalEdges, BothSides: true, Seed: 1,
			Filtered: true, Known: known,
		})
		_ = view.Close()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Row{Label: v.label, Values: map[string]float64{
			"MRR-raw": raw.MRR, "MRR-filt": filt.MRR, "Hits@10": filt.Hits10,
		}})
	}
	rep.Notes = "literature rows are the paper's published values; PBG rows are measured on the synthetic FB15k stand-in"
	return rep, nil
}

// Table3Partitions reproduces Table 3 (left): the full-Freebase stand-in
// trained on a single machine with 1, 4, 8 and 16 partitions, reporting
// MRR, Hits@10 (raw, prevalence candidates — §5.4.2's protocol), training
// time and peak model memory. The headline claim: memory drops almost
// linearly with partitions at nearly unchanged MRR.
func Table3Partitions(s Scale) (*Report, error) {
	return partitionSweep(s, "table3-left", "Freebase partition sweep (paper Table 3, left)",
		func(parts int) (*graph.Graph, error) { return kgGraph(s, parts, "translation") })
}

// Table3Distributed reproduces Table 3 (right): distributed training on
// 1, 2, 4 and 8 machines with 2M partitions.
func Table3Distributed(s Scale) (*Report, error) {
	return distributedSweep(s, "table3-right", "Freebase distributed sweep (paper Table 3, right)",
		func(parts int) (*graph.Graph, error) { return kgGraph(s, parts, "translation") })
}

// partitionSweep is the shared single-machine sweep used by Tables 3–4.
func partitionSweep(s Scale, id, title string, build func(parts int) (*graph.Graph, error)) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	for _, parts := range []int{1, 4, 8, 16} {
		g, err := build(parts)
		if err != nil {
			return nil, err
		}
		trainG, _, testG := g.Split(0.05, 0.05, 5)
		deg := graph.ComputeDegrees(trainG)

		var store storage.Store
		if parts == 1 {
			store = storage.NewMemStore(g.Schema, s.Dim, s.Seed+1, 1)
		} else {
			dir, err := os.MkdirTemp("", "pbgsweep")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			ds, err := storage.NewDiskStore(dir, g.Schema, s.Dim, s.Seed+1, 1)
			if err != nil {
				return nil, err
			}
			store = ds
		}
		cfg := train.Config{Dim: s.Dim, Epochs: s.Epochs, Workers: s.Workers, Seed: s.Seed}
		if parts > 1 {
			// Bound the partitioned runs to their bucket working set (two
			// shards, plus one in-flight shard of allowance): the §5.4.2
			// memory column then reports the budget the shard cache actually
			// enforces, not whatever prefetch or write-back transients happen
			// to be in flight when the peak is sampled — which is also what
			// makes the "memory falls with partitions" shape deterministic at
			// this toy scale.
			var shards int64
			for ti := range g.Schema.Entities {
				shards += storage.ProjectedShardBytes(g.Schema, s.Dim, ti, 0)
			}
			cfg.MemBudgetBytes = 3 * shards
		}
		tr, err := train.New(trainG, store, cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := tr.Train(nil); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)

		view := tr.NewView()
		rk := eval.NewRanker(trainG.Schema, view, tr, s.Dim, deg)
		m, err := rk.Evaluate(testG.Edges, eval.Config{
			Mode: eval.CandidatesPrevalence, K: s.EvalK, MaxEdges: s.EvalEdges, Seed: 1,
		})
		_ = view.Close()
		if err != nil {
			return nil, err
		}
		peak := tr.PeakResidentBytes()
		rep.Rows = append(rep.Rows, Row{Label: fmt.Sprintf("%d partitions", parts), Values: map[string]float64{
			"MRR": m.MRR, "Hits@10": m.Hits10,
			"time_s": seconds(elapsed), "mem_MB": mb(peak),
		}})
	}
	rep.Notes = "paper shape: memory falls ~linearly with partitions; MRR stays flat; time rises slightly from swap I/O"
	return rep, nil
}

// distributedSweep is the shared multi-machine sweep used by Tables 3–4:
// M machines with 2M partitions (the paper's minimum for that parallelism).
func distributedSweep(s Scale, id, title string, build func(parts int) (*graph.Graph, error)) (*Report, error) {
	rep := &Report{ID: id, Title: title}
	for _, machines := range []int{1, 2, 4, 8} {
		parts := 2 * machines
		if machines == 1 {
			parts = 1
		}
		g, err := build(parts)
		if err != nil {
			return nil, err
		}
		trainG, _, testG := g.Split(0.05, 0.05, 5)
		deg := graph.ComputeDegrees(trainG)
		order, err := partition.Order(partition.OrderInsideOut, g.Schema.MaxPartitions(), g.Schema.MaxPartitions(), 0)
		if err != nil {
			return nil, err
		}
		// One worker per machine: simulated machines share this host's
		// cores, so wall-clock speedup is only meaningful while machines ≤
		// physical cores (see EXPERIMENTS.md).
		cl, err := dist.NewCluster(trainG, order, dist.ClusterConfig{
			Machines: machines,
			Seed:     s.Seed + 1,
			Train:    train.Config{Dim: s.Dim, Workers: 1, Seed: s.Seed},
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var peak int64
		for e := 0; e < s.Epochs; e++ {
			st, err := cl.RunEpoch()
			if err != nil {
				cl.Shutdown()
				return nil, err
			}
			for _, ns := range st.PerNode {
				if ns.PeakResident > peak {
					peak = ns.PeakResident
				}
			}
		}
		elapsed := time.Since(start)

		store, err := cl.EvalStore()
		if err != nil {
			cl.Shutdown()
			return nil, err
		}
		view := train.NewStoreView(store, trainG.Schema)
		rk := eval.NewRanker(trainG.Schema, view, cl.Nodes[0].Trainer(), s.Dim, deg)
		m, err := rk.Evaluate(testG.Edges, eval.Config{
			Mode: eval.CandidatesPrevalence, K: s.EvalK, MaxEdges: s.EvalEdges, Seed: 1,
		})
		_ = view.Close()
		_ = store.Close()
		cl.Shutdown()
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, Row{Label: fmt.Sprintf("%d machines / %d parts", machines, parts), Values: map[string]float64{
			"MRR": m.MRR, "Hits@10": m.Hits10,
			"time_s": seconds(elapsed), "mem_MB": mb(peak),
		}})
	}
	rep.Notes = "paper shape: wallclock falls with machines (4x at 8 machines for Freebase, near-linear for Twitter); MRR approximately flat"
	return rep, nil
}

// Figure6FreebaseCurves reproduces Figure 6: MRR as a function of epoch and
// of wallclock time for 1, 2, 4 and 8 machines on the Freebase stand-in.
func Figure6FreebaseCurves(s Scale) ([]*eval.Curve, error) {
	return distributedCurves(s, func(parts int) (*graph.Graph, error) { return kgGraph(s, parts, "translation") })
}

func distributedCurves(s Scale, build func(parts int) (*graph.Graph, error)) ([]*eval.Curve, error) {
	var curves []*eval.Curve
	for _, machines := range []int{1, 2, 4, 8} {
		parts := 2 * machines
		if machines == 1 {
			parts = 1
		}
		g, err := build(parts)
		if err != nil {
			return nil, err
		}
		trainG, _, testG := g.Split(0.05, 0.05, 5)
		deg := graph.ComputeDegrees(trainG)
		order, err := partition.Order(partition.OrderInsideOut, g.Schema.MaxPartitions(), g.Schema.MaxPartitions(), 0)
		if err != nil {
			return nil, err
		}
		cl, err := dist.NewCluster(trainG, order, dist.ClusterConfig{
			Machines: machines,
			Seed:     s.Seed + 1,
			Train:    train.Config{Dim: s.Dim, Workers: 1, Seed: s.Seed},
		})
		if err != nil {
			return nil, err
		}
		curve := &eval.Curve{Label: fmt.Sprintf("%d machines", machines)}
		var cum time.Duration
		for e := 0; e < s.Epochs; e++ {
			st, err := cl.RunEpoch()
			if err != nil {
				cl.Shutdown()
				return nil, err
			}
			cum += st.Duration
			store, err := cl.EvalStore()
			if err != nil {
				cl.Shutdown()
				return nil, err
			}
			view := train.NewStoreView(store, trainG.Schema)
			rk := eval.NewRanker(trainG.Schema, view, cl.Nodes[0].Trainer(), s.Dim, deg)
			m, err := rk.Evaluate(testG.Edges, eval.Config{
				Mode: eval.CandidatesPrevalence, K: s.EvalK, MaxEdges: s.EvalEdges / 2, Seed: 1,
			})
			_ = view.Close()
			_ = store.Close()
			if err != nil {
				cl.Shutdown()
				return nil, err
			}
			curve.Add(e+1, seconds(cum), m.MRR)
		}
		cl.Shutdown()
		curves = append(curves, curve)
	}
	return curves, nil
}
