package bench

import (
	"fmt"
	"time"

	"pbg/internal/baselines"
	"pbg/internal/classify"
	"pbg/internal/datagen"
	"pbg/internal/eval"
	"pbg/internal/graph"
	"pbg/internal/storage"
	"pbg/internal/train"
	"pbg/internal/vec"
)

// socialGraph builds the LiveJournal stand-in at the given scale.
func socialGraph(s Scale, parts int, seed uint64) (*graph.Graph, error) {
	return datagen.Social(datagen.SocialConfig{
		Nodes: s.SocialNodes, AvgOutDegree: s.SocialDeg,
		NumPartitions: parts, Seed: seed,
	})
}

// evalUniform runs the Table-1 protocol: rank the true endpoint among
// uniformly sampled corrupted edges.
func evalUniform(s Scale, schema *graph.Schema, emb eval.EmbeddingSource, sc eval.ScorerSource, deg *graph.Degrees, test *graph.EdgeList) (eval.Metrics, error) {
	rk := eval.NewRanker(schema, emb, sc, s.Dim, deg)
	return rk.Evaluate(test, eval.Config{
		Mode: eval.CandidatesUniform, K: s.EvalK, MaxEdges: s.EvalEdges, Seed: 1,
	})
}

// Table1LiveJournal reproduces Table 1 (left): link prediction on the
// LiveJournal stand-in for DeepWalk, MILE (1 and 3 levels) and PBG with one
// partition, reporting MRR, MR, Hits@10 and model memory.
func Table1LiveJournal(s Scale) (*Report, error) {
	g, err := socialGraph(s, 1, s.Seed)
	if err != nil {
		return nil, err
	}
	// The paper's 75/25 split.
	trainG, _, testG := g.Split(0, 0.25, 5)
	deg := graph.ComputeDegrees(trainG)
	rep := &Report{ID: "table1-left", Title: "LiveJournal link prediction (paper Table 1, left)"}

	addBaseline := func(label string, emb *baselines.EmbeddingTable, memBytes int64) error {
		m, err := evalUniform(s, trainG.Schema, emb, emb, deg, testG.Edges)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, Row{Label: label, Values: map[string]float64{
			"MRR": m.MRR, "MR": m.MR, "Hits@10": m.Hits10, "mem_MB": mb(memBytes),
		}})
		return nil
	}

	// DeepWalk.
	dw, err := baselines.TrainDeepWalk(trainG, baselines.DeepWalkConfig{
		Dim: s.Dim, Epochs: 1, WalksPer: 5, WalkLen: 30, Workers: s.Workers, Seed: s.Seed,
	}, nil)
	if err != nil {
		return nil, err
	}
	dwTable, err := baselines.NewEmbeddingTable(dw.In)
	if err != nil {
		return nil, err
	}
	if err := addBaseline("DeepWalk", dwTable, dw.MemoryBytes()); err != nil {
		return nil, err
	}

	// MILE at 1 and 3 levels (the paper sweeps 1 and 5).
	for _, levels := range []int{1, 3} {
		mm, err := baselines.TrainMILE(trainG, baselines.MILEConfig{
			Levels: levels,
			Base:   baselines.DeepWalkConfig{Dim: s.Dim, Epochs: 1, WalksPer: 5, WalkLen: 30, Workers: s.Workers},
			Seed:   s.Seed,
		})
		if err != nil {
			return nil, err
		}
		mt, err := baselines.NewEmbeddingTable(mm.Emb)
		if err != nil {
			return nil, err
		}
		if err := addBaseline(fmt.Sprintf("MILE (%d levels)", levels), mt, mm.MemoryBytes()); err != nil {
			return nil, err
		}
	}

	// PBG, 1 partition, with the dataset-tuned configuration (the paper
	// grid-searches lr/margin/negatives per dataset, §5.1).
	store := storage.NewMemStore(trainG.Schema, s.Dim, s.Seed+1, 1)
	tr, err := train.New(trainG, store, train.Config{
		Dim: s.Dim, Epochs: s.SocialEpochs, Workers: s.Workers, Seed: s.Seed,
		Comparator: "cos", Loss: "softmax",
	})
	if err != nil {
		return nil, err
	}
	if _, err := tr.Train(nil); err != nil {
		return nil, err
	}
	view := tr.NewView()
	defer view.Close()
	m, err := evalUniform(s, trainG.Schema, view, tr, deg, testG.Edges)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, Row{Label: "PBG (1 partition)", Values: map[string]float64{
		"MRR": m.MRR, "MR": m.MR, "Hits@10": m.Hits10, "mem_MB": mb(modelBytes(trainG.Schema, s.Dim)),
	}})
	rep.Notes = "paper: PBG MRR 0.749 vs DeepWalk 0.691, MILE degrades with levels; memory PBG < DeepWalk"
	return rep, nil
}

// Table1YouTube reproduces Table 1 (right): embeddings as features for
// multi-label node classification (micro/macro F1) on the YouTube stand-in.
func Table1YouTube(s Scale) (*Report, error) {
	cg, err := datagen.Community(datagen.CommunityConfig{
		Nodes: s.CommunityNodes, Communities: s.CommunityLabels,
		Edges: s.CommunityEdges, ExtraLabelProb: 0.04, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	g := cg.Graph
	rep := &Report{ID: "table1-right", Title: "YouTube node classification (paper Table 1, right)"}
	clsCfg := classify.Config{Classes: cg.NumClasses, Epochs: 10, Seed: 3}
	// The paper's protocol: 10-fold CV at 90% train. Folds scaled down at
	// small scale for runtime.
	folds := 3

	addRow := func(label string, x vec.Matrix) error {
		res, err := classify.CrossValidate(x, cg.Labels, clsCfg, folds, 0.9)
		if err != nil {
			return err
		}
		rep.Rows = append(rep.Rows, Row{Label: label, Values: map[string]float64{
			"Micro-F1": res.MicroF1, "Macro-F1": res.MacroF1,
		}})
		return nil
	}

	dw, err := baselines.TrainDeepWalk(g, baselines.DeepWalkConfig{
		Dim: s.Dim, Epochs: 1, WalksPer: 5, WalkLen: 30, Workers: s.Workers, Seed: s.Seed,
	}, nil)
	if err != nil {
		return nil, err
	}
	if err := addRow("DeepWalk", dw.In); err != nil {
		return nil, err
	}

	mm, err := baselines.TrainMILE(g, baselines.MILEConfig{
		Levels: 2,
		Base:   baselines.DeepWalkConfig{Dim: s.Dim, Epochs: 1, WalksPer: 5, WalkLen: 30, Workers: s.Workers},
		Seed:   s.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := addRow("MILE (2 levels)", mm.Emb); err != nil {
		return nil, err
	}

	store := storage.NewMemStore(g.Schema, s.Dim, s.Seed+1, 1)
	tr, err := train.New(g, store, train.Config{
		Dim: s.Dim, Epochs: s.SocialEpochs, Workers: s.Workers, Seed: s.Seed,
		Comparator: "cos", Loss: "softmax",
	})
	if err != nil {
		return nil, err
	}
	if _, err := tr.Train(nil); err != nil {
		return nil, err
	}
	// Materialise PBG features.
	view := tr.NewView()
	defer view.Close()
	pbgX := vec.NewMatrix(g.Schema.Entities[0].Count, s.Dim)
	for id := 0; id < g.Schema.Entities[0].Count; id++ {
		if _, err := view.Embedding(0, int32(id), pbgX.Row(id)); err != nil {
			return nil, err
		}
	}
	res, err := classify.CrossValidate(pbgX, cg.Labels, clsCfg, folds, 0.9)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, Row{Label: "PBG (1 partition)", Values: map[string]float64{
		"Micro-F1": res.MicroF1, "Macro-F1": res.MacroF1,
	}})
	rep.Notes = "paper: PBG 48.0/40.9 vs DeepWalk 45.2/34.7 — PBG comparable or slightly better"
	return rep, nil
}

// Figure5LearningCurves reproduces Figure 5: test MRR as a function of
// wallclock training time for PBG, DeepWalk and MILE on the LiveJournal
// stand-in.
func Figure5LearningCurves(s Scale) ([]*eval.Curve, error) {
	g, err := socialGraph(s, 1, s.Seed)
	if err != nil {
		return nil, err
	}
	trainG, _, testG := g.Split(0, 0.25, 5)
	deg := graph.ComputeDegrees(trainG)
	var curves []*eval.Curve

	// PBG curve: evaluate after each epoch; the clock counts training time
	// only, as in the paper.
	store := storage.NewMemStore(trainG.Schema, s.Dim, s.Seed+1, 1)
	tr, err := train.New(trainG, store, train.Config{
		Dim: s.Dim, Epochs: s.SocialEpochs, Workers: s.Workers, Seed: s.Seed,
		Comparator: "cos", Loss: "softmax",
	})
	if err != nil {
		return nil, err
	}
	pbgCurve := &eval.Curve{Label: "PBG"}
	var cum time.Duration
	for e := 0; e < s.SocialEpochs; e++ {
		st, err := tr.TrainEpoch()
		if err != nil {
			return nil, err
		}
		cum += st.Duration
		view := tr.NewView()
		m, err := evalUniform(s, trainG.Schema, view, tr, deg, testG.Edges)
		_ = view.Close()
		if err != nil {
			return nil, err
		}
		pbgCurve.Add(e+1, seconds(cum), m.MRR)
	}
	curves = append(curves, pbgCurve)

	// DeepWalk curve.
	dwCurve := &eval.Curve{Label: "DeepWalk"}
	dwStart := time.Now()
	_, err = baselines.TrainDeepWalk(trainG, baselines.DeepWalkConfig{
		Dim: s.Dim, Epochs: s.Epochs / 2, WalksPer: 5, WalkLen: 30, Workers: s.Workers, Seed: s.Seed,
	}, func(st baselines.DeepWalkEpochStats, m *baselines.DeepWalkModel) {
		table, err := baselines.NewEmbeddingTable(m.In)
		if err != nil {
			return
		}
		metrics, err := evalUniform(s, trainG.Schema, table, table, deg, testG.Edges)
		if err != nil {
			return
		}
		dwCurve.Add(st.Epoch+1, time.Since(dwStart).Seconds(), metrics.MRR)
	})
	if err != nil {
		return nil, err
	}
	curves = append(curves, dwCurve)

	// MILE: one point (coarsen+embed+refine is a single pass).
	mileCurve := &eval.Curve{Label: "MILE (2 levels)"}
	mStart := time.Now()
	mm, err := baselines.TrainMILE(trainG, baselines.MILEConfig{
		Levels: 2,
		Base:   baselines.DeepWalkConfig{Dim: s.Dim, Epochs: 1, WalksPer: 5, WalkLen: 30, Workers: s.Workers},
		Seed:   s.Seed,
	})
	if err != nil {
		return nil, err
	}
	mt, err := baselines.NewEmbeddingTable(mm.Emb)
	if err != nil {
		return nil, err
	}
	m, err := evalUniform(s, trainG.Schema, mt, mt, deg, testG.Edges)
	if err != nil {
		return nil, err
	}
	mileCurve.Add(1, time.Since(mStart).Seconds(), m.MRR)
	curves = append(curves, mileCurve)
	return curves, nil
}
