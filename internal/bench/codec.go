package bench

import (
	"fmt"
	"os"
	"time"

	"pbg/internal/rng"
	"pbg/internal/storage"
	"pbg/internal/train"
)

// CodecSweep measures the shard codec matrix: on-disk bytes per row and the
// reduction factor against fp32, encode/decode throughput through the real
// WriteShardCodec/ReadShard path, and the prefetch lookahead the same
// memory budget affords under each codec (the controller prices its window
// projections in codec bytes, so a smaller codec widens the window with no
// other change). Every codec encodes the same randomly initialised shard
// set, so the rows differ only in the codec. short trims the timing loop to
// a single pass for CI.
func CodecSweep(s Scale, short bool) (*Report, error) {
	const parts = 8
	g, err := socialGraph(s, parts, s.Seed)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "pbg-codec-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// One shard set, shared by every codec row.
	r := rng.New(s.Seed)
	var shards []*storage.Shard
	var rows int
	var fp32MB float64 // logical fp32 payload: the bytes every codec must represent
	for t := range g.Schema.Entities {
		for p := 0; p < g.Schema.Entities[t].NumPartitions; p++ {
			sh := storage.NewShard(t, p, g.Schema.Entities[t].PartitionCount(p), s.Dim)
			for i := range sh.Embs {
				sh.Embs[i] = r.NormFloat32()
			}
			for i := range sh.Acc {
				sh.Acc[i] = r.Float32()
			}
			shards = append(shards, sh)
			rows += sh.Count
			fp32MB += mb(int64(sh.Count) * int64(s.Dim+1) * 4)
		}
	}

	// A budget sized in fp32 shards: fp32 can only afford a shallow prefetch
	// window, while the 2–4× smaller codecs fit more shards — and therefore
	// deeper lookahead — inside the identical byte budget.
	budget := 4 * storage.ProjectedShardBytesCodec(g.Schema, s.Dim, 0, 0, storage.CodecFP32)

	// Throughput loops are time-budgeted so fast codecs do not report noise.
	minDuration := 200 * time.Millisecond
	if short {
		minDuration = 0
	}
	var fp32BytesPerRow float64
	rep := &Report{
		ID:    "codec",
		Title: "shard codec sweep: size, throughput, lookahead at a fixed budget",
	}
	for _, codec := range storage.Codecs() {
		paths := make([]string, len(shards))
		for i, sh := range shards {
			paths[i] = fmt.Sprintf("%s/shard_%s_t%d_p%d.pbg", dir, codec, sh.TypeIndex, sh.Part)
		}
		writePass := func() error {
			for i, sh := range shards {
				if err := storage.WriteShardCodec(paths[i], sh, codec); err != nil {
					return err
				}
			}
			return nil
		}
		start := time.Now()
		passes := 0
		for passes == 0 || time.Since(start) < minDuration {
			if err := writePass(); err != nil {
				return nil, err
			}
			passes++
		}
		writeMBs := fp32MB * float64(passes) / seconds(time.Since(start))

		var diskBytes int64
		for _, p := range paths {
			fi, err := os.Stat(p)
			if err != nil {
				return nil, err
			}
			diskBytes += fi.Size()
		}

		start = time.Now()
		passes = 0
		for passes == 0 || time.Since(start) < minDuration {
			for _, p := range paths {
				if _, err := storage.ReadShard(p); err != nil {
					return nil, err
				}
			}
			passes++
		}
		readMBs := fp32MB * float64(passes) / seconds(time.Since(start))

		// The lookahead this codec affords: train.New runs the controller's
		// budget projection (initLookahead) before any epoch, so no training
		// is needed to read the depth off.
		tr, err := train.New(g, storage.NewMemStore(g.Schema, s.Dim, s.Seed+1, 1), train.Config{
			Dim: s.Dim, Epochs: 1, Workers: 1, Seed: s.Seed,
			Codec: codec.String(), MemBudgetBytes: budget,
			Lookahead: 8, MaxLookahead: 8,
		})
		if err != nil {
			return nil, err
		}

		bytesPerRow := float64(diskBytes) / float64(rows)
		if codec == storage.CodecFP32 {
			fp32BytesPerRow = bytesPerRow
		}
		rep.Rows = append(rep.Rows, Row{Label: codec.String(), Values: map[string]float64{
			"bytes/row":  bytesPerRow,
			"xfp32":      fp32BytesPerRow / bytesPerRow,
			"shard_MB":   mb(diskBytes),
			"write_MB/s": writeMBs,
			"read_MB/s":  readMBs,
			"lookahead":  float64(tr.Lookahead()),
		}})
	}
	rep.Notes = fmt.Sprintf("%d rows, dim %d, %d shards; MB/s is fp32 payload processed per second; lookahead at the same %.2f MB budget (cap 8)",
		rows, s.Dim, len(shards), mb(budget))
	return rep, nil
}
