// Package optim implements the optimizers from §3.1 of the paper: Adagrad
// with the accumulated gradient summed over each embedding vector (one
// scalar of state per embedding row, the memory optimisation that makes
// billion-node tables feasible), dense Adagrad for the small shared
// parameters (relation operators), and plain SGD for baselines.
package optim

import "math"

// RowAdagrad updates one embedding row with a shared scalar accumulator:
//
//	A   += ‖g‖²/d
//	row -= lr · g / (√A + ε)
//
// The accumulator lives next to the embedding row in storage (see
// internal/storage) so it swaps to disk with the partition.
type RowAdagrad struct {
	LR  float32
	Eps float32
}

// NewRowAdagrad returns a row optimizer with the given learning rate and a
// conventional ε.
func NewRowAdagrad(lr float32) RowAdagrad {
	return RowAdagrad{LR: lr, Eps: 1e-8}
}

// Update applies one Adagrad step to param given grad, mutating *acc.
// len(param) == len(grad); acc is this row's accumulator.
func (o RowAdagrad) Update(param, grad []float32, acc *float32) {
	var ss float32
	for _, g := range grad {
		ss += g * g
	}
	if ss == 0 {
		return
	}
	*acc += ss / float32(len(grad))
	step := o.LR / (float32(math.Sqrt(float64(*acc))) + o.Eps)
	for i, g := range grad {
		param[i] -= step * g
	}
}

// DenseAdagrad keeps a full per-element accumulator; used for relation
// operator parameters, which are few (§4.2: < 10⁶ shared parameters).
type DenseAdagrad struct {
	LR  float32
	Eps float32
	Acc []float32
}

// NewDenseAdagrad allocates state for n parameters.
func NewDenseAdagrad(lr float32, n int) *DenseAdagrad {
	return &DenseAdagrad{LR: lr, Eps: 1e-8, Acc: make([]float32, n)}
}

// Update applies one Adagrad step to param given grad.
func (o *DenseAdagrad) Update(param, grad []float32) {
	if len(param) != len(grad) || len(param) > len(o.Acc) {
		panic("optim: DenseAdagrad size mismatch")
	}
	for i, g := range grad {
		if g == 0 {
			continue
		}
		o.Acc[i] += g * g
		param[i] -= o.LR * g / (float32(math.Sqrt(float64(o.Acc[i]))) + o.Eps)
	}
}

// Reset zeroes the accumulator (used when reusing state across runs).
func (o *DenseAdagrad) Reset() {
	for i := range o.Acc {
		o.Acc[i] = 0
	}
}

// SGD is plain stochastic gradient descent, provided for the baselines and
// ablations comparing against Adagrad.
type SGD struct {
	LR float32
}

// Update applies param -= lr·grad.
func (o SGD) Update(param, grad []float32) {
	for i, g := range grad {
		param[i] -= o.LR * g
	}
}
