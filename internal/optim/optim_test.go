package optim

import (
	"math"
	"testing"
)

func TestRowAdagradFirstStep(t *testing.T) {
	o := NewRowAdagrad(0.1)
	param := []float32{1, 1}
	grad := []float32{1, -1}
	var acc float32
	o.Update(param, grad, &acc)
	// A = (1+1)/2 = 1; step = 0.1/(1+eps).
	if math.Abs(float64(acc-1)) > 1e-6 {
		t.Fatalf("acc = %v, want 1", acc)
	}
	if math.Abs(float64(param[0]-0.9)) > 1e-5 || math.Abs(float64(param[1]-1.1)) > 1e-5 {
		t.Fatalf("param = %v", param)
	}
}

func TestRowAdagradShrinksSteps(t *testing.T) {
	o := NewRowAdagrad(0.1)
	param := []float32{0}
	var acc float32
	prev := float32(0)
	var steps []float32
	for i := 0; i < 5; i++ {
		o.Update(param, []float32{1}, &acc)
		steps = append(steps, prev-param[0])
		prev = param[0]
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] >= steps[i-1] {
			t.Fatalf("Adagrad steps not decreasing: %v", steps)
		}
	}
}

func TestRowAdagradZeroGradNoop(t *testing.T) {
	o := NewRowAdagrad(0.1)
	param := []float32{3, 4}
	var acc float32 = 2
	o.Update(param, []float32{0, 0}, &acc)
	if param[0] != 3 || param[1] != 4 || acc != 2 {
		t.Fatal("zero gradient must not change state")
	}
}

func TestRowAdagradAccumulatorIsMeanSquare(t *testing.T) {
	o := NewRowAdagrad(1)
	param := make([]float32, 4)
	var acc float32
	o.Update(param, []float32{2, 2, 2, 2}, &acc)
	if math.Abs(float64(acc-4)) > 1e-6 {
		t.Fatalf("acc = %v, want mean square 4", acc)
	}
}

func TestDenseAdagrad(t *testing.T) {
	o := NewDenseAdagrad(0.5, 3)
	param := []float32{1, 1, 1}
	o.Update(param, []float32{1, 0, 2})
	// Elements with zero grad untouched, including their accumulator.
	if param[1] != 1 || o.Acc[1] != 0 {
		t.Fatal("zero-grad element modified")
	}
	if param[0] >= 1 || param[2] >= 1 {
		t.Fatalf("param = %v", param)
	}
	// Per-element accumulators differ.
	if o.Acc[0] != 1 || o.Acc[2] != 4 {
		t.Fatalf("acc = %v", o.Acc)
	}
	o.Reset()
	for _, a := range o.Acc {
		if a != 0 {
			t.Fatal("Reset did not clear accumulator")
		}
	}
}

func TestDenseAdagradSizeMismatchPanics(t *testing.T) {
	o := NewDenseAdagrad(0.5, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Update([]float32{1, 2, 3}, []float32{1, 2, 3})
}

func TestSGD(t *testing.T) {
	o := SGD{LR: 0.1}
	param := []float32{1}
	o.Update(param, []float32{2})
	if math.Abs(float64(param[0]-0.8)) > 1e-6 {
		t.Fatalf("param = %v, want 0.8", param[0])
	}
}

func TestRowAdagradConvergesOnQuadratic(t *testing.T) {
	// Minimise (x-3)² with row Adagrad; must approach 3.
	o := NewRowAdagrad(0.5)
	param := []float32{0}
	var acc float32
	for i := 0; i < 500; i++ {
		g := 2 * (param[0] - 3)
		o.Update(param, []float32{g}, &acc)
	}
	if math.Abs(float64(param[0]-3)) > 0.05 {
		t.Fatalf("converged to %v, want 3", param[0])
	}
}
