// Package vec provides the dense float32 vector and matrix kernels that the
// rest of the system is built on. PyTorch-BigGraph relies on PyTorch for
// these; this package is the hand-written substitute. Everything operates on
// plain []float32 slices so embedding tables can be memory-mapped or sliced
// out of large flat buffers without copies.
//
// All kernels are single-threaded; parallelism happens above this layer
// (HOGWILD workers each call into vec independently).
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product <a, b>. The slices must have equal length.
//
//pbg:hotpath
func Dot(a, b []float32) float32 {
	checkPair("Dot", a, b)
	// Four-way unrolled accumulation: measurably faster than the naive loop
	// and keeps rounding error lower by splitting the accumulator.
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// SquaredDistance returns ||a-b||².
//
//pbg:hotpath
func SquaredDistance(a, b []float32) float32 {
	checkPair("SquaredDistance", a, b)
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity between a and b. Zero vectors have
// cosine similarity 0 with everything, which keeps training numerically sane
// when an embedding row is still at its zero initialisation.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Axpy computes y += alpha * x in place.
//
//pbg:hotpath
func Axpy(alpha float32, x, y []float32) {
	checkPair("Axpy", x, y)
	if alpha == 0 {
		return
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
//
//pbg:hotpath
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b elementwise.
//
//pbg:hotpath
func Add(dst, a, b []float32) {
	checkTriple("Add", dst, a, b)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise.
//
//pbg:hotpath
func Sub(dst, a, b []float32) {
	checkTriple("Sub", dst, a, b)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Mul computes dst = a ⊙ b (Hadamard product).
//
//pbg:hotpath
func Mul(dst, a, b []float32) {
	checkTriple("Mul", dst, a, b)
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// MulAdd computes dst += a ⊙ b.
//
//pbg:hotpath
func MulAdd(dst, a, b []float32) {
	checkTriple("MulAdd", dst, a, b)
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}

func checkTriple(op string, dst, a, b []float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("vec: %s length mismatch %d/%d/%d", op, len(dst), len(a), len(b)))
	}
}

// checkPair is the two-operand shape check. It lives outside the kernels so
// the //pbg:hotpath bodies stay free of fmt formatting (the panic message
// is only built on the failure path, but the lint contract is lexical).
func checkPair(op string, a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: %s length mismatch %d != %d", op, len(a), len(b)))
	}
}

func checkMulABt(c, a, b Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("vec: MulABt inner dim mismatch %d != %d", a.Cols, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("vec: MulABt output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Rows))
	}
}

func checkOuter(op string, a, g, b Matrix) {
	if g.Rows != a.Rows || g.Cols != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("vec: %s shape mismatch g=%dx%d a=%dx%d b=%dx%d",
			op, g.Rows, g.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func checkMatVec(op string, a Matrix, nx, ny, wantX, wantY int) {
	if nx != wantX || ny != wantY {
		panic(fmt.Sprintf("vec: %s shapes a=%dx%d x=%d y=%d", op, a.Rows, a.Cols, nx, ny))
	}
}

// Copy copies src into dst (lengths must match).
//
//pbg:hotpath
func Copy(dst, src []float32) {
	checkPair("Copy", dst, src)
	copy(dst, src)
}

// Zero clears x.
//
//pbg:hotpath
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Normalize scales x to unit norm in place and returns the original norm.
// A zero vector is left unchanged.
func Normalize(x []float32) float32 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// SumSquares returns Σ xᵢ².
func SumSquares(x []float32) float32 {
	return Dot(x, x)
}

// Matrix is a dense row-major float32 matrix view over a flat slice.
// Rows*Cols must equal len(Data). It is a view type: copying a Matrix copies
// the header, not the data.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// MatrixFrom wraps an existing flat slice as a Rows×Cols matrix.
func MatrixFrom(data []float32, rows, cols int) Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vec: MatrixFrom %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns row i as a slice view (no copy).
func (m Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// MulABt computes C = A · Bᵀ where A is (n×d), B is (m×d) and C is (n×m).
// This is the batched-negative-scoring kernel from Figure 3 of the paper: the
// scores of n positives against m candidate negatives are a single GEMM.
//
// The kernel is register-blocked 4×2: each inner pass streams the shared
// dimension once for a 4-row tile of A against a 2-row tile of B, keeping 8
// accumulators live in registers — 8 FMAs per 6 loads versus 1 FMA per 2
// loads for the row-times-row formulation. (A 4×4 tile's 16 accumulators
// spill out of the 16 XMM registers on amd64 and measure slower than naive;
// 8 is the sweet spot for Go's scalar codegen.)
//
//pbg:hotpath
func MulABt(c, a, b Matrix) {
	checkMulABt(c, a, b)
	n, m, d := a.Rows, b.Rows, a.Cols
	i := 0
	for ; i+4 <= n; i += 4 {
		// Reslice every row to the shared length so the compiler drops the
		// bounds checks in the accumulator loop.
		x0, x1, x2, x3 := a.Row(i)[:d], a.Row(i + 1)[:d], a.Row(i + 2)[:d], a.Row(i + 3)[:d]
		c0, c1, c2, c3 := c.Row(i), c.Row(i+1), c.Row(i+2), c.Row(i+3)
		j := 0
		for ; j+2 <= m; j += 2 {
			b0, b1 := b.Row(j)[:d], b.Row(j + 1)[:d]
			var s00, s01, s10, s11, s20, s21, s30, s31 float32
			for k := 0; k < d; k++ {
				b0k, b1k := b0[k], b1[k]
				v := x0[k]
				s00 += v * b0k
				s01 += v * b1k
				v = x1[k]
				s10 += v * b0k
				s11 += v * b1k
				v = x2[k]
				s20 += v * b0k
				s21 += v * b1k
				v = x3[k]
				s30 += v * b0k
				s31 += v * b1k
			}
			c0[j], c0[j+1] = s00, s01
			c1[j], c1[j+1] = s10, s11
			c2[j], c2[j+1] = s20, s21
			c3[j], c3[j+1] = s30, s31
		}
		if j < m {
			bj := b.Row(j)
			c0[j] = Dot(x0, bj)
			c1[j] = Dot(x1, bj)
			c2[j] = Dot(x2, bj)
			c3[j] = Dot(x3, bj)
		}
	}
	for ; i < n; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j < m; j++ {
			ci[j] = Dot(ai, b.Row(j))
		}
	}
}

// AddOuterAtB accumulates A += G · B where G is (n×m), B is (m×d), A is
// (n×d). This is the backward pass of MulABt with respect to its first
// argument: given upstream gradients G on the score matrix, each row i of A
// receives Σ_j G[i,j]·B[j].
//
// Register-blocked 2×4: a 2-row tile of A accumulates against a 4-row tile
// of B per pass over d — 8 FMAs per 6 loads and 2 stores, with each B row
// loaded once per two A rows. Tiles whose 8 G coefficients are all zero
// (fully masked score blocks, or ranking-loss chunks with no margin
// violations) are skipped.
//
//pbg:hotpath
func AddOuterAtB(a, g, b Matrix) {
	checkOuter("AddOuterAtB", a, g, b)
	n, m, d := a.Rows, b.Rows, a.Cols
	i := 0
	for ; i+2 <= n; i += 2 {
		g0, g1 := g.Row(i), g.Row(i+1)
		a0, a1 := a.Row(i)[:d], a.Row(i + 1)[:d]
		j := 0
		for ; j+4 <= m; j += 4 {
			w00, w01, w02, w03 := g0[j], g0[j+1], g0[j+2], g0[j+3]
			w10, w11, w12, w13 := g1[j], g1[j+1], g1[j+2], g1[j+3]
			if w00 == 0 && w01 == 0 && w02 == 0 && w03 == 0 &&
				w10 == 0 && w11 == 0 && w12 == 0 && w13 == 0 {
				continue
			}
			b0, b1, b2, b3 := b.Row(j)[:d], b.Row(j + 1)[:d], b.Row(j + 2)[:d], b.Row(j + 3)[:d]
			for k := 0; k < d; k++ {
				b0k, b1k, b2k, b3k := b0[k], b1[k], b2[k], b3[k]
				a0[k] += w00*b0k + w01*b1k + w02*b2k + w03*b3k
				a1[k] += w10*b0k + w11*b1k + w12*b2k + w13*b3k
			}
		}
		for ; j < m; j++ {
			bj := b.Row(j)
			if g0[j] != 0 {
				Axpy(g0[j], bj, a0)
			}
			if g1[j] != 0 {
				Axpy(g1[j], bj, a1)
			}
		}
	}
	for ; i < n; i++ {
		gi := g.Row(i)
		ai := a.Row(i)
		for j := 0; j < m; j++ {
			if gi[j] != 0 {
				Axpy(gi[j], b.Row(j), ai)
			}
		}
	}
}

// AddOuterGtA accumulates B += Gᵀ · A where G is (n×m), A is (n×d), B is
// (m×d). This is the backward pass of MulABt with respect to its second
// argument. Register-blocked 2×4 with the tile roles of AddOuterAtB
// transposed: a 2-row tile of B accumulates against a 4-row tile of A, with
// all-zero coefficient tiles skipped.
//
//pbg:hotpath
func AddOuterGtA(b, g, a Matrix) {
	checkOuter("AddOuterGtA", a, g, b)
	n, m, d := a.Rows, b.Rows, a.Cols
	j := 0
	for ; j+2 <= m; j += 2 {
		b0, b1 := b.Row(j)[:d], b.Row(j + 1)[:d]
		i := 0
		for ; i+4 <= n; i += 4 {
			g0, g1, g2, g3 := g.Row(i), g.Row(i+1), g.Row(i+2), g.Row(i+3)
			w00, w01 := g0[j], g0[j+1]
			w10, w11 := g1[j], g1[j+1]
			w20, w21 := g2[j], g2[j+1]
			w30, w31 := g3[j], g3[j+1]
			if w00 == 0 && w01 == 0 && w10 == 0 && w11 == 0 &&
				w20 == 0 && w21 == 0 && w30 == 0 && w31 == 0 {
				continue
			}
			a0, a1, a2, a3 := a.Row(i)[:d], a.Row(i + 1)[:d], a.Row(i + 2)[:d], a.Row(i + 3)[:d]
			for k := 0; k < d; k++ {
				a0k, a1k, a2k, a3k := a0[k], a1[k], a2[k], a3[k]
				b0[k] += w00*a0k + w10*a1k + w20*a2k + w30*a3k
				b1[k] += w01*a0k + w11*a1k + w21*a2k + w31*a3k
			}
		}
		for ; i < n; i++ {
			gi := g.Row(i)
			ai := a.Row(i)
			if gi[j] != 0 {
				Axpy(gi[j], ai, b0)
			}
			if gi[j+1] != 0 {
				Axpy(gi[j+1], ai, b1)
			}
		}
	}
	if j < m {
		bj := b.Row(j)
		for i := 0; i < n; i++ {
			if v := g.Row(i)[j]; v != 0 {
				Axpy(v, a.Row(i), bj)
			}
		}
	}
}

// MatVec computes y = A · x where A is (n×d) and x has length d.
//
//pbg:hotpath
func MatVec(y []float32, a Matrix, x []float32) {
	checkMatVec("MatVec", a, len(x), len(y), a.Cols, a.Rows)
	for i := range y {
		y[i] = Dot(a.Row(i), x)
	}
}

// MatTVec computes y = Aᵀ · x where A is (n×d) and x has length n.
//
//pbg:hotpath
func MatTVec(y []float32, a Matrix, x []float32) {
	checkMatVec("MatTVec", a, len(x), len(y), a.Rows, a.Cols)
	Zero(y)
	for i := 0; i < a.Rows; i++ {
		Axpy(x[i], a.Row(i), y)
	}
}

// ComplexMul computes dst = a ∘ b where vectors of even length d are treated
// as d/2 complex numbers laid out [re₀..re_{d/2-1}, im₀..im_{d/2-1}], the
// layout ComplEx uses. dst may alias neither a nor b.
//
//pbg:hotpath
func ComplexMul(dst, a, b []float32) {
	checkTriple("ComplexMul", dst, a, b)
	h := len(a) / 2
	if len(a)%2 != 0 {
		panic("vec: ComplexMul requires even dimension")
	}
	for i := 0; i < h; i++ {
		ar, ai := a[i], a[h+i]
		br, bi := b[i], b[h+i]
		dst[i] = ar*br - ai*bi
		dst[h+i] = ar*bi + ai*br
	}
}

// ComplexMulConj computes dst = a ∘ conj(b) with the same layout as
// ComplexMul. Used in the backward pass of the ComplEx operator:
// d/dx (x∘w · g) = g ∘ conj(w) under the real inner product.
//
//pbg:hotpath
func ComplexMulConj(dst, a, b []float32) {
	checkTriple("ComplexMulConj", dst, a, b)
	h := len(a) / 2
	if len(a)%2 != 0 {
		panic("vec: ComplexMulConj requires even dimension")
	}
	for i := 0; i < h; i++ {
		ar, ai := a[i], a[h+i]
		br, bi := b[i], b[h+i]
		dst[i] = ar*br + ai*bi
		dst[h+i] = -ar*bi + ai*br
	}
}

// LogSigmoid returns log(σ(x)) computed in a numerically stable way.
//
//pbg:hotpath
func LogSigmoid(x float32) float32 {
	// log σ(x) = -log(1+e^{-x}) = min(x,0) - log(1+e^{-|x|})
	xf := float64(x)
	return float32(math.Min(xf, 0) - math.Log1p(math.Exp(-math.Abs(xf))))
}

// Sigmoid returns σ(x) = 1/(1+e^{-x}).
//
//pbg:hotpath
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// LogSumExp returns log Σ exp(xᵢ) computed stably. Returns -Inf for an empty
// slice.
func LogSumExp(xs []float32) float32 {
	if len(xs) == 0 {
		return float32(math.Inf(-1))
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(float64(x - m))
	}
	return m + float32(math.Log(s))
}

// Softmax writes softmax(xs) into dst (may alias xs).
func Softmax(dst, xs []float32) {
	if len(dst) != len(xs) {
		panic("vec: Softmax length mismatch")
	}
	lse := LogSumExp(xs)
	for i, x := range xs {
		dst[i] = float32(math.Exp(float64(x - lse)))
	}
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AllFinite reports whether every element of x is finite (no NaN/Inf).
func AllFinite(x []float32) bool {
	for _, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
