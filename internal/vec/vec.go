// Package vec provides the dense float32 vector and matrix kernels that the
// rest of the system is built on. PyTorch-BigGraph relies on PyTorch for
// these; this package is the hand-written substitute. Everything operates on
// plain []float32 slices so embedding tables can be memory-mapped or sliced
// out of large flat buffers without copies.
//
// All kernels are single-threaded; parallelism happens above this layer
// (HOGWILD workers each call into vec independently).
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product <a, b>. The slices must have equal length.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	// Four-way unrolled accumulation: measurably faster than the naive loop
	// and keeps rounding error lower by splitting the accumulator.
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// SquaredDistance returns ||a-b||².
func SquaredDistance(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: SquaredDistance length mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Cosine returns the cosine similarity between a and b. Zero vectors have
// cosine similarity 0 with everything, which keeps training numerically sane
// when an embedding row is still at its zero initialisation.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Axpy computes y += alpha * x in place.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b elementwise.
func Add(dst, a, b []float32) {
	checkTriple("Add", dst, a, b)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b []float32) {
	checkTriple("Sub", dst, a, b)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Mul computes dst = a ⊙ b (Hadamard product).
func Mul(dst, a, b []float32) {
	checkTriple("Mul", dst, a, b)
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// MulAdd computes dst += a ⊙ b.
func MulAdd(dst, a, b []float32) {
	checkTriple("MulAdd", dst, a, b)
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}

func checkTriple(op string, dst, a, b []float32) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic(fmt.Sprintf("vec: %s length mismatch %d/%d/%d", op, len(dst), len(a), len(b)))
	}
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero clears x.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Normalize scales x to unit norm in place and returns the original norm.
// A zero vector is left unchanged.
func Normalize(x []float32) float32 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// SumSquares returns Σ xᵢ².
func SumSquares(x []float32) float32 {
	return Dot(x, x)
}

// Matrix is a dense row-major float32 matrix view over a flat slice.
// Rows*Cols must equal len(Data). It is a view type: copying a Matrix copies
// the header, not the data.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// MatrixFrom wraps an existing flat slice as a Rows×Cols matrix.
func MatrixFrom(data []float32, rows, cols int) Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vec: MatrixFrom %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data)))
	}
	return Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns row i as a slice view (no copy).
func (m Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// MulABt computes C = A · Bᵀ where A is (n×d), B is (m×d) and C is (n×m).
// This is the batched-negative-scoring kernel from Figure 3 of the paper: the
// scores of n positives against m candidate negatives are a single GEMM.
func MulABt(c, a, b Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("vec: MulABt inner dim mismatch %d != %d", a.Cols, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("vec: MulABt output %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			ci[j] = Dot(ai, b.Row(j))
		}
	}
}

// AddOuterAtB accumulates A += G · B where G is (n×m), B is (m×d), A is
// (n×d). This is the backward pass of MulABt with respect to its first
// argument: given upstream gradients G on the score matrix, each row i of A
// receives Σ_j G[i,j]·B[j].
func AddOuterAtB(a, g, b Matrix) {
	if g.Rows != a.Rows || g.Cols != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("vec: AddOuterAtB shape mismatch g=%dx%d a=%dx%d b=%dx%d",
			g.Rows, g.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		gi := g.Row(i)
		ai := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			if gi[j] != 0 {
				Axpy(gi[j], b.Row(j), ai)
			}
		}
	}
}

// AddOuterGtA accumulates B += Gᵀ · A where G is (n×m), A is (n×d), B is
// (m×d). This is the backward pass of MulABt with respect to its second
// argument.
func AddOuterGtA(b, g, a Matrix) {
	if g.Rows != a.Rows || g.Cols != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("vec: AddOuterGtA shape mismatch g=%dx%d a=%dx%d b=%dx%d",
			g.Rows, g.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < g.Rows; i++ {
		gi := g.Row(i)
		ai := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			if gi[j] != 0 {
				Axpy(gi[j], ai, b.Row(j))
			}
		}
	}
}

// MatVec computes y = A · x where A is (n×d) and x has length d.
func MatVec(y []float32, a Matrix, x []float32) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("vec: MatVec shapes a=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := range y {
		y[i] = Dot(a.Row(i), x)
	}
}

// MatTVec computes y = Aᵀ · x where A is (n×d) and x has length n.
func MatTVec(y []float32, a Matrix, x []float32) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("vec: MatTVec shapes a=%dx%d x=%d y=%d", a.Rows, a.Cols, len(x), len(y)))
	}
	Zero(y)
	for i := 0; i < a.Rows; i++ {
		Axpy(x[i], a.Row(i), y)
	}
}

// ComplexMul computes dst = a ∘ b where vectors of even length d are treated
// as d/2 complex numbers laid out [re₀..re_{d/2-1}, im₀..im_{d/2-1}], the
// layout ComplEx uses. dst may alias neither a nor b.
func ComplexMul(dst, a, b []float32) {
	checkTriple("ComplexMul", dst, a, b)
	h := len(a) / 2
	if len(a)%2 != 0 {
		panic("vec: ComplexMul requires even dimension")
	}
	for i := 0; i < h; i++ {
		ar, ai := a[i], a[h+i]
		br, bi := b[i], b[h+i]
		dst[i] = ar*br - ai*bi
		dst[h+i] = ar*bi + ai*br
	}
}

// ComplexMulConj computes dst = a ∘ conj(b) with the same layout as
// ComplexMul. Used in the backward pass of the ComplEx operator:
// d/dx (x∘w · g) = g ∘ conj(w) under the real inner product.
func ComplexMulConj(dst, a, b []float32) {
	checkTriple("ComplexMulConj", dst, a, b)
	h := len(a) / 2
	if len(a)%2 != 0 {
		panic("vec: ComplexMulConj requires even dimension")
	}
	for i := 0; i < h; i++ {
		ar, ai := a[i], a[h+i]
		br, bi := b[i], b[h+i]
		dst[i] = ar*br + ai*bi
		dst[h+i] = -ar*bi + ai*br
	}
}

// LogSigmoid returns log(σ(x)) computed in a numerically stable way.
func LogSigmoid(x float32) float32 {
	// log σ(x) = -log(1+e^{-x}) = min(x,0) - log(1+e^{-|x|})
	xf := float64(x)
	return float32(math.Min(xf, 0) - math.Log1p(math.Exp(-math.Abs(xf))))
}

// Sigmoid returns σ(x) = 1/(1+e^{-x}).
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// LogSumExp returns log Σ exp(xᵢ) computed stably. Returns -Inf for an empty
// slice.
func LogSumExp(xs []float32) float32 {
	if len(xs) == 0 {
		return float32(math.Inf(-1))
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(float64(x - m))
	}
	return m + float32(math.Log(s))
}

// Softmax writes softmax(xs) into dst (may alias xs).
func Softmax(dst, xs []float32) {
	if len(dst) != len(xs) {
		panic("vec: Softmax length mismatch")
	}
	lse := LogSumExp(xs)
	for i, x := range xs {
		dst[i] = float32(math.Exp(float64(x - lse)))
	}
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AllFinite reports whether every element of x is finite (no NaN/Inf).
func AllFinite(x []float32) bool {
	for _, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
