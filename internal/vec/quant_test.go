package vec

import (
	"math"
	"math/rand"
	"testing"
)

// refF16Bits is an independent reference for float32→binary16 rounding:
// it picks whichever representable half (with the codec's clamp-to-finite
// convention) is nearest to x, breaking ties toward the even mantissa, by
// scanning the two candidates around the truncated encoding.
func refF16Bits(x float32) uint16 {
	if math.IsNaN(float64(x)) {
		return 0x7e00
	}
	sign := uint16(0)
	if math.Signbit(float64(x)) {
		sign = 0x8000
		x = -x
	}
	if x > MaxF16 {
		return sign | 0x7bff
	}
	// Binary search over the ordered positive half values [0x0000, 0x7bff]:
	// monotone in bits, so find the largest h with F16Value(h) <= x, then
	// round between h and h+1.
	lo, hi := uint16(0), uint16(0x7bff)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if F16Value(mid) <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo == 0x7bff {
		return sign | lo
	}
	a, b := F16Value(lo), F16Value(lo+1)
	da, db := float64(x)-float64(a), float64(b)-float64(x)
	switch {
	case da < db:
		return sign | lo
	case db < da:
		return sign | (lo + 1)
	case lo&1 == 0: // tie: even mantissa wins
		return sign | lo
	default:
		return sign | (lo + 1)
	}
}

func TestF16BitsMatchesReference(t *testing.T) {
	cases := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, 2, 3.14159, -2.71828,
		65504, -65504, 65505, 70000, 1e-7, -1e-7, 5.96e-8, 6.1e-5,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.Float32frombits(1),          // smallest float32 subnormal
		math.Float32frombits(0x00400000), // float32 subnormal
		6.103515625e-05,                  // smallest half normal
		5.960464477539063e-08,            // smallest half subnormal
		2.980232238769531e-08,            // exactly half the smallest subnormal: RNE tie to 0
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		switch i % 4 {
		case 0:
			cases = append(cases, float32(rng.NormFloat64()))
		case 1:
			cases = append(cases, float32(rng.NormFloat64()*1e4))
		case 2:
			cases = append(cases, float32(rng.NormFloat64()*1e-5)) // subnormal half territory
		default:
			cases = append(cases, math.Float32frombits(rng.Uint32()&0x7fffffff|rng.Uint32()&0x80000000))
		}
	}
	for _, x := range cases {
		got, want := F16Bits(x), refF16Bits(x)
		if math.IsNaN(float64(x)) {
			if F16Value(got)+1 == F16Value(got)+1 { // not NaN
				t.Fatalf("F16Bits(NaN) = %#04x, decodes non-NaN", got)
			}
			continue
		}
		if got != want {
			t.Fatalf("F16Bits(%g) = %#04x (%g), want %#04x (%g)",
				x, got, F16Value(got), want, F16Value(want))
		}
	}
}

func TestF16RoundTripExactForHalfValues(t *testing.T) {
	// Every finite half value must encode back to itself exactly.
	for h := 0; h < 0x10000; h++ {
		bits := uint16(h)
		if bits&0x7c00 == 0x7c00 { // Inf/NaN patterns excluded
			continue
		}
		x := F16Value(bits)
		back := F16Bits(x)
		if back != bits {
			t.Fatalf("half %#04x -> %g -> %#04x, not identity", bits, x, back)
		}
	}
}

func TestF16NeverProducesInf(t *testing.T) {
	inputs := []float32{
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.MaxFloat32, -math.MaxFloat32, 65505, 65519.999, 1e20, -1e20,
	}
	for _, x := range inputs {
		h := F16Bits(x)
		v := F16Value(h)
		if math.IsInf(float64(v), 0) {
			t.Fatalf("F16Bits(%g) = %#04x decodes to Inf", x, h)
		}
		if a := float32(math.Abs(float64(v))); a != MaxF16 {
			t.Fatalf("F16Bits(%g) should clamp to ±%d, got %g", x, MaxF16, v)
		}
		if math.Signbit(float64(x)) != math.Signbit(float64(v)) {
			t.Fatalf("F16Bits(%g) lost the sign: %g", x, v)
		}
	}
}

func TestF16RelativeError(t *testing.T) {
	// For normal-range values the round-trip relative error is bounded by
	// half the binary16 ulp: 2^-11.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		x := float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-3)))
		if a := math.Abs(float64(x)); a < 6.104e-5 || a > MaxF16 {
			continue
		}
		y := F16Value(F16Bits(x))
		rel := math.Abs(float64(y)-float64(x)) / math.Abs(float64(x))
		if rel > math.Pow(2, -11) {
			t.Fatalf("F16 round-trip rel error %g for %g (got %g)", rel, x, y)
		}
	}
}

func TestI8RoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		dim := 1 + rng.Intn(200)
		row := make([]float32, dim)
		scaleMag := math.Pow(10, float64(rng.Intn(10)-5))
		for i := range row {
			row[i] = float32(rng.NormFloat64() * scaleMag)
		}
		if trial%7 == 0 { // sprinkle float32 denormals
			row[rng.Intn(dim)] = math.Float32frombits(uint32(rng.Intn(0x7fffff) + 1))
		}
		scale := I8RowScale(row)
		q := make([]int8, dim)
		deq := make([]float32, dim)
		QuantI8(q, row, scale)
		DequantI8(deq, q, scale)
		// |x - deq| <= scale/2 per element: rounding error of round(x/scale)
		// is <= 1/2, and no clamping occurs because |x|/scale <= 127.
		bound := float64(scale) / 2 * (1 + 1e-6) // float32 arithmetic slack
		for i := range row {
			if err := math.Abs(float64(row[i]) - float64(deq[i])); err > bound {
				t.Fatalf("trial %d dim %d elem %d: |%g - %g| = %g > scale/2 = %g",
					trial, dim, i, row[i], deq[i], err, bound)
			}
		}
	}
}

func TestI8AllZeroRow(t *testing.T) {
	row := make([]float32, 16)
	if s := I8RowScale(row); s != 0 {
		t.Fatalf("all-zero row scale = %g, want 0", s)
	}
	q := make([]int8, 16)
	q[3] = 42 // stale garbage must be overwritten
	deq := make([]float32, 16)
	QuantI8(q, row, 0)
	DequantI8(deq, q, 0)
	for i := range deq {
		if q[i] != 0 || deq[i] != 0 {
			t.Fatalf("zero-scale row not exact zeros: q[%d]=%d deq[%d]=%g", i, q[i], i, deq[i])
		}
	}
	if s := I8RowScale(nil); s != 0 {
		t.Fatalf("empty row scale = %g, want 0", s)
	}
}

func TestI8SymmetricRange(t *testing.T) {
	// The extreme negative value quantizes to -127, never -128.
	row := []float32{-1, 1, -0.999999, 0.5}
	scale := I8RowScale(row)
	q := make([]int8, len(row))
	QuantI8(q, row, scale)
	for i, v := range q {
		if v < -127 || v > 127 {
			t.Fatalf("q[%d] = %d outside [-127, 127]", i, v)
		}
	}
	if q[0] != -127 || q[1] != 127 {
		t.Fatalf("extremes should hit ±127, got %d and %d", q[0], q[1])
	}
}

func TestI8NonFiniteRow(t *testing.T) {
	// An Inf element saturates the scale rather than making it Inf; the
	// codec stays defined (garbage rows were a bug upstream, but encode
	// must not emit Inf scales that poison the whole row on decode).
	row := []float32{float32(math.Inf(1)), 1, -2}
	scale := I8RowScale(row)
	if math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) {
		t.Fatalf("scale for Inf row is non-finite: %g", scale)
	}
	q := make([]int8, len(row))
	deq := make([]float32, len(row))
	QuantI8(q, row, scale)
	DequantI8(deq, q, scale)
	for i, v := range deq {
		if math.IsInf(float64(v), 0) || math.IsNaN(float64(v)) {
			t.Fatalf("deq[%d] non-finite: %g", i, v)
		}
	}
}

func TestQuantBatchKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		h := make([]uint16, n)
		out := make([]float32, n)
		QuantF16(h, src)
		DequantF16(out, h)
		for i := range src {
			if h[i] != F16Bits(src[i]) || out[i] != F16Value(h[i]) {
				t.Fatalf("batch f16 kernel diverges from scalar at %d", i)
			}
		}
	}
}
