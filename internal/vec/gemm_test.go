package vec

import (
	"testing"

	"pbg/internal/rng"
)

// Naive reference implementations of the GEMM kernels. The shipped kernels
// are register-blocked; these goldens pin them to the row-times-row
// formulation across shapes that exercise every remainder path.

func mulABtNaive(c, a, b Matrix) {
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			ci[j] = Dot(ai, b.Row(j))
		}
	}
}

func addOuterAtBNaive(a, g, b Matrix) {
	for i := 0; i < a.Rows; i++ {
		gi := g.Row(i)
		ai := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			if gi[j] != 0 {
				Axpy(gi[j], b.Row(j), ai)
			}
		}
	}
}

func addOuterGtANaive(b, g, a Matrix) {
	for i := 0; i < g.Rows; i++ {
		gi := g.Row(i)
		ai := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			if gi[j] != 0 {
				Axpy(gi[j], ai, b.Row(j))
			}
		}
	}
}

func randMatrix(r *rng.RNG, rows, cols int) Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat32()
	}
	return m
}

// gemmShapes exercises full 4×4 tiles, every remainder combination, and the
// degenerate single-row/column cases.
var gemmShapes = []struct{ n, m, d int }{
	{1, 1, 1}, {1, 5, 3}, {3, 3, 7}, {4, 4, 8}, {5, 6, 4},
	{7, 9, 13}, {8, 8, 16}, {11, 4, 2}, {4, 11, 31}, {50, 150, 100},
}

func TestMulABtMatchesNaive(t *testing.T) {
	r := rng.New(7)
	for _, s := range gemmShapes {
		a := randMatrix(r, s.n, s.d)
		b := randMatrix(r, s.m, s.d)
		got := NewMatrix(s.n, s.m)
		want := NewMatrix(s.n, s.m)
		MulABt(got, a, b)
		mulABtNaive(want, a, b)
		for i := range got.Data {
			if !approxEq(got.Data[i], want.Data[i], eps) {
				t.Fatalf("shape %+v: C[%d] = %v, naive %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestAddOuterAtBMatchesNaive(t *testing.T) {
	r := rng.New(11)
	for _, s := range gemmShapes {
		g := randMatrix(r, s.n, s.m)
		// Zero some gradient entries so the masked-block skip path runs.
		for i := 0; i < len(g.Data); i += 3 {
			g.Data[i] = 0
		}
		b := randMatrix(r, s.m, s.d)
		got := randMatrix(r, s.n, s.d)
		want := MatrixFrom(append([]float32(nil), got.Data...), s.n, s.d)
		AddOuterAtB(got, g, b)
		addOuterAtBNaive(want, g, b)
		for i := range got.Data {
			if !approxEq(got.Data[i], want.Data[i], eps) {
				t.Fatalf("shape %+v: A[%d] = %v, naive %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestAddOuterGtAMatchesNaive(t *testing.T) {
	r := rng.New(13)
	for _, s := range gemmShapes {
		g := randMatrix(r, s.n, s.m)
		for i := 1; i < len(g.Data); i += 4 {
			g.Data[i] = 0
		}
		a := randMatrix(r, s.n, s.d)
		got := randMatrix(r, s.m, s.d)
		want := MatrixFrom(append([]float32(nil), got.Data...), s.m, s.d)
		AddOuterGtA(got, g, a)
		addOuterGtANaive(want, g, a)
		for i := range got.Data {
			if !approxEq(got.Data[i], want.Data[i], eps) {
				t.Fatalf("shape %+v: B[%d] = %v, naive %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGEMMAllZeroGradientSkips(t *testing.T) {
	// A fully-zero G must leave the accumulators untouched.
	g := NewMatrix(6, 7)
	b := NewMatrix(7, 5)
	a := NewMatrix(6, 5)
	for i := range b.Data {
		b.Data[i] = 1
	}
	orig := append([]float32(nil), a.Data...)
	AddOuterAtB(a, g, b)
	for i := range a.Data {
		if a.Data[i] != orig[i] {
			t.Fatal("zero gradient mutated A")
		}
	}
	AddOuterGtA(b, g, a)
}

// Figure-3 shaped benchmarks: 50 positives × (50+2·100) candidates at d=100.

func benchGEMMMats() (a, b, g Matrix) {
	r := rng.New(3)
	a = randMatrix(r, 50, 100)
	b = randMatrix(r, 250, 100)
	g = randMatrix(r, 50, 250)
	return
}

func BenchmarkAddOuterAtB50x250x100(b *testing.B) {
	am, bm, gm := benchGEMMMats()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddOuterAtB(am, gm, bm)
	}
}

func BenchmarkAddOuterGtA50x250x100(b *testing.B) {
	am, bm, gm := benchGEMMMats()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddOuterGtA(bm, gm, am)
	}
}

func BenchmarkAddOuterAtBNaive50x250x100(b *testing.B) {
	am, bm, gm := benchGEMMMats()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addOuterAtBNaive(am, gm, bm)
	}
}

func BenchmarkAddOuterGtANaive50x250x100(b *testing.B) {
	am, bm, gm := benchGEMMMats()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addOuterGtANaive(bm, gm, am)
	}
}

func BenchmarkMulABtNaive50x250x100(b *testing.B) {
	am, bm, _ := benchGEMMMats()
	c := NewMatrix(50, 250)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mulABtNaive(c, am, bm)
	}
}
