// Quantization kernels for the compressed shard codecs (internal/storage)
// and the serving layer's quantized-scan path (internal/serve). Two
// encodings are supported:
//
//   - fp16: IEEE 754 binary16 with round-to-nearest-even. Encoding never
//     produces an infinity — float32 values past the half range (including
//     ±Inf) clamp to ±MaxF16, so a decoded embedding table is guaranteed
//     ±Inf-free whenever the encoder wrote it. NaN survives as NaN (a NaN
//     embedding is already a training bug upstream; hiding it here would
//     only move the failure).
//   - int8 with one float32 scale per row: q = round(x/scale) clamped to
//     [-127, 127] with scale = maxabs(row)/127, so dequantization error is
//     bounded by scale/2 = maxabs/254 per element. An all-zero row encodes
//     with scale 0 and decodes to exact zeros.
//
// The batch kernels are the serving scan's inner loop: DequantF16 and
// DequantI8 expand a quantized candidate block into fp32 scratch that the
// comparator GEMMs then score, so their cost is paid once per scanned row.
package vec

import "math"

// MaxF16 is the largest finite binary16 value (65504); float32 inputs with
// larger magnitude (including ±Inf) clamp to ±MaxF16 when encoding.
const MaxF16 = 65504

// F16Bits converts a float32 to IEEE binary16 bits with round-to-nearest-
// even. Overflow (and ±Inf) clamps to the maximum finite half instead of
// producing an infinity; NaN maps to a quiet half NaN.
//
//pbg:hotpath
func F16Bits(x float32) uint16 {
	u := math.Float32bits(x)
	sign := uint16(u>>16) & 0x8000
	u &^= 0x80000000
	if u >= 0x7f800000 { // Inf or NaN
		if u > 0x7f800000 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7bff // ±Inf clamps to ±MaxF16
	}
	e := int(u>>23) - 127 + 15 // biased half exponent
	m := u & 0x007fffff
	if e >= 31 {
		// |x| ≥ 2^16 > MaxF16: overflow before rounding even starts.
		return sign | 0x7bff
	}
	if e <= 0 {
		// Half subnormal (or underflow to zero). Make the implicit bit
		// explicit and shift the 24-bit significand down to 10-e bits,
		// rounding to nearest even on the dropped remainder.
		if e < -10 {
			return sign
		}
		m |= 0x00800000
		shift := uint(14 - e) // in [14, 24]
		q := m >> shift
		rem := m & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++ // may round up into the smallest normal, which is correct
		}
		return sign | uint16(q)
	}
	// Normal range: drop 13 mantissa bits with round-to-nearest-even. A
	// mantissa carry that overflows the exponent into the Inf pattern is
	// the rounding-overflow case (values just under 2^16) and clamps too.
	q := m >> 13
	rem := m & 0x1fff
	h := uint16(e)<<10 | uint16(q)
	if rem > 0x1000 || (rem == 0x1000 && q&1 == 1) {
		h++
		if h >= 0x7c00 {
			h = 0x7bff
		}
	}
	return sign | h
}

// F16Value converts IEEE binary16 bits to float32. The decode is exact:
// every half value (normals, subnormals, ±Inf, NaN) is representable in
// float32. Well-formed codec data never contains Inf (F16Bits clamps), but
// hostile bytes decode without widening surprises all the same.
//
//pbg:hotpath
func F16Value(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	e := uint32(h>>10) & 0x1f
	m := uint32(h & 0x3ff)
	switch {
	case e == 0:
		if m == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalise the significand into float32's implicit-bit
		// form, tracking the exponent adjustment.
		exp := uint32(113)
		for m&0x400 == 0 {
			m <<= 1
			exp--
		}
		m &= 0x3ff
		return math.Float32frombits(sign | exp<<23 | m<<13)
	case e == 31:
		if m != 0 {
			return float32(math.NaN())
		}
		return math.Float32frombits(sign | 0x7f800000) // ±Inf (hostile input)
	default:
		return math.Float32frombits(sign | (e+112)<<23 | m<<13)
	}
}

// QuantF16 encodes src into dst elementwise via F16Bits. Lengths must match.
//
//pbg:hotpath
func QuantF16(dst []uint16, src []float32) {
	if len(dst) != len(src) {
		panic("vec: QuantF16 length mismatch")
	}
	for i, x := range src {
		dst[i] = F16Bits(x)
	}
}

// DequantF16 decodes src into dst elementwise via F16Value. Lengths must
// match. This is the fp16 serving scan's row-expansion kernel.
//
//pbg:hotpath
func DequantF16(dst []float32, src []uint16) {
	if len(dst) != len(src) {
		panic("vec: DequantF16 length mismatch")
	}
	for i, h := range src {
		dst[i] = F16Value(h)
	}
}

// I8RowScale returns the per-row int8 quantization scale maxabs(row)/127.
// An all-zero row (or an empty one) returns 0, which QuantI8/DequantI8
// treat as "the row is exactly zero". Non-finite elements saturate the
// scale to +Inf-free MaxFloat32/127 so quantization stays defined.
//
//pbg:hotpath
func I8RowScale(row []float32) float32 {
	var maxAbs float32
	for _, x := range row {
		a := float32(math.Abs(float64(x)))
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	if math.IsInf(float64(maxAbs), 0) {
		// Saturate below MaxFloat32 so 127·scale stays finite on dequant.
		maxAbs = math.MaxFloat32 / 2
	}
	return maxAbs / 127
}

// QuantI8 encodes src as round-to-nearest int8 under scale, clamped to
// [-127, 127] (the symmetric range; -128 is never produced). A zero scale
// writes zeros. Lengths must match.
//
//pbg:hotpath
func QuantI8(dst []int8, src []float32, scale float32) {
	if len(dst) != len(src) {
		panic("vec: QuantI8 length mismatch")
	}
	if scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	inv := 1 / float64(scale)
	for i, x := range src {
		q := math.Round(float64(x) * inv)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
}

// DequantI8 decodes src into dst as float32(q)·scale. Lengths must match.
// This is the int8 serving scan's row-expansion kernel.
//
//pbg:hotpath
func DequantI8(dst []float32, src []int8, scale float32) {
	if len(dst) != len(src) {
		panic("vec: DequantI8 length mismatch")
	}
	for i, q := range src {
		dst[i] = float32(q) * scale
	}
}
