package vec

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-4

// shrink maps arbitrary quick-generated float32s into [-2, 2] so the
// properties test algebra, not float32 overflow behaviour.
func shrink(xs []float32) []float32 {
	out := make([]float32, len(xs))
	for i, x := range xs {
		f := float64(x)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = 0
		}
		out[i] = float32(math.Mod(f, 2))
	}
	return out
}

func approxEq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := float32(1)
	if m := float32(math.Max(math.Abs(float64(a)), math.Abs(float64(b)))); m > 1 {
		scale = m
	}
	return d <= tol*scale
}

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestDotCommutative(t *testing.T) {
	f := func(raw []float32) bool {
		xs := shrink(raw)
		ys := make([]float32, len(xs))
		for i := range ys {
			ys[i] = xs[len(xs)-1-i]
		}
		return approxEq(Dot(xs, ys), Dot(ys, xs), eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm([]float32{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("orthogonal cosine = %v, want 0", got)
	}
	if got := Cosine(a, a); !approxEq(got, 1, eps) {
		t.Fatalf("self cosine = %v, want 1", got)
	}
	if got := Cosine(a, []float32{0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v, want 0", got)
	}
}

func TestCosineBounded(t *testing.T) {
	f := func(ar, br [8]float32) bool {
		a, b := shrink(ar[:]), shrink(br[:])
		c := Cosine(a, b)
		return c >= -1.0001 && c <= 1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAxpy(t *testing.T) {
	y := []float32{1, 1, 1}
	Axpy(2, []float32{1, 2, 3}, y)
	want := []float32{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestAxpyZeroAlphaNoop(t *testing.T) {
	y := []float32{1, 2}
	Axpy(0, []float32{9, 9}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("Axpy with alpha=0 modified y: %v", y)
	}
}

func TestAddSubMul(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 5}
	dst := make([]float32, 2)
	Add(dst, a, b)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, a, b)
	if dst[0] != -2 || dst[1] != -3 {
		t.Fatalf("Sub = %v", dst)
	}
	Mul(dst, a, b)
	if dst[0] != 3 || dst[1] != 10 {
		t.Fatalf("Mul = %v", dst)
	}
	MulAdd(dst, a, b)
	if dst[0] != 6 || dst[1] != 20 {
		t.Fatalf("MulAdd = %v", dst)
	}
}

func TestNormalize(t *testing.T) {
	x := []float32{3, 4}
	n := Normalize(x)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !approxEq(Norm(x), 1, eps) {
		t.Fatalf("norm after Normalize = %v", Norm(x))
	}
	z := []float32{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize(zero) should return 0")
	}
}

func TestSquaredDistance(t *testing.T) {
	if got := SquaredDistance([]float32{1, 2}, []float32{4, 6}); got != 25 {
		t.Fatalf("SquaredDistance = %v, want 25", got)
	}
}

func TestMatrixRow(t *testing.T) {
	m := MatrixFrom([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := m.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 99
	if m.Data[3] != 99 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestMatrixFromBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatrixFrom([]float32{1, 2, 3}, 2, 2)
}

func TestMulABt(t *testing.T) {
	a := MatrixFrom([]float32{1, 0, 0, 1}, 2, 2) // identity rows
	b := MatrixFrom([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	c := NewMatrix(2, 3)
	MulABt(c, a, b)
	// c[i][j] = <a_i, b_j>
	want := []float32{1, 3, 5, 2, 4, 6}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MulABt[%d] = %v, want %v (full %v)", i, c.Data[i], w, c.Data)
		}
	}
}

// TestGEMMBackward verifies that AddOuterAtB / AddOuterGtA are the true
// gradients of MulABt by finite differences on a small random problem.
func TestGEMMBackward(t *testing.T) {
	n, m, d := 3, 4, 5
	seed := uint32(1)
	next := func() float32 {
		seed = seed*1664525 + 1013904223
		return float32(seed%1000)/500 - 1
	}
	a := NewMatrix(n, d)
	b := NewMatrix(m, d)
	for i := range a.Data {
		a.Data[i] = next()
	}
	for i := range b.Data {
		b.Data[i] = next()
	}
	g := NewMatrix(n, m)
	for i := range g.Data {
		g.Data[i] = next()
	}
	// Loss L = Σ g[i][j] * C[i][j]; dL/dA = G·B, dL/dB = Gᵀ·A.
	loss := func() float64 {
		c := NewMatrix(n, m)
		MulABt(c, a, b)
		var s float64
		for i := range c.Data {
			s += float64(g.Data[i] * c.Data[i])
		}
		return s
	}
	gradA := NewMatrix(n, d)
	gradB := NewMatrix(m, d)
	AddOuterAtB(gradA, g, b)
	AddOuterGtA(gradB, g, a)
	const h = 1e-2
	for i := range a.Data {
		old := a.Data[i]
		a.Data[i] = old + h
		lp := loss()
		a.Data[i] = old - h
		lm := loss()
		a.Data[i] = old
		fd := float32((lp - lm) / (2 * h))
		if !approxEq(fd, gradA.Data[i], 1e-2) {
			t.Fatalf("gradA[%d]: analytic %v vs fd %v", i, gradA.Data[i], fd)
		}
	}
	for i := range b.Data {
		old := b.Data[i]
		b.Data[i] = old + h
		lp := loss()
		b.Data[i] = old - h
		lm := loss()
		b.Data[i] = old
		fd := float32((lp - lm) / (2 * h))
		if !approxEq(fd, gradB.Data[i], 1e-2) {
			t.Fatalf("gradB[%d]: analytic %v vs fd %v", i, gradB.Data[i], fd)
		}
	}
}

func TestMatVecAndMatTVec(t *testing.T) {
	a := MatrixFrom([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := make([]float32, 2)
	MatVec(y, a, []float32{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
	z := make([]float32, 3)
	MatTVec(z, a, []float32{1, 1})
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("MatTVec = %v", z)
	}
}

func TestComplexMul(t *testing.T) {
	// (1+2i)*(3+4i) = 3+4i+6i-8 = -5+10i; layout [re..., im...]
	a := []float32{1, 2}
	b := []float32{3, 4}
	dst := make([]float32, 2)
	ComplexMul(dst, a, b)
	if dst[0] != -5 || dst[1] != 10 {
		t.Fatalf("ComplexMul = %v, want [-5 10]", dst)
	}
}

func TestComplexMulConj(t *testing.T) {
	// (1+2i)*conj(3+4i) = (1+2i)*(3-4i) = 3-4i+6i+8 = 11+2i
	a := []float32{1, 2}
	b := []float32{3, 4}
	dst := make([]float32, 2)
	ComplexMulConj(dst, a, b)
	if dst[0] != 11 || dst[1] != 2 {
		t.Fatalf("ComplexMulConj = %v, want [11 2]", dst)
	}
}

// Property: Re<a∘w, b> == Re<a, b∘conj(w)> — the adjoint identity the
// ComplEx backward pass relies on.
func TestComplexAdjointIdentity(t *testing.T) {
	f := func(ar, br, wr [8]float32) bool {
		a, b, w := shrink(ar[:]), shrink(br[:]), shrink(wr[:])
		lhsV := make([]float32, 8)
		rhsV := make([]float32, 8)
		ComplexMul(lhsV, a, w)
		ComplexMulConj(rhsV, b, w)
		return approxEq(Dot(lhsV, b), Dot(a, rhsV), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSigmoid(t *testing.T) {
	if got := LogSigmoid(0); !approxEq(got, float32(math.Log(0.5)), eps) {
		t.Fatalf("LogSigmoid(0) = %v", got)
	}
	// Large negative input should not overflow to -Inf faster than x itself.
	if got := LogSigmoid(-100); !approxEq(got, -100, 1e-3) {
		t.Fatalf("LogSigmoid(-100) = %v", got)
	}
	if got := LogSigmoid(100); got > 0 || got < -1e-6 {
		t.Fatalf("LogSigmoid(100) = %v", got)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); !approxEq(got, 0.5, eps) {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); !approxEq(got, 1, eps) {
		t.Fatalf("Sigmoid(100) = %v", got)
	}
}

func TestLogSumExp(t *testing.T) {
	xs := []float32{1, 2, 3}
	want := float32(math.Log(math.Exp(1) + math.Exp(2) + math.Exp(3)))
	if got := LogSumExp(xs); !approxEq(got, want, eps) {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
	// Stability: huge values must not overflow.
	if got := LogSumExp([]float32{1000, 1000}); !approxEq(got, 1000+float32(math.Log(2)), eps) {
		t.Fatalf("LogSumExp large = %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(float64(got), -1) {
		t.Fatalf("LogSumExp(empty) = %v, want -Inf", got)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(xs [6]float32) bool {
		dst := make([]float32, 6)
		Softmax(dst, xs[:])
		var s float32
		for _, v := range dst {
			if v < 0 {
				return false
			}
			s += v
		}
		return approxEq(s, 1, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float32{1, 2, 3}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float32{1, float32(math.NaN())}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float32{float32(math.Inf(1))}) {
		t.Fatal("Inf not detected")
	}
}

func BenchmarkDot128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(i) * 0.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkMulABt50x250x100(b *testing.B) {
	// The Figure-3 workload: 50 positives scored against 250 candidates at
	// d=100 as one GEMM.
	a := NewMatrix(50, 100)
	bb := NewMatrix(250, 100)
	c := NewMatrix(50, 250)
	for i := range a.Data {
		a.Data[i] = float32(i % 7)
	}
	for i := range bb.Data {
		bb.Data[i] = float32(i % 5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulABt(c, a, bb)
	}
}
