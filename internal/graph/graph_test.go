package graph

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"pbg/internal/rng"
)

func simpleSchema(t *testing.T, count, parts int) *Schema {
	t.Helper()
	s, err := NewSchema(
		[]EntityType{{Name: "node", Count: count, NumPartitions: parts}},
		[]RelationType{{Name: "link", SourceType: "node", DestType: "node", Operator: "identity"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		ents []EntityType
		rels []RelationType
	}{
		{"empty entity name", []EntityType{{Name: "", Count: 1, NumPartitions: 1}},
			[]RelationType{{SourceType: "", DestType: ""}}},
		{"zero count", []EntityType{{Name: "a", Count: 0, NumPartitions: 1}},
			[]RelationType{{SourceType: "a", DestType: "a"}}},
		{"zero partitions", []EntityType{{Name: "a", Count: 5, NumPartitions: 0}},
			[]RelationType{{SourceType: "a", DestType: "a"}}},
		{"more partitions than entities", []EntityType{{Name: "a", Count: 2, NumPartitions: 4}},
			[]RelationType{{SourceType: "a", DestType: "a"}}},
		{"duplicate entity", []EntityType{{Name: "a", Count: 2, NumPartitions: 1}, {Name: "a", Count: 3, NumPartitions: 1}},
			[]RelationType{{SourceType: "a", DestType: "a"}}},
		{"unknown source type", []EntityType{{Name: "a", Count: 2, NumPartitions: 1}},
			[]RelationType{{SourceType: "b", DestType: "a"}}},
		{"unknown dest type", []EntityType{{Name: "a", Count: 2, NumPartitions: 1}},
			[]RelationType{{SourceType: "a", DestType: "b"}}},
		{"no relations", []EntityType{{Name: "a", Count: 2, NumPartitions: 1}}, nil},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.ents, c.rels); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPartitionArithmetic(t *testing.T) {
	e := EntityType{Name: "n", Count: 10, NumPartitions: 4}
	if e.PartSize() != 3 {
		t.Fatalf("PartSize = %d, want 3", e.PartSize())
	}
	// Partition sizes: 3,3,3,1.
	wantCounts := []int{3, 3, 3, 1}
	for p, w := range wantCounts {
		if got := e.PartitionCount(p); got != w {
			t.Fatalf("PartitionCount(%d) = %d, want %d", p, got, w)
		}
	}
	// Every entity maps to a valid partition and offset round-trips.
	for id := int32(0); id < 10; id++ {
		p := e.PartitionOf(id)
		off := e.LocalOffset(id)
		if p < 0 || p >= 4 {
			t.Fatalf("PartitionOf(%d) = %d", id, p)
		}
		if int32(p*e.PartSize()+off) != id {
			t.Fatalf("partition/offset do not round-trip for id %d", id)
		}
		if off >= e.PartitionCount(p) {
			t.Fatalf("offset %d >= partition count %d for id %d", off, e.PartitionCount(p), id)
		}
	}
}

func TestPartitionRoundTripProperty(t *testing.T) {
	f := func(countRaw uint16, partsRaw uint8, idRaw uint16) bool {
		count := int(countRaw)%5000 + 1
		parts := int(partsRaw)%8 + 1
		if parts > count {
			parts = count
		}
		e := EntityType{Name: "n", Count: count, NumPartitions: parts}
		id := int32(int(idRaw) % count)
		p := e.PartitionOf(id)
		return p >= 0 && p < parts && int32(p*e.PartSize()+e.LocalOffset(id)) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListBasics(t *testing.T) {
	el := &EdgeList{}
	el.Append(1, 0, 2)
	el.Append(3, 0, 4)
	if el.Len() != 2 {
		t.Fatalf("Len = %d", el.Len())
	}
	s, r, d := el.Edge(1)
	if s != 3 || r != 0 || d != 4 {
		t.Fatalf("Edge(1) = %d,%d,%d", s, r, d)
	}
	cl := el.Clone()
	cl.Srcs[0] = 99
	if el.Srcs[0] == 99 {
		t.Fatal("Clone must deep copy")
	}
	el.Swap(0, 1)
	if el.Srcs[0] != 3 || el.Dsts[0] != 4 {
		t.Fatal("Swap broken")
	}
}

func TestNewGraphValidation(t *testing.T) {
	s := simpleSchema(t, 5, 1)
	bad := []struct {
		name    string
		s, r, d int32
	}{
		{"neg src", -1, 0, 0},
		{"src too big", 5, 0, 0},
		{"neg rel", 0, -1, 0},
		{"rel too big", 0, 1, 0},
		{"dst too big", 0, 0, 7},
	}
	for _, b := range bad {
		el := &EdgeList{}
		el.Append(b.s, b.r, b.d)
		if _, err := NewGraph(s, el); err == nil {
			t.Errorf("%s: expected error", b.name)
		}
	}
	el := &EdgeList{}
	el.Append(0, 0, 4)
	if _, err := NewGraph(s, el); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
}

func TestSplitFractionsAndDisjointness(t *testing.T) {
	s := simpleSchema(t, 100, 1)
	el := &EdgeList{}
	for i := int32(0); i < 100; i++ {
		el.Append(i, 0, (i+1)%100)
	}
	g := MustGraph(s, el)
	train, valid, test := g.Split(0.05, 0.05, 7)
	if valid.Edges.Len() != 5 || test.Edges.Len() != 5 || train.Edges.Len() != 90 {
		t.Fatalf("split sizes %d/%d/%d", train.Edges.Len(), valid.Edges.Len(), test.Edges.Len())
	}
	seen := map[[3]int32]string{}
	add := func(g *Graph, label string) {
		for i := 0; i < g.Edges.Len(); i++ {
			s, r, d := g.Edges.Edge(i)
			k := [3]int32{s, r, d}
			if prev, dup := seen[k]; dup {
				t.Fatalf("edge %v in both %s and %s", k, prev, label)
			}
			seen[k] = label
		}
	}
	add(train, "train")
	add(valid, "valid")
	add(test, "test")
	if len(seen) != 100 {
		t.Fatalf("splits lost edges: %d", len(seen))
	}
	// Determinism.
	tr2, _, _ := g.Split(0.05, 0.05, 7)
	for i := 0; i < tr2.Edges.Len(); i++ {
		a, _, _ := train.Edges.Edge(i)
		b, _, _ := tr2.Edges.Edge(i)
		if a != b {
			t.Fatal("split not deterministic under same seed")
		}
	}
}

func TestComputeDegrees(t *testing.T) {
	s := simpleSchema(t, 4, 1)
	el := &EdgeList{}
	el.Append(0, 0, 1)
	el.Append(0, 0, 2)
	el.Append(1, 0, 0)
	g := MustGraph(s, el)
	d := ComputeDegrees(g)
	want := []float64{3, 2, 1, 0}
	for i, w := range want {
		if d.ByType[0][i] != w {
			t.Fatalf("degree[%d] = %v, want %v", i, d.ByType[0][i], w)
		}
	}
}

func TestEdgeSet(t *testing.T) {
	a := &EdgeList{}
	a.Append(1, 0, 2)
	b := &EdgeList{}
	b.Append(3, 1, 4)
	es := NewEdgeSet(a, b)
	if es.Len() != 2 {
		t.Fatalf("Len = %d", es.Len())
	}
	if !es.Contains(1, 0, 2) || !es.Contains(3, 1, 4) {
		t.Fatal("missing member")
	}
	if es.Contains(1, 0, 3) || es.Contains(2, 0, 1) {
		t.Fatal("false positive")
	}
}

func TestSortByBucket(t *testing.T) {
	s := simpleSchema(t, 12, 3) // partitions of size 4: [0-3],[4-7],[8-11]
	el := &EdgeList{}
	// One edge in each of several buckets, plus extras.
	el.Append(9, 0, 1)  // (2,0)
	el.Append(0, 0, 0)  // (0,0)
	el.Append(5, 0, 10) // (1,2)
	el.Append(1, 0, 2)  // (0,0)
	el.Append(4, 0, 8)  // (1,2)
	ranges := SortByBucket(s, el, 3, 3)
	if len(ranges) != 9 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	if ranges[0].Len() != 2 { // bucket (0,0)
		t.Fatalf("bucket (0,0) len = %d, want 2", ranges[0].Len())
	}
	if ranges[1*3+2].Len() != 2 { // bucket (1,2)
		t.Fatalf("bucket (1,2) len = %d, want 2", ranges[5].Len())
	}
	if ranges[2*3+0].Len() != 1 { // bucket (2,0)
		t.Fatalf("bucket (2,0) len = %d, want 1", ranges[6].Len())
	}
	// Every edge in a range must actually belong to that bucket.
	e := s.Entities[0]
	for b, rg := range ranges {
		p1, p2 := b/3, b%3
		for i := rg.Lo; i < rg.Hi; i++ {
			src, _, dst := el.Edge(i)
			if e.PartitionOf(src) != p1 || e.PartitionOf(dst) != p2 {
				t.Fatalf("edge %d (%d,%d) filed under bucket (%d,%d)", i, src, dst, p1, p2)
			}
		}
	}
	// Total coverage.
	total := 0
	for _, rg := range ranges {
		total += rg.Len()
	}
	if total != el.Len() {
		t.Fatalf("ranges cover %d edges, want %d", total, el.Len())
	}
}

func TestSortByBucketUnpartitionedDest(t *testing.T) {
	// Mixed schema: users partitioned, items not. Buckets collapse to P on
	// the source side (Figure 1, center).
	s := MustSchema(
		[]EntityType{
			{Name: "user", Count: 8, NumPartitions: 2},
			{Name: "item", Count: 4, NumPartitions: 1},
		},
		[]RelationType{{Name: "buys", SourceType: "user", DestType: "item", Operator: "identity"}},
	)
	el := &EdgeList{}
	el.Append(6, 0, 3) // user partition 1
	el.Append(1, 0, 0) // user partition 0
	ranges := SortByBucket(s, el, 2, 1)
	if len(ranges) != 2 {
		t.Fatalf("got %d ranges, want 2", len(ranges))
	}
	if ranges[0].Len() != 1 || ranges[1].Len() != 1 {
		t.Fatalf("ranges %+v", ranges)
	}
	src, _, _ := el.Edge(ranges[0].Lo)
	if src != 1 {
		t.Fatalf("bucket 0 edge has src %d", src)
	}
}

func TestShuffleKeepsEdgeIntegrity(t *testing.T) {
	el := &EdgeList{}
	for i := int32(0); i < 50; i++ {
		el.Append(i, i%3, i*2)
	}
	el.Shuffle(rng.New(5))
	seen := map[int32]bool{}
	for i := 0; i < el.Len(); i++ {
		s, r, d := el.Edge(i)
		if r != s%3 || d != s*2 {
			t.Fatalf("edge fields decoupled by shuffle: %d,%d,%d", s, r, d)
		}
		if seen[s] {
			t.Fatalf("duplicate edge src %d", s)
		}
		seen[s] = true
	}
}

func TestNumBuckets(t *testing.T) {
	s := simpleSchema(t, 12, 3)
	if s.NumBuckets() != 9 {
		t.Fatalf("NumBuckets = %d, want 9", s.NumBuckets())
	}
	s2 := MustSchema(
		[]EntityType{
			{Name: "user", Count: 8, NumPartitions: 4},
			{Name: "item", Count: 4, NumPartitions: 1},
		},
		[]RelationType{{Name: "buys", SourceType: "user", DestType: "item", Operator: "identity"}},
	)
	if s2.NumBuckets() != 4 {
		t.Fatalf("NumBuckets = %d, want 4", s2.NumBuckets())
	}
}

func TestEffectiveWeight(t *testing.T) {
	if (RelationType{}).EffectiveWeight() != 1 {
		t.Fatal("zero weight should default to 1")
	}
	if (RelationType{Weight: 2.5}).EffectiveWeight() != 2.5 {
		t.Fatal("explicit weight not honoured")
	}
}

// Entity IDs are int32 everywhere (edge columns, eval's int32(r.Intn(count)),
// sampling's partition bounds); counts past MaxInt32 would wrap those casts
// negative, so NewSchema must reject them up front.
func TestNewSchemaRejectsOverInt32Counts(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("int cannot exceed int32 on this platform")
	}
	over := math.MaxInt32 // runtime increment: a MaxInt32+1 literal would not compile on 32-bit
	over++
	_, err := NewSchema(
		[]EntityType{{Name: "n", Count: over, NumPartitions: 1}},
		[]RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
	)
	if err == nil {
		t.Fatal("schema with Count > MaxInt32 accepted")
	}
	// MaxInt32 itself is the inclusive limit and stays valid.
	if _, err := NewSchema(
		[]EntityType{{Name: "n", Count: math.MaxInt32, NumPartitions: 1}},
		[]RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
	); err != nil {
		t.Fatalf("schema with Count = MaxInt32 rejected: %v", err)
	}
}
