// Package graph defines the multi-entity, multi-relation graph model from §3
// of the PBG paper: a set of entity types (each optionally partitioned), a
// set of relation types (each naming the entity type of its source and
// destination side plus a relation operator), and a list of positive edges
// (s, r, d).
//
// Entity IDs are dense integers per entity type, 0..Count-1. Edges are stored
// columnar ([]int32 per field) so hundreds of millions of edges stay compact
// and bucket-sorting is cache friendly.
package graph

import (
	"fmt"
	"math"
	"sort"

	"pbg/internal/rng"
)

// EntityType describes one class of nodes (e.g. "user", "product").
type EntityType struct {
	// Name identifies the type in relation configs.
	Name string
	// Count is the number of entities of this type.
	Count int
	// NumPartitions is P from §4.1. 1 means the type is unpartitioned and
	// its embeddings are held in memory (or on the parameter server in
	// distributed mode) for the whole run.
	NumPartitions int
}

// Partitioned reports whether the type is split into more than one part.
func (e EntityType) Partitioned() bool { return e.NumPartitions > 1 }

// PartSize returns the number of entities per partition (the last partition
// may be smaller).
func (e EntityType) PartSize() int {
	return (e.Count + e.NumPartitions - 1) / e.NumPartitions
}

// PartitionOf returns the partition that entity id belongs to. Entities are
// assigned to partitions in contiguous blocks; generators shuffle IDs so
// this is equivalent to the uniform assignment the paper uses.
func (e EntityType) PartitionOf(id int32) int {
	return int(id) / e.PartSize()
}

// LocalOffset returns the index of id within its partition.
func (e EntityType) LocalOffset(id int32) int {
	return int(id) % e.PartSize()
}

// PartitionCount returns the number of entities in partition p.
func (e EntityType) PartitionCount(p int) int {
	size := e.PartSize()
	start := p * size
	if start >= e.Count {
		return 0
	}
	end := start + size
	if end > e.Count {
		end = e.Count
	}
	return end - start
}

// RelationType configures one relation (§3.1): which entity types its edges
// connect, which operator transforms embeddings, and the edge weight.
type RelationType struct {
	Name string
	// SourceType / DestType name entity types in the schema.
	SourceType string
	DestType   string
	// Operator selects the relation operator: "identity", "translation",
	// "diagonal", "linear", or "complex_diagonal". Validation of the value
	// happens in the model package where operators are constructed.
	Operator string
	// Weight scales this relation's contribution to the loss (per-relation
	// edge weight from the paper's feature list). Zero means 1.
	Weight float32
}

// EffectiveWeight returns Weight, defaulting to 1 when unset.
func (r RelationType) EffectiveWeight() float32 {
	if r.Weight == 0 {
		return 1
	}
	return r.Weight
}

// Schema is the static description of a multi-relation graph.
type Schema struct {
	Entities  []EntityType
	Relations []RelationType

	entityIndex map[string]int
}

// NewSchema validates and indexes the entity and relation declarations.
func NewSchema(entities []EntityType, relations []RelationType) (*Schema, error) {
	s := &Schema{Entities: entities, Relations: relations, entityIndex: make(map[string]int, len(entities))}
	for i, e := range entities {
		if e.Name == "" {
			return nil, fmt.Errorf("graph: entity %d has empty name", i)
		}
		if e.Count <= 0 {
			return nil, fmt.Errorf("graph: entity %q has non-positive count %d", e.Name, e.Count)
		}
		// Entity IDs are int32 throughout (edge columns, samplers,
		// evaluation candidates); a larger count would make int32(id)
		// casts wrap negative far from here, so reject it at the door.
		if e.Count > math.MaxInt32 {
			return nil, fmt.Errorf("graph: entity %q count %d exceeds the int32 entity-ID limit (%d); shard the type into more entity types instead", e.Name, e.Count, math.MaxInt32)
		}
		if e.NumPartitions <= 0 {
			return nil, fmt.Errorf("graph: entity %q has non-positive partitions %d", e.Name, e.NumPartitions)
		}
		if e.NumPartitions > e.Count {
			return nil, fmt.Errorf("graph: entity %q has more partitions (%d) than entities (%d)", e.Name, e.NumPartitions, e.Count)
		}
		if _, dup := s.entityIndex[e.Name]; dup {
			return nil, fmt.Errorf("graph: duplicate entity type %q", e.Name)
		}
		s.entityIndex[e.Name] = i
	}
	if len(relations) == 0 {
		return nil, fmt.Errorf("graph: schema needs at least one relation")
	}
	for i, r := range relations {
		if _, ok := s.entityIndex[r.SourceType]; !ok {
			return nil, fmt.Errorf("graph: relation %d (%q) references unknown source type %q", i, r.Name, r.SourceType)
		}
		if _, ok := s.entityIndex[r.DestType]; !ok {
			return nil, fmt.Errorf("graph: relation %d (%q) references unknown dest type %q", i, r.Name, r.DestType)
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and generators
// with static declarations.
func MustSchema(entities []EntityType, relations []RelationType) *Schema {
	s, err := NewSchema(entities, relations)
	if err != nil {
		panic(err)
	}
	return s
}

// EntityTypeIndex returns the index of the named entity type, or -1.
func (s *Schema) EntityTypeIndex(name string) int {
	if i, ok := s.entityIndex[name]; ok {
		return i
	}
	return -1
}

// Entity returns the entity type declaration by name; panics if missing
// (schemas are validated at construction, so a miss is a programming error).
func (s *Schema) Entity(name string) EntityType {
	i := s.EntityTypeIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("graph: unknown entity type %q", name))
	}
	return s.Entities[i]
}

// SourceEntity returns the entity type on the source side of relation r.
func (s *Schema) SourceEntity(r int32) EntityType {
	return s.Entity(s.Relations[r].SourceType)
}

// DestEntity returns the entity type on the destination side of relation r.
func (s *Schema) DestEntity(r int32) EntityType {
	return s.Entity(s.Relations[r].DestType)
}

// NumBuckets returns the number of edge buckets the schema induces: P_src ×
// P_dst maximised over relations. With one partitioned side it degenerates
// to P, matching Figure 1 (center).
func (s *Schema) NumBuckets() int {
	maxSrc, maxDst := 1, 1
	for _, r := range s.Relations {
		if p := s.Entity(r.SourceType).NumPartitions; p > maxSrc {
			maxSrc = p
		}
		if p := s.Entity(r.DestType).NumPartitions; p > maxDst {
			maxDst = p
		}
	}
	return maxSrc * maxDst
}

// MaxPartitions returns the largest partition count over all entity types.
func (s *Schema) MaxPartitions() int {
	p := 1
	for _, e := range s.Entities {
		if e.NumPartitions > p {
			p = e.NumPartitions
		}
	}
	return p
}

// EdgeList stores edges columnar: Srcs[i], Rels[i], Dsts[i] form edge i.
type EdgeList struct {
	Srcs []int32
	Rels []int32
	Dsts []int32
}

// Len returns the number of edges.
func (el *EdgeList) Len() int { return len(el.Srcs) }

// Append adds one edge.
func (el *EdgeList) Append(src, rel, dst int32) {
	el.Srcs = append(el.Srcs, src)
	el.Rels = append(el.Rels, rel)
	el.Dsts = append(el.Dsts, dst)
}

// AppendList adds all edges from other.
func (el *EdgeList) AppendList(other *EdgeList) {
	el.Srcs = append(el.Srcs, other.Srcs...)
	el.Rels = append(el.Rels, other.Rels...)
	el.Dsts = append(el.Dsts, other.Dsts...)
}

// Edge returns edge i.
func (el *EdgeList) Edge(i int) (src, rel, dst int32) {
	return el.Srcs[i], el.Rels[i], el.Dsts[i]
}

// Swap exchanges edges i and j (sort.Interface support).
func (el *EdgeList) Swap(i, j int) {
	el.Srcs[i], el.Srcs[j] = el.Srcs[j], el.Srcs[i]
	el.Rels[i], el.Rels[j] = el.Rels[j], el.Rels[i]
	el.Dsts[i], el.Dsts[j] = el.Dsts[j], el.Dsts[i]
}

// Clone deep-copies the edge list.
func (el *EdgeList) Clone() *EdgeList {
	out := &EdgeList{
		Srcs: make([]int32, len(el.Srcs)),
		Rels: make([]int32, len(el.Rels)),
		Dsts: make([]int32, len(el.Dsts)),
	}
	copy(out.Srcs, el.Srcs)
	copy(out.Rels, el.Rels)
	copy(out.Dsts, el.Dsts)
	return out
}

// Slice returns a view of edges [lo, hi) sharing the underlying arrays.
func (el *EdgeList) Slice(lo, hi int) *EdgeList {
	return &EdgeList{Srcs: el.Srcs[lo:hi], Rels: el.Rels[lo:hi], Dsts: el.Dsts[lo:hi]}
}

// Shuffle permutes edges uniformly using r.
func (el *EdgeList) Shuffle(r *rng.RNG) {
	r.Shuffle(el.Len(), el.Swap)
}

// Graph couples a schema with its positive training edges.
type Graph struct {
	Schema *Schema
	Edges  *EdgeList
}

// NewGraph validates that every edge's endpoints are within range for its
// relation's entity types.
func NewGraph(schema *Schema, edges *EdgeList) (*Graph, error) {
	nRel := int32(len(schema.Relations))
	for i := 0; i < edges.Len(); i++ {
		s, r, d := edges.Edge(i)
		if r < 0 || r >= nRel {
			return nil, fmt.Errorf("graph: edge %d has relation %d out of range [0,%d)", i, r, nRel)
		}
		se := schema.SourceEntity(r)
		de := schema.DestEntity(r)
		if s < 0 || int(s) >= se.Count {
			return nil, fmt.Errorf("graph: edge %d source %d out of range for type %q (count %d)", i, s, se.Name, se.Count)
		}
		if d < 0 || int(d) >= de.Count {
			return nil, fmt.Errorf("graph: edge %d dest %d out of range for type %q (count %d)", i, d, de.Name, de.Count)
		}
	}
	return &Graph{Schema: schema, Edges: edges}, nil
}

// MustGraph is NewGraph that panics on error.
func MustGraph(schema *Schema, edges *EdgeList) *Graph {
	g, err := NewGraph(schema, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Split divides the edges into train/valid/test with the given fractions
// (which must sum to ≤ 1; the remainder, if any, goes to train). The split is
// deterministic under seed. This reproduces the 75/25 (LiveJournal) and
// 90/5/5 (Freebase, Twitter) protocols from §5.
func (g *Graph) Split(validFrac, testFrac float64, seed uint64) (train, valid, test *Graph) {
	n := g.Edges.Len()
	perm := make([]int, n)
	rng.New(seed).Perm(perm)
	nValid := int(validFrac * float64(n))
	nTest := int(testFrac * float64(n))
	mk := func(idx []int) *Graph {
		el := &EdgeList{
			Srcs: make([]int32, len(idx)),
			Rels: make([]int32, len(idx)),
			Dsts: make([]int32, len(idx)),
		}
		for i, j := range idx {
			el.Srcs[i], el.Rels[i], el.Dsts[i] = g.Edges.Edge(j)
		}
		return &Graph{Schema: g.Schema, Edges: el}
	}
	valid = mk(perm[:nValid])
	test = mk(perm[nValid : nValid+nTest])
	train = mk(perm[nValid+nTest:])
	return train, valid, test
}

// Degrees holds per-entity appearance counts in the training edges, per
// entity type. It backs the data-prevalence negative sampler (§3.1) and the
// prevalence-weighted evaluation candidates (§5.4.2).
type Degrees struct {
	// ByType[t][id] counts appearances (as source or destination) of entity
	// id of entity type index t.
	ByType [][]float64
}

// ComputeDegrees tallies endpoint appearances over the graph's edges.
func ComputeDegrees(g *Graph) *Degrees {
	d := &Degrees{ByType: make([][]float64, len(g.Schema.Entities))}
	for t, e := range g.Schema.Entities {
		d.ByType[t] = make([]float64, e.Count)
	}
	for i := 0; i < g.Edges.Len(); i++ {
		s, r, dst := g.Edges.Edge(i)
		st := g.Schema.EntityTypeIndex(g.Schema.Relations[r].SourceType)
		dt := g.Schema.EntityTypeIndex(g.Schema.Relations[r].DestType)
		d.ByType[st][s]++
		d.ByType[dt][dst]++
	}
	return d
}

// EdgeSet is a hash set of edges used for filtered evaluation (§5.4.1): all
// known-true edges are excluded from the candidate corrupted edges.
type EdgeSet struct {
	m map[edgeKey]struct{}
}

type edgeKey struct {
	src, rel, dst int32
}

// NewEdgeSet builds a set holding the union of the given edge lists.
func NewEdgeSet(lists ...*EdgeList) *EdgeSet {
	total := 0
	for _, l := range lists {
		total += l.Len()
	}
	es := &EdgeSet{m: make(map[edgeKey]struct{}, total)}
	for _, l := range lists {
		for i := 0; i < l.Len(); i++ {
			s, r, d := l.Edge(i)
			es.m[edgeKey{s, r, d}] = struct{}{}
		}
	}
	return es
}

// Contains reports whether (src, rel, dst) is a known edge.
func (es *EdgeSet) Contains(src, rel, dst int32) bool {
	_, ok := es.m[edgeKey{src, rel, dst}]
	return ok
}

// Len returns the number of distinct edges in the set.
func (es *EdgeSet) Len() int { return len(es.m) }

// SortByBucket sorts edges so that all edges of bucket (p1, p2) are
// contiguous, ordered by p1-major. It returns, for each bucket index
// p1*nDst+p2, the [lo, hi) range into the sorted list. nSrc and nDst are the
// partition counts of the (maximal) source/destination sides.
func SortByBucket(schema *Schema, edges *EdgeList, nSrc, nDst int) []BucketRange {
	keys := make([]int32, edges.Len())
	for i := 0; i < edges.Len(); i++ {
		s, r, d := edges.Edge(i)
		p1 := bucketSide(schema.SourceEntity(r), s, nSrc)
		p2 := bucketSide(schema.DestEntity(r), d, nDst)
		keys[i] = int32(p1*nDst + p2)
	}
	sort.Sort(&bucketSorter{edges: edges, keys: keys})
	ranges := make([]BucketRange, nSrc*nDst)
	for b := range ranges {
		ranges[b] = BucketRange{Lo: -1, Hi: -1}
	}
	for i := 0; i < edges.Len(); i++ {
		b := keys[i]
		if ranges[b].Lo < 0 {
			ranges[b].Lo = i
		}
		ranges[b].Hi = i + 1
	}
	for b := range ranges {
		if ranges[b].Lo < 0 {
			ranges[b].Lo = 0
			ranges[b].Hi = 0
		}
	}
	return ranges
}

// bucketSide maps an entity to its bucket coordinate. Unpartitioned entity
// types contribute coordinate 0 on their side (Figure 1 center: with all
// tail types unpartitioned, buckets collapse to P on the source side only).
func bucketSide(e EntityType, id int32, n int) int {
	if !e.Partitioned() {
		return 0
	}
	p := e.PartitionOf(id)
	if p >= n {
		panic(fmt.Sprintf("graph: partition %d out of range %d", p, n))
	}
	return p
}

// BucketRange is a [Lo, Hi) span of a bucket-sorted edge list.
type BucketRange struct{ Lo, Hi int }

// Empty reports whether the bucket holds no edges.
func (b BucketRange) Empty() bool { return b.Hi <= b.Lo }

// Len returns the number of edges in the bucket.
func (b BucketRange) Len() int { return b.Hi - b.Lo }

type bucketSorter struct {
	edges *EdgeList
	keys  []int32
}

func (s *bucketSorter) Len() int           { return len(s.keys) }
func (s *bucketSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *bucketSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.edges.Swap(i, j)
}
