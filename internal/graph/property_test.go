package graph

import (
	"testing"
	"testing/quick"

	"pbg/internal/rng"
)

// Property: SortByBucket places every edge in the range of its own bucket
// and the ranges partition the edge list, for arbitrary random graphs.
func TestSortByBucketProperty(t *testing.T) {
	f := func(seed uint64, nodesRaw uint8, partsRaw uint8, edgesRaw uint16) bool {
		nodes := int(nodesRaw)%200 + 10
		parts := int(partsRaw)%6 + 1
		if parts > nodes {
			parts = nodes
		}
		nEdges := int(edgesRaw)%500 + 1
		s := MustSchema(
			[]EntityType{{Name: "n", Count: nodes, NumPartitions: parts}},
			[]RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
		)
		r := rng.New(seed)
		el := &EdgeList{}
		for i := 0; i < nEdges; i++ {
			el.Append(int32(r.Intn(nodes)), 0, int32(r.Intn(nodes)))
		}
		ranges := SortByBucket(s, el, parts, parts)
		total := 0
		ent := s.Entities[0]
		for b, rg := range ranges {
			p1, p2 := b/parts, b%parts
			for i := rg.Lo; i < rg.Hi; i++ {
				src, _, dst := el.Edge(i)
				if ent.PartitionOf(src) != p1 || ent.PartitionOf(dst) != p2 {
					return false
				}
			}
			total += rg.Len()
		}
		return total == el.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Split never loses or duplicates edges for arbitrary fractions.
func TestSplitProperty(t *testing.T) {
	f := func(seed uint64, vRaw, tRaw uint8, edgesRaw uint16) bool {
		vf := float64(vRaw%50) / 100
		tf := float64(tRaw%50) / 100
		nEdges := int(edgesRaw)%300 + 3
		s := MustSchema(
			[]EntityType{{Name: "n", Count: 1000, NumPartitions: 1}},
			[]RelationType{{Name: "r", SourceType: "n", DestType: "n", Operator: "identity"}},
		)
		r := rng.New(seed)
		el := &EdgeList{}
		for i := 0; i < nEdges; i++ {
			el.Append(int32(r.Intn(1000)), 0, int32(r.Intn(1000)))
		}
		g := MustGraph(s, el)
		a, b, c := g.Split(vf, tf, seed)
		return a.Edges.Len()+b.Edges.Len()+c.Edges.Len() == nEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every entity id maps to exactly one (partition, offset) pair
// and PartitionCount sums to Count.
func TestPartitionCountsSumProperty(t *testing.T) {
	f := func(countRaw uint16, partsRaw uint8) bool {
		count := int(countRaw)%10000 + 1
		parts := int(partsRaw)%16 + 1
		if parts > count {
			parts = count
		}
		e := EntityType{Name: "n", Count: count, NumPartitions: parts}
		sum := 0
		for p := 0; p < parts; p++ {
			sum += e.PartitionCount(p)
		}
		return sum == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
