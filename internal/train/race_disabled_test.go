//go:build !race

package train

// raceDetectorEnabled reports whether this test binary was built with -race.
const raceDetectorEnabled = false
