package train

import (
	"testing"
	"time"

	"pbg/internal/storage"
)

func TestConfigLookaheadDefaults(t *testing.T) {
	// Without a budget, adaptivity defaults off: the cap equals the initial
	// depth, preserving the fixed two-partition footprint of unbudgeted runs.
	c := Config{}.withDefaults()
	if c.Lookahead != 1 || c.MaxLookahead != 1 {
		t.Fatalf("unbudgeted defaults wrong: Lookahead=%d MaxLookahead=%d", c.Lookahead, c.MaxLookahead)
	}
	// A budget turns the adaptive default on.
	c = Config{MemBudgetBytes: 1 << 20}.withDefaults()
	if c.Lookahead != 1 || c.MaxLookahead != defaultMaxLookahead {
		t.Fatalf("budgeted defaults wrong: Lookahead=%d MaxLookahead=%d", c.Lookahead, c.MaxLookahead)
	}
	// A large initial depth raises the default cap with it.
	c = Config{Lookahead: 6, MemBudgetBytes: 1 << 20}.withDefaults()
	if c.MaxLookahead != 6 {
		t.Fatalf("MaxLookahead = %d, want 6", c.MaxLookahead)
	}
	// An explicit cap clamps the initial depth.
	c = Config{Lookahead: 3, MaxLookahead: 2}.withDefaults()
	if c.Lookahead != 2 || c.MaxLookahead != 2 {
		t.Fatalf("clamp wrong: Lookahead=%d MaxLookahead=%d", c.Lookahead, c.MaxLookahead)
	}
}

func controllerTrainer(t *testing.T, cfg Config) *Trainer {
	t.Helper()
	g := smallSocial(t, 4)
	if cfg.Dim == 0 {
		cfg.Dim = 16
	}
	store := storage.NewMemStore(g.Schema, cfg.Dim, 7, 1)
	tr, err := New(g, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestControllerWidensOnIOWaitUpToCap(t *testing.T) {
	tr := controllerTrainer(t, Config{Lookahead: 1, MaxLookahead: 3})
	// 50% IOWait: clearly I/O bound, unbounded budget → widen each epoch.
	for want := 2; want <= 3; want++ {
		st := EpochStats{IOWait: 50 * time.Millisecond, Compute: 50 * time.Millisecond}
		tr.adaptLookahead(&st)
		if st.LookaheadAction != "widen" || tr.Lookahead() != want {
			t.Fatalf("want widen to %d, got %q at %d", want, st.LookaheadAction, tr.Lookahead())
		}
	}
	// At the cap the controller holds.
	st := EpochStats{IOWait: 50 * time.Millisecond, Compute: 50 * time.Millisecond}
	tr.adaptLookahead(&st)
	if st.LookaheadAction != "hold" || tr.Lookahead() != 3 {
		t.Fatalf("want hold at cap, got %q at %d", st.LookaheadAction, tr.Lookahead())
	}
}

func TestControllerHoldsWhenComputeBound(t *testing.T) {
	tr := controllerTrainer(t, Config{Lookahead: 1, MaxLookahead: 3})
	st := EpochStats{IOWait: 1 * time.Millisecond, Compute: 100 * time.Millisecond}
	tr.adaptLookahead(&st)
	if st.LookaheadAction != "hold" || tr.Lookahead() != 1 {
		t.Fatalf("want hold (1%% iowait), got %q at %d", st.LookaheadAction, tr.Lookahead())
	}
}

func TestControllerNarrowsWhenBudgetBinds(t *testing.T) {
	// Price the windows on a probe trainer, then build the real one with a
	// budget that fits lookahead 1 exactly.
	probe := controllerTrainer(t, Config{})
	budget := probe.windowBytes(1) + probe.maxShardBytes()
	tr := controllerTrainer(t, Config{Lookahead: 1, MaxLookahead: 3, MemBudgetBytes: budget})
	if tr.Lookahead() != 1 {
		t.Fatalf("initial lookahead %d, want 1 (budget fits it)", tr.Lookahead())
	}
	// The store ran over budget this epoch: the budget binds → narrow.
	st := EpochStats{ResidentHighWater: budget + 1, IOWait: 50 * time.Millisecond, Compute: 50 * time.Millisecond}
	tr.adaptLookahead(&st)
	if st.LookaheadAction != "narrow" || tr.Lookahead() != 0 {
		t.Fatalf("want narrow to 0, got %q at %d", st.LookaheadAction, tr.Lookahead())
	}
	// High IOWait cannot widen past what the budget's projection allows:
	// lookahead 1 fits again, 2 would not.
	st = EpochStats{IOWait: 50 * time.Millisecond, Compute: 50 * time.Millisecond}
	tr.adaptLookahead(&st)
	if st.LookaheadAction != "widen" || tr.Lookahead() != 1 {
		t.Fatalf("want widen back to 1, got %q at %d", st.LookaheadAction, tr.Lookahead())
	}
	st = EpochStats{IOWait: 50 * time.Millisecond, Compute: 50 * time.Millisecond}
	tr.adaptLookahead(&st)
	if st.LookaheadAction != "hold" || tr.Lookahead() != 1 {
		t.Fatalf("budget projection must block widening to 2: got %q at %d", st.LookaheadAction, tr.Lookahead())
	}
}

func TestControllerInitClampsToTightBudget(t *testing.T) {
	probe := controllerTrainer(t, Config{})
	// Budget admits exactly one bucket's working set plus the in-flight
	// allowance: any lookahead > 0 must be clamped away before epoch 1.
	budget := probe.windowBytes(0) + probe.maxShardBytes()
	tr := controllerTrainer(t, Config{Lookahead: 3, MaxLookahead: 4, MemBudgetBytes: budget})
	if tr.Lookahead() != 0 {
		t.Fatalf("initial lookahead %d, want 0 under a one-bucket budget", tr.Lookahead())
	}
}

func TestWindowBytesMonotonic(t *testing.T) {
	tr := controllerTrainer(t, Config{})
	w0, w1, w2 := tr.windowBytes(0), tr.windowBytes(1), tr.windowBytes(2)
	if w0 <= 0 || w0 > w1 || w1 > w2 {
		t.Fatalf("window projections not monotonic: %d, %d, %d", w0, w1, w2)
	}
	// A bucket of the 4×4 grid touches two distinct node shards.
	shard := tr.shardKeyBytes(shardKey{0, 0})
	if w0 != 2*shard {
		t.Fatalf("windowBytes(0) = %d, want two shards (%d)", w0, 2*shard)
	}
}

// TestEpochStatsReportController checks the decision and high-water land in
// EpochStats where pbg-train prints them.
func TestEpochStatsReportController(t *testing.T) {
	g := smallSocial(t, 4)
	store, err := storage.NewDiskStore(t.TempDir(), g.Schema, 16, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tr, err := New(g, store, Config{Dim: 16, Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stats {
		if st.LookaheadAction == "" {
			t.Fatalf("epoch %d missing controller decision", st.Epoch)
		}
		if st.ResidentHighWater <= 0 {
			t.Fatalf("epoch %d missing resident high-water", st.Epoch)
		}
	}
	if stats[0].Lookahead != 1 {
		t.Fatalf("epoch 0 lookahead %d, want the initial 1", stats[0].Lookahead)
	}
}
