//go:build race

package train

// raceDetectorEnabled reports whether this test binary was built with -race.
// HOGWILD training (lock-free, multi-worker) races on embedding rows by
// design — the benign races of Recht et al. 2011 — so those tests skip under
// the detector; the striped-lock mode is race-clean and covered instead.
const raceDetectorEnabled = true
