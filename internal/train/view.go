package train

import (
	"pbg/internal/graph"
	"pbg/internal/storage"
)

// View provides read access to trained embeddings across partitions,
// acquiring shards from the store on demand and holding them until Close.
// Evaluation and downstream tasks use it to fetch arbitrary entity rows.
type View struct {
	store  storage.Store
	schema *graph.Schema
	held   map[shardKey]shardRef
}

// NewView opens a view over the trainer's store.
func (t *Trainer) NewView() *View {
	return &View{store: t.store, schema: t.g.Schema, held: map[shardKey]shardRef{}}
}

// NewStoreView opens a view over an arbitrary store (distributed eval).
func NewStoreView(store storage.Store, schema *graph.Schema) *View {
	return &View{store: store, schema: schema, held: map[shardKey]shardRef{}}
}

// Embedding copies the embedding of entity id (of entity type index t) into
// out and returns it. out must have length Dim.
func (v *View) Embedding(typeIdx int, id int32, out []float32) ([]float32, error) {
	ent := v.schema.Entities[typeIdx]
	part := 0
	if ent.Partitioned() {
		part = ent.PartitionOf(id)
	}
	k := shardKey{typeIdx, part}
	ref, ok := v.held[k]
	if !ok {
		sh, err := v.store.Acquire(typeIdx, part)
		if err != nil {
			return nil, err
		}
		ref = shardRef{shard: sh, ent: ent}
		v.held[k] = ref
	}
	copy(out, ref.row(id))
	return out, nil
}

// Close releases all shards held by the view.
func (v *View) Close() error {
	var first error
	for k := range v.held {
		if err := v.store.Release(k.t, k.p); err != nil && first == nil {
			first = err
		}
	}
	v.held = map[shardKey]shardRef{}
	return first
}
