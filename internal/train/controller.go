package train

import "pbg/internal/storage"

// The adaptive lookahead controller. Deeper lookahead trades resident
// memory for I/O–compute overlap (more buckets' shards prefetch while the
// current bucket trains), so the right depth depends on how I/O-bound the
// epoch actually is and how much memory the budget allows. Between epochs
// the controller widens the depth while the measured IOWait share stays
// above a threshold and the projected resident bytes of the wider window —
// shard shapes are known exactly from the schema — still fit inside
// Config.MemBudgetBytes, and narrows it when the budget binds (the
// projection no longer fits, or the store was forced over budget). The
// per-epoch decision and resident high-water mark are reported in
// EpochStats so pbg-train can print them.

// lookaheadWidenIOWait is the IOWait share of (IOWait + Compute) above
// which the controller deems bucket transitions I/O bound and tries to
// widen the prefetch horizon.
const lookaheadWidenIOWait = 0.05

// defaultMaxLookahead caps the controller when the caller does not choose
// a cap. Four buckets of prefetch is enough to hide one slow device behind
// compute without letting the window grow past a partition row.
const defaultMaxLookahead = 4

// shardKeyBytes is the budget price of shard k — its fp32 size, or its
// quantized footprint under Config.Codec — priced through the same helper
// budget admission uses, so the controller's projections cannot drift from
// the store's accounting. A smaller codec therefore widens the depth the
// same budget affords, automatically.
func (t *Trainer) shardKeyBytes(k shardKey) int64 {
	return storage.ProjectedShardBytesCodec(t.g.Schema, t.cfg.Dim, k.t, k.p, t.codec)
}

// maxShardBytes is the largest single shard of the schema — the "one
// in-flight shard" allowance the budget math leaves for a load or
// write-back snapshot that is mid-flight while the window turns over.
func (t *Trainer) maxShardBytes() int64 {
	var max int64
	for ti := range t.g.Schema.Entities {
		if b := t.shardKeyBytes(shardKey{ti, 0}); b > max {
			max = b // partition 0 is never smaller than later partitions
		}
	}
	return max
}

// windowBytes projects the resident footprint of running with lookahead L:
// the largest total size, over every position in the epoch's work list, of
// the distinct shards the current item plus the next L items touch. The
// projection is exact because shard shapes are known from the schema —
// no epoch needs to be run to price a depth.
func (t *Trainer) windowBytes(L int) int64 {
	if v, ok := t.winBytes[L]; ok {
		return v
	}
	items := t.epochItems()
	var maxB int64
	seen := make(map[shardKey]bool)
	for i := range items {
		clear(seen)
		var b int64
		for j := i; j < len(items) && j <= i+L; j++ {
			for _, k := range t.bucketShardKeys(items[j].b) {
				if !seen[k] {
					seen[k] = true
					b += t.shardKeyBytes(k)
				}
			}
		}
		if b > maxB {
			maxB = b
		}
	}
	t.winBytes[L] = maxB
	return maxB
}

// initLookahead picks the starting depth: cfg.Lookahead, clamped to the
// controller's cap and then narrowed until the projected window (plus the
// in-flight allowance) fits the budget. With a budget so tight only one
// bucket's shards fit, this starts the executor at lookahead 0 — the
// serial working set — rather than issuing hints the store would shed.
func (t *Trainer) initLookahead() {
	t.lookahead = t.cfg.Lookahead
	if t.lookahead > t.cfg.MaxLookahead {
		t.lookahead = t.cfg.MaxLookahead
	}
	if budget := t.cfg.MemBudgetBytes; budget > 0 {
		allowance := t.maxShardBytes()
		for t.lookahead > 0 && t.windowBytes(t.lookahead)+allowance > budget {
			t.lookahead--
		}
	}
}

// Lookahead reports the live prefetch depth (tests, pbg-train).
func (t *Trainer) Lookahead() int { return t.lookahead }

// adaptLookahead is the between-epochs controller step: st holds the epoch
// just finished, and the depth chosen here applies from the next epoch.
// The decision lands in st.LookaheadAction.
func (t *Trainer) adaptLookahead(st *EpochStats) {
	budget := t.cfg.MemBudgetBytes
	allowance := t.maxShardBytes()
	if budget > 0 && t.lookahead > 0 &&
		(t.windowBytes(t.lookahead)+allowance > budget || st.ResidentHighWater > budget) {
		// The budget binds: the projection says the current window cannot
		// fit, or the store was actually forced over budget this epoch.
		t.lookahead--
		st.LookaheadAction = "narrow"
		return
	}
	busy := st.IOWait + st.Compute
	if busy > 0 && st.IOWait.Seconds()/busy.Seconds() > lookaheadWidenIOWait &&
		t.lookahead < t.cfg.MaxLookahead &&
		(budget == 0 || t.windowBytes(t.lookahead+1)+allowance <= budget) {
		t.lookahead++
		st.LookaheadAction = "widen"
		return
	}
	st.LookaheadAction = "hold"
}

// sampleResident records the store's resident bytes against both the
// run-wide peak (Tables 3–4 memory column) and the per-epoch high-water
// mark the controller and EpochStats report.
func (t *Trainer) sampleResident() {
	rb := t.store.ResidentBytes()
	if rb > t.peakBytes {
		t.peakBytes = rb
	}
	if rb > t.epochHighWater {
		t.epochHighWater = rb
	}
}
